// Quickstart: the protean code mechanism end to end.
//
// Builds a small program in the IR, compiles it with the protean compiler
// (edge virtualization + embedded IR), runs it on the simulated machine,
// attaches the protean runtime, and transforms the hot function online —
// inserting non-temporal hints, then reverting — while the program never
// stops executing.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
)

func main() {
	// 1. Express a program in the IR: main repeatedly calls a hot kernel
	//    that streams through a 4 MiB buffer.
	mb := ir.NewModuleBuilder("demo")
	mb.Global("buf", 4<<20)
	hot := mb.Function("hot")
	hot.Loop(1000, func() {
		hot.Load(ir.Access{Global: "buf", Pattern: ir.Seq, Stride: 64})
		hot.Work(2)
	})
	hot.Return()
	mainFn := mb.Function("main")
	mainFn.Loop(1<<40, func() { mainFn.Call("hot") })
	mainFn.Return()
	mb.SetEntry("main")
	mod, err := mb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compile with pcc: calls to multi-block functions are virtualized
	//    through the EVT, and the compressed IR is embedded in the binary.
	bin, err := pcc.Compile(mod, pcc.Options{Protean: true})
	if err != nil {
		log.Fatal(err)
	}
	st := pcc.StatsOf(bin)
	fmt.Printf("compiled %q: %d code words, %d virtualized calls, %d B embedded IR\n",
		mod.Name, st.CodeWords, st.VirtualizedCalls, st.IRBlobBytes)

	// 3. Run it on a simulated core.
	m := machine.New(machine.Config{Cores: 2})
	proc, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		log.Fatal(err)
	}
	m.RunSeconds(0.5)
	before := proc.Counters()
	fmt.Printf("running natively: %d instructions so far, hot function = %q\n",
		before.Insts, proc.CurrentFunc())

	// 4. Attach the protean runtime (on the spare core) and request a
	//    variant of "hot" with every load carrying a non-temporal hint.
	//    The compile is asynchronous: the program keeps running while the
	//    runtime compiler works.
	rt, err := core.New(core.Config{Machine: m, Host: proc, RuntimeCore: 1})
	if err != nil {
		log.Fatal(err)
	}
	m.AddAgent(rt)

	mask := map[int]bool{}
	for _, site := range rt.IR().LoadSites() {
		if site.Func.Name == "hot" {
			mask[site.Load.ID] = true
		}
	}
	var variant *core.Variant
	err = rt.RequestVariant("hot", core.NTTransform(mask), nil, func(v *core.Variant, err error) {
		if err != nil {
			log.Fatal(err)
		}
		variant = v
	})
	if err != nil {
		log.Fatal(err)
	}
	m.RunSeconds(0.1) // the ~4ms compile finishes while the host runs
	fmt.Printf("variant %d of %q compiled into the code cache at PC %d\n",
		variant.ID, variant.Func, variant.EntryPC)

	// 5. Dispatch: one atomic EVT write reroutes the next call to "hot".
	if err := rt.Dispatch(variant); err != nil {
		log.Fatal(err)
	}
	mark := proc.Counters()
	m.RunSeconds(0.5)
	d := proc.Counters().Sub(mark)
	fmt.Printf("after dispatch: %d prefetchnta retired over %d loads (hints live)\n",
		d.Prefetches, d.Loads)

	// 6. Revert: the original code takes over at the next call.
	if err := rt.Revert("hot"); err != nil {
		log.Fatal(err)
	}
	m.RunSeconds(0.1) // drain the in-flight invocation
	mark = proc.Counters()
	m.RunSeconds(0.5)
	d = proc.Counters().Sub(mark)
	fmt.Printf("after revert:   %d prefetchnta retired over %d loads (hints gone)\n",
		d.Prefetches, d.Loads)
	fmt.Printf("runtime consumed %.3f%% of server cycles; the host never stopped\n",
		rt.ServerCycleFraction()*100)
}
