// Fluctuating load: the Figure 16 scenario.
//
// Runs libquantum next to a request-driven web-search service whose
// offered load is high, then low, then high again, with PC3D managing the
// host. Prints the time series: PC3D searches for a hint variant during
// high load, reverts to the original full-speed code when load drops, and
// re-searches when load returns — while the service's QoS holds.
//
// Run: go run ./examples/fluctuating-load
package main

import (
	"log"
	"os"

	"repro/internal/harness"
)

func main() {
	sc := harness.QuickScale()
	r := harness.NewRunner(sc)
	t, err := r.Figure16()
	if err != nil {
		log.Fatal(err)
	}
	t.Render(os.Stdout)
}
