// Datacenter scale: from per-server measurements to fleet impact.
//
// Measures the utilization PC3D recovers for the Table III workload mixes
// against each CloudSuite webservice, then projects server requirements
// and energy efficiency for a 10k-machine fleet (Figures 17 and 18).
//
// Run: go run ./examples/datacenter-scale
package main

import (
	"log"
	"os"

	"repro/internal/harness"
)

func main() {
	sc := harness.BenchScale()
	r := harness.NewRunner(sc)

	t3 := r.Table3()
	t3.Render(os.Stdout)

	f17, err := r.Figure17()
	if err != nil {
		log.Fatal(err)
	}
	f17.Render(os.Stdout)

	f18, err := r.Figure18()
	if err != nil {
		log.Fatal(err)
	}
	f18.Render(os.Stdout)
}
