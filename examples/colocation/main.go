// Colocation: PC3D versus ReQoS on a contentious pairing.
//
// Co-locates the libquantum streamer with the cache-sensitive er-naive at
// a 95% QoS target under three policies — no mitigation, ReQoS napping,
// and PC3D — and reports the utilization/QoS trade-off each achieves.
//
// Run: go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
)

func main() {
	sc := harness.QuickScale()
	r := harness.NewRunner(sc)

	const host, ext, target = "libquantum", "er-naive", 0.95
	fmt.Printf("co-locating %s (batch) with %s (high priority), QoS target %.0f%%\n\n",
		host, ext, target*100)
	fmt.Printf("%-8s  %-12s  %-12s  %s\n", "system", "host util", "ext QoS", "notes")

	for _, sys := range []harness.System{harness.SystemNone, harness.SystemReQoS, harness.SystemPC3D} {
		pr, err := r.RunPair(host, ext, sys, target)
		if err != nil {
			log.Fatal(err)
		}
		notes := ""
		switch sys {
		case harness.SystemNone:
			notes = "QoS violated: no mitigation"
		case harness.SystemReQoS:
			notes = "QoS met by napping alone"
		case harness.SystemPC3D:
			notes = fmt.Sprintf("QoS met with %d NT hints + nap %.2f (%d compiles, %.2f%% runtime cycles)",
				pr.PC3D.BestMaskSize, pr.PC3D.CurrentNap, pr.PC3D.Compiles, pr.RuntimeFrac*100)
		}
		fmt.Printf("%-8s  %11.1f%%  %11.1f%%  %s\n", sys, pr.Utilization*100, pr.QoS*100, notes)
	}

	prP, _ := r.RunPair(host, ext, harness.SystemPC3D, target)
	prR, _ := r.RunPair(host, ext, harness.SystemReQoS, target)
	if prR.Utilization > 0 {
		fmt.Printf("\nPC3D recovers %.2fx the utilization ReQoS does at the same QoS target\n",
			prP.Utilization/prR.Utilization)
	}
}
