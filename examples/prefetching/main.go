// Prefetching: a second runtime policy on the same protean binary.
//
// Demonstrates the generality property of protean code: the lbm binary
// compiled once with pcc is first accelerated *introspectively* by the
// PCSP runtime (online software prefetching — a structural IR transform),
// then reverted — the same binary PC3D would manage extrospectively.
//
// Run: go run ./examples/prefetching
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pcsp"
	"repro/internal/sampling"
	"repro/internal/workload"
)

func main() {
	bin, err := workload.MustByName("lbm").CompileProtean()
	if err != nil {
		log.Fatal(err)
	}
	m := machine.New(machine.Config{Cores: 2})
	host, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 1})
	if err != nil {
		log.Fatal(err)
	}
	m.AddAgent(rt)

	meter := sampling.NewMeter(host)
	meter.Read(m)
	m.RunSeconds(1)
	base := meter.Read(m)
	fmt.Printf("lbm baseline:    %8.0f branches/s\n", base.BPS)

	ctrl := pcsp.New(rt, pcsp.Options{})
	defer ctrl.Close()
	m.AddAgent(ctrl)
	m.RunSeconds(3) // the pass profiles, generates, measures, decides
	if !ctrl.Done() {
		log.Fatal("optimization pass did not finish")
	}
	for _, r := range ctrl.Results() {
		verdict := "reverted"
		if r.Kept {
			verdict = fmt.Sprintf("kept (lead %d iterations)", r.LeadIters)
		}
		fmt.Printf("  %-16s %2d streaming loads, gain %+5.1f%% -> %s\n",
			r.Func, r.Targets, r.Gain*100, verdict)
	}

	meter.Read(m)
	m.RunSeconds(1)
	opt := meter.Read(m)
	fmt.Printf("lbm with PCSP:   %8.0f branches/s (%.2fx)\n", opt.BPS, opt.BPS/base.BPS)

	if err := rt.RevertAll(); err != nil {
		log.Fatalf("revert: %v", err)
	}
	m.RunSeconds(0.3)
	meter.Read(m)
	m.RunSeconds(1)
	back := meter.Read(m)
	fmt.Printf("after revert:    %8.0f branches/s (the original code, untouched)\n", back.BPS)
	fmt.Printf("runtime used %.2f%% of server cycles across the whole session\n",
		rt.ServerCycleFraction()*100)
}
