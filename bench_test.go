// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation, plus ablation benches for
// the design choices called out in DESIGN.md §4.
//
// Artifact benches regenerate the corresponding table/figure at BenchScale
// (shape-preserving, reduced rosters and durations) and report the headline
// quantity of each artifact as a custom metric. A process-wide Runner
// memoizes solo calibrations and shared pair runs, exactly as
// cmd/experiments does, so later benches reuse earlier benches' runs —
// per-bench wall time therefore reflects the artifact's *incremental* cost
// in the shared pipeline. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/datacenter"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pc3d"
	"repro/internal/pcc"
	"repro/internal/pcsp"
	"repro/internal/phase"
	"repro/internal/progbin"
	"repro/internal/qos"
	"repro/internal/workload"
)

func compileWithPolicy(app string, policy pcc.EdgePolicy) (*progbin.Binary, error) {
	return pcc.Compile(workload.MustByName(app).Module(), pcc.Options{Protean: true, Policy: policy})
}

func compileModule(mod *ir.Module) (*progbin.Binary, error) {
	return pcc.Compile(mod, pcc.Options{})
}

var benchRunner = harness.NewRunner(harness.BenchScale())

// runArtifact regenerates one artifact per iteration.
func runArtifact(b *testing.B, key string) []*harness.Table {
	b.Helper()
	a, err := harness.ArtifactByKey(key)
	if err != nil {
		b.Fatal(err)
	}
	var tables []*harness.Table
	for i := 0; i < b.N; i++ {
		tables, err = a.Run(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("artifact produced no rows")
		}
	}
	return tables
}

func lastCell(t *harness.Table, col int) string {
	return t.Rows[len(t.Rows)-1][col]
}

func parseNum(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func BenchmarkTable1Comparison(b *testing.B)   { runArtifact(b, "table1") }
func BenchmarkTable2Applications(b *testing.B) { runArtifact(b, "table2") }
func BenchmarkTable3Mixes(b *testing.B)        { runArtifact(b, "table3") }

func BenchmarkFigure2Variants(b *testing.B) { runArtifact(b, "fig2") }

func BenchmarkFigure3NapSweep(b *testing.B) {
	runArtifact(b, "fig3")
}

func BenchmarkFigure4VirtualizationOverhead(b *testing.B) {
	tables := runArtifact(b, "fig4")
	mean := tables[0].Rows[len(tables[0].Rows)-1]
	b.ReportMetric(parseNum(b, mean[1]), "protean-slowdown")
	b.ReportMetric(parseNum(b, mean[2]), "dynamorio-slowdown")
}

func BenchmarkFigure5StressSeparateCore(b *testing.B) { runArtifact(b, "fig5") }

func BenchmarkFigure6StressSameVsSeparate(b *testing.B) {
	tables := runArtifact(b, "fig6")
	b.ReportMetric(parseNum(b, tables[0].Rows[0][1]), "samecore-5ms-slowdown")
	b.ReportMetric(parseNum(b, lastCell(tables[0], 1)), "samecore-5000ms-slowdown")
}

func BenchmarkFigure7RuntimeCycles(b *testing.B) {
	tables := runArtifact(b, "fig7")
	var sum float64
	for _, row := range tables[0].Rows {
		sum += parseNum(b, row[1])
	}
	b.ReportMetric(sum/float64(len(tables[0].Rows)), "runtime-pct-of-server")
}

func BenchmarkFigure8Heuristics(b *testing.B) { runArtifact(b, "fig8") }

func BenchmarkFigure9UtilWebSearch(b *testing.B) {
	tables := runArtifact(b, "fig9")
	b.ReportMetric(parseNum(b, lastCell(tables[0], 1)), "mean-util-pct")
}

func BenchmarkFigure10UtilMediaStreaming(b *testing.B) {
	tables := runArtifact(b, "fig10")
	b.ReportMetric(parseNum(b, lastCell(tables[0], 1)), "mean-util-pct")
}

func BenchmarkFigure11UtilGraphAnalytics(b *testing.B) {
	tables := runArtifact(b, "fig11")
	b.ReportMetric(parseNum(b, lastCell(tables[0], 1)), "mean-util-pct")
}

func BenchmarkFigure12QoSWebSearch(b *testing.B)      { runArtifact(b, "fig12") }
func BenchmarkFigure13QoSMediaStreaming(b *testing.B) { runArtifact(b, "fig13") }
func BenchmarkFigure14QoSGraphAnalytics(b *testing.B) { runArtifact(b, "fig14") }

func BenchmarkFigure15PC3DvsReQoS(b *testing.B) {
	tables := runArtifact(b, "fig15")
	b.ReportMetric(parseNum(b, lastCell(tables[0], 3)), "pc3d-over-reqos")
}

func BenchmarkFigure16FluctuatingLoad(b *testing.B) { runArtifact(b, "fig16") }

func BenchmarkFigure17ServerCounts(b *testing.B) { runArtifact(b, "fig17") }

func BenchmarkFigure18EnergyEfficiency(b *testing.B) {
	tables := runArtifact(b, "fig18")
	var sum float64
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			b.Fatal(err)
		}
		sum += v
	}
	b.ReportMetric(sum/float64(len(tables[0].Rows)), "mean-efficiency-ratio")
}

// BenchmarkFigureMigrate regenerates the migration artifact and reports
// the measured p99 QoS-tail lift (on minus off, in QoS points).
func BenchmarkFigureMigrate(b *testing.B) {
	tables := runArtifact(b, "figmigrate")
	off, err := strconv.ParseFloat(tables[0].Rows[0][3], 64)
	if err != nil {
		b.Fatal(err)
	}
	on, err := strconv.ParseFloat(tables[0].Rows[1][3], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(on-off, "p99-tail-lift")
}

// ---------------------------------------------------------------- baselines

// BenchmarkMachineInstructions is the simulator's raw speed baseline:
// simulated instructions retired per wall-clock second by one core
// executing a plain binary under the default engine (superblock).
// scripts/bench.sh records it in BENCH_machine.json so regressions in the
// engine's hot paths show up as a number, not a feeling, and
// scripts/bench_check.sh gates CI on it.
func BenchmarkMachineInstructions(b *testing.B) {
	bin, err := workload.MustByName("libquantum").CompilePlain()
	if err != nil {
		b.Fatal(err)
	}
	m := machine.New(machine.Config{Cores: 1})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		b.Fatal(err)
	}
	start := p.Counters().Insts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunSeconds(0.25)
	}
	insts := p.Counters().Insts - start
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/sec")
}

// BenchmarkFleetQuanta is the cluster-side capacity baseline: scheduling
// quanta executed across every simulated server per wall-clock second, on
// a small SystemNone fleet (no PC3D search, so the number tracks the
// simulation plane itself). Paired with BenchmarkMachineInstructions in
// BENCH_machine.json.
func BenchmarkFleetQuanta(b *testing.B) {
	mix, _ := datacenter.MixByName("WL1")
	var quanta uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fleet.New(fleet.Config{
			Servers: 8, Instances: 4, Webservice: "web-search", Mix: mix,
			System: fleet.SystemNone, Policy: fleet.RoundRobin{}, Seed: 1,
			SoloSeconds: 0.25, SettleSeconds: 0.5, MeasureSeconds: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Run(); err != nil {
			b.Fatal(err)
		}
		quanta += f.Telemetry().CounterValue("machine", "quanta_total")
	}
	b.ReportMetric(float64(quanta)/b.Elapsed().Seconds(), "fleet-quanta/sec")
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationEdgePolicy quantifies the virtualization-policy design
// choice (DESIGN.md §4): the paper's multi-block-callee policy versus
// virtualizing every call. More EVT indirection costs more.
func BenchmarkAblationEdgePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		insts := ablationEdgePolicy(b)
		b.ReportMetric(insts["all-calls"]/insts["multi-block"], "allcalls-vs-multiblock")
		b.ReportMetric(insts["no-edges"]/insts["multi-block"], "noedges-vs-multiblock")
	}
}

// BenchmarkAblationNTPolicy compares the shared-LLC non-temporal policies:
// full bypass (default) versus LRU-insertion demotion. Reports, for an
// all-hints libquantum against er-naive, the victim's QoS and the host's
// own throughput relative to its unhinted co-located self under each
// policy — the pressure-relief vs self-cost trade-off.
func BenchmarkAblationNTPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vBypass, hBypass := ablationNTPolicy(b, cache.NTBypass)
		vDemote, hDemote := ablationNTPolicy(b, cache.NTDemote)
		b.ReportMetric(vBypass, "victim-qos-bypass")
		b.ReportMetric(vDemote, "victim-qos-demote")
		b.ReportMetric(hBypass, "host-selfperf-bypass")
		b.ReportMetric(hDemote, "host-selfperf-demote")
	}
}

// BenchmarkAblationSearchBounds compares Algorithm 1 with and without its
// nap-bound reuse, reporting the number of nap probes each needs to
// converge (the bound reuse is what keeps the search O(n) cheap).
func BenchmarkAblationSearchBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationSearch(b, false)
		without := ablationSearch(b, true)
		b.ReportMetric(float64(with), "nap-probes-with-bounds")
		b.ReportMetric(float64(without), "nap-probes-without-bounds")
		if without < with {
			b.Fatalf("bounds reuse should reduce probes: %d vs %d", with, without)
		}
	}
}

// BenchmarkAblationFluxCadence sweeps the flux probe period and reports the
// probe overhead imposed on the host at each cadence (the paper picks 40ms
// probes every 4s for ~1%).
func BenchmarkAblationFluxCadence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, periodMS := range []uint64{100, 400, 1600} {
			frac := ablationFluxOverhead(b, periodMS)
			b.ReportMetric(frac*100, "probe-overhead-pct-"+strconv.FormatUint(periodMS, 10)+"ms")
		}
	}
}

// ----------------------------------------------------- ablation mechanics

func ablationEdgePolicy(b *testing.B) map[string]float64 {
	b.Helper()
	out := map[string]float64{}
	for name, policy := range map[string]pcc.EdgePolicy{
		"no-edges":    pcc.NoEdges,
		"multi-block": pcc.MultiBlockCallees,
		"all-calls":   pcc.AllCalls,
	} {
		bin, err := compileWithPolicy("gobmk", policy)
		if err != nil {
			b.Fatal(err)
		}
		m := machine.New(machine.Config{Cores: 1})
		p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
		if err != nil {
			b.Fatal(err)
		}
		m.RunSeconds(1)
		out[name] = float64(p.Counters().Insts)
	}
	return out
}

func ablationNTPolicy(b *testing.B, pol cache.NTPolicy) (victimQoS, hostSelfPerf float64) {
	b.Helper()
	hier := cache.DefaultHierarchy(2)
	hier.LLC.NT = pol

	soloVictim := func() float64 {
		m := machine.New(machine.Config{Cores: 2, Hierarchy: hier})
		vb, err := workload.MustByName("er-naive").CompilePlain()
		if err != nil {
			b.Fatal(err)
		}
		vp, _ := m.Attach(0, vb, machine.ProcessConfig{Restart: true})
		m.RunSeconds(1.5)
		return float64(vp.Counters().Insts)
	}()

	run := func(nt bool) (victim, host float64) {
		m := machine.New(machine.Config{Cores: 2, Hierarchy: hier})
		vb, _ := workload.MustByName("er-naive").CompilePlain()
		vp, _ := m.Attach(0, vb, machine.ProcessConfig{Restart: true})
		mod := workload.MustByName("libquantum").Module()
		if nt {
			for _, ld := range mod.Loads() {
				ld.NT = true
			}
			if err := mod.Finalize(); err != nil {
				b.Fatal(err)
			}
		}
		hb, err := compileModule(mod)
		if err != nil {
			b.Fatal(err)
		}
		hp, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
		if err != nil {
			b.Fatal(err)
		}
		m.RunSeconds(1.5)
		return float64(vp.Counters().Insts), float64(hp.Counters().Branches)
	}
	vPlain, hPlain := run(false)
	vNT, hNT := run(true)
	_ = vPlain
	return vNT / soloVictim, hNT / hPlain
}

func ablationSearch(b *testing.B, noBounds bool) int {
	b.Helper()
	extSolo, err := benchRunner.Solo("er-naive")
	if err != nil {
		b.Fatal(err)
	}
	m := machine.New(machine.Config{Cores: 4})
	eb, _ := workload.MustByName("er-naive").CompilePlain()
	ep, _ := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	hb, _ := workload.MustByName("libquantum").CompileProtean()
	hp, _ := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	rt, err := core.New(core.Config{Machine: m, Host: hp, RuntimeCore: 2})
	if err != nil {
		b.Fatal(err)
	}
	m.AddAgent(rt)
	flux := qos.NewFluxMonitor(m, hp, ep, 0, 0)
	flux.ReferenceIPS = extSolo.IPS
	m.AddAgent(flux)
	extSig := func(*machine.Machine) phase.Signature {
		solo, _ := flux.SoloIPS()
		return phase.Signature{Rate: solo}
	}
	ctrl := pc3d.New(pc3d.Config{
		Runtime: rt, Steady: flux, Window: &qos.FluxWindow{Flux: flux, Ext: ep}, ExtSig: extSig,
		Target: 0.95, MaxSites: 6, NoBoundsReuse: noBounds,
	})
	defer ctrl.Close()
	m.AddAgent(ctrl)
	m.RunSeconds(8)
	return ctrl.Stats().NapProbes
}

func ablationFluxOverhead(b *testing.B, periodMS uint64) float64 {
	b.Helper()
	m := machine.New(machine.Config{Cores: 2})
	ms := uint64(m.Config().FreqHz / 1000)
	eb, _ := workload.MustByName("er-naive").CompilePlain()
	ep, _ := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	hb, _ := workload.MustByName("libquantum").CompilePlain()
	hp, _ := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	flux := qos.NewFluxMonitor(m, hp, ep, periodMS*ms, 4*ms)
	m.AddAgent(flux)
	m.RunSeconds(3)
	c := hp.Counters()
	return float64(c.SleepCycles) / float64(c.Cycles)
}

// BenchmarkAblationPrefetchLead sweeps PCSP's lead distance on lbm and
// reports the BPS gain at each, plus the no-prefetch baseline.
func BenchmarkAblationPrefetchLead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, iters := range []int64{1, 4, 16, 64} {
			gain := ablationPrefetchLead(b, iters)
			b.ReportMetric(gain*100, "gain-pct-lead-"+strconv.FormatInt(iters, 10))
		}
	}
}

func ablationPrefetchLead(b *testing.B, iters int64) float64 {
	b.Helper()
	bin, err := workload.MustByName("lbm").CompileProtean()
	if err != nil {
		b.Fatal(err)
	}
	m := machine.New(machine.Config{Cores: 2})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := core.New(core.Config{Machine: m, Host: p, RuntimeCore: 1})
	if err != nil {
		b.Fatal(err)
	}
	m.AddAgent(rt)
	ctrl := pcsp.New(rt, pcsp.Options{LeadIters: []int64{iters}, MaxFuncs: 2})
	defer ctrl.Close()
	m.AddAgent(ctrl)
	m.RunSeconds(2.5)
	best := 0.0
	for _, r := range ctrl.Results() {
		if r.Gain > best {
			best = r.Gain
		}
	}
	return best
}
