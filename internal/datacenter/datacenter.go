// Package datacenter projects server-level measurements to warehouse
// scale, reproducing the analyses of Section V-E: how many servers a
// workload mix needs with and without PC3D-enabled co-location (Figure 17)
// and the resulting energy efficiency (Figure 18).
//
// The model follows the paper: a fleet of N machines runs N instances of a
// latency-sensitive webservice (one per machine, sized for its QoS target)
// plus N batch-application instances drawn equally from a mix. A
// PC3D-enabled fleet co-locates each batch instance with a webservice at
// the utilization PC3D achieves; a no-co-location fleet must add dedicated
// batch servers to reach the same batch throughput. Power uses the linear
// CPU-utilization model the paper cites.
package datacenter

import "fmt"

// Mix is one batch workload mix (Table III).
type Mix struct {
	Name string
	// Apps are the batch applications, run in equal proportion.
	Apps []string
}

// TableIII returns the paper's three scale-out mixes.
func TableIII() []Mix {
	return []Mix{
		{Name: "WL1", Apps: []string{"libquantum", "bzip2", "sphinx3", "milc"}},
		{Name: "WL2", Apps: []string{"soplex", "bst", "milc", "lbm"}},
		{Name: "WL3", Apps: []string{"sledge", "soplex", "sphinx3", "libquantum"}},
	}
}

// MixByName finds a Table III mix by name.
func MixByName(name string) (Mix, bool) {
	for _, m := range TableIII() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// Instances samples n batch instances from the mix in equal proportion
// (round-robin over the app list), matching the projection's assumption
// that instances are "drawn equally" from the mix. The fleet simulator
// uses this to materialize the analytic mix as concrete placements.
func (m Mix) Instances(n int) []string {
	if len(m.Apps) == 0 || n <= 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = m.Apps[i%len(m.Apps)]
	}
	return out
}

// Utilizations maps batch app name → the utilization PC3D achieves for it
// against a given webservice at a given QoS target (host BPS normalized to
// solo), measured by the harness.
type Utilizations map[string]float64

// ScaleConfig parameterizes the projection.
type ScaleConfig struct {
	// BaseServers is the webservice fleet size (paper: 10k machines).
	BaseServers int
	// IdlePowerFraction is power draw at zero utilization relative to
	// peak; the linear model interpolates to 1.0 at full utilization.
	// Warehouse-scale servers idle at roughly half peak power.
	IdlePowerFraction float64
	// WebserviceUtil is each machine's CPU utilization devoted to the
	// webservice itself (one core of four in the paper's setup).
	WebserviceUtil float64
}

// DefaultScale mirrors the paper's analysis setup.
func DefaultScale() ScaleConfig {
	return ScaleConfig{BaseServers: 10000, IdlePowerFraction: 0.5, WebserviceUtil: 0.25}
}

// Result is the projection for one (webservice, mix) pair.
type Result struct {
	Webservice string
	Mix        string
	// PC3DServers is the fleet size with PC3D co-location (the base fleet;
	// batch rides along).
	PC3DServers int
	// NoColoServers is the fleet size a no-co-location policy needs for
	// equal webservice and batch throughput.
	NoColoServers int
	// ExtraServers = NoColoServers - PC3DServers.
	ExtraServers int
	// MeanBatchUtil is the mix's average PC3D utilization.
	MeanBatchUtil float64
	// EnergyEfficiencyRatio is PC3D work-per-Watt over no-co-location
	// work-per-Watt (>1 means PC3D is more efficient).
	EnergyEfficiencyRatio float64
}

// Project computes the scale-out result for one webservice and mix, given
// per-app PC3D utilizations (fraction of a dedicated core's batch
// throughput achieved while co-located).
//
// Utilizations are clamped to [0,1] before use: measurement noise can push
// a co-located app marginally past its solo rate, but the projection's
// throughput unit is "one dedicated batch server", so a clamped value keeps
// the server count and the power model (which saturates at full
// utilization) consistent. Values above 1.5 are still rejected as
// implausible measurements rather than noise.
func Project(cfg ScaleConfig, webservice string, mix Mix, utils Utilizations) (Result, error) {
	if len(mix.Apps) == 0 {
		return Result{}, fmt.Errorf("datacenter: mix %q has no apps", mix.Name)
	}
	mean := 0.0
	for _, app := range mix.Apps {
		u, ok := utils[app]
		if !ok {
			return Result{}, fmt.Errorf("datacenter: no utilization for %q", app)
		}
		if u < 0 || u > 1.5 {
			return Result{}, fmt.Errorf("datacenter: implausible utilization %.3f for %q", u, app)
		}
		if u > 1 {
			u = 1
		}
		mean += u
	}
	mean /= float64(len(mix.Apps))

	n := cfg.BaseServers
	// PC3D fleet: n machines run the webservice and deliver n×mean units
	// of batch throughput alongside. The no-co-location fleet runs the
	// webservice on n machines and needs dedicated batch servers for the
	// same n×mean units; a dedicated server delivers 1 unit.
	extra := int(float64(n)*mean + 0.5)
	res := Result{
		Webservice:    webservice,
		Mix:           mix.Name,
		PC3DServers:   n,
		NoColoServers: n + extra,
		ExtraServers:  extra,
		MeanBatchUtil: mean,
	}

	// Energy: linear utilization model, P(u) = idle + (1-idle)·u of peak.
	// Both fleets do the same total work (n webservice instances + n·mean
	// batch units), so efficiency ratio = inverse power ratio.
	pc3dPower := float64(n) * Power(cfg, cfg.WebserviceUtil+(1-cfg.WebserviceUtil)*mean)
	ncPower := float64(n)*Power(cfg, cfg.WebserviceUtil) + float64(extra)*Power(cfg, 1.0)
	if pc3dPower > 0 {
		res.EnergyEfficiencyRatio = ncPower / pc3dPower
	}
	return res, nil
}

// Power returns draw relative to peak at CPU utilization u under the
// linear model the paper cites: P(u) = idle + (1-idle)·u, saturating at
// peak. Exported so the fleet simulator can derive energy from measured
// per-server utilizations with the identical model.
func Power(cfg ScaleConfig, u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return cfg.IdlePowerFraction + (1-cfg.IdlePowerFraction)*u
}
