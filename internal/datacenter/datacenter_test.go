package datacenter

import (
	"math"
	"testing"
	"testing/quick"
)

func testUtils() Utilizations {
	return Utilizations{
		"libquantum": 0.70, "bzip2": 0.95, "sphinx3": 0.80, "milc": 0.60,
		"soplex": 0.55, "bst": 0.50, "lbm": 0.45, "sledge": 0.40,
	}
}

func TestTableIII(t *testing.T) {
	mixes := TableIII()
	if len(mixes) != 3 {
		t.Fatalf("mixes = %d, want 3", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Apps) != 4 {
			t.Errorf("%s has %d apps, want 4", m.Name, len(m.Apps))
		}
	}
}

func TestProjectServerCounts(t *testing.T) {
	cfg := DefaultScale()
	res, err := Project(cfg, "web-search", TableIII()[0], testUtils())
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if res.PC3DServers != 10000 {
		t.Errorf("PC3DServers = %d", res.PC3DServers)
	}
	// WL1 mean util = (0.70+0.95+0.80+0.60)/4 = 0.7625 → 7625 extra.
	if res.ExtraServers != 7625 {
		t.Errorf("ExtraServers = %d, want 7625", res.ExtraServers)
	}
	if res.NoColoServers != 17625 {
		t.Errorf("NoColoServers = %d, want 17625", res.NoColoServers)
	}
	if math.Abs(res.MeanBatchUtil-0.7625) > 1e-9 {
		t.Errorf("MeanBatchUtil = %v", res.MeanBatchUtil)
	}
	// Paper reports 18–34% energy-efficiency improvements.
	if res.EnergyEfficiencyRatio < 1.1 || res.EnergyEfficiencyRatio > 1.6 {
		t.Errorf("EnergyEfficiencyRatio = %.3f, want ~1.2–1.4", res.EnergyEfficiencyRatio)
	}
}

func TestProjectErrors(t *testing.T) {
	cfg := DefaultScale()
	if _, err := Project(cfg, "w", Mix{Name: "empty"}, testUtils()); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := Project(cfg, "w", Mix{Name: "m", Apps: []string{"ghost"}}, testUtils()); err == nil {
		t.Error("missing utilization accepted")
	}
	if _, err := Project(cfg, "w", Mix{Name: "m", Apps: []string{"x"}}, Utilizations{"x": 9}); err == nil {
		t.Error("implausible utilization accepted")
	}
}

// Property: higher utilization ⇒ more extra servers needed without
// co-location and at least as good an efficiency ratio.
func TestProjectMonotonic(t *testing.T) {
	cfg := DefaultScale()
	prop := func(raw uint8) bool {
		u1 := 0.1 + float64(raw%100)/200 // 0.1..0.6
		u2 := u1 + 0.2
		m := Mix{Name: "m", Apps: []string{"a"}}
		r1, err1 := Project(cfg, "w", m, Utilizations{"a": u1})
		r2, err2 := Project(cfg, "w", m, Utilizations{"a": u2})
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.ExtraServers > r1.ExtraServers &&
			r2.EnergyEfficiencyRatio >= r1.EnergyEfficiencyRatio-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Regression: a utilization in (1.0, 1.5] passes validation but the power
// model saturates at 1.0; Project must clamp the throughput side the same
// way or the energy ratio is skewed. A clamped input must behave exactly
// like 1.0 on every output.
func TestProjectClampsSuperUnityUtilization(t *testing.T) {
	cfg := DefaultScale()
	m := Mix{Name: "m", Apps: []string{"a", "b"}}
	clamped, err := Project(cfg, "w", m, Utilizations{"a": 1.2, "b": 0.5})
	if err != nil {
		t.Fatalf("Project(1.2): %v", err)
	}
	unity, err := Project(cfg, "w", m, Utilizations{"a": 1.0, "b": 0.5})
	if err != nil {
		t.Fatalf("Project(1.0): %v", err)
	}
	if clamped != unity {
		t.Errorf("clamped result %+v != unity result %+v", clamped, unity)
	}
	if math.Abs(clamped.MeanBatchUtil-0.75) > 1e-9 {
		t.Errorf("MeanBatchUtil = %v, want 0.75", clamped.MeanBatchUtil)
	}
}

func TestMixInstances(t *testing.T) {
	m := Mix{Name: "m", Apps: []string{"a", "b", "c"}}
	got := m.Instances(7)
	want := []string{"a", "b", "c", "a", "b", "c", "a"}
	if len(got) != len(want) {
		t.Fatalf("Instances(7) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Instances(7) = %v, want %v", got, want)
		}
	}
	if m.Instances(0) != nil {
		t.Error("Instances(0) should be nil")
	}
	if (Mix{}).Instances(3) != nil {
		t.Error("empty mix Instances should be nil")
	}
}

func TestMixByName(t *testing.T) {
	if m, ok := MixByName("WL2"); !ok || m.Name != "WL2" {
		t.Errorf("MixByName(WL2) = %+v, %v", m, ok)
	}
	if _, ok := MixByName("WL9"); ok {
		t.Error("MixByName(WL9) should not exist")
	}
}

func TestPowerModelBounds(t *testing.T) {
	cfg := DefaultScale()
	if p := Power(cfg, 0); p != cfg.IdlePowerFraction {
		t.Errorf("Power(0) = %v", p)
	}
	if p := Power(cfg, 1); p != 1 {
		t.Errorf("Power(1) = %v", p)
	}
	if p := Power(cfg, 2); p != 1 {
		t.Errorf("Power clamps above 1: %v", p)
	}
	if p := Power(cfg, -1); p != cfg.IdlePowerFraction {
		t.Errorf("Power clamps below 0: %v", p)
	}
}
