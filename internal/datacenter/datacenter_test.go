package datacenter

import (
	"math"
	"testing"
	"testing/quick"
)

func testUtils() Utilizations {
	return Utilizations{
		"libquantum": 0.70, "bzip2": 0.95, "sphinx3": 0.80, "milc": 0.60,
		"soplex": 0.55, "bst": 0.50, "lbm": 0.45, "sledge": 0.40,
	}
}

func TestTableIII(t *testing.T) {
	mixes := TableIII()
	if len(mixes) != 3 {
		t.Fatalf("mixes = %d, want 3", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Apps) != 4 {
			t.Errorf("%s has %d apps, want 4", m.Name, len(m.Apps))
		}
	}
}

func TestProjectServerCounts(t *testing.T) {
	cfg := DefaultScale()
	res, err := Project(cfg, "web-search", TableIII()[0], testUtils())
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if res.PC3DServers != 10000 {
		t.Errorf("PC3DServers = %d", res.PC3DServers)
	}
	// WL1 mean util = (0.70+0.95+0.80+0.60)/4 = 0.7625 → 7625 extra.
	if res.ExtraServers != 7625 {
		t.Errorf("ExtraServers = %d, want 7625", res.ExtraServers)
	}
	if res.NoColoServers != 17625 {
		t.Errorf("NoColoServers = %d, want 17625", res.NoColoServers)
	}
	if math.Abs(res.MeanBatchUtil-0.7625) > 1e-9 {
		t.Errorf("MeanBatchUtil = %v", res.MeanBatchUtil)
	}
	// Paper reports 18–34% energy-efficiency improvements.
	if res.EnergyEfficiencyRatio < 1.1 || res.EnergyEfficiencyRatio > 1.6 {
		t.Errorf("EnergyEfficiencyRatio = %.3f, want ~1.2–1.4", res.EnergyEfficiencyRatio)
	}
}

func TestProjectErrors(t *testing.T) {
	cfg := DefaultScale()
	if _, err := Project(cfg, "w", Mix{Name: "empty"}, testUtils()); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := Project(cfg, "w", Mix{Name: "m", Apps: []string{"ghost"}}, testUtils()); err == nil {
		t.Error("missing utilization accepted")
	}
	if _, err := Project(cfg, "w", Mix{Name: "m", Apps: []string{"x"}}, Utilizations{"x": 9}); err == nil {
		t.Error("implausible utilization accepted")
	}
}

// Property: higher utilization ⇒ more extra servers needed without
// co-location and at least as good an efficiency ratio.
func TestProjectMonotonic(t *testing.T) {
	cfg := DefaultScale()
	prop := func(raw uint8) bool {
		u1 := 0.1 + float64(raw%100)/200 // 0.1..0.6
		u2 := u1 + 0.2
		m := Mix{Name: "m", Apps: []string{"a"}}
		r1, err1 := Project(cfg, "w", m, Utilizations{"a": u1})
		r2, err2 := Project(cfg, "w", m, Utilizations{"a": u2})
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.ExtraServers > r1.ExtraServers &&
			r2.EnergyEfficiencyRatio >= r1.EnergyEfficiencyRatio-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerModelBounds(t *testing.T) {
	cfg := DefaultScale()
	if p := power(cfg, 0); p != cfg.IdlePowerFraction {
		t.Errorf("power(0) = %v", p)
	}
	if p := power(cfg, 1); p != 1 {
		t.Errorf("power(1) = %v", p)
	}
	if p := power(cfg, 2); p != 1 {
		t.Errorf("power clamps above 1: %v", p)
	}
	if p := power(cfg, -1); p != cfg.IdlePowerFraction {
		t.Errorf("power clamps below 0: %v", p)
	}
}
