package reqos

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/qos"
	"repro/internal/workload"
)

func soloIPS(t *testing.T, name string) float64 {
	t.Helper()
	spec := workload.MustByName(name)
	bin, err := spec.CompilePlain()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 2})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	m.RunSeconds(0.5)
	c0 := p.Counters()
	m.RunSeconds(1.5)
	return float64(p.Counters().Sub(c0).Insts) / 1.5
}

func colocate(t *testing.T, host string) (*machine.Machine, *machine.Process, *machine.Process, *qos.FluxMonitor) {
	t.Helper()
	ref := soloIPS(t, "er-naive")
	m := machine.New(machine.Config{Cores: 2})
	eb, _ := workload.MustByName("er-naive").CompilePlain()
	ext, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach ext: %v", err)
	}
	hb, _ := workload.MustByName(host).CompilePlain()
	hp, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach host: %v", err)
	}
	flux := qos.NewFluxMonitor(m, hp, ext, 0, 0)
	flux.ReferenceIPS = ref
	m.AddAgent(flux)
	return m, hp, ext, flux
}

func TestReQoSProtectsQoS(t *testing.T) {
	m, host, ext, flux := colocate(t, "lbm")
	ref := flux.ReferenceIPS
	c := New(host, flux, Options{Target: 0.9})
	m.AddAgent(c)
	m.RunSeconds(6) // converge
	e0 := ext.Counters()
	m.RunSeconds(2)
	trueQoS := float64(ext.Counters().Sub(e0).Insts) / 2 / ref
	if trueQoS < 0.82 {
		t.Errorf("true QoS = %.3f under ReQoS, target 0.9", trueQoS)
	}
	if host.NapIntensity() < 0.2 {
		t.Errorf("nap = %.2f; lbm should need substantial napping", host.NapIntensity())
	}
	if c.Adjustments() == 0 {
		t.Error("controller never adjusted")
	}
}

func TestReQoSRelaxesWhenGentle(t *testing.T) {
	m, host, _, flux := colocate(t, "bzip2")
	c := New(host, flux, Options{Target: 0.6})
	m.AddAgent(c)
	m.RunSeconds(6)
	if host.NapIntensity() > 0.1 {
		t.Errorf("nap = %.2f against a gentle host at a loose target", host.NapIntensity())
	}
}

func TestReQoSNapRecoversAfterTransient(t *testing.T) {
	m, host, _, flux := colocate(t, "lbm")
	c := New(host, flux, Options{Target: 0.9})
	m.AddAgent(c)
	m.RunSeconds(6)
	converged := host.NapIntensity()
	// Force an excessive nap; the controller should relax back down.
	host.SetNapIntensity(1)
	m.RunSeconds(6)
	relaxed := host.NapIntensity()
	if relaxed > 0.99 {
		t.Errorf("nap stuck at %.2f after transient", relaxed)
	}
	_ = converged
}

func TestReQoSNoQoSSourceNoAction(t *testing.T) {
	m, host, _, _ := colocate(t, "lbm")
	src := staticSource{}
	c := New(host, src, Options{Target: 0.9})
	m.AddAgent(c)
	m.RunSeconds(1)
	if host.NapIntensity() != 0 || c.Adjustments() != 0 {
		t.Error("controller acted without a QoS estimate")
	}
}

type staticSource struct{}

func (staticSource) QoS() (float64, bool) { return 0, false }
