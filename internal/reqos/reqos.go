// Package reqos implements the paper's baseline contention-mitigation
// system: ReQoS-style reactive napping (Tang et al., ASPLOS 2013).
//
// ReQoS protects a high-priority co-runner by throttling the low-priority
// host with naps of varying intensity — and nothing else. It cannot
// transform the host's code, so any cache pressure the host generates
// while awake is paid for entirely with sleep time. PC3D uses the same
// napping mechanism as its fallback, which is why the two systems coincide
// on hosts whose pressure hints cannot remove (Section V-C).
package reqos

import (
	"repro/internal/machine"
	"repro/internal/qos"
)

// Options tune the reactive controller.
type Options struct {
	// Target is the co-runner QoS target.
	Target float64
	// CheckCycles is the reaction period; it should match the QoS
	// source's update rate so each reaction sees a fresh estimate
	// (default 400 ms, the flux monitor's period).
	CheckCycles uint64
	// Gain scales the nap increase per unit of QoS deficit (default 1.0).
	Gain float64
	// StepDown is the nap relaxation step when QoS has headroom
	// (default 0.02).
	StepDown float64
	// Headroom above target before relaxing (default 0.02).
	Headroom float64
}

func (o Options) withDefaults(m *machine.Machine) Options {
	if o.Target == 0 {
		o.Target = 0.95
	}
	if o.CheckCycles == 0 {
		o.CheckCycles = 400 * uint64(m.Config().FreqHz/1000)
	}
	if o.Gain == 0 {
		o.Gain = 1.0
	}
	if o.StepDown == 0 {
		o.StepDown = 0.02
	}
	if o.Headroom == 0 {
		o.Headroom = 0.02
	}
	return o
}

// Controller reactively adjusts the host's nap intensity to keep the
// co-runner at its QoS target. It implements machine.Agent.
type Controller struct {
	host *machine.Process
	src  qos.Source
	opts Options

	initialized bool
	nextCheck   uint64
	adjustments int
}

// New builds a controller over the host, reading QoS from src.
func New(host *machine.Process, src qos.Source, opts Options) *Controller {
	return &Controller{host: host, src: src, opts: opts}
}

// Tick applies one reactive step per check period.
func (c *Controller) Tick(m *machine.Machine) {
	if !c.initialized {
		c.opts = c.opts.withDefaults(m)
		c.initialized = true
	}
	now := m.Now()
	if now < c.nextCheck {
		return
	}
	c.nextCheck = now + c.opts.CheckCycles
	q, ok := c.src.QoS()
	if !ok {
		return
	}
	nap := c.host.NapIntensity()
	switch {
	case q < c.opts.Target:
		deficit := c.opts.Target - q
		c.host.SetNapIntensity(nap + deficit*c.opts.Gain)
		c.adjustments++
	case q > c.opts.Target+c.opts.Headroom && nap > 0:
		step := c.opts.StepDown
		if q >= 0.99 {
			// Saturated QoS gives no gradient; relax aggressively to
			// rediscover the constraint (load may have dropped away).
			step *= 8
		}
		c.host.SetNapIntensity(nap - step)
		c.adjustments++
	}
}

// Adjustments counts nap changes made.
func (c *Controller) Adjustments() int { return c.adjustments }
