// Package progbin defines the protean binary format: the container produced
// by pcc and consumed by the machine loader and the protean runtime.
//
// A protean binary is an ordinary executable program image plus the two
// metadata structures of Section III-A-2: the Edge Virtualization Table
// image and the serialized, compressed IR of the program, both "placed in
// the data region". A binary compiled without the protean pass carries
// neither and runs identically — the paper's "can be run without the
// runtime system" property.
package progbin

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/isa"
)

// magic identifies the serialized binary format.
const magic = "PCBIN1\n"

// ErrNotProtean is returned when runtime features require metadata that a
// plain binary does not carry.
var ErrNotProtean = errors.New("progbin: binary carries no protean metadata")

// Binary is a loadable program image.
type Binary struct {
	// Program is the lowered text section plus static metadata.
	Program *isa.Program
	// Protean marks binaries produced by the protean compiler pass.
	Protean bool
	// IRBlob is the compressed serialized IR (empty for plain binaries).
	IRBlob []byte
}

// HasIR reports whether the binary embeds its IR.
func (b *Binary) HasIR() bool { return len(b.IRBlob) > 0 }

// DecodeIR decompresses and deserializes the embedded IR. Each call returns
// a fresh module, so callers may transform it freely.
func (b *Binary) DecodeIR() (*ir.Module, error) {
	if !b.HasIR() {
		return nil, ErrNotProtean
	}
	return ir.DecodeBytes(b.IRBlob)
}

// WriteTo serializes the binary.
func (b *Binary) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return 0, fmt.Errorf("progbin: encode %q: %w", b.Program.Name, err)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// EncodeBytes serializes the binary to a byte slice.
func (b *Binary) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Read deserializes a binary written by WriteTo.
func Read(r io.Reader) (*Binary, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("progbin: read header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("progbin: bad magic %q", head)
	}
	var b Binary
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("progbin: decode: %w", err)
	}
	if b.Program == nil {
		return nil, errors.New("progbin: binary has no program")
	}
	return &b, nil
}

// DecodeBytes deserializes EncodeBytes output.
func DecodeBytes(data []byte) (*Binary, error) {
	return Read(bytes.NewReader(data))
}

// LiveEVT is the mutable, shared Edge Virtualization Table of one running
// program. The interpreter reads targets on every virtualized call; the
// runtime redirects execution by overwriting a slot. Slot updates are single
// atomic writes — "requires no synchronization between the host program and
// the runtime" (Section III-B-2) — so the runtime may run concurrently with
// the machine.
type LiveEVT struct {
	names   []string
	targets []atomic.Int64
	writes  atomic.Uint64
}

// NewLiveEVT instantiates the table from the binary's EVT image.
func NewLiveEVT(image []isa.EVTEntry) *LiveEVT {
	e := &LiveEVT{
		names:   make([]string, len(image)),
		targets: make([]atomic.Int64, len(image)),
	}
	for i, ent := range image {
		e.names[i] = ent.Callee
		e.targets[i].Store(int64(ent.Target))
	}
	return e
}

// Len returns the number of slots.
func (e *LiveEVT) Len() int { return len(e.names) }

// Callee returns the function name slot dispatches for.
func (e *LiveEVT) Callee(slot int) string { return e.names[slot] }

// Target returns the current dispatch PC of slot.
func (e *LiveEVT) Target(slot int) int { return int(e.targets[slot].Load()) }

// SetTarget atomically redirects slot to pc.
func (e *LiveEVT) SetTarget(slot, pc int) {
	e.targets[slot].Store(int64(pc))
	e.writes.Add(1)
}

// SlotFor returns the slot index dispatching for callee, or -1.
func (e *LiveEVT) SlotFor(callee string) int {
	for i, n := range e.names {
		if n == callee {
			return i
		}
	}
	return -1
}

// Writes counts SetTarget calls, a cheap dispatch-activity telemetry signal.
func (e *LiveEVT) Writes() uint64 { return e.writes.Load() }
