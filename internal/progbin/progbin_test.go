package progbin

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

func sampleModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("sample")
	mb.Global("g", 8192)
	f := mb.Function("work")
	f.Loop(10, func() {
		f.Load(ir.Access{Global: "g", Pattern: ir.Seq})
	})
	f.Return()
	main := mb.Function("main")
	main.Call("work")
	main.Return()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func sampleBinary(t *testing.T, protean bool) *Binary {
	t.Helper()
	m := sampleModule(t)
	var virt func(*ir.Module, *ir.Function) bool
	if protean {
		virt = func(_ *ir.Module, f *ir.Function) bool { return len(f.Blocks) > 1 }
	}
	p, err := isa.Lower(m, isa.Config{Virtualize: virt})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	b := &Binary{Program: p, Protean: protean}
	if protean {
		blob, err := ir.EncodeBytes(m)
		if err != nil {
			t.Fatalf("EncodeBytes: %v", err)
		}
		b.IRBlob = blob
	}
	return b
}

func TestBinaryRoundTrip(t *testing.T) {
	b := sampleBinary(t, true)
	data, err := b.EncodeBytes()
	if err != nil {
		t.Fatalf("EncodeBytes: %v", err)
	}
	got, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	if got.Program.Name != "sample" || !got.Protean {
		t.Errorf("round trip lost fields: name=%q protean=%v", got.Program.Name, got.Protean)
	}
	if len(got.Program.Code) != len(b.Program.Code) {
		t.Errorf("code length %d, want %d", len(got.Program.Code), len(b.Program.Code))
	}
	if !bytes.Equal(got.IRBlob, b.IRBlob) {
		t.Error("IR blob corrupted in round trip")
	}
}

func TestDecodeIR(t *testing.T) {
	b := sampleBinary(t, true)
	m, err := b.DecodeIR()
	if err != nil {
		t.Fatalf("DecodeIR: %v", err)
	}
	if m.Name != "sample" || m.Func("work") == nil {
		t.Errorf("decoded IR wrong: %q", m.Name)
	}
	// Each decode is independent: mutating one must not affect the next.
	m.Loads()[0].NT = true
	m2, err := b.DecodeIR()
	if err != nil {
		t.Fatalf("second DecodeIR: %v", err)
	}
	if m2.Loads()[0].NT {
		t.Error("DecodeIR returned shared state across calls")
	}
}

func TestPlainBinaryHasNoIR(t *testing.T) {
	b := sampleBinary(t, false)
	if b.HasIR() {
		t.Error("plain binary claims to have IR")
	}
	if _, err := b.DecodeIR(); !errors.Is(err, ErrNotProtean) {
		t.Errorf("DecodeIR error = %v, want ErrNotProtean", err)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := DecodeBytes([]byte("XXXXXXXX")); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := DecodeBytes([]byte(magic)); err == nil {
		t.Error("accepted truncated binary")
	}
	if _, err := DecodeBytes(nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestLiveEVT(t *testing.T) {
	b := sampleBinary(t, true)
	evt := NewLiveEVT(b.Program.EVT)
	if evt.Len() != len(b.Program.EVT) {
		t.Fatalf("Len = %d, want %d", evt.Len(), len(b.Program.EVT))
	}
	slot := evt.SlotFor("work")
	if slot < 0 {
		t.Fatal("no slot for work")
	}
	fi, _ := b.Program.FuncByName("work")
	if evt.Target(slot) != fi.Entry {
		t.Errorf("initial target %d, want %d", evt.Target(slot), fi.Entry)
	}
	evt.SetTarget(slot, 999)
	if evt.Target(slot) != 999 {
		t.Error("SetTarget did not take effect")
	}
	if evt.Writes() != 1 {
		t.Errorf("Writes = %d, want 1", evt.Writes())
	}
	if evt.SlotFor("missing") != -1 {
		t.Error("SlotFor(missing) != -1")
	}
	if evt.Callee(slot) != "work" {
		t.Errorf("Callee(%d) = %q", slot, evt.Callee(slot))
	}
}

// The EVT contract is lock-free concurrent access: a writer goroutine
// redirecting while readers dispatch must be race-free (run with -race).
func TestLiveEVTConcurrent(t *testing.T) {
	b := sampleBinary(t, true)
	evt := NewLiveEVT(b.Program.EVT)
	slot := evt.SlotFor("work")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			evt.SetTarget(slot, i)
		}
		close(stop)
	}()
	reads := 0
	for {
		select {
		case <-stop:
			wg.Wait()
			if evt.Target(slot) != 999 {
				t.Errorf("final target %d, want 999", evt.Target(slot))
			}
			if reads == 0 {
				t.Error("reader never ran")
			}
			return
		default:
			_ = evt.Target(slot)
			reads++
		}
	}
}
