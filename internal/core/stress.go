package core

import (
	"math/rand"

	"repro/internal/ir"
	"repro/internal/machine"
)

// StressRecompiler drives the dynamic-compilation stress tests of Figures
// 5 and 6: it keeps requesting identity recompilations of randomly selected
// functions, scheduling the next request a fixed interval after the
// previous compile completes, and dispatches each finished variant through
// the EVT when the function is virtualized.
//
// Register it with the machine after the Runtime it drives.
type StressRecompiler struct {
	rt *Runtime
	// IntervalCycles separates a compile's completion from the next
	// request.
	IntervalCycles uint64

	candidates []string
	rng        *rand.Rand
	nextAt     uint64
	inFlight   bool
	recompiles uint64
	failures   uint64
}

// NewStressRecompiler builds a stress driver over rt selecting among all
// functions of the host's IR. seed fixes the random selection.
func NewStressRecompiler(rt *Runtime, intervalCycles uint64, seed int64) *StressRecompiler {
	var names []string
	for _, f := range rt.IR().Funcs {
		names = append(names, f.Name)
	}
	return &StressRecompiler{
		rt:             rt,
		IntervalCycles: intervalCycles,
		candidates:     names,
		rng:            rand.New(rand.NewSource(seed)),
	}
}

// Tick requests a new recompilation whenever the previous one has finished
// and the interval has elapsed.
func (s *StressRecompiler) Tick(m *machine.Machine) {
	if s.inFlight || m.Now() < s.nextAt || len(s.candidates) == 0 {
		return
	}
	fn := s.candidates[s.rng.Intn(len(s.candidates))]
	s.inFlight = true
	err := s.rt.RequestVariant(fn, Identity, nil, func(v *Variant, err error) {
		s.inFlight = false
		s.nextAt = m.Now() + s.IntervalCycles
		if err != nil {
			s.failures++
			return
		}
		s.recompiles++
		// Dispatch when the function is reachable through the EVT; entry
		// functions and non-virtualized callees are recompiled but cannot
		// be rerouted — same as on real hardware.
		if s.rt.Host().EVT().SlotFor(fn) >= 0 {
			if derr := s.rt.Dispatch(v); derr != nil {
				s.failures++
			}
		}
	})
	if err != nil {
		s.inFlight = false
		s.failures++
	}
}

// Recompiles counts successfully completed recompilations.
func (s *StressRecompiler) Recompiles() uint64 { return s.recompiles }

// Failures counts failed requests or dispatches.
func (s *StressRecompiler) Failures() uint64 { return s.failures }

// NTTransform returns a Transform that sets the non-temporal bit on
// exactly the loads whose IDs are in mask — the code-variant generator
// PC3D hands to the runtime compiler. Loads absent from the mask are
// explicitly cleared, so a variant fully describes its hint vector.
func NTTransform(mask map[int]bool) Transform {
	return func(m *ir.Module) error {
		for _, ld := range m.Loads() {
			ld.NT = mask[ld.ID]
		}
		return nil
	}
}
