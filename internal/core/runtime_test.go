package core

import (
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/progbin"
)

// hostModule: main loops calling "hot" (virtualized) and "tiny" (not).
func hostModule(t testing.TB) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("host")
	mb.Global("buf", 4<<20)
	hot := mb.Function("hot")
	hot.Loop(1000, func() {
		hot.Load(ir.Access{Global: "buf", Pattern: ir.Seq, Stride: 64})
		hot.Work(2)
	})
	hot.Return()
	tiny := mb.Function("tiny")
	tiny.Load(ir.Access{Global: "buf", Pattern: ir.Rand})
	tiny.Return()
	main := mb.Function("main")
	main.Loop(1<<40, func() {
		main.Call("hot")
		main.Call("tiny")
	})
	main.Return()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func setup(t testing.TB, cfg Config) (*machine.Machine, *machine.Process, *Runtime) {
	t.Helper()
	bin, err := pcc.Compile(hostModule(t), pcc.Options{Protean: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 2})
	host, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cfg.Machine = m
	cfg.Host = host
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	m.AddAgent(rt)
	return m, host, rt
}

func TestAttachRequiresProtean(t *testing.T) {
	bin, err := pcc.Compile(hostModule(t), pcc.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 1})
	host, _ := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if _, err := New(Config{Machine: m, Host: host}); !errors.Is(err, ErrNotProtean) {
		t.Fatalf("Attach error = %v, want ErrNotProtean", err)
	}
}

func TestAttachDiscoversIR(t *testing.T) {
	_, _, rt := setup(t, Config{RuntimeCore: 1})
	if rt.IR() == nil || rt.IR().Func("hot") == nil {
		t.Fatal("embedded IR not discovered")
	}
}

func TestAsyncCompileCompletesAfterLatency(t *testing.T) {
	m, _, rt := setup(t, Config{RuntimeCore: 1})
	var got *Variant
	err := rt.RequestVariant("hot", NTTransform(map[int]bool{0: true}), "mask0", func(v *Variant, err error) {
		if err != nil {
			t.Errorf("compile failed: %v", err)
		}
		got = v
	})
	if err != nil {
		t.Fatalf("RequestVariant: %v", err)
	}
	if rt.PendingJobs() != 1 {
		t.Fatalf("PendingJobs = %d, want 1", rt.PendingJobs())
	}
	// One quantum (1 ms) is less than the 4 ms compile: not done yet.
	m.RunQuanta(1)
	if got != nil {
		t.Fatal("variant completed before modeled compile latency")
	}
	m.RunQuanta(10)
	if got == nil {
		t.Fatal("variant never completed")
	}
	if got.Func != "hot" || got.ID != 1 || got.Meta != "mask0" {
		t.Errorf("variant = %+v", got)
	}
	if len(rt.Variants("hot")) != 1 {
		t.Errorf("Variants(hot) = %d, want 1", len(rt.Variants("hot")))
	}
}

func TestHostRunsDuringCompile(t *testing.T) {
	m, host, rt := setup(t, Config{RuntimeCore: 1})
	m.RunQuanta(2)
	before := host.Counters()
	done := false
	if err := rt.RequestVariant("hot", Identity, nil, func(*Variant, error) { done = true }); err != nil {
		t.Fatalf("RequestVariant: %v", err)
	}
	m.RunQuanta(2) // still compiling
	if done {
		t.Fatal("compile finished too early")
	}
	d := host.Counters().Sub(before)
	if d.Insts == 0 {
		t.Error("host stalled during separate-core compile")
	}
	if d.StolenCycles != 0 {
		t.Error("separate-core compile stole host cycles")
	}
}

func TestSameCoreCompileStealsHostCycles(t *testing.T) {
	m, host, rt := setup(t, Config{RuntimeCore: SameCore})
	m.RunQuanta(2)
	before := host.Counters()
	if err := rt.RequestVariant("hot", Identity, nil, nil); err != nil {
		t.Fatalf("RequestVariant: %v", err)
	}
	m.RunQuanta(10)
	d := host.Counters().Sub(before)
	if d.StolenCycles == 0 {
		t.Error("same-core compile stole nothing")
	}
}

func TestDispatchAndRevert(t *testing.T) {
	m, host, rt := setup(t, Config{RuntimeCore: 1})
	var v *Variant
	mask := map[int]bool{}
	for i := 0; i < rt.IR().NumLoads; i++ {
		mask[i] = true
	}
	if err := rt.RequestVariant("hot", NTTransform(mask), nil, func(vv *Variant, err error) { v = vv }); err != nil {
		t.Fatalf("RequestVariant: %v", err)
	}
	m.RunQuanta(10)
	if v == nil {
		t.Fatal("compile did not finish")
	}
	before := host.Counters()
	if err := rt.Dispatch(v); err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if rt.Dispatched("hot") != v {
		t.Error("Dispatched(hot) mismatch")
	}
	m.RunQuanta(100)
	if host.Counters().Sub(before).Prefetches == 0 {
		t.Fatal("NT variant not executing after dispatch")
	}
	if err := rt.Revert("hot"); err != nil {
		t.Fatalf("Revert: %v", err)
	}
	if rt.Dispatched("hot") != nil {
		t.Error("Dispatched(hot) non-nil after revert")
	}
	m.RunQuanta(50) // drain
	mid := host.Counters()
	m.RunQuanta(100)
	if host.Counters().Sub(mid).Prefetches != 0 {
		t.Error("prefetches continue after revert")
	}
}

func TestDispatchUnvirtualizedFails(t *testing.T) {
	m, _, rt := setup(t, Config{RuntimeCore: 1})
	var v *Variant
	if err := rt.RequestVariant("tiny", Identity, nil, func(vv *Variant, err error) { v = vv }); err != nil {
		t.Fatalf("RequestVariant: %v", err)
	}
	m.RunQuanta(10)
	if v == nil {
		t.Fatal("compile did not finish")
	}
	if err := rt.Dispatch(v); !errors.Is(err, ErrNotVirtualized) {
		t.Errorf("Dispatch error = %v, want ErrNotVirtualized", err)
	}
	if err := rt.Revert("tiny"); !errors.Is(err, ErrNotVirtualized) {
		t.Errorf("Revert error = %v, want ErrNotVirtualized", err)
	}
}

func TestRevertAll(t *testing.T) {
	m, host, rt := setup(t, Config{RuntimeCore: 1})
	var v *Variant
	rt.RequestVariant("hot", Identity, nil, func(vv *Variant, err error) { v = vv })
	m.RunQuanta(10)
	if v == nil {
		t.Fatal("compile did not finish")
	}
	if err := rt.Dispatch(v); err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if err := rt.RevertAll(); err != nil {
		t.Fatalf("RevertAll: %v", err)
	}
	if rt.Dispatched("hot") != nil {
		t.Error("RevertAll left a dispatch")
	}
	fi, _ := host.Binary().Program.FuncByName("hot")
	if host.EVT().Target(host.EVT().SlotFor("hot")) != fi.Entry {
		t.Error("EVT not pointing at original after RevertAll")
	}
}

func TestRequestUnknownFunction(t *testing.T) {
	_, _, rt := setup(t, Config{RuntimeCore: 1})
	if err := rt.RequestVariant("ghost", Identity, nil, nil); err == nil {
		t.Fatal("RequestVariant accepted unknown function")
	}
}

func TestTransformErrorPropagates(t *testing.T) {
	m, host, rt := setup(t, Config{RuntimeCore: 1})
	want := errors.New("boom")
	var got error
	rt.RequestVariant("hot", func(*ir.Module) error { return want }, nil, func(v *Variant, err error) {
		if v != nil {
			t.Error("variant returned despite transform error")
		}
		got = err
	})
	before := host.Counters()
	m.RunQuanta(10)
	if !errors.Is(got, want) {
		t.Errorf("callback error = %v, want %v", got, want)
	}
	// The failed compile aborts the job only; the host keeps executing its
	// current code and nothing was dispatched.
	if host.Counters().Sub(before).Insts == 0 {
		t.Error("host stalled after failed transform")
	}
	if rt.Dispatched("hot") != nil {
		t.Error("failed compile dispatched something")
	}
}

func TestCompileFaultInjection(t *testing.T) {
	// Jobs 0 and 2 fail by injection; 1 succeeds. Sequence numbers are
	// assigned at request time.
	injected := errors.New("injected")
	fault := func(fn string, job uint64) error {
		if job%2 == 0 {
			return injected
		}
		return nil
	}
	m, host, rt := setup(t, Config{RuntimeCore: 1, CompileFault: fault})
	var errs []error
	for i := 0; i < 3; i++ {
		if err := rt.RequestVariant("hot", Identity, nil, func(v *Variant, err error) {
			errs = append(errs, err)
		}); err != nil {
			t.Fatalf("RequestVariant: %v", err)
		}
	}
	before := host.Counters()
	m.RunQuanta(20)
	if len(errs) != 3 {
		t.Fatalf("%d callbacks, want 3", len(errs))
	}
	if !errors.Is(errs[0], injected) || errs[1] != nil || !errors.Is(errs[2], injected) {
		t.Errorf("errs = %v, want [injected, nil, injected]", errs)
	}
	if len(rt.Variants("hot")) != 1 {
		t.Errorf("Variants(hot) = %d, want 1 (failed jobs must not install)", len(rt.Variants("hot")))
	}
	if host.Counters().Sub(before).Insts == 0 {
		t.Error("host stalled across injected compile failures")
	}
}

func TestCrashSemantics(t *testing.T) {
	m, host, rt := setup(t, Config{RuntimeCore: 1})
	// Dispatch a variant, then queue a compile and crash mid-flight.
	var v *Variant
	rt.RequestVariant("hot", Identity, nil, func(vv *Variant, err error) { v = vv })
	m.RunQuanta(10)
	if v == nil {
		t.Fatal("compile did not finish")
	}
	if err := rt.Dispatch(v); err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	called := false
	rt.RequestVariant("hot", Identity, nil, func(*Variant, error) { called = true })
	rt.Crash()
	if !rt.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	before := host.Counters()
	m.RunQuanta(20)
	if called {
		t.Error("pending compile completed after crash")
	}
	if rt.PendingJobs() != 0 {
		t.Errorf("PendingJobs = %d after crash", rt.PendingJobs())
	}
	// Safety property: the host keeps executing; the EVT is untouched (the
	// dispatched variant stays live until a supervisor reverts it).
	if host.Counters().Sub(before).Insts == 0 {
		t.Error("host stalled after runtime crash")
	}
	if host.EVT().Target(host.EVT().SlotFor("hot")) != v.EntryPC {
		t.Error("crash itself rewrote the EVT")
	}
	// Every runtime operation now fails with ErrCrashed.
	if err := rt.RequestVariant("hot", Identity, nil, nil); !errors.Is(err, ErrCrashed) {
		t.Errorf("RequestVariant error = %v, want ErrCrashed", err)
	}
	if err := rt.Dispatch(v); !errors.Is(err, ErrCrashed) {
		t.Errorf("Dispatch error = %v, want ErrCrashed", err)
	}
	if err := rt.Revert("hot"); !errors.Is(err, ErrCrashed) {
		t.Errorf("Revert error = %v, want ErrCrashed", err)
	}
	if err := rt.RevertAll(); !errors.Is(err, ErrCrashed) {
		t.Errorf("RevertAll error = %v, want ErrCrashed", err)
	}
}

func TestSerialCompilePipeline(t *testing.T) {
	m, _, rt := setup(t, Config{RuntimeCore: 1})
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		rt.RequestVariant("hot", Identity, nil, func(*Variant, error) { done = append(done, i) })
	}
	// 3 compiles at 4 ms each, 1 ms quanta: after 5 ms only the first is
	// done.
	m.RunQuanta(5)
	if len(done) != 1 {
		t.Fatalf("after 5ms, %d compiles done, want 1 (serial compiler)", len(done))
	}
	m.RunQuanta(10)
	if len(done) != 3 || done[0] != 0 || done[2] != 2 {
		t.Fatalf("completion order = %v", done)
	}
}

func TestCycleAccounting(t *testing.T) {
	m, _, rt := setup(t, Config{RuntimeCore: 1})
	m.RunQuanta(100)
	monOnly := rt.CyclesUsed()
	if monOnly == 0 {
		t.Error("monitoring consumed no cycles")
	}
	rt.RequestVariant("hot", Identity, nil, nil)
	m.RunQuanta(10)
	withCompile := rt.CyclesUsed()
	if withCompile < monOnly+rt.cfg.CompileCycles {
		t.Errorf("compile cycles unaccounted: %d -> %d", monOnly, withCompile)
	}
	frac := rt.ServerCycleFraction()
	if frac <= 0 || frac > 0.05 {
		t.Errorf("ServerCycleFraction = %v, want small positive", frac)
	}
}

func TestStressRecompiler(t *testing.T) {
	m, host, rt := setup(t, Config{RuntimeCore: 1})
	ms := uint64(m.Config().FreqHz / 1000)
	s := NewStressRecompiler(rt, 5*ms, 42)
	m.AddAgent(s)
	m.RunQuanta(500) // 500 ms: ~55 compile+interval periods of 9 ms
	if s.Recompiles() < 20 {
		t.Errorf("Recompiles = %d, want >= 20", s.Recompiles())
	}
	if s.Failures() != 0 {
		t.Errorf("Failures = %d", s.Failures())
	}
	if host.Halted() {
		t.Error("host halted under stress")
	}
	// The host must have kept making progress the whole time.
	if host.Counters().Insts == 0 {
		t.Error("host made no progress")
	}
}

func TestStressSameCoreSlowsHost(t *testing.T) {
	run := func(runtimeCore int, interval uint64) uint64 {
		m, host, rt := setup(t, Config{RuntimeCore: runtimeCore})
		s := NewStressRecompiler(rt, interval, 7)
		m.AddAgent(s)
		m.RunQuanta(400)
		return host.Counters().Insts
	}
	ms := uint64(10e6 / 1000)
	separate := run(1, 5*ms)
	same := run(SameCore, 5*ms)
	sameSlow := run(SameCore, 800*ms)
	if float64(same) > float64(separate)*0.8 {
		t.Errorf("same-core stress at 5ms: %d insts vs separate %d; want clear slowdown", same, separate)
	}
	if float64(sameSlow) < float64(separate)*0.95 {
		t.Errorf("same-core at 800ms interval: %d vs separate %d; want negligible overhead", sameSlow, separate)
	}
}

func TestNTTransformMask(t *testing.T) {
	m := hostModule(t)
	clone := m.Clone()
	if err := NTTransform(map[int]bool{1: true})(clone); err != nil {
		t.Fatalf("NTTransform: %v", err)
	}
	loads := clone.Loads()
	if loads[0].NT || !loads[1].NT {
		t.Errorf("mask misapplied: %v %v", loads[0].NT, loads[1].NT)
	}
	// Clearing: applying an empty mask resets everything.
	if err := NTTransform(nil)(clone); err != nil {
		t.Fatalf("NTTransform(nil): %v", err)
	}
	for _, ld := range clone.Loads() {
		if ld.NT {
			t.Error("empty mask left NT bits set")
		}
	}
}

var _ = progbin.ErrNotProtean // progbin is linked via pcc; keep explicit
