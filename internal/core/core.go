package core
