// Package core implements the protean code runtime — the dynamic half of
// the co-designed system (Section III-B) and the paper's primary
// contribution.
//
// The runtime attaches to a process prepared by pcc, discovers the embedded
// metadata (EVT and compressed IR), sets up a code cache, and from then on
// operates asynchronously: the host keeps executing its original code while
// the runtime compiler generates variants from the IR; finished variants
// are installed into the code cache and dispatched by rewriting an EVT slot
// — one atomic write — so execution reroutes the next time control flows
// through a virtualized edge.
//
// Asynchrony is modeled in simulated time: a compile job occupies the
// runtime for a configurable number of simulated cycles (the LLVM backend's
// ~5 ms per function). When the runtime shares the host's core, those
// cycles are stolen from the host (Figure 6's "same core" case); on a
// separate core they only consume otherwise-idle cycles (Figure 5).
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/sampling"
	"repro/internal/telemetry"
)

// ErrNotProtean is returned when attaching to a process whose binary was
// not compiled by the protean pass.
var ErrNotProtean = errors.New("core: host binary is not protean (no embedded metadata)")

// ErrNotVirtualized is returned when dispatching a variant of a function
// that has no EVT slot.
var ErrNotVirtualized = errors.New("core: function has no virtualized edges")

// ErrCrashed is returned by runtime operations after Crash: the runtime
// process is gone, so it can neither compile nor touch the EVT. The host
// keeps executing whatever code the EVT currently points at — recovery is
// the supervisor's job (package supervise).
var ErrCrashed = errors.New("core: runtime has crashed")

// SameCore designates that the runtime shares the host's core.
const SameCore = -1

// Config configures a runtime instance (consumed by New, mirroring the
// machine and fleet constructor surfaces).
type Config struct {
	// Machine is the simulated machine hosting the process.
	Machine *machine.Machine
	// Host is the protean-compiled process to attach to.
	Host *machine.Process
	// RuntimeCore is the core the runtime process occupies, or SameCore to
	// share the host's core (compiles then steal host cycles). Using a
	// separate core requires it to be otherwise idle.
	RuntimeCore int
	// CompileCycles is the simulated cost of compiling one function
	// (default: 4 ms of simulated time).
	CompileCycles uint64
	// SampleInterval is the PC sampling period in cycles (default: 1 ms).
	SampleInterval uint64
	// MonitorCyclesPerTick accounts the monitoring cost (PC sample +
	// counter reads) attributed to the runtime each sampling period
	// (default 30; the paper's monitoring is sub-1%).
	MonitorCyclesPerTick uint64
	// CompileFault, when non-nil, is consulted as each compile job
	// completes; a non-nil error fails the job (after it has burned its
	// modeled latency) instead of producing a variant. The job sequence
	// number is assigned at request time, so fault schedules keyed on it
	// are independent of completion interleaving. Used for deterministic
	// fault injection (package faults).
	CompileFault func(fn string, job uint64) error
	// Telemetry receives the runtime's counters (compiles, failures,
	// dispatches, reverts, cycles) and compile/dispatch trace events under
	// the "core" subsystem. Nil disables instrumentation at no cost.
	Telemetry *telemetry.Registry
}

func (cfg Config) withDefaults() Config {
	ms := uint64(cfg.Machine.Config().FreqHz / 1000)
	if cfg.CompileCycles == 0 {
		cfg.CompileCycles = 4 * ms
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = ms
	}
	if cfg.MonitorCyclesPerTick == 0 {
		cfg.MonitorCyclesPerTick = 30
	}
	return cfg
}

// Transform rewrites the cloned embedded IR before a variant is lowered.
// It runs against a private clone, so it may mutate freely. Returning an
// error aborts the job.
type Transform func(m *ir.Module) error

// Identity is the no-op transform (recompilation stress tests).
func Identity(*ir.Module) error { return nil }

// Variant is one runtime-generated code version of a function.
type Variant struct {
	// ID is unique per runtime, 1-based (0 is the original static code).
	ID int
	// Func is the transformed function.
	Func string
	// EntryPC is the variant's entry in the code cache.
	EntryPC int
	// Meta carries policy-defined data (PC3D stores the hint mask here).
	Meta any
}

type compileJob struct {
	fn        string
	transform Transform
	meta      any
	onDone    func(*Variant, error)
	finishAt  uint64
	seq       uint64
	span      telemetry.SpanID
}

// Runtime is one protean runtime attached to one host process. It
// implements machine.Agent; register it with the machine after creation.
type Runtime struct {
	m    *machine.Machine
	host *machine.Process
	cfg  Config

	baseIR  *ir.Module
	sampler *sampling.PCSampler

	jobs      []compileJob
	busyUntil uint64
	jobSeq    uint64
	crashed   bool

	variants   map[string][]*Variant
	dispatched map[string]*Variant
	nextID     int

	compileCycles uint64 // total compiler cycles consumed
	monitorCycles uint64 // total monitoring cycles consumed
	compiles      uint64
	dispatches    uint64
	lastSample    uint64

	tel             *telemetry.Registry
	cCompiles       *telemetry.Counter
	cCompileFails   *telemetry.Counter
	cDispatches     *telemetry.Counter
	cReverts        *telemetry.Counter
	cCompileCycles  *telemetry.Counter
	cMonitorCycles  *telemetry.Counter
	gCodeCacheWords *telemetry.Gauge
	gVariants       *telemetry.Gauge
}

// New creates a runtime for cfg.Host on cfg.Machine: it discovers the
// program metadata (decoding the embedded IR) and prepares the code cache
// bookkeeping — the runtime-initialization step of Section III-B-1.
func New(cfg Config) (*Runtime, error) {
	m, host := cfg.Machine, cfg.Host
	if m == nil || host == nil {
		return nil, errors.New("core: Config.Machine and Config.Host are required")
	}
	if !host.Binary().Protean {
		return nil, ErrNotProtean
	}
	baseIR, err := host.Binary().DecodeIR()
	if err != nil {
		return nil, fmt.Errorf("core: attach to %q: %w", host.Name(), err)
	}
	cfg = cfg.withDefaults()
	rt := &Runtime{
		m:          m,
		host:       host,
		cfg:        cfg,
		baseIR:     baseIR,
		sampler:    sampling.NewPCSampler(host, cfg.SampleInterval),
		variants:   make(map[string][]*Variant),
		dispatched: make(map[string]*Variant),
		nextID:     1,
	}
	rt.tel = cfg.Telemetry
	rt.cCompiles = rt.tel.Counter("core", "compiles_total", "compile jobs completed successfully")
	rt.cCompileFails = rt.tel.Counter("core", "compile_failures_total", "compile jobs that failed (fault, transform, lower, verify)")
	rt.cDispatches = rt.tel.Counter("core", "dispatches_total", "EVT slot rewrites to a variant")
	rt.cReverts = rt.tel.Counter("core", "reverts_total", "EVT slot rewrites back to static code")
	rt.cCompileCycles = rt.tel.Counter("core", "compile_cycles_total", "simulated cycles consumed by the runtime compiler")
	rt.cMonitorCycles = rt.tel.Counter("core", "monitor_cycles_total", "simulated cycles consumed by monitoring")
	rt.gCodeCacheWords = rt.tel.Gauge("core", "code_cache_words", "instruction words of installed variants")
	rt.gVariants = rt.tel.Gauge("core", "variants", "generated variants across all functions")
	return rt, nil
}

// Host returns the attached process.
func (rt *Runtime) Host() *machine.Process { return rt.host }

// IR returns the decoded embedded IR. Callers must not mutate it; variant
// transforms receive clones.
func (rt *Runtime) IR() *ir.Module { return rt.baseIR }

// Sampler exposes the host PC sampler for policies.
func (rt *Runtime) Sampler() *sampling.PCSampler { return rt.sampler }

// Telemetry returns the registry this runtime reports into (nil when
// uninstrumented).
func (rt *Runtime) Telemetry() *telemetry.Registry { return rt.tel }

// Tick advances the runtime one quantum: takes PC samples, accounts
// monitoring cost, and completes finished compile jobs. A crashed runtime
// does nothing.
func (rt *Runtime) Tick(m *machine.Machine) {
	if rt.crashed {
		return
	}
	rt.sampler.Tick(m)
	now := m.Now()
	if now-rt.lastSample >= rt.cfg.SampleInterval {
		rt.monitorCycles += rt.cfg.MonitorCyclesPerTick
		rt.cMonitorCycles.Add(rt.cfg.MonitorCyclesPerTick)
		rt.lastSample = now
	}
	for len(rt.jobs) > 0 && rt.jobs[0].finishAt <= now {
		job := rt.jobs[0]
		rt.jobs = rt.jobs[1:]
		v, err := rt.finishJob(job)
		if err != nil {
			rt.cCompileFails.Inc()
			rt.tel.Emit(telemetry.Event{At: now, Kind: telemetry.EvCompileFail, Func: job.fn, Value: float64(job.seq), Detail: err.Error()})
			rt.tel.SpanAttrs(job.span, telemetry.Str("error", err.Error()))
		} else {
			rt.cCompiles.Inc()
			rt.gCodeCacheWords.Set(float64(rt.CodeCacheWords()))
			rt.gVariants.Add(1)
			rt.tel.Emit(telemetry.Event{At: now, Kind: telemetry.EvCompileFinish, Func: job.fn, Value: float64(v.ID)})
			rt.tel.SpanAttrs(job.span, telemetry.Num("variant", float64(v.ID)))
		}
		rt.tel.EndSpan(job.span, now)
		if job.onDone != nil {
			job.onDone(v, err)
		}
	}
}

// PendingJobs reports queued-but-unfinished compiles.
func (rt *Runtime) PendingJobs() int { return len(rt.jobs) }

// RequestVariant queues an asynchronous compile of fn's IR under transform.
// The compile occupies the runtime compiler for CompileCycles of simulated
// time (stealing host cycles in same-core mode); when it completes, the
// variant is installed into the code cache and onDone is invoked (nil
// Variant on error). The host continues executing throughout.
func (rt *Runtime) RequestVariant(fn string, transform Transform, meta any, onDone func(*Variant, error)) error {
	if rt.crashed {
		return ErrCrashed
	}
	if rt.baseIR.Func(fn) == nil {
		return fmt.Errorf("core: request variant of unknown function %q", fn)
	}
	now := rt.m.Now()
	start := now
	if rt.busyUntil > start {
		start = rt.busyUntil
	}
	finish := start + rt.cfg.CompileCycles
	rt.busyUntil = finish
	rt.compileCycles += rt.cfg.CompileCycles
	rt.cCompileCycles.Add(rt.cfg.CompileCycles)
	rt.compiles++
	if rt.cfg.RuntimeCore == SameCore {
		rt.host.StealCycles(rt.cfg.CompileCycles)
	}
	seq := rt.jobSeq
	rt.jobSeq++
	rt.tel.Emit(telemetry.Event{At: now, Kind: telemetry.EvCompileStart, Func: fn, Value: float64(seq)})
	// The compile span covers queueing plus the modeled backend latency;
	// it parents under the registry's ambient span (the policy operation
	// that requested it) and closes when the job completes in Tick.
	span := rt.tel.StartSpan("core.compile", now, rt.tel.SpanParent())
	rt.tel.SpanAttrs(span, telemetry.Str("func", fn), telemetry.Num("job", float64(seq)))
	rt.jobs = append(rt.jobs, compileJob{
		fn: fn, transform: transform, meta: meta, onDone: onDone, finishAt: finish, seq: seq, span: span,
	})
	return nil
}

// finishJob does the actual work "after" the modeled compile latency:
// clone the IR, transform, lower against the host program, install.
func (rt *Runtime) finishJob(job compileJob) (*Variant, error) {
	if rt.cfg.CompileFault != nil {
		if err := rt.cfg.CompileFault(job.fn, job.seq); err != nil {
			return nil, fmt.Errorf("core: compile %q: %w", job.fn, err)
		}
	}
	clone := rt.baseIR.Clone()
	if err := job.transform(clone); err != nil {
		return nil, fmt.Errorf("core: transform %q: %w", job.fn, err)
	}
	if err := clone.Finalize(); err != nil {
		return nil, fmt.Errorf("core: transformed IR for %q invalid: %w", job.fn, err)
	}
	id := rt.nextID
	rt.nextID++
	vr, err := isa.LowerVariant(rt.host.Binary().Program, clone, job.fn, id, rt.host.CodeCursor())
	if err != nil {
		return nil, fmt.Errorf("core: lower variant of %q: %w", job.fn, err)
	}
	if err := isa.VerifyFragment(rt.host.Binary().Program, vr); err != nil {
		return nil, fmt.Errorf("core: variant of %q failed verification: %w", job.fn, err)
	}
	if err := rt.host.InstallVariant(vr); err != nil {
		return nil, fmt.Errorf("core: install variant of %q: %w", job.fn, err)
	}
	v := &Variant{ID: id, Func: job.fn, EntryPC: vr.Info.Entry, Meta: job.meta}
	rt.variants[job.fn] = append(rt.variants[job.fn], v)
	return v, nil
}

// Dispatch reroutes fn's virtualized edges to the variant — the EVT
// manager's single atomic write.
func (rt *Runtime) Dispatch(v *Variant) error {
	if rt.crashed {
		return ErrCrashed
	}
	slot := rt.host.EVT().SlotFor(v.Func)
	if slot < 0 {
		return fmt.Errorf("%w: %q", ErrNotVirtualized, v.Func)
	}
	rt.host.EVT().SetTarget(slot, v.EntryPC)
	rt.dispatched[v.Func] = v
	rt.dispatches++
	rt.cDispatches.Inc()
	rt.tel.Emit(telemetry.Event{At: rt.m.Now(), Kind: telemetry.EvDispatch, Func: v.Func, Value: float64(v.ID)})
	return nil
}

// Revert points fn's virtualized edges back at the original static code.
func (rt *Runtime) Revert(fn string) error {
	if rt.crashed {
		return ErrCrashed
	}
	slot := rt.host.EVT().SlotFor(fn)
	if slot < 0 {
		return fmt.Errorf("%w: %q", ErrNotVirtualized, fn)
	}
	fi, ok := rt.host.Binary().Program.FuncByName(fn)
	if !ok {
		return fmt.Errorf("core: revert %q: original entry unknown", fn)
	}
	rt.host.EVT().SetTarget(slot, fi.Entry)
	delete(rt.dispatched, fn)
	rt.dispatches++
	rt.cReverts.Inc()
	rt.tel.Emit(telemetry.Event{At: rt.m.Now(), Kind: telemetry.EvRevert, Func: fn})
	return nil
}

// RevertAll restores every dispatched function to its original code. It
// attempts every function even if some fail and returns the failures
// joined, in deterministic (sorted-name) order.
func (rt *Runtime) RevertAll() error {
	if rt.crashed {
		return ErrCrashed
	}
	fns := make([]string, 0, len(rt.dispatched))
	for fn := range rt.dispatched {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	var errs []error
	for _, fn := range fns {
		if err := rt.Revert(fn); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Crash models the runtime process dying (fault injection): pending compile
// jobs are dropped without their onDone callbacks, and every subsequent
// operation returns ErrCrashed. The host process is untouched — it keeps
// executing whatever the EVT currently targets, which is the paper's
// safety property. Recovery (reverting the EVT to static code and
// re-attaching a fresh runtime) belongs to package supervise.
func (rt *Runtime) Crash() {
	rt.crashed = true
	rt.jobs = nil
	rt.tel.Counter("core", "runtime_crashes_total", "runtime processes killed by fault injection").Inc()
	rt.tel.Emit(telemetry.Event{At: rt.m.Now(), Kind: telemetry.EvRuntimeCrash})
}

// Crashed reports whether Crash has been called.
func (rt *Runtime) Crashed() bool { return rt.crashed }

// Dispatched returns the currently dispatched variant of fn, or nil when
// the original code is live.
func (rt *Runtime) Dispatched(fn string) *Variant { return rt.dispatched[fn] }

// Variants lists fn's generated variants in creation order.
func (rt *Runtime) Variants(fn string) []*Variant { return rt.variants[fn] }

// Compiles counts completed-or-queued compile requests.
func (rt *Runtime) Compiles() uint64 { return rt.compiles }

// Dispatches counts EVT rewrites.
func (rt *Runtime) Dispatches() uint64 { return rt.dispatches }

// CodeCacheWords returns how many instruction words of runtime-generated
// variants have been installed into the host's code cache.
func (rt *Runtime) CodeCacheWords() int {
	return rt.host.CodeCursor() - len(rt.host.Binary().Program.Code)
}

// VariantCount returns how many variants exist across all functions.
func (rt *Runtime) VariantCount() int {
	n := 0
	for _, vs := range rt.variants {
		n += len(vs)
	}
	return n
}

// CyclesUsed returns the runtime's total consumed cycles (compiler plus
// monitoring) — the numerator of Figure 7.
func (rt *Runtime) CyclesUsed() uint64 { return rt.compileCycles + rt.monitorCycles }

// ServerCycleFraction returns CyclesUsed over all server cycles so far
// (cores × elapsed) — Figure 7's metric.
func (rt *Runtime) ServerCycleFraction() float64 {
	total := rt.m.Now() * uint64(rt.m.Config().Cores)
	if total == 0 {
		return 0
	}
	return float64(rt.CyclesUsed()) / float64(total)
}
