package workload

import (
	"fmt"

	"repro/internal/ir"
)

// GlobalSpec declares one data region.
type GlobalSpec struct {
	Name string
	Size int64
}

// LoadSpec describes one innermost-loop load site.
type LoadSpec struct {
	Global   string
	Pattern  ir.Pattern
	Stride   int64
	HotBytes int64
}

// HotFunc describes one hot function: nested counted loops whose innermost
// body performs the app's characteristic memory work.
type HotFunc struct {
	Name string
	// Depth is the loop nesting depth (>= 1).
	Depth int
	// InnerTrip is the innermost loop's trip count; OuterTrip is used for
	// every enclosing level (default 4).
	InnerTrip int64
	OuterTrip int64
	// Loads are the innermost-loop load sites, one static load each per
	// iteration. These are the loads PC3D's heuristics retain.
	Loads []LoadSpec
	// Work is ALU padding per innermost iteration.
	Work int
	// Weight is how many times main calls this function per work unit.
	Weight int
	// ShallowLoads emits that many additional static loads into a covered-
	// but-never-executed region of this function (guarded by a branch that
	// is never taken). They model the function's setup and rare-path code:
	// the active-regions heuristic keeps them, the max-loop-depth heuristic
	// prunes them.
	ShallowLoads  int
	ShallowGlobal string
}

// AppConfig parameterizes the program generator.
type AppConfig struct {
	Name    string
	Globals []GlobalSpec
	Hot     []HotFunc
	// ColdFuncs × ColdLoadsPerFunc static loads live in functions that are
	// statically called only from a never-executed region of main. They
	// model the bulk of a real code base: present in the binary, absent
	// from PC samples — pruned by the uncovered-code heuristic.
	ColdFuncs        int
	ColdLoadsPerFunc int
	ColdGlobal       string
	// MainWork is ALU padding in main per work unit.
	MainWork int
}

// TotalStaticLoads returns the static load count the config will generate.
func (cfg AppConfig) TotalStaticLoads() int {
	n := cfg.ColdFuncs * cfg.ColdLoadsPerFunc
	for _, h := range cfg.Hot {
		n += len(h.Loads) + h.ShallowLoads
	}
	return n
}

// Build generates the app's IR module. The entry function performs one work
// unit per invocation (one batch unit or one service request) and returns,
// so the machine's restart/gating modes drive it.
func Build(cfg AppConfig) *ir.Module {
	mb := ir.NewModuleBuilder(cfg.Name)
	for _, g := range cfg.Globals {
		mb.Global(g.Name, g.Size)
	}

	for _, h := range cfg.Hot {
		buildHotFunc(mb, h)
	}

	coldNames := make([]string, cfg.ColdFuncs)
	for i := range coldNames {
		coldNames[i] = fmt.Sprintf("cold%03d", i)
		buildColdFunc(mb, coldNames[i], cfg.ColdLoadsPerFunc, cfg.ColdGlobal)
	}

	main := mb.Function("main")
	if cfg.MainWork > 0 {
		main.Work(cfg.MainWork)
	}
	for _, h := range cfg.Hot {
		w := h.Weight
		if w <= 0 {
			w = 1
		}
		for i := 0; i < w; i++ {
			main.Call(h.Name)
		}
	}
	// Statically reachable, dynamically dead calls keep cold functions in
	// the call graph without ever executing them.
	deadGuard(main, func() {
		for _, name := range coldNames {
			main.Call(name)
		}
	})
	main.Return()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func buildHotFunc(mb *ir.ModuleBuilder, h HotFunc) {
	fb := mb.Function(h.Name)
	if h.ShallowLoads > 0 {
		g := h.ShallowGlobal
		if g == "" && len(h.Loads) > 0 {
			g = h.Loads[0].Global
		}
		deadGuard(fb, func() {
			for i := 0; i < h.ShallowLoads; i++ {
				fb.Load(ir.Access{Global: g, Pattern: ir.Rand})
			}
		})
	}
	outer := h.OuterTrip
	if outer <= 0 {
		outer = 4
	}
	depth := h.Depth
	if depth <= 0 {
		depth = 1
	}
	var nest func(d int)
	nest = func(d int) {
		if d < depth {
			fb.Loop(outer, func() { nest(d + 1) })
			return
		}
		fb.Loop(h.InnerTrip, func() {
			for _, ld := range h.Loads {
				fb.Load(ir.Access{
					Global: ld.Global, Pattern: ld.Pattern,
					Stride: ld.Stride, HotBytes: ld.HotBytes,
				})
			}
			fb.Work(h.Work)
		})
	}
	nest(1)
	fb.Return()
}

func buildColdFunc(mb *ir.ModuleBuilder, name string, loads int, global string) {
	fb := mb.Function(name)
	fb.Loop(4, func() {
		for i := 0; i < loads; i++ {
			fb.Load(ir.Access{Global: global, Pattern: ir.Rand})
		}
	})
	fb.Return()
}

// deadGuard emits body into a block that is statically reachable but never
// executed (guarded by a branch on a constant).
func deadGuard(fb *ir.FunctionBuilder, body func()) {
	zero := fb.Const(0)
	dead := fb.Block("")
	cont := fb.Block("")
	fb.Branch(zero, ir.Ne, ir.Imm(0), dead, cont)
	fb.SetBlock(dead)
	body()
	fb.Jump(cont)
	fb.SetBlock(cont)
}
