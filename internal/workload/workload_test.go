package workload

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestCatalogBuildsAndCompiles(t *testing.T) {
	for _, s := range Catalog() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := s.Module()
			if err := m.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if m.Name != s.Name {
				t.Errorf("module name %q != spec name %q", m.Name, s.Name)
			}
			bin, err := s.CompileProtean()
			if err != nil {
				t.Fatalf("CompileProtean: %v", err)
			}
			if !bin.Protean || !bin.HasIR() {
				t.Error("protean compile lacks metadata")
			}
			if _, err := s.CompilePlain(); err != nil {
				t.Fatalf("CompilePlain: %v", err)
			}
			// Embedded IR round-trips.
			emb, err := bin.DecodeIR()
			if err != nil {
				t.Fatalf("DecodeIR: %v", err)
			}
			if emb.NumLoads != m.NumLoads {
				t.Errorf("embedded NumLoads %d != %d", emb.NumLoads, m.NumLoads)
			}
		})
	}
}

// Figure 8 reports the absolute static load counts of the ten batch hosts;
// the generator must reproduce them.
func TestStaticLoadCountsMatchFigure8(t *testing.T) {
	want := map[string]int{
		"blockie": 64, "bst": 70, "er-naive": 25, "sledge": 35,
		"bzip2": 2582, "milc": 3632, "soplex": 15666,
		"libquantum": 636, "lbm": 257, "sphinx3": 4963,
	}
	for name, n := range want {
		s := MustByName(name)
		if got := s.Config.TotalStaticLoads(); got != n {
			t.Errorf("%s: config declares %d static loads, figure 8 says %d", name, got, n)
		}
		if got := s.Module().NumLoads; got != n {
			t.Errorf("%s: built module has %d static loads, want %d", name, got, n)
		}
	}
}

func TestBatchHostsAndWebservicesExist(t *testing.T) {
	if len(BatchHosts()) != 10 {
		t.Fatalf("BatchHosts = %d entries, want 10", len(BatchHosts()))
	}
	for _, n := range BatchHosts() {
		s := MustByName(n)
		if s.Class != Batch {
			t.Errorf("%s: class %v, want Batch", n, s.Class)
		}
	}
	for _, n := range Webservices() {
		s := MustByName(n)
		if s.Class != LatencySensitive {
			t.Errorf("%s: class %v, want LatencySensitive", n, s.Class)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown app")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic")
		}
	}()
	MustByName("nope")
}

func TestNamesSorted(t *testing.T) {
	names := Names(Batch)
	if len(names) != 19 {
		t.Fatalf("Names(Batch) = %d, want 19 (10 hosts + 9 extra SPEC)", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

// Cold code must never execute; hot functions must dominate samples.
func TestColdCodeNeverExecutes(t *testing.T) {
	s := MustByName("libquantum")
	bin, err := s.CompileProtean()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	m.RunQuanta(300)
	if p.Counters().Insts == 0 {
		t.Fatal("no progress")
	}
	fn := p.CurrentFunc()
	if fn == "" {
		t.Fatal("PC not attributable")
	}
	// Verify via dynamic load counts: a work unit executes
	// toffoli (8*150*8) + sigma_x (6*150*8) loads; cold functions would
	// add thousands more per unit. Check loads per completion is in the
	// expected band.
	c := p.Counters()
	if c.Completions == 0 {
		t.Skip("no full unit completed in window")
	}
	perUnit := float64(c.Loads) / float64(c.Completions)
	want := float64(8*150*8 + 6*150*8)
	if perUnit < want*0.9 || perUnit > want*1.2 {
		t.Errorf("loads per unit = %.0f, want ~%.0f (cold code executing?)", perUnit, want)
	}
}

// The innermost-loop loads must sit at max loop depth and the shallow
// loads must not — the structure PC3D's heuristics rely on.
func TestLoadDepthStructure(t *testing.T) {
	s := MustByName("libquantum")
	m := s.Module()
	hotLoads := 0
	for _, f := range m.Funcs {
		if f.Name != "toffoli" && f.Name != "sigma_x" {
			continue
		}
		lf := ir.BuildLoopForest(f)
		if lf.MaxDepth != 2 {
			t.Errorf("%s: MaxDepth = %d, want 2", f.Name, lf.MaxDepth)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.Load); !ok {
					continue
				}
				if lf.AtMaxDepth(b.Index) {
					hotLoads++
				}
			}
		}
	}
	if hotLoads != 14 {
		t.Errorf("innermost loads = %d, want 14 (8 toffoli + 6 sigma_x)", hotLoads)
	}
}

// Relative contentiousness must be ordered: the heavy streamers hurt a
// sensitive co-runner much more than the compute-bound app.
func TestContentiousnessSpectrum(t *testing.T) {
	victim := MustByName("er-naive")
	qosAgainst := func(host string) float64 {
		solo := machine.New(machine.Config{Cores: 2})
		vb, _ := victim.CompilePlain()
		vp, _ := solo.Attach(0, vb, machine.ProcessConfig{Restart: true})
		solo.RunQuanta(1500)
		soloInsts := float64(vp.Counters().Insts)

		co := machine.New(machine.Config{Cores: 2})
		vb2, _ := victim.CompilePlain()
		vp2, _ := co.Attach(0, vb2, machine.ProcessConfig{Restart: true})
		hb, err := MustByName(host).CompilePlain()
		if err != nil {
			t.Fatalf("compile %s: %v", host, err)
		}
		if _, err := co.Attach(1, hb, machine.ProcessConfig{Restart: true}); err != nil {
			t.Fatalf("attach %s: %v", host, err)
		}
		co.RunQuanta(1500)
		return float64(vp2.Counters().Insts) / soloInsts
	}
	lbm := qosAgainst("lbm")
	bzip2 := qosAgainst("bzip2")
	if lbm >= bzip2 {
		t.Errorf("lbm QoS impact (%.3f) should exceed bzip2's (%.3f)", lbm, bzip2)
	}
	if bzip2 < 0.85 {
		t.Errorf("bzip2 (compute-bound) degrades victim to %.3f; too contentious", bzip2)
	}
	if lbm > 0.8 {
		t.Errorf("lbm (heavy streamer) only degrades victim to %.3f; too gentle", lbm)
	}
}

func TestLatencySensitiveServesRequests(t *testing.T) {
	for _, name := range Webservices() {
		s := MustByName(name)
		bin, err := s.CompilePlain()
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		m := machine.New(machine.Config{Cores: 1})
		p, _ := m.Attach(0, bin, s.ProcessConfig())
		p.GrantWork(100)
		m.RunQuanta(500)
		served := p.Counters().Completions
		if served != 100 {
			t.Errorf("%s: served %d of 100 requests", name, served)
		}
		if p.Counters().IdleCycles == 0 {
			t.Errorf("%s: no idle after draining budget", name)
		}
	}
}

func TestSPECFig4Roster(t *testing.T) {
	apps := SPECFig4Apps()
	if len(apps) != 18 {
		t.Fatalf("roster has %d apps, want 18", len(apps))
	}
	for _, n := range apps {
		s := MustByName(n)
		if s.Suite != "SPEC CPU2006" {
			t.Errorf("%s: suite %q", n, s.Suite)
		}
		if _, err := s.CompileProtean(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}
