package workload

import "repro/internal/ir"

// Catalog returns every application specification. Static load counts of
// the ten batch hosts track Figure 8's published totals (blockie 64, bst
// 70, er-naive 25, sledge 35, bzip2 2582, milc 3632, soplex 15666,
// libquantum 636, lbm 257, sphinx3 4963).
func Catalog() []Spec {
	return []Spec{
		// ---------------------------------------------------------- SmashBench
		{
			Name: "blockie", Class: Batch, Suite: "SmashBench",
			Description: "blocked-memory aggressor: parallel streams over a 2.5 MiB block array",
			Config: AppConfig{
				Name:    "blockie",
				Globals: []GlobalSpec{{Name: "blocks", Size: 5 << 19}}, // 2.5 MiB
				Hot: []HotFunc{{
					Name: "smash", Depth: 2, InnerTrip: 200, OuterTrip: 4,
					// 11 streaming loads plus a pinned block-descriptor
					// re-read: the descriptor's address is loop-invariant,
					// so PC3D's dataflow pruning drops it from the search
					// space (static count stays at Figure 8's 64).
					Loads: append(repeatLoads(11, LoadSpec{Global: "blocks", Pattern: ir.Seq, Stride: 64}),
						LoadSpec{Global: "blocks", Pattern: ir.Pin}),
					Work: 1, Weight: 1, ShallowLoads: 28,
				}},
				ColdFuncs: 4, ColdLoadsPerFunc: 6, ColdGlobal: "blocks",
			},
		},
		{
			Name: "bst", Class: Batch, Suite: "SmashBench",
			Description: "binary-search-tree walker: pointer chases over a 3 MiB tree",
			Config: AppConfig{
				Name:    "bst",
				Globals: []GlobalSpec{{Name: "tree", Size: 3 << 20}},
				Hot: []HotFunc{{
					Name: "walk", Depth: 1, InnerTrip: 300,
					Loads: repeatLoads(8, LoadSpec{Global: "tree", Pattern: ir.Chase}),
					Work:  2, Weight: 1, ShallowLoads: 30,
				}},
				ColdFuncs: 4, ColdLoadsPerFunc: 8, ColdGlobal: "tree",
			},
		},
		{
			Name: "er-naive", Class: Batch, Suite: "SmashBench",
			Description: "naive edge-relaxation: uniform random over a 1.75 MiB edge set (cache-sensitive)",
			Config: AppConfig{
				Name:    "er-naive",
				Globals: []GlobalSpec{{Name: "edges", Size: 7 << 18}}, // 1.75 MiB
				Hot: []HotFunc{{
					Name: "relax", Depth: 1, InnerTrip: 400,
					Loads: repeatLoads(6, LoadSpec{Global: "edges", Pattern: ir.Rand}),
					Work:  2, Weight: 1, ShallowLoads: 9,
				}},
				ColdFuncs: 2, ColdLoadsPerFunc: 5, ColdGlobal: "edges",
			},
		},
		{
			Name: "sledge", Class: Batch, Suite: "SmashBench",
			Description: "sledgehammer: maximum-bandwidth stream over a 6 MiB slab",
			Config: AppConfig{
				Name:    "sledge",
				Globals: []GlobalSpec{{Name: "slab", Size: 6 << 20}},
				Hot: []HotFunc{{
					Name: "pound", Depth: 1, InnerTrip: 400,
					Loads: repeatLoads(8, LoadSpec{Global: "slab", Pattern: ir.Seq, Stride: 64}),
					Work:  0, Weight: 1, ShallowLoads: 13,
				}},
				ColdFuncs: 2, ColdLoadsPerFunc: 7, ColdGlobal: "slab",
			},
		},
		// ---------------------------------------------------------- SPEC batch
		{
			Name: "bzip2", Class: Batch, Suite: "SPEC CPU2006",
			Description: "compute-bound compressor: warm 64 KiB hot set inside 256 KiB data",
			Config: AppConfig{
				Name:    "bzip2",
				Globals: []GlobalSpec{{Name: "data", Size: 256 << 10}},
				Hot: []HotFunc{
					{
						Name: "compress", Depth: 2, InnerTrip: 80, OuterTrip: 4,
						Loads: repeatLoads(20, LoadSpec{Global: "data", Pattern: ir.Hot, HotBytes: 64 << 10}),
						Work:  10, Weight: 1, ShallowLoads: 101,
					},
					{
						Name: "huffman", Depth: 2, InnerTrip: 80, OuterTrip: 4,
						Loads: repeatLoads(20, LoadSpec{Global: "data", Pattern: ir.Hot, HotBytes: 64 << 10}),
						Work:  10, Weight: 1, ShallowLoads: 101,
					},
				},
				ColdFuncs: 39, ColdLoadsPerFunc: 60, ColdGlobal: "data",
			},
		},
		{
			Name: "milc", Class: Batch, Suite: "SPEC CPU2006",
			Description: "lattice QCD: fine-stride streams over a 4 MiB lattice, deep loop nests",
			Config: AppConfig{
				Name:    "milc",
				Globals: []GlobalSpec{{Name: "lattice", Size: 4 << 20}},
				Hot: []HotFunc{
					{
						Name: "mult_su3", Depth: 3, InnerTrip: 50, OuterTrip: 4,
						Loads: repeatLoads(20, LoadSpec{Global: "lattice", Pattern: ir.Seq, Stride: 16}),
						Work:  2, Weight: 1, ShallowLoads: 80,
					},
					{
						Name: "add_force", Depth: 3, InnerTrip: 50, OuterTrip: 4,
						Loads: repeatLoads(20, LoadSpec{Global: "lattice", Pattern: ir.Seq, Stride: 16}),
						Work:  2, Weight: 1, ShallowLoads: 80,
					},
					{
						Name: "gauge_field", Depth: 3, InnerTrip: 50, OuterTrip: 4,
						Loads: repeatLoads(20, LoadSpec{Global: "lattice", Pattern: ir.Seq, Stride: 16}),
						Work:  2, Weight: 1, ShallowLoads: 80,
					},
				},
				ColdFuncs: 49, ColdLoadsPerFunc: 68, ColdGlobal: "lattice",
			},
		},
		{
			Name: "soplex", Class: Batch, Suite: "SPEC CPU2006",
			Description: "LP solver: random sparse-matrix access (2.5 MiB) plus dense vector streams",
			Config: AppConfig{
				Name: "soplex",
				Globals: []GlobalSpec{
					{Name: "matrix", Size: 5 << 19}, // 2.5 MiB
					{Name: "vec", Size: 1 << 20},
				},
				Hot: []HotFunc{
					{
						Name: "price", Depth: 2, InnerTrip: 60, OuterTrip: 4,
						Loads: repeatLoads(19, LoadSpec{Global: "matrix", Pattern: ir.Rand}),
						Work:  2, Weight: 1, ShallowLoads: 434,
					},
					{
						Name: "ratiotest", Depth: 2, InnerTrip: 60, OuterTrip: 4,
						Loads: repeatLoads(19, LoadSpec{Global: "vec", Pattern: ir.Seq, Stride: 8}),
						Work:  2, Weight: 1, ShallowLoads: 434,
					},
					{
						Name: "update", Depth: 2, InnerTrip: 60, OuterTrip: 4,
						Loads: repeatLoads(19, LoadSpec{Global: "matrix", Pattern: ir.Rand}),
						Work:  2, Weight: 1, ShallowLoads: 433,
					},
				},
				ColdFuncs: 98, ColdLoadsPerFunc: 146, ColdGlobal: "matrix",
			},
		},
		{
			Name: "libquantum", Class: Batch, Suite: "SPEC CPU2006",
			Description: "quantum simulator: 16-byte-stride streams over a 4 MiB state vector",
			Config: AppConfig{
				Name:    "libquantum",
				Globals: []GlobalSpec{{Name: "state", Size: 4 << 20}},
				Hot: []HotFunc{
					{
						Name: "toffoli", Depth: 2, InnerTrip: 150, OuterTrip: 8,
						Loads: repeatLoads(8, LoadSpec{Global: "state", Pattern: ir.Seq, Stride: 16}),
						Work:  1, Weight: 1, ShallowLoads: 20,
					},
					{
						Name: "sigma_x", Depth: 2, InnerTrip: 150, OuterTrip: 8,
						Loads: repeatLoads(6, LoadSpec{Global: "state", Pattern: ir.Seq, Stride: 16}),
						Work:  1, Weight: 1, ShallowLoads: 19,
					},
				},
				ColdFuncs: 11, ColdLoadsPerFunc: 53, ColdGlobal: "state",
			},
		},
		{
			Name: "lbm", Class: Batch, Suite: "SPEC CPU2006",
			Description: "lattice-Boltzmann: line-stride streams over an 8 MiB grid (heaviest streamer)",
			Config: AppConfig{
				Name:    "lbm",
				Globals: []GlobalSpec{{Name: "grid", Size: 8 << 20}},
				Hot: []HotFunc{
					{
						Name: "stream_collide", Depth: 2, InnerTrip: 150, OuterTrip: 4,
						Loads: repeatLoads(12, LoadSpec{Global: "grid", Pattern: ir.Seq, Stride: 64}),
						Work:  1, Weight: 1, ShallowLoads: 21,
					},
					{
						Name: "handle_walls", Depth: 2, InnerTrip: 150, OuterTrip: 4,
						Loads: repeatLoads(12, LoadSpec{Global: "grid", Pattern: ir.Seq, Stride: 64}),
						Work:  1, Weight: 1, ShallowLoads: 20,
					},
				},
				ColdFuncs: 12, ColdLoadsPerFunc: 16, ColdGlobal: "grid",
			},
		},
		{
			Name: "sphinx3", Class: Batch, Suite: "SPEC CPU2006",
			Description: "speech recognition: acoustic-model hot set plus language-model streams",
			Config: AppConfig{
				Name: "sphinx3",
				Globals: []GlobalSpec{
					{Name: "am", Size: 3 << 20},
					{Name: "lm", Size: 5 << 19}, // 2.5 MiB
				},
				Hot: []HotFunc{
					{
						Name: "gmm_score", Depth: 2, InnerTrip: 70, OuterTrip: 4,
						Loads: repeatLoads(29, LoadSpec{Global: "am", Pattern: ir.Hot, HotBytes: 768 << 10}),
						Work:  3, Weight: 1, ShallowLoads: 74,
					},
					{
						Name: "senone_eval", Depth: 2, InnerTrip: 70, OuterTrip: 4,
						Loads: repeatLoads(29, LoadSpec{Global: "am", Pattern: ir.Hot, HotBytes: 768 << 10}),
						Work:  3, Weight: 1, ShallowLoads: 74,
					},
					{
						Name: "lm_walk", Depth: 2, InnerTrip: 70, OuterTrip: 4,
						Loads: repeatLoads(29, LoadSpec{Global: "lm", Pattern: ir.Seq, Stride: 32}),
						Work:  2, Weight: 1, ShallowLoads: 74,
					},
					{
						Name: "lm_backoff", Depth: 2, InnerTrip: 70, OuterTrip: 4,
						Loads: repeatLoads(29, LoadSpec{Global: "lm", Pattern: ir.Seq, Stride: 32}),
						Work:  2, Weight: 1, ShallowLoads: 75,
					},
				},
				ColdFuncs: 65, ColdLoadsPerFunc: 70, ColdGlobal: "am",
			},
		},
		// ------------------------------------------------------- CloudSuite LS
		{
			Name: "web-search", Class: LatencySensitive, Suite: "CloudSuite",
			Description: "search service: per-query random probes of a 1.75 MiB index shard",
			Config: AppConfig{
				Name:    "web-search",
				Globals: []GlobalSpec{{Name: "index", Size: 7 << 18}},
				Hot: []HotFunc{{
					Name: "score", Depth: 1, InnerTrip: 40,
					Loads: repeatLoads(5, LoadSpec{Global: "index", Pattern: ir.Rand}),
					Work:  3, Weight: 1, ShallowLoads: 40,
				}},
				ColdFuncs: 6, ColdLoadsPerFunc: 30, ColdGlobal: "index",
				MainWork: 4,
			},
		},
		{
			Name: "media-streaming", Class: LatencySensitive, Suite: "CloudSuite",
			Description: "streaming service: random chunk-map lookups over 2 MiB (most contention-sensitive)",
			Config: AppConfig{
				Name:    "media-streaming",
				Globals: []GlobalSpec{{Name: "chunkmap", Size: 2 << 20}},
				Hot: []HotFunc{{
					Name: "serve_chunk", Depth: 1, InnerTrip: 50,
					Loads: repeatLoads(6, LoadSpec{Global: "chunkmap", Pattern: ir.Rand}),
					Work:  1, Weight: 1, ShallowLoads: 36,
				}},
				ColdFuncs: 5, ColdLoadsPerFunc: 24, ColdGlobal: "chunkmap",
				MainWork: 2,
			},
		},
		{
			Name: "graph-analytics", Class: LatencySensitive, Suite: "CloudSuite",
			Description: "graph service: pointer chases over a 1.5 MiB graph plus property reads",
			Config: AppConfig{
				Name: "graph-analytics",
				Globals: []GlobalSpec{
					{Name: "graph", Size: 3 << 19}, // 1.5 MiB
					{Name: "props", Size: 512 << 10},
				},
				Hot: []HotFunc{{
					Name: "traverse", Depth: 1, InnerTrip: 40,
					Loads: append(
						repeatLoads(4, LoadSpec{Global: "graph", Pattern: ir.Chase}),
						repeatLoads(2, LoadSpec{Global: "props", Pattern: ir.Rand})...),
					Work: 2, Weight: 1, ShallowLoads: 44,
				}},
				ColdFuncs: 7, ColdLoadsPerFunc: 26, ColdGlobal: "graph",
				MainWork: 3,
			},
		},
		// --------------------------- additional SPEC apps (Figures 4–6 roster)
		{
			Name: "gcc", Class: Batch, Suite: "SPEC CPU2006",
			Description: "compiler: branchy passes over a warm 256 KiB IR pool",
			Config: AppConfig{
				Name:    "gcc",
				Globals: []GlobalSpec{{Name: "irpool", Size: 1 << 20}},
				Hot: []HotFunc{
					{
						Name: "combine", Depth: 1, InnerTrip: 12,
						Loads: repeatLoads(3, LoadSpec{Global: "irpool", Pattern: ir.Hot, HotBytes: 256 << 10}),
						Work:  2, Weight: 6, ShallowLoads: 120,
					},
					{
						Name: "reload", Depth: 1, InnerTrip: 10,
						Loads: repeatLoads(3, LoadSpec{Global: "irpool", Pattern: ir.Hot, HotBytes: 128 << 10}),
						Work:  2, Weight: 6, ShallowLoads: 120,
					},
				},
				ColdFuncs: 30, ColdLoadsPerFunc: 40, ColdGlobal: "irpool",
			},
		},
		{
			Name: "namd", Class: Batch, Suite: "SPEC CPU2006",
			Description: "molecular dynamics: compute-dominated with small L2-resident streams",
			Config: AppConfig{
				Name:    "namd",
				Globals: []GlobalSpec{{Name: "atoms", Size: 512 << 10}},
				Hot: []HotFunc{{
					Name: "forces", Depth: 2, InnerTrip: 120, OuterTrip: 4,
					Loads: repeatLoads(4, LoadSpec{Global: "atoms", Pattern: ir.Seq, Stride: 32}),
					Work:  12, Weight: 1, ShallowLoads: 60,
				}},
				ColdFuncs: 8, ColdLoadsPerFunc: 30, ColdGlobal: "atoms",
			},
		},
		{
			Name: "gobmk", Class: Batch, Suite: "SPEC CPU2006",
			Description: "go engine: call- and branch-dense tree search over a small board state",
			Config: AppConfig{
				Name:    "gobmk",
				Globals: []GlobalSpec{{Name: "board", Size: 512 << 10}},
				Hot: []HotFunc{
					{
						Name: "owl_attack", Depth: 1, InnerTrip: 8,
						Loads: repeatLoads(2, LoadSpec{Global: "board", Pattern: ir.Hot, HotBytes: 128 << 10}),
						Work:  1, Weight: 10, ShallowLoads: 80,
					},
					{
						Name: "readconnect", Depth: 1, InnerTrip: 8,
						Loads: repeatLoads(2, LoadSpec{Global: "board", Pattern: ir.Hot, HotBytes: 64 << 10}),
						Work:  1, Weight: 10, ShallowLoads: 80,
					},
				},
				ColdFuncs: 25, ColdLoadsPerFunc: 30, ColdGlobal: "board",
			},
		},
		{
			Name: "dealII", Class: Batch, Suite: "SPEC CPU2006",
			Description: "finite elements: dense vector streams with moderate compute",
			Config: AppConfig{
				Name:    "dealII",
				Globals: []GlobalSpec{{Name: "mesh", Size: 1 << 20}},
				Hot: []HotFunc{{
					Name: "assemble", Depth: 2, InnerTrip: 100, OuterTrip: 4,
					Loads: repeatLoads(5, LoadSpec{Global: "mesh", Pattern: ir.Seq, Stride: 8}),
					Work:  6, Weight: 1, ShallowLoads: 90,
				}},
				ColdFuncs: 20, ColdLoadsPerFunc: 30, ColdGlobal: "mesh",
			},
		},
		{
			Name: "povray", Class: Batch, Suite: "SPEC CPU2006",
			Description: "ray tracer: compute-heavy with call-dense scene traversal",
			Config: AppConfig{
				Name:    "povray",
				Globals: []GlobalSpec{{Name: "scene", Size: 512 << 10}},
				Hot: []HotFunc{
					{
						Name: "intersect", Depth: 1, InnerTrip: 10,
						Loads: repeatLoads(3, LoadSpec{Global: "scene", Pattern: ir.Hot, HotBytes: 64 << 10}),
						Work:  8, Weight: 8, ShallowLoads: 70,
					},
					{
						Name: "shade", Depth: 1, InnerTrip: 10,
						Loads: repeatLoads(2, LoadSpec{Global: "scene", Pattern: ir.Hot, HotBytes: 64 << 10}),
						Work:  10, Weight: 8, ShallowLoads: 70,
					},
				},
				ColdFuncs: 15, ColdLoadsPerFunc: 30, ColdGlobal: "scene",
			},
		},
		{
			Name: "hmmer", Class: Batch, Suite: "SPEC CPU2006",
			Description: "sequence profiling: tight L2-resident streaming recurrence",
			Config: AppConfig{
				Name:    "hmmer",
				Globals: []GlobalSpec{{Name: "dp", Size: 256 << 10}},
				Hot: []HotFunc{{
					Name: "viterbi", Depth: 2, InnerTrip: 200, OuterTrip: 4,
					Loads: repeatLoads(6, LoadSpec{Global: "dp", Pattern: ir.Seq, Stride: 4}),
					Work:  4, Weight: 1, ShallowLoads: 50,
				}},
				ColdFuncs: 10, ColdLoadsPerFunc: 25, ColdGlobal: "dp",
			},
		},
		{
			Name: "sjeng", Class: Batch, Suite: "SPEC CPU2006",
			Description: "chess engine: branch- and call-dense search over hash tables",
			Config: AppConfig{
				Name:    "sjeng",
				Globals: []GlobalSpec{{Name: "hash", Size: 768 << 10}},
				Hot: []HotFunc{
					{
						Name: "search", Depth: 1, InnerTrip: 7,
						Loads: repeatLoads(2, LoadSpec{Global: "hash", Pattern: ir.Hot, HotBytes: 128 << 10}),
						Work:  2, Weight: 10, ShallowLoads: 60,
					},
					{
						Name: "evaluate", Depth: 1, InnerTrip: 7,
						Loads: repeatLoads(2, LoadSpec{Global: "hash", Pattern: ir.Hot, HotBytes: 64 << 10}),
						Work:  2, Weight: 10, ShallowLoads: 60,
					},
				},
				ColdFuncs: 12, ColdLoadsPerFunc: 25, ColdGlobal: "hash",
			},
		},
		{
			Name: "h264ref", Class: Batch, Suite: "SPEC CPU2006",
			Description: "video encoder: fine-stride frame streams plus warm reference windows",
			Config: AppConfig{
				Name:    "h264ref",
				Globals: []GlobalSpec{{Name: "frames", Size: 1 << 20}},
				Hot: []HotFunc{{
					Name: "motion_est", Depth: 2, InnerTrip: 120, OuterTrip: 4,
					Loads: append(
						repeatLoads(4, LoadSpec{Global: "frames", Pattern: ir.Seq, Stride: 16}),
						repeatLoads(2, LoadSpec{Global: "frames", Pattern: ir.Hot, HotBytes: 128 << 10})...),
					Work: 4, Weight: 1, ShallowLoads: 110,
				}},
				ColdFuncs: 22, ColdLoadsPerFunc: 30, ColdGlobal: "frames",
			},
		},
		{
			Name: "astar", Class: Batch, Suite: "SPEC CPU2006",
			Description: "pathfinding: pointer chases over a 1 MiB graph",
			Config: AppConfig{
				Name:    "astar",
				Globals: []GlobalSpec{{Name: "grid", Size: 1 << 20}},
				Hot: []HotFunc{{
					Name: "wayfind", Depth: 1, InnerTrip: 200,
					Loads: repeatLoads(4, LoadSpec{Global: "grid", Pattern: ir.Chase}),
					Work:  2, Weight: 1, ShallowLoads: 70,
				}},
				ColdFuncs: 10, ColdLoadsPerFunc: 25, ColdGlobal: "grid",
			},
		},
		// -------------------------------------- SPEC / PARSEC external co-runners
		{
			Name: "mcf", Class: LatencySensitive, Suite: "SPEC CPU2006",
			Description: "network-simplex: pointer chases over a 4 MiB arc network",
			Config: AppConfig{
				Name:    "mcf",
				Globals: []GlobalSpec{{Name: "net", Size: 4 << 20}},
				Hot: []HotFunc{{
					Name: "simplex", Depth: 1, InnerTrip: 300,
					Loads: repeatLoads(6, LoadSpec{Global: "net", Pattern: ir.Chase}),
					Work:  1, Weight: 1, ShallowLoads: 120,
				}},
				ColdFuncs: 12, ColdLoadsPerFunc: 40, ColdGlobal: "net",
			},
		},
		{
			Name: "omnetpp", Class: LatencySensitive, Suite: "SPEC CPU2006",
			Description: "discrete-event simulator: heap pointer chases over 2 MiB",
			Config: AppConfig{
				Name:    "omnetpp",
				Globals: []GlobalSpec{{Name: "heap", Size: 2 << 20}},
				Hot: []HotFunc{{
					Name: "schedule", Depth: 1, InnerTrip: 300,
					Loads: repeatLoads(6, LoadSpec{Global: "heap", Pattern: ir.Chase}),
					Work:  2, Weight: 1, ShallowLoads: 150,
				}},
				ColdFuncs: 20, ColdLoadsPerFunc: 40, ColdGlobal: "heap",
			},
		},
		{
			Name: "xalancbmk", Class: LatencySensitive, Suite: "SPEC CPU2006",
			Description: "XSLT processor: warm 512 KiB DOM hot set inside 2 MiB",
			Config: AppConfig{
				Name:    "xalancbmk",
				Globals: []GlobalSpec{{Name: "dom", Size: 2 << 20}},
				Hot: []HotFunc{{
					Name: "transform", Depth: 1, InnerTrip: 300,
					Loads: repeatLoads(8, LoadSpec{Global: "dom", Pattern: ir.Hot, HotBytes: 512 << 10}),
					Work:  3, Weight: 1, ShallowLoads: 160,
				}},
				ColdFuncs: 25, ColdLoadsPerFunc: 40, ColdGlobal: "dom",
			},
		},
		{
			Name: "streamcluster", Class: LatencySensitive, Suite: "PARSEC",
			Description: "online clustering: point streams (2 MiB) with random center lookups",
			Config: AppConfig{
				Name: "streamcluster",
				Globals: []GlobalSpec{
					{Name: "points", Size: 2 << 20},
					{Name: "centers", Size: 256 << 10},
				},
				Hot: []HotFunc{{
					Name: "pgain", Depth: 1, InnerTrip: 250,
					Loads: append(
						repeatLoads(4, LoadSpec{Global: "points", Pattern: ir.Seq, Stride: 32}),
						repeatLoads(4, LoadSpec{Global: "centers", Pattern: ir.Rand})...),
					Work: 2, Weight: 1, ShallowLoads: 60,
				}},
				ColdFuncs: 8, ColdLoadsPerFunc: 30, ColdGlobal: "points",
			},
		},
	}
}

func repeatLoads(n int, ld LoadSpec) []LoadSpec {
	out := make([]LoadSpec, n)
	for i := range out {
		out[i] = ld
	}
	return out
}
