// Package workload is the application catalog: synthetic equivalents of the
// SPEC CPU2006, SmashBench, CloudSuite and PARSEC programs the paper
// evaluates with (Table II).
//
// Real benchmark binaries cannot run on the simulated machine, so each
// catalog entry is an IR program whose observable characteristics are tuned
// to the published behaviour of its namesake:
//
//   - cache behaviour — working-set size, access pattern (streaming,
//     pointer-chasing, uniform random, hot-set) and memory intensity set
//     where the app falls on the contentious↔sensitive spectrum
//     (libquantum/lbm/sledge stream multi-MiB buffers; bst pointer-chases;
//     bzip2 is compute-bound with a warm hot set; media-streaming is the
//     most contention-sensitive service),
//   - static structure — total static loads, loads in covered regions, and
//     loads at maximum loop depth approximate Figure 8's per-app counts, so
//     the search-space-reduction heuristics reproduce, and
//   - service shape — latency-sensitive apps are request-driven (one entry-
//     function completion per request) so a load generator can drive them
//     at an offered QPS, while batch apps restart work units forever.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/progbin"
)

// Class partitions the catalog.
type Class int

// Workload classes.
const (
	// Batch apps are throughput-oriented hosts, candidates for protean
	// transformation.
	Batch Class = iota
	// LatencySensitive apps are high-priority request-driven services whose
	// QoS must be protected.
	LatencySensitive
)

func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case LatencySensitive:
		return "latency-sensitive"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Spec is one catalog entry.
type Spec struct {
	Name  string
	Class Class
	// Suite names the benchmark suite the app stands in for.
	Suite string
	// Description is a one-line behavioural summary.
	Description string
	// Config is the generator configuration; Module() builds from it.
	Config AppConfig
}

// Module builds a fresh IR module for the app.
func (s Spec) Module() *ir.Module { return Build(s.Config) }

// CompileProtean compiles the app with the protean pass.
func (s Spec) CompileProtean() (*progbin.Binary, error) {
	return pcc.Compile(s.Module(), pcc.Options{Protean: true})
}

// CompilePlain compiles the app without protean metadata.
func (s Spec) CompilePlain() (*progbin.Binary, error) {
	return pcc.Compile(s.Module(), pcc.Options{})
}

// ProcessConfig returns the canonical machine options for the class:
// batch apps restart forever, latency-sensitive apps are request-gated.
func (s Spec) ProcessConfig() machine.ProcessConfig {
	if s.Class == LatencySensitive {
		return machine.ProcessConfig{Gated: true, Label: s.Name}
	}
	return machine.ProcessConfig{Restart: true, Label: s.Name}
}

// ProcessOptions returns ProcessConfig.
//
// Deprecated: renamed to ProcessConfig alongside machine.ProcessConfig.
func (s Spec) ProcessOptions() machine.ProcessConfig { return s.ProcessConfig() }

// ByName returns the catalog entry with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MustByName is ByName that panics on unknown names (test/bench fixtures).
func MustByName(name string) Spec {
	s, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("workload: unknown app %q", name))
	}
	return s
}

// Names lists catalog names of one class, sorted.
func Names(c Class) []string {
	var out []string
	for _, s := range Catalog() {
		if s.Class == c {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// BatchHosts returns the ten batch applications of the paper's main
// evaluation (Figures 7–15), in the figures' presentation order.
func BatchHosts() []string {
	return []string{
		"blockie", "bst", "er-naive", "sledge",
		"bzip2", "milc", "soplex", "libquantum", "lbm", "sphinx3",
	}
}

// Webservices returns the three CloudSuite latency-sensitive services.
func Webservices() []string {
	return []string{"web-search", "media-streaming", "graph-analytics"}
}

// SPECFig4Apps returns the 18 SPEC CPU2006 applications in the presentation
// order of Figures 4 and 5.
func SPECFig4Apps() []string {
	return []string{
		"bzip2", "gcc", "mcf", "milc", "namd", "gobmk", "dealII", "soplex",
		"povray", "hmmer", "sjeng", "libquantum", "h264ref", "lbm",
		"omnetpp", "astar", "sphinx3", "xalancbmk",
	}
}
