// Package qos measures co-runner quality of service.
//
// The paper's primary QoS proxy is instructions per second relative to IPS
// running without the host (Section IV-F), obtained with a "flux" probe:
// the host is put to sleep for a short window (40 ms) once per period
// (4 s) and the co-runner's interference-free IPS is measured. FluxMonitor
// implements that mechanism. For request-driven services the paper notes
// the runtime "can be configured to use application-level metrics ... such
// as queries per second"; ThroughputQoS implements that configuration and
// drives the fluctuating-load experiment (Figure 16).
package qos

import (
	"repro/internal/loadgen"
	"repro/internal/machine"
)

// Source yields the protected application's current QoS in [0,1].
type Source interface {
	// QoS returns the latest estimate; ok is false until a first
	// measurement exists.
	QoS() (q float64, ok bool)
}

// FluxMonitor estimates co-runner QoS as IPS relative to solo IPS. It
// implements machine.Agent; register it after the processes exist.
//
// The solo reference combines two sources. Flux probes sleep the host and
// measure the co-runner running alone, exactly as in Section IV-F. In the
// scaled simulation, however, a short probe cannot re-warm a multi-MiB
// working set (the clock is ~250x slower than real hardware while caches
// are only ~3x smaller), so probe-only estimates are biased low. The paper
// grounds its IPS-as-QoS methodology in fleet-wide profiles "collected
// regularly and ubiquitously via mechanisms such as the Google Wide
// Profiler" (Section V-C); ReferenceIPS models that historical profile.
// When set, it anchors the solo estimate and probes serve as drift checks;
// when zero, the probe EWMA is used alone.
type FluxMonitor struct {
	host *machine.Process
	ext  *machine.Process

	// ReferenceIPS is the historical solo IPS profile of the protected
	// app (0 = none; rely on probes only).
	ReferenceIPS float64

	// PeriodCycles separates probe starts; ProbeCycles is the probe length.
	PeriodCycles uint64
	ProbeCycles  uint64

	nextProbe  uint64
	probing    bool
	probeEnd   uint64
	markInsts  uint64
	markCycles uint64

	normMark       uint64
	normMarkCycles uint64

	soloIPS float64
	curQoS  float64
	haveQoS bool
	probes  int
}

// NewFluxMonitor builds a monitor protecting ext from host. Period and
// probe default to 1/10 of the paper's wall-clock values (400 ms period,
// 4 ms probe — same 1% overhead ratio, denser sampling to fit short
// simulations).
func NewFluxMonitor(m *machine.Machine, host, ext *machine.Process, periodCycles, probeCycles uint64) *FluxMonitor {
	ms := uint64(m.Config().FreqHz / 1000)
	if periodCycles == 0 {
		periodCycles = 400 * ms
	}
	if probeCycles == 0 {
		probeCycles = 4 * ms
	}
	return &FluxMonitor{
		host: host, ext: ext,
		PeriodCycles: periodCycles, ProbeCycles: probeCycles,
	}
}

// Tick runs the probe schedule.
func (f *FluxMonitor) Tick(m *machine.Machine) {
	now := m.Now()
	if f.nextProbe == 0 {
		// First probe fires after one period; until then QoS is unknown.
		f.nextProbe = now + f.PeriodCycles
		f.normMark = f.ext.Counters().Insts
		f.normMarkCycles = now
		return
	}
	if f.probing && now >= f.probeEnd {
		f.probing = false
		d := f.ext.Counters().Insts - f.markInsts
		dt := float64(now-f.markCycles) / m.Config().FreqHz
		if dt > 0 && d > 0 {
			ips := float64(d) / dt
			if f.soloIPS == 0 {
				f.soloIPS = ips
			} else {
				// EWMA smooths load-dependent drift without forgetting.
				f.soloIPS = 0.5*f.soloIPS + 0.5*ips
			}
		}
		f.normMark = f.ext.Counters().Insts
		f.normMarkCycles = now
		return
	}
	if !f.probing && now >= f.nextProbe {
		// Close the normal window: QoS = normal IPS / solo estimate.
		d := f.ext.Counters().Insts - f.normMark
		dt := float64(now-f.normMarkCycles) / m.Config().FreqHz
		if solo, ok := f.SoloIPS(); ok && dt > 0 {
			f.curQoS = clamp01(float64(d) / dt / solo)
			f.haveQoS = true
		}
		// Open the probe: the host sleeps while the co-runner runs alone.
		f.host.ForceSleep(f.ProbeCycles)
		f.probing = true
		f.probeEnd = now + f.ProbeCycles
		f.nextProbe = now + f.PeriodCycles
		f.markInsts = f.ext.Counters().Insts
		f.markCycles = now
		f.probes++
	}
}

// QoS returns the last completed normal-window estimate.
func (f *FluxMonitor) QoS() (float64, bool) { return f.curQoS, f.haveQoS }

// SoloIPS returns the interference-free IPS estimate: the historical
// reference when configured (never below the probe-observed rate), else
// the probe EWMA.
func (f *FluxMonitor) SoloIPS() (float64, bool) {
	if f.ReferenceIPS > 0 {
		if f.soloIPS > f.ReferenceIPS {
			return f.soloIPS, true
		}
		return f.ReferenceIPS, true
	}
	return f.soloIPS, f.soloIPS > 0
}

// QoSOf converts an externally measured co-runner IPS into QoS against the
// current solo estimate — how PC3D scores co-runner health inside variant-
// evaluation windows between flux probes.
func (f *FluxMonitor) QoSOf(ips float64) (float64, bool) {
	solo, ok := f.SoloIPS()
	if !ok {
		return 0, false
	}
	return clamp01(ips / solo), true
}

// Probes counts completed probes.
func (f *FluxMonitor) Probes() int { return f.probes }

// ThroughputQoS measures a request-driven service's QoS as served/offered
// over a sliding window — the application-level metric configuration.
type ThroughputQoS struct {
	proc *machine.Process
	gen  *loadgen.Generator
	// WindowCycles is the measurement window (default 100 ms).
	WindowCycles uint64

	windowEnd   uint64
	markServed  uint64
	markOffered uint64
	curQoS      float64
	haveQoS     bool
}

// NewThroughputQoS monitors proc fed by gen.
func NewThroughputQoS(m *machine.Machine, proc *machine.Process, gen *loadgen.Generator, windowCycles uint64) *ThroughputQoS {
	if windowCycles == 0 {
		windowCycles = 100 * uint64(m.Config().FreqHz/1000)
	}
	return &ThroughputQoS{proc: proc, gen: gen, WindowCycles: windowCycles}
}

// Tick closes measurement windows.
func (t *ThroughputQoS) Tick(m *machine.Machine) {
	now := m.Now()
	if t.windowEnd == 0 {
		t.windowEnd = now + t.WindowCycles
		t.markServed = t.proc.Counters().Completions
		t.markOffered = t.gen.Offered()
		return
	}
	if now < t.windowEnd {
		return
	}
	served := t.proc.Counters().Completions - t.markServed
	offered := t.gen.Offered() - t.markOffered
	if offered > 0 {
		// A backlog being drained can push served past offered; QoS caps
		// at 1.
		t.curQoS = clamp01(float64(served) / float64(offered))
		t.haveQoS = true
	} else {
		// No offered load: the service trivially meets QoS.
		t.curQoS = 1
		t.haveQoS = true
	}
	// Queue-aware correction: meeting the window's arrivals while a
	// backlog persists is not full QoS.
	if backlog := t.proc.WorkBudget(); backlog > offered/2 && offered > 0 {
		over := float64(backlog) / float64(offered)
		t.curQoS = clamp01(t.curQoS / (1 + over))
	}
	t.windowEnd = now + t.WindowCycles
	t.markServed = t.proc.Counters().Completions
	t.markOffered = t.gen.Offered()
}

// QoS returns the last window's served/offered ratio.
func (t *ThroughputQoS) QoS() (float64, bool) { return t.curQoS, t.haveQoS }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
