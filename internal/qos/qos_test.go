package qos

import (
	"testing"

	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/workload"
)

// soloIPS measures er-naive's interference-free IPS (the "historical
// profile" reference).
func soloIPS(t *testing.T) float64 {
	t.Helper()
	m := machine.New(machine.Config{Cores: 2})
	b, err := workload.MustByName("er-naive").CompilePlain()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := m.Attach(0, b, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	start := p.Counters()
	m.RunSeconds(1.5)
	d := p.Counters().Sub(start)
	return float64(d.Insts) / 1.5
}

// colocate attaches a sensitive external app on core 0 and a host on core 1.
func colocate(t *testing.T, host string) (*machine.Machine, *machine.Process, *machine.Process) {
	t.Helper()
	m := machine.New(machine.Config{Cores: 2})
	extSpec := workload.MustByName("er-naive")
	eb, err := extSpec.CompilePlain()
	if err != nil {
		t.Fatalf("compile ext: %v", err)
	}
	ext, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach ext: %v", err)
	}
	hb, err := workload.MustByName(host).CompilePlain()
	if err != nil {
		t.Fatalf("compile host: %v", err)
	}
	hp, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach host: %v", err)
	}
	return m, hp, ext
}

func TestFluxDetectsContention(t *testing.T) {
	m, host, ext := colocate(t, "lbm")
	f := NewFluxMonitor(m, host, ext, 0, 0)
	f.ReferenceIPS = soloIPS(t)
	m.AddAgent(f)
	m.RunSeconds(3)
	if f.Probes() < 3 {
		t.Fatalf("only %d probes in 3s", f.Probes())
	}
	q, ok := f.QoS()
	if !ok {
		t.Fatal("no QoS estimate")
	}
	if q > 0.85 {
		t.Errorf("QoS vs lbm = %.3f; expected clear degradation", q)
	}
	if q < 0.1 {
		t.Errorf("QoS vs lbm = %.3f; implausibly low", q)
	}
	solo, ok := f.SoloIPS()
	if !ok || solo <= 0 {
		t.Fatal("no solo estimate")
	}
	// QoSOf inverts correctly.
	if got, _ := f.QoSOf(solo); got != 1 {
		t.Errorf("QoSOf(solo) = %.3f, want 1", got)
	}
	if got, _ := f.QoSOf(solo / 2); got < 0.45 || got > 0.55 {
		t.Errorf("QoSOf(solo/2) = %.3f, want ~0.5", got)
	}
}

func TestFluxHighQoSWithGentleHost(t *testing.T) {
	m, host, ext := colocate(t, "bzip2")
	f := NewFluxMonitor(m, host, ext, 0, 0)
	f.ReferenceIPS = soloIPS(t)
	m.AddAgent(f)
	m.RunSeconds(3)
	q, ok := f.QoS()
	if !ok {
		t.Fatal("no QoS estimate")
	}
	if q < 0.7 {
		t.Errorf("QoS vs bzip2 = %.3f; compute-bound host should be gentle", q)
	}
}

func TestFluxProbeSleepsHost(t *testing.T) {
	m, host, ext := colocate(t, "lbm")
	_ = ext
	f := NewFluxMonitor(m, host, ext, 0, 0)
	m.AddAgent(f)
	m.RunSeconds(2)
	c := host.Counters()
	if c.SleepCycles == 0 {
		t.Fatal("flux probes never slept the host")
	}
	// Probe overhead must stay near the configured ratio (1%).
	frac := float64(c.SleepCycles) / float64(c.Cycles)
	if frac > 0.03 {
		t.Errorf("probe overhead %.3f of host time; want ~0.01", frac)
	}
}

func TestFluxQoSNearOneWhenAlone(t *testing.T) {
	// Host exists but is napped to oblivion: QoS should read ~1.
	m, host, ext := colocate(t, "lbm")
	_ = ext
	host.SetNapIntensity(1)
	f := NewFluxMonitor(m, host, ext, 0, 0)
	f.ReferenceIPS = soloIPS(t)
	m.AddAgent(f)
	m.RunSeconds(3)
	q, ok := f.QoS()
	if !ok {
		t.Fatal("no QoS estimate")
	}
	if q < 0.9 {
		t.Errorf("QoS with fully-napped host = %.3f, want ~1", q)
	}
}

func TestThroughputQoS(t *testing.T) {
	spec := workload.MustByName("web-search")
	bin, _ := spec.CompilePlain()

	// Solo capacity first.
	mc := machine.New(machine.Config{Cores: 2})
	pc, _ := mc.Attach(0, bin, spec.ProcessConfig())
	capacity := loadgen.MeasureCapacity(mc, pc, 2000)

	run := func(load float64, withAggressor bool) float64 {
		m := machine.New(machine.Config{Cores: 2})
		b2, _ := spec.CompilePlain()
		p, _ := m.Attach(0, b2, spec.ProcessConfig())
		if withAggressor {
			ab, _ := workload.MustByName("lbm").CompilePlain()
			if _, err := m.Attach(1, ab, machine.ProcessConfig{Restart: true}); err != nil {
				t.Fatalf("attach: %v", err)
			}
		}
		gen := loadgen.NewGenerator(p, loadgen.Constant(load), capacity)
		tq := NewThroughputQoS(m, p, gen, 0)
		m.AddAgent(gen)
		m.AddAgent(tq)
		m.RunSeconds(3)
		q, ok := tq.QoS()
		if !ok {
			t.Fatal("no throughput QoS")
		}
		return q
	}

	if q := run(0.2, false); q < 0.95 {
		t.Errorf("low load alone: QoS %.3f, want ~1", q)
	}
	// Low load + heavy aggressor: per-request slowdown is absorbed by
	// slack — the Figure 16 "web-search is not sensitive at low load"
	// behaviour.
	if q := run(0.2, true); q < 0.9 {
		t.Errorf("low load with aggressor: QoS %.3f, want >= 0.9", q)
	}
	// Near-peak load + aggressor: the service cannot keep up.
	lowQ := run(0.95, true)
	if lowQ > 0.9 {
		t.Errorf("peak load with aggressor: QoS %.3f, want < 0.9", lowQ)
	}
}
