package qos

import (
	"testing"

	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/workload"
)

func TestFluxWindowScoresContention(t *testing.T) {
	ref := soloIPS(t)
	m, host, ext := colocate(t, "lbm")
	flux := NewFluxMonitor(m, host, ext, 0, 0)
	flux.ReferenceIPS = ref
	m.AddAgent(flux)
	w := &FluxWindow{Flux: flux, Ext: ext}

	m.RunSeconds(0.5)
	// Contended window: QoS well below 1.
	w.Mark(m)
	m.RunSeconds(0.3)
	q1, ok := w.Score(m)
	if !ok {
		t.Fatal("no score")
	}
	if q1 > 0.9 {
		t.Errorf("contended window QoS = %.3f, want < 0.9", q1)
	}
	// Host fully napped: the next window must score much higher.
	host.SetNapIntensity(1)
	m.RunSeconds(0.3) // settle + rewarm
	w.Mark(m)
	m.RunSeconds(0.3)
	q2, ok := w.Score(m)
	if !ok {
		t.Fatal("no score")
	}
	if q2 < q1+0.1 {
		t.Errorf("napped window QoS %.3f not clearly above contended %.3f", q2, q1)
	}
}

func TestFluxWindowZeroLength(t *testing.T) {
	ref := soloIPS(t)
	m, host, ext := colocate(t, "lbm")
	flux := NewFluxMonitor(m, host, ext, 0, 0)
	flux.ReferenceIPS = ref
	w := &FluxWindow{Flux: flux, Ext: ext}
	w.Mark(m)
	if _, ok := w.Score(m); ok {
		t.Error("zero-length window scored")
	}
}

func TestThroughputWindow(t *testing.T) {
	spec := workload.MustByName("web-search")
	bin, err := spec.CompilePlain()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, bin, spec.ProcessConfig())

	cm := machine.New(machine.Config{Cores: 1})
	b2, _ := spec.CompilePlain()
	cp, _ := cm.Attach(0, b2, spec.ProcessConfig())
	capacity := loadgen.MeasureCapacity(cm, cp, 1000)

	gen := loadgen.NewGenerator(p, loadgen.Constant(0.3), capacity)
	m.AddAgent(gen)
	w := &ThroughputWindow{Proc: p, Gen: gen}

	m.RunSeconds(0.3)
	w.Mark(m)
	m.RunSeconds(0.5)
	q, ok := w.Score(m)
	if !ok {
		t.Fatal("no score")
	}
	if q < 0.95 {
		t.Errorf("uncontended low-load window QoS = %.3f, want ~1", q)
	}
	// Throttle the server hard: served/offered collapses.
	p.SetNapIntensity(0.97)
	m.RunSeconds(0.3)
	w.Mark(m)
	m.RunSeconds(0.5)
	q2, _ := w.Score(m)
	if q2 > 0.8 {
		t.Errorf("throttled window QoS = %.3f, want low", q2)
	}
}

func TestThroughputWindowNoOffered(t *testing.T) {
	spec := workload.MustByName("web-search")
	bin, _ := spec.CompilePlain()
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, bin, spec.ProcessConfig())
	gen := loadgen.NewGenerator(p, loadgen.Constant(0), 1000)
	m.AddAgent(gen)
	w := &ThroughputWindow{Proc: p, Gen: gen}
	w.Mark(m)
	m.RunSeconds(0.2)
	q, ok := w.Score(m)
	if !ok || q != 1 {
		t.Errorf("no-offered-load window = %.3f,%v; want 1,true", q, ok)
	}
}
