package qos

import (
	"repro/internal/loadgen"
	"repro/internal/machine"
)

// WindowScorer scores the protected application over caller-defined
// measurement windows. PC3D's variant evaluation (Algorithm 2) opens a
// window after dispatching a variant and setting a nap intensity, lets it
// run, and scores co-runner QoS over exactly that window.
type WindowScorer interface {
	// Mark starts a window at the current machine time.
	Mark(m *machine.Machine)
	// Score returns the QoS over the window since Mark; ok is false when
	// the window carries no signal (zero length, no reference).
	Score(m *machine.Machine) (q float64, ok bool)
}

// FluxWindow scores windows as external-app IPS against a FluxMonitor's
// solo estimate.
type FluxWindow struct {
	Flux *FluxMonitor
	Ext  *machine.Process

	markInsts  uint64
	markSleep  uint64
	markCycles uint64
}

// Mark snapshots the external app's counters.
func (w *FluxWindow) Mark(m *machine.Machine) {
	c := w.Ext.Counters()
	w.markInsts = c.Insts
	w.markSleep = c.SleepCycles
	w.markCycles = m.Now()
}

// Score computes windowed IPS → QoS. Time the external app spent in flux-
// probe sleeps is excluded from the window length (probes would otherwise
// bias windows that happen to contain one).
func (w *FluxWindow) Score(m *machine.Machine) (float64, bool) {
	c := w.Ext.Counters()
	cycles := m.Now() - w.markCycles
	sleep := c.SleepCycles - w.markSleep
	if cycles <= sleep {
		return 0, false
	}
	secs := float64(cycles-sleep) / m.Config().FreqHz
	ips := float64(c.Insts-w.markInsts) / secs
	return w.Flux.QoSOf(ips)
}

// ThroughputWindow scores windows as served/offered requests of a gated
// service.
type ThroughputWindow struct {
	Proc *machine.Process
	Gen  *loadgen.Generator

	markServed  uint64
	markOffered uint64
}

// Mark snapshots request counters.
func (w *ThroughputWindow) Mark(m *machine.Machine) {
	w.markServed = w.Proc.Counters().Completions
	w.markOffered = w.Gen.Offered()
}

// Score returns served/offered since Mark, discounted when a backlog is
// outstanding.
func (w *ThroughputWindow) Score(m *machine.Machine) (float64, bool) {
	served := w.Proc.Counters().Completions - w.markServed
	offered := w.Gen.Offered() - w.markOffered
	if offered == 0 {
		return 1, true
	}
	q := clamp01(float64(served) / float64(offered))
	if backlog := w.Proc.WorkBudget(); backlog > offered/2 {
		q = clamp01(q / (1 + float64(backlog)/float64(offered)))
	}
	return q, true
}
