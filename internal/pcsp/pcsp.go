// Package pcsp implements Protean Code Software Prefetching: a second
// protean runtime policy, demonstrating the paper's generality claim that
// "once compiled with pcc, any protean code runtime can be used",
// applying "different classes of optimizations in the pursuit of different
// objectives to the same application binary" (Section III design
// principles).
//
// Where PC3D is extrospective (it reshapes the host for its neighbours'
// benefit), PCSP is purely introspective: it speeds the host itself up by
// inserting lead prefetches ahead of streaming loads in hot innermost
// loops — a structural IR transform, unlike PC3D's attribute-level hint
// toggling. Candidate variants are generated online from the embedded IR,
// dispatched through the EVT, measured empirically against the running
// baseline, and kept only when they deliver a real gain.
//
// The simulated prefetch is idealized (a warmed line is immediately
// available), so measured gains are upper bounds; the decision machinery —
// profile-guided targeting, online A/B measurement, revert on regression —
// is the point.
package pcsp

import (
	"fmt"

	"repro/internal/agentloop"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sampling"
)

// Options tune the optimizer.
type Options struct {
	// WarmupCycles precede profiling-based decisions (default 200 ms).
	WarmupCycles uint64
	// SettleCycles follow each dispatch before measuring (default 50 ms).
	SettleCycles uint64
	// WindowCycles is the BPS measurement window (default 100 ms).
	WindowCycles uint64
	// LeadIters are the candidate prefetch distances, in iterations ahead
	// (default 4 and 16; lead bytes = iterations × stride).
	LeadIters []int64
	// MinGain is the relative BPS improvement required to keep a variant
	// (default 0.03).
	MinGain float64
	// MaxFuncs bounds how many hot functions are optimized (default 3).
	MaxFuncs int
}

func (o Options) withDefaults(m *machine.Machine) Options {
	ms := uint64(m.Config().FreqHz / 1000)
	if o.WarmupCycles == 0 {
		o.WarmupCycles = 200 * ms
	}
	if o.SettleCycles == 0 {
		o.SettleCycles = 50 * ms
	}
	if o.WindowCycles == 0 {
		o.WindowCycles = 100 * ms
	}
	if len(o.LeadIters) == 0 {
		o.LeadIters = []int64{4, 16}
	}
	if o.MinGain == 0 {
		o.MinGain = 0.03
	}
	if o.MaxFuncs == 0 {
		o.MaxFuncs = 3
	}
	return o
}

// Result records the outcome for one optimized function.
type Result struct {
	Func string
	// Targets is how many streaming loads were prefetched.
	Targets int
	// LeadIters is the winning prefetch distance (0 when not kept).
	LeadIters int64
	// Gain is the best measured relative BPS improvement.
	Gain float64
	// Kept reports whether the variant stayed dispatched.
	Kept bool
}

// Controller runs the optimization pass. It implements machine.Agent.
type Controller struct {
	rt   *core.Runtime
	opts Options
	loop *agentloop.Loop

	meter   *sampling.Meter
	results []Result
	done    bool
}

// New builds a controller over an attached runtime.
func New(rt *core.Runtime, opts Options) *Controller {
	c := &Controller{rt: rt, opts: opts, meter: sampling.NewMeter(rt.Host())}
	c.loop = agentloop.New(c.policy)
	return c
}

// Tick implements machine.Agent.
func (c *Controller) Tick(m *machine.Machine) { c.loop.Tick(m) }

// Close stops the policy goroutine.
func (c *Controller) Close() { c.loop.Close() }

// Done reports whether the optimization pass finished.
func (c *Controller) Done() bool { return c.done }

// Results lists per-function outcomes (valid once Done).
func (c *Controller) Results() []Result { return c.results }

// streamTargets returns the IDs of prefetchable loads: innermost-loop
// sequential loads of fn.
func streamTargets(mod *ir.Module, fn string) []int {
	f := mod.Func(fn)
	if f == nil {
		return nil
	}
	lf := ir.BuildLoopForest(f)
	if lf.MaxDepth == 0 {
		return nil
	}
	var ids []int
	for _, b := range f.Blocks {
		if !lf.AtMaxDepth(b.Index) {
			continue
		}
		for _, in := range b.Instrs {
			if ld, ok := in.(*ir.Load); ok && ld.Acc.Pattern == ir.Seq && !ld.NT {
				ids = append(ids, ld.ID)
			}
		}
	}
	return ids
}

// leadPrefetchTransform inserts a lead prefetch before every targeted load
// of fn. The prefetch shares the load's MemID, so it peeks the same stream
// cursor the load advances.
func leadPrefetchTransform(fn string, targets map[int]bool, iters int64) core.Transform {
	return func(m *ir.Module) error {
		f := m.Func(fn)
		if f == nil {
			return fmt.Errorf("pcsp: function %q not in module", fn)
		}
		for _, b := range f.Blocks {
			var out []ir.Instr
			for _, in := range b.Instrs {
				if ld, ok := in.(*ir.Load); ok && targets[ld.ID] {
					stride := ld.Acc.Stride
					if stride == 0 {
						stride = 8
					}
					out = append(out, &ir.Prefetch{
						Acc: ld.Acc, MemID: ld.MemID, Lead: iters * stride,
					})
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		return nil
	}
}

// policy is the sequential optimization pass.
func (c *Controller) policy(l *agentloop.Loop) {
	m := l.Wait()
	if m == nil {
		return
	}
	c.opts = c.opts.withDefaults(m)
	if m = l.WaitCycles(c.opts.WarmupCycles); m == nil {
		return
	}

	prof := c.rt.Sampler().Lifetime()
	optimized := 0
	for _, fn := range prof.Hottest() {
		if optimized >= c.opts.MaxFuncs {
			break
		}
		ids := streamTargets(c.rt.IR(), fn)
		if len(ids) == 0 {
			continue
		}
		optimized++
		targets := make(map[int]bool, len(ids))
		for _, id := range ids {
			targets[id] = true
		}

		baseline, ok := c.measureBPS(l, &m)
		if !ok {
			return
		}
		res := Result{Func: fn, Targets: len(ids)}
		var bestVariant *core.Variant
		for _, iters := range c.opts.LeadIters {
			v, ok := c.compileDispatch(l, &m, fn, targets, iters)
			if !ok {
				return
			}
			if v == nil {
				continue // compile failed; skip this candidate
			}
			bps, ok := c.measureBPS(l, &m)
			if !ok {
				return
			}
			gain := bps/baseline - 1
			if gain > res.Gain {
				res.Gain = gain
				res.LeadIters = iters
				bestVariant = v
			}
		}
		if res.Gain >= c.opts.MinGain && bestVariant != nil {
			if c.rt.Dispatched(fn) != bestVariant {
				if err := c.rt.Dispatch(bestVariant); err == nil {
					res.Kept = true
				}
			} else {
				res.Kept = true
			}
		}
		if !res.Kept {
			res.LeadIters = 0
			if err := c.rt.Revert(fn); err != nil {
				// The function may not be virtualized; nothing to revert.
				res.Kept = false
			}
		}
		c.results = append(c.results, res)
	}
	c.done = true
	// Optimization is one-shot; keep absorbing ticks.
	for l.Wait() != nil {
	}
}

// measureBPS settles then measures the host's branches per second.
func (c *Controller) measureBPS(l *agentloop.Loop, m **machine.Machine) (float64, bool) {
	mm := l.WaitCycles(c.opts.SettleCycles)
	if mm == nil {
		return 0, false
	}
	c.meter.Read(mm)
	mm = l.WaitCycles(c.opts.WindowCycles)
	if mm == nil {
		return 0, false
	}
	*m = mm
	return c.meter.Read(mm).BPS, true
}

// compileDispatch requests, waits for, and dispatches one candidate.
func (c *Controller) compileDispatch(l *agentloop.Loop, m **machine.Machine, fn string, targets map[int]bool, iters int64) (*core.Variant, bool) {
	var got *core.Variant
	var cerr error
	doneFlag := false
	err := c.rt.RequestVariant(fn, leadPrefetchTransform(fn, targets, iters), iters,
		func(v *core.Variant, err error) { got, cerr, doneFlag = v, err, true })
	if err != nil {
		return nil, true
	}
	for !doneFlag {
		mm := l.Wait()
		if mm == nil {
			return nil, false
		}
		*m = mm
	}
	if cerr != nil {
		return nil, true
	}
	if err := c.rt.Dispatch(got); err != nil {
		return nil, true
	}
	return got, true
}
