package pcsp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/workload"
)

func attach(t *testing.T, app string) (*machine.Machine, *machine.Process, *core.Runtime) {
	t.Helper()
	bin, err := workload.MustByName(app).CompileProtean()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 2})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rt, err := core.New(core.Config{Machine: m, Host: p, RuntimeCore: 1})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	m.AddAgent(rt)
	return m, p, rt
}

func TestStreamTargets(t *testing.T) {
	mod := workload.MustByName("libquantum").Module()
	ids := streamTargets(mod, "toffoli")
	if len(ids) != 8 {
		t.Errorf("toffoli targets = %d, want 8 innermost seq loads", len(ids))
	}
	// bst chases pointers: nothing prefetchable.
	bst := workload.MustByName("bst").Module()
	if got := streamTargets(bst, "walk"); len(got) != 0 {
		t.Errorf("bst walk targets = %d, want 0", len(got))
	}
	if streamTargets(mod, "missing") != nil {
		t.Error("unknown function returned targets")
	}
}

func TestLeadPrefetchTransform(t *testing.T) {
	mod := workload.MustByName("libquantum").Module()
	ids := streamTargets(mod, "toffoli")
	targets := map[int]bool{}
	for _, id := range ids {
		targets[id] = true
	}
	clone := mod.Clone()
	if err := leadPrefetchTransform("toffoli", targets, 8)(clone); err != nil {
		t.Fatalf("transform: %v", err)
	}
	if err := clone.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	// Load IDs must be unchanged (insertion never renumbers loads).
	if clone.NumLoads != mod.NumLoads {
		t.Fatalf("NumLoads changed: %d -> %d", mod.NumLoads, clone.NumLoads)
	}
	// Each targeted load now has a preceding lead prefetch sharing its
	// MemID.
	f := clone.Func("toffoli")
	found := 0
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pf, ok := in.(*ir.Prefetch)
			if !ok || pf.Lead == 0 {
				continue
			}
			found++
			ld, ok := b.Instrs[i+1].(*ir.Load)
			if !ok {
				t.Fatalf("lead prefetch not followed by a load")
			}
			if pf.MemID != ld.MemID {
				t.Errorf("prefetch MemID %d != load MemID %d", pf.MemID, ld.MemID)
			}
			if pf.Lead != 8*ld.Acc.Stride {
				t.Errorf("Lead = %d, want %d", pf.Lead, 8*ld.Acc.Stride)
			}
		}
	}
	if found != len(ids) {
		t.Errorf("inserted %d prefetches, want %d", found, len(ids))
	}
	// Untargeted functions untouched.
	if clone.NumMemSites != mod.NumMemSites {
		t.Errorf("NumMemSites changed: %d -> %d (shared MemIDs must not mint new sites)",
			mod.NumMemSites, clone.NumMemSites)
	}
	// The transformed module still compiles and verifies.
	if _, err := pcc.Compile(clone, pcc.Options{Protean: true}); err != nil {
		t.Fatalf("compile transformed: %v", err)
	}
}

func TestPCSPSpeedsUpStreamer(t *testing.T) {
	// Baseline run without PCSP.
	m0, p0, _ := attach(t, "lbm")
	m0.RunSeconds(3)
	c0 := p0.Counters()
	m0.RunSeconds(2)
	baseBPS := float64(p0.Counters().Sub(c0).Branches) / 2

	// With PCSP.
	m, p, rt := attach(t, "lbm")
	ctrl := New(rt, Options{})
	defer ctrl.Close()
	m.AddAgent(ctrl)
	m.RunSeconds(3)
	if !ctrl.Done() {
		t.Fatal("optimization pass did not finish")
	}
	kept := 0
	for _, r := range ctrl.Results() {
		if r.Kept {
			kept++
			if r.LeadIters == 0 || r.Gain < ctrl.opts.MinGain {
				t.Errorf("kept result inconsistent: %+v", r)
			}
		}
	}
	if kept == 0 {
		t.Fatalf("no variant kept for a pure streamer: %+v", ctrl.Results())
	}
	c1 := p.Counters()
	m.RunSeconds(2)
	optBPS := float64(p.Counters().Sub(c1).Branches) / 2
	if optBPS < baseBPS*1.1 {
		t.Errorf("PCSP BPS %.0f vs baseline %.0f: want >= 1.1x", optBPS, baseBPS)
	}
}

func TestPCSPLeavesNonStreamersAlone(t *testing.T) {
	m, _, rt := attach(t, "bst")
	ctrl := New(rt, Options{})
	defer ctrl.Close()
	m.AddAgent(ctrl)
	m.RunSeconds(2)
	if !ctrl.Done() {
		t.Fatal("pass did not finish")
	}
	for _, r := range ctrl.Results() {
		if r.Kept {
			t.Errorf("kept a variant on a pointer chaser: %+v", r)
		}
	}
	if rt.Dispatched("walk") != nil {
		t.Error("bst walk left dispatched")
	}
}

func TestPCSPSameBinaryAsPC3D(t *testing.T) {
	// The generality claim: the same protean binary serves both runtimes.
	// Attach PCSP to a binary compiled once, then verify the original code
	// still works after a full optimize cycle (dispatch + possible revert).
	m, p, rt := attach(t, "libquantum")
	ctrl := New(rt, Options{})
	defer ctrl.Close()
	m.AddAgent(ctrl)
	m.RunSeconds(3)
	if !ctrl.Done() {
		t.Fatal("pass did not finish")
	}
	if err := rt.RevertAll(); err != nil {
		t.Fatalf("revert all: %v", err)
	}
	m.RunSeconds(0.3)
	c0 := p.Counters()
	m.RunSeconds(0.5)
	if p.Counters().Sub(c0).Insts == 0 {
		t.Error("host stalled after revert")
	}
}
