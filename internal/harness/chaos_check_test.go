package harness

import (
	"strconv"
	"testing"
)

// TestFigureChaosGracefulDegradation runs the figchaos sweep and checks the
// robustness story end to end: availability and QoS fall monotonically with
// the fault rate (same seed ⇒ the crash set only grows), and nothing
// collapses — survivors keep serving batch work and PC3D keeps QoS off the
// floor even while runtimes crash, compiles fail and sensors go dark.
func TestFigureChaosGracefulDegradation(t *testing.T) {
	tab, err := shared.FigureChaos()
	if err != nil {
		t.Fatalf("FigureChaos: %v", err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("chaos sweep has %d rows, want >= 3 fault rates", len(tab.Rows))
	}
	col := func(row []string, i int) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[i], err)
		}
		return v
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if a := col(first, 1); a != 1 {
		t.Errorf("healthy row availability = %v, want 1", a)
	}
	if n := col(first, 6); n != 0 {
		t.Errorf("healthy row reports %v crashes", n)
	}
	prevAvail, prevQoS := 2.0, 2.0
	for _, row := range tab.Rows {
		a, q := col(row, 1), col(row, 3)
		if a > prevAvail+1e-9 {
			t.Errorf("availability rose with fault rate: %.3f after %.3f (row %v)", a, prevAvail, row)
		}
		// QoS tracks the crash set too, but restart/dropout timing adds
		// small noise between adjacent rates.
		if q > prevQoS+0.02 {
			t.Errorf("QoS rose with fault rate: %.3f after %.3f (row %v)", q, prevQoS, row)
		}
		prevAvail, prevQoS = a, q
	}
	if col(last, 6) == 0 {
		t.Error("no server crashes at the top fault rate")
	}
	if col(last, 8) == 0 {
		t.Error("no supervised runtime restarts at the top fault rate")
	}
	if q := col(last, 3); q >= col(first, 3) {
		t.Errorf("QoS did not degrade end to end: %.3f healthy vs %.3f at top rate", col(first, 3), q)
	} else if q <= 0.3 {
		t.Errorf("mean QoS %.3f collapsed at the top fault rate", q)
	}
	if b := col(last, 2); b <= 0 {
		t.Error("batch throughput collapsed to zero despite survivors")
	}
	// The safety property at fleet scale: servers that absorbed faults but
	// stayed up keep protecting their webservice.
	if s := col(last, 4); s <= 0.3 {
		t.Errorf("survivor QoS %.3f collapsed at the top fault rate", s)
	}
}
