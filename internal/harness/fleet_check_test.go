package harness

import (
	"math"
	"testing"

	"repro/internal/datacenter"
)

// TestFleetMatchesProjection is the measured-vs-analytic cross-check
// behind Figure 17sim: for web-search × WL1 at bench scale, the
// extra-server count extrapolated from the simulated fleet must land
// within 15% of datacenter.Project's closed-form prediction. The two
// routes share the power model but measure utilization on entirely
// different machines (fleet servers vs harness pair runs, different
// seeds), so agreement here says the warehouse-scale claims don't hinge
// on the closed form.
func TestFleetMatchesProjection(t *testing.T) {
	wl1 := datacenter.TableIII()[0]
	if wl1.Name != "WL1" {
		t.Fatalf("TableIII()[0] = %q, want WL1", wl1.Name)
	}
	cmp, err := shared.FleetCompare("web-search", wl1)
	if err != nil {
		t.Fatalf("FleetCompare: %v", err)
	}
	if cmp.AnalyticExtra <= 0 {
		t.Fatalf("analytic projection predicts %d extra servers", cmp.AnalyticExtra)
	}
	rel := math.Abs(float64(cmp.MeasuredExtra-cmp.AnalyticExtra)) / float64(cmp.AnalyticExtra)
	if rel > 0.15 {
		t.Errorf("measured extra servers %d vs analytic %d: %.1f%% apart, want <= 15%%",
			cmp.MeasuredExtra, cmp.AnalyticExtra, rel*100)
	}
	// The energy ratios ride on the same utilizations; they should agree
	// at least loosely.
	if math.Abs(cmp.MeasuredEnergyRatio-cmp.AnalyticEnergyRatio) > 0.25 {
		t.Errorf("energy ratios diverge: fleet %.2f vs analytic %.2f",
			cmp.MeasuredEnergyRatio, cmp.AnalyticEnergyRatio)
	}
	// And the simulated fleet must actually be healthy: PC3D holding QoS
	// (0.82 matches the Figure 15 tolerance at bench's truncated search).
	if cmp.Metrics.QoS.Min < 0.82 {
		t.Errorf("fleet min QoS = %.3f at a 0.95 target", cmp.Metrics.QoS.Min)
	}
}
