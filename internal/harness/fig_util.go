package harness

import "fmt"

// Figure9to11 reproduces Figures 9, 10 and 11: the utilization PC3D
// recovers for each batch application co-located with one webservice, at
// QoS targets of 90/95/98%.
func (r *Runner) Figure9to11(webservice string) (*Table, error) {
	id := map[string]string{
		"web-search":      "Figure 9",
		"media-streaming": "Figure 10",
		"graph-analytics": "Figure 11",
	}[webservice]
	if id == "" {
		return nil, fmt.Errorf("harness: %q is not a Figure 9-11 webservice", webservice)
	}
	targets := r.sc.targets()
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Utilization of batch applications running with %s (PC3D)", webservice),
		Columns: append([]string{"App"}, targetCols(targets)...),
	}
	var sums = make([]float64, len(targets))
	hosts := r.sc.hosts()
	if err := r.prefetchPairs(pairGrid(hosts, []string{webservice}, []System{SystemPC3D}, targets)); err != nil {
		return nil, err
	}
	for _, host := range hosts {
		row := []any{host}
		for i, tgt := range targets {
			pr, err := r.RunPair(host, webservice, SystemPC3D, tgt)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(pr.Utilization))
			sums[i] += pr.Utilization
		}
		t.AddRow(row...)
	}
	mean := []any{"Mean"}
	for _, s := range sums {
		mean = append(mean, pct(s/float64(len(hosts))))
	}
	t.AddRow(mean...)
	t.Notes = append(t.Notes,
		"paper means vs web-search: 81/67/49% at 90/95/98% targets; media-streaming is most sensitive")
	return t, nil
}

// Figure12to14 reproduces Figures 12, 13 and 14: the QoS the webservice
// actually receives during the same runs.
func (r *Runner) Figure12to14(webservice string) (*Table, error) {
	id := map[string]string{
		"web-search":      "Figure 12",
		"media-streaming": "Figure 13",
		"graph-analytics": "Figure 14",
	}[webservice]
	if id == "" {
		return nil, fmt.Errorf("harness: %q is not a Figure 12-14 webservice", webservice)
	}
	targets := r.sc.targets()
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("QoS of %s running with batch applications (PC3D)", webservice),
		Columns: append([]string{"App"}, targetCols(targets)...),
	}
	if err := r.prefetchPairs(pairGrid(r.sc.hosts(), []string{webservice}, []System{SystemPC3D}, targets)); err != nil {
		return nil, err
	}
	for _, host := range r.sc.hosts() {
		row := []any{host}
		for _, tgt := range targets {
			pr, err := r.RunPair(host, webservice, SystemPC3D, tgt)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(pr.QoS))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: PC3D reliably meets its QoS targets")
	return t, nil
}

// Figure15 reproduces Figure 15: PC3D versus ReQoS, averaged over the
// spectrum of external co-runners — utilization improvement (a–c) and
// achieved co-runner QoS for both systems (d–f), per QoS target.
func (r *Runner) Figure15() ([]*Table, error) {
	targets := r.sc.targets()
	exts := r.sc.extSpectrum()
	hosts := r.sc.hosts()
	if err := r.prefetchPairs(pairGrid(hosts, exts, []System{SystemPC3D, SystemReQoS}, targets)); err != nil {
		return nil, err
	}

	var tables []*Table
	for _, tgt := range targets {
		util := &Table{
			ID:      fmt.Sprintf("Figure 15 (%d%% QoS tgt, utilization)", int(tgt*100+0.5)),
			Title:   "PC3D utilization improvement over ReQoS (mean across the co-runner spectrum)",
			Columns: []string{"App", "PC3D util", "ReQoS util", "PC3D/ReQoS"},
		}
		qost := &Table{
			ID:      fmt.Sprintf("Figure 15 (%d%% QoS tgt, QoS)", int(tgt*100+0.5)),
			Title:   "Average co-runner QoS under PC3D and ReQoS",
			Columns: []string{"App", "PC3D QoS", "ReQoS QoS", "Target"},
		}
		var ratioSum, cnt float64
		for _, host := range hosts {
			var uP, uR, qP, qR float64
			for _, ext := range exts {
				prP, err := r.RunPair(host, ext, SystemPC3D, tgt)
				if err != nil {
					return nil, err
				}
				prR, err := r.RunPair(host, ext, SystemReQoS, tgt)
				if err != nil {
					return nil, err
				}
				uP += prP.Utilization
				uR += prR.Utilization
				qP += prP.QoS
				qR += prR.QoS
			}
			n := float64(len(exts))
			uP, uR, qP, qR = uP/n, uR/n, qP/n, qR/n
			improvement := 0.0
			if uR > 0 {
				improvement = uP / uR
			}
			ratioSum += improvement
			cnt++
			util.AddRow(host, pct(uP), pct(uR), ratio(improvement))
			qost.AddRow(host, pct(qP), pct(qR), pct(tgt))
		}
		util.AddRow("Mean", "", "", ratio(ratioSum/cnt))
		util.Notes = append(util.Notes,
			"paper means: 1.25x / 1.45x / 1.52x at 90/95/98% targets; max 2.84x (sphinx3 at 98%)")
		tables = append(tables, util, qost)
	}
	return tables, nil
}

// pairGrid enumerates the full (host, ext, system, target) cross product
// in deterministic order for prefetching.
func pairGrid(hosts, exts []string, systems []System, targets []float64) []pairKey {
	keys := make([]pairKey, 0, len(hosts)*len(exts)*len(systems)*len(targets))
	for _, h := range hosts {
		for _, e := range exts {
			for _, s := range systems {
				for _, tgt := range targets {
					keys = append(keys, pairKey{host: h, ext: e, system: s, target: tgt})
				}
			}
		}
	}
	return keys
}

func targetCols(targets []float64) []string {
	out := make([]string, len(targets))
	for i, t := range targets {
		out[i] = fmt.Sprintf("%d%% QoS tgt", int(t*100+0.5))
	}
	return out
}
