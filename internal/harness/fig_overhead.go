package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/machine"
	"repro/internal/progbin"
)

// runAlone executes a binary alone for the stress duration and returns its
// branch count (the work-rate numerator shared by Figures 4–6). When
// stressInterval > 0 a protean runtime is attached (on runtimeCore, or the
// host's own core for core.SameCore) with a recompilation stress driver.
func (r *Runner) runAlone(bin *progbin.Binary, dbtCfg *machine.DBTConfig, stressInterval float64, runtimeCore int) (uint64, error) {
	m := machine.New(machine.Config{Cores: 4, Engine: r.sc.Engine})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true, DBT: dbtCfg})
	if err != nil {
		return 0, err
	}
	if stressInterval > 0 {
		rt, err := core.New(core.Config{Machine: m, Host: p, RuntimeCore: runtimeCore})
		if err != nil {
			return 0, err
		}
		m.AddAgent(rt)
		s := core.NewStressRecompiler(rt, m.Cycles(stressInterval), 1)
		m.AddAgent(s)
	}
	m.RunSeconds(0.3) // warm
	c0 := p.Counters()
	m.RunSeconds(r.sc.StressSeconds)
	return p.Counters().Sub(c0).Branches, nil
}

// Figure4 reproduces Figure 4: the overhead of virtualizing execution with
// protean code versus DynamoRIO, making no code modifications, per SPEC
// application. Values are slowdown versus native (1.0 = free).
func (r *Runner) Figure4() (*Table, error) {
	t := &Table{
		ID:      "Figure 4",
		Title:   "Dynamic compiler overhead when making no code modifications (slowdown vs native)",
		Columns: []string{"App", "protean code", "DynamoRIO"},
	}
	var sumP, sumD float64
	apps := r.sc.specApps()
	type overhead struct{ sp, sd float64 }
	rows := make([]overhead, len(apps))
	err := r.forEach(len(apps), func(i int) error {
		app := apps[i]
		plain, err := r.binary(app, false)
		if err != nil {
			return err
		}
		prot, err := r.binary(app, true)
		if err != nil {
			return err
		}
		native, err := r.runAlone(plain, nil, 0, 0)
		if err != nil {
			return err
		}
		protean, err := r.runAlone(prot, nil, 0, 0)
		if err != nil {
			return err
		}
		under, err := r.runAlone(plain, dbt.DynamoRIO(), 0, 0)
		if err != nil {
			return err
		}
		rows[i] = overhead{
			sp: float64(native) / float64(protean),
			sd: float64(native) / float64(under),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		sumP += rows[i].sp
		sumD += rows[i].sd
		t.AddRow(app, ratio(rows[i].sp), ratio(rows[i].sd))
	}
	n := float64(len(apps))
	t.AddRow("Mean", ratio(sumP/n), ratio(sumD/n))
	t.Notes = append(t.Notes, "paper: protean <1% mean overhead, DynamoRIO ~18% mean")
	return t, nil
}

// Figure5 reproduces Figure 5: dynamic-compilation stress tests with the
// runtime (and compiler) on a separate core, recompiling random functions
// at decreasing intervals. Values are slowdown versus native.
func (r *Runner) Figure5() (*Table, error) {
	intervals := []float64{5.0, 0.5, 0.05, 0.005} // 5000/500/50/5 ms
	t := &Table{
		ID:      "Figure 5",
		Title:   "Dynamic compilation stress tests; compilation on a separate core (slowdown vs native)",
		Columns: []string{"App", "Edge virt.", "5000ms", "500ms", "50ms", "5ms"},
	}
	apps := r.sc.specApps()
	rows := make([][]float64, len(apps))
	err := r.forEach(len(apps), func(i int) error {
		app := apps[i]
		plain, err := r.binary(app, false)
		if err != nil {
			return err
		}
		prot, err := r.binary(app, true)
		if err != nil {
			return err
		}
		native, err := r.runAlone(plain, nil, 0, 0)
		if err != nil {
			return err
		}
		protean, err := r.runAlone(prot, nil, 0, 0)
		if err != nil {
			return err
		}
		vals := []float64{float64(native) / float64(protean)}
		for _, iv := range intervals {
			stressed, err := r.runAlone(prot, nil, iv, 2)
			if err != nil {
				return err
			}
			vals = append(vals, float64(native)/float64(stressed))
		}
		rows[i] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		row := []any{app}
		for _, v := range rows[i] {
			row = append(row, ratio(v))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: negligible overhead at every interval when compiling on a separate core")
	return t, nil
}

// Figure6 reproduces Figure 6: the same stress tests comparing running the
// runtime compiler on the host's own core versus a separate core, averaged
// across the SPEC roster.
func (r *Runner) Figure6() (*Table, error) {
	intervals := []float64{0.005, 0.01, 0.05, 0.2, 1.0, 5.0}
	t := &Table{
		ID:      "Figure 6",
		Title:   "Dynamic compilation stress on same vs separate core (mean slowdown vs native)",
		Columns: []string{"Interval", "Same Core", "Separate Core"},
	}
	apps := r.sc.specApps()
	type cellRes struct{ same, sep float64 }
	cells := make([]cellRes, len(intervals)*len(apps))
	err := r.forEach(len(cells), func(i int) error {
		iv := intervals[i/len(apps)]
		app := apps[i%len(apps)]
		plain, err := r.binary(app, false)
		if err != nil {
			return err
		}
		prot, err := r.binary(app, true)
		if err != nil {
			return err
		}
		native, err := r.runAlone(plain, nil, 0, 0)
		if err != nil {
			return err
		}
		same, err := r.runAlone(prot, nil, iv, core.SameCore)
		if err != nil {
			return err
		}
		sep, err := r.runAlone(prot, nil, iv, 2)
		if err != nil {
			return err
		}
		cells[i] = cellRes{
			same: float64(native) / float64(same),
			sep:  float64(native) / float64(sep),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for j, iv := range intervals {
		var sumSame, sumSep float64
		for k := range apps {
			sumSame += cells[j*len(apps)+k].same
			sumSep += cells[j*len(apps)+k].sep
		}
		n := float64(len(apps))
		t.AddRow(fmt.Sprintf("%.0fms", iv*1000), ratio(sumSame/n), ratio(sumSep/n))
	}
	t.Notes = append(t.Notes,
		"paper: same-core overhead significant at 5ms, negligible by 800ms; separate core always negligible")
	return t, nil
}

// Figure7 reproduces Figure 7: the fraction of server cycles the PC3D
// runtime consumes while managing each batch application (co-located with
// web-search at a 95% QoS target; shares runs with Figure 9).
func (r *Runner) Figure7() (*Table, error) {
	t := &Table{
		ID:      "Figure 7",
		Title:   "Average fraction of server cycles consumed by the PC3D runtime",
		Columns: []string{"App", "% of Server Cycles"},
	}
	hosts := r.sc.hosts()
	if err := r.prefetchPairs(pairGrid(hosts, []string{"web-search"}, []System{SystemPC3D}, []float64{0.95})); err != nil {
		return nil, err
	}
	for _, host := range hosts {
		pr, err := r.RunPair(host, "web-search", SystemPC3D, 0.95)
		if err != nil {
			return nil, err
		}
		t.AddRow(host, pct(pr.RuntimeFrac))
	}
	t.Notes = append(t.Notes, "paper: below 1% in all cases (includes the initial variant-search burst)")
	return t, nil
}
