package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/pc3d"
	"repro/internal/phase"
	"repro/internal/qos"
	"repro/internal/reqos"
	"repro/internal/sampling"
	"repro/internal/telemetry"
)

// traceSample is one point of the Figure 16 time series.
type traceSample struct {
	t           float64
	load        float64
	hostUtil    float64
	wsQoS       float64
	runtimeFrac float64
	nap         float64
}

// runTrace executes the Figure 16 experiment for one system: libquantum
// (host) co-located with web-search under the fluctuating load trace,
// sampled at regular intervals. The returned registry holds the run's
// counters and event trace (figtimeline renders the latter).
func (r *Runner) runTrace(system System, samples int) ([]traceSample, *telemetry.Registry, error) {
	const hostName, wsName = "libquantum", "web-search"
	hostSolo, err := r.Solo(hostName)
	if err != nil {
		return nil, nil, err
	}

	// Measure the webservice's solo peak capacity (requests/second).
	wsBin, err := r.binary(wsName, false)
	if err != nil {
		return nil, nil, err
	}
	cm := machine.New(machine.Config{Cores: 4, Engine: r.sc.Engine})
	cp, err := cm.Attach(0, wsBin, machine.ProcessConfig{Gated: true})
	if err != nil {
		return nil, nil, err
	}
	capacity := loadgen.MeasureCapacity(cm, cp, int(2*cm.Config().FreqHz/float64(cm.Config().QuantumCycles)))

	// The measured experiment. The registry supplies the runtime-cycle
	// series (and, for figtimeline, the event trace) without hand-carried
	// accumulators.
	reg := telemetry.New(telemetry.Config{})
	m := machine.New(machine.Config{Cores: 4, Engine: r.sc.Engine, Telemetry: reg})
	wsBin2, err := r.binary(wsName, false)
	if err != nil {
		return nil, nil, err
	}
	ws, err := m.Attach(0, wsBin2, machine.ProcessConfig{Gated: true})
	if err != nil {
		return nil, nil, err
	}
	hb, err := r.binary(hostName, system == SystemPC3D)
	if err != nil {
		return nil, nil, err
	}
	host, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		return nil, nil, err
	}

	gen := loadgen.NewGenerator(ws, loadgen.Figure16(r.sc.TraceSeconds), capacity)
	m.AddAgent(gen)
	tq := qos.NewThroughputQoS(m, ws, gen, 0)
	m.AddAgent(tq)

	var rt *core.Runtime
	switch system {
	case SystemPC3D:
		rt, err = core.New(core.Config{Machine: m, Host: host, RuntimeCore: 2, Telemetry: reg})
		if err != nil {
			return nil, nil, err
		}
		m.AddAgent(rt)
		extSig := func(mm *machine.Machine) phase.Signature {
			return phase.Signature{Rate: gen.CurrentLoad(mm)}
		}
		ctrl := pc3d.New(pc3d.Config{
			Runtime: rt, Steady: tq, Window: &qos.ThroughputWindow{Proc: ws, Gen: gen}, ExtSig: extSig,
			Target: 0.95, MaxSites: r.sc.MaxSites, Telemetry: reg,
		})
		defer ctrl.Close()
		m.AddAgent(ctrl)
	case SystemReQoS:
		m.AddAgent(reqos.New(host, tq, reqos.Options{Target: 0.95}))
	default:
		return nil, nil, fmt.Errorf("harness: trace experiment supports PC3D and ReQoS, not %v", system)
	}

	// rtCycles reads the runtime's cumulative cycle spend from the
	// telemetry registry; the per-sample delta replaces the old
	// hand-carried rt.CyclesUsed() accumulator.
	rtCycles := func() float64 {
		return float64(reg.CounterValue("core", "compile_cycles_total") +
			reg.CounterValue("core", "monitor_cycles_total"))
	}
	hostMeter := sampling.NewMeter(host)
	hostMeter.Read(m)
	var series []traceSample
	interval := r.sc.TraceSeconds / float64(samples)
	lastUsed := rtCycles()
	for i := 0; i < samples; i++ {
		m.RunSeconds(interval)
		hr := hostMeter.Read(m)
		q, _ := tq.QoS()
		s := traceSample{
			t:        m.NowSeconds(),
			load:     gen.CurrentLoad(m),
			hostUtil: hr.BPS / hostSolo.BPS,
			wsQoS:    q,
			nap:      host.NapIntensity(),
		}
		if rt != nil {
			used := rtCycles()
			dt := interval * m.Config().FreqHz * float64(m.Config().Cores)
			s.runtimeFrac = (used - lastUsed) / dt
			lastUsed = used
		}
		series = append(series, s)
	}
	return series, reg, nil
}

// Figure16 reproduces Figure 16: the dynamic behaviour of libquantum
// running with web-search under fluctuating load, for PC3D and ReQoS. The
// load pattern is high for the first third of the run, low for the middle
// third, and high again (the paper's 900 s compressed to the scale's
// TraceSeconds).
func (r *Runner) Figure16() (*Table, error) {
	const samples = 30
	pcSeries, _, err := r.runTrace(SystemPC3D, samples)
	if err != nil {
		return nil, err
	}
	rqSeries, _, err := r.runTrace(SystemReQoS, samples)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure 16",
		Title: "Dynamic behaviour of libquantum running with web-search (fluctuating load)",
		Columns: []string{
			"t(s)", "load", "PC3D host util", "ReQoS host util",
			"PC3D ws QoS", "ReQoS ws QoS", "PC3D runtime %", "PC3D nap",
		},
	}
	for i := range pcSeries {
		p, q := pcSeries[i], rqSeries[i]
		t.AddRow(
			fmt.Sprintf("%.1f", p.t), fmt.Sprintf("%.2f", p.load),
			pct(p.hostUtil), pct(q.hostUtil),
			pct(p.wsQoS), pct(q.wsQoS),
			pct(p.runtimeFrac), fmt.Sprintf("%.2f", p.nap),
		)
	}
	t.Notes = append(t.Notes,
		"paper: PC3D reverts libquantum to the original full-speed variant during the low-load middle third",
		"runtime-cycle spikes appear at the start of each high-load search (Figure 16f)")
	return t, nil
}

// TraceSummary condenses the Figure 16 series into phase means, used by
// tests and benches to assert the shape without eyeballing the series.
type TraceSummary struct {
	HighLoadUtil float64 // mean host util during high-load thirds
	LowLoadUtil  float64 // mean host util during the low-load third
	// HighLoadQoS is the webservice's mean QoS during the settled part of
	// the high-load thirds (the paper plots second-averaged QoS; single
	// evaluation-probe windows are not representative).
	HighLoadQoS float64
}

// SummarizeTrace computes phase means for one system's trace run.
func (r *Runner) SummarizeTrace(system System) (TraceSummary, error) {
	const samples = 30
	series, _, err := r.runTrace(system, samples)
	if err != nil {
		return TraceSummary{}, err
	}
	var s TraceSummary
	var hiSum, hiN, loSum, loN, qSum, qN float64
	third := r.sc.TraceSeconds / 3
	for _, p := range series {
		// Skip transition samples near the load steps (searches run there).
		slack := r.sc.TraceSeconds / 10
		inLow := p.t > third+slack && p.t < 2*third
		inHigh := (p.t > slack && p.t < third) || (p.t > 2*third+slack)
		if inLow {
			loSum += p.hostUtil
			loN++
		}
		if inHigh {
			hiSum += p.hostUtil
			hiN++
			qSum += p.wsQoS
			qN++
		}
	}
	if hiN > 0 {
		s.HighLoadUtil = hiSum / hiN
	}
	if loN > 0 {
		s.LowLoadUtil = loSum / loN
	}
	if qN > 0 {
		s.HighLoadQoS = qSum / qN
	}
	return s, nil
}
