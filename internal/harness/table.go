package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series of one paper
// table or figure.
type Table struct {
	// ID names the paper artifact ("Figure 4", "Table I", ...).
	ID string
	// Title is the artifact's caption.
	Title string
	// Columns are header labels.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes are printed under the table (methodology, paper reference
	// values).
	Notes []string
}

// AddRow appends a row of cells, formatting non-strings with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned ASCII table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func ratio(x float64) string { return fmt.Sprintf("%.2fx", x) }
