package harness

import (
	"fmt"

	"repro/internal/contend"
	"repro/internal/faults"
	"repro/internal/fleet"
)

// chaosMigrateFleetConfig is the figmigrate fleet soaked in migration-domain
// chaos: the same 12-server diurnal cluster, but servers crash mid-run,
// planned moves abort before detach or are refused at landing, blackouts
// stretch by jitter, and the detector's counter samples arrive corrupted or
// stale. The fault schedule is a pure function of the fleet seed, so the off
// and on runs see the *same* crashes and the same sensor garbage — every
// delta between them is the transactional move path (retry, rollback,
// circuit breaker) earning or losing its keep under fire.
//
// The landing-failure rate is deliberately brutal (most attempts refused)
// and the retry budget short, so the soak provably exercises the rollback
// path and trips the breaker at least once — the two behaviors the
// conservation auditor then has to certify as loss-free.
func (r *Runner) chaosMigrateFleetConfig(migrate bool) fleet.Config {
	cfg := r.migrateFleetConfig(migrate)
	cfg.Chaos = &faults.Chaos{
		ServerCrashProb:     0.15,
		RestartDelaySeconds: 0.25,
		MoveDetachFailProb:  0.10,
		MoveLandFailProb:    0.70,
		MoveStallMaxSeconds: 0.05,
		SampleCorruptProb:   0.02,
		SampleStaleProb:     0.05,
	}
	if migrate {
		cfg.Migration.MaxLandAttempts = 2
		cfg.Migration.Breaker = contend.BreakerConfig{
			FailureThreshold: 2,
			CooldownEpochs:   3,
		}
	}
	return cfg
}

// ChaosMigrateComparison is the measured off/on pair behind figchaosmigrate,
// plus the on-run's conservation-audit report.
type ChaosMigrateComparison struct {
	Off, On fleet.Metrics
	// Audit is the on-run's conservation report (nil only if the run never
	// reached a decision epoch).
	Audit *fleet.AuditReport
}

// RunChaosMigrateComparison executes the chaos-soaked diurnal fleet twice —
// identical seed, placement, trace and fault schedule; migration off then on.
func (r *Runner) RunChaosMigrateComparison() (ChaosMigrateComparison, error) {
	var cmp ChaosMigrateComparison
	for _, on := range []bool{false, true} {
		f, err := fleet.New(r.chaosMigrateFleetConfig(on))
		if err != nil {
			return cmp, err
		}
		m, err := f.Run()
		if err != nil {
			return cmp, err
		}
		if on {
			cmp.On = m
			cmp.Audit = f.AuditReport()
		} else {
			cmp.Off = m
		}
	}
	return cmp, nil
}

// FigureChaosMigrate is the robustness artifact: the migration control loop
// run through a fault soak that attacks the migration machinery itself.
// Besides the QoS tail the table reports the transactional move ledger —
// landed vs failed moves, rollbacks, retries, breaker trips, injected sensor
// faults — and the conservation auditor's verdict. The audit column is the
// headline: zero violations means every epoch's instance census balanced,
// i.e. no instance was lost or duplicated no matter how many moves aborted
// mid-flight.
func (r *Runner) FigureChaosMigrate() (*Table, error) {
	cmp, err := r.RunChaosMigrateComparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure CM (chaos migration)",
		Title: "Fault-tolerant migration under migration-domain chaos: transactional moves, breaker, conservation audit",
		Columns: []string{"Migration", "QoS p50", "QoS p95 tail", "Crashes", "Moves", "Failed",
			"Rollbacks", "Retries", "Trips", "Corrupt", "Stale", "Audit Viol"},
	}
	for _, row := range []struct {
		name string
		m    fleet.Metrics
	}{{"off", cmp.Off}, {"on", cmp.On}} {
		m := row.m
		t.AddRow(row.name,
			fmt.Sprintf("%.3f", m.QoS.P50),
			fmt.Sprintf("%.3f", m.QoS.P05),
			m.Crashes,
			m.Migrations,
			m.MovesFailed,
			m.MoveRollbacks,
			m.MoveRetries,
			m.BreakerTrips,
			m.CorruptSamples,
			m.StaleSamples,
			m.AuditViolations)
	}
	verdict := fmt.Sprintf("measured: %d moves landed, %d failed (%d rolled back, %d retries), breaker tripped %d time(s), audit violations: %d",
		cmp.On.Migrations, cmp.On.MovesFailed, cmp.On.MoveRollbacks,
		cmp.On.MoveRetries, cmp.On.BreakerTrips, cmp.On.AuditViolations)
	epochs := 0
	if cmp.Audit != nil {
		epochs = len(cmp.Audit.Epochs)
	}
	t.Notes = append(t.Notes,
		verdict,
		fmt.Sprintf("conservation auditor checked %d epoch barriers: hosted + in-flight + stranded instances must equal the placed count at every one", epochs),
		"off and on runs share the seeded fault schedule (crashes, detach/land refusals, blackout stalls, corrupted/stale detector samples); only the on run reacts to contention",
		"a failed landing retries against the next eligible destination under capped backoff, then rolls back to the source with a penalty — the instance never vanishes and never runs twice",
		"K consecutive move failures (or a corrupted-sample epoch) open the circuit breaker: migration halts for the cooldown, then a single half-open probe decides whether to resume")
	return t, nil
}
