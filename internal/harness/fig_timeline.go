package harness

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// FigureTimeline renders a Figure-5-style activity timeline for the PC3D
// trace experiment directly from the telemetry event trace: per time
// slice, how many compiles started/finished/failed, how many EVT
// dispatches and reverts landed, how many QoS violations the policy saw,
// and the host's nap level at the end of the slice. It is the
// event-plane companion to Figure 16's sampled series.
func (r *Runner) FigureTimeline() (*Table, error) {
	const samples = 30
	_, reg, err := r.runTrace(SystemPC3D, samples)
	if err != nil {
		return nil, err
	}

	// runTrace builds its machine with default machine.Config, so event
	// cycle stamps convert to seconds at the default clock.
	freq := machine.New(machine.Config{}).Config().FreqHz
	interval := r.sc.TraceSeconds / float64(samples)
	type slot struct {
		started, finished, failed int
		dispatches, reverts       int
		violations                int
		nap                       float64
		napSet                    bool
	}
	slots := make([]slot, samples)
	for _, ev := range reg.Events() {
		i := int(float64(ev.At) / freq / interval)
		if i < 0 {
			i = 0
		}
		if i >= samples {
			i = samples - 1
		}
		s := &slots[i]
		switch ev.Kind {
		case telemetry.EvCompileStart:
			s.started++
		case telemetry.EvCompileFinish:
			s.finished++
		case telemetry.EvCompileFail:
			s.failed++
		case telemetry.EvDispatch:
			s.dispatches++
		case telemetry.EvRevert:
			s.reverts++
		case telemetry.EvQoSViolation:
			s.violations++
		case telemetry.EvNap:
			s.nap = ev.Value
			s.napSet = true
		}
	}
	// Nap is a level, not a rate: carry the last setting across slices
	// with no transition.
	nap := 0.0
	for i := range slots {
		if !slots[i].napSet {
			slots[i].nap = nap
		}
		nap = slots[i].nap
	}

	t := &Table{
		ID:    "Figure T (timeline)",
		Title: "PC3D activity timeline from the event trace (libquantum with web-search, fluctuating load)",
		Columns: []string{
			"t(s)", "Compiles", "Done", "Failed", "Dispatches", "Reverts", "QoS Viol", "Nap",
		},
	}
	for i, s := range slots {
		t.AddRow(
			fmt.Sprintf("%.1f", float64(i+1)*interval),
			s.started, s.finished, s.failed,
			s.dispatches, s.reverts, s.violations,
			fmt.Sprintf("%.2f", s.nap),
		)
	}
	t.Notes = append(t.Notes,
		"compile/dispatch bursts cluster at the load steps where PC3D re-searches; the quiet middle third reverts to static code",
		"nap is the host's duty-cycle restriction at the end of each slice (0 = unrestricted)")
	if d := reg.DroppedEvents(); d > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("trace ring overflowed: %d oldest events dropped before bucketing", d))
	}
	return t, nil
}
