package harness

import (
	"testing"

	"repro/internal/machine"
)

// TestFigTimelineIdenticalAcrossEngines renders the telemetry-plane
// timeline artifact under the interp oracle and the superblock engine and
// requires byte-identical output: the full PC3D trace episode — flux
// probing, napping, runtime compiles, EVT dispatches and reverts — must
// land on the same cycles under either engine.
func TestFigTimelineIdenticalAcrossEngines(t *testing.T) {
	render := func(engine string) string {
		sc := BenchScale()
		sc.TraceSeconds = 10
		sc.Engine = engine
		tbl, err := NewRunner(sc).FigureTimeline()
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	interp := render(machine.EngineInterp)
	superblock := render(machine.EngineSuperblock)
	if interp != superblock {
		t.Fatalf("figtimeline diverges across engines:\n--- interp ---\n%s\n--- superblock ---\n%s", interp, superblock)
	}
}
