package harness

import (
	"fmt"

	"repro/internal/contend"
	"repro/internal/datacenter"
	"repro/internal/fleet"
	"repro/internal/loadgen"
)

// migrateMix is the figmigrate workload: half the batch instances are
// er-naive — the roster's heaviest LLC aggressor, inflating a co-located
// webservice's CPI by ~65% — and half are milc, whose footprint barely
// registers (~1%). The split gives the detector something to select: only
// er-naive hosts cross the quantile threshold, so every migration the
// planner executes should carry an er-naive instance.
func migrateMix() datacenter.Mix {
	return datacenter.Mix{Name: "contended", Apps: []string{"er-naive", "milc"}}
}

// migrateFleetConfig is the shared off/on configuration: a 12-server
// diurnal fleet, 4 batch instances, no per-server mitigation (SystemNone),
// with the load trace phase-spread across a full period so the cluster is
// a standing snapshot of the day — each server parked at its own point of
// the diurnal cycle. The period (60 s) dwarfs the run, so a server's load
// barely moves while the experiment measures: "least loaded now" is the
// genuine trough, not a moving target. The base offset (24 s) rotates the
// cycle so round-robin placement drops the er-naive aggressors on servers
// riding the crest. Migration, when enabled, is the only mechanism acting
// on contention.
func (r *Runner) migrateFleetConfig(migrate bool) fleet.Config {
	cfg := fleet.Config{
		Servers:        12,
		Instances:      4,
		Webservice:     "web-search",
		Mix:            migrateMix(),
		System:         fleet.SystemNone,
		Policy:         fleet.RoundRobin{},
		Seed:           7,
		Workers:        r.sc.Workers,
		Engine:         r.sc.Engine,
		SoloSeconds:    r.sc.SoloSeconds,
		SettleSeconds:  r.sc.SettleSeconds,
		MeasureSeconds: r.sc.MeasureSeconds,
		Trace: loadgen.Offset{
			Trace: loadgen.Diurnal{Period: 60, Low: 0.25, High: 0.95},
			By:    24,
		},
		PhaseSpreadSeconds: 60,
	}
	if migrate {
		cfg.Migration = &fleet.MigrationConfig{
			WindowSeconds:   0.5,
			BlackoutSeconds: 0.25,
			BudgetPerEpoch:  2,
			Detector: contend.Config{
				Window: 3, MinSamples: 2, Cooldown: 2,
				Quantile: 0.75, Enter: 1.25, Exit: 1.05,
			},
		}
	}
	return cfg
}

// MigrateComparison is the measured off/on pair behind figmigrate.
type MigrateComparison struct {
	Off, On fleet.Metrics
}

// RunMigrateComparison executes the diurnal fleet twice — identical
// placement, seed and trace; migration off then on — so every delta in the
// metrics is attributable to the contention-detection → live-migration
// control loop.
func (r *Runner) RunMigrateComparison() (MigrateComparison, error) {
	var cmp MigrateComparison
	for _, on := range []bool{false, true} {
		f, err := fleet.New(r.migrateFleetConfig(on))
		if err != nil {
			return cmp, err
		}
		m, err := f.Run()
		if err != nil {
			return cmp, err
		}
		if on {
			cmp.On = m
		} else {
			cmp.Off = m
		}
	}
	return cmp, nil
}

// FigureMigrate is the migration control loop's headline artifact: the
// diurnal-trace fleet run with live migration off and on. The off run
// leaves er-naive aggressors pinned where placement put them, so the
// servers they ride carry the QoS tail; the on run lets the detector flag
// those servers and the planner walk their instances toward the fleet's
// diurnal trough, paying a blackout per move. The QoS tail columns are the
// low-end order statistics: "p95 tail" is the QoS level 95% of servers
// meet or exceed (the 5th percentile), "p99 tail" the level 99% meet (the
// 1st percentile) — the warehouse operator's service-level view.
func (r *Runner) FigureMigrate() (*Table, error) {
	cmp, err := r.RunMigrateComparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure M (migration)",
		Title: "Contention-driven live migration on the diurnal fleet: QoS tail vs migration cost",
		Columns: []string{"Migration", "QoS p50", "QoS p95 tail", "QoS p99 tail", "QoS min",
			"Viol", "Util mean", "Batch Units", "Moves", "Quanta Lost"},
	}
	for _, row := range []struct {
		name string
		m    fleet.Metrics
	}{{"off", cmp.Off}, {"on", cmp.On}} {
		m := row.m
		t.AddRow(row.name,
			fmt.Sprintf("%.3f", m.QoS.P50),
			fmt.Sprintf("%.3f", m.QoS.P05),
			fmt.Sprintf("%.3f", m.QoS.P01),
			fmt.Sprintf("%.3f", m.QoS.Min),
			fmt.Sprintf("%d/%d", m.QoSViolations, m.Servers),
			fmt.Sprintf("%.3f", m.Utilization.Mean),
			fmt.Sprintf("%.2f", m.BatchUnits),
			m.Migrations,
			m.MigrationQuantaLost)
	}
	d95 := cmp.On.QoS.P05 - cmp.Off.QoS.P05
	d99 := cmp.On.QoS.P01 - cmp.Off.QoS.P01
	verdict := fmt.Sprintf("measured: migration improves the p95 tail by %+.3f and the p99 tail by %+.3f", d95, d99)
	if d95 < 0 && d99 < 0 {
		verdict = fmt.Sprintf("measured: no tail improvement at this scale (p95 %+.3f, p99 %+.3f) — "+
			"the blackout cost and post-landing interference offset the eviction benefit here", d95, d99)
	}
	t.Notes = append(t.Notes,
		verdict,
		"mix is half er-naive (heavy LLC aggressor, ~65% webservice CPI inflation) and half milc (~1%): only er-naive hosts cross the detector's quantile threshold",
		"each move costs one blackout (0.25s of lost batch quanta) and lands on the least-loaded non-contended server — the fleet's diurnal trough",
		"off and on runs share seed, placement and trace; every delta is the control loop's doing")
	return t, nil
}
