package harness

import (
	"strconv"
	"strings"
	"testing"
)

// bench returns a runner at the smallest scale; most tests share it via
// TestMain-like memoization (package-level runner) to reuse solo and pair
// caches across tests.
var shared = NewRunner(BenchScale())

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v / 100
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestSoloMemoized(t *testing.T) {
	a, err := shared.Solo("libquantum")
	if err != nil {
		t.Fatalf("Solo: %v", err)
	}
	b, err := shared.Solo("libquantum")
	if err != nil {
		t.Fatalf("Solo: %v", err)
	}
	if a != b {
		t.Error("solo measurement not memoized")
	}
	if a.IPS <= 0 || a.BPS <= 0 || a.IPS <= a.BPS {
		t.Errorf("implausible solo rates: %+v", a)
	}
}

func TestTableRendering(t *testing.T) {
	tab := shared.Table1()
	out := tab.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Extrospective") {
		t.Errorf("render missing content:\n%s", out)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("Table I rows = %d, want 5", len(tab.Rows))
	}
	t2 := shared.Table2()
	if len(t2.Rows) != 26 {
		t.Errorf("Table II rows = %d, want 26 catalog entries", len(t2.Rows))
	}
	t3 := shared.Table3()
	if len(t3.Rows) != 4 {
		t.Errorf("Table III rows = %d, want 4 (LS + 3 mixes)", len(t3.Rows))
	}
}

func TestFigure2VariantShapes(t *testing.T) {
	tab, err := shared.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 variants", len(tab.Rows))
	}
	counts := map[string]int{"<1,1>": 2, "<1,0>": 1, "<0,1>": 1, "<0,0>": 0}
	for _, row := range tab.Rows {
		want := counts[row[0]]
		got := strings.Count(row[1], "prefetch")
		if got != want {
			t.Errorf("%s: %d prefetches, want %d: %s", row[0], got, want, row[1])
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	tab, err := shared.Figure8()
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 hosts", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		full, _ := strconv.Atoi(row[1])
		active, _ := strconv.Atoi(row[2])
		maxd, _ := strconv.Atoi(row[3])
		if !(full >= active && active >= maxd && maxd > 0) {
			t.Errorf("%s: heuristic stages not monotone: %v", row[0], row)
		}
	}
	// soplex must show the paper's dramatic reduction (15666 → ~57).
	for _, row := range tab.Rows {
		if row[0] != "soplex" {
			continue
		}
		full, _ := strconv.Atoi(row[1])
		maxd, _ := strconv.Atoi(row[3])
		if full != 15666 {
			t.Errorf("soplex full = %d, want 15666", full)
		}
		if maxd > 80 {
			t.Errorf("soplex max-depth = %d, want ~57", maxd)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	tab, err := shared.Figure4()
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	if mean[0] != "Mean" {
		t.Fatalf("last row is %q, want Mean", mean[0])
	}
	protean := parseRatio(t, mean[1])
	dr := parseRatio(t, mean[2])
	if protean > 1.02 {
		t.Errorf("protean mean overhead %.3fx, want < 1.02x (paper <1%%)", protean)
	}
	if protean < 0.97 {
		t.Errorf("protean mean %.3fx below native: measurement broken", protean)
	}
	if dr < 1.05 {
		t.Errorf("DynamoRIO mean %.3fx, want noticeable overhead (paper ~1.18x)", dr)
	}
	if dr < protean {
		t.Error("DynamoRIO should cost more than protean code")
	}
}

func TestFigure5And6Shape(t *testing.T) {
	tab5, err := shared.Figure5()
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	for _, row := range tab5.Rows {
		for i := 1; i < len(row); i++ {
			s := parseRatio(t, row[i])
			if s > 1.06 {
				t.Errorf("%s separate-core stress col %d: %.3fx, want ~1.0", row[0], i, s)
			}
		}
	}
	tab6, err := shared.Figure6()
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	// Same-core at the fastest interval must hurt; at the slowest it must
	// not; separate core never hurts.
	first, last := tab6.Rows[0], tab6.Rows[len(tab6.Rows)-1]
	if s := parseRatio(t, first[1]); s < 1.15 {
		t.Errorf("same-core at 5ms: %.3fx, want clear slowdown", s)
	}
	if s := parseRatio(t, last[1]); s > 1.05 {
		t.Errorf("same-core at 5000ms: %.3fx, want negligible", s)
	}
	for _, row := range tab6.Rows {
		if s := parseRatio(t, row[2]); s > 1.06 {
			t.Errorf("separate core at %s: %.3fx, want negligible", row[0], s)
		}
	}
}

func TestRunPairPC3DAndFigure7(t *testing.T) {
	pr, err := shared.RunPair("libquantum", "web-search", SystemPC3D, 0.95)
	if err != nil {
		t.Fatalf("RunPair: %v", err)
	}
	if pr.QoS < 0.85 {
		t.Errorf("QoS = %.3f at 0.95 target", pr.QoS)
	}
	if pr.Utilization <= 0.2 || pr.Utilization > 1.2 {
		t.Errorf("utilization = %.3f out of plausible range", pr.Utilization)
	}
	if pr.RuntimeFrac <= 0 || pr.RuntimeFrac > 0.05 {
		t.Errorf("runtime fraction = %.4f", pr.RuntimeFrac)
	}
	// Memoized.
	pr2, err := shared.RunPair("libquantum", "web-search", SystemPC3D, 0.95)
	if err != nil || pr2 != pr {
		t.Error("pair result not memoized")
	}

	tab, err := shared.Figure7()
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	for _, row := range tab.Rows {
		frac := parsePct(t, row[1])
		if frac <= 0 || frac > 0.05 {
			t.Errorf("%s: runtime fraction %s", row[0], row[1])
		}
	}
}

func TestFigure9MeetsTargets(t *testing.T) {
	tab, err := shared.Figure9to11("web-search")
	if err != nil {
		t.Fatalf("Figure9to11: %v", err)
	}
	qtab, err := shared.Figure12to14("web-search")
	if err != nil {
		t.Fatalf("Figure12to14: %v", err)
	}
	targets := shared.Scale().targets()
	for _, row := range qtab.Rows {
		for i, tgt := range targets {
			q := parsePct(t, row[i+1])
			if q < tgt-0.08 {
				t.Errorf("%s at %.0f%% target: QoS %.3f", row[0], tgt*100, q)
			}
		}
	}
	// Utilization rows exist for every host plus a mean.
	if len(tab.Rows) != len(shared.Scale().hosts())+1 {
		t.Errorf("utilization rows = %d", len(tab.Rows))
	}
}

func TestFigure15PC3DWins(t *testing.T) {
	tables, err := shared.Figure15()
	if err != nil {
		t.Fatalf("Figure15: %v", err)
	}
	if len(tables) != 2*len(shared.Scale().targets()) {
		t.Fatalf("tables = %d", len(tables))
	}
	util := tables[0]
	mean := util.Rows[len(util.Rows)-1]
	if mean[0] != "Mean" {
		t.Fatalf("last row %q", mean[0])
	}
	if v := parseRatio(t, mean[3]); v < 1.0 {
		t.Errorf("PC3D/ReQoS mean = %.3fx, want >= 1.0x", v)
	}
	// QoS table: both systems near target.
	qtab := tables[1]
	for _, row := range qtab.Rows {
		if q := parsePct(t, row[1]); q < 0.82 {
			t.Errorf("%s PC3D QoS %.3f", row[0], q)
		}
		if q := parsePct(t, row[2]); q < 0.82 {
			t.Errorf("%s ReQoS QoS %.3f", row[0], q)
		}
	}
}

func TestFigure16Dynamics(t *testing.T) {
	s, err := shared.SummarizeTrace(SystemPC3D)
	if err != nil {
		t.Fatalf("SummarizeTrace: %v", err)
	}
	// During the low-load third, PC3D reverts to the original variant at
	// full speed.
	if s.LowLoadUtil < 0.85 {
		t.Errorf("low-load host util = %.3f, want ~1 (original variant, no nap)", s.LowLoadUtil)
	}
	if s.HighLoadUtil >= s.LowLoadUtil {
		t.Errorf("high-load util %.3f should be below low-load util %.3f", s.HighLoadUtil, s.LowLoadUtil)
	}
	if s.HighLoadQoS < 0.90 {
		t.Errorf("webservice mean high-load QoS = %.3f", s.HighLoadQoS)
	}
	// And PC3D must keep the host faster than ReQoS during high load.
	rq, err := shared.SummarizeTrace(SystemReQoS)
	if err != nil {
		t.Fatalf("SummarizeTrace(reqos): %v", err)
	}
	if s.HighLoadUtil <= rq.HighLoadUtil {
		t.Errorf("PC3D high-load util %.3f <= ReQoS %.3f", s.HighLoadUtil, rq.HighLoadUtil)
	}
}

func TestFigureTimeline(t *testing.T) {
	tab, err := shared.FigureTimeline()
	if err != nil {
		t.Fatalf("FigureTimeline: %v", err)
	}
	if len(tab.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(tab.Rows))
	}
	sumCol := func(col int) int {
		var n int
		for _, row := range tab.Rows {
			v, err := strconv.Atoi(row[col])
			if err != nil {
				t.Fatalf("parse %q: %v", row[col], err)
			}
			n += v
		}
		return n
	}
	// The PC3D trace run searches at every load step, so the event trace
	// must show compile and dispatch activity, and every compile that
	// started also finished or failed.
	started, finished, failed := sumCol(1), sumCol(2), sumCol(3)
	if started == 0 || sumCol(4) == 0 {
		t.Errorf("timeline shows no activity: %d compiles, %d dispatches", started, sumCol(4))
	}
	if finished+failed > started {
		t.Errorf("compiles finished+failed = %d+%d, exceeds started = %d", finished, failed, started)
	}
	for _, row := range tab.Rows {
		if _, err := strconv.ParseFloat(row[7], 64); err != nil {
			t.Errorf("nap column %q not a float: %v", row[7], err)
		}
	}
}

func TestFigure17And18(t *testing.T) {
	t17, err := shared.Figure17()
	if err != nil {
		t.Fatalf("Figure17: %v", err)
	}
	if len(t17.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 webservices x 3 mixes)", len(t17.Rows))
	}
	t18, err := shared.Figure18()
	if err != nil {
		t.Fatalf("Figure18: %v", err)
	}
	for _, row := range t18.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		// The paper reports 18-34%; our simulated utilizations run higher
		// (see EXPERIMENTS.md), so accept up to ~1.8.
		if v < 1.0 || v > 1.8 {
			t.Errorf("%s: efficiency ratio %.2f outside plausible band", row[0], v)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	tab, err := shared.Figure3()
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 nap points", len(tab.Rows))
	}
	// Monotonicity: app perf falls as nap rises (both variants).
	for col := range []int{0, 1} {
		idx := 1 + col*3
		prev := 2.0
		for _, row := range tab.Rows {
			v := parsePct(t, row[idx])
			if v > prev+0.08 {
				t.Errorf("variant %d: perf rose with nap (%v -> %v)", col, prev, v)
			}
			prev = v
		}
	}
	// Variant 1 meets QoS at a lower nap than variant 0.
	firstMet := func(col int) int {
		for i, row := range tab.Rows {
			if row[col] == "yes" {
				return i
			}
		}
		return len(tab.Rows)
	}
	if m1, m0 := firstMet(6), firstMet(3); m1 >= m0 {
		t.Errorf("variant 1 meets QoS at nap index %d, variant 0 at %d; want v1 earlier", m1, m0)
	}
}

func TestArtifactsRegistry(t *testing.T) {
	arts := Artifacts()
	if len(arts) != 27 {
		t.Errorf("artifacts = %d, want 27", len(arts))
	}
	if _, err := ArtifactByKey("figchaos"); err != nil {
		t.Errorf("figchaos missing: %v", err)
	}
	if _, err := ArtifactByKey("figmigrate"); err != nil {
		t.Errorf("figmigrate missing: %v", err)
	}
	if _, err := ArtifactByKey("figchaosmigrate"); err != nil {
		t.Errorf("figchaosmigrate missing: %v", err)
	}
	if _, err := ArtifactByKey("figslo"); err != nil {
		t.Errorf("figslo missing: %v", err)
	}
	if _, err := ArtifactByKey("figtimeline"); err != nil {
		t.Errorf("figtimeline missing: %v", err)
	}
	if _, err := ArtifactByKey("figspans"); err != nil {
		t.Errorf("figspans missing: %v", err)
	}
	if _, err := ArtifactByKey("fig4"); err != nil {
		t.Errorf("fig4 missing: %v", err)
	}
	if _, err := ArtifactByKey("nope"); err == nil {
		t.Error("unknown key accepted")
	}
	keys := map[string]bool{}
	for _, a := range arts {
		if keys[a.Key] {
			t.Errorf("duplicate key %s", a.Key)
		}
		keys[a.Key] = true
	}
}
