package harness

import "fmt"

// FigureFunc produces one or more tables for a paper artifact.
type FigureFunc func(r *Runner) ([]*Table, error)

// Artifact names one reproducible table/figure.
type Artifact struct {
	Key  string // CLI selector, e.g. "fig4"
	Name string // paper name
	Run  FigureFunc
}

func one(f func(r *Runner) (*Table, error)) FigureFunc {
	return func(r *Runner) ([]*Table, error) {
		t, err := f(r)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Artifacts enumerates every table and figure of the evaluation, in paper
// order.
func Artifacts() []Artifact {
	return []Artifact{
		{Key: "table1", Name: "Table I", Run: func(r *Runner) ([]*Table, error) { return []*Table{r.Table1()}, nil }},
		{Key: "fig2", Name: "Figure 2", Run: one((*Runner).Figure2)},
		{Key: "fig3", Name: "Figure 3", Run: one((*Runner).Figure3)},
		{Key: "fig4", Name: "Figure 4", Run: one((*Runner).Figure4)},
		{Key: "fig5", Name: "Figure 5", Run: one((*Runner).Figure5)},
		{Key: "fig6", Name: "Figure 6", Run: one((*Runner).Figure6)},
		{Key: "fig7", Name: "Figure 7", Run: one((*Runner).Figure7)},
		{Key: "fig8", Name: "Figure 8", Run: one((*Runner).Figure8)},
		{Key: "table2", Name: "Table II", Run: func(r *Runner) ([]*Table, error) { return []*Table{r.Table2()}, nil }},
		{Key: "fig9", Name: "Figure 9", Run: one(func(r *Runner) (*Table, error) { return r.Figure9to11("web-search") })},
		{Key: "fig10", Name: "Figure 10", Run: one(func(r *Runner) (*Table, error) { return r.Figure9to11("media-streaming") })},
		{Key: "fig11", Name: "Figure 11", Run: one(func(r *Runner) (*Table, error) { return r.Figure9to11("graph-analytics") })},
		{Key: "fig12", Name: "Figure 12", Run: one(func(r *Runner) (*Table, error) { return r.Figure12to14("web-search") })},
		{Key: "fig13", Name: "Figure 13", Run: one(func(r *Runner) (*Table, error) { return r.Figure12to14("media-streaming") })},
		{Key: "fig14", Name: "Figure 14", Run: one(func(r *Runner) (*Table, error) { return r.Figure12to14("graph-analytics") })},
		{Key: "fig15", Name: "Figure 15", Run: (*Runner).Figure15},
		{Key: "fig16", Name: "Figure 16", Run: one((*Runner).Figure16)},
		{Key: "table3", Name: "Table III", Run: func(r *Runner) ([]*Table, error) { return []*Table{r.Table3()}, nil }},
		{Key: "fig17", Name: "Figure 17", Run: one((*Runner).Figure17)},
		{Key: "fig18", Name: "Figure 18", Run: one((*Runner).Figure18)},
		{Key: "fig17sim", Name: "Figures 17/18 (simulated fleet)", Run: (*Runner).Figure17Sim},
		{Key: "figchaos", Name: "Chaos sweep (fault injection)", Run: one((*Runner).FigureChaos)},
		{Key: "figmigrate", Name: "Migration sweep (contention-driven live migration)", Run: one((*Runner).FigureMigrate)},
		{Key: "figchaosmigrate", Name: "Chaos-migration soak (transactional moves, breaker, audit)", Run: one((*Runner).FigureChaosMigrate)},
		{Key: "figslo", Name: "SLO burn-rate alerting vs static thresholds (load-step detection)", Run: one((*Runner).FigureSLO)},
		{Key: "figtimeline", Name: "Timeline (event trace)", Run: one((*Runner).FigureTimeline)},
		{Key: "figspans", Name: "Span trees (causal trace)", Run: one((*Runner).FigureSpans)},
	}
}

// ArtifactByKey finds an artifact by its CLI key.
func ArtifactByKey(key string) (Artifact, error) {
	for _, a := range Artifacts() {
		if a.Key == key {
			return a, nil
		}
	}
	return Artifact{}, fmt.Errorf("harness: unknown artifact %q", key)
}
