package harness

import (
	"fmt"

	"repro/internal/datacenter"
	"repro/internal/faults"
	"repro/internal/fleet"
)

// chaosRates are the fault intensities FigureChaos sweeps. Rate 0 is the
// healthy baseline; every class of fault scales together above it.
var chaosRates = []float64{0, 0.15, 0.30, 0.45}

// chaosAt maps a sweep rate onto a concrete fault mix: the rate is the
// whole-server crash probability directly, with compile failures and
// sensor dropouts at half that and the runtime's MTTF shrinking as the
// rate rises (20s at rate 0.15 down to ~6.7s at 0.45 — roughly one
// supervised crash/restart per run at the top rate).
func chaosAt(rate float64, seed int64) *faults.Chaos {
	if rate == 0 {
		return nil
	}
	return &faults.Chaos{
		Seed:                    seed,
		ServerCrashProb:         rate,
		CompileFailProb:         rate / 2,
		RuntimeCrashMTTFSeconds: 3 / rate,
		QoSDropoutProb:          rate / 2,
	}
}

// FigureChaos is the robustness companion to the fleet simulation: the
// web-search × WL1 PC3D fleet re-run under escalating fault injection.
// The paper's safety argument (Section III-B) is that protean code fails
// soft — a dead runtime leaves the host on static code, the supervisor
// re-attaches, and the cluster scheduler re-places work from crashed
// servers — so availability and batch throughput should degrade
// gracefully with the fault rate, never collapse.
func (r *Runner) FigureChaos() (*Table, error) {
	mix := datacenter.TableIII()[0]
	t := &Table{
		ID:    "Figure C (chaos)",
		Title: "PC3D fleet under escalating fault injection: graceful degradation",
		Columns: []string{"Fault Rate", "Avail", "Batch Units", "QoS mean", "Survivor QoS",
			"Violations", "Crashes", "Replaced", "RT Restarts", "Dropouts"},
	}
	for _, rate := range chaosRates {
		f, err := fleet.New(fleet.Config{
			Servers:        len(mix.Apps) + 2,
			Instances:      len(mix.Apps),
			Webservice:     "web-search",
			Mix:            mix,
			System:         fleet.SystemPC3D,
			Target:         0.95,
			Policy:         fleet.RoundRobin{},
			Seed:           1,
			Workers:        r.sc.Workers,
			Engine:         r.sc.Engine,
			SoloSeconds:    r.sc.SoloSeconds,
			SettleSeconds:  r.sc.SettleSeconds,
			MeasureSeconds: r.sc.MeasureSeconds,
			MaxSites:       r.sc.MaxSites,
			Chaos:          chaosAt(rate, 1),
		})
		if err != nil {
			return nil, err
		}
		m, err := f.Run()
		if err != nil {
			return nil, err
		}
		// Chaos columns come from the fleet's telemetry rollup rather than
		// hand-aggregated result fields.
		tel := f.Telemetry()
		t.AddRow(fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%.3f", m.Availability),
			fmt.Sprintf("%.2f", m.BatchUnits),
			fmt.Sprintf("%.3f", m.QoS.Mean), fmt.Sprintf("%.3f", m.DegradedQoS.Mean),
			fmt.Sprintf("%d/%d", m.QoSViolations, m.Servers),
			m.Crashes, m.Replacements,
			tel.CounterValue("supervise", "restarts_total"),
			tel.CounterValue("pc3d", "sensor_dropouts_total"))
	}
	t.Notes = append(t.Notes,
		"rate = server-crash probability; compile-fail and sensor-dropout run at rate/2, runtime MTTF at 3s/rate",
		"crashed servers' batch instances are re-placed onto survivors after the restart delay",
		"Survivor QoS averages fault-affected servers that stayed up: restarts and re-placements cost QoS, never the host",
		"batch throughput holds or rises under faults — weakened napping frees host cycles; QoS bears the degradation")
	return t, nil
}
