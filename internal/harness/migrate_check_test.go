package harness

import "testing"

// TestMigrateImprovesQoSTail is the acceptance check behind figmigrate: on
// the diurnal fleet, turning the contention-detection → live-migration
// control loop on must measurably lift the QoS tail (the 5th/1st
// percentile levels the worst servers deliver), execute at least one
// migration, account every blackout, and not gut batch throughput in the
// process. At bench scale the measured lift is ~+0.54; the 0.1 floor
// leaves room for scale-dependent drift without letting the effect vanish.
func TestMigrateImprovesQoSTail(t *testing.T) {
	cmp, err := shared.RunMigrateComparison()
	if err != nil {
		t.Fatalf("RunMigrateComparison: %v", err)
	}
	if cmp.Off.Migrations != 0 || cmp.Off.MigrationQuantaLost != 0 {
		t.Fatalf("off run reports %d migrations, %d quanta lost",
			cmp.Off.Migrations, cmp.Off.MigrationQuantaLost)
	}
	if cmp.On.Migrations == 0 {
		t.Fatal("migration on: detector never fired on the contended fleet")
	}
	if cmp.On.MigrationQuantaLost == 0 {
		t.Fatal("migrations executed but no blackout quanta were charged")
	}
	d95 := cmp.On.QoS.P05 - cmp.Off.QoS.P05
	d99 := cmp.On.QoS.P01 - cmp.Off.QoS.P01
	if d95 < 0.1 || d99 < 0.1 {
		t.Errorf("QoS tail improvement p95 %+.3f / p99 %+.3f, want >= +0.1 on both "+
			"(off p95/p99 = %.3f/%.3f, on = %.3f/%.3f)",
			d95, d99, cmp.Off.QoS.P05, cmp.Off.QoS.P01, cmp.On.QoS.P05, cmp.On.QoS.P01)
	}
	if cmp.On.QoSViolations > cmp.Off.QoSViolations {
		t.Errorf("violations rose with migration on: %d -> %d",
			cmp.Off.QoSViolations, cmp.On.QoSViolations)
	}
	// The blackout cost is real but bounded: total batch throughput stays
	// within 25% of the static fleet's.
	if cmp.On.BatchUnits < 0.75*cmp.Off.BatchUnits {
		t.Errorf("batch units collapsed under migration: %.2f vs %.2f off",
			cmp.On.BatchUnits, cmp.Off.BatchUnits)
	}
}
