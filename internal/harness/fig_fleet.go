package harness

import (
	"fmt"

	"repro/internal/datacenter"
	"repro/internal/fleet"
)

// FleetComparison pits the measured small-fleet simulation against the
// closed-form Figure 17/18 projection for one (webservice, mix) pair.
// Both routes extrapolate to cfg.Scale.BaseServers machines; the analytic
// side derives mean utilization from the harness's memoized pair runs,
// the measured side from a real concurrently-simulated fleet.
type FleetComparison struct {
	Webservice string
	Mix        string
	// FleetServers is the simulated cluster size.
	FleetServers int
	// MeasuredMeanUtil / AnalyticMeanUtil are the mean batch
	// utilizations each route observes.
	MeasuredMeanUtil float64
	AnalyticMeanUtil float64
	// MeasuredExtra / AnalyticExtra are the dedicated batch servers a
	// no-co-location fleet of BaseServers machines would need.
	MeasuredExtra int
	AnalyticExtra int
	// MeasuredEnergyRatio / AnalyticEnergyRatio are the Figure 18
	// efficiency ratios from each route.
	MeasuredEnergyRatio float64
	AnalyticEnergyRatio float64
	// Metrics is the full measured-fleet result.
	Metrics fleet.Metrics
}

// FleetCompare runs both routes for one (webservice, mix) pair at the
// runner's scale. The simulated fleet hosts each mix app on exactly one
// server, saturated, under PC3D at a 95% target — the same regime the
// analytic projection assumes.
func (r *Runner) FleetCompare(webservice string, mix datacenter.Mix) (FleetComparison, error) {
	if err := r.prefetchPairs(pairGrid(mix.Apps, []string{webservice}, []System{SystemPC3D}, []float64{0.95})); err != nil {
		return FleetComparison{}, err
	}
	utils := datacenter.Utilizations{}
	for _, a := range mix.Apps {
		pr, err := r.RunPair(a, webservice, SystemPC3D, 0.95)
		if err != nil {
			return FleetComparison{}, err
		}
		utils[a] = pr.Utilization
	}
	scale := datacenter.DefaultScale()
	proj, err := datacenter.Project(scale, webservice, mix, utils)
	if err != nil {
		return FleetComparison{}, err
	}

	f, err := fleet.New(fleet.Config{
		Servers:        len(mix.Apps),
		Webservice:     webservice,
		Mix:            mix,
		System:         fleet.SystemPC3D,
		Target:         0.95,
		Policy:         fleet.RoundRobin{},
		Seed:           1,
		Workers:        r.sc.Workers,
		Engine:         r.sc.Engine,
		SoloSeconds:    r.sc.SoloSeconds,
		SettleSeconds:  r.sc.SettleSeconds,
		MeasureSeconds: r.sc.MeasureSeconds,
		MaxSites:       r.sc.MaxSites,
		Scale:          scale,
	})
	if err != nil {
		return FleetComparison{}, err
	}
	m, err := f.Run()
	if err != nil {
		return FleetComparison{}, err
	}

	measuredMean := m.BatchUnits / float64(m.Instances)
	return FleetComparison{
		Webservice:          webservice,
		Mix:                 mix.Name,
		FleetServers:        m.Servers,
		MeasuredMeanUtil:    measuredMean,
		AnalyticMeanUtil:    proj.MeanBatchUtil,
		MeasuredExtra:       int(measuredMean*float64(scale.BaseServers) + 0.5),
		AnalyticExtra:       proj.ExtraServers,
		MeasuredEnergyRatio: m.EnergyEfficiencyRatio,
		AnalyticEnergyRatio: proj.EnergyEfficiencyRatio,
		Metrics:             m,
	}, nil
}

// Figure17Sim is the measured companion to Figures 17/18: a simulated
// PC3D fleet for web-search × WL1, cross-checked against the analytic
// projection the paper's warehouse-scale claims rest on.
func (r *Runner) Figure17Sim() ([]*Table, error) {
	cmp, err := r.FleetCompare("web-search", datacenter.TableIII()[0])
	if err != nil {
		return nil, err
	}
	servers := &Table{
		ID:    "Figure 17 (simulated)",
		Title: "Extra no-co-location servers per 10k machines: measured fleet vs analytic projection",
		Columns: []string{"Workload", "Fleet Size", "Mean Util (fleet)", "Mean Util (analytic)",
			"Extra Servers (fleet)", "Extra Servers (analytic)"},
	}
	servers.AddRow(fmt.Sprintf("%s/%s", cmp.Webservice, cmp.Mix),
		cmp.FleetServers,
		fmt.Sprintf("%.3f", cmp.MeasuredMeanUtil), fmt.Sprintf("%.3f", cmp.AnalyticMeanUtil),
		fmt.Sprintf("%.1fk", float64(cmp.MeasuredExtra)/1000),
		fmt.Sprintf("%.1fk", float64(cmp.AnalyticExtra)/1000))
	servers.Notes = append(servers.Notes,
		"fleet route: each mix app simulated on its own PC3D server, saturated, 95% target",
		fmt.Sprintf("fleet QoS p50/p95/min = %.3f/%.3f/%.3f, violations %d/%d",
			cmp.Metrics.QoS.P50, cmp.Metrics.QoS.P95, cmp.Metrics.QoS.Min,
			cmp.Metrics.QoSViolations, cmp.Metrics.Servers))

	energy := &Table{
		ID:      "Figure 18 (simulated)",
		Title:   "Energy-efficiency ratio: measured fleet vs analytic projection",
		Columns: []string{"Workload", "Fleet", "Analytic"},
	}
	energy.AddRow(fmt.Sprintf("%s/%s", cmp.Webservice, cmp.Mix),
		fmt.Sprintf("%.2f", cmp.MeasuredEnergyRatio),
		fmt.Sprintf("%.2f", cmp.AnalyticEnergyRatio))
	return []*Table{servers, energy}, nil
}
