package harness

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pc3d"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// Table1 reproduces Table I: the capability comparison between protean
// code and prior dynamic compilation infrastructures. The rows are the
// paper's published characterization; this build demonstrates the protean
// column's properties directly (Figures 4–7 for overhead, the embedded-IR
// pipeline for transformation power, the co-phase machinery for
// extrospection).
func (r *Runner) Table1() *Table {
	t := &Table{
		ID:      "Table I",
		Title:   "Comparison between protean code and prior dynamic compilation infrastructures",
		Columns: []string{"Capability", "ADAPT", "ADORE", "DynamoRIO", "Mojo", "protean code"},
	}
	yes, no := "yes", "-"
	t.AddRow("Low Overhead", no, yes, no, no, yes)
	t.AddRow("Full Intermediate Representation", yes, no, no, no, yes)
	t.AddRow("Commodity Hardware", yes, yes, yes, no, yes)
	t.AddRow("Programmer Unneeded", no, yes, yes, yes, yes)
	t.AddRow("Extrospective", no, no, no, no, yes)
	t.Notes = append(t.Notes, "rows restate the paper's Table I; the protean column is demonstrated by Figures 4-7")
	return t
}

// Table2 reproduces Table II: the application roster.
func (r *Runner) Table2() *Table {
	t := &Table{
		ID:      "Table II",
		Title:   "Applications used in datacenter experiments",
		Columns: []string{"App", "Suite", "Role", "Behaviour"},
	}
	for _, s := range workload.Catalog() {
		role := "host (batch)"
		if s.Class == workload.LatencySensitive {
			role = "external (latency-sensitive)"
		}
		t.AddRow(s.Name, s.Suite, role, s.Description)
	}
	return t
}

// Figure2 reproduces Figure 2: the four variants of a small two-load code
// region of libquantum, showing how non-temporal hints lower to a
// prefetchnta preceding the affected load.
func (r *Runner) Figure2() (*Table, error) {
	mb := ir.NewModuleBuilder("libquantum-region")
	mb.Global("state", 4<<20)
	fb := mb.Function("gate")
	fb.Loop(4, func() {
		fb.Load(ir.Access{Global: "state", Pattern: ir.Seq, Stride: 16}) // m1
		fb.Work(2)
		fb.Load(ir.Access{Global: "state", Pattern: ir.Seq, Stride: 16}) // m2
	})
	fb.Return()
	main := mb.Function("main")
	main.Call("gate")
	main.Return()
	mb.SetEntry("main")
	mod, err := mb.Build()
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "Figure 2",
		Title:   "The set of variants for a small code region (N=2) within libquantum",
		Columns: []string{"<m1,m2>", "generated code for the loop body"},
	}
	for _, bits := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
		clone := mod.Clone()
		loads := clone.Loads()
		loads[0].NT = bits[0]
		loads[1].NT = bits[1]
		if err := clone.Finalize(); err != nil {
			return nil, err
		}
		prog, err := isa.Lower(clone, isa.Config{})
		if err != nil {
			return nil, err
		}
		fi, _ := prog.FuncByName("gate")
		body := ""
		for pc := fi.Entry; pc < fi.End; pc++ {
			in := prog.Code[pc]
			if in.Op == isa.OpLoad || in.Op == isa.OpPrefetch {
				if body != "" {
					body += " ; "
				}
				body += in.String()
			}
		}
		t.AddRow(fmt.Sprintf("<%d,%d>", b2i(bits[0]), b2i(bits[1])), body)
	}
	t.Notes = append(t.Notes, "each hinted load lowers to prefetchnta + NT-tagged load, exactly one extra issue slot")
	return t, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Figure8 reproduces Figure 8: how the search-space reduction heuristics
// shrink the static loads PC3D must consider, per batch host. The profile
// comes from actually sampling each program, not from the config.
func (r *Runner) Figure8() (*Table, error) {
	t := &Table{
		ID:      "Figure 8",
		Title:   "Search-space reduction heuristics (static loads; counts in parentheses in the paper)",
		Columns: []string{"App", "Full Program", "Active Regions", "Max Depth", "Active %", "MaxDepth %", "Invariant-pruned", "Block-ranked"},
	}
	var totalFull, totalActive, totalMax, totalInv int
	hosts := workload.BatchHosts()
	spaces := make([]pc3d.SearchSpace, len(hosts))
	profs := make([]*sampling.DeepProfile, len(hosts))
	siteBlock := make([]map[int]string, len(hosts))
	err := r.forEach(len(hosts), func(i int) error {
		bin, err := r.binary(hosts[i], true)
		if err != nil {
			return err
		}
		m := machine.New(machine.Config{Cores: 2, Engine: r.sc.Engine})
		p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
		if err != nil {
			return err
		}
		sampler := sampling.NewPCSampler(p, m.Config().QuantumCycles)
		m.AddAgent(sampler)
		m.RunSeconds(1)
		emb, err := bin.DecodeIR()
		if err != nil {
			return err
		}
		profs[i] = sampler.DeepLifetime()
		spaces[i] = pc3d.BuildSearchSpace(emb, profs[i])
		siteBlock[i] = make(map[int]string)
		for _, f := range emb.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if ld, ok := in.(*ir.Load); ok {
						siteBlock[i][ld.ID] = b.Name
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, host := range hosts {
		ss := spaces[i]
		// How many surviving sites are ordered by measured block heat (vs
		// falling back to function heat / ID order).
		ranked := 0
		for _, id := range ss.Sites {
			if profs[i].BlockSamples(ss.FuncOf[id], siteBlock[i][id]) > 0 {
				ranked++
			}
		}
		t.AddRow(host, ss.TotalLoads, len(ss.Covered), len(ss.Sites),
			pct(float64(len(ss.Covered))/float64(ss.TotalLoads)),
			pct(float64(len(ss.Sites))/float64(ss.TotalLoads)),
			len(ss.Invariant),
			fmt.Sprintf("%d/%d", ranked, len(ss.Sites)))
		totalFull += ss.TotalLoads
		totalActive += len(ss.Covered)
		totalMax += len(ss.Sites)
		totalInv += len(ss.Invariant)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("aggregate reduction: active-regions %.1fx, max-depth %.1fx (paper: ~12x and ~44x)",
			float64(totalFull)/float64(totalActive), float64(totalFull)/float64(totalMax)))
	if totalInv > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("%d max-depth load(s) additionally pruned as loop-invariant-address (dataflow proof, not in the paper's heuristics)", totalInv))
	}
	t.Notes = append(t.Notes,
		"Block-ranked: sites the greedy search orders by measured block heat; the rest fall back to function heat")
	return t, nil
}
