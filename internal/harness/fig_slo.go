package harness

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/slo"
)

// SLO-detection experiment timeline, in SLO epochs of sloWindowSeconds.
// The load trace is a Figure-16-style day: quiet baseline, a short partial
// brownout (only the contended half of the fleet misses QoS), recovery,
// then a sustained overload step that drives every server below target.
// All three alerting policies watch the SAME measured QoS SLI series; the
// experiment compares when each one fires and whether it pages on the
// brownout transient.
const (
	sloWindowSeconds = 0.25
	// sloBlipFrom/To bound the transient: epochs 5-6 (t in (1.0, 1.5]).
	sloBlipFrom = 1.0
	sloBlipTo   = 1.5
	// sloStepAt starts the sustained overload; the first whole epoch it
	// covers is sloStepEpoch (t in (2.5, 2.75]).
	sloStepAt    = 2.5
	sloStepEpoch = 11
)

// sloSpecs are the three alerting policies under comparison, all over the
// built-in QoS-attainment SLI (objective 0.9):
//
//   - burn-multiwindow: Google-SRE multi-window burn-rate rules. The long
//     window demands real error mass before paging, so the brownout's
//     budget spend is tolerated; once the step lands the accumulated burn
//     crosses within an epoch or two.
//   - static-naive: a 1-epoch threshold with no damping — the classic
//     "error rate > X" alert. Fastest possible detection, but it pages on
//     the first brownout epoch.
//   - static-damped: the same 1-epoch threshold made deployable the only
//     way a static rule can be: require N consecutive bad epochs. The
//     damping that rejects the 2-epoch brownout delays EVERY detection by
//     3 epochs, transient or not.
func sloSpecs() []slo.Spec {
	qos := func(name string, rules []slo.BurnRule, pending int) slo.Spec {
		return slo.Spec{
			Name: name, Good: fleet.SeriesQoSGood, Total: fleet.SeriesQoSTotal,
			Objective: 0.9, Rules: rules,
			PendingEpochs: pending, ResolveEpochs: 2,
		}
	}
	return []slo.Spec{
		qos("burn-multiwindow", []slo.BurnRule{
			{LongEpochs: 4, ShortEpochs: 2, Burn: 3, Severity: "page"},
			{LongEpochs: 8, ShortEpochs: 2, Burn: 1.5, Severity: "page"},
		}, 1),
		qos("static-naive", []slo.BurnRule{
			{LongEpochs: 1, ShortEpochs: 1, Burn: 2, Severity: "page"},
		}, 1),
		qos("static-damped", []slo.BurnRule{
			{LongEpochs: 1, ShortEpochs: 1, Burn: 2, Severity: "page"},
		}, 3),
	}
}

// sloFleetConfig is the load-step fleet: 8 servers, the contended half
// hosting er-naive aggressors (so the brownout only takes down the hosts
// whose webservice has lost headroom), every server driven by the same
// un-spread step trace. The overload level (1.25× peak) guarantees even
// batch-free servers miss the 95% target once the step lands.
func (r *Runner) sloFleetConfig() fleet.Config {
	return fleet.Config{
		Servers:        8,
		Instances:      4,
		Webservice:     "web-search",
		Mix:            migrateMix(),
		System:         fleet.SystemNone,
		Policy:         fleet.RoundRobin{},
		Seed:           7,
		Workers:        r.sc.Workers,
		Engine:         r.sc.Engine,
		SoloSeconds:    0.5,
		SettleSeconds:  0.25,
		MeasureSeconds: 3.5,
		Trace: loadgen.Steps{
			{Until: sloBlipFrom, Load: 0.3},
			{Until: sloBlipTo, Load: 0.7},
			{Until: sloStepAt, Load: 0.3},
			{Until: 1e9, Load: 1.25},
		},
		SLO: &fleet.SLOConfig{
			WindowSeconds: sloWindowSeconds,
			Specs:         sloSpecs(),
		},
	}
}

// SLODetection is one alerting policy's measured outcome on the load step.
type SLODetection struct {
	Spec string
	// FalsePositives counts firing transitions before the step epoch (the
	// brownout transient paging through).
	FalsePositives int
	// DetectionEpoch is the first firing transition at or after the step
	// epoch (0 = never detected).
	DetectionEpoch int
	// LatencyEpochs is DetectionEpoch relative to the first whole overload
	// epoch (-1 = never detected).
	LatencyEpochs int
}

// SLOComparison is the measured result behind figslo.
type SLOComparison struct {
	Metrics    fleet.Metrics
	Detections []SLODetection
	// Postmortems counts flight-recorder bundles frozen by the firings.
	Postmortems int
}

// RunSLOComparison executes the load-step fleet once; all three policies
// evaluate against the same deterministic SLI series.
func (r *Runner) RunSLOComparison() (SLOComparison, error) {
	var cmp SLOComparison
	f, err := fleet.New(r.sloFleetConfig())
	if err != nil {
		return cmp, err
	}
	m, err := f.Run()
	if err != nil {
		return cmp, err
	}
	cmp.Metrics = m
	cmp.Postmortems = m.Postmortems
	for _, spec := range sloSpecs() {
		d := SLODetection{Spec: spec.Name, LatencyEpochs: -1}
		for _, tr := range f.AlertTransitions() {
			if tr.Spec != spec.Name || tr.To != "firing" {
				continue
			}
			if tr.Epoch < sloStepEpoch {
				d.FalsePositives++
			} else if d.DetectionEpoch == 0 {
				d.DetectionEpoch = tr.Epoch
				d.LatencyEpochs = tr.Epoch - sloStepEpoch
			}
		}
		cmp.Detections = append(cmp.Detections, d)
	}
	return cmp, nil
}

// FigureSLO is the alerting artifact: three policies race to detect a
// Figure-16-style sustained load step over the same measured QoS SLI,
// after a brownout transient has already tested their false-positive
// discipline. The headline is the asymmetry: multi-window burn-rate rules
// match the naive threshold's detection speed to within an epoch while
// rejecting the transient that makes the naive rule page, and beat the
// damped threshold outright — damping delays every detection, burn-rate
// tolerance only delays small burns.
func (r *Runner) FigureSLO() (*Table, error) {
	cmp, err := r.RunSLOComparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure SLO (burn-rate alerting)",
		Title: "Load-step detection: multi-window burn-rate alerts vs static thresholds on one measured QoS SLI",
		Columns: []string{"Policy", "False Pages", "Detected At Epoch", "Latency (epochs)",
			"Verdict"},
	}
	for _, d := range cmp.Detections {
		verdict := "missed the step"
		switch {
		case d.FalsePositives > 0 && d.DetectionEpoch > 0:
			verdict = "fast but pages on transients"
		case d.FalsePositives == 0 && d.DetectionEpoch > 0:
			verdict = "clean detection"
		}
		at := "-"
		lat := "-"
		if d.DetectionEpoch > 0 {
			at = fmt.Sprintf("%d", d.DetectionEpoch)
			lat = fmt.Sprintf("%d", d.LatencyEpochs)
		}
		t.AddRow(d.Spec, d.FalsePositives, at, lat, verdict)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("one fleet run, one SLI: %d servers, the contended half hosting er-naive aggressors; load 0.3 → brownout 0.7 (epochs 5-6, only contended hosts miss) → 0.3 → overload 1.25 from epoch %d (every server misses)",
			cmp.Metrics.Servers, sloStepEpoch),
		fmt.Sprintf("alerts fired %d times in total; the flight recorder froze %d postmortem bundles at the firing edges",
			cmp.Metrics.AlertsFired, cmp.Postmortems),
		"the static threshold can only buy false-positive immunity with consecutive-epoch damping, which taxes every detection; the burn-rate long window prices alerts by error mass instead, so a big burn still pages fast",
		"epochs are 0.25 s SLO evaluation barriers; the QoS SLI is binary per server-epoch (webservice completions/offered >= target), summed fleet-wide into cumulative good/total series")
	return t, nil
}
