package harness

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/progbin"
	"repro/internal/workload"
)

// libquantumVariant compiles libquantum with every load hinted (variant 1)
// or none (variant 0) as a static binary — the offline equivalents of the
// two extreme variants PC3D evaluates online.
func libquantumVariant(allNT bool) (*progbin.Binary, error) {
	mod := workload.MustByName("libquantum").Module()
	if allNT {
		for _, ld := range mod.Loads() {
			ld.NT = true
		}
		if err := mod.Finalize(); err != nil {
			return nil, err
		}
	}
	return pcc.Compile(mod, pcc.Options{})
}

// Figure3 reproduces Figure 3: the performance of libquantum variants 0
// (original) and 1 (fully non-temporal) running with er-naive, as a
// function of the nap intensity applied to libquantum. Each variant's BPS
// is normalized to that variant running alone; er-naive's IPS is
// normalized to its solo IPS.
func (r *Runner) Figure3() (*Table, error) {
	const target = 0.95
	extSolo, err := r.Solo("er-naive")
	if err != nil {
		return nil, err
	}

	type point struct{ perf, qos float64 }
	sweep := func(allNT bool) ([]point, float64, error) {
		bin, err := libquantumVariant(allNT)
		if err != nil {
			return nil, 0, err
		}
		// The variant's own solo BPS.
		sm := machine.New(machine.Config{Cores: 2, Engine: r.sc.Engine})
		sp, err := sm.Attach(0, bin, machine.ProcessConfig{Restart: true})
		if err != nil {
			return nil, 0, err
		}
		sm.RunSeconds(0.5)
		c0 := sp.Counters()
		sm.RunSeconds(r.sc.SoloSeconds)
		soloBPS := float64(sp.Counters().Sub(c0).Branches) / r.sc.SoloSeconds

		var pts []point
		minNap := 1.0
		found := false
		for nap := 0.0; nap <= 1.0001; nap += 0.1 {
			m := machine.New(machine.Config{Cores: 2, Engine: r.sc.Engine})
			eb, err := r.binary("er-naive", false)
			if err != nil {
				return nil, 0, err
			}
			ep, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
			if err != nil {
				return nil, 0, err
			}
			hp, err := m.Attach(1, bin, machine.ProcessConfig{Restart: true})
			if err != nil {
				return nil, 0, err
			}
			hp.SetNapIntensity(nap)
			m.RunSeconds(0.5)
			e0, h0 := ep.Counters(), hp.Counters()
			m.RunSeconds(r.sc.MeasureSeconds)
			ed := ep.Counters().Sub(e0)
			hd := hp.Counters().Sub(h0)
			p := point{
				perf: float64(hd.Branches) / r.sc.MeasureSeconds / soloBPS,
				qos:  float64(ed.Insts) / r.sc.MeasureSeconds / extSolo.IPS,
			}
			pts = append(pts, p)
			if !found && p.qos >= target {
				minNap = nap
				found = true
			}
		}
		return pts, minNap, nil
	}

	v0, nap0, err := sweep(false)
	if err != nil {
		return nil, err
	}
	v1, nap1, err := sweep(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Figure 3",
		Title: "Online empirical evaluation for two variants of libquantum running with er-naive",
		Columns: []string{
			"Nap Intensity",
			"v0 app BPS", "v0 co-runner QoS", "v0 QoS met",
			"v1 app BPS", "v1 co-runner QoS", "v1 QoS met",
		},
	}
	for i := range v0 {
		nap := float64(i) * 0.1
		t.AddRow(pct(nap),
			pct(v0[i].perf), pct(v0[i].qos), met(v0[i].qos >= target),
			pct(v1[i].perf), pct(v1[i].qos), met(v1[i].qos >= target))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("minimum nap meeting the %d%% target: variant 0 needs %s, variant 1 needs %s (paper: 99%% vs 23%%)",
			int(target*100), pct(nap0), pct(nap1)),
		"performance monotonically falls with nap intensity for both programs, enabling the binary search of Algorithm 2")
	return t, nil
}

func met(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
