package harness

import (
	"fmt"

	"repro/internal/datacenter"
	"repro/internal/workload"
)

// Table3 reproduces Table III: the scale-out workload mixes.
func (r *Runner) Table3() *Table {
	t := &Table{
		ID:      "Table III",
		Title:   "Workload mixes for scale-out analysis",
		Columns: []string{"Mix", "Applications"},
	}
	t.AddRow("LS", "web-search, graph-analytics, media-streaming")
	for _, m := range datacenter.TableIII() {
		apps := ""
		for i, a := range m.Apps {
			if i > 0 {
				apps += ", "
			}
			apps += a
		}
		t.AddRow(m.Name, apps)
	}
	return t
}

// mixUtilizations gathers the PC3D utilizations (at a 95% QoS target
// against the given webservice) for every app appearing in the Table III
// mixes, reusing memoized pair runs.
func (r *Runner) mixUtilizations(webservice string) (datacenter.Utilizations, error) {
	seen := map[string]bool{}
	var apps []string
	for _, m := range datacenter.TableIII() {
		for _, a := range m.Apps {
			if !seen[a] {
				seen[a] = true
				apps = append(apps, a)
			}
		}
	}
	if err := r.prefetchPairs(pairGrid(apps, []string{webservice}, []System{SystemPC3D}, []float64{0.95})); err != nil {
		return nil, err
	}
	utils := datacenter.Utilizations{}
	for _, a := range apps {
		pr, err := r.RunPair(a, webservice, SystemPC3D, 0.95)
		if err != nil {
			return nil, err
		}
		utils[a] = pr.Utilization
	}
	return utils, nil
}

// Figure17 reproduces Figure 17: servers required to run each
// (webservice, mix) pair with PC3D co-location versus no co-location, for
// a 10k-machine base fleet.
func (r *Runner) Figure17() (*Table, error) {
	t := &Table{
		ID:      "Figure 17",
		Title:   "Server count required to run workload mixes: PC3D vs no co-location",
		Columns: []string{"Workload", "PC3D", "No Co-location", "Extra Servers"},
	}
	cfg := datacenter.DefaultScale()
	for _, ws := range workload.Webservices() {
		utils, err := r.mixUtilizations(ws)
		if err != nil {
			return nil, err
		}
		for _, mix := range datacenter.TableIII() {
			res, err := datacenter.Project(cfg, ws, mix, utils)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s/%s", ws, mix.Name),
				fmt.Sprintf("%dk", res.PC3DServers/1000),
				fmt.Sprintf("%.1fk", float64(res.NoColoServers)/1000),
				fmt.Sprintf("%.1fk", float64(res.ExtraServers)/1000))
		}
	}
	t.Notes = append(t.Notes, "paper: 3.5k-8k extra servers needed without co-location")
	return t, nil
}

// Figure18 reproduces Figure 18: datacenter energy efficiency of the
// PC3D-enabled fleet normalized to the no-co-location fleet at equal
// throughput.
func (r *Runner) Figure18() (*Table, error) {
	t := &Table{
		ID:      "Figure 18",
		Title:   "Normalized energy efficiency of workload mixes: PC3D vs no co-location",
		Columns: []string{"Workload", "PC3D", "No Co-location", "Improvement"},
	}
	cfg := datacenter.DefaultScale()
	for _, ws := range workload.Webservices() {
		utils, err := r.mixUtilizations(ws)
		if err != nil {
			return nil, err
		}
		for _, mix := range datacenter.TableIII() {
			res, err := datacenter.Project(cfg, ws, mix, utils)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s/%s", ws, mix.Name),
				fmt.Sprintf("%.2f", res.EnergyEfficiencyRatio), "1.00",
				pct(res.EnergyEfficiencyRatio-1))
		}
	}
	t.Notes = append(t.Notes, "paper: 18-34% energy-efficiency improvement across mixes")
	return t, nil
}
