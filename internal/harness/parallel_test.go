package harness

import (
	"reflect"
	"sync"
	"testing"
)

// TestSoloSingleflight hammers a fresh runner's Solo from many
// goroutines: the memo must admit exactly one execution, with every
// caller seeing its result. This is the regression test for the
// check-unlock-run-store race the memo used to have, where concurrent
// callers all missed the cache and ran the experiment redundantly.
func TestSoloSingleflight(t *testing.T) {
	r := NewRunner(BenchScale())
	const callers = 8
	results := make([]SoloRates, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := r.Solo("libquantum")
			if err != nil {
				t.Errorf("Solo: %v", err)
				return
			}
			results[i] = s
		}(i)
	}
	wg.Wait()
	if n := r.soloRuns.Load(); n != 1 {
		t.Errorf("solo experiment executed %d times for %d concurrent callers, want 1", n, callers)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d saw %+v, caller 0 saw %+v", i, results[i], results[0])
		}
	}
}

// TestPairSingleflight does the same for RunPair (no-mitigation system to
// keep it cheap).
func TestPairSingleflight(t *testing.T) {
	r := NewRunner(BenchScale())
	const callers = 4
	results := make([]PairResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pr, err := r.RunPair("libquantum", "web-search", SystemNone, 0.95)
			if err != nil {
				t.Errorf("RunPair: %v", err)
				return
			}
			results[i] = pr
		}(i)
	}
	wg.Wait()
	if n := r.pairRuns.Load(); n != 1 {
		t.Errorf("pair experiment executed %d times for %d concurrent callers, want 1", n, callers)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d saw %+v, caller 0 saw %+v", i, results[i], results[0])
		}
	}
}

// TestParallelFigureMatchesSerial runs the same figure driver serially
// and with a worker pool on fresh runners: every simulated machine is
// independent and seeds are fixed, so the rendered rows must be
// identical, in identical order.
func TestParallelFigureMatchesSerial(t *testing.T) {
	serial := BenchScale()
	serial.Workers = 1
	pooled := BenchScale()
	pooled.Workers = 4

	sTab, err := NewRunner(serial).Figure4()
	if err != nil {
		t.Fatalf("serial Figure4: %v", err)
	}
	pTab, err := NewRunner(pooled).Figure4()
	if err != nil {
		t.Fatalf("parallel Figure4: %v", err)
	}
	if !reflect.DeepEqual(sTab.Rows, pTab.Rows) {
		t.Errorf("Figure 4 rows diverge across worker counts:\nserial:   %v\nparallel: %v", sTab.Rows, pTab.Rows)
	}
}

func TestWorkersClamp(t *testing.T) {
	r := NewRunner(Scale{Workers: 8})
	if got := r.workers(3); got != 3 {
		t.Errorf("workers(3) with pool 8 = %d, want 3", got)
	}
	r = NewRunner(Scale{Workers: 0})
	if got := r.workers(5); got != 1 {
		t.Errorf("workers(5) with pool 0 = %d, want 1", got)
	}
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
