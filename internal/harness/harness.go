// Package harness reproduces the paper's evaluation: it wires workloads,
// the protean runtime, PC3D, and the baselines into the co-location
// experiments behind every table and figure, and renders the same rows and
// series the paper reports.
//
// All experiments run through a Runner, which memoizes solo-rate
// calibrations and pair results so figures that share underlying runs
// (e.g. Figures 9–14, or Figures 15 and 17) measure once. A Scale selects
// experiment durations: FullScale approximates the paper's coverage;
// QuickScale and BenchScale shrink durations and rosters for fast test and
// benchmark runs while preserving every experiment's shape.
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pc3d"
	"repro/internal/phase"
	"repro/internal/progbin"
	"repro/internal/qos"
	"repro/internal/reqos"
	"repro/internal/workload"
)

// Scale selects experiment sizes.
type Scale struct {
	Name string
	// SoloSeconds is the measurement window for solo calibrations (after a
	// 0.5 s warmup).
	SoloSeconds float64
	// SettleSeconds precede steady-state measurement in co-location runs
	// (covers PC3D's search).
	SettleSeconds float64
	// MeasureSeconds is the steady-state measurement window.
	MeasureSeconds float64
	// TraceSeconds is the Figure 16 experiment duration.
	TraceSeconds float64
	// StressSeconds is the duration of each Figure 4–6 overhead run.
	StressSeconds float64
	// MaxSites caps PC3D's search (0 = the paper's full search).
	MaxSites int
	// Hosts limits the batch-host roster (0 = all ten).
	Hosts int
	// Exts limits the Figure 15 co-runner spectrum (0 = all).
	Exts int
	// SPECApps limits the Figure 4–6 roster (0 = all eighteen).
	SPECApps int
	// Targets are the QoS targets swept (nil = the paper's 90/95/98%).
	Targets []float64
	// Workers bounds the figure drivers' experiment fan-out (<=1 = serial).
	// Every simulated machine is independent, so results are identical at
	// any worker count; rows stay in paper order.
	Workers int
	// Engine selects the machine execution engine for every experiment
	// ("" = machine.DefaultEngine). Engines are bit-identical, so figures
	// and tables are unchanged by this knob; it exists for differential
	// testing and benchmarking.
	Engine string
}

// FullScale approximates the paper's experiment coverage.
func FullScale() Scale {
	return Scale{
		Name: "full", SoloSeconds: 2, SettleSeconds: 8, MeasureSeconds: 2,
		TraceSeconds: 90, StressSeconds: 2,
	}
}

// QuickScale preserves every experiment's shape at reduced cost.
func QuickScale() Scale {
	return Scale{
		Name: "quick", SoloSeconds: 1.5, SettleSeconds: 7, MeasureSeconds: 1.5,
		TraceSeconds: 45, StressSeconds: 1, MaxSites: 10, Hosts: 5, Exts: 3, SPECApps: 8,
	}
}

// BenchScale is the smallest shape-preserving configuration, used by the
// bench_test.go harness.
func BenchScale() Scale {
	return Scale{
		Name: "bench", SoloSeconds: 1, SettleSeconds: 5.5, MeasureSeconds: 1,
		TraceSeconds: 30, StressSeconds: 0.5, MaxSites: 6, Hosts: 2, Exts: 2, SPECApps: 4,
		Targets: []float64{0.95},
	}
}

func (sc Scale) targets() []float64 {
	if len(sc.Targets) > 0 {
		return sc.Targets
	}
	return []float64{0.90, 0.95, 0.98}
}

func (sc Scale) hosts() []string {
	h := workload.BatchHosts()
	if sc.Hosts > 0 && sc.Hosts < len(h) {
		return h[:sc.Hosts]
	}
	return h
}

func (sc Scale) specApps() []string {
	a := workload.SPECFig4Apps()
	if sc.SPECApps > 0 && sc.SPECApps < len(a) {
		return a[:sc.SPECApps]
	}
	return a
}

// extSpectrum is the Figure 15 co-runner set: "the entire spectrum of
// CloudSuite, SPEC and SmashBench co-runners" (Table II's external apps).
func (sc Scale) extSpectrum() []string {
	all := []string{
		"web-search", "media-streaming", "graph-analytics",
		"mcf", "omnetpp", "xalancbmk", "bst", "er-naive", "streamcluster",
	}
	if sc.Exts > 0 && sc.Exts < len(all) {
		return all[:sc.Exts]
	}
	return all
}

// System selects the mitigation system of a co-location run.
type System int

// Mitigation systems.
const (
	// SystemNone co-locates with no mitigation.
	SystemNone System = iota
	// SystemPC3D runs the full protean runtime with the PC3D policy.
	SystemPC3D
	// SystemReQoS runs the reactive napping baseline.
	SystemReQoS
)

func (s System) String() string {
	switch s {
	case SystemNone:
		return "none"
	case SystemPC3D:
		return "PC3D"
	case SystemReQoS:
		return "ReQoS"
	}
	return fmt.Sprintf("system(%d)", int(s))
}

// SoloRates is a solo calibration of one app.
type SoloRates struct {
	IPS float64
	BPS float64
}

// PairResult is the steady-state outcome of one co-location run.
type PairResult struct {
	Host   string
	Ext    string
	System System
	Target float64
	// Utilization is host BPS normalized to its solo (plain-binary) BPS.
	Utilization float64
	// QoS is the external app's true IPS normalized to its solo IPS,
	// measured independently of the online monitors.
	QoS float64
	// RuntimeFrac is the protean runtime's share of server cycles
	// (PC3D only).
	RuntimeFrac float64
	// PC3D holds controller stats (PC3D only).
	PC3D pc3d.Stats
}

type pairKey struct {
	host, ext string
	system    System
	target    float64
}

// cell is a single-flight memoization slot: the first caller runs the
// experiment inside the sync.Once while latecomers for the same key block
// on it, so concurrent figure drivers measure each key exactly once
// (previously a check-unlock-run-store pattern let two callers race past
// the check and both run the full experiment).
type cell[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (c *cell[T]) do(f func() (T, error)) (T, error) {
	c.once.Do(func() { c.val, c.err = f() })
	return c.val, c.err
}

// Runner executes experiments with single-flight memoization; it is safe
// for concurrent use.
type Runner struct {
	sc Scale

	mu    sync.Mutex
	solo  map[string]*cell[SoloRates]
	pairs map[pairKey]*cell[PairResult]
	bins  map[string]*cell[*progbin.Binary] // compiled binaries, keyed name+mode

	// soloRuns/pairRuns count actual experiment executions (not memoized
	// hits), so tests can assert in-flight deduplication.
	soloRuns atomic.Int64
	pairRuns atomic.Int64
}

// NewRunner builds a runner at the given scale.
func NewRunner(sc Scale) *Runner {
	return &Runner{
		sc:    sc,
		solo:  make(map[string]*cell[SoloRates]),
		pairs: make(map[pairKey]*cell[PairResult]),
		bins:  make(map[string]*cell[*progbin.Binary]),
	}
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.sc }

// binary compiles (and caches) an app in plain or protean mode.
func (r *Runner) binary(name string, protean bool) (*progbin.Binary, error) {
	key := name
	if protean {
		key += "+protean"
	}
	r.mu.Lock()
	c := r.bins[key]
	if c == nil {
		c = &cell[*progbin.Binary]{}
		r.bins[key] = c
	}
	r.mu.Unlock()
	return c.do(func() (*progbin.Binary, error) {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown app %q", name)
		}
		if protean {
			return spec.CompileProtean()
		}
		return spec.CompilePlain()
	})
}

// Solo measures (and caches) an app's interference-free IPS and BPS.
func (r *Runner) Solo(name string) (SoloRates, error) {
	r.mu.Lock()
	c := r.solo[name]
	if c == nil {
		c = &cell[SoloRates]{}
		r.solo[name] = c
	}
	r.mu.Unlock()
	return c.do(func() (SoloRates, error) { return r.runSolo(name) })
}

func (r *Runner) runSolo(name string) (SoloRates, error) {
	r.soloRuns.Add(1)
	bin, err := r.binary(name, false)
	if err != nil {
		return SoloRates{}, err
	}
	m := machine.New(machine.Config{Cores: 4, Engine: r.sc.Engine})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		return SoloRates{}, err
	}
	m.RunSeconds(0.5)
	c0 := p.Counters()
	m.RunSeconds(r.sc.SoloSeconds)
	d := p.Counters().Sub(c0)
	return SoloRates{
		IPS: float64(d.Insts) / r.sc.SoloSeconds,
		BPS: float64(d.Branches) / r.sc.SoloSeconds,
	}, nil
}

// RunPair executes one co-location experiment: ext (high priority, plain)
// on core 0, host on core 1, the protean runtime (PC3D only) on core 2.
// Results are memoized per (host, ext, system, target) with in-flight
// deduplication.
func (r *Runner) RunPair(host, ext string, system System, target float64) (PairResult, error) {
	key := pairKey{host: host, ext: ext, system: system, target: target}
	r.mu.Lock()
	c := r.pairs[key]
	if c == nil {
		c = &cell[PairResult]{}
		r.pairs[key] = c
	}
	r.mu.Unlock()
	return c.do(func() (PairResult, error) { return r.runPair(host, ext, system, target) })
}

func (r *Runner) runPair(host, ext string, system System, target float64) (PairResult, error) {
	r.pairRuns.Add(1)
	extSolo, err := r.Solo(ext)
	if err != nil {
		return PairResult{}, err
	}
	hostSolo, err := r.Solo(host)
	if err != nil {
		return PairResult{}, err
	}

	m := machine.New(machine.Config{Cores: 4, Engine: r.sc.Engine})
	eb, err := r.binary(ext, false)
	if err != nil {
		return PairResult{}, err
	}
	ep, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	if err != nil {
		return PairResult{}, err
	}
	hb, err := r.binary(host, system == SystemPC3D)
	if err != nil {
		return PairResult{}, err
	}
	hp, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		return PairResult{}, err
	}

	flux := qos.NewFluxMonitor(m, hp, ep, 0, 0)
	flux.ReferenceIPS = extSolo.IPS
	m.AddAgent(flux)

	var rt *core.Runtime
	var ctrl *pc3d.Controller
	switch system {
	case SystemPC3D:
		rt, err = core.New(core.Config{Machine: m, Host: hp, RuntimeCore: 2})
		if err != nil {
			return PairResult{}, err
		}
		m.AddAgent(rt)
		extSig := func(*machine.Machine) phase.Signature {
			solo, _ := flux.SoloIPS()
			return phase.Signature{Rate: solo}
		}
		ctrl = pc3d.New(pc3d.Config{
			Runtime: rt, Steady: flux, Window: &qos.FluxWindow{Flux: flux, Ext: ep}, ExtSig: extSig,
			Target: target, MaxSites: r.sc.MaxSites,
		})
		defer ctrl.Close()
		m.AddAgent(ctrl)
	case SystemReQoS:
		m.AddAgent(reqos.New(hp, flux, reqos.Options{Target: target}))
	case SystemNone:
		// No mitigation.
	}

	m.RunSeconds(r.sc.SettleSeconds)
	e0, h0 := ep.Counters(), hp.Counters()
	m.RunSeconds(r.sc.MeasureSeconds)
	ed := ep.Counters().Sub(e0)
	hd := hp.Counters().Sub(h0)

	pr := PairResult{
		Host: host, Ext: ext, System: system, Target: target,
		Utilization: float64(hd.Branches) / r.sc.MeasureSeconds / hostSolo.BPS,
		QoS:         float64(ed.Insts) / r.sc.MeasureSeconds / extSolo.IPS,
	}
	if rt != nil {
		pr.RuntimeFrac = rt.ServerCycleFraction()
	}
	if ctrl != nil {
		pr.PC3D = ctrl.Stats()
	}
	return pr, nil
}
