package harness

import (
	"runtime"
	"sync"
)

// workers resolves the scale's fan-out bound: at most Workers goroutines,
// never more than useful, and serial when unset.
func (r *Runner) workers(n int) int {
	w := r.sc.Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// DefaultWorkers is the -workers default: one per host core.
func DefaultWorkers() int { return runtime.NumCPU() }

// forEach runs f(0..n-1) across the runner's worker pool and returns the
// lowest-index error. Results must be written to index i of a caller-owned
// slice so output order never depends on scheduling; combined with the
// runner's single-flight memoization this makes every figure driver
// produce identical rows at any worker count.
func (r *Runner) forEach(n int, f func(i int) error) error {
	w := r.workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prefetchPairs warms the pair memo across the worker pool so a driver's
// subsequent serial table build hits only cached results. Duplicate keys
// are collapsed by the single-flight cells.
func (r *Runner) prefetchPairs(keys []pairKey) error {
	return r.forEach(len(keys), func(i int) error {
		k := keys[i]
		_, err := r.RunPair(k.host, k.ext, k.system, k.target)
		return err
	})
}
