package harness

import (
	"reflect"
	"testing"
)

// TestSLOBurnRateBeatsStaticThreshold is the acceptance check behind
// figslo: on the load-step fleet, the multi-window burn-rate policy must
// detect the sustained overload strictly earlier than the deployable
// static baseline (the consecutive-epoch-damped threshold) while paging
// zero times on the brownout transient — and the naive static threshold
// must demonstrate why damping is needed in the first place by paging on
// the transient. All three policies watch the same measured QoS SLI
// series from one fleet run, so the comparison is apples-to-apples.
func TestSLOBurnRateBeatsStaticThreshold(t *testing.T) {
	cmp, err := shared.RunSLOComparison()
	if err != nil {
		t.Fatalf("RunSLOComparison: %v", err)
	}
	byName := map[string]SLODetection{}
	for _, d := range cmp.Detections {
		byName[d.Spec] = d
	}
	burn, ok := byName["burn-multiwindow"]
	if !ok {
		t.Fatal("burn-multiwindow policy missing from comparison")
	}
	naive, ok := byName["static-naive"]
	if !ok {
		t.Fatal("static-naive policy missing from comparison")
	}
	damped, ok := byName["static-damped"]
	if !ok {
		t.Fatal("static-damped policy missing from comparison")
	}

	// The burn-rate policy detects the step cleanly: no false pages on the
	// brownout, detection not missed.
	if burn.FalsePositives != 0 {
		t.Errorf("burn-multiwindow paged %d times on the brownout transient, want 0", burn.FalsePositives)
	}
	if burn.DetectionEpoch == 0 {
		t.Fatal("burn-multiwindow never detected the load step")
	}
	// The naive threshold is the cautionary tale: it pages on the transient.
	if naive.FalsePositives == 0 {
		t.Error("static-naive did not page on the brownout transient; the baseline has lost its teeth")
	}
	// Damping fixes the naive rule's false pages...
	if damped.FalsePositives != 0 {
		t.Errorf("static-damped paged %d times on the brownout transient, want 0", damped.FalsePositives)
	}
	if damped.DetectionEpoch == 0 {
		t.Fatal("static-damped never detected the load step")
	}
	// ...but taxes detection: the burn-rate policy must beat it outright.
	// This is the headline asymmetry figslo exists to pin.
	if burn.DetectionEpoch >= damped.DetectionEpoch {
		t.Errorf("burn-multiwindow detected at epoch %d, static-damped at %d; want strictly earlier",
			burn.DetectionEpoch, damped.DetectionEpoch)
	}
	// Every firing edge froze a flight-recorder bundle.
	if cmp.Postmortems == 0 {
		t.Error("no postmortem bundles were frozen despite firing alerts")
	}
	if cmp.Metrics.AlertsFired == 0 {
		t.Error("metrics report zero alerts fired")
	}
}

// TestSLOComparisonDeterministic re-runs the figslo fleet at a different
// worker count and demands identical detections: alerting verdicts are
// part of the determinism contract, not a best-effort overlay.
func TestSLOComparisonDeterministic(t *testing.T) {
	base, err := shared.RunSLOComparison()
	if err != nil {
		t.Fatalf("RunSLOComparison: %v", err)
	}
	sc := BenchScale()
	sc.Workers = 8
	again, err := NewRunner(sc).RunSLOComparison()
	if err != nil {
		t.Fatalf("RunSLOComparison (8 workers): %v", err)
	}
	if !reflect.DeepEqual(base.Detections, again.Detections) {
		t.Errorf("detections diverge across worker counts:\n 1: %+v\n 8: %+v",
			base.Detections, again.Detections)
	}
	if base.Postmortems != again.Postmortems {
		t.Errorf("postmortem counts diverge: %d vs %d", base.Postmortems, again.Postmortems)
	}
	if !reflect.DeepEqual(base.Metrics, again.Metrics) {
		t.Error("fleet metrics diverge across worker counts")
	}
}

// TestFigureSLO checks the rendered artifact: one row per policy, and the
// verdict column tells the story (clean detection for burn-rate, a
// transient page for the naive threshold).
func TestFigureSLO(t *testing.T) {
	tab, err := shared.FigureSLO()
	if err != nil {
		t.Fatalf("FigureSLO: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(tab.Rows))
	}
	verdicts := map[string]string{}
	for _, row := range tab.Rows {
		verdicts[row[0]] = row[len(row)-1]
	}
	if v := verdicts["burn-multiwindow"]; v != "clean detection" {
		t.Errorf("burn-multiwindow verdict = %q, want \"clean detection\"", v)
	}
	if v := verdicts["static-naive"]; v != "fast but pages on transients" {
		t.Errorf("static-naive verdict = %q, want \"fast but pages on transients\"", v)
	}
	if v := verdicts["static-damped"]; v != "clean detection" {
		t.Errorf("static-damped verdict = %q, want \"clean detection\"", v)
	}
}
