package harness

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// FigureSpans is the span-nested variant of the activity timeline: instead
// of bucketing point events, it renders the causal span trees the PC3D
// trace experiment records — one row per root operation (a pc3d.search or
// a supervise.recovery) with its child count, depth, and critical path, so
// the table answers "where did each transformation's wall time go" the way
// the Chrome trace does visually.
func (r *Runner) FigureSpans() (*Table, error) {
	const samples = 30
	_, reg, err := r.runTrace(SystemPC3D, samples)
	if err != nil {
		return nil, err
	}
	freq := machine.New(machine.Config{}).Config().FreqHz

	spans := reg.Spans()
	if len(spans) == 0 {
		return nil, fmt.Errorf("harness: trace experiment recorded no spans")
	}
	children := make(map[telemetry.SpanID][]telemetry.Span)
	for _, s := range spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	var depthOf func(id telemetry.SpanID) int
	depthOf = func(id telemetry.SpanID) int {
		d := 0
		for _, k := range children[id] {
			if kd := 1 + depthOf(k.ID); kd > d {
				d = kd
			}
		}
		return d
	}
	countOf := func(id telemetry.SpanID) int {
		n := 0
		var walk func(telemetry.SpanID)
		walk = func(id telemetry.SpanID) {
			for _, k := range children[id] {
				n++
				walk(k.ID)
			}
		}
		walk(id)
		return n
	}

	t := &Table{
		ID:    "Figure S (spans)",
		Title: "Causal span trees from the PC3D trace experiment (libquantum with web-search, fluctuating load)",
		Columns: []string{
			"t(s)", "Root", "Dur(ms)", "Spans", "Depth", "Critical path",
		},
	}
	roots := 0
	for _, s := range spans {
		if s.Parent != 0 {
			continue
		}
		roots++
		dur := "open"
		if s.End != 0 {
			dur = fmt.Sprintf("%.1f", float64(s.Duration())/freq*1000)
		}
		path := reg.CriticalPath(s.ID)
		names := make([]string, len(path))
		for i, p := range path {
			names[i] = p.Name
		}
		t.AddRow(
			fmt.Sprintf("%.2f", float64(s.Start)/freq),
			s.Name, dur, countOf(s.ID), depthOf(s.ID),
			strings.Join(names, " > "),
		)
	}
	if roots == 0 {
		return nil, fmt.Errorf("harness: no root spans in trace")
	}
	t.Notes = append(t.Notes,
		"each root is one end-to-end operation; Spans counts its whole tree, Depth its nesting",
		"the critical path follows the longest-duration child at every level — the stage that bounds the operation's latency",
		"the same trees export as Chrome trace-event JSON (pcrun -spans / fleet -spans) for Perfetto")
	if d := reg.DroppedSpans(); d > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("span store overflowed: %d newest spans dropped", d))
	}
	return t, nil
}
