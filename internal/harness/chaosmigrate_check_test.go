package harness

import "testing"

// TestChaosMigrateSoak is the acceptance check behind figchaosmigrate: under
// a fault soak aimed at the migration machinery itself (crashes, detach/land
// refusals, blackout stalls, corrupted/stale detector samples), the
// transactional move path must demonstrably exercise its failure branches —
// at least one rollback and at least one breaker trip — while the
// conservation auditor certifies that no epoch ever lost or duplicated an
// instance.
func TestChaosMigrateSoak(t *testing.T) {
	cmp, err := shared.RunChaosMigrateComparison()
	if err != nil {
		t.Fatalf("RunChaosMigrateComparison: %v", err)
	}
	t.Logf("on-run ledger: %d landed, %d failed, %d rollbacks, %d retries, %d trips, %d corrupt, %d stale, %d audit violations",
		cmp.On.Migrations, cmp.On.MovesFailed, cmp.On.MoveRollbacks, cmp.On.MoveRetries,
		cmp.On.BreakerTrips, cmp.On.CorruptSamples, cmp.On.StaleSamples, cmp.On.AuditViolations)
	if cmp.Off.Migrations != 0 || cmp.Off.MovesFailed != 0 || cmp.Off.BreakerTrips != 0 {
		t.Fatalf("off run reports migration activity: %d moves, %d failed, %d trips",
			cmp.Off.Migrations, cmp.Off.MovesFailed, cmp.Off.BreakerTrips)
	}
	if cmp.On.Crashes == 0 || cmp.Off.Crashes != cmp.On.Crashes {
		t.Errorf("crash schedule not shared: off %d, on %d (want equal, nonzero)",
			cmp.Off.Crashes, cmp.On.Crashes)
	}
	// The soak must actually exercise the failure machinery it claims to
	// certify: the brutal landing-failure rate forces at least one rollback,
	// and the short failure threshold trips the breaker at least once.
	if cmp.On.MoveRollbacks == 0 {
		t.Error("chaos soak never exercised the rollback path")
	}
	if cmp.On.BreakerTrips == 0 {
		t.Error("chaos soak never tripped the circuit breaker")
	}
	if cmp.On.MovesFailed == 0 {
		t.Error("chaos soak reports no failed moves")
	}
	// The headline: the auditor watched every epoch barrier and the books
	// balanced anyway.
	if cmp.Audit == nil {
		t.Fatal("on run published no audit report")
	}
	if !cmp.Audit.Clean() || cmp.On.AuditViolations != 0 {
		t.Fatalf("conservation audit failed: %d violations over %d epochs: %+v",
			len(cmp.Audit.Violations), len(cmp.Audit.Epochs), cmp.Audit.Violations)
	}
	if len(cmp.Audit.Epochs) < 3 {
		t.Errorf("audit covered only %d epochs, want >= 3", len(cmp.Audit.Epochs))
	}
}
