package isa

import (
	"errors"
	"fmt"
)

// ErrBadProgram is wrapped by all program-verification failures.
var ErrBadProgram = errors.New("isa: malformed program")

func progErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadProgram, fmt.Sprintf(format, args...))
}

// VerifyProgram checks a lowered program's structural invariants before it
// is packaged into a binary:
//
//   - the entry PC and every function range lie inside the code,
//   - function ranges cover the code exactly and do not overlap,
//   - every branch/jump target lands inside the enclosing function,
//   - every direct call targets a function entry,
//   - every EVT slot references a defined function and its entry,
//   - register indices stay below the enclosing function's MaxReg,
//   - memory sites are within [0, NumSites) and address generators have
//     sane geometry,
//   - data regions do not overlap and fit the declared address space.
func VerifyProgram(p *Program) error {
	if len(p.Code) == 0 {
		return progErr("empty code")
	}
	if p.EntryPC < 0 || p.EntryPC >= len(p.Code) {
		return progErr("entry PC %d outside code [0,%d)", p.EntryPC, len(p.Code))
	}
	// Function coverage.
	entries := make(map[int]FuncInfo, len(p.Funcs))
	covered := 0
	for i, f := range p.Funcs {
		if f.Entry < 0 || f.End > len(p.Code) || f.Entry >= f.End {
			return progErr("function %q range [%d,%d) invalid", f.Name, f.Entry, f.End)
		}
		if i > 0 && f.Entry < p.Funcs[i-1].End {
			return progErr("function %q overlaps %q", f.Name, p.Funcs[i-1].Name)
		}
		entries[f.Entry] = f
		covered += f.End - f.Entry
	}
	if covered != len(p.Code) {
		return progErr("functions cover %d of %d code words", covered, len(p.Code))
	}
	for _, f := range p.Funcs {
		if err := verifyRange(p, f); err != nil {
			return err
		}
	}
	for i, e := range p.EVT {
		fi, ok := entries[e.Target]
		if !ok {
			return progErr("EVT slot %d targets %d, not a function entry", i, e.Target)
		}
		if fi.Name != e.Callee {
			return progErr("EVT slot %d names %q but targets %q", i, e.Callee, fi.Name)
		}
	}
	// Data layout.
	var prevEnd uint64
	for _, g := range p.Globals {
		if g.Size == 0 {
			return progErr("global %q has zero size", g.Name)
		}
		if g.Base < prevEnd {
			return progErr("global %q overlaps the previous region", g.Name)
		}
		prevEnd = g.Base + g.Size
	}
	if prevEnd > p.AddrSpace {
		return progErr("globals end at %#x beyond address space %#x", prevEnd, p.AddrSpace)
	}
	return nil
}

// VerifyFragment checks a relocatable variant fragment against the program
// it will be installed into: intra-fragment branch targets stay inside the
// fragment, calls resolve into the program or the fragment, EVT slots
// exist, and sites fall inside the shared site space.
func VerifyFragment(p *Program, vr *VariantResult) error {
	lo, hi := vr.Info.Entry, vr.Info.End
	if hi-lo != len(vr.Code) {
		return progErr("fragment extent [%d,%d) does not match %d code words", lo, hi, len(vr.Code))
	}
	for i := range vr.Code {
		in := &vr.Code[i]
		switch in.Op {
		case OpBr, OpJmp:
			if in.Target < lo || in.Target >= hi {
				return progErr("fragment pc %d: branch target %d escapes [%d,%d)", lo+i, in.Target, lo, hi)
			}
		case OpCall:
			inProgram := in.Target >= 0 && in.Target < len(p.Code)
			inFragment := in.Target >= lo && in.Target < hi
			if !inProgram && !inFragment {
				return progErr("fragment pc %d: call target %d unresolvable", lo+i, in.Target)
			}
		case OpCallEVT:
			if in.EVTSlot < 0 || in.EVTSlot >= len(p.EVT) {
				return progErr("fragment pc %d: EVT slot %d out of range", lo+i, in.EVTSlot)
			}
		case OpLoad, OpStore, OpPrefetch:
			if in.Gen.Site < 0 || in.Gen.Site >= vr.NumSites {
				return progErr("fragment pc %d: site %d outside [0,%d)", lo+i, in.Gen.Site, vr.NumSites)
			}
			if err := verifyGen(in.Gen, lo+i); err != nil {
				return err
			}
		}
		if int(in.Dst) >= vr.Info.MaxReg && writesReg(in.Op) {
			return progErr("fragment pc %d: register r%d >= MaxReg %d", lo+i, in.Dst, vr.Info.MaxReg)
		}
	}
	return nil
}

func verifyRange(p *Program, f FuncInfo) error {
	for pc := f.Entry; pc < f.End; pc++ {
		in := &p.Code[pc]
		switch in.Op {
		case OpBr, OpJmp:
			if in.Target < f.Entry || in.Target >= f.End {
				return progErr("%s pc %d: branch target %d escapes [%d,%d)", f.Name, pc, in.Target, f.Entry, f.End)
			}
		case OpCall:
			if _, ok := p.FuncAt(in.Target); !ok {
				return progErr("%s pc %d: call target %d not in any function", f.Name, pc, in.Target)
			}
		case OpCallEVT:
			if in.EVTSlot < 0 || in.EVTSlot >= len(p.EVT) {
				return progErr("%s pc %d: EVT slot %d out of range", f.Name, pc, in.EVTSlot)
			}
		case OpLoad, OpStore, OpPrefetch:
			if in.Gen.Site < 0 || in.Gen.Site >= p.NumSites {
				return progErr("%s pc %d: site %d outside [0,%d)", f.Name, pc, in.Gen.Site, p.NumSites)
			}
			if err := verifyGen(in.Gen, pc); err != nil {
				return err
			}
		}
		if writesReg(in.Op) && int(in.Dst) >= f.MaxReg {
			return progErr("%s pc %d: register r%d >= MaxReg %d", f.Name, pc, in.Dst, f.MaxReg)
		}
		if readsYReg(in) && int(in.YReg) >= f.MaxReg {
			return progErr("%s pc %d: register r%d >= MaxReg %d", f.Name, pc, in.YReg, f.MaxReg)
		}
	}
	return nil
}

func verifyGen(g AddrGen, pc int) error {
	if g.Size == 0 {
		return progErr("pc %d: address generator with zero region size", pc)
	}
	switch g.Pattern {
	case 0, 1, 2, 3, 4: // ir.Seq..ir.Pin
	default:
		return progErr("pc %d: unknown address pattern %d", pc, g.Pattern)
	}
	if g.Pattern == 0 && g.Stride == 0 {
		return progErr("pc %d: sequential generator with zero stride", pc)
	}
	return nil
}

func writesReg(op Op) bool {
	switch op {
	case OpALU, OpConst, OpLoad:
		return true
	}
	return false
}

func readsYReg(in *Inst) bool {
	return in.YIsReg && (in.Op == OpALU || in.Op == OpBr || in.Op == OpStore)
}
