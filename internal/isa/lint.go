package isa

import (
	"fmt"

	"repro/internal/ir"
)

// LintProgram runs semantic checks over a lowered program that go beyond
// VerifyProgram's structural invariants. Positions use the lowered PC
// (ir.Pos with Block empty and Instr = PC). Rules and severities:
//
//	evt-slot-stale        error  an EVT slot's initial target is not the
//	                             variant-0 entry of its callee: the pristine
//	                             image would dispatch into variant code
//	call-not-entry        error  a direct call lands mid-function
//	evt-slot-unused       warn   no call site dispatches through the slot
//	mixed-dispatch        warn   a callee is reached both directly and via
//	                             the EVT: runtime retargeting would miss the
//	                             direct edges (Section III-A-1 requires every
//	                             rewritable edge to be virtualized)
//	prefetchnta-pinned    warn   a non-temporal prefetch of a pinned address
//	                             evicts the one line that is reused
//	prefetch-redundant    warn   back-to-back prefetches of the same site
//	                             with no lead distance
//	prefetch-lead-nonseq  warn   a lead distance on a non-sequential stream
//	                             has no "ahead" to warm
//
// Findings come out in PC order (rule order within one PC follows the
// checks above), so reports are deterministic.
func LintProgram(p *Program) ir.Diags {
	var ds ir.Diags

	add := func(sev ir.Severity, rule string, fn string, pc int, format string, args ...any) {
		ds = append(ds, ir.Diag{
			Sev:  sev,
			Rule: rule,
			Pos:  ir.Pos{Module: p.Name, Func: fn, Instr: pc},
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	funcName := func(pc int) string {
		if f, ok := p.FuncAt(pc); ok {
			return f.Name
		}
		return ""
	}

	// Per-slot and per-callee dispatch accounting.
	slotUsed := make([]bool, len(p.EVT))
	directCalled := make(map[int][]int) // entry PC -> call-site PCs
	for pc := range p.Code {
		in := &p.Code[pc]
		switch in.Op {
		case OpCall:
			if f, ok := p.FuncAt(in.Target); !ok || f.Entry != in.Target {
				add(ir.SevError, "call-not-entry", funcName(pc), pc,
					"direct call targets pc %d, which is not a function entry", in.Target)
			} else {
				directCalled[f.Entry] = append(directCalled[f.Entry], pc)
			}
		case OpCallEVT:
			if in.EVTSlot >= 0 && in.EVTSlot < len(slotUsed) {
				slotUsed[in.EVTSlot] = true
			}
		}
	}

	for i, e := range p.EVT {
		fi, ok := p.FuncByName(e.Callee)
		if !ok || fi.Entry != e.Target {
			add(ir.SevError, "evt-slot-stale", e.Callee, ir.NoInstr,
				"EVT slot %d for %q targets pc %d, not the static entry", i, e.Callee, e.Target)
			continue
		}
		if !slotUsed[i] {
			add(ir.SevWarn, "evt-slot-unused", e.Callee, ir.NoInstr,
				"EVT slot %d for %q has no call sites", i, e.Callee)
		}
		if sites := directCalled[fi.Entry]; len(sites) > 0 {
			add(ir.SevWarn, "mixed-dispatch", e.Callee, sites[0],
				"%q is virtualized (EVT slot %d) but %d call site(s) bypass the table",
				e.Callee, i, len(sites))
		}
	}

	// Prefetch legality and redundancy, per function so straight-line
	// adjacency never crosses a function boundary.
	for _, f := range p.Funcs {
		prevSite := -1
		for pc := f.Entry; pc < f.End; pc++ {
			in := &p.Code[pc]
			site := -1
			switch in.Op {
			case OpPrefetch:
				site = in.Gen.Site
				if in.NT && in.Gen.Pattern == ir.Pin {
					add(ir.SevWarn, "prefetchnta-pinned", f.Name, pc,
						"prefetchnta on pinned site %d: the non-temporal hint evicts a line reused every execution", in.Gen.Site)
				}
				if in.Lead != 0 && in.Gen.Pattern != ir.Seq {
					add(ir.SevWarn, "prefetch-lead-nonseq", f.Name, pc,
						"lead distance %d on %s-pattern site %d has no stream position to run ahead of", in.Lead, in.Gen.Pattern, in.Gen.Site)
				}
				if in.Lead == 0 && site == prevSite {
					add(ir.SevWarn, "prefetch-redundant", f.Name, pc,
						"prefetch repeats the previous touch of site %d with no lead distance", in.Gen.Site)
				}
			case OpLoad, OpStore:
				site = in.Gen.Site
			}
			prevSite = site
		}
	}
	return ds
}
