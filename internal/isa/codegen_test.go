package isa

import (
	"testing"

	"repro/internal/ir"
)

// testModule builds main -> {hot (loop, loads), tiny (one block)}.
func testModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("test")
	mb.Global("buf", 1<<16)
	mb.Global("tab", 1<<12)

	hot := mb.Function("hot")
	hot.Loop(100, func() {
		hot.Load(ir.Access{Global: "buf", Pattern: ir.Seq, Stride: 64})
		hot.Work(2)
	})
	hot.Return()

	tiny := mb.Function("tiny")
	tiny.Load(ir.Access{Global: "tab", Pattern: ir.Rand})
	tiny.Return()

	main := mb.Function("main")
	main.Loop(10, func() {
		main.Call("hot")
		main.Call("tiny")
	})
	main.Return()

	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// multiBlock reports whether the callee has more than one basic block —
// the paper's edge-virtualization policy.
func multiBlock(_ *ir.Module, f *ir.Function) bool { return len(f.Blocks) > 1 }

func TestLowerPlain(t *testing.T) {
	m := testModule(t)
	p, err := Lower(m, Config{})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if len(p.EVT) != 0 {
		t.Errorf("plain lowering produced %d EVT slots, want 0", len(p.EVT))
	}
	v, d := p.CountVirtualizedCalls()
	if v != 0 || d != 2 {
		t.Errorf("calls: virtualized=%d direct=%d, want 0/2", v, d)
	}
	if p.NumLoads != 2 {
		t.Errorf("NumLoads = %d, want 2", p.NumLoads)
	}
	if fi, ok := p.FuncAt(p.EntryPC); !ok || fi.Name != "main" {
		t.Errorf("FuncAt(entry) = %+v, %v", fi, ok)
	}
}

func TestLowerVirtualized(t *testing.T) {
	m := testModule(t)
	p, err := Lower(m, Config{Virtualize: multiBlock})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	// hot and main have loops (multi-block); tiny has a single block.
	// Only functions that are actually called matter for dispatch, but
	// slots exist for every multi-block function.
	if p.EVTSlotFor("hot") < 0 {
		t.Error("hot has no EVT slot")
	}
	if p.EVTSlotFor("tiny") >= 0 {
		t.Error("tiny (single block) should not be virtualized")
	}
	v, d := p.CountVirtualizedCalls()
	if v != 1 || d != 1 {
		t.Errorf("calls: virtualized=%d direct=%d, want 1/1", v, d)
	}
	// EVT initial targets must equal the static entries.
	for _, e := range p.EVT {
		fi, ok := p.FuncByName(e.Callee)
		if !ok {
			t.Fatalf("EVT references unknown function %q", e.Callee)
		}
		if e.Target != fi.Entry {
			t.Errorf("EVT[%s] target %d, want entry %d", e.Callee, e.Target, fi.Entry)
		}
	}
}

func TestLowerGlobalPlacement(t *testing.T) {
	m := testModule(t)
	p, err := Lower(m, Config{})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if len(p.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(p.Globals))
	}
	if p.Globals[0].Base == 0 {
		t.Error("first global placed at address 0")
	}
	if p.Globals[0].Base%4096 != 0 || p.Globals[1].Base%4096 != 0 {
		t.Error("globals not page aligned")
	}
	if p.Globals[1].Base < p.Globals[0].Base+p.Globals[0].Size {
		t.Error("globals overlap")
	}
	if p.AddrSpace < p.Globals[1].Base+p.Globals[1].Size {
		t.Error("AddrSpace does not cover all globals")
	}
}

func TestLowerBranchTargetsInRange(t *testing.T) {
	m := testModule(t)
	p, err := Lower(m, Config{Virtualize: multiBlock})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	for pc, in := range p.Code {
		switch in.Op {
		case OpBr, OpJmp, OpCall:
			if in.Target < 0 || in.Target >= len(p.Code) {
				t.Errorf("pc %d (%s): target %d out of range", pc, in, in.Target)
			}
		case OpCallEVT:
			if in.EVTSlot < 0 || in.EVTSlot >= len(p.EVT) {
				t.Errorf("pc %d: EVT slot %d out of range", pc, in.EVTSlot)
			}
		}
	}
	// Every branch target inside a function must stay in that function.
	for _, fi := range p.Funcs {
		for pc := fi.Entry; pc < fi.End; pc++ {
			in := p.Code[pc]
			if in.Op == OpBr || in.Op == OpJmp {
				if in.Target < fi.Entry || in.Target >= fi.End {
					t.Errorf("%s pc %d: branch escapes function to %d", fi.Name, pc, in.Target)
				}
			}
		}
	}
}

func TestLowerSitesDense(t *testing.T) {
	m := testModule(t)
	p, err := Lower(m, Config{})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	seen := make(map[int]bool)
	for _, in := range p.Code {
		switch in.Op {
		case OpLoad, OpStore, OpPrefetch:
			// MemIDs (and therefore sites) are 1-based; 0 is reserved.
			if in.Gen.Site < 1 || in.Gen.Site >= p.NumSites {
				t.Errorf("site %d out of range [1,%d)", in.Gen.Site, p.NumSites)
			}
			if seen[in.Gen.Site] {
				t.Errorf("site %d assigned twice", in.Gen.Site)
			}
			seen[in.Gen.Site] = true
		}
	}
	if len(seen) != p.NumSites-1 {
		t.Errorf("found %d sites, NumSites=%d (want dense 1-based)", len(seen), p.NumSites)
	}
}

func TestLowerNTLoadEmitsPrefetch(t *testing.T) {
	mb := ir.NewModuleBuilder("nt")
	mb.Global("g", 4096)
	fb := mb.Function("main")
	fb.Load(ir.Access{Global: "g", Pattern: ir.Seq})
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()

	m.Loads()[0].NT = true
	p, err := Lower(m, Config{})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	var sawPrefetch, sawNTLoad bool
	for i, in := range p.Code {
		if in.Op == OpPrefetch && in.NT {
			sawPrefetch = true
			if i+1 < len(p.Code) && p.Code[i+1].Op == OpLoad {
				if !p.Code[i+1].NT {
					t.Error("load after prefetchnta not flagged NT")
				}
				sawNTLoad = true
			}
		}
	}
	if !sawPrefetch || !sawNTLoad {
		t.Errorf("prefetchnta+NT load pair not emitted: prefetch=%v load=%v", sawPrefetch, sawNTLoad)
	}
}

func TestNTVariantAddsOnlyNonBranchInstrs(t *testing.T) {
	m := testModule(t)
	plain, err := Lower(m, Config{Virtualize: multiBlock})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	mNT := m.Clone()
	for _, ld := range mNT.Loads() {
		ld.NT = true
	}
	nt, err := Lower(mNT, Config{Virtualize: multiBlock})
	if err != nil {
		t.Fatalf("Lower NT: %v", err)
	}
	branches := func(p *Program) int {
		n := 0
		for _, in := range p.Code {
			switch in.Op {
			case OpBr, OpJmp, OpCall, OpCallEVT, OpRet:
				n++
			}
		}
		return n
	}
	if branches(plain) != branches(nt) {
		t.Errorf("static branch count changed: %d vs %d", branches(plain), branches(nt))
	}
	if len(nt.Code) != len(plain.Code)+2 {
		t.Errorf("NT version adds %d instructions, want 2 (one per load)", len(nt.Code)-len(plain.Code))
	}
}

func TestLowerVariantLinksAgainstProgram(t *testing.T) {
	m := testModule(t)
	p, err := Lower(m, Config{Virtualize: multiBlock})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	// Transform a clone: flip all loads in "hot" to NT.
	clone := m.Clone()
	for _, f := range clone.Funcs {
		if f.Name != "hot" {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ld, ok := in.(*ir.Load); ok {
					ld.NT = true
				}
			}
		}
	}
	basePC := len(p.Code) + 100
	vr, err := LowerVariant(p, clone, "hot", 1, basePC)
	if err != nil {
		t.Fatalf("LowerVariant: %v", err)
	}
	if vr.Info.Entry != basePC || vr.Info.End != basePC+len(vr.Code) {
		t.Errorf("variant extent [%d,%d) inconsistent with basePC %d len %d",
			vr.Info.Entry, vr.Info.End, basePC, len(vr.Code))
	}
	if vr.Info.Variant != 1 || vr.Info.Name != "hot" {
		t.Errorf("variant info = %+v", vr.Info)
	}
	if vr.NumSites == 0 {
		t.Error("variant introduced no memory sites")
	}
	// All intra-variant branches must stay inside the fragment.
	for i, in := range vr.Code {
		if in.Op == OpBr || in.Op == OpJmp {
			if in.Target < basePC || in.Target >= basePC+len(vr.Code) {
				t.Errorf("variant inst %d: branch target %d escapes fragment", i, in.Target)
			}
		}
		// Variant memory sites must be the *same* stable MemID sites as the
		// original program's (shared cursor state), never fresh ones.
		if in.Op == OpLoad || in.Op == OpStore || in.Op == OpPrefetch {
			if in.Gen.Site < 0 || in.Gen.Site >= p.NumSites {
				t.Errorf("variant site %d outside program sites [0,%d)", in.Gen.Site, p.NumSites)
			}
		}
	}
	// The variant's NT load must carry the same site as the original hot
	// load in the program.
	var origSite = -1
	for _, in := range p.Code {
		if in.Op == OpLoad && in.Gen.Pattern == ir.Seq {
			origSite = in.Gen.Site
		}
	}
	foundNT := false
	for _, in := range vr.Code {
		if in.Op == OpLoad && in.NT {
			foundNT = true
			if in.Gen.Site != origSite {
				t.Errorf("variant NT load site %d, want original's %d", in.Gen.Site, origSite)
			}
		}
	}
	if !foundNT {
		t.Error("variant has no NT loads despite transformation")
	}
}

func TestLowerVariantUnknownFunction(t *testing.T) {
	m := testModule(t)
	p, err := Lower(m, Config{})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if _, err := LowerVariant(p, m, "missing", 1, 0); err == nil {
		t.Fatal("LowerVariant accepted unknown function")
	}
}

func TestInstStrings(t *testing.T) {
	ins := []Inst{
		{Op: OpALU, Dst: 1, X: 2, Bin: ir.Add, YImm: 3},
		{Op: OpConst, Dst: 0, YImm: 7},
		{Op: OpLoad, Dst: 2, Gen: AddrGen{Site: 5}},
		{Op: OpPrefetch, NT: true, Gen: AddrGen{Site: 1}},
		{Op: OpBr, X: 1, Cmp: ir.Lt, YImm: 10, Target: 4},
		{Op: OpCallEVT, EVTSlot: 2},
		{Op: OpRet},
	}
	for _, in := range ins {
		if in.String() == "?" || in.String() == "" {
			t.Errorf("bad String for %v: %q", in.Op, in.String())
		}
	}
}
