package isa

import (
	"errors"
	"testing"

	"repro/internal/ir"
)

func verified(t *testing.T) *Program {
	t.Helper()
	p, err := Lower(testModule(t), Config{Virtualize: multiBlock})
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if err := VerifyProgram(p); err != nil {
		t.Fatalf("VerifyProgram on fresh lowering: %v", err)
	}
	return p
}

func TestVerifyProgramAcceptsLowered(t *testing.T) {
	verified(t)
}

func TestVerifyProgramCatchesCorruption(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"entry out of range", func(p *Program) { p.EntryPC = len(p.Code) + 5 }},
		{"branch escapes function", func(p *Program) {
			for pc := range p.Code {
				if p.Code[pc].Op == OpBr {
					p.Code[pc].Target = len(p.Code) - 1
					return
				}
			}
			t.Fatal("no branch found")
		}},
		{"call into mid-function", func(p *Program) {
			for pc := range p.Code {
				if p.Code[pc].Op == OpCall {
					p.Code[pc].Target = p.Funcs[0].Entry + 1<<20
					return
				}
			}
			t.Skip("no direct call in this lowering")
		}},
		{"EVT slot out of range", func(p *Program) {
			for pc := range p.Code {
				if p.Code[pc].Op == OpCallEVT {
					p.Code[pc].EVTSlot = 99
					return
				}
			}
			t.Fatal("no EVT call found")
		}},
		{"EVT target not an entry", func(p *Program) { p.EVT[0].Target++ }},
		{"site out of range", func(p *Program) {
			for pc := range p.Code {
				if p.Code[pc].Op == OpLoad {
					p.Code[pc].Gen.Site = p.NumSites + 3
					return
				}
			}
			t.Fatal("no load found")
		}},
		{"register beyond frame", func(p *Program) {
			for fi := range p.Funcs {
				f := &p.Funcs[fi]
				for pc := f.Entry; pc < f.End; pc++ {
					if p.Code[pc].Op == OpConst {
						p.Code[pc].Dst = uint16(f.MaxReg + 7)
						return
					}
				}
			}
			t.Fatal("no const found")
		}},
		{"zero-size generator", func(p *Program) {
			for pc := range p.Code {
				if p.Code[pc].Op == OpLoad {
					p.Code[pc].Gen.Size = 0
					return
				}
			}
		}},
		{"overlapping globals", func(p *Program) {
			if len(p.Globals) < 2 {
				t.Skip("one global only")
			}
			p.Globals[1].Base = p.Globals[0].Base
		}},
		{"function overlap", func(p *Program) { p.Funcs[1].Entry-- }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			p := verified(t)
			m.mutate(p)
			err := VerifyProgram(p)
			if err == nil {
				t.Fatal("verification passed on corrupted program")
			}
			if !errors.Is(err, ErrBadProgram) {
				t.Errorf("error %v does not wrap ErrBadProgram", err)
			}
		})
	}
}

func TestVerifyFragment(t *testing.T) {
	p := verified(t)
	clone := testModule(t).Clone()
	for _, ld := range clone.Loads() {
		ld.NT = true
	}
	base := len(p.Code) + 64
	vr, err := LowerVariant(p, clone, "hot", 1, base)
	if err != nil {
		t.Fatalf("LowerVariant: %v", err)
	}
	if err := VerifyFragment(p, vr); err != nil {
		t.Fatalf("VerifyFragment on fresh variant: %v", err)
	}
	// Corrupt a branch.
	for i := range vr.Code {
		if vr.Code[i].Op == OpBr {
			vr.Code[i].Target = 0
			break
		}
	}
	if err := VerifyFragment(p, vr); err == nil {
		t.Fatal("fragment verification passed with escaping branch")
	}
}

func TestVerifyProgramEmpty(t *testing.T) {
	if err := VerifyProgram(&Program{}); err == nil {
		t.Fatal("empty program verified")
	}
	_ = ir.Seq // keep the import for pattern constants used implicitly
}
