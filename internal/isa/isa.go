// Package isa defines the simulated machine instruction set that protean
// binaries execute on, and the code generator that lowers IR to it.
//
// The ISA stands in for x86-64 in the paper. It is deliberately small but
// carries everything the evaluation depends on:
//
//   - ALU/const/branch instructions with real control-flow semantics (loop
//     trip counts execute for real, so instruction and branch counts are
//     honest),
//   - loads/stores with address-generator operands that the machine turns
//     into concrete address streams against a shared cache hierarchy,
//   - a PREFETCH instruction with a non-temporal flag (the prefetchnta
//     analog) plus an NT flag on loads,
//   - direct calls and EVT-indirect calls. The latter are the virtualized
//     edges of Section III-A-1: they dispatch through a mutable Edge
//     Virtualization Table slot, which is how the runtime reroutes execution
//     to new code variants without stopping the program.
package isa

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Op enumerates machine opcodes.
type Op uint8

// Machine opcodes.
const (
	// OpALU computes Dst = X <bin> Y.
	OpALU Op = iota
	// OpConst sets Dst = Imm.
	OpConst
	// OpLoad reads through the address generator into Dst.
	OpLoad
	// OpStore writes through the address generator.
	OpStore
	// OpPrefetch touches the stream without stalling.
	OpPrefetch
	// OpBr branches to Target when X <cmp> Y holds, else falls through.
	OpBr
	// OpJmp branches unconditionally to Target.
	OpJmp
	// OpCall pushes a frame and jumps to Target (a function entry PC).
	OpCall
	// OpCallEVT pushes a frame and jumps to the PC stored in EVT slot
	// EVTSlot. This is a virtualized edge.
	OpCallEVT
	// OpRet pops a frame.
	OpRet
	// OpHalt stops the program (end of the entry function).
	OpHalt
)

var opNames = [...]string{
	"alu", "const", "load", "store", "prefetch",
	"br", "jmp", "call", "callevt", "ret", "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// AddrGen is the resolved address-stream descriptor of one static memory
// instruction: the ir.Access with the global bound to a concrete base/size.
type AddrGen struct {
	// Base is the region's base address in the program's address space.
	Base uint64
	// Size is the region size in bytes.
	Size uint64
	// Pattern, Stride, HotBytes mirror ir.Access with defaults applied.
	Pattern  ir.Pattern
	Stride   uint64
	HotBytes uint64
	// Site is the module-unique memory-site index; the machine keeps
	// per-site cursor state (sequential position, chase pointer) there.
	Site int
}

// Inst is one machine instruction.
type Inst struct {
	Op  Op
	Dst uint16
	X   uint16
	// Y operand: register (YIsReg) or immediate.
	YIsReg bool
	YReg   uint16
	YImm   int64

	Bin ir.BinKind
	Cmp ir.CmpKind

	// Target is the branch/jump/call destination PC.
	Target int
	// EVTSlot indexes the Edge Virtualization Table for OpCallEVT.
	EVTSlot int

	// Gen is the address generator for memory ops.
	Gen AddrGen
	// LoadID is the static IR load site for OpLoad (-1 otherwise).
	LoadID int
	// NT flags a non-temporal load or prefetch.
	NT bool
	// Lead, for OpPrefetch, warms Lead bytes ahead of the site's stream
	// position without advancing it (runtime software prefetching).
	Lead int64
}

func (in Inst) String() string {
	switch in.Op {
	case OpALU:
		return fmt.Sprintf("r%d = %s r%d, %s", in.Dst, in.Bin, in.X, in.yString())
	case OpConst:
		return fmt.Sprintf("r%d = %d", in.Dst, in.YImm)
	case OpLoad:
		nt := ""
		if in.NT {
			nt = " !nt"
		}
		return fmt.Sprintf("r%d = load site%d%s", in.Dst, in.Gen.Site, nt)
	case OpStore:
		return fmt.Sprintf("store %s, site%d", in.yString(), in.Gen.Site)
	case OpPrefetch:
		nt := ""
		if in.NT {
			nt = "nta"
		}
		return fmt.Sprintf("prefetch%s site%d", nt, in.Gen.Site)
	case OpBr:
		return fmt.Sprintf("br r%d %s %s -> %d", in.X, in.Cmp, in.yString(), in.Target)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Target)
	case OpCall:
		return fmt.Sprintf("call %d", in.Target)
	case OpCallEVT:
		return fmt.Sprintf("call [evt+%d]", in.EVTSlot)
	case OpRet:
		return "ret"
	case OpHalt:
		return "halt"
	}
	return "?"
}

func (in Inst) yString() string {
	if in.YIsReg {
		return fmt.Sprintf("r%d", in.YReg)
	}
	return fmt.Sprintf("%d", in.YImm)
}

// BlockInfo records the PC extent of one lowered basic block. Entry/End
// are absolute PCs delimiting the half-open range [Entry, End).
type BlockInfo struct {
	// Name is the IR block name; variants of a function keep the original
	// block names, so block-level profiles aggregate across variants.
	Name string
	// Entry and End delimit the half-open PC range [Entry, End).
	Entry int
	End   int
}

// FuncInfo records the PC extent of one lowered function, used for PC-sample
// attribution and as EVT dispatch targets.
type FuncInfo struct {
	// Name is the IR function name. Variant code reuses the original name
	// so samples attribute to the logical function.
	Name string
	// Variant tags which code variant this body is: 0 for the original
	// static code, >0 for runtime-generated variants.
	Variant int
	// Entry and End delimit the half-open PC range [Entry, End).
	Entry int
	End   int
	// MaxReg sizes the register frame.
	MaxReg int
	// Blocks lists the function's basic-block PC extents in layout order
	// (contiguous, covering [Entry, End)). Empty for binaries serialized
	// before block metadata existed; sample attribution then degrades to
	// function granularity.
	Blocks []BlockInfo
}

// BlockAt returns the index in Blocks of the block containing pc, or -1
// when pc is outside the function or block metadata is absent.
func (f FuncInfo) BlockAt(pc int) int {
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Entry > pc })
	if i == 0 {
		return -1
	}
	if b := f.Blocks[i-1]; pc < b.End {
		return i - 1
	}
	return -1
}

// GlobalInfo records the placement of one data region.
type GlobalInfo struct {
	Name string
	Base uint64
	Size uint64
}

// EVTEntry is one Edge Virtualization Table slot: a virtualized callee and
// the PC its calls currently dispatch to. The paper stores (source, target)
// address pairs; a slot per callee is equivalent because every virtualized
// call to the same callee shares a target.
type EVTEntry struct {
	// Callee is the IR function name this slot dispatches for.
	Callee string
	// Target is the current dispatch PC (initially the static entry).
	Target int
}

// Program is a lowered module: the simulated "text section" plus the
// metadata codegen produces.
type Program struct {
	Name string
	Code []Inst
	// Funcs is ordered by Entry PC; Funcs[0] need not be the entry function.
	Funcs []FuncInfo
	// EntryPC is the PC of the module entry function.
	EntryPC int
	Globals []GlobalInfo
	// EVT is the initial Edge Virtualization Table image.
	EVT []EVTEntry
	// NumSites is the number of static memory sites (loads, stores, and
	// prefetches each get a site).
	NumSites int
	// NumLoads mirrors the IR module's static load count.
	NumLoads int
	// AddrSpace is one past the highest global address; per-core address
	// offsets must exceed it.
	AddrSpace uint64
}

// FuncByName returns the first (original) FuncInfo with the given name.
func (p *Program) FuncByName(name string) (FuncInfo, bool) {
	for _, f := range p.Funcs {
		if f.Name == name && f.Variant == 0 {
			return f, true
		}
	}
	return FuncInfo{}, false
}

// FuncAt returns the function containing pc. Linear scan is fine for the
// program sizes the simulation uses; the machine caches lookups.
func (p *Program) FuncAt(pc int) (FuncInfo, bool) {
	for _, f := range p.Funcs {
		if pc >= f.Entry && pc < f.End {
			return f, true
		}
	}
	return FuncInfo{}, false
}

// EVTSlotFor returns the EVT slot index dispatching to callee, or -1.
func (p *Program) EVTSlotFor(callee string) int {
	for i, e := range p.EVT {
		if e.Callee == callee {
			return i
		}
	}
	return -1
}

// CountVirtualizedCalls reports how many static call sites go through the
// EVT versus directly.
func (p *Program) CountVirtualizedCalls() (virtualized, direct int) {
	for _, in := range p.Code {
		switch in.Op {
		case OpCallEVT:
			virtualized++
		case OpCall:
			direct++
		}
	}
	return virtualized, direct
}
