package isa

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Config controls lowering.
type Config struct {
	// Virtualize decides whether call edges to callee are lowered through
	// the EVT. nil lowers every call directly (a plain, non-protean binary).
	Virtualize func(m *ir.Module, callee *ir.Function) bool
	// PageSize aligns global placement; 0 defaults to 4096.
	PageSize uint64
}

// Lower compiles a finalized module to a Program.
func Lower(m *ir.Module, cfg Config) (*Program, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("isa: lower %q: %w", m.Name, err)
	}
	page := cfg.PageSize
	if page == 0 {
		page = 4096
	}

	p := &Program{Name: m.Name, NumLoads: m.NumLoads}

	// Place globals page-aligned starting one page in (address 0 stays
	// unmapped, as on a real machine).
	addr := page
	globalInfo := make(map[string]GlobalInfo, len(m.Globals))
	for _, g := range m.Globals {
		gi := GlobalInfo{Name: g.Name, Base: addr, Size: uint64(g.Size)}
		p.Globals = append(p.Globals, gi)
		globalInfo[g.Name] = gi
		addr += (uint64(g.Size) + page - 1) / page * page
	}
	p.AddrSpace = addr

	// Decide the virtualized callee set and assign EVT slots (sorted for
	// determinism).
	virt := make(map[string]bool)
	if cfg.Virtualize != nil {
		for _, f := range m.Funcs {
			if cfg.Virtualize(m, f) {
				virt[f.Name] = true
			}
		}
	}
	var virtNames []string
	for name := range virt {
		virtNames = append(virtNames, name)
	}
	sort.Strings(virtNames)
	evtSlot := make(map[string]int, len(virtNames))
	for i, name := range virtNames {
		evtSlot[name] = i
		p.EVT = append(p.EVT, EVTEntry{Callee: name})
	}

	env := &lowerEnv{globals: globalInfo, evtSlot: evtSlot}

	// Lower each function, collecting call fixups resolved once all
	// entries are known.
	entries := make(map[string]int, len(m.Funcs))
	for _, f := range m.Funcs {
		entry := len(p.Code)
		code, blocks, err := env.lowerFunc(m, f, entry)
		if err != nil {
			return nil, err
		}
		p.Code = append(p.Code, code...)
		p.Funcs = append(p.Funcs, FuncInfo{
			Name: f.Name, Entry: entry, End: len(p.Code), MaxReg: f.MaxReg,
			Blocks: blocks,
		})
		entries[f.Name] = entry
	}
	for _, fx := range env.callFixups {
		target, ok := entries[fx.callee]
		if !ok {
			return nil, fmt.Errorf("isa: lower %q: call to unlowered function %q", m.Name, fx.callee)
		}
		p.Code[fx.pc].Target = target
	}
	for i := range p.EVT {
		p.EVT[i].Target = entries[p.EVT[i].Callee]
	}
	// MemIDs are 1-based; slot 0 of the site-state array stays unused.
	p.NumSites = m.NumMemSites + 1
	p.EntryPC = entries[m.EntryFn]
	return p, nil
}

// VariantResult is the output of LowerVariant: a relocatable code fragment
// for one transformed function.
type VariantResult struct {
	// Code has branch targets already rebased to BasePC.
	Code []Inst
	// Info describes the fragment (Entry == BasePC).
	Info FuncInfo
	// NumSites is the module's total memory-site count. Variant memory
	// instructions carry the stable MemID sites of the IR they were lowered
	// from, so the fragment shares address-stream cursor state with the
	// original code — a re-dispatched variant resumes each stream where the
	// previous code version left off.
	NumSites int
}

// LowerVariant lowers a single function fn from module m (typically a
// transformed clone of the embedded IR) as a code-cache fragment for an
// existing program p.
//
// The fragment is linked against p's layout: globals resolve to p's
// placements, calls to virtualized callees go through p's existing EVT
// slots, and calls to non-virtualized functions target their original
// static entries. basePC is where the fragment will be placed (the machine's
// code cache cursor).
func LowerVariant(p *Program, m *ir.Module, fn string, variant, basePC int) (*VariantResult, error) {
	f := m.Func(fn)
	if f == nil {
		return nil, fmt.Errorf("isa: variant of %q: function not in module", fn)
	}
	globalInfo := make(map[string]GlobalInfo, len(p.Globals))
	for _, gi := range p.Globals {
		globalInfo[gi.Name] = gi
	}
	evtSlot := make(map[string]int, len(p.EVT))
	for i, e := range p.EVT {
		evtSlot[e.Callee] = i
	}
	env := &lowerEnv{globals: globalInfo, evtSlot: evtSlot}
	code, blocks, err := env.lowerFunc(m, f, basePC)
	if err != nil {
		return nil, err
	}
	for _, fx := range env.callFixups {
		fi, ok := p.FuncByName(fx.callee)
		if !ok {
			return nil, fmt.Errorf("isa: variant of %q: call to unknown function %q", fn, fx.callee)
		}
		code[fx.pc-basePC].Target = fi.Entry
	}
	return &VariantResult{
		Code: code,
		Info: FuncInfo{
			Name: fn, Variant: variant,
			Entry: basePC, End: basePC + len(code), MaxReg: f.MaxReg,
			Blocks: blocks,
		},
		NumSites: m.NumMemSites + 1,
	}, nil
}

type callFixup struct {
	pc     int // absolute PC of the OpCall instruction
	callee string
}

type lowerEnv struct {
	globals    map[string]GlobalInfo
	evtSlot    map[string]int
	callFixups []callFixup
}

func (env *lowerEnv) gen(a ir.Access, memID int) (AddrGen, error) {
	gi, ok := env.globals[a.Global]
	if !ok {
		return AddrGen{}, fmt.Errorf("isa: access to unplaced global %q", a.Global)
	}
	stride := uint64(a.Stride)
	if stride == 0 {
		stride = 8
	}
	hot := uint64(a.HotBytes)
	if hot == 0 {
		hot = 4096
	}
	if hot > gi.Size {
		hot = gi.Size
	}
	return AddrGen{
		Base: gi.Base, Size: gi.Size,
		Pattern: a.Pattern, Stride: stride, HotBytes: hot,
		Site: memID,
	}, nil
}

// lowerFunc emits the function's code with all branch targets absolute,
// assuming the first instruction lands at basePC. It also returns the
// per-block PC extents (absolute, in layout order) for sample attribution.
func (env *lowerEnv) lowerFunc(m *ir.Module, f *ir.Function, basePC int) ([]Inst, []BlockInfo, error) {
	var code []Inst
	blockPC := make([]int, len(f.Blocks))
	type branchFixup struct {
		pc    int // index into code (relative)
		block int // target block index
	}
	var fixups []branchFixup

	for bi, b := range f.Blocks {
		blockPC[bi] = len(code)
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *ir.BinOp:
				mi := Inst{Op: OpALU, Dst: uint16(in.Dst), Bin: in.Op, LoadID: -1}
				// The ISA's ALU form is Dst = Xreg <op> Y; materialize an
				// immediate X through a const into the destination first.
				if in.X.IsReg {
					mi.X = uint16(in.X.Reg)
				} else {
					code = append(code, Inst{Op: OpConst, Dst: uint16(in.Dst), YImm: in.X.Imm, LoadID: -1})
					mi.X = uint16(in.Dst)
				}
				if in.Y.IsReg {
					mi.YIsReg = true
					mi.YReg = uint16(in.Y.Reg)
				} else {
					mi.YImm = in.Y.Imm
				}
				code = append(code, mi)
			case *ir.Const:
				code = append(code, Inst{Op: OpConst, Dst: uint16(in.Dst), YImm: in.Value, LoadID: -1})
			case *ir.Load:
				g, err := env.gen(in.Acc, in.MemID)
				if err != nil {
					return nil, nil, fmt.Errorf("function %q: %w", f.Name, err)
				}
				if in.NT {
					// A non-temporal hint lowers to prefetchnta followed by
					// the load, exactly as in Figure 2: one extra issue slot,
					// and the load's fill is tagged non-temporal.
					code = append(code, Inst{Op: OpPrefetch, Gen: g, NT: true, LoadID: -1})
				}
				code = append(code, Inst{
					Op: OpLoad, Dst: uint16(in.Dst), Gen: g, LoadID: in.ID, NT: in.NT,
				})
			case *ir.Store:
				g, err := env.gen(in.Acc, in.MemID)
				if err != nil {
					return nil, nil, fmt.Errorf("function %q: %w", f.Name, err)
				}
				mi := Inst{Op: OpStore, Gen: g, LoadID: -1}
				if in.Val.IsReg {
					mi.YIsReg = true
					mi.YReg = uint16(in.Val.Reg)
				} else {
					mi.YImm = in.Val.Imm
				}
				code = append(code, mi)
			case *ir.Prefetch:
				g, err := env.gen(in.Acc, in.MemID)
				if err != nil {
					return nil, nil, fmt.Errorf("function %q: %w", f.Name, err)
				}
				code = append(code, Inst{Op: OpPrefetch, Gen: g, NT: in.NT, Lead: in.Lead, LoadID: -1})
			case *ir.Call:
				if slot, ok := env.evtSlot[in.Callee]; ok {
					code = append(code, Inst{Op: OpCallEVT, EVTSlot: slot, LoadID: -1})
				} else {
					env.callFixups = append(env.callFixups, callFixup{pc: basePC + len(code), callee: in.Callee})
					code = append(code, Inst{Op: OpCall, LoadID: -1})
				}
			default:
				return nil, nil, fmt.Errorf("isa: function %q: unknown instruction %T", f.Name, in)
			}
		}
		switch t := b.Term.(type) {
		case *ir.Jump:
			fixups = append(fixups, branchFixup{pc: len(code), block: t.Target.Index})
			code = append(code, Inst{Op: OpJmp, LoadID: -1})
		case *ir.Branch:
			mi := Inst{Op: OpBr, X: uint16(t.X), Cmp: t.Cmp, LoadID: -1}
			if t.Y.IsReg {
				mi.YIsReg = true
				mi.YReg = uint16(t.Y.Reg)
			} else {
				mi.YImm = t.Y.Imm
			}
			fixups = append(fixups, branchFixup{pc: len(code), block: t.True.Index})
			code = append(code, mi)
			// Fall through when the false target is the next block in
			// layout order; otherwise emit an explicit jump.
			if bi+1 >= len(f.Blocks) || f.Blocks[bi+1] != t.False {
				fixups = append(fixups, branchFixup{pc: len(code), block: t.False.Index})
				code = append(code, Inst{Op: OpJmp, LoadID: -1})
			}
		case *ir.Return:
			code = append(code, Inst{Op: OpRet, LoadID: -1})
		default:
			return nil, nil, fmt.Errorf("isa: function %q block %q: unknown terminator %T", f.Name, b.Name, t)
		}
	}
	for _, fx := range fixups {
		code[fx.pc].Target = basePC + blockPC[fx.block]
	}
	blocks := make([]BlockInfo, len(f.Blocks))
	for bi, b := range f.Blocks {
		end := len(code)
		if bi+1 < len(f.Blocks) {
			end = blockPC[bi+1]
		}
		blocks[bi] = BlockInfo{Name: b.Name, Entry: basePC + blockPC[bi], End: basePC + end}
	}
	return code, blocks, nil
}
