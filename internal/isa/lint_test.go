package isa_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/ir/irtext"
	"repro/internal/isa"
)

// lowerSrc parses and lowers a textual module with every callee
// virtualized, returning a fresh program per call so tests can mutate it.
func lowerSrc(t *testing.T, src string) *isa.Program {
	t.Helper()
	m, err := irtext.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := isa.Lower(m, isa.Config{
		Virtualize: func(m *ir.Module, f *ir.Function) bool { return f.Name != m.EntryFn },
	})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

const callSrc = `
module calls
entry main
global buf 65536
func main {
  entry:
    call @helper
    ret
}
func helper {
  entry:
    r1 = load buf[seq stride=64]
    store r1, buf[seq stride=64]
    ret
}
`

func lintRules(ds ir.Diags) map[string]int {
	out := make(map[string]int)
	for _, d := range ds {
		out[d.Rule]++
	}
	return out
}

func TestLintProgramClean(t *testing.T) {
	p := lowerSrc(t, callSrc)
	if ds := isa.LintProgram(p); len(ds) != 0 {
		t.Fatalf("clean program produced findings: %v", ds)
	}
}

func TestLintEVTSlotStale(t *testing.T) {
	p := lowerSrc(t, callSrc)
	p.EVT[0].Target++ // point the slot past the callee's entry
	ds := isa.LintProgram(p)
	if lintRules(ds)["evt-slot-stale"] != 1 {
		t.Fatalf("want one evt-slot-stale error, got %v", ds)
	}
	if ds.Errors() != 1 {
		t.Fatalf("stale slot must be error severity: %v", ds)
	}
}

func TestLintDirectCallBypassesEVT(t *testing.T) {
	p := lowerSrc(t, callSrc)
	// Devirtualize the call site by hand: the slot loses its only user and
	// the callee gains a direct edge the runtime cannot retarget.
	rewrote := false
	fi, _ := p.FuncByName("helper")
	for pc := range p.Code {
		if p.Code[pc].Op == isa.OpCallEVT {
			p.Code[pc] = isa.Inst{Op: isa.OpCall, Target: fi.Entry}
			rewrote = true
		}
	}
	if !rewrote {
		t.Fatal("no OpCallEVT found to rewrite")
	}
	got := lintRules(isa.LintProgram(p))
	if got["evt-slot-unused"] != 1 || got["mixed-dispatch"] != 1 {
		t.Fatalf("want evt-slot-unused + mixed-dispatch, got %v", got)
	}
}

func TestLintCallNotEntry(t *testing.T) {
	p := lowerSrc(t, callSrc)
	fi, _ := p.FuncByName("helper")
	for pc := range p.Code {
		if p.Code[pc].Op == isa.OpCallEVT {
			p.Code[pc] = isa.Inst{Op: isa.OpCall, Target: fi.Entry + 1}
		}
	}
	ds := isa.LintProgram(p)
	d := ds[0]
	if d.Rule != "call-not-entry" || d.Sev != ir.SevError {
		t.Fatalf("want call-not-entry error first, got %v", ds)
	}
	if !strings.Contains(d.Pos.String(), "pc #") {
		t.Errorf("ISA finding should locate by pc: %s", d)
	}
}

func TestLintPrefetchRules(t *testing.T) {
	p := lowerSrc(t, `
module pf
entry main
global buf 1048576
func main {
  entry:
    prefetch buf[pin] !nt
    prefetch buf[rand] lead=8
    r1 = load buf[seq stride=64]
    store r1, buf[seq stride=64]
    ret
}
`)
	got := lintRules(isa.LintProgram(p))
	if got["prefetchnta-pinned"] != 1 {
		t.Errorf("want prefetchnta-pinned, got %v", got)
	}
	if got["prefetch-lead-nonseq"] != 1 {
		t.Errorf("want prefetch-lead-nonseq, got %v", got)
	}
}

func TestLintPrefetchRedundant(t *testing.T) {
	p := lowerSrc(t, `
module pf2
entry main
global buf 1048576
func main {
  entry:
    prefetch buf[seq stride=64]
    prefetch buf[seq stride=64]
    r1 = load buf[seq stride=64]
    store r1, buf[seq stride=64]
    ret
}
`)
	// Distinct textual prefetches lower to distinct sites; collapse them to
	// model a transform pass that duplicated a touch.
	var first *isa.Inst
	for pc := range p.Code {
		if p.Code[pc].Op != isa.OpPrefetch {
			continue
		}
		if first == nil {
			first = &p.Code[pc]
			continue
		}
		p.Code[pc].Gen = first.Gen
	}
	got := lintRules(isa.LintProgram(p))
	if got["prefetch-redundant"] != 1 {
		t.Fatalf("want one prefetch-redundant, got %v", got)
	}
}
