// Package faults is a seeded, deterministic fault-injection framework.
//
// The paper's central safety claim is that protean code is near-free *and
// safe to abandon*: a crashed or detached runtime leaves the host executing
// its original static code, and any dispatched variant can be revoked with
// one atomic EVT write (Section III-B). Exercising that claim requires
// failures — compile jobs that die, runtimes that crash mid-search, QoS
// sensors that go dark, whole servers that fall over — injected *without*
// sacrificing the simulator's reproducibility contract (bit-identical fleet
// metrics at any worker count under a fixed seed).
//
// Every fault decision here is therefore a pure function of
// (seed, server, site): a splitmix64-style hash of the fault domain, the
// server index, and a position (cycle quantum, compile-job sequence number,
// dropout window index) is compared against the configured rate. No state,
// no shared RNG streams, no dependence on execution interleaving: two
// simulations of the same server under the same Chaos config see the exact
// same fault schedule regardless of what any other goroutine does.
package faults

import (
	"fmt"
)

// Chaos configures fault injection across the stack. The zero value (and a
// nil *Chaos) injects nothing.
type Chaos struct {
	// Seed drives every fault schedule. Fleet runs default it to the fleet
	// seed so one -seed flag pins both placement and failures.
	Seed int64

	// ServerCrashProb is the probability a given server crashes at a
	// uniform-random point during the run (whole-machine failure: the
	// webservice, batch instance and runtime all stop).
	ServerCrashProb float64
	// RestartDelaySeconds is the cluster scheduler's reaction time: how long
	// after a crash the victim's batch instance is re-placed on a surviving
	// server (default 0.5).
	RestartDelaySeconds float64

	// CompileFailProb is the per-compile-job failure probability inside the
	// protean runtime (the job burns its modeled latency, then reports an
	// error instead of a variant).
	CompileFailProb float64

	// RuntimeCrashMTTFSeconds is the mean time to failure of the protean
	// runtime process itself (0 = never crashes). Crashes follow a
	// geometric-per-quantum schedule with this mean.
	RuntimeCrashMTTFSeconds float64

	// QoSDropoutProb is the probability that any given sensor window of
	// QoSDropoutSeconds goes dark (the QoS source reports no data — or NaN,
	// see QoSDropoutNaN — for the whole window).
	QoSDropoutProb float64
	// QoSDropoutSeconds is the dropout window length (default 0.2).
	QoSDropoutSeconds float64
	// QoSDropoutNaN makes dark windows report NaN readings claimed as valid
	// (a corrupted sensor) instead of reporting absence (a dead sensor).
	// Policies must survive both.
	QoSDropoutNaN bool

	// Migration fault domain: faults inside the live-migration machinery
	// itself, so the fleet's move path has to be transactional rather than
	// assume detach/land always succeed. Every decision is a pure hash of
	// (seed, domain, server, move-sequence), same contract as above.

	// MoveDetachFailProb is the probability a planned move fails before the
	// source detaches its instance (the move aborts in place; the instance
	// never leaves the source).
	MoveDetachFailProb float64
	// MoveLandFailProb is the per-attempt probability a landing fails at
	// its destination (the destination refuses the instance; the
	// coordinator retries the next eligible destination or rolls back).
	MoveLandFailProb float64
	// MoveStallMaxSeconds stretches each move's blackout by a uniform
	// extra delay in [0, max) — migration-path jitter.
	MoveStallMaxSeconds float64

	// SampleCorruptProb is the per-(server, epoch) probability the
	// contention detector's counter sample arrives corrupted: the signals
	// are scaled by a garbage factor but still claimed valid.
	SampleCorruptProb float64
	// SampleStaleProb is the per-(server, epoch) probability the detector
	// sample is stale: the sensor replays the previous epoch's sample
	// instead of fresh counters.
	SampleStaleProb float64
}

// WithDefaults fills defaulted fields.
func (c Chaos) WithDefaults() Chaos {
	if c.RestartDelaySeconds == 0 {
		c.RestartDelaySeconds = 0.5
	}
	if c.QoSDropoutSeconds == 0 {
		c.QoSDropoutSeconds = 0.2
	}
	return c
}

// Enabled reports whether any fault class is active.
func (c *Chaos) Enabled() bool {
	return c != nil && (c.ServerCrashProb > 0 || c.CompileFailProb > 0 ||
		c.RuntimeCrashMTTFSeconds > 0 || c.QoSDropoutProb > 0 ||
		c.MigrationEnabled())
}

// MigrationEnabled reports whether any migration-domain fault is active.
func (c *Chaos) MigrationEnabled() bool {
	return c != nil && (c.MoveDetachFailProb > 0 || c.MoveLandFailProb > 0 ||
		c.MoveStallMaxSeconds > 0 || c.SampleCorruptProb > 0 || c.SampleStaleProb > 0)
}

// Fault domains keep schedules independent: the same (server, position)
// never correlates across fault classes.
const (
	domServerCrash uint64 = 0x5ec1 + iota
	domCrashTime
	domCompile
	domRuntimeCrash
	domDropout
	domMoveDetach
	domMoveLand
	domMoveStall
	domSampleCorrupt
	domSampleStale
	domCorruptFactor
)

// mix64 is the splitmix64 finalizer — a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds an arbitrary key tuple into one well-mixed word.
func hash(parts ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	return h
}

// uniform maps a key tuple to a deterministic value in [0, 1).
func uniform(parts ...uint64) float64 {
	return float64(hash(parts...)>>11) / float64(uint64(1)<<53)
}

// hashString folds a function name into the key space.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ServerCrashAt reports whether the given server crashes during a run of
// horizonSeconds and, if so, when. Pure in (Seed, server).
func (c Chaos) ServerCrashAt(server int, horizonSeconds float64) (atSeconds float64, crashed bool) {
	if c.ServerCrashProb <= 0 {
		return 0, false
	}
	if uniform(uint64(c.Seed), domServerCrash, uint64(server)) >= c.ServerCrashProb {
		return 0, false
	}
	return uniform(uint64(c.Seed), domCrashTime, uint64(server)) * horizonSeconds, true
}

// CompileFault returns a per-job fault hook compatible with
// core.Config.CompileFault, or nil when compile faults are disabled. The
// decision is pure in (Seed, server, job sequence number, function name).
func (c Chaos) CompileFault(server int) func(fn string, job uint64) error {
	if c.CompileFailProb <= 0 {
		return nil
	}
	seed, p := uint64(c.Seed), c.CompileFailProb
	srv := uint64(server)
	return func(fn string, job uint64) error {
		if uniform(seed, domCompile, srv, job, hashString(fn)) < p {
			return fmt.Errorf("faults: injected compile failure (server %d, job %d, fn %s)", server, job, fn)
		}
		return nil
	}
}

// RuntimeCrashFn returns a per-tick crash decision for the protean runtime
// on one server, or nil when runtime crashes are disabled. Each quantum
// independently crashes with probability quantum/MTTF (a geometric schedule
// with the configured mean), keyed purely on (Seed, server, quantum index).
func (c Chaos) RuntimeCrashFn(server int, freqHz float64, quantumCycles uint64) func(nowCycles uint64) bool {
	if c.RuntimeCrashMTTFSeconds <= 0 || quantumCycles == 0 {
		return nil
	}
	p := (float64(quantumCycles) / freqHz) / c.RuntimeCrashMTTFSeconds
	seed, srv := uint64(c.Seed), uint64(server)
	return func(nowCycles uint64) bool {
		return uniform(seed, domRuntimeCrash, srv, nowCycles/quantumCycles) < p
	}
}

// MoveDetachFails reports whether the given move fails before its source
// server detaches the instance. Pure in (Seed, server, move sequence).
func (c Chaos) MoveDetachFails(server int, move uint64) bool {
	if c.MoveDetachFailProb <= 0 {
		return false
	}
	return uniform(uint64(c.Seed), domMoveDetach, uint64(server), move) < c.MoveDetachFailProb
}

// MoveLandFails reports whether landing attempt `attempt` of the given move
// fails at the destination server. Pure in (Seed, server, move sequence,
// attempt), so retries against the same destination redraw independently.
func (c Chaos) MoveLandFails(server int, move uint64, attempt int) bool {
	if c.MoveLandFailProb <= 0 {
		return false
	}
	return uniform(uint64(c.Seed), domMoveLand, uint64(server), move, uint64(attempt)) < c.MoveLandFailProb
}

// MoveStallSeconds is the extra blackout jitter charged to the given move,
// uniform in [0, MoveStallMaxSeconds). Pure in (Seed, server, move
// sequence).
func (c Chaos) MoveStallSeconds(server int, move uint64) float64 {
	if c.MoveStallMaxSeconds <= 0 {
		return 0
	}
	return uniform(uint64(c.Seed), domMoveStall, uint64(server), move) * c.MoveStallMaxSeconds
}

// SampleFault classifies one detector counter sample.
type SampleFault int

// Detector-sample fault classes.
const (
	// SampleOK: the sample arrives as measured.
	SampleOK SampleFault = iota
	// SampleCorrupt: the sample's signals are scaled by CorruptFactor but
	// still claimed valid.
	SampleCorrupt
	// SampleStale: the sensor replays the previous epoch's sample.
	SampleStale
)

// SampleFaultAt classifies the detector sample server contributes at the
// given decision epoch. Corruption shadows staleness so each (server,
// epoch) has exactly one class. Pure in (Seed, server, epoch).
func (c Chaos) SampleFaultAt(server int, epoch uint64) SampleFault {
	if c.SampleCorruptProb > 0 &&
		uniform(uint64(c.Seed), domSampleCorrupt, uint64(server), epoch) < c.SampleCorruptProb {
		return SampleCorrupt
	}
	if c.SampleStaleProb > 0 &&
		uniform(uint64(c.Seed), domSampleStale, uint64(server), epoch) < c.SampleStaleProb {
		return SampleStale
	}
	return SampleOK
}

// CorruptFactor is the garbage scale applied to a corrupted sample's
// signals, uniform in [0, 4). Pure in (Seed, server, epoch).
func (c Chaos) CorruptFactor(server int, epoch uint64) float64 {
	return 4 * uniform(uint64(c.Seed), domCorruptFactor, uint64(server), epoch)
}

// DropoutFn returns a QoS-sensor dropout schedule for one server, or nil
// when dropouts are disabled: time is tiled into QoSDropoutSeconds windows
// and each window is dark with probability QoSDropoutProb, keyed purely on
// (Seed, server, window index).
func (c Chaos) DropoutFn(server int, freqHz float64) func(nowCycles uint64) bool {
	if c.QoSDropoutProb <= 0 {
		return nil
	}
	win := uint64(c.QoSDropoutSeconds * freqHz)
	if win == 0 {
		win = 1
	}
	seed, srv, p := uint64(c.Seed), uint64(server), c.QoSDropoutProb
	return func(nowCycles uint64) bool {
		return uniform(seed, domDropout, srv, nowCycles/win) < p
	}
}
