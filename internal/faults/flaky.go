package faults

import (
	"math"

	"repro/internal/machine"
	"repro/internal/qos"
)

// FlakySource wraps a qos.Source with a deterministic dropout schedule:
// while the schedule says the sensor is dark, readings either report
// absence (ok=false) or — in NaN mode — a NaN claimed as valid, modeling a
// corrupted rather than dead sensor.
type FlakySource struct {
	Src qos.Source
	// M supplies the current simulated time for the schedule.
	M *machine.Machine
	// Drop is the dropout schedule (e.g. Chaos.DropoutFn); nil never drops.
	Drop func(nowCycles uint64) bool
	// NaN selects corrupted-sensor mode.
	NaN bool

	dropped int
}

// QoS implements qos.Source.
func (f *FlakySource) QoS() (float64, bool) {
	if f.Drop != nil && f.Drop(f.M.Now()) {
		f.dropped++
		if f.NaN {
			return math.NaN(), true
		}
		return 0, false
	}
	return f.Src.QoS()
}

// Dropped counts readings lost to the schedule.
func (f *FlakySource) Dropped() int { return f.dropped }

// FlakyWindow wraps a qos.WindowScorer the same way: a window whose Score
// falls in a dark period yields no (or NaN) signal.
type FlakyWindow struct {
	Win  qos.WindowScorer
	Drop func(nowCycles uint64) bool
	NaN  bool

	dropped int
}

// Mark implements qos.WindowScorer.
func (f *FlakyWindow) Mark(m *machine.Machine) { f.Win.Mark(m) }

// Score implements qos.WindowScorer.
func (f *FlakyWindow) Score(m *machine.Machine) (float64, bool) {
	if f.Drop != nil && f.Drop(m.Now()) {
		f.dropped++
		if f.NaN {
			return math.NaN(), true
		}
		return 0, false
	}
	return f.Win.Score(m)
}

// Dropped counts windows lost to the schedule.
func (f *FlakyWindow) Dropped() int { return f.dropped }
