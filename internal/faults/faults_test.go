package faults

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestUniformDeterministicAndWellSpread(t *testing.T) {
	a := uniform(1, domCompile, 3, 4)
	b := uniform(1, domCompile, 3, 4)
	if a != b {
		t.Fatalf("uniform not deterministic: %v vs %v", a, b)
	}
	if uniform(1, domCompile, 3, 5) == a || uniform(2, domCompile, 3, 4) == a {
		t.Fatal("uniform insensitive to key changes")
	}
	// Rough rate check: Bernoulli(p) over many positions lands near p.
	p, n, hits := 0.3, 20000, 0
	for i := 0; i < n; i++ {
		if uniform(7, domCompile, 0, uint64(i)) < p {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-p) > 0.02 {
		t.Errorf("empirical rate %.3f, want ~%.2f", got, p)
	}
}

func TestServerCrashAt(t *testing.T) {
	c := Chaos{Seed: 42, ServerCrashProb: 0.5}
	crashed := 0
	for i := 0; i < 1000; i++ {
		at, ok := c.ServerCrashAt(i, 6.5)
		if ok {
			crashed++
			if at < 0 || at >= 6.5 {
				t.Fatalf("crash time %v outside horizon", at)
			}
			// Same inputs, same schedule.
			at2, ok2 := c.ServerCrashAt(i, 6.5)
			if !ok2 || at2 != at {
				t.Fatal("crash schedule not deterministic")
			}
		}
	}
	if crashed < 400 || crashed > 600 {
		t.Errorf("crashed %d/1000 at p=0.5", crashed)
	}
	if _, ok := (Chaos{Seed: 42}).ServerCrashAt(3, 6.5); ok {
		t.Error("zero-rate chaos crashed a server")
	}
}

func TestCompileFault(t *testing.T) {
	c := Chaos{Seed: 1, CompileFailProb: 0.4}
	f := c.CompileFault(2)
	fails := 0
	for job := uint64(0); job < 1000; job++ {
		err1 := f("hot", job)
		err2 := c.CompileFault(2)("hot", job)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("compile fault not deterministic")
		}
		if err1 != nil {
			fails++
		}
	}
	if fails < 300 || fails > 500 {
		t.Errorf("fails = %d/1000 at p=0.4", fails)
	}
	if (Chaos{Seed: 1}).CompileFault(2) != nil {
		t.Error("zero-rate chaos returned a compile fault fn")
	}
}

func TestRuntimeCrashFnMeanRate(t *testing.T) {
	c := Chaos{Seed: 3, RuntimeCrashMTTFSeconds: 1}
	freq, quantum := 10e6, uint64(10e3) // 1 ms quanta => p = 1/1000 per quantum
	f := c.RuntimeCrashFn(0, freq, quantum)
	crashes := 0
	for q := uint64(0); q < 100000; q++ {
		if f(q * quantum) {
			crashes++
		}
	}
	// 100 s of simulated time at MTTF 1 s: expect ~100 crash quanta.
	if crashes < 60 || crashes > 150 {
		t.Errorf("crashes = %d over 100s at MTTF 1s", crashes)
	}
}

func TestDropoutFnWindowsAreContiguous(t *testing.T) {
	c := Chaos{Seed: 9, QoSDropoutProb: 0.3, QoSDropoutSeconds: 0.2}
	f := c.DropoutFn(1, 10e6)
	win := uint64(0.2 * 10e6)
	// Every cycle within one window must agree.
	for w := uint64(0); w < 50; w++ {
		first := f(w * win)
		if f(w*win+win/2) != first || f(w*win+win-1) != first {
			t.Fatalf("window %d not contiguous", w)
		}
	}
}

func TestFlakySourceAndWindow(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	constSrc := srcFunc(func() (float64, bool) { return 0.9, true })
	dark := func(uint64) bool { return true }
	fs := &FlakySource{Src: constSrc, M: m, Drop: dark}
	if _, ok := fs.QoS(); ok {
		t.Error("dark dead sensor reported ok")
	}
	fsNaN := &FlakySource{Src: constSrc, M: m, Drop: dark, NaN: true}
	if q, ok := fsNaN.QoS(); !ok || !math.IsNaN(q) {
		t.Errorf("dark NaN sensor = (%v, %v), want (NaN, true)", q, ok)
	}
	if fs.Dropped() != 1 || fsNaN.Dropped() != 1 {
		t.Error("dropout counts wrong")
	}
	clear := &FlakySource{Src: constSrc, M: m, Drop: func(uint64) bool { return false }}
	if q, ok := clear.QoS(); !ok || q != 0.9 {
		t.Errorf("clear sensor = (%v, %v), want (0.9, true)", q, ok)
	}
}

type srcFunc func() (float64, bool)

func (f srcFunc) QoS() (float64, bool) { return f() }
