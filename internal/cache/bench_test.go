package cache

import "testing"

// BenchmarkCacheAccessHit measures the hot path: repeated hits in one set.
func BenchmarkCacheAccessHit(b *testing.B) {
	c := New(Config{Name: "b", SizeBytes: 2 << 20, LineSize: 64, Assoc: 16, HitLatency: 30})
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

// BenchmarkCacheAccessStream measures a miss-heavy streaming pattern.
func BenchmarkCacheAccessStream(b *testing.B) {
	c := New(Config{Name: "b", SizeBytes: 2 << 20, LineSize: 64, Assoc: 16, HitLatency: 30})
	addr := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addr, false)
		addr += 64
	}
}

// BenchmarkHierarchyLoad measures a full L1→L2→LLC walk with mixed
// hit/miss behaviour.
func BenchmarkHierarchyLoad(b *testing.B) {
	h := NewHierarchy(DefaultHierarchy(4))
	addr := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(i&3, addr, i&7 == 0)
		addr = (addr + 64) & (8<<20 - 1)
	}
}
