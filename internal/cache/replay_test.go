package cache

import (
	"testing"
)

// replayRNG is a tiny deterministic generator (splitmix64) so the
// equivalence tests run the same access streams everywhere.
type replayRNG uint64

func (r *replayRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randomAccesses builds a mixed access stream biased toward the shapes the
// superblock engine batches: stretches of repeated and line-adjacent
// addresses (the memo and run-coalescing fast paths), occasional far jumps
// (full set walks, evictions), NT flags, and all three kinds.
func randomAccesses(rng *replayRNG, n int, loadsOnly bool) []Access {
	accs := make([]Access, 0, n)
	addr := uint64(0x10000)
	for len(accs) < n {
		switch rng.next() % 8 {
		case 0: // far jump: new region
			addr = (rng.next() % (8 << 20)) &^ 7
		case 1: // next line
			addr += 64
		case 2: // stride within the line
			addr += 16
		default: // repeat the address (memo / coalescing territory)
		}
		a := Access{Addr: addr, Kind: AccessLoad}
		if !loadsOnly {
			switch rng.next() % 10 {
			case 0:
				a.Kind = AccessStore
			case 1:
				a.Kind = AccessPrefetch
			}
			a.NT = rng.next()%5 == 0
		}
		accs = append(accs, a)
	}
	return accs
}

// applyOneByOne is the oracle: the access stream issued through the
// per-call entry points, summing load stalls exactly as the interpreter
// does (integer division per access).
func applyOneByOne(h *Hierarchy, core int, accs []Access, mlp uint64) uint64 {
	var stall uint64
	for _, a := range accs {
		switch a.Kind {
		case AccessLoad:
			stall += uint64(h.Load(core, a.Addr, a.NT)) / mlp
		case AccessStore:
			h.Store(core, a.Addr, a.NT)
		case AccessPrefetch:
			h.Prefetch(core, a.Addr, a.NT)
		}
	}
	return stall
}

// requireCacheEqual compares the complete internal state of two levels:
// every tag, stamp and owner word, the LRU clock, and the counters.
func requireCacheEqual(t *testing.T, name string, a, b *Cache) {
	t.Helper()
	if a.stats != b.stats {
		t.Fatalf("%s: stats diverged: %+v vs %+v", name, a.stats, b.stats)
	}
	if a.clock != b.clock {
		t.Fatalf("%s: clock diverged: %d vs %d", name, a.clock, b.clock)
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] || a.stamps[i] != b.stamps[i] || a.owners[i] != b.owners[i] {
			t.Fatalf("%s: line %d diverged: tag %x/%x stamp %d/%d owner %d/%d",
				name, i, a.tags[i], b.tags[i], a.stamps[i], b.stamps[i], a.owners[i], b.owners[i])
		}
	}
}

func requireHierEqual(t *testing.T, a, b *Hierarchy) {
	t.Helper()
	for c := range a.l1 {
		requireCacheEqual(t, "L1", a.l1[c], b.l1[c])
		requireCacheEqual(t, "L2", a.l2[c], b.l2[c])
	}
	requireCacheEqual(t, "LLC", a.llc, b.llc)
	for c := range a.per {
		if a.per[c] != b.per[c] {
			t.Fatalf("core %d LLC stats diverged: %+v vs %+v", c, a.per[c], b.per[c])
		}
	}
}

// replayGeometries exercises the pow2 mask/shift indexing, the div/mod
// fallback (48 sets), and every NT policy at some level.
func replayGeometries() []HierarchyConfig {
	def := DefaultHierarchy(2)
	odd := def
	odd.L1 = Config{Name: "L1", SizeBytes: 24 << 10, LineSize: 64, Assoc: 8, HitLatency: 1, NT: NTBypass}
	odd.L2.NT = NTDemote
	odd.LLC.NT = NTIgnore
	return []HierarchyConfig{def, odd}
}

// TestReplayMatchesPerCallWalk drives identical mixed access streams
// through Replay (batched) and the per-call walk and requires identical
// stalls, counters and complete line state — the contract the superblock
// engine's batching rests on.
func TestReplayMatchesPerCallWalk(t *testing.T) {
	for gi, cfg := range replayGeometries() {
		for _, mlp := range []uint64{1, 3, 4} {
			rng := replayRNG(uint64(gi)*97 + mlp)
			ha, hb := NewHierarchy(cfg), NewHierarchy(cfg)
			for batch := 0; batch < 200; batch++ {
				n := int(rng.next()%12) + 1
				core := int(rng.next() % 2)
				accs := randomAccesses(&rng, n, false)
				want := applyOneByOne(ha, core, accs, mlp)
				got := hb.Replay(core, accs, mlp)
				if got != want {
					t.Fatalf("geom %d mlp %d batch %d: stall %d, per-call walk %d", gi, mlp, batch, got, want)
				}
			}
			requireHierEqual(t, ha, hb)
		}
	}
}

// TestReplayLoadsMatchesPerCallWalk is the same contract for the
// plain-load specialization, including its same-line run coalescing.
func TestReplayLoadsMatchesPerCallWalk(t *testing.T) {
	for gi, cfg := range replayGeometries() {
		for _, mlp := range []uint64{1, 3, 4} {
			rng := replayRNG(uint64(gi)*131 + mlp)
			ha, hb := NewHierarchy(cfg), NewHierarchy(cfg)
			for batch := 0; batch < 200; batch++ {
				n := int(rng.next()%12) + 1
				core := int(rng.next() % 2)
				accs := randomAccesses(&rng, n, true)
				addrs := make([]uint64, len(accs))
				for i, a := range accs {
					addrs[i] = a.Addr
				}
				want := applyOneByOne(ha, core, accs, mlp)
				got := hb.ReplayLoads(core, addrs, mlp)
				if got != want {
					t.Fatalf("geom %d mlp %d batch %d: stall %d, per-call walk %d", gi, mlp, batch, got, want)
				}
			}
			requireHierEqual(t, ha, hb)
		}
	}
}

// TestRepeatedLineMemoAcrossKinds pins the memo edge cases directly: an
// NT hit at an NTBypass level demotes through the fast path, and an
// NT-bypass miss poisons the memo so the next access rescans.
func TestRepeatedLineMemoAcrossKinds(t *testing.T) {
	c := New(Config{Name: "x", SizeBytes: 4 << 10, LineSize: 64, Assoc: 4, HitLatency: 1, NT: NTBypass})
	c.Access(0x1000, false) // fill; memo points at the line
	if hit, _ := c.Access(0x1008, false); !hit {
		t.Fatal("repeated line should hit via memo")
	}
	if hit, _ := c.Access(0x1010, true); !hit {
		t.Fatal("NT repeated line should still hit")
	}
	if c.stats.NTDemoted != 1 {
		t.Fatalf("NT hit on the memo path must demote: %+v", c.stats)
	}
	c.Access(0x9000, true) // NT-bypass miss: no fill, memo must poison
	if c.lastIdx != -1 {
		t.Fatalf("memo not poisoned after NT-bypass miss: lastIdx=%d", c.lastIdx)
	}
	if hit, _ := c.Access(0x1018, false); !hit {
		t.Fatal("original line must still be resident after bypass")
	}
}
