package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small(nt NTPolicy) *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return New(Config{Name: "t", SizeBytes: 512, LineSize: 64, Assoc: 2, HitLatency: 1, NT: nt})
}

func TestHitAfterMiss(t *testing.T) {
	c := small(NTIgnore)
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _ := c.Access(0x1008, false); !hit {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(NTIgnore)
	// Three distinct lines mapping to set 0 in a 2-way set: 4 sets, line 64,
	// so addresses 0, 4*64=256, 512 all hit set 0.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU now
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a (MRU) was evicted")
	}
	if c.Probe(b) {
		t.Error("b (LRU) survived")
	}
	if !c.Probe(d) {
		t.Error("d not resident after fill")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestNTBypassDoesNotAllocate(t *testing.T) {
	c := small(NTBypass)
	c.Access(0x2000, true)
	if c.Probe(0x2000) {
		t.Error("NT miss allocated under bypass policy")
	}
	if s := c.Stats(); s.NTBypassed != 1 {
		t.Errorf("NTBypassed = %d, want 1", s.NTBypassed)
	}
	// Non-NT access still allocates.
	c.Access(0x2000, false)
	if !c.Probe(0x2000) {
		t.Error("normal miss did not allocate")
	}
}

func TestNTBypassDemotesOnHit(t *testing.T) {
	c := small(NTBypass)
	a, b, d := uint64(0), uint64(256), uint64(512) // same set
	c.Access(a, false)
	c.Access(b, false)
	// NT hit on a demotes it to LRU even though it was just filled...
	c.Access(a, true)
	// ...so the next fill in this set evicts a, not b.
	c.Access(d, false)
	if c.Probe(a) {
		t.Error("NT-demoted line survived eviction")
	}
	if !c.Probe(b) {
		t.Error("line b was wrongly evicted")
	}
}

func TestNTDemoteAllocatesAtLRU(t *testing.T) {
	c := small(NTDemote)
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, false)
	c.Access(b, true) // NT fill at LRU
	c.Access(d, false)
	if c.Probe(b) {
		t.Error("NT-demoted fill survived; should have been the victim")
	}
	if !c.Probe(a) || !c.Probe(d) {
		t.Error("wrong victim chosen under NTDemote")
	}
}

func TestNTIgnoreTreatsNTNormally(t *testing.T) {
	c := small(NTIgnore)
	c.Access(0x3000, true)
	if !c.Probe(0x3000) {
		t.Error("NTIgnore should allocate NT fills")
	}
}

func TestResetClears(t *testing.T) {
	c := small(NTIgnore)
	c.Access(0x1000, false)
	c.Reset()
	if c.ValidLines() != 0 {
		t.Error("lines survive Reset")
	}
	if c.Stats() != (Stats{}) {
		t.Error("stats survive Reset")
	}
}

func TestOccupancy(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, LineSize: 64, Assoc: 4, HitLatency: 1})
	for a := uint64(0); a < 1024; a += 64 {
		c.Access(a, false)
	}
	if got := c.Occupancy(0, 1024); got != 16 {
		t.Errorf("Occupancy(0,1024) = %d, want 16", got)
	}
	if got := c.Occupancy(1024, 4096); got != 0 {
		t.Errorf("Occupancy(1024,4096) = %d, want 0", got)
	}
	if got := c.ValidLines(); got != 16 {
		t.Errorf("ValidLines = %d, want 16", got)
	}
}

func TestStatsSubAndMissRate(t *testing.T) {
	c := small(NTIgnore)
	c.Access(0x1000, false)
	before := c.Stats()
	c.Access(0x1000, false)
	c.Access(0x9000, false)
	d := c.Stats().Sub(before)
	if d.Accesses != 2 || d.Hits != 1 || d.Misses != 1 {
		t.Errorf("delta = %+v", d)
	}
	if mr := c.Stats().MissRate(); mr <= 0 || mr >= 1 {
		t.Errorf("MissRate = %v", mr)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("MissRate of empty stats should be 0")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "zero", SizeBytes: 0, LineSize: 64, Assoc: 2},
		{Name: "nonpow2", SizeBytes: 512, LineSize: 48, Assoc: 2},
		{Name: "indivisible", SizeBytes: 500, LineSize: 64, Assoc: 2},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: hits + misses == accesses; valid lines never exceed capacity;
// a second access to the same address under any non-bypass policy hits.
func TestCacheInvariantsRandom(t *testing.T) {
	prop := func(seed int64, policyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pol := NTPolicy(policyRaw % 3)
		c := New(Config{Name: "q", SizeBytes: 2048, LineSize: 64, Assoc: 4, HitLatency: 1, NT: pol})
		capacity := 2048 / 64
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(1 << 14))
			nt := rng.Intn(3) == 0
			c.Access(addr, nt)
			if c.ValidLines() > capacity {
				return false
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			return false
		}
		// Determinism: same addr twice back-to-back, normal access.
		addr := uint64(rng.Intn(1 << 14))
		c.Access(addr, false)
		hit, _ := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(2))
	cfg := h.Config()
	// Cold: memory latency.
	if lat := h.Load(0, 0x10000, false); lat != cfg.MemLatency {
		t.Errorf("cold load latency = %d, want %d", lat, cfg.MemLatency)
	}
	// Warm: L1 latency.
	if lat := h.Load(0, 0x10000, false); lat != cfg.L1.HitLatency {
		t.Errorf("warm load latency = %d, want %d", lat, cfg.L1.HitLatency)
	}
	// Another core does not see core 0's private lines but does share LLC.
	if lat := h.Load(1, 0x10000, false); lat != cfg.LLC.HitLatency {
		t.Errorf("cross-core load latency = %d, want LLC %d", lat, cfg.LLC.HitLatency)
	}
}

func TestHierarchyNTBypassReducesLLCFootprint(t *testing.T) {
	cfg := DefaultHierarchy(1)
	streamBytes := uint64(4 << 20) // 2x the LLC

	run := func(nt bool) int {
		h := NewHierarchy(cfg)
		for a := uint64(0); a < streamBytes; a += 64 {
			h.Load(0, a, nt)
		}
		return h.LLC().ValidLines()
	}
	normal := run(false)
	ntLines := run(true)
	if ntLines >= normal/10 {
		t.Errorf("NT stream occupies %d LLC lines vs %d normal; expected order-of-magnitude reduction", ntLines, normal)
	}
}

func TestHierarchyCoreStats(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(2))
	h.Load(0, 0x40000, false)
	h.Load(0, 0x40000, false) // L1 hit, no LLC traffic
	s0 := h.CoreStats(0)
	if s0.LLCAccesses != 1 || s0.LLCMisses != 1 {
		t.Errorf("core 0 stats = %+v, want 1 access 1 miss", s0)
	}
	if s1 := h.CoreStats(1); s1.LLCAccesses != 0 {
		t.Errorf("idle core has LLC accesses: %+v", s1)
	}
}

func TestHierarchyStoreAndPrefetch(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(1))
	if lat := h.Store(0, 0x8000, false); lat != 1 {
		t.Errorf("store latency = %d, want 1 (buffered)", lat)
	}
	if !h.L1(0).Probe(0x8000) {
		t.Error("store did not allocate in L1")
	}
	h.Prefetch(0, 0x9000, false)
	if lat := h.Load(0, 0x9000, false); lat != h.Config().L1.HitLatency {
		t.Errorf("load after prefetch latency = %d, want L1 hit", lat)
	}
}

func TestFlushCore(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(2))
	h.Load(0, 0x8000, false)
	h.FlushCore(0)
	if h.L1(0).ValidLines() != 0 || h.L2(0).ValidLines() != 0 {
		t.Error("FlushCore left private lines")
	}
	if h.LLC().ValidLines() == 0 {
		t.Error("FlushCore should not clear the shared LLC")
	}
}

func TestOccupancyAttribution(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(2))
	// Core 0 fills 1 MiB, core 1 fills 256 KiB of disjoint addresses.
	for a := uint64(0); a < 1<<20; a += 64 {
		h.Load(0, a, false)
	}
	for a := uint64(1 << 30); a < 1<<30+256<<10; a += 64 {
		h.Load(1, a, false)
	}
	occ := h.LLCOccupancy()
	if occ[0] != (1<<20)/64 {
		t.Errorf("core 0 occupancy = %d lines, want %d", occ[0], (1<<20)/64)
	}
	if occ[1] != (256<<10)/64 {
		t.Errorf("core 1 occupancy = %d lines, want %d", occ[1], (256<<10)/64)
	}
	// Re-filling an address from the other core transfers ownership only
	// on refill (evict + miss), not on hit.
	h.Load(1, 0, false) // hits LLC? it was filled by core 0; core 1's L1 misses -> LLC hit
	occ2 := h.LLCOccupancy()
	if occ2[0] != occ[0] {
		t.Errorf("LLC hit transferred ownership: %d -> %d", occ[0], occ2[0])
	}
}

func TestOccupancyNTBypassKeepsFootprintZero(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(2))
	for a := uint64(0); a < 4<<20; a += 64 {
		h.Load(0, a, true) // NT stream
	}
	occ := h.LLCOccupancy()
	if occ[0] != 0 {
		t.Errorf("NT stream owns %d LLC lines, want 0", occ[0])
	}
}
