// Package cache implements the set-associative cache hierarchy the simulated
// machine runs against.
//
// This is the substrate where the paper's mechanism acts: co-running
// programs share the last-level cache, so a contentious program evicts a
// sensitive program's lines and degrades its progress rate. Non-temporal
// hints change how a program's fills are treated at the shared level —
// bypassing allocation or inserting at LRU — which reduces the pressure it
// exerts without (much) hurting itself, exactly the lever PC3D searches over.
package cache

import "fmt"

// NTPolicy selects how a level treats non-temporal fills.
type NTPolicy int

// Non-temporal fill policies.
const (
	// NTIgnore treats NT accesses like ordinary ones (private levels keep
	// NT lines: the data is still about to be used once).
	NTIgnore NTPolicy = iota
	// NTBypass does not allocate on an NT miss and demotes the line to LRU
	// on an NT hit. This is the default shared-LLC policy and the strongest
	// pressure reduction.
	NTBypass
	// NTDemote allocates NT fills at the LRU position instead of MRU, so
	// they are the next victims. A gentler alternative used in ablations.
	NTDemote
)

func (p NTPolicy) String() string {
	switch p {
	case NTIgnore:
		return "ignore"
	case NTBypass:
		return "bypass"
	case NTDemote:
		return "demote"
	}
	return fmt.Sprintf("ntpolicy(%d)", int(p))
}

// Config describes one cache level.
type Config struct {
	Name string
	// SizeBytes must be a multiple of LineSize*Assoc.
	SizeBytes int
	LineSize  int
	Assoc     int
	// HitLatency is the cycles to serve a hit at this level.
	HitLatency int
	// NT selects the non-temporal fill policy.
	NT NTPolicy
}

// Stats counts events at one level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// NTBypassed counts NT misses that skipped allocation.
	NTBypassed uint64
	// NTDemoted counts NT fills or hits inserted/moved to LRU.
	NTDemoted uint64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns the event-count delta s - prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - prev.Accesses,
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		Evictions:  s.Evictions - prev.Evictions,
		NTBypassed: s.NTBypassed - prev.NTBypassed,
		NTDemoted:  s.NTDemoted - prev.NTDemoted,
	}
}

type line struct {
	tag   uint64
	valid bool
	// stamp orders lines for LRU: higher = more recently used.
	stamp uint64
	// owner is the core that filled the line (occupancy attribution).
	owner int8
}

// Cache is one set-associative level. Not safe for concurrent use; the
// machine is single-threaded by design.
type Cache struct {
	cfg      Config
	sets     []([]line)
	numSets  uint64
	lineBits uint
	clock    uint64
	stats    Stats
}

// New builds a cache level. It panics on a malformed geometry (configs are
// static test/bench fixtures, not user input).
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %q: non-positive geometry %+v", cfg.Name, cfg))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %q: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	if cfg.SizeBytes%(cfg.LineSize*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache %q: size %d not divisible by line*assoc", cfg.Name, cfg.SizeBytes))
	}
	numSets := cfg.SizeBytes / (cfg.LineSize * cfg.Assoc)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, numSets),
		numSets: uint64(numSets),
	}
	backing := make([]line, numSets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.lineBits
	return lineAddr % c.numSets, lineAddr / c.numSets
}

// Access performs a lookup, allocating on miss per the NT policy.
// It returns whether the access hit and whether a valid line was evicted.
func (c *Cache) Access(addr uint64, nt bool) (hit, evicted bool) {
	return c.AccessBy(0, addr, nt)
}

// AccessBy is Access with fill-owner attribution: filled lines are tagged
// with the requesting core so occupancy can be attributed per core — the
// signal a shared-cache monitor (UMON-style) would expose.
func (c *Cache) AccessBy(core int, addr uint64, nt bool) (hit, evicted bool) {
	c.stats.Accesses++
	c.clock++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			c.stats.Hits++
			if nt && c.cfg.NT == NTBypass {
				// Demote on NT hit: next victim in this set.
				lines[i].stamp = 0
				c.stats.NTDemoted++
			} else {
				lines[i].stamp = c.clock
			}
			return true, false
		}
	}
	c.stats.Misses++
	if nt && c.cfg.NT == NTBypass {
		c.stats.NTBypassed++
		return false, false
	}
	// Victim: invalid line if any, else lowest stamp.
	victim := 0
	var best uint64 = ^uint64(0)
	for i := range lines {
		if !lines[i].valid {
			victim = i
			best = 0
			break
		}
		if lines[i].stamp < best {
			best = lines[i].stamp
			victim = i
		}
	}
	if lines[victim].valid {
		c.stats.Evictions++
		evicted = true
	}
	stamp := c.clock
	if nt && c.cfg.NT == NTDemote {
		stamp = 0
		c.stats.NTDemoted++
	}
	lines[victim] = line{tag: tag, valid: true, stamp: stamp, owner: int8(core)}
	return false, evicted
}

// OccupancyByOwner counts valid lines per filling core (indices beyond the
// slice length are ignored). A full-cache walk: measurement use only.
func (c *Cache) OccupancyByOwner(counts []int) {
	for i := range counts {
		counts[i] = 0
	}
	for s := range c.sets {
		for _, l := range c.sets[s] {
			if l.valid && int(l.owner) < len(counts) && l.owner >= 0 {
				counts[l.owner]++
			}
		}
	}
}

// Probe reports whether addr is resident without touching LRU state or
// counters. Tests and occupancy measurements use it.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Occupancy counts valid lines whose addresses fall in [lo, hi). It walks
// the whole cache; use it for measurements, not on hot paths.
func (c *Cache) Occupancy(lo, hi uint64) int {
	loLine, hiLine := lo>>c.lineBits, hi>>c.lineBits
	n := 0
	for s := uint64(0); s < c.numSets; s++ {
		for _, l := range c.sets[s] {
			if !l.valid {
				continue
			}
			lineAddr := l.tag*c.numSets + s
			if lineAddr >= loLine && lineAddr < hiLine {
				n++
			}
		}
	}
	return n
}

// ValidLines counts all valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for s := range c.sets {
		for _, l := range c.sets[s] {
			if l.valid {
				n++
			}
		}
	}
	return n
}
