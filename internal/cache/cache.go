// Package cache implements the set-associative cache hierarchy the simulated
// machine runs against.
//
// This is the substrate where the paper's mechanism acts: co-running
// programs share the last-level cache, so a contentious program evicts a
// sensitive program's lines and degrades its progress rate. Non-temporal
// hints change how a program's fills are treated at the shared level —
// bypassing allocation or inserting at LRU — which reduces the pressure it
// exerts without (much) hurting itself, exactly the lever PC3D searches over.
package cache

import "fmt"

// NTPolicy selects how a level treats non-temporal fills.
type NTPolicy int

// Non-temporal fill policies.
const (
	// NTIgnore treats NT accesses like ordinary ones (private levels keep
	// NT lines: the data is still about to be used once).
	NTIgnore NTPolicy = iota
	// NTBypass does not allocate on an NT miss and demotes the line to LRU
	// on an NT hit. This is the default shared-LLC policy and the strongest
	// pressure reduction.
	NTBypass
	// NTDemote allocates NT fills at the LRU position instead of MRU, so
	// they are the next victims. A gentler alternative used in ablations.
	NTDemote
)

func (p NTPolicy) String() string {
	switch p {
	case NTIgnore:
		return "ignore"
	case NTBypass:
		return "bypass"
	case NTDemote:
		return "demote"
	}
	return fmt.Sprintf("ntpolicy(%d)", int(p))
}

// Config describes one cache level.
type Config struct {
	Name string
	// SizeBytes must be a multiple of LineSize*Assoc.
	SizeBytes int
	LineSize  int
	Assoc     int
	// HitLatency is the cycles to serve a hit at this level.
	HitLatency int
	// NT selects the non-temporal fill policy.
	NT NTPolicy
}

// Stats counts events at one level.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// NTBypassed counts NT misses that skipped allocation.
	NTBypassed uint64
	// NTDemoted counts NT fills or hits inserted/moved to LRU.
	NTDemoted uint64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns the event-count delta s - prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - prev.Accesses,
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		Evictions:  s.Evictions - prev.Evictions,
		NTBypassed: s.NTBypassed - prev.NTBypassed,
		NTDemoted:  s.NTDemoted - prev.NTDemoted,
	}
}

// Cache is one set-associative level. Not safe for concurrent use; the
// machine is single-threaded by design.
//
// Line state is stored structure-of-arrays (parallel tag/stamp/owner
// slices indexed way-major within each set, with the valid bit folded into
// the tag word) rather than as a slice of line structs: the hit scan — the
// hottest loop in the whole simulator — then reads a contiguous run of
// eight or sixteen tag words, one or two host cache lines, instead of
// striding through 32-byte structs.
type Cache struct {
	cfg     Config
	numSets uint64
	// pow2 set counts index with mask+shift; a non-power-of-two geometry
	// falls back to div/mod. Identical results either way.
	pow2     bool
	setMask  uint64
	setShift uint
	lineBits uint
	assoc    int
	// Way-major line state: set s occupies [s*assoc, (s+1)*assoc).
	// tags holds (tag<<1)|1 for valid lines and 0 for invalid ones, so the
	// hit scan compares against a single contiguous array.
	tags []uint64
	// stamp orders lines for LRU: higher = more recently used.
	stamps []uint64
	// owner is the core that filled the line (occupancy attribution).
	owners []int8
	clock  uint64
	stats  Stats
	// lastLine/lastIdx memoize the line the previous access left resident
	// (lastIdx < 0 after an NT-bypass miss or Reset). An access that
	// repeats the previous line address is a guaranteed hit at that index —
	// nothing has touched this level in between, so nothing can have
	// evicted it — which turns the streaming-access common case (several
	// consecutive accesses per 64-byte line) into one compare.
	lastLine uint64
	lastIdx  int
}

// New builds a cache level. It panics on a malformed geometry (configs are
// static test/bench fixtures, not user input).
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %q: non-positive geometry %+v", cfg.Name, cfg))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %q: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	if cfg.SizeBytes%(cfg.LineSize*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache %q: size %d not divisible by line*assoc", cfg.Name, cfg.SizeBytes))
	}
	numSets := cfg.SizeBytes / (cfg.LineSize * cfg.Assoc)
	c := &Cache{
		cfg:     cfg,
		numSets: uint64(numSets),
		assoc:   cfg.Assoc,
		tags:    make([]uint64, numSets*cfg.Assoc),
		stamps:  make([]uint64, numSets*cfg.Assoc),
		owners:  make([]int8, numSets*cfg.Assoc),
		lastIdx: -1,
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	if n := uint64(numSets); n&(n-1) == 0 {
		c.pow2 = true
		c.setMask = n - 1
		for s := n; s > 1; s >>= 1 {
			c.setShift++
		}
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
		c.owners[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
	c.lastLine = 0
	c.lastIdx = -1
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.lineBits
	if c.pow2 {
		return lineAddr & c.setMask, lineAddr >> c.setShift
	}
	return lineAddr % c.numSets, lineAddr / c.numSets
}

// Access performs a lookup, allocating on miss per the NT policy.
// It returns whether the access hit and whether a valid line was evicted.
func (c *Cache) Access(addr uint64, nt bool) (hit, evicted bool) {
	return c.AccessBy(0, addr, nt)
}

// AccessBy is Access with fill-owner attribution: filled lines are tagged
// with the requesting core so occupancy can be attributed per core — the
// signal a shared-cache monitor (UMON-style) would expose.
func (c *Cache) AccessBy(core int, addr uint64, nt bool) (hit, evicted bool) {
	c.stats.Accesses++
	c.clock++
	lineAddr := addr >> c.lineBits
	// Repeated-line fast path: the previous access left exactly this line
	// resident at lastIdx, and nothing has accessed this level since, so
	// it is a hit with no set scan. Bookkeeping is identical to the scan
	// hit below.
	if lineAddr == c.lastLine && c.lastIdx >= 0 {
		c.stats.Hits++
		if nt && c.cfg.NT == NTBypass {
			c.stamps[c.lastIdx] = 0
			c.stats.NTDemoted++
		} else {
			c.stamps[c.lastIdx] = c.clock
		}
		return true, false
	}
	var set, tag uint64
	if c.pow2 {
		set, tag = lineAddr&c.setMask, lineAddr>>c.setShift
	} else {
		set, tag = lineAddr%c.numSets, lineAddr/c.numSets
	}
	want := tag<<1 | 1
	lo := int(set) * c.assoc
	hi := lo + c.assoc
	tags := c.tags[lo:hi:hi]
	for i := range tags {
		if tags[i] == want {
			c.stats.Hits++
			if nt && c.cfg.NT == NTBypass {
				// Demote on NT hit: next victim in this set.
				c.stamps[lo+i] = 0
				c.stats.NTDemoted++
			} else {
				c.stamps[lo+i] = c.clock
			}
			c.lastLine, c.lastIdx = lineAddr, lo+i
			return true, false
		}
	}
	c.stats.Misses++
	if nt && c.cfg.NT == NTBypass {
		c.stats.NTBypassed++
		// The line is not resident; poison the memo.
		c.lastIdx = -1
		return false, false
	}
	// Victim: invalid line if any, else lowest stamp.
	victim := 0
	var best uint64 = ^uint64(0)
	stamps := c.stamps[lo:hi:hi]
	for i := range tags {
		if tags[i]&1 == 0 {
			victim = i
			best = 0
			break
		}
		if stamps[i] < best {
			best = stamps[i]
			victim = i
		}
	}
	if tags[victim]&1 != 0 {
		c.stats.Evictions++
		evicted = true
	}
	stamp := c.clock
	if nt && c.cfg.NT == NTDemote {
		stamp = 0
		c.stats.NTDemoted++
	}
	tags[victim] = want
	stamps[victim] = stamp
	c.owners[lo+victim] = int8(core)
	c.lastLine, c.lastIdx = lineAddr, lo+victim
	return false, evicted
}

// OccupancyByOwner counts valid lines per filling core (indices beyond the
// slice length are ignored). A full-cache walk: measurement use only.
func (c *Cache) OccupancyByOwner(counts []int) {
	for i := range counts {
		counts[i] = 0
	}
	for i, t := range c.tags {
		if o := c.owners[i]; t&1 != 0 && int(o) < len(counts) && o >= 0 {
			counts[o]++
		}
	}
}

// Probe reports whether addr is resident without touching LRU state or
// counters. Tests and occupancy measurements use it.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	want := tag<<1 | 1
	lo := int(set) * c.assoc
	for i := lo; i < lo+c.assoc; i++ {
		if c.tags[i] == want {
			return true
		}
	}
	return false
}

// Occupancy counts valid lines whose addresses fall in [lo, hi). It walks
// the whole cache; use it for measurements, not on hot paths.
func (c *Cache) Occupancy(lo, hi uint64) int {
	loLine, hiLine := lo>>c.lineBits, hi>>c.lineBits
	n := 0
	for i, t := range c.tags {
		if t&1 == 0 {
			continue
		}
		set := uint64(i / c.assoc)
		lineAddr := (t>>1)*c.numSets + set
		if lineAddr >= loLine && lineAddr < hiLine {
			n++
		}
	}
	return n
}

// ValidLines counts all valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, t := range c.tags {
		if t&1 != 0 {
			n++
		}
	}
	return n
}
