package cache

import (
	"fmt"
	"math/bits"
)

// HierarchyConfig sizes a multicore cache hierarchy: a private L1 and L2
// per core and one shared LLC.
type HierarchyConfig struct {
	Cores int
	L1    Config
	L2    Config
	LLC   Config
	// MemLatency is the cycles for a fill from memory.
	MemLatency int
}

// DefaultHierarchy models a small quad-core part in the spirit of the
// paper's AMD Phenom II X4 testbed: private 32 KiB L1 and 256 KiB L2,
// shared 2 MiB LLC. The LLC is deliberately modest so the synthetic
// workloads (working sets of a few MiB) contend the way SPEC-class
// programs contend on a 6 MiB part.
func DefaultHierarchy(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores:      cores,
		L1:         Config{Name: "L1", SizeBytes: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 1, NT: NTIgnore},
		L2:         Config{Name: "L2", SizeBytes: 256 << 10, LineSize: 64, Assoc: 8, HitLatency: 10, NT: NTIgnore},
		LLC:        Config{Name: "LLC", SizeBytes: 2 << 20, LineSize: 64, Assoc: 16, HitLatency: 36, NT: NTBypass},
		MemLatency: 220,
	}
}

// CoreStats aggregates per-core shared-LLC activity, the signals the
// runtime's extrospection reads ("cache misses or bandwidth usage",
// Section III-B-3).
type CoreStats struct {
	LLCAccesses uint64
	LLCMisses   uint64
}

// Hierarchy is the full multicore cache model. Not safe for concurrent use.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	llc *Cache
	per []CoreStats
	// Memoized MLP-derived constants for the batched replay paths: every
	// engine passes the same mlp on every call, so the shift/divide choice
	// and the L1-hit stall are computed once per distinct value instead of
	// per batch. mlpMemo is 0 (never a legal mlp) until first use.
	mlpMemo    uint64
	mlpShift   int
	l1HitStall uint64
}

// setMLP recomputes the memoized replay constants for a new mlp value.
func (h *Hierarchy) setMLP(mlp uint64) {
	h.mlpMemo = mlp
	// latency/mlp is on the per-load hot path; a power-of-two divisor (the
	// default MLP is 4) becomes a shift. Identical quotients either way.
	h.mlpShift = -1
	if mlp != 0 && mlp&(mlp-1) == 0 {
		h.mlpShift = bits.TrailingZeros64(mlp)
	}
	h.l1HitStall = uint64(h.cfg.L1.HitLatency) / mlp
}

// NewHierarchy builds the hierarchy for cfg.Cores cores.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("cache: hierarchy with %d cores", cfg.Cores))
	}
	h := &Hierarchy{cfg: cfg, llc: New(cfg.LLC), per: make([]CoreStats, cfg.Cores)}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1))
		h.l2 = append(h.l2, New(cfg.L2))
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Load walks the hierarchy for a read by core and returns the access
// latency in cycles.
func (h *Hierarchy) Load(core int, addr uint64, nt bool) int {
	if hit, _ := h.l1[core].Access(addr, nt); hit {
		return h.cfg.L1.HitLatency
	}
	if hit, _ := h.l2[core].Access(addr, nt); hit {
		return h.cfg.L2.HitLatency
	}
	h.per[core].LLCAccesses++
	if hit, _ := h.llc.AccessBy(core, addr, nt); hit {
		return h.cfg.LLC.HitLatency
	}
	h.per[core].LLCMisses++
	return h.cfg.MemLatency
}

// Store updates the hierarchy for a write-allocate write by core. The
// returned latency models store-buffer absorption: stores cost their L1
// time only, but still disturb cache contents at every level they miss.
func (h *Hierarchy) Store(core int, addr uint64, nt bool) int {
	if hit, _ := h.l1[core].Access(addr, nt); hit {
		return 1
	}
	if hit, _ := h.l2[core].Access(addr, nt); hit {
		return 1
	}
	h.per[core].LLCAccesses++
	if hit, _ := h.llc.AccessBy(core, addr, nt); !hit {
		h.per[core].LLCMisses++
	}
	return 1
}

// Prefetch warms the hierarchy for an upcoming access without stalling.
// A non-temporal prefetch fills the private levels but is tagged NT at the
// shared level (the prefetchnta contract).
func (h *Hierarchy) Prefetch(core int, addr uint64, nt bool) {
	if hit, _ := h.l1[core].Access(addr, nt); hit {
		return
	}
	if hit, _ := h.l2[core].Access(addr, nt); hit {
		return
	}
	h.per[core].LLCAccesses++
	if hit, _ := h.llc.AccessBy(core, addr, nt); !hit {
		h.per[core].LLCMisses++
	}
}

// AccessKind tags one entry of a batched access list.
type AccessKind uint8

// Batched access kinds.
const (
	// AccessLoad is a demand read; it contributes its level latency to
	// Replay's summed stall.
	AccessLoad AccessKind = iota
	// AccessStore is a write-allocate write (store-buffer absorbed: it
	// disturbs cache contents but adds no stall).
	AccessStore
	// AccessPrefetch warms the hierarchy without stalling.
	AccessPrefetch
)

// Access is one entry of a batched access list: a decoded memory
// instruction's resolved address, ready to replay.
type Access struct {
	Addr uint64
	Kind AccessKind
	NT   bool
}

// Replay walks a batch of accesses through the hierarchy in one call — the
// superblock engine's entry point. The batch replays in order, so cache
// and counter state after Replay is identical to issuing the same
// sequence through Load/Store/Prefetch one call at a time. The return
// value is the summed load stall in cycles: each AccessLoad contributes
// latency/mlp, divided per access (matching the interpreter's
// per-instruction integer rounding); stores and prefetches contribute
// nothing. mlp must be >= 1.
func (h *Hierarchy) Replay(core int, accs []Access, mlp uint64) uint64 {
	if mlp != h.mlpMemo {
		h.setMLP(mlp)
	}
	shift, l1HitStall := h.mlpShift, h.l1HitStall
	l1 := h.l1[core]
	// The L1 repeated-line fast path is only equivalent when an NT hit at
	// the L1 behaves like an ordinary hit (true for every policy except
	// NTBypass's demote-on-hit); NT accesses otherwise take the full walk.
	ntSafe := l1.cfg.NT != NTBypass
	var stall uint64
	for i := range accs {
		a := &accs[i]
		// Repeated-line fast path, inlined from AccessBy: the previous L1
		// access left exactly this line resident and MRU, so this access is
		// a guaranteed L1 hit regardless of kind — loads stall one L1 hit,
		// stores and prefetches are absorbed. Bookkeeping is identical to
		// the walk's L1-hit outcome.
		if a.Addr>>l1.lineBits == l1.lastLine && l1.lastIdx >= 0 && (ntSafe || !a.NT) {
			l1.stats.Accesses++
			l1.stats.Hits++
			l1.clock++
			l1.stamps[l1.lastIdx] = l1.clock
			if a.Kind == AccessLoad {
				stall += l1HitStall
			}
			continue
		}
		switch a.Kind {
		case AccessLoad:
			lat := uint64(h.Load(core, a.Addr, a.NT))
			if shift >= 0 {
				stall += lat >> uint(shift)
			} else {
				stall += lat / mlp
			}
		case AccessStore:
			h.Store(core, a.Addr, a.NT)
		case AccessPrefetch:
			h.Prefetch(core, a.Addr, a.NT)
		}
	}
	return stall
}

// ReplayLoads is Replay specialized for a batch of ordinary (non-NT)
// demand loads — the dominant batch shape. Semantics are exactly Replay's
// with every access an AccessLoad with NT false: same walk, same counters,
// same summed stall.
func (h *Hierarchy) ReplayLoads(core int, addrs []uint64, mlp uint64) uint64 {
	if mlp != h.mlpMemo {
		h.setMLP(mlp)
	}
	shift, l1HitStall := h.mlpShift, h.l1HitStall
	l1 := h.l1[core]
	var stall uint64
	n := len(addrs)
	for i := 0; i < n; {
		// Repeated-line runs (see Replay's fast path): a stretch of k
		// consecutive loads to the previously-touched line are k guaranteed
		// L1 hits with nothing else touching the set in between, so only
		// the final LRU stamp is observable. Settle the whole stretch with
		// one set of counter bumps — identical end state to k walks.
		if la := addrs[i] >> l1.lineBits; la == l1.lastLine && l1.lastIdx >= 0 {
			j := i + 1
			for j < n && addrs[j]>>l1.lineBits == la {
				j++
			}
			k := uint64(j - i)
			l1.stats.Accesses += k
			l1.stats.Hits += k
			l1.clock += k
			l1.stamps[l1.lastIdx] = l1.clock
			stall += k * l1HitStall
			i = j
			continue
		}
		lat := uint64(h.Load(core, addrs[i], false))
		if shift >= 0 {
			stall += lat >> uint(shift)
		} else {
			stall += lat / mlp
		}
		i++
	}
	return stall
}

// MaxLatency returns the largest latency any single access can incur —
// the worst level of the walk. Engines use it to bound a superblock's
// worst-case cost.
func (h *Hierarchy) MaxLatency() int {
	m := h.cfg.MemLatency
	for _, l := range []int{h.cfg.L1.HitLatency, h.cfg.L2.HitLatency, h.cfg.LLC.HitLatency} {
		if l > m {
			m = l
		}
	}
	return m
}

// LLC exposes the shared level for occupancy measurements.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// L1 exposes core's private L1.
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// L2 exposes core's private L2.
func (h *Hierarchy) L2(core int) *Cache { return h.l2[core] }

// CoreStats returns a snapshot of core's shared-LLC counters.
func (h *Hierarchy) CoreStats(core int) CoreStats { return h.per[core] }

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
	}
	h.llc.Reset()
	for i := range h.per {
		h.per[i] = CoreStats{}
	}
}

// LLCOccupancy returns each core's share of valid shared-LLC lines (by
// fill attribution). A full-cache walk: use for periodic monitoring, not
// hot paths.
func (h *Hierarchy) LLCOccupancy() []int {
	counts := make([]int, h.cfg.Cores)
	h.llc.OccupancyByOwner(counts)
	return counts
}

// FlushCore evicts core-private state (L1/L2), modelling the cold private
// caches a program sees after a long nap. Shared LLC content is left alone.
func (h *Hierarchy) FlushCore(core int) {
	h.l1[core].Reset()
	h.l2[core].Reset()
}
