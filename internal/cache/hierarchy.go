package cache

import "fmt"

// HierarchyConfig sizes a multicore cache hierarchy: a private L1 and L2
// per core and one shared LLC.
type HierarchyConfig struct {
	Cores int
	L1    Config
	L2    Config
	LLC   Config
	// MemLatency is the cycles for a fill from memory.
	MemLatency int
}

// DefaultHierarchy models a small quad-core part in the spirit of the
// paper's AMD Phenom II X4 testbed: private 32 KiB L1 and 256 KiB L2,
// shared 2 MiB LLC. The LLC is deliberately modest so the synthetic
// workloads (working sets of a few MiB) contend the way SPEC-class
// programs contend on a 6 MiB part.
func DefaultHierarchy(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores:      cores,
		L1:         Config{Name: "L1", SizeBytes: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 1, NT: NTIgnore},
		L2:         Config{Name: "L2", SizeBytes: 256 << 10, LineSize: 64, Assoc: 8, HitLatency: 10, NT: NTIgnore},
		LLC:        Config{Name: "LLC", SizeBytes: 2 << 20, LineSize: 64, Assoc: 16, HitLatency: 36, NT: NTBypass},
		MemLatency: 220,
	}
}

// CoreStats aggregates per-core shared-LLC activity, the signals the
// runtime's extrospection reads ("cache misses or bandwidth usage",
// Section III-B-3).
type CoreStats struct {
	LLCAccesses uint64
	LLCMisses   uint64
}

// Hierarchy is the full multicore cache model. Not safe for concurrent use.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	llc *Cache
	per []CoreStats
}

// NewHierarchy builds the hierarchy for cfg.Cores cores.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("cache: hierarchy with %d cores", cfg.Cores))
	}
	h := &Hierarchy{cfg: cfg, llc: New(cfg.LLC), per: make([]CoreStats, cfg.Cores)}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1))
		h.l2 = append(h.l2, New(cfg.L2))
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Load walks the hierarchy for a read by core and returns the access
// latency in cycles.
func (h *Hierarchy) Load(core int, addr uint64, nt bool) int {
	if hit, _ := h.l1[core].Access(addr, nt); hit {
		return h.cfg.L1.HitLatency
	}
	if hit, _ := h.l2[core].Access(addr, nt); hit {
		return h.cfg.L2.HitLatency
	}
	h.per[core].LLCAccesses++
	if hit, _ := h.llc.AccessBy(core, addr, nt); hit {
		return h.cfg.LLC.HitLatency
	}
	h.per[core].LLCMisses++
	return h.cfg.MemLatency
}

// Store updates the hierarchy for a write-allocate write by core. The
// returned latency models store-buffer absorption: stores cost their L1
// time only, but still disturb cache contents at every level they miss.
func (h *Hierarchy) Store(core int, addr uint64, nt bool) int {
	if hit, _ := h.l1[core].Access(addr, nt); hit {
		return 1
	}
	if hit, _ := h.l2[core].Access(addr, nt); hit {
		return 1
	}
	h.per[core].LLCAccesses++
	if hit, _ := h.llc.AccessBy(core, addr, nt); !hit {
		h.per[core].LLCMisses++
	}
	return 1
}

// Prefetch warms the hierarchy for an upcoming access without stalling.
// A non-temporal prefetch fills the private levels but is tagged NT at the
// shared level (the prefetchnta contract).
func (h *Hierarchy) Prefetch(core int, addr uint64, nt bool) {
	if hit, _ := h.l1[core].Access(addr, nt); hit {
		return
	}
	if hit, _ := h.l2[core].Access(addr, nt); hit {
		return
	}
	h.per[core].LLCAccesses++
	if hit, _ := h.llc.AccessBy(core, addr, nt); !hit {
		h.per[core].LLCMisses++
	}
}

// LLC exposes the shared level for occupancy measurements.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// L1 exposes core's private L1.
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// L2 exposes core's private L2.
func (h *Hierarchy) L2(core int) *Cache { return h.l2[core] }

// CoreStats returns a snapshot of core's shared-LLC counters.
func (h *Hierarchy) CoreStats(core int) CoreStats { return h.per[core] }

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
	}
	h.llc.Reset()
	for i := range h.per {
		h.per[i] = CoreStats{}
	}
}

// LLCOccupancy returns each core's share of valid shared-LLC lines (by
// fill attribution). A full-cache walk: use for periodic monitoring, not
// hot paths.
func (h *Hierarchy) LLCOccupancy() []int {
	counts := make([]int, h.cfg.Cores)
	h.llc.OccupancyByOwner(counts)
	return counts
}

// FlushCore evicts core-private state (L1/L2), modelling the cold private
// caches a program sees after a long nap. Shared LLC content is left alone.
func (h *Hierarchy) FlushCore(core int) {
	h.l1[core].Reset()
	h.l2[core].Reset()
}
