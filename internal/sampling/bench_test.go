package sampling

import (
	"testing"

	"repro/internal/machine"
)

// BenchmarkPCSamplerGranularity compares simulation throughput with no
// sampler, a function-granularity sampler, and the full block+site deep
// sampler on the same load-heavy program. The deep-profile contract is
// that block-granular attribution costs less than 5% over the
// function-granular fallback: one sample per quantum does a block lookup
// and two map increments either way, so the delta is noise-level.
//
//	go test ./internal/sampling -bench Granularity -count 5
func BenchmarkPCSamplerGranularity(b *testing.B) {
	for _, tc := range []struct {
		name     string
		sample   bool
		flatOnly bool
	}{
		{"sampler=off", false, false},
		{"granularity=function", true, true},
		{"granularity=block", true, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := machine.New(machine.Config{Cores: 1})
			p, err := m.Attach(0, twoHotFuncs(b), machine.ProcessConfig{Restart: true})
			if err != nil {
				b.Fatal(err)
			}
			var s *PCSampler
			if tc.sample {
				s = NewPCSampler(p, m.Config().QuantumCycles)
				s.SetFunctionGranularity(tc.flatOnly)
				m.AddAgent(s)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RunQuanta(1)
			}
			b.StopTimer()
			if s != nil {
				b.ReportMetric(float64(s.Samples())/float64(b.N), "samples/quantum")
			}
		})
	}
}
