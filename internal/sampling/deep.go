package sampling

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FuncProfile is one function's sample breakdown inside a DeepProfile.
type FuncProfile struct {
	// Samples is the function's total sample count (including samples that
	// could not be attributed to a block, e.g. from binaries without block
	// tables).
	Samples uint64
	// Blocks counts samples per basic-block name. Variant code keeps the
	// original block names, so variants aggregate with their static code.
	Blocks map[string]uint64
	// Sites counts samples whose PC was a load instruction, per static IR
	// load ID — the per-site attribution PC3D's block ranking refines.
	Sites map[int]uint64
}

// DeepProfile is a hierarchical PC profile: function → block → sample
// count, with per-load-site attribution retained for sampled load PCs. It
// is the block-granular refinement of the flat Profile and feeds the
// folded-stack / pprof-raw exporters and PC3D's block-hotness ordering.
type DeepProfile struct {
	Funcs map[string]*FuncProfile
}

// NewDeepProfile returns an empty profile.
func NewDeepProfile() *DeepProfile {
	return &DeepProfile{Funcs: make(map[string]*FuncProfile)}
}

func (d *DeepProfile) fp(fn string) *FuncProfile {
	f := d.Funcs[fn]
	if f == nil {
		f = &FuncProfile{Blocks: make(map[string]uint64), Sites: make(map[int]uint64)}
		d.Funcs[fn] = f
	}
	return f
}

// Add records n samples attributed to (fn, block, loadID). An empty block
// records function-granularity samples only; loadID < 0 records no site.
func (d *DeepProfile) Add(fn, block string, loadID int, n uint64) {
	if fn == "" || n == 0 {
		return
	}
	f := d.fp(fn)
	f.Samples += n
	if block != "" {
		f.Blocks[block] += n
	}
	if loadID >= 0 {
		f.Sites[loadID] += n
	}
}

// Total sums all samples.
func (d *DeepProfile) Total() uint64 {
	var t uint64
	for _, f := range d.Funcs {
		t += f.Samples
	}
	return t
}

// Flat projects the profile down to the function→count Profile the
// phase-detection and coverage heuristics consume.
func (d *DeepProfile) Flat() Profile {
	out := make(Profile, len(d.Funcs))
	for fn, f := range d.Funcs {
		if f.Samples > 0 {
			out[fn] = f.Samples
		}
	}
	return out
}

// FuncSamples returns fn's total sample count.
func (d *DeepProfile) FuncSamples(fn string) uint64 {
	if f := d.Funcs[fn]; f != nil {
		return f.Samples
	}
	return 0
}

// BlockSamples returns the sample count of one basic block.
func (d *DeepProfile) BlockSamples(fn, block string) uint64 {
	if f := d.Funcs[fn]; f != nil {
		return f.Blocks[block]
	}
	return 0
}

// SiteSamples returns the samples that landed on load site loadID in fn.
func (d *DeepProfile) SiteSamples(fn string, loadID int) uint64 {
	if f := d.Funcs[fn]; f != nil {
		return f.Sites[loadID]
	}
	return 0
}

// Clone deep-copies the profile.
func (d *DeepProfile) Clone() *DeepProfile {
	out := NewDeepProfile()
	for fn, f := range d.Funcs {
		nf := out.fp(fn)
		nf.Samples = f.Samples
		for b, n := range f.Blocks {
			nf.Blocks[b] = n
		}
		for id, n := range f.Sites {
			nf.Sites[id] = n
		}
	}
	return out
}

// Merge adds src's counts into d. Merging per-server profiles in
// server-index order keeps the aggregate independent of worker
// interleaving (counts are commutative, but fixed order costs nothing and
// matches the telemetry rollup discipline).
func (d *DeepProfile) Merge(src *DeepProfile) {
	if src == nil {
		return
	}
	for fn, f := range src.Funcs {
		nf := d.fp(fn)
		nf.Samples += f.Samples
		for b, n := range f.Blocks {
			nf.Blocks[b] += n
		}
		for id, n := range f.Sites {
			nf.Sites[id] += n
		}
	}
}

// Deep lifts a flat function profile into a DeepProfile with no block or
// site attribution — the compatibility shim for profile sources that
// predate block tables.
func (p Profile) Deep() *DeepProfile {
	d := NewDeepProfile()
	for fn, n := range p {
		d.Add(fn, "", -1, n)
	}
	return d
}

// sortedFuncs returns function names in deterministic order: descending
// sample count, ties by name.
func (d *DeepProfile) sortedFuncs() []string {
	return d.Flat().Hottest()
}

func sortedBlocks(f *FuncProfile) []string {
	names := make([]string, 0, len(f.Blocks))
	for b := range f.Blocks {
		names = append(names, b)
	}
	sort.Slice(names, func(i, j int) bool {
		if f.Blocks[names[i]] != f.Blocks[names[j]] {
			return f.Blocks[names[i]] > f.Blocks[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// WriteFolded emits the profile in folded-stack format, one stack per
// line ("app;func;block N"), directly consumable by flamegraph.pl and
// speedscope. An empty app omits the leading frame. Samples without block
// attribution emit the two-frame stack "app;func N". Output order is
// deterministic: functions by descending heat, blocks by descending heat
// within each function.
func (d *DeepProfile) WriteFolded(w io.Writer, app string) error {
	prefix := ""
	if app != "" {
		prefix = app + ";"
	}
	for _, fn := range d.sortedFuncs() {
		f := d.Funcs[fn]
		var attributed uint64
		for _, b := range sortedBlocks(f) {
			if _, err := fmt.Fprintf(w, "%s%s;%s %d\n", prefix, fn, b, f.Blocks[b]); err != nil {
				return err
			}
			attributed += f.Blocks[b]
		}
		if rest := f.Samples - attributed; rest > 0 {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", prefix, fn, rest); err != nil {
				return err
			}
		}
	}
	return nil
}

// FoldedStacks returns the folded-stack export as a string.
func (d *DeepProfile) FoldedStacks(app string) string {
	var sb strings.Builder
	_ = d.WriteFolded(&sb, app) // strings.Builder never errors
	return sb.String()
}

// WritePprofRaw emits the profile as `pprof -raw`-style text: a Samples
// section of (count, cycles, location-stack) records followed by a
// Locations table, protobuf-free and deterministic. periodCycles is the
// sampling interval in simulated cycles (each sample stands for that many
// cycles of execution).
func (d *DeepProfile) WritePprofRaw(w io.Writer, periodCycles uint64) error {
	if periodCycles == 0 {
		periodCycles = 1
	}
	// Assign location IDs deterministically: per function (hottest first),
	// the function location then its blocks by descending heat.
	type loc struct {
		id   int
		name string
	}
	var locs []loc
	funcLoc := make(map[string]int)
	blockLoc := make(map[string]int) // "fn;block"
	for _, fn := range d.sortedFuncs() {
		funcLoc[fn] = len(locs) + 1
		locs = append(locs, loc{id: len(locs) + 1, name: fn})
		for _, b := range sortedBlocks(d.Funcs[fn]) {
			key := fn + ";" + b
			blockLoc[key] = len(locs) + 1
			locs = append(locs, loc{id: len(locs) + 1, name: key})
		}
	}
	if _, err := fmt.Fprintf(w, "PeriodType: cpu cycles\nPeriod: %d\nSamples:\nsamples/count cpu/cycles\n", periodCycles); err != nil {
		return err
	}
	for _, fn := range d.sortedFuncs() {
		f := d.Funcs[fn]
		var attributed uint64
		for _, b := range sortedBlocks(f) {
			n := f.Blocks[b]
			attributed += n
			if _, err := fmt.Fprintf(w, "%10d %10d: %d %d\n", n, n*periodCycles, blockLoc[fn+";"+b], funcLoc[fn]); err != nil {
				return err
			}
		}
		if rest := f.Samples - attributed; rest > 0 {
			if _, err := fmt.Fprintf(w, "%10d %10d: %d\n", rest, rest*periodCycles, funcLoc[fn]); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(w, "Locations"); err != nil {
		return err
	}
	for _, l := range locs {
		if _, err := fmt.Fprintf(w, "%6d: 0x%x %s\n", l.id, l.id, l.name); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "Mappings\n     1: 0x0/0x0/0x0 [simulated]")
	return err
}
