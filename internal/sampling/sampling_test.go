package sampling

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/progbin"
)

// twoHotFuncs builds a program spending ~90% of time in "heavy" and ~10%
// in "light".
func twoHotFuncs(t testing.TB) *progbin.Binary {
	t.Helper()
	mb := ir.NewModuleBuilder("twohot")
	mb.Global("g", 1<<16)

	heavy := mb.Function("heavy")
	heavy.Loop(900, func() {
		heavy.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64})
		heavy.Work(2)
	})
	heavy.Return()

	light := mb.Function("light")
	light.Loop(100, func() {
		light.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64})
		light.Work(2)
	})
	light.Return()

	cold := mb.Function("cold")
	cold.Loop(10, func() { cold.Work(1) })
	cold.Return()

	main := mb.Function("main")
	main.Loop(1<<40, func() {
		main.Call("heavy")
		main.Call("light")
	})
	main.Return()
	mb.SetEntry("main")
	b, err := pcc.Compile(mb.MustBuild(), pcc.Options{Protean: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return b
}

func TestPCSamplerHotness(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	p, err := m.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	s := NewPCSampler(p, m.Config().QuantumCycles)
	m.AddAgent(s)
	m.RunQuanta(2000)

	prof := s.Lifetime()
	if s.Samples() == 0 || prof.Total() == 0 {
		t.Fatal("no samples taken")
	}
	hot := prof.Hottest()
	if len(hot) == 0 || hot[0] != "heavy" {
		t.Fatalf("hottest = %v, want heavy first", hot)
	}
	if !prof.Covered("heavy") || !prof.Covered("light") {
		t.Error("hot functions not covered")
	}
	if prof.Covered("cold") {
		t.Error("uncalled function received samples")
	}
	norm := prof.Normalized()
	if norm["heavy"] < 0.6 {
		t.Errorf("heavy fraction = %.2f, want > 0.6", norm["heavy"])
	}
	if norm["heavy"] <= norm["light"] {
		t.Error("heavy not hotter than light")
	}
}

func TestPCSamplerWindowReset(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
	s := NewPCSampler(p, m.Config().QuantumCycles)
	m.AddAgent(s)
	m.RunQuanta(100)
	if s.Window().Total() == 0 {
		t.Fatal("window empty after run")
	}
	s.ResetWindow()
	if s.Window().Total() != 0 {
		t.Error("window not cleared")
	}
	if s.Lifetime().Total() == 0 {
		t.Error("lifetime cleared by window reset")
	}
	m.RunQuanta(100)
	if s.Window().Total() == 0 {
		t.Error("window not refilled after reset")
	}
}

func TestPCSamplerInterval(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
	// Interval of 10 quanta: ~1 sample per 10 ticks.
	s := NewPCSampler(p, m.Config().QuantumCycles*10)
	m.AddAgent(s)
	m.RunQuanta(100)
	if got := s.Samples(); got < 9 || got > 12 {
		t.Errorf("samples = %d, want ~10", got)
	}
}

func TestMeterRates(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
	mt := NewMeter(p)
	mt.Read(m) // establish baseline
	m.RunQuanta(1000)
	r := mt.Read(m)
	if r.Seconds <= 0 || r.IPS <= 0 || r.BPS <= 0 {
		t.Fatalf("bad reading: %+v", r)
	}
	if r.IPS <= r.BPS {
		t.Error("IPS should exceed BPS (not every instruction is a branch)")
	}
	if r.IPC <= 0 || r.IPC > 2 {
		t.Errorf("IPC = %.2f outside plausible range", r.IPC)
	}
	// Second read over an empty window.
	if r2 := mt.Read(m); r2.Seconds != 0 || r2.IPS != 0 {
		t.Errorf("zero-window read = %+v", r2)
	}
}

func TestMeterNapReducesIPSNotIPC(t *testing.T) {
	run := func(nap float64) Reading {
		m := machine.New(machine.Config{Cores: 1})
		p, _ := m.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
		p.SetNapIntensity(nap)
		mt := NewMeter(p)
		mt.Read(m)
		m.RunQuanta(2000)
		return mt.Read(m)
	}
	full := run(0)
	half := run(0.5)
	if half.IPS > full.IPS*0.65 || half.IPS < full.IPS*0.35 {
		t.Errorf("napped IPS %.0f vs full %.0f, want ~half", half.IPS, full.IPS)
	}
	// IPC is per busy cycle and should be roughly unchanged.
	if half.IPC < full.IPC*0.85 || half.IPC > full.IPC*1.15 {
		t.Errorf("napped IPC %.3f vs full %.3f, want similar", half.IPC, full.IPC)
	}
}

func TestMeterPeekDoesNotConsume(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
	mt := NewMeter(p)
	mt.Read(m)
	m.RunQuanta(100)
	peek := mt.Peek(m)
	read := mt.Read(m)
	if peek.Insts != read.Insts {
		t.Errorf("peek %d insts vs read %d", peek.Insts, read.Insts)
	}
	m.RunQuanta(50)
	if r := mt.Read(m); r.Insts == 0 {
		t.Error("read after peek+read lost the new window")
	}
}

func TestProfileHelpers(t *testing.T) {
	p := Profile{"a": 5, "b": 10, "c": 5}
	if p.Total() != 20 {
		t.Errorf("Total = %d", p.Total())
	}
	hot := p.Hottest()
	if hot[0] != "b" || hot[1] != "a" || hot[2] != "c" {
		t.Errorf("Hottest = %v (ties must break by name)", hot)
	}
	c := p.Clone()
	c["a"] = 99
	if p["a"] != 5 {
		t.Error("Clone aliases original")
	}
	if n := (Profile{}).Normalized(); len(n) != 0 {
		t.Error("empty profile normalizes to non-empty")
	}
}
