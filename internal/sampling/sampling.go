// Package sampling provides the runtime's two monitoring primitives
// (Section III-B-3): periodic program-counter sampling attributed to
// high-level code structures (functions, basic blocks and load sites —
// see DeepProfile), and hardware-performance-monitor readings
// (instructions, branches, cycles, shared-cache misses) turned into rates.
//
// PC samples drive introspection — which code regions are hot, and how hot
// regions change over time. HPM readings drive both introspection (host
// progress via IPC/BPC) and extrospection (co-runner progress and
// microarchitectural pressure).
package sampling

import (
	"sort"

	"repro/internal/machine"
)

// Profile is a histogram of PC samples per function name.
type Profile map[string]uint64

// Total sums all samples.
func (p Profile) Total() uint64 {
	var t uint64
	for _, n := range p {
		t += n
	}
	return t
}

// Covered reports whether fn received any samples — the signal behind
// PC3D's "Exclude Uncovered Code" heuristic.
func (p Profile) Covered(fn string) bool { return p[fn] > 0 }

// Hottest returns function names by descending sample count (ties broken
// by name for determinism) — the ordering behind "Prioritize Hotter Code".
func (p Profile) Hottest() []string {
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p[names[i]] != p[names[j]] {
			return p[names[i]] > p[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Normalized returns sample fractions per function.
func (p Profile) Normalized() map[string]float64 {
	t := p.Total()
	out := make(map[string]float64, len(p))
	if t == 0 {
		return out
	}
	for n, c := range p {
		out[n] = float64(c) / float64(t)
	}
	return out
}

// Clone copies the profile.
func (p Profile) Clone() Profile {
	out := make(Profile, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// PCSampler periodically samples one process's program counter — the
// simulation analog of sampling through the ptrace interface. It implements
// machine.Agent; register it on the machine.
type PCSampler struct {
	proc     *machine.Process
	interval uint64
	next     uint64
	window   Profile
	lifetime Profile
	deep     *DeepProfile
	samples  uint64
	flatOnly bool
}

// NewPCSampler samples proc every intervalCycles.
func NewPCSampler(proc *machine.Process, intervalCycles uint64) *PCSampler {
	return &PCSampler{
		proc:     proc,
		interval: intervalCycles,
		window:   make(Profile),
		lifetime: make(Profile),
		deep:     NewDeepProfile(),
	}
}

// SetFunctionGranularity restricts attribution to function granularity
// (no block or load-site breakdown) — the pre-block baseline, kept so the
// benchmark suite can pin the overhead of the deep path against it.
func (s *PCSampler) SetFunctionGranularity(on bool) { s.flatOnly = on }

// Tick takes due samples. With quantum-granularity ticks, one sample is
// taken per elapsed interval.
func (s *PCSampler) Tick(m *machine.Machine) {
	now := m.Now()
	if s.next == 0 {
		s.next = now
	}
	for s.next <= now {
		s.next += s.interval
		if s.flatOnly {
			fn := s.proc.CurrentFunc()
			if fn == "" {
				continue
			}
			s.window[fn]++
			s.lifetime[fn]++
			s.samples++
			continue
		}
		smp, ok := s.proc.CurrentSample()
		if !ok {
			continue
		}
		s.window[smp.Func]++
		s.lifetime[smp.Func]++
		s.samples++
		s.deep.Add(smp.Func, smp.Block, smp.LoadID, 1)
	}
}

// Samples counts all samples taken.
func (s *PCSampler) Samples() uint64 { return s.samples }

// Window returns the profile accumulated since the last ResetWindow.
func (s *PCSampler) Window() Profile { return s.window.Clone() }

// Lifetime returns the all-time profile.
func (s *PCSampler) Lifetime() Profile { return s.lifetime.Clone() }

// DeepLifetime returns the all-time hierarchical (function → block → site)
// profile. Empty (but non-nil) when SetFunctionGranularity(true) was in
// effect for every sample.
func (s *PCSampler) DeepLifetime() *DeepProfile { return s.deep.Clone() }

// ResetWindow starts a fresh windowed profile (on phase change).
func (s *PCSampler) ResetWindow() { s.window = make(Profile) }

// Reading is one HPM measurement over a window of wall time.
type Reading struct {
	// Seconds is the wall-clock window length.
	Seconds float64
	// IPS and BPS are instructions and branches retired per wall second
	// (the paper's QoS and utilization metrics).
	IPS float64
	BPS float64
	// IPC and BPC are per busy (non-napping, non-slept) cycle.
	IPC float64
	BPC float64
	// LLCMissRate is misses per shared-LLC access in the window.
	LLCMissRate float64
	// LLCMissesPerSec is the memory-bandwidth pressure signal.
	LLCMissesPerSec float64
	// Insts and Branches are the raw deltas.
	Insts    uint64
	Branches uint64
}

// Meter converts one process's counter deltas into rates. Each Read returns
// rates over the window since the previous Read.
type Meter struct {
	proc    *machine.Process
	last    machine.Counters
	lastLLC uint64
	lastAcc uint64
	lastNow uint64
	started bool
}

// NewMeter builds a meter over proc.
func NewMeter(proc *machine.Process) *Meter {
	return &Meter{proc: proc}
}

// Read returns rates since the previous Read (or since construction).
// Zero-length windows return a zero Reading.
func (mt *Meter) Read(m *machine.Machine) Reading {
	now := m.Now()
	ctr := mt.proc.Counters()
	cs := m.Hierarchy().CoreStats(mt.proc.Core())
	if !mt.started {
		mt.started = true
		mt.last, mt.lastLLC, mt.lastAcc, mt.lastNow = ctr, cs.LLCMisses, cs.LLCAccesses, now
		return Reading{}
	}
	dt := now - mt.lastNow
	if dt == 0 {
		return Reading{}
	}
	d := ctr.Sub(mt.last)
	dMiss := cs.LLCMisses - mt.lastLLC
	dAcc := cs.LLCAccesses - mt.lastAcc
	mt.last, mt.lastLLC, mt.lastAcc, mt.lastNow = ctr, cs.LLCMisses, cs.LLCAccesses, now

	freq := m.Config().FreqHz
	secs := float64(dt) / freq
	busy := d.Cycles - d.NapCycles - d.SleepCycles - d.StolenCycles
	r := Reading{
		Seconds:         secs,
		IPS:             float64(d.Insts) / secs,
		BPS:             float64(d.Branches) / secs,
		LLCMissesPerSec: float64(dMiss) / secs,
		Insts:           d.Insts,
		Branches:        d.Branches,
	}
	if busy > 0 {
		r.IPC = float64(d.Insts) / float64(busy)
		r.BPC = float64(d.Branches) / float64(busy)
	}
	if dAcc > 0 {
		r.LLCMissRate = float64(dMiss) / float64(dAcc)
	}
	return r
}

// Peek returns rates since the previous Read without consuming the window.
func (mt *Meter) Peek(m *machine.Machine) Reading {
	saveLast, saveLLC, saveAcc, saveNow, saveStarted := mt.last, mt.lastLLC, mt.lastAcc, mt.lastNow, mt.started
	r := mt.Read(m)
	mt.last, mt.lastLLC, mt.lastAcc, mt.lastNow, mt.started = saveLast, saveLLC, saveAcc, saveNow, saveStarted
	return r
}
