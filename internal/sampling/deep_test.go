package sampling

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/machine"
)

func buildDeep() *DeepProfile {
	d := NewDeepProfile()
	d.Add("heavy", "loop_body", 0, 70)
	d.Add("heavy", "loop_head", -1, 20)
	d.Add("heavy", "", -1, 10) // block-unattributed remainder
	d.Add("light", "entry", 3, 5)
	d.Add("", "ignored", 0, 9) // empty function: dropped
	d.Add("zero", "b", 0, 0)   // zero count: dropped
	return d
}

func TestDeepProfileAccounting(t *testing.T) {
	d := buildDeep()
	if d.Total() != 105 {
		t.Errorf("Total = %d, want 105", d.Total())
	}
	if d.FuncSamples("heavy") != 100 || d.BlockSamples("heavy", "loop_body") != 70 {
		t.Error("per-function/per-block counts wrong")
	}
	if d.SiteSamples("heavy", 0) != 70 || d.SiteSamples("light", 3) != 5 {
		t.Error("per-site counts wrong")
	}
	flat := d.Flat()
	if flat["heavy"] != 100 || flat["light"] != 5 || len(flat) != 2 {
		t.Errorf("Flat = %v", flat)
	}
	if _, ok := d.Funcs["zero"]; ok {
		t.Error("zero-count Add created a function entry")
	}
}

func TestDeepProfileCloneAndMerge(t *testing.T) {
	d := buildDeep()
	c := d.Clone()
	c.Add("heavy", "loop_body", 0, 1000)
	if d.BlockSamples("heavy", "loop_body") != 70 {
		t.Error("Clone aliases original maps")
	}
	m := NewDeepProfile()
	m.Merge(d)
	m.Merge(d)
	if m.Total() != 2*d.Total() || m.BlockSamples("heavy", "loop_head") != 40 {
		t.Error("Merge did not sum counts")
	}
	m.Merge(nil) // nil-safe
	if m.Total() != 2*d.Total() {
		t.Error("nil Merge changed counts")
	}
}

func TestProfileDeepLift(t *testing.T) {
	d := Profile{"a": 7, "b": 3}.Deep()
	if d.Total() != 10 || d.FuncSamples("a") != 7 {
		t.Error("lift lost counts")
	}
	if len(d.Funcs["a"].Blocks) != 0 || len(d.Funcs["a"].Sites) != 0 {
		t.Error("flat lift invented block/site attribution")
	}
}

// foldedLine is the speedscope/flamegraph.pl collapsed-stack grammar: one
// or more ;-separated non-empty frames, a single space, a positive count.
var foldedLine = regexp.MustCompile(`^[^; ]+(;[^; ]+)* \d+$`)

func TestFoldedStacksSpeedscopeShape(t *testing.T) {
	d := buildDeep()
	out := d.FoldedStacks("app")
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	var total uint64
	for _, ln := range lines {
		if !foldedLine.MatchString(ln) {
			t.Errorf("line %q is not valid folded-stack syntax", ln)
		}
		if !strings.HasPrefix(ln, "app;") {
			t.Errorf("line %q missing app frame", ln)
		}
		n, err := strconv.ParseUint(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		if err != nil {
			t.Errorf("line %q count: %v", ln, err)
		}
		total += n
	}
	if total != d.Total() {
		t.Errorf("folded counts sum to %d, want %d (no samples lost)", total, d.Total())
	}
	// Deterministic order: hottest function first, hottest block first,
	// remainder after the function's block lines.
	want := "app;heavy;loop_body 70\napp;heavy;loop_head 20\napp;heavy 10\napp;light;entry 5\n"
	if out != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", out, want)
	}
	// Empty app drops the leading frame.
	if !strings.HasPrefix(d.FoldedStacks(""), "heavy;loop_body 70\n") {
		t.Error("empty app still prefixed")
	}
}

func TestWritePprofRawShape(t *testing.T) {
	d := buildDeep()
	var sb strings.Builder
	if err := d.WritePprofRaw(&sb, 5000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"PeriodType: cpu cycles",
		"Period: 5000",
		"samples/count cpu/cycles",
		"Locations",
		"Mappings",
		"heavy;loop_body",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The hottest sample line: 70 samples × 5000 cycles, block loc then
	// func loc (leaf-first stack).
	if !strings.Contains(out, "        70     350000: 2 1\n") {
		t.Errorf("hottest sample record missing:\n%s", out)
	}
	// Deterministic across calls.
	var sb2 strings.Builder
	_ = d.WritePprofRaw(&sb2, 5000)
	if sb2.String() != out {
		t.Error("pprof-raw export not deterministic")
	}
}

// TestSamplerBlockAttribution: the machine-integration half — samples from
// a real simulated process carry block names and load sites, and the deep
// profile agrees with the flat one.
func TestSamplerBlockAttribution(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	p, err := m.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	s := NewPCSampler(p, m.Config().QuantumCycles)
	m.AddAgent(s)
	m.RunQuanta(2000)

	deep := s.DeepLifetime()
	if deep.Total() != s.Lifetime().Total() {
		t.Errorf("deep total %d != flat total %d", deep.Total(), s.Lifetime().Total())
	}
	hf := deep.Funcs["heavy"]
	if hf == nil || len(hf.Blocks) == 0 {
		t.Fatal("no block attribution for the hot function")
	}
	var blockSum uint64
	for _, n := range hf.Blocks {
		blockSum += n
	}
	if blockSum != hf.Samples {
		t.Errorf("heavy: blocks sum %d != samples %d (protean binaries carry full block tables)", blockSum, hf.Samples)
	}
	if len(hf.Sites) == 0 {
		t.Error("no load-site attribution despite a load-heavy loop")
	}
	// Function-granularity fallback records no blocks at all.
	m2 := machine.New(machine.Config{Cores: 1})
	p2, _ := m2.Attach(0, twoHotFuncs(t), machine.ProcessConfig{Restart: true})
	s2 := NewPCSampler(p2, m2.Config().QuantumCycles)
	s2.SetFunctionGranularity(true)
	m2.AddAgent(s2)
	m2.RunQuanta(200)
	if s2.Lifetime().Total() == 0 {
		t.Fatal("flat-only sampler took no samples")
	}
	if s2.DeepLifetime().Total() != 0 {
		t.Error("function-granularity mode still fed the deep profile")
	}
}
