package fleet

import (
	"fmt"
	"sort"
)

// ServerSlot describes one server offered to the placement scheduler.
type ServerSlot struct {
	// Index is the server's position in the fleet.
	Index int
	// BaseLoad is the server's expected webservice load over the run in
	// [0,1]: the mean of its (phase-offset) offered-load trace, or 1.0 in
	// a saturated fleet. It is the scheduler's only source of server
	// heterogeneity, exactly the signal a cluster manager reads from
	// per-node telemetry before placing work.
	BaseLoad float64
}

// Instance is one batch instance awaiting placement.
type Instance struct {
	App string
	// Pressure is the app's measured solo LLC miss rate (misses per
	// simulated second): the workload catalog's contentiousness signal,
	// measured rather than assumed.
	Pressure float64
}

// Policy places batch instances onto servers, at most one instance per
// server (core 1 is the only batch core; cores 0/2 hold the webservice and
// the protean runtime).
type Policy interface {
	Name() string
	// Place returns, for each instance (in input order), the index of the
	// chosen server. Implementations must not double-book a server.
	Place(instances []Instance, servers []ServerSlot) []int
}

// RoundRobin walks the rack in order: instance i lands on the i-th server.
// It ignores all telemetry, the baseline any real cluster scheduler is
// measured against.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Place implements Policy.
func (RoundRobin) Place(instances []Instance, servers []ServerSlot) []int {
	out := make([]int, len(instances))
	for i := range instances {
		out[i] = servers[i%len(servers)].Index
	}
	return out
}

// LeastLoaded greedily places each instance on the free server with the
// lowest measured webservice utilization (ties break to the lowest index),
// so batch work lands where the latency-sensitive tenant has the most
// headroom.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Place implements Policy.
func (LeastLoaded) Place(instances []Instance, servers []ServerSlot) []int {
	order := byLoad(servers)
	out := make([]int, len(instances))
	for i := range instances {
		if i < len(order) {
			out[i] = order[i].Index
		} else {
			out[i] = order[i%len(order)].Index
		}
	}
	return out
}

// ContentionAware pairs the most contentious batch instances (highest solo
// LLC miss rate) with the least-loaded servers: heavy cache aggressors get
// the co-runners with the most QoS slack, so PC3D needs the least napping
// fleet-wide.
type ContentionAware struct{}

// Name implements Policy.
func (ContentionAware) Name() string { return "contention-aware" }

// Place implements Policy.
func (ContentionAware) Place(instances []Instance, servers []ServerSlot) []int {
	order := byLoad(servers)
	// Rank instances most-contentious first; stable on input order so
	// placement is deterministic for equal pressures.
	rank := make([]int, len(instances))
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool {
		return instances[rank[a]].Pressure > instances[rank[b]].Pressure
	})
	out := make([]int, len(instances))
	for pos, inst := range rank {
		if pos < len(order) {
			out[inst] = order[pos].Index
		} else {
			out[inst] = order[pos%len(order)].Index
		}
	}
	return out
}

// byLoad returns servers sorted by ascending BaseLoad, ties to the lowest
// index.
func byLoad(servers []ServerSlot) []ServerSlot {
	order := append([]ServerSlot(nil), servers...)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].BaseLoad != order[b].BaseLoad {
			return order[a].BaseLoad < order[b].BaseLoad
		}
		return order[a].Index < order[b].Index
	})
	return order
}

// Policies lists the built-in placement policies.
func Policies() []Policy {
	return []Policy{RoundRobin{}, LeastLoaded{}, ContentionAware{}}
}

// PolicyByName resolves a placement policy by its CLI name.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fleet: unknown placement policy %q", name)
}
