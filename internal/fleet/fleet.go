// Package fleet simulates a warehouse-scale cluster as N concurrently
// simulated servers, replacing trust in the closed-form Figure 17/18
// projection with measurement. Each server is a full internal/machine
// instance — its own webservice, batch co-runner, mitigation policy
// (PC3D, ReQoS or none) and QoS monitor — and a placement scheduler
// assigns batch instances from a datacenter mix to servers under
// pluggable policies. Per-server counters aggregate into cluster
// metrics: utilization and QoS distributions, violation counts, batch
// throughput, and energy from measured utilizations through the same
// linear power model the analytic projection uses, so the two routes to
// the paper's warehouse-scale claims can be cross-checked.
//
// Servers are simulated across a bounded worker pool. Every machine is a
// self-contained single-goroutine simulation and all cross-server inputs
// (binaries, calibrations) are immutable during the run, so aggregate
// results are bit-identical at any worker count under a fixed seed.
package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/datacenter"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/progbin"
	"repro/internal/sampling"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// System selects each server's contention-mitigation policy.
type System int

// Mitigation systems.
const (
	// SystemNone co-locates with no mitigation.
	SystemNone System = iota
	// SystemPC3D runs the full protean runtime with the PC3D policy.
	SystemPC3D
	// SystemReQoS runs the reactive napping baseline.
	SystemReQoS
)

func (s System) String() string {
	switch s {
	case SystemNone:
		return "none"
	case SystemPC3D:
		return "PC3D"
	case SystemReQoS:
		return "ReQoS"
	}
	return fmt.Sprintf("system(%d)", int(s))
}

// SystemByName resolves a mitigation system by CLI name.
func SystemByName(name string) (System, error) {
	switch name {
	case "none":
		return SystemNone, nil
	case "pc3d", "PC3D":
		return SystemPC3D, nil
	case "reqos", "ReQoS":
		return SystemReQoS, nil
	}
	return 0, fmt.Errorf("fleet: unknown system %q", name)
}

// Config sizes and parameterizes a fleet run.
type Config struct {
	// Servers is the fleet size.
	Servers int
	// Webservice is the latency-sensitive tenant on every server.
	Webservice string
	// Mix supplies the batch instances (drawn equally via Mix.Instances).
	Mix datacenter.Mix
	// Instances is the batch instance count (default Servers; must be
	// <= Servers, one batch core per server).
	Instances int
	// System is the per-server mitigation policy (default SystemPC3D).
	System System
	// Target is the webservice QoS target (default 0.95).
	Target float64
	// Policy places batch instances on servers (default LeastLoaded).
	Policy Policy
	// Seed derives every server's machine seed; a fixed seed gives
	// bit-identical metrics at any worker count.
	Seed int64
	// Engine selects the machine execution engine on every server
	// ("" = machine.DefaultEngine). Engines are bit-identical, so fleet
	// metrics are unchanged by this knob.
	Engine string
	// Workers bounds concurrent server simulations (default
	// runtime.NumCPU()).
	Workers int
	// SoloSeconds, SettleSeconds and MeasureSeconds mirror the harness
	// scales: calibration window, pre-measurement settling (covers PC3D's
	// search) and the steady-state measurement window (defaults 1 / 5.5 /
	// 1, the BenchScale shape).
	SoloSeconds    float64
	SettleSeconds  float64
	MeasureSeconds float64
	// Trace, when set, gates every webservice behind an offered-load
	// trace; server i sees the trace phase-shifted by
	// i/Servers·PhaseSpreadSeconds, so the cluster sweeps the whole
	// diurnal cycle at any instant. When nil the webservices run
	// saturated (the Figures 9-15 regime).
	Trace loadgen.Trace
	// PhaseSpreadSeconds is the total phase offset fanned across the
	// fleet (default: one Trace period is unknowable here, so 0 = all
	// servers in phase).
	PhaseSpreadSeconds float64
	// MaxSites caps PC3D's search (0 = full search).
	MaxSites int
	// Scale supplies the power-model constants (default
	// datacenter.DefaultScale()).
	Scale datacenter.ScaleConfig
	// Chaos enables deterministic fault injection: server crashes with
	// scheduler re-placement, protean-runtime crashes (supervised
	// recovery), compile failures and QoS-sensor dropouts. Nil injects
	// nothing. Chaos.Seed defaults to Seed, so one seed pins placement and
	// failures together.
	Chaos *faults.Chaos
	// Migration enables the online contention-detection → live-migration
	// control loop (internal/contend): the run advances in decision
	// epochs, a streaming detector flags contended servers from their
	// counters, and flagged servers' batch instances migrate to
	// least-loaded healthy servers after a blackout. Nil keeps placement
	// static (the PRs-1–5 behavior, bit-for-bit).
	Migration *MigrationConfig
	// SLO enables the judgment layer (internal/slo): the run advances in
	// decision epochs (shared with Migration's when both are on), a tsdb
	// store samples every registered metric at each barrier, declarative
	// SLOs evaluate as multi-window burn-rate rules, and a flight recorder
	// freezes postmortem bundles when alerts fire. Nil evaluates nothing.
	SLO *SLOConfig
	// ScrapeIntervalQuanta is how often each server deposits a live
	// snapshot for the -serve scrape surface, in machine quanta
	// (default 64). Smaller = fresher scrapes, more snapshot copying.
	ScrapeIntervalQuanta int
	// Telemetry, when non-nil, receives the cluster rollup: every server
	// simulates with its own single-writer registry (machine, core, pc3d
	// and supervise all report into it), and after the workers join the
	// per-server registries merge into this one in server-index order —
	// so the Prometheus export and JSONL trace are bit-identical at any
	// worker count under a fixed seed. Nil still instruments internally
	// (Metrics' chaos counters are read from the rollup); the registry is
	// then only reachable via Fleet.Telemetry.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Instances == 0 {
		c.Instances = c.Servers
	}
	if c.Target == 0 {
		c.Target = 0.95
	}
	if c.Policy == nil {
		c.Policy = LeastLoaded{}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.SoloSeconds == 0 {
		c.SoloSeconds = 1
	}
	if c.SettleSeconds == 0 {
		c.SettleSeconds = 5.5
	}
	if c.MeasureSeconds == 0 {
		c.MeasureSeconds = 1
	}
	if c.Scale.BaseServers == 0 {
		c.Scale = datacenter.DefaultScale()
	}
	if c.Chaos != nil {
		ch := c.Chaos.WithDefaults()
		if ch.Seed == 0 {
			ch.Seed = c.Seed
		}
		c.Chaos = &ch
	}
	if c.Migration != nil {
		mg := c.Migration.withDefaults(c)
		c.Migration = &mg
	}
	if c.SLO != nil {
		// After Migration's defaults: the SLO window rides its barriers.
		sc := c.SLO.withDefaults(c)
		c.SLO = &sc
	}
	if c.ScrapeIntervalQuanta <= 0 {
		c.ScrapeIntervalQuanta = publishEveryQuanta
	}
	return c
}

func (c Config) validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("fleet: need at least one server, got %d", c.Servers)
	}
	if c.Instances > c.Servers {
		return fmt.Errorf("fleet: %d batch instances exceed %d servers (one batch core each)", c.Instances, c.Servers)
	}
	if _, ok := workload.ByName(c.Webservice); !ok {
		return fmt.Errorf("fleet: unknown webservice %q", c.Webservice)
	}
	if len(c.Mix.Apps) == 0 && c.Instances > 0 {
		return fmt.Errorf("fleet: mix %q has no apps", c.Mix.Name)
	}
	return nil
}

// ServerResult is one server's measured steady-state outcome.
type ServerResult struct {
	Index int
	// App is the last batch instance the server hosted: the placed
	// instance, a re-placed arrival absorbed after another server's
	// crash, or a migration landing ("" for a server that never hosted
	// batch work). A migrated-out server keeps the departed app's name so
	// its pre-eviction batch work stays attributed.
	App string
	// Utilization is the batch work done during the measurement window
	// normalized to solo rates — banked across migrations, so a server
	// that hosted for only part of the window reports the partial work.
	Utilization float64
	// QoS is the webservice's delivered quality: normalized IPS when
	// saturated, served/offered when load-gated. A crash scales it by the
	// fraction of the measurement window the server was up.
	QoS float64
	// Load is the webservice's mean offered load during measurement
	// (1.0 when saturated).
	Load float64

	// Chaos outcomes (zero when fault injection is off).

	// Crashed reports whole-server failure before the run's end.
	Crashed bool
	// Availability is the fraction of the measurement window the server
	// was up (1 when it never crashed).
	Availability float64
	// Absorbed counts re-placed batch instances this server picked up.
	Absorbed int
	// Faulted reports a surviving server that was fault-affected: it
	// absorbed a re-placement, lost a runtime, dropped compiles, or lost
	// sensor windows. Per-event counts live on the telemetry rollup
	// (Fleet.Telemetry) rather than being duplicated here.
	Faulted bool

	// Migration outcomes (zero when Config.Migration is nil).

	// MigratedIn counts live-migrated batch instances that landed here;
	// MigratedOut counts instances evicted from here by the planner.
	MigratedIn  int
	MigratedOut int
}

// Dist summarizes a cluster-wide value distribution. P05 and P01 are the
// low-end tails: for a quality metric (higher = better) they are the
// levels 95% and 99% of servers meet or exceed — the "p95/p99 tail" of
// QoS reporting.
type Dist struct {
	Mean, P50, P95, P05, P01, Min float64
}

func distOf(vals []float64) Dist {
	if len(vals) == 0 {
		return Dist{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Dist{
		Mean: sum / float64(len(s)),
		P50:  rank(0.50), P95: rank(0.95), P05: rank(0.05), P01: rank(0.01),
		Min: s[0],
	}
}

// Metrics aggregates a fleet run.
type Metrics struct {
	Servers   int
	Instances int
	Policy    string
	System    System
	// Utilization is the distribution over batch-hosting servers.
	Utilization Dist
	// QoS is the webservice QoS distribution over all servers.
	QoS Dist
	// QoSViolations counts servers measuring below the QoS target.
	QoSViolations int
	// BatchUnits is total batch throughput in dedicated-server units
	// (Σ per-server utilization, each clamped to [0,1] exactly as the
	// analytic projection clamps).
	BatchUnits float64
	// ExtraServersEquivalent is the dedicated batch servers a
	// no-co-location fleet would need for the same batch throughput.
	ExtraServersEquivalent int
	// EnergyEfficiencyRatio is the measured-fleet work-per-Watt over the
	// no-co-location equivalent's, from per-server measured utilization
	// through the shared linear power model.
	EnergyEfficiencyRatio float64
	// PerApp averages utilization per batch app, the direct input for
	// cross-checking datacenter.Project.
	PerApp    map[string]float64
	PerServer []ServerResult

	// Chaos aggregates (zero when fault injection is off).

	// Availability is the mean fraction of the measurement window servers
	// were up.
	Availability float64
	// Crashes counts whole-server failures; Replacements counts batch
	// instances the scheduler re-placed on survivors; UnplacedInstances
	// counts victims it could not re-place in time.
	Crashes           int
	Replacements      int
	UnplacedInstances int
	// RuntimeCrashes / RuntimeRestarts sum protean-runtime deaths and
	// supervised re-attaches across the fleet.
	RuntimeCrashes  int
	RuntimeRestarts int
	// CompileFailures and SensorDropouts sum per-server policy counts.
	CompileFailures int
	SensorDropouts  int
	// DegradedQoS / DegradedUtilization are the distributions over
	// fault-affected survivors: servers that stayed up but absorbed a
	// re-placement, lost a runtime, dropped compiles, or lost sensor
	// windows. They quantify how gracefully service degrades under faults.
	DegradedQoS         Dist
	DegradedUtilization Dist

	// Migration aggregates (zero when Config.Migration is nil).

	// Migrations counts executed live migrations; MigrationQuantaLost is
	// the batch quanta spent in migration blackouts (the modeled cost);
	// ContendedServers is the detector's flagged count at the last
	// decision epoch.
	Migrations          int
	MigrationQuantaLost uint64
	ContendedServers    int
	// MovesFailed counts migrations that did not land (detach faults +
	// rollbacks); MoveRollbacks and MoveRetries break the failure path
	// down; BreakerTrips counts circuit-breaker openings; CorruptSamples
	// and StaleSamples count injected detector-sensor faults.
	MovesFailed    int
	MoveRollbacks  int
	MoveRetries    int
	BreakerTrips   int
	CorruptSamples int
	StaleSamples   int
	// AuditViolations counts invariant breaches the conservation auditor
	// observed (0 = the run provably never lost or duplicated an
	// instance).
	AuditViolations int

	// SLO aggregates (zero when Config.SLO is nil).

	// AlertsFired / AlertsResolved count burn-rate alert lifecycle edges;
	// Postmortems counts flight-recorder bundles frozen during the run.
	AlertsFired    int
	AlertsResolved int
	Postmortems    int
}

// calibration holds the immutable solo measurements every server
// simulation reads.
type calibration struct {
	soloBPS   map[string]float64
	soloIPS   map[string]float64
	pressure  map[string]float64 // solo LLC misses per simulated second
	plain     map[string]*progbin.Binary
	protean   map[string]*progbin.Binary
	wsSoloIPS float64
	wsPeakQPS float64
}

// Fleet is one configured cluster simulation.
type Fleet struct {
	cfg Config
	cal calibration
	// placement maps instance -> server index; assignment maps server
	// index -> app name ("" when batch-free). Valid after Run.
	placement []int
	slots     []ServerSlot
	instances []Instance
	// tel is the cluster telemetry rollup (cfg.Telemetry, or an internal
	// registry); serverTel holds the per-server registries until they merge
	// in index order after the workers join. Kept off Metrics so metric
	// snapshots stay plain comparable data.
	tel       *telemetry.Registry
	serverTel []*telemetry.Registry
	// serverProf holds each server's end-of-run deep profiles (app name →
	// profile, webservice included); merged in index order by WriteProfile.
	serverProf []map[string]*sampling.DeepProfile
	// live is the scrape surface state; non-nil once Handler was called.
	live *liveState
	// contendMu guards contendStat, the migration control loop's latest
	// published snapshot (served at /contend, exported after Run).
	contendMu   sync.Mutex
	contendStat *ContendStatus
	// audit is the conservation auditor (non-nil once the migration epoch
	// loop starts); auditStat is its latest published snapshot, guarded by
	// contendMu like contendStat (served at /audit, returned by
	// AuditReport).
	audit     *auditor
	auditStat *AuditReport
	// sloObs is the SLO observer (non-nil once the epoch loop starts with
	// Config.SLO set); the rendered snapshots below are its per-barrier
	// publications, guarded by contendMu (served at /slo, /alerts,
	// /postmortem).
	sloObs       *sloObserver
	sloStatJSON  string
	alertLogJSON string
	sloBundles   []*slo.Bundle
}

// New validates the configuration and builds a fleet.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Fleet{cfg: cfg}, nil
}

// Config returns the effective configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Telemetry returns the cluster telemetry rollup (valid after Run): the
// per-server registries merged in server-index order, plus the fleet-level
// aggregates. Its Prometheus export and JSONL trace are bit-identical at
// any worker count under a fixed seed.
func (f *Fleet) Telemetry() *telemetry.Registry { return f.tel }

// Placement returns instance → server index (valid after Run).
func (f *Fleet) Placement() []int { return f.placement }

// Instances returns the placed batch instances with their measured
// pressures (valid after Run).
func (f *Fleet) Instances() []Instance { return f.instances }

// serverSeed mixes the fleet seed with a server index (splitmix64-style)
// so each machine gets a distinct, reproducible address-stream seed.
func serverSeed(seed int64, idx int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x >> 1) // keep it positive for readability in dumps
}

// offset returns server i's phase offset in seconds.
func (f *Fleet) offset(i int) float64 {
	if f.cfg.Trace == nil || f.cfg.Servers == 0 {
		return 0
	}
	return f.cfg.PhaseSpreadSeconds * float64(i) / float64(f.cfg.Servers)
}

// trace returns server i's offered-load trace, or nil when saturated.
func (f *Fleet) trace(i int) loadgen.Trace {
	if f.cfg.Trace == nil {
		return nil
	}
	return loadgen.Offset{Trace: f.cfg.Trace, By: f.offset(i)}
}

// forEach fans f(0..n-1) across the worker pool, returning the
// lowest-index error.
func (f *Fleet) forEach(n int, fn func(i int) error) error {
	w := f.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run calibrates, places, simulates every server across the worker pool,
// and aggregates cluster metrics.
func (f *Fleet) Run() (Metrics, error) {
	apps := f.cfg.Mix.Instances(f.cfg.Instances)
	if err := f.calibrate(apps); err != nil {
		return Metrics{}, err
	}
	if err := f.place(apps); err != nil {
		return Metrics{}, err
	}

	assignment := make([]string, f.cfg.Servers)
	for inst, srv := range f.placement {
		assignment[srv] = apps[inst]
	}
	// The fault schedule and the scheduler's re-placement reactions are
	// fixed before any server simulates, keeping them independent of
	// worker interleaving.
	plan := f.buildChaosPlan(assignment)
	f.tel = f.cfg.Telemetry
	if f.tel == nil {
		f.tel = telemetry.New(telemetry.Config{})
	}
	f.tel.Gauge("fleet", "scrape_interval_quanta", "live-publisher snapshot deposit interval in scheduler quanta").
		Set(float64(f.cfg.ScrapeIntervalQuanta))
	// One single-writer registry per server; workers write disjoint slots.
	f.serverTel = make([]*telemetry.Registry, f.cfg.Servers)
	f.serverProf = make([]map[string]*sampling.DeepProfile, f.cfg.Servers)
	sims := make([]*serverSim, f.cfg.Servers)
	err := f.forEach(f.cfg.Servers, func(i int) error {
		s, err := newServerSim(f, i, assignment[i], plan.plans[i])
		sims[i] = s
		return err
	})
	if err != nil {
		return Metrics{}, err
	}
	horizon := f.cfg.SettleSeconds + f.cfg.MeasureSeconds
	if f.cfg.Migration != nil || f.cfg.SLO != nil {
		// Advance the fleet in decision epochs: every server stops at the
		// epoch boundary, the (single-threaded) coordinator reads counters,
		// applies migrations and evaluates SLOs, then the next epoch
		// begins. Decisions are pure functions of (seed, epoch counters),
		// so the segmented timeline is bit-identical at any worker count.
		err = f.runEpochs(sims, horizon, &plan)
	} else {
		err = f.forEach(f.cfg.Servers, func(i int) error {
			return sims[i].advanceTo(horizon)
		})
	}
	if err != nil {
		return Metrics{}, err
	}
	results := make([]ServerResult, f.cfg.Servers)
	err = f.forEach(f.cfg.Servers, func(i int) error {
		res, err := sims[i].finish()
		results[i] = res
		return err
	})
	if err != nil {
		return Metrics{}, err
	}
	if f.audit != nil {
		// Final sweep at the horizon: every pending arrival on a live
		// server has landed by now, so the census reduces to hosted +
		// stranded-on-dead and must still conserve the placed population.
		f.audit.check(f.audit.lastEpoch+1, horizon,
			f.tel.CounterValue("contend", "migration_quanta_lost_total"),
			f.tel.CounterValue("contend", "migrations_total"),
			f.tel.CounterValue("contend", "moves_failed_total"))
		f.publishAudit(f.audit.rep.clone())
	}
	// Merge in server-index order: the rollup's sums, histogram buckets and
	// trace are then independent of worker interleaving.
	for i, sr := range f.serverTel {
		f.tel.MergeFrom(sr, i)
	}
	return f.aggregate(results, plan), nil
}

// runEpochs drives the shared decision-epoch loop: every server advances
// to the barrier across the worker pool, then the single-threaded
// coordinator section runs — first the migration step (when on), then the
// SLO step (when on), which therefore observes the epoch's moves. The two
// always share one epoch clock; with migration on, its window wins (see
// SLOConfig.withDefaults).
func (f *Fleet) runEpochs(sims []*serverSim, horizon float64, plan *chaosPlan) error {
	var g *migrator
	window := 0.0
	if f.cfg.Migration != nil {
		g = f.newMigrator(sims, horizon, plan)
		window = g.mc.WindowSeconds
	}
	if f.cfg.SLO != nil {
		f.sloObs = f.newSLOObserver(sims, horizon)
		window = f.cfg.SLO.WindowSeconds
	}
	n := len(sims)
	for e := 1; ; e++ {
		t := float64(e) * window
		if t >= horizon-1e-9 {
			// The final partial segment runs in finish(); no decision at
			// the horizon itself.
			break
		}
		if err := f.forEach(n, func(i int) error { return sims[i].advanceTo(t) }); err != nil {
			return err
		}
		if g != nil {
			if err := g.barrier(e, t); err != nil {
				return err
			}
		}
		if f.sloObs != nil {
			f.sloObs.barrier(e, t)
		}
	}
	return nil
}

// calibrate measures solo rates, contentiousness and webservice capacity
// for every distinct app, in parallel; all downstream reads are immutable.
func (f *Fleet) calibrate(apps []string) error {
	distinct := []string{f.cfg.Webservice}
	seen := map[string]bool{f.cfg.Webservice: true}
	for _, a := range apps {
		if !seen[a] {
			seen[a] = true
			distinct = append(distinct, a)
		}
	}
	f.cal = calibration{
		soloBPS:  make(map[string]float64),
		soloIPS:  make(map[string]float64),
		pressure: make(map[string]float64),
		plain:    make(map[string]*progbin.Binary),
		protean:  make(map[string]*progbin.Binary),
	}
	var mu sync.Mutex
	err := f.forEach(len(distinct), func(i int) error {
		name := distinct[i]
		spec, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("fleet: unknown app %q", name)
		}
		plain, err := spec.CompilePlain()
		if err != nil {
			return err
		}
		var prot *progbin.Binary
		if f.cfg.System == SystemPC3D && name != f.cfg.Webservice {
			if prot, err = spec.CompileProtean(); err != nil {
				return err
			}
		}
		bps, ips, miss, err := f.soloRates(plain)
		if err != nil {
			return err
		}
		var qps float64
		if name == f.cfg.Webservice && f.cfg.Trace != nil {
			if qps, err = f.peakQPS(plain); err != nil {
				return err
			}
		}
		mu.Lock()
		defer mu.Unlock()
		f.cal.plain[name] = plain
		f.cal.protean[name] = prot
		f.cal.soloBPS[name] = bps
		f.cal.soloIPS[name] = ips
		f.cal.pressure[name] = miss
		if name == f.cfg.Webservice {
			f.cal.wsSoloIPS = ips
			f.cal.wsPeakQPS = qps
		}
		return nil
	})
	return err
}

// soloRates measures an app's interference-free BPS, IPS and LLC miss
// rate on a dedicated machine.
func (f *Fleet) soloRates(bin *progbin.Binary) (bps, ips, missRate float64, err error) {
	m := machine.New(machine.Config{Cores: 4, Seed: f.cfg.Seed, Engine: f.cfg.Engine})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		return 0, 0, 0, err
	}
	m.RunSeconds(0.5)
	c0 := p.Counters()
	m0 := m.Hierarchy().CoreStats(0).LLCMisses
	m.RunSeconds(f.cfg.SoloSeconds)
	d := p.Counters().Sub(c0)
	dm := m.Hierarchy().CoreStats(0).LLCMisses - m0
	sec := f.cfg.SoloSeconds
	return float64(d.Branches) / sec, float64(d.Insts) / sec, float64(dm) / sec, nil
}

// peakQPS measures the webservice's solo capacity in gated mode.
func (f *Fleet) peakQPS(bin *progbin.Binary) (float64, error) {
	m := machine.New(machine.Config{Cores: 4, Seed: f.cfg.Seed, Engine: f.cfg.Engine})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Gated: true})
	if err != nil {
		return 0, err
	}
	quanta := int(2 * m.Config().FreqHz / float64(m.Config().QuantumCycles))
	return loadgen.MeasureCapacity(m, p, quanta), nil
}

// place runs the scheduler and validates its assignment.
func (f *Fleet) place(apps []string) error {
	f.slots = make([]ServerSlot, f.cfg.Servers)
	horizon := f.cfg.SettleSeconds + f.cfg.MeasureSeconds
	for i := range f.slots {
		load := 1.0
		if tr := f.trace(i); tr != nil {
			load = loadgen.MeanLoad(tr, horizon)
		}
		f.slots[i] = ServerSlot{Index: i, BaseLoad: load}
	}
	f.instances = make([]Instance, len(apps))
	for i, a := range apps {
		f.instances[i] = Instance{App: a, Pressure: f.cal.pressure[a]}
	}
	f.placement = f.cfg.Policy.Place(f.instances, f.slots)
	if len(f.placement) != len(apps) {
		return fmt.Errorf("fleet: policy %s placed %d of %d instances", f.cfg.Policy.Name(), len(f.placement), len(apps))
	}
	used := make(map[int]bool, len(f.placement))
	for inst, srv := range f.placement {
		if srv < 0 || srv >= f.cfg.Servers {
			return fmt.Errorf("fleet: policy %s placed instance %d on out-of-range server %d", f.cfg.Policy.Name(), inst, srv)
		}
		if used[srv] {
			return fmt.Errorf("fleet: policy %s double-booked server %d", f.cfg.Policy.Name(), srv)
		}
		used[srv] = true
	}
	return nil
}

// aggregate folds per-server results into cluster metrics, in server-index
// order so floating-point sums are identical at any worker count.
func (f *Fleet) aggregate(results []ServerResult, plan chaosPlan) Metrics {
	cfg := f.cfg
	mt := Metrics{
		Servers:           cfg.Servers,
		Instances:         cfg.Instances,
		Policy:            cfg.Policy.Name(),
		System:            cfg.System,
		PerApp:            make(map[string]float64),
		PerServer:         results,
		Crashes:           plan.crashes,
		Replacements:      plan.replacements,
		UnplacedInstances: plan.unplaced,
	}
	// The per-server registries merged before aggregation; fleet-wide chaos
	// counters are read off the rollup rather than re-summed from results.
	mt.RuntimeCrashes = int(f.tel.CounterValue("supervise", "reaps_total"))
	mt.RuntimeRestarts = int(f.tel.CounterValue("supervise", "restarts_total"))
	mt.CompileFailures = int(f.tel.CounterValue("pc3d", "compile_failures_total"))
	mt.SensorDropouts = int(f.tel.CounterValue("pc3d", "sensor_dropouts_total"))
	mt.Migrations = int(f.tel.CounterValue("contend", "migrations_total"))
	mt.MigrationQuantaLost = uint64(f.tel.CounterValue("contend", "migration_quanta_lost_total"))
	mt.ContendedServers = int(f.tel.GaugeValue("contend", "contended_servers"))
	mt.MovesFailed = int(f.tel.CounterValue("contend", "moves_failed_total"))
	mt.MoveRollbacks = int(f.tel.CounterValue("contend", "move_rollbacks_total"))
	mt.MoveRetries = int(f.tel.CounterValue("contend", "move_retries_total"))
	mt.BreakerTrips = int(f.tel.CounterValue("contend", "breaker_trips_total"))
	mt.CorruptSamples = int(f.tel.CounterValue("contend", "corrupt_samples_total"))
	mt.StaleSamples = int(f.tel.CounterValue("contend", "stale_samples_total"))
	if f.audit != nil {
		mt.AuditViolations = len(f.audit.rep.Violations)
		f.tel.Counter("fleet", "audit_violations_total", "invariant breaches the conservation auditor observed").Add(uint64(mt.AuditViolations))
	}
	if f.sloObs != nil {
		mt.AlertsFired = int(f.tel.CounterValue("slo", "alerts_fired_total"))
		mt.AlertsResolved = int(f.tel.CounterValue("slo", "alerts_resolved_total"))
		mt.Postmortems = int(f.tel.CounterValue("slo", "postmortems_total"))
	}
	var utils, qs, degQ, degU []float64
	availSum := 0.0
	perAppN := make(map[string]int)
	fleetPower, ncPower := 0.0, 0.0
	hQoS := f.tel.Histogram("fleet", "server_qos", "per-server webservice QoS", []float64{0.5, 0.8, 0.9, 0.95, 0.99, 1})
	hUtil := f.tel.Histogram("fleet", "server_utilization", "per-server batch utilization", []float64{0.25, 0.5, 0.75, 0.9, 1})
	for _, r := range results {
		qs = append(qs, r.QoS)
		hQoS.Observe(r.QoS)
		if r.QoS < cfg.Target {
			mt.QoSViolations++
		}
		availSum += r.Availability
		if r.Faulted {
			degQ = append(degQ, r.QoS)
			if r.App != "" {
				degU = append(degU, r.Utilization)
			}
		}
		wsPart := cfg.Scale.WebserviceUtil * r.Load
		u := 0.0
		if r.App != "" {
			utils = append(utils, r.Utilization)
			hUtil.Observe(r.Utilization)
			mt.PerApp[r.App] += r.Utilization
			perAppN[r.App]++
			u = math.Min(r.Utilization, 1)
			mt.BatchUnits += u
		}
		fleetPower += datacenter.Power(cfg.Scale, wsPart+(1-cfg.Scale.WebserviceUtil)*u)
		ncPower += datacenter.Power(cfg.Scale, wsPart) + u*datacenter.Power(cfg.Scale, 1)
	}
	for app, n := range perAppN {
		mt.PerApp[app] /= float64(n)
	}
	mt.Utilization = distOf(utils)
	mt.QoS = distOf(qs)
	mt.DegradedQoS = distOf(degQ)
	mt.DegradedUtilization = distOf(degU)
	if cfg.Servers > 0 {
		mt.Availability = availSum / float64(cfg.Servers)
	}
	mt.ExtraServersEquivalent = int(mt.BatchUnits + 0.5)
	if fleetPower > 0 {
		mt.EnergyEfficiencyRatio = ncPower / fleetPower
	}
	// Fleet-level aggregates join the rollup so one export carries the
	// whole picture (the plan's scheduler-side counts have no per-server
	// registry to live on).
	f.tel.Counter("fleet", "scheduled_crashes_total", "whole-server failures in the chaos plan").Add(uint64(plan.crashes))
	f.tel.Counter("fleet", "replacements_total", "batch instances the scheduler re-placed on survivors").Add(uint64(plan.replacements))
	f.tel.Counter("fleet", "unplaced_instances_total", "crash victims the scheduler could not re-place in time").Add(uint64(plan.unplaced))
	f.tel.Counter("fleet", "qos_violation_servers_total", "servers measuring below the QoS target").Add(uint64(mt.QoSViolations))
	f.tel.Gauge("fleet", "availability", "mean fraction of the measurement window servers were up").Set(mt.Availability)
	f.tel.Gauge("fleet", "batch_units", "total batch throughput in dedicated-server units").Set(mt.BatchUnits)
	f.tel.Gauge("fleet", "energy_efficiency_ratio", "measured work-per-Watt over the no-co-location equivalent").Set(mt.EnergyEfficiencyRatio)
	return mt
}
