package fleet

import (
	"reflect"
	"testing"
)

func slots(loads ...float64) []ServerSlot {
	out := make([]ServerSlot, len(loads))
	for i, l := range loads {
		out[i] = ServerSlot{Index: i, BaseLoad: l}
	}
	return out
}

func insts(pressures ...float64) []Instance {
	out := make([]Instance, len(pressures))
	for i, p := range pressures {
		out[i] = Instance{App: "app", Pressure: p}
	}
	return out
}

func TestRoundRobinPlacesInOrder(t *testing.T) {
	got := RoundRobin{}.Place(insts(5, 1, 3), slots(0.9, 0.1, 0.5, 0.2))
	want := []int{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-robin placement = %v, want %v", got, want)
	}
}

func TestLeastLoadedPrefersIdleServers(t *testing.T) {
	// Loads 0.9, 0.1, 0.5, 0.2 → fill order should be servers 1, 3, 2, 0.
	got := LeastLoaded{}.Place(insts(1, 1, 1), slots(0.9, 0.1, 0.5, 0.2))
	want := []int{1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("least-loaded placement = %v, want %v", got, want)
	}
}

func TestLeastLoadedBreaksTiesByIndex(t *testing.T) {
	got := LeastLoaded{}.Place(insts(1, 1), slots(0.5, 0.5, 0.5))
	want := []int{0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tied placement = %v, want %v", got, want)
	}
}

func TestContentionAwarePairsAggressorsWithIdleServers(t *testing.T) {
	// Instance pressures 10, 90, 50: the heaviest (instance 1) must land
	// on the least-loaded server (1), the lightest (instance 0) on the
	// most-loaded server actually used.
	got := ContentionAware{}.Place(insts(10, 90, 50), slots(0.9, 0.1, 0.5, 0.2))
	want := []int{2, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("contention-aware placement = %v, want %v", got, want)
	}
}

func TestContentionAwareStableOnEqualPressure(t *testing.T) {
	got := ContentionAware{}.Place(insts(7, 7, 7), slots(0.3, 0.1, 0.2))
	want := []int{1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("equal-pressure placement = %v, want %v", got, want)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, p := range Policies() {
		got, err := PolicyByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Fatalf("PolicyByName(%q) = %v, %v", p.Name(), got, err)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("PolicyByName(bogus) should fail")
	}
}

func TestSystemByName(t *testing.T) {
	cases := map[string]System{"none": SystemNone, "pc3d": SystemPC3D, "PC3D": SystemPC3D, "reqos": SystemReQoS}
	for name, want := range cases {
		got, err := SystemByName(name)
		if err != nil || got != want {
			t.Fatalf("SystemByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := SystemByName("magic"); err == nil {
		t.Fatal("SystemByName(magic) should fail")
	}
}

// doubleBooker violates the no-double-booking contract on purpose.
type doubleBooker struct{}

func (doubleBooker) Name() string { return "double-booker" }
func (doubleBooker) Place(instances []Instance, servers []ServerSlot) []int {
	return make([]int, len(instances)) // everything on server 0
}

func TestPlaceRejectsDoubleBooking(t *testing.T) {
	f := &Fleet{cfg: Config{Servers: 3, Instances: 2, Policy: doubleBooker{}}.withDefaults()}
	f.cal.pressure = map[string]float64{}
	if err := f.place([]string{"a", "b"}); err == nil {
		t.Fatal("place should reject a double-booking policy")
	}
}

func TestDistOf(t *testing.T) {
	d := distOf([]float64{0.4, 0.2, 1.0, 0.8, 0.6})
	if d.Mean != 0.6 || d.P50 != 0.6 || d.P95 != 1.0 || d.Min != 0.2 {
		t.Fatalf("distOf = %+v", d)
	}
	if z := distOf(nil); z != (Dist{}) {
		t.Fatalf("distOf(nil) = %+v", z)
	}
}

func TestServerSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := serverSeed(7, i)
		if seen[s] {
			t.Fatalf("duplicate seed for server %d", i)
		}
		seen[s] = true
	}
	if serverSeed(7, 3) != serverSeed(7, 3) {
		t.Fatal("serverSeed must be deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Servers: 0, Webservice: "web-search"}); err == nil {
		t.Fatal("zero servers should fail")
	}
	if _, err := New(Config{Servers: 2, Instances: 3, Webservice: "web-search"}); err == nil {
		t.Fatal("more instances than servers should fail")
	}
	if _, err := New(Config{Servers: 2, Webservice: "no-such-app"}); err == nil {
		t.Fatal("unknown webservice should fail")
	}
}
