// The epoch-barrier invariant auditor: an independent witness that the
// transactional migration protocol keeps its promise. At every decision
// epoch (and once more at the horizon) it sweeps the fleet and checks,
// from the simulator state itself rather than the coordinator's
// bookkeeping, that
//
//   - conservation: every batch instance is on exactly one server or in
//     exactly one in-flight move — hosted(alive) + in-flight(alive) +
//     stranded-on-dead == the placed instance count, always;
//   - occupancy: no server holds more than one instance (live or inbound)
//     — the state that would silently drop an arrival;
//   - monotonicity: per-server simulated clocks and instruction counters
//     never run backwards across epochs;
//   - accounting: the migration counters (landed, failed, quanta lost)
//     match the sum of the per-move records the coordinator logged.
//
// Violations are recorded, counted into fleet_audit_violations_total and
// Metrics.AuditViolations, and exported as deterministic JSON (the /audit
// endpoint and the -audit-out flag) — byte-identical at any worker count.
package fleet

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
)

// Audit violation kinds.
const (
	// AuditConservation: the instance population didn't sum to the placed
	// count — an instance was lost or duplicated.
	AuditConservation = "conservation"
	// AuditOccupancy: a server held more than one instance (live or
	// inbound).
	AuditOccupancy = "occupancy"
	// AuditMonotonic: a per-server clock or counter ran backwards.
	AuditMonotonic = "monotonic"
	// AuditQuanta: the blackout quanta counter drifted from the per-move
	// records.
	AuditQuanta = "quanta"
	// AuditCounter: a move-outcome counter drifted from the per-move
	// records.
	AuditCounter = "counter"
)

// AuditViolation is one invariant breach at one epoch.
type AuditViolation struct {
	// Epoch is the decision epoch (matching ContendStatus.Epoch; the final
	// horizon sweep uses the last epoch + 1).
	Epoch int
	// Kind is one of the Audit* constants.
	Kind string
	// Server is the offending server (-1 for fleet-wide checks).
	Server int
	// Detail states the observed vs expected values.
	Detail string
}

// AuditEpoch is the population census at one epoch barrier.
type AuditEpoch struct {
	Epoch     int
	AtSeconds float64
	// Hosted counts instances attached to live servers; InFlight counts
	// arrivals pending on live servers (blackouts and re-placements in
	// progress); Stranded counts instances attached to or inbound on
	// crashed servers (lost to the crash, not to migration).
	Hosted     int
	InFlight   int
	Stranded   int
	Violations int
}

// AuditReport is the auditor's full run record.
type AuditReport struct {
	// Instances is the placed batch instance population being conserved.
	Instances int
	Epochs    []AuditEpoch
	// Violations is every breach in epoch order.
	Violations []AuditViolation
}

// Clean reports a run with no invariant violations.
func (r *AuditReport) Clean() bool { return len(r.Violations) == 0 }

func (r *AuditReport) clone() *AuditReport {
	c := *r
	c.Epochs = append([]AuditEpoch(nil), r.Epochs...)
	c.Violations = append([]AuditViolation(nil), r.Violations...)
	return &c
}

// WriteJSON renders the report as deterministic JSON: fixed field order,
// canonical float formatting, no reflection.
func (r *AuditReport) WriteJSON(w io.Writer) error {
	var b strings.Builder
	ff := telemetry.FormatFloat
	clean := "false"
	if r.Clean() {
		clean = "true"
	}
	fmt.Fprintf(&b, "{\n  \"instances\": %d,\n  \"epochs_checked\": %d,\n  \"violations\": %d,\n  \"clean\": %s,\n",
		r.Instances, len(r.Epochs), len(r.Violations), clean)
	b.WriteString("  \"epochs\": [")
	for i, ep := range r.Epochs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"epoch\": %d, \"at_seconds\": %s, \"hosted\": %d, \"in_flight\": %d, \"stranded\": %d, \"violations\": %d}",
			ep.Epoch, ff(ep.AtSeconds), ep.Hosted, ep.InFlight, ep.Stranded, ep.Violations)
	}
	b.WriteString("\n  ],\n  \"violation_log\": [")
	for i, v := range r.Violations {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"epoch\": %d, \"kind\": %q, \"server\": %d, \"detail\": %q}",
			v.Epoch, v.Kind, v.Server, v.Detail)
	}
	b.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// publishAudit deposits a report snapshot for /audit and AuditReport.
func (f *Fleet) publishAudit(r *AuditReport) {
	f.contendMu.Lock()
	f.auditStat = r
	f.contendMu.Unlock()
}

// AuditReport returns the conservation auditor's latest published report
// (nil before the first decision epoch, or when migration is off). Safe to
// call from any goroutine; the returned copy is the caller's.
func (f *Fleet) AuditReport() *AuditReport {
	f.contendMu.Lock()
	defer f.contendMu.Unlock()
	if f.auditStat == nil {
		return nil
	}
	return f.auditStat.clone()
}

// auditor accumulates the report across epoch barriers. All state is
// touched only in the single-threaded coordinator sections.
type auditor struct {
	sims []*serverSim
	rep  AuditReport

	// Per-server monotonicity marks from the previous barrier.
	prevNow   []uint64
	prevInsts []uint64

	// Expectations accumulated from the coordinator's move records,
	// cross-checked against the live counters each epoch.
	expectLost uint64
	expectMig  uint64
	expectFail uint64
	lastEpoch  int
}

func newAuditor(f *Fleet, sims []*serverSim) *auditor {
	a := &auditor{
		sims:      sims,
		prevNow:   make([]uint64, len(sims)),
		prevInsts: make([]uint64, len(sims)),
	}
	for _, s := range sims {
		if s.host != nil {
			a.rep.Instances++
		}
	}
	return a
}

// recordMove folds one move record into the audit expectations.
func (a *auditor) recordMove(rec MoveRecord) {
	a.expectLost += rec.QuantaLost
	if rec.Outcome == MoveLanded {
		a.expectMig++
	} else {
		a.expectFail++
	}
}

func (a *auditor) violate(ep *AuditEpoch, kind string, server int, format string, args ...any) {
	a.rep.Violations = append(a.rep.Violations, AuditViolation{
		Epoch: ep.Epoch, Kind: kind, Server: server,
		Detail: fmt.Sprintf(format, args...),
	})
	ep.Violations++
}

// check sweeps the fleet at one epoch barrier. lost/mig/fail are the live
// counter values to cross-check against the move records.
func (a *auditor) check(epoch int, t float64, lost, mig, fail uint64) {
	a.lastEpoch = epoch
	ep := AuditEpoch{Epoch: epoch, AtSeconds: t}
	for i, s := range a.sims {
		occ := 0
		if s.host != nil {
			occ = 1
		}
		p := len(s.pending)
		if occ+p > 1 {
			a.violate(&ep, AuditOccupancy, i, "hosting %d with %d inbound", occ, p)
		}
		if !s.res.Crashed || t < s.stop {
			ep.Hosted += occ
			ep.InFlight += p
		} else {
			ep.Stranded += occ + p
		}
		now := s.m.Now()
		if now < a.prevNow[i] {
			a.violate(&ep, AuditMonotonic, i, "clock ran backwards: %d after %d", now, a.prevNow[i])
		}
		a.prevNow[i] = now
		insts := s.ws.Counters().Insts
		if insts < a.prevInsts[i] {
			a.violate(&ep, AuditMonotonic, i, "instruction counter ran backwards: %d after %d", insts, a.prevInsts[i])
		}
		a.prevInsts[i] = insts
	}
	if got := ep.Hosted + ep.InFlight + ep.Stranded; got != a.rep.Instances {
		a.violate(&ep, AuditConservation, -1,
			"%d instances accounted (hosted %d + in-flight %d + stranded %d), placed %d",
			got, ep.Hosted, ep.InFlight, ep.Stranded, a.rep.Instances)
	}
	if lost != a.expectLost {
		a.violate(&ep, AuditQuanta, -1, "quanta counter %d, move records sum to %d", lost, a.expectLost)
	}
	if mig != a.expectMig {
		a.violate(&ep, AuditCounter, -1, "migrations counter %d, landed records %d", mig, a.expectMig)
	}
	if fail != a.expectFail {
		a.violate(&ep, AuditCounter, -1, "failure counter %d, failed records %d", fail, a.expectFail)
	}
	a.rep.Epochs = append(a.rep.Epochs, ep)
}
