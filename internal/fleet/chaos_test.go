package fleet

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/datacenter"
	"repro/internal/faults"
)

// chaosConfig is a small PC3D fleet with every fault class switched on.
func chaosConfig(workers int) Config {
	return Config{
		Servers:        6,
		Instances:      4,
		Webservice:     "web-search",
		Mix:            datacenter.Mix{Name: "test", Apps: []string{"libquantum", "milc"}},
		System:         SystemPC3D,
		Seed:           42,
		Workers:        workers,
		SoloSeconds:    0.5,
		SettleSeconds:  1.5,
		MeasureSeconds: 0.5,
		MaxSites:       3,
		Chaos: &faults.Chaos{
			ServerCrashProb:         0.4,
			RestartDelaySeconds:     0.3,
			CompileFailProb:         0.2,
			RuntimeCrashMTTFSeconds: 1.5,
			QoSDropoutProb:          0.25,
		},
	}
}

// TestChaosDeterministicAcrossWorkerCounts extends the fleet's core
// concurrency contract to fault injection: crash schedules, re-placement,
// supervised runtime restarts, compile faults and sensor dropouts must all
// land identically at any worker count.
func TestChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) Metrics {
		f, err := New(chaosConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial := run(1)
	concurrent := run(4)
	if !reflect.DeepEqual(serial, concurrent) {
		t.Fatalf("chaos metrics diverge across worker counts:\nserial:     %+v\nconcurrent: %+v", serial, concurrent)
	}
}

// TestTelemetrySnapshotDeterministicAcrossWorkerCounts is the telemetry
// plane's determinism contract: the Prometheus text snapshot and the
// merged JSONL event trace must be byte-identical between a serial run
// and an 8-worker run of the same seeded chaos fleet. Events carry only
// simulated-time stamps and merge in server-index order, so goroutine
// interleaving must be invisible in the export.
func TestTelemetrySnapshotDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (string, string) {
		f, err := New(chaosConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(); err != nil {
			t.Fatal(err)
		}
		tel := f.Telemetry()
		return tel.PrometheusText(), tel.JSONL()
	}
	prom1, trace1 := run(1)
	prom8, trace8 := run(8)
	if prom1 != prom8 {
		t.Errorf("Prometheus snapshots diverge across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", prom1, prom8)
	}
	if trace1 != trace8 {
		t.Errorf("JSONL traces diverge across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", trace1, trace8)
	}
	if trace1 == "" {
		t.Error("chaos run produced an empty event trace")
	}
}

func TestChaosMetricsSanity(t *testing.T) {
	f, err := New(chaosConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Crashes == 0 {
		t.Fatal("no server crashed at p=0.4 over 6 servers (seed 42); pick a different seed")
	}
	if m.Availability <= 0 || m.Availability > 1 {
		t.Fatalf("Availability = %v", m.Availability)
	}
	if m.Availability >= 1 {
		t.Fatalf("Availability = %v with %d crashes", m.Availability, m.Crashes)
	}
	crashed, absorbed := 0, 0
	for _, r := range m.PerServer {
		if r.Crashed {
			crashed++
			if r.Availability >= 1 {
				t.Errorf("server %d crashed but Availability = %v", r.Index, r.Availability)
			}
		}
		absorbed += r.Absorbed
		if r.QoS < 0 || r.QoS > 1.001 {
			t.Errorf("server %d QoS = %v", r.Index, r.QoS)
		}
		if math.IsNaN(r.QoS) || math.IsNaN(r.Utilization) {
			t.Errorf("server %d has NaN metrics: %+v", r.Index, r)
		}
	}
	if crashed != m.Crashes {
		t.Errorf("PerServer crashes %d != Metrics.Crashes %d", crashed, m.Crashes)
	}
	if absorbed != m.Replacements {
		t.Errorf("absorbed arrivals %d != Replacements %d", absorbed, m.Replacements)
	}
	if m.Replacements+m.UnplacedInstances == 0 && m.Crashes > 0 {
		// Only fails if no crashed server hosted a batch instance, which
		// this seed avoids.
		t.Error("crashes hit batch servers but scheduler neither re-placed nor gave up")
	}
	if m.RuntimeRestarts == 0 {
		t.Error("no supervised runtime restarts at MTTF 1.5s over a 2s run")
	}
	if m.SensorDropouts == 0 {
		t.Error("no sensor dropouts recorded at p=0.25")
	}
}

// TestChaosGracefulDegradation: batch throughput and availability must fall
// as the server-crash rate rises, but the fleet must keep serving (no
// collapse to zero while any server survives).
func TestChaosGracefulDegradation(t *testing.T) {
	run := func(rate float64) Metrics {
		cfg := chaosConfig(3)
		cfg.Chaos = &faults.Chaos{ServerCrashProb: rate}
		if rate == 0 {
			cfg.Chaos = nil
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	healthy := run(0)
	faulty := run(0.5)
	if healthy.Availability != 1 || healthy.Crashes != 0 {
		t.Fatalf("healthy run reports chaos: %+v", healthy)
	}
	if faulty.Crashes == 0 {
		t.Fatal("no crashes at rate 0.5")
	}
	if faulty.Availability >= healthy.Availability {
		t.Errorf("availability did not degrade: %.3f vs %.3f", faulty.Availability, healthy.Availability)
	}
	if faulty.BatchUnits >= healthy.BatchUnits {
		t.Errorf("batch throughput did not degrade: %.3f vs %.3f", faulty.BatchUnits, healthy.BatchUnits)
	}
	if faulty.BatchUnits <= 0 {
		t.Error("batch throughput collapsed to zero despite survivors")
	}
	if faulty.QoS.Mean <= 0.3 {
		t.Errorf("mean QoS %.3f collapsed under crashes", faulty.QoS.Mean)
	}
}
