// SLO observer: the fleet-side wiring of the judgment layer. At every
// decision-epoch barrier (shared with the migration coordinator when both
// are on) the observer — single-threaded, after the workers joined —
//
//  1. computes per-server service-level indicators for the epoch: QoS
//     attainment (did this server's webservice meet the target this
//     epoch), availability (was the server up), migration-blackout budget
//     (quanta lost to blackouts vs fleet capacity) and audit cleanliness,
//     feeding them into cumulative good/total tsdb series,
//  2. samples every registered counter, gauge and histogram quantile into
//     the tsdb store — fleet rollup first, then the per-server registries
//     in index order, so the store is identical at any worker count,
//  3. evaluates the SLO engine's multi-window burn-rate rules, and
//  4. on a firing transition or a new conservation-audit violation,
//     freezes a postmortem bundle: the trailing tsdb window, the merged
//     event-trace tail, the open span tree, and the contend/audit/SLO
//     snapshots.
//
// The observer keeps its own per-server counter marks — the contention
// detector's sampler resets marks it owns, and the two must not share.
package fleet

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// SLOConfig enables the SLO engine on a fleet run.
type SLOConfig struct {
	// WindowSeconds is the evaluation-epoch length (default 0.5). With
	// Migration set the SLO engine always shares the migration barrier
	// cadence — one epoch clock per run.
	WindowSeconds float64
	// Specs are the SLOs to evaluate (nil = DefaultSLOSpecs()).
	Specs []slo.Spec
	// TSDB sizes the time-series store.
	TSDB tsdb.Config
	// BoostBudget, when > 0 with Migration on, raises the per-epoch
	// migration budget by this many extra moves while the BoostSpec alert
	// is firing — the control loop reacting harder while QoS burns.
	BoostBudget int
	// BoostSpec names the spec whose firing state gates the boost
	// (default "qos-attainment").
	BoostSpec string
	// RecorderCap bounds the flight recorder (default 16 bundles).
	RecorderCap int
	// TraceTailEvents is how many merged trace events a postmortem bundle
	// freezes (default 64).
	TraceTailEvents int
	// WindowEpochs is the trailing tsdb window a bundle freezes
	// (default 32).
	WindowEpochs int
}

func (sc SLOConfig) withDefaults(c Config) SLOConfig {
	if c.Migration != nil {
		// One epoch clock per run: SLO rides the migration barriers.
		sc.WindowSeconds = c.Migration.WindowSeconds
	} else if sc.WindowSeconds <= 0 {
		sc.WindowSeconds = 0.5
	}
	if sc.Specs == nil {
		sc.Specs = DefaultSLOSpecs()
	}
	if sc.BoostSpec == "" {
		sc.BoostSpec = "qos-attainment"
	}
	if sc.RecorderCap <= 0 {
		sc.RecorderCap = slo.DefaultRecorderCap
	}
	if sc.TraceTailEvents <= 0 {
		sc.TraceTailEvents = 64
	}
	if sc.WindowEpochs <= 0 {
		sc.WindowEpochs = 32
	}
	return sc
}

// Series names the observer feeds (cumulative counters; the engine's
// windows difference them). Exported so custom SLOConfig.Specs can target
// the built-in indicators.
const (
	SeriesQoSGood       = "slo:qos_good"
	SeriesQoSTotal      = "slo:qos_total"
	SeriesAvailGood     = "slo:avail_good"
	SeriesAvailTotal    = "slo:avail_total"
	SeriesBlackoutGood  = "slo:blackout_good"
	SeriesBlackoutTotal = "slo:blackout_total"
	SeriesAuditGood     = "slo:audit_good"
	SeriesAuditTotal    = "slo:audit_total"
)

// DefaultSLOSpecs is the stock SLO suite: QoS attainment and availability
// page on fast burns, the migration-blackout budget and audit invariants
// ticket/page on theirs. Windows are in decision epochs and sized for the
// short simulated horizons this repo runs (a real fleet would use hours).
func DefaultSLOSpecs() []slo.Spec {
	return []slo.Spec{
		{
			Name: "qos-attainment", Good: SeriesQoSGood, Total: SeriesQoSTotal,
			// Objective: 90% of alive server-epochs meet the QoS target.
			Objective: 0.9,
			Rules: []slo.BurnRule{
				{LongEpochs: 4, ShortEpochs: 1, Burn: 2, Severity: "page"},
				{LongEpochs: 8, ShortEpochs: 2, Burn: 1, Severity: "ticket"},
			},
			PendingEpochs: 1, ResolveEpochs: 2,
		},
		{
			Name: "availability", Good: SeriesAvailGood, Total: SeriesAvailTotal,
			// Objective: 99% of server-epochs up.
			Objective: 0.99,
			Rules: []slo.BurnRule{
				{LongEpochs: 2, ShortEpochs: 1, Burn: 2, Severity: "page"},
			},
			PendingEpochs: 1, ResolveEpochs: 2,
		},
		{
			Name: "blackout-budget", Good: SeriesBlackoutGood, Total: SeriesBlackoutTotal,
			// Objective: at most 2% of batch quanta lost to blackouts.
			Objective: 0.98,
			Rules: []slo.BurnRule{
				{LongEpochs: 4, ShortEpochs: 1, Burn: 2, Severity: "ticket"},
			},
			PendingEpochs: 1, ResolveEpochs: 2,
		},
		{
			Name: "audit-clean", Good: SeriesAuditGood, Total: SeriesAuditTotal,
			// Objective 1.0: a single conservation violation is an
			// infinite burn and pages immediately.
			Objective: 1,
			Rules: []slo.BurnRule{
				{LongEpochs: 1, ShortEpochs: 1, Burn: 1, Severity: "page"},
			},
			PendingEpochs: 1, ResolveEpochs: 1,
		},
	}
}

// sloObserver is the per-run state of the SLO barrier step. Touched only in
// the single-threaded coordinator section.
type sloObserver struct {
	f       *Fleet
	sc      SLOConfig
	sims    []*serverSim
	db      *tsdb.Store
	eng     *slo.Engine
	rec     *slo.Recorder
	horizon float64

	// Per-server marks for per-epoch deltas (the contend detector keeps its
	// own; never share).
	lastWS  []machine.Counters
	lastOff []uint64
	lastT   float64

	// Cumulative SLI accumulators mirrored into tsdb series.
	qosGood, qosTotal           float64
	availGood, availTotal       float64
	blackoutGood, blackoutTotal float64
	auditGood, auditTotal       float64

	// lastLost / lastViol are the previous barrier's readings for deltas.
	lastLost uint64
	lastViol int
	// capacityQuanta is the fleet's batch quanta per epoch (blackout
	// budget denominator).
	capacityQuanta float64

	cFired, cResolved, cBundles *telemetry.Counter
	gFiring                     *telemetry.Gauge
}

func (f *Fleet) newSLOObserver(sims []*serverSim, horizon float64) *sloObserver {
	sc := *f.cfg.SLO
	mcfg := sims[0].m.Config()
	quantaPerEpoch := sc.WindowSeconds * mcfg.FreqHz / float64(mcfg.QuantumCycles)
	o := &sloObserver{
		f: f, sc: sc, sims: sims, horizon: horizon,
		db:             tsdb.New(sc.TSDB),
		rec:            slo.NewRecorder(sc.RecorderCap),
		lastWS:         make([]machine.Counters, len(sims)),
		lastOff:        make([]uint64, len(sims)),
		capacityQuanta: quantaPerEpoch * float64(len(sims)),
		cFired:         f.tel.Counter("slo", "alerts_fired_total", "SLO alert firing transitions"),
		cResolved:      f.tel.Counter("slo", "alerts_resolved_total", "SLO alert resolved transitions"),
		cBundles:       f.tel.Counter("slo", "postmortems_total", "postmortem bundles the flight recorder froze"),
		gFiring:        f.tel.Gauge("slo", "alerts_firing", "SLO alerts currently firing"),
	}
	o.eng = slo.NewEngine(o.db, sc.Specs)
	return o
}

// boostBudget returns the extra migration budget granted while the boost
// spec fires (0 otherwise). Read by the migrator at the next barrier, so
// the boost reflects the previous epoch's alert state — the earliest a
// real control loop could react.
func (f *Fleet) boostBudget() int {
	o := f.sloObs
	if o == nil || o.sc.BoostBudget <= 0 || !o.eng.Firing(o.sc.BoostSpec) {
		return 0
	}
	return o.sc.BoostBudget
}

// observeSLIs computes the epoch's per-server indicators and appends the
// cumulative series. Returns whether the conservation auditor reported new
// violations this epoch (a flight-recorder trigger).
func (o *sloObserver) observeSLIs(epoch int, t float64) (newViolations bool) {
	dt := t - o.lastT
	for i, s := range o.sims {
		o.availTotal++
		alive := t < s.stop
		wc := s.ws.Counters()
		var off uint64
		if s.gen != nil {
			off = s.gen.Offered()
		}
		if alive {
			o.availGood++
			dws := wc.Sub(o.lastWS[i])
			ratio := 1.0
			if s.gen != nil {
				if dOff := off - o.lastOff[i]; dOff > 0 {
					ratio = float64(dws.Completions) / float64(dOff)
					if ratio > 1 {
						ratio = 1
					}
				}
			} else if dt > 0 && o.f.cal.wsSoloIPS > 0 {
				ratio = float64(dws.Insts) / dt / o.f.cal.wsSoloIPS
			}
			o.qosTotal++
			if ratio >= o.f.cfg.Target {
				o.qosGood++
			}
		}
		o.lastWS[i], o.lastOff[i] = wc, off
	}
	o.lastT = t

	lost := uint64(o.f.tel.CounterValue("contend", "migration_quanta_lost_total"))
	dLost := float64(lost - o.lastLost)
	o.lastLost = lost
	if dLost > o.capacityQuanta {
		dLost = o.capacityQuanta
	}
	o.blackoutTotal += o.capacityQuanta
	o.blackoutGood += o.capacityQuanta - dLost

	viol := 0
	if o.f.audit != nil {
		viol = len(o.f.audit.rep.Violations)
	}
	o.auditTotal++
	if viol == o.lastViol {
		o.auditGood++
	} else {
		newViolations = true
	}
	o.lastViol = viol

	for _, sv := range []struct {
		name string
		v    float64
	}{
		{SeriesQoSGood, o.qosGood}, {SeriesQoSTotal, o.qosTotal},
		{SeriesAvailGood, o.availGood}, {SeriesAvailTotal, o.availTotal},
		{SeriesBlackoutGood, o.blackoutGood}, {SeriesBlackoutTotal, o.blackoutTotal},
		{SeriesAuditGood, o.auditGood}, {SeriesAuditTotal, o.auditTotal},
	} {
		o.db.Observe(sv.name, tsdb.Point{Epoch: epoch, T: t, V: sv.v})
	}
	return newViolations
}

// barrier is the observer's single-threaded epoch step: SLIs, full metric
// sample, rule evaluation, flight-recorder captures, publication.
func (o *sloObserver) barrier(epoch int, t float64) {
	newViolations := o.observeSLIs(epoch, t)
	regs := make([]*telemetry.Registry, 0, len(o.sims)+1)
	regs = append(regs, o.f.tel)
	regs = append(regs, o.f.serverTel...)
	o.db.Sample(epoch, t, regs...)

	for _, tr := range o.eng.Evaluate(epoch, t) {
		switch tr.To {
		case "firing":
			o.cFired.Inc()
			o.capture("alert:"+tr.Spec, epoch, t)
		case "resolved":
			o.cResolved.Inc()
		}
	}
	if newViolations {
		o.capture("audit:violation", epoch, t)
	}
	firing := 0
	for _, s := range o.sc.Specs {
		if o.eng.Firing(s.Name) {
			firing++
		}
	}
	o.gFiring.Set(float64(firing))
	o.publish()
}

// publish deposits rendered snapshots for the live endpoints.
func (o *sloObserver) publish() {
	statJSON := o.eng.StatusJSON()
	logJSON := o.eng.Log().JSON()
	bundles := o.rec.Bundles()
	f := o.f
	f.contendMu.Lock()
	f.sloStatJSON = statJSON
	f.alertLogJSON = logJSON
	f.sloBundles = bundles
	f.contendMu.Unlock()
}

// capture freezes one postmortem bundle.
func (o *sloObserver) capture(reason string, epoch int, t float64) {
	secs := []slo.Section{
		{Name: "slo", JSON: o.eng.StatusJSON()},
		{Name: "tsdb_window", JSON: o.tsdbWindowJSON()},
		{Name: "trace_tail", JSON: o.traceTailJSON()},
		{Name: "open_spans", JSON: o.openSpansJSON()},
		{Name: "contend", JSON: o.contendJSON()},
		{Name: "audit", JSON: o.auditJSON()},
	}
	if b := o.rec.Capture(reason, epoch, t, secs); b != nil {
		o.cBundles.Inc()
	}
}

func (o *sloObserver) tsdbWindowJSON() string {
	var b strings.Builder
	o.db.WriteWindowJSON(&b, o.sc.WindowEpochs) //nolint:errcheck // strings.Builder never errors
	return b.String()
}

// traceTailJSON merges the fleet-scope trace with every server's, stamping
// server indexes, stable-sorted by cycle stamp (concat order — fleet first,
// then servers in index order — breaks ties), and keeps the tail.
func (o *sloObserver) traceTailJSON() string {
	n := o.sc.TraceTailEvents
	var all []telemetry.Event
	all = append(all, o.f.tel.EventsTail(n)...)
	for i, reg := range o.f.serverTel {
		for _, e := range reg.EventsTail(n) {
			e.Server = i
			all = append(all, e)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	if len(all) > n {
		all = all[len(all)-n:]
	}
	var b strings.Builder
	b.WriteString("[")
	for i, e := range all {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"at\": %d, \"kind\": %q, \"server\": %d, \"core\": %d, \"func\": %q, \"value\": %s, \"detail\": %q}",
			e.At, string(e.Kind), e.Server, e.Core, e.Func,
			telemetry.FormatFloat(e.Value), e.Detail)
	}
	b.WriteString("\n  ]")
	return b.String()
}

// openSpansJSON snapshots the in-flight span tree: fleet-scope spans plus
// every server's open spans with IDs remapped exactly as the end-of-run
// rollup remaps them ((server+1)<<32 | local).
func (o *sloObserver) openSpansJSON() string {
	var all []telemetry.Span
	all = append(all, o.f.tel.OpenSpans()...)
	for i, reg := range o.f.serverTel {
		for _, s := range reg.OpenSpans() {
			hi := uint64(i+1) << 32
			s.ID = telemetry.SpanID(hi | uint64(s.ID))
			if s.Parent != 0 {
				s.Parent = telemetry.SpanID(hi | uint64(s.Parent))
			}
			s.Server = i
			all = append(all, s)
		}
	}
	var b strings.Builder
	b.WriteString("[")
	for i, s := range all {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"id\": %d, \"parent\": %d, \"name\": %q, \"server\": %d, \"start\": %d}",
			s.ID, s.Parent, s.Name, s.Server, s.Start)
	}
	b.WriteString("\n  ]")
	return b.String()
}

func (o *sloObserver) contendJSON() string {
	st := o.f.ContendStatus()
	if st == nil {
		return "{\"epoch\": 0}"
	}
	var b strings.Builder
	st.WriteJSON(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}

func (o *sloObserver) auditJSON() string {
	rep := o.f.AuditReport()
	if rep == nil {
		return "{\"epochs_checked\": 0}"
	}
	var b strings.Builder
	rep.WriteJSON(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}

// SLOStatusJSON returns the engine's latest published status ("" before the
// first barrier, or with SLO off). Safe from any goroutine.
func (f *Fleet) SLOStatusJSON() string {
	f.contendMu.Lock()
	defer f.contendMu.Unlock()
	return f.sloStatJSON
}

// AlertLogJSON returns the latest published alert log ("" before the first
// barrier, or with SLO off). Safe from any goroutine.
func (f *Fleet) AlertLogJSON() string {
	f.contendMu.Lock()
	defer f.contendMu.Unlock()
	return f.alertLogJSON
}

// Postmortems returns the flight recorder's frozen bundles (capture order).
// Safe from any goroutine.
func (f *Fleet) Postmortems() []*slo.Bundle {
	f.contendMu.Lock()
	defer f.contendMu.Unlock()
	return append([]*slo.Bundle(nil), f.sloBundles...)
}

// AlertTransitions returns every SLO lifecycle transition in epoch order
// (valid after Run; nil with SLO off).
func (f *Fleet) AlertTransitions() []slo.Transition {
	if f.sloObs == nil {
		return nil
	}
	return f.sloObs.eng.Log().Transitions
}

// WriteTSDB exports the time-series store (valid after Run; errors before
// the first barrier or with SLO off).
func (f *Fleet) WriteTSDB(w io.Writer) error {
	if f.sloObs == nil {
		return fmt.Errorf("fleet: no tsdb store (Config.SLO is nil)")
	}
	return f.sloObs.db.WriteJSON(w)
}
