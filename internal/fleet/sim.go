package fleet

import (
	"math"

	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/pc3d"
	"repro/internal/phase"
	"repro/internal/qos"
	"repro/internal/reqos"
	"repro/internal/sampling"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// gatedAgent wraps a batch-scoped agent so a live migration can switch it
// off: machine agent lists are append-only, so evicting an instance
// disables its samplers, monitors and policy in place rather than
// removing them. While on, the wrapper is transparent.
type gatedAgent struct {
	a   machine.Agent
	off bool
}

func (g *gatedAgent) Tick(m *machine.Machine) {
	if !g.off {
		g.a.Tick(m)
	}
}

// appSampler ties a PC sampler to the app it profiles.
type appSampler struct {
	app string
	smp *sampling.PCSampler
}

// serverSim is one server's in-flight simulation. The original
// run-to-completion loop is split into stepwise advanceTo/finish calls so
// the migration coordinator can stop every server at a decision-epoch
// boundary, inspect counters, and hand batch instances off between
// servers — while the no-migration path replays the exact same segments
// in one pass. All methods are single-goroutine per sim; the only shared
// state (calibration, plans) is immutable during the run.
type serverSim struct {
	f    *Fleet
	idx  int
	reg  *telemetry.Registry
	m    *machine.Machine
	freq float64
	ws   *machine.Process
	gen  *loadgen.Generator

	samplers []appSampler

	// Per-server fault hooks (all nil without chaos).
	compileFault func(string, uint64) error
	rtCrashFn    func(uint64) bool
	dropFn       func(uint64) bool
	dropNaN      bool

	host    *machine.Process
	hostApp string
	sup     *supervise.Supervisor
	// gates are the live batch instance's agents; detachBatch switches
	// them off.
	gates []*gatedAgent

	// pending are future batch arrivals (chaos re-placements and migration
	// landings), kept sorted by time.
	pending []arrival
	// stop is when this server halts (crash or horizon); horizon is the
	// full run length.
	stop    float64
	horizon float64

	res     ServerResult
	snapped bool
	ws0, h0 machine.Counters
	off0    uint64
	// utilNorm banks solo-normalized batch work (branches / solo BPS)
	// measured so far, so utilization survives a mid-window migration.
	utilNorm float64

	// Contention-sample marks (deltas since the previous epoch sample).
	lastSampleS   float64
	lastWS        machine.Counters
	lastLLC       uint64
	hostInstsBank uint64
	hostInstsMark uint64
}

// newServerSim wires one server: webservice on core 0 (gated behind the
// offered-load trace when present), the placed batch instance (if any) on
// core 1, the protean runtime on core 2.
func newServerSim(f *Fleet, idx int, app string, plan serverPlan) (*serverSim, error) {
	cfg := f.cfg
	reg := telemetry.New(telemetry.Config{})
	f.serverTel[idx] = reg
	m := machine.New(machine.Config{Cores: 4, Seed: serverSeed(cfg.Seed, idx), Engine: cfg.Engine, Telemetry: reg})
	s := &serverSim{
		f: f, idx: idx, reg: reg, m: m, freq: m.Config().FreqHz,
		horizon: cfg.SettleSeconds + cfg.MeasureSeconds,
	}
	s.stop = math.Min(plan.crashAtSeconds, s.horizon)
	s.res = ServerResult{Index: idx, App: app, Load: 1, Availability: 1}
	s.res.Crashed = plan.crashes()
	s.pending = append([]arrival(nil), plan.arrivals...)

	wsOpts := machine.ProcessConfig{Restart: true}
	tr := f.trace(idx)
	if tr != nil {
		wsOpts = machine.ProcessConfig{Gated: true}
	}
	ws, err := m.Attach(0, f.cal.plain[cfg.Webservice], wsOpts)
	if err != nil {
		return nil, err
	}
	s.ws = ws
	if tr != nil {
		s.gen = loadgen.NewGenerator(ws, tr, f.cal.wsPeakQPS)
		m.AddAgent(s.gen)
	}

	// The fleet keeps its own PC samplers (independent of the protean
	// runtime's) so every server contributes block-granular deep profiles,
	// whatever the mitigation system. Sampling only reads process state.
	wsSmp := sampling.NewPCSampler(ws, m.Config().QuantumCycles)
	m.AddAgent(wsSmp)
	s.samplers = []appSampler{{cfg.Webservice, wsSmp}}
	if f.live != nil {
		m.AddAgent(&livePublisher{
			live: f.live, idx: idx, reg: reg, prof: s.profSnapshot,
			step: uint64(cfg.ScrapeIntervalQuanta) * m.Config().QuantumCycles,
		})
	}

	if cfg.Chaos.Enabled() {
		s.compileFault = cfg.Chaos.CompileFault(idx)
		s.rtCrashFn = cfg.Chaos.RuntimeCrashFn(idx, s.freq, m.Config().QuantumCycles)
		s.dropFn = cfg.Chaos.DropoutFn(idx, s.freq)
		s.dropNaN = cfg.Chaos.QoSDropoutNaN
	}

	if app != "" {
		if err := s.attachBatch(app); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// profSnapshot merges the samplers' lifetime deep profiles per app.
func (s *serverSim) profSnapshot() map[string]*sampling.DeepProfile {
	out := make(map[string]*sampling.DeepProfile, len(s.samplers))
	for _, as := range s.samplers {
		d := as.smp.DeepLifetime()
		if p := out[as.app]; p != nil {
			p.Merge(d)
		} else {
			out[as.app] = d
		}
	}
	return out
}

// gate registers a batch-scoped agent behind an off switch.
func (s *serverSim) gate(a machine.Agent) {
	g := &gatedAgent{a: a}
	s.gates = append(s.gates, g)
	s.m.AddAgent(g)
}

// attachBatch wires a batch instance plus its QoS monitor and mitigation
// policy; called at t=0 for the placed instance and again at arrival
// events (only between machine quanta).
func (s *serverSim) attachBatch(a string) error {
	cfg := s.f.cfg
	m := s.m
	hb := s.f.cal.plain[a]
	if cfg.System == SystemPC3D {
		hb = s.f.cal.protean[a]
	}
	h, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		return err
	}
	s.host, s.hostApp = h, a
	host, ws, gen := s.host, s.ws, s.gen
	hostSmp := sampling.NewPCSampler(host, m.Config().QuantumCycles)
	s.gate(hostSmp)
	s.samplers = append(s.samplers, appSampler{a, hostSmp})
	var src qos.Source
	var win qos.WindowScorer
	var extSig func(*machine.Machine) phase.Signature
	if gen == nil {
		flux := qos.NewFluxMonitor(m, host, ws, 0, 0)
		flux.ReferenceIPS = s.f.cal.wsSoloIPS
		s.gate(flux)
		src = flux
		win = &qos.FluxWindow{Flux: flux, Ext: ws}
		extSig = func(*machine.Machine) phase.Signature {
			solo, _ := flux.SoloIPS()
			return phase.Signature{Rate: solo}
		}
	} else {
		tq := qos.NewThroughputQoS(m, ws, gen, 0)
		s.gate(tq)
		src = tq
		win = &qos.ThroughputWindow{Proc: ws, Gen: gen}
		extSig = func(mm *machine.Machine) phase.Signature {
			return phase.Signature{Rate: gen.CurrentLoad(mm)}
		}
	}
	switch cfg.System {
	case SystemPC3D:
		if s.dropFn != nil {
			src = &faults.FlakySource{Src: src, M: m, Drop: s.dropFn, NaN: s.dropNaN}
			win = &faults.FlakyWindow{Win: win, Drop: s.dropFn, NaN: s.dropNaN}
		}
		build := func() (*supervise.Session, error) {
			rt, err := core.New(core.Config{
				Machine: m, Host: host, RuntimeCore: 2,
				CompileFault: s.compileFault, Telemetry: s.reg,
			})
			if err != nil {
				return nil, err
			}
			ctrl := pc3d.New(pc3d.Config{
				Runtime: rt, Steady: src, Window: win, ExtSig: extSig,
				Target: cfg.Target, MaxSites: cfg.MaxSites, Telemetry: s.reg,
			})
			return &supervise.Session{Runtime: rt, Policy: ctrl, Close: ctrl.Close}, nil
		}
		sup, err := supervise.New(m, host, build, supervise.Config{CrashFn: s.rtCrashFn, Telemetry: s.reg})
		if err != nil {
			return err
		}
		s.sup = sup
		s.gate(sup)
	case SystemReQoS:
		s.gate(reqos.New(host, src, reqos.Options{Target: cfg.Target}))
	case SystemNone:
		// Co-location with no mitigation.
	}
	return nil
}

// detachInstance releases the live batch instance: it banks the
// utilization and instruction counts measured so far, closes the policy
// session, gates every instance-scoped agent off, and frees core 1. The
// webservice never stops. Returns the released app ("" if none). Shared by
// live migration (detachBatch) and the coordinator's dynamic re-placement
// of instances off crashed servers, which must not count as a migration.
func (s *serverSim) detachInstance() string {
	if s.host == nil {
		return ""
	}
	app := s.hostApp
	if s.snapped {
		hd := s.host.Counters().Sub(s.h0)
		s.utilNorm += float64(hd.Branches) / s.f.cal.soloBPS[app]
	}
	s.hostInstsBank += s.host.Counters().Insts - s.hostInstsMark
	s.hostInstsMark = 0
	if s.sup != nil {
		s.sup.Close()
		s.sup = nil
	}
	for _, g := range s.gates {
		g.off = true
	}
	s.gates = nil
	s.m.Detach(1)
	s.host, s.hostApp = nil, ""
	s.h0 = machine.Counters{}
	return app
}

// detachBatch evicts the live batch instance for migration.
func (s *serverSim) detachBatch() string {
	app := s.detachInstance()
	if app != "" {
		s.res.MigratedOut++
	}
	return app
}

// scheduleArrival queues a future batch landing, keeping pending sorted
// by (time, source index).
func (s *serverSim) scheduleArrival(ar arrival) {
	i := len(s.pending)
	for i > 0 && s.pending[i-1].AtSeconds > ar.AtSeconds {
		i--
	}
	s.pending = append(s.pending, arrival{})
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = ar
}

// runUntil advances the machine to tSeconds (whole quanta; no-op when
// already there or past).
func (s *serverSim) runUntil(tSeconds float64) {
	target := uint64(tSeconds * s.freq)
	if target <= s.m.Now() {
		return
	}
	if quanta := int((target - s.m.Now()) / s.m.Config().QuantumCycles); quanta > 0 {
		s.m.RunQuanta(quanta)
	}
}

// maybeSnapshot takes the measurement-window baseline once the timeline
// reaches the settle boundary (and the server survives into the window).
func (s *serverSim) maybeSnapshot(at float64) {
	cfg := s.f.cfg
	if s.snapped || s.stop <= cfg.SettleSeconds || at < cfg.SettleSeconds {
		return
	}
	s.runUntil(cfg.SettleSeconds)
	s.ws0 = s.ws.Counters()
	if s.host != nil {
		s.h0 = s.host.Counters()
	}
	if s.gen != nil {
		s.off0 = s.gen.Offered()
	}
	s.snapped = true
}

// advanceTo simulates up to tSeconds (clamped to the server's stop),
// processing due arrivals and the measurement snapshot on the way. The
// no-migration path calls it once with the horizon; the migration
// coordinator calls it once per decision epoch — the segment boundaries
// change nothing about what the machine computes.
func (s *serverSim) advanceTo(tSeconds float64) error {
	t := math.Min(tSeconds, s.stop)
	for len(s.pending) > 0 {
		ar := s.pending[0]
		if ar.AtSeconds >= s.stop || ar.AtSeconds > t {
			break
		}
		s.pending = s.pending[1:]
		s.maybeSnapshot(ar.AtSeconds)
		s.runUntil(ar.AtSeconds)
		if s.host == nil {
			if err := s.attachBatch(ar.App); err != nil {
				return err
			}
			s.res.App = ar.App
			if ar.migrated {
				s.res.MigratedIn++
				s.reg.Counter("contend", "migrations_in_total", "live-migrated batch instances landed on this server").Inc()
				s.reg.Emit(telemetry.Event{At: s.m.Now(), Kind: telemetry.EvMigration, Func: ar.App, Value: float64(ar.from), Detail: "in"})
			} else {
				s.res.Absorbed++
				s.reg.Counter("fleet", "replacements_absorbed_total", "re-placed batch instances absorbed after another server's crash").Inc()
				s.reg.Emit(telemetry.Event{At: s.m.Now(), Kind: telemetry.EvReplacement, Func: ar.App})
			}
		}
	}
	s.maybeSnapshot(t)
	s.runUntil(t)
	return nil
}

// contendSample reads the contention signals accumulated since the
// previous call: webservice CPI over active cycles, server-wide MPKI
// (webservice + batch instructions, banked across migrations), LLC miss
// bandwidth, and offered load. A server that made no progress (crashed)
// or retired no webservice instructions yields an invalid sample.
func (s *serverSim) contendSample() contend.Sample {
	now := s.m.NowSeconds()
	dt := now - s.lastSampleS
	wc := s.ws.Counters()
	var llc uint64
	for c := 0; c < s.m.Config().Cores; c++ {
		llc += s.m.Hierarchy().CoreStats(c).LLCMisses
	}
	dws := wc.Sub(s.lastWS)
	dllc := llc - s.lastLLC
	hostInsts := s.hostInstsBank
	if s.host != nil {
		hostInsts += s.host.Counters().Insts - s.hostInstsMark
	}
	// Reset the marks whether or not the sample is valid.
	s.lastSampleS, s.lastWS, s.lastLLC = now, wc, llc
	s.hostInstsBank = 0
	if s.host != nil {
		s.hostInstsMark = s.host.Counters().Insts
	}
	if dt <= 0 || dws.Insts == 0 {
		return contend.Sample{}
	}
	active := dws.Cycles - dws.NapCycles - dws.SleepCycles - dws.StolenCycles - dws.IdleCycles
	util := 1.0
	if s.gen != nil {
		util = s.gen.CurrentLoad(s.m)
	}
	return contend.Sample{
		CPI:      float64(active) / float64(dws.Insts),
		MPKI:     1000 * float64(dllc) / float64(dws.Insts+hostInsts),
		MissRate: float64(dllc) / dt,
		Util:     util,
		Valid:    true,
	}
}

// finish drains the timeline to the horizon, computes the server's
// measured result, and releases the policy session.
func (s *serverSim) finish() (ServerResult, error) {
	cfg := s.f.cfg
	if err := s.advanceTo(s.horizon); err != nil {
		return ServerResult{}, err
	}
	if s.sup != nil {
		s.sup.Close()
		s.sup = nil
	}
	res := &s.res
	// A crash inside the measurement window scales delivered QoS by the
	// up fraction; a crash before it zeroes the measurement entirely.
	upSeconds := math.Max(0, s.stop-cfg.SettleSeconds)
	res.Availability = math.Min(1, upSeconds/cfg.MeasureSeconds)
	if s.snapped {
		wsd := s.ws.Counters().Sub(s.ws0)
		if s.gen != nil {
			offered := s.gen.Offered() - s.off0
			served := wsd.Completions
			res.Load = float64(offered) / cfg.MeasureSeconds / s.f.cal.wsPeakQPS
			if offered == 0 {
				res.QoS = res.Availability
			} else {
				res.QoS = math.Min(1, float64(served)/float64(offered)) * res.Availability
			}
		} else {
			// Insts stop at the crash, so the solo-normalized rate already
			// reflects the down time.
			res.QoS = float64(wsd.Insts) / cfg.MeasureSeconds / s.f.cal.wsSoloIPS
		}
		if s.host != nil {
			hd := s.host.Counters().Sub(s.h0)
			s.utilNorm += float64(hd.Branches) / s.f.cal.soloBPS[s.hostApp]
		}
		res.Utilization = s.utilNorm / cfg.MeasureSeconds
	} else {
		res.QoS, res.Load = 0, 0
	}
	if res.Crashed {
		s.reg.Counter("fleet", "server_crashes_total", "whole-server failures").Inc()
		s.reg.Emit(telemetry.Event{At: s.m.Now(), Kind: telemetry.EvServerCrash})
	}
	s.reg.Gauge("fleet", "availability_sum", "sum of per-server up fractions (divide by server count for the mean)").Set(res.Availability)
	// A surviving server is fault-affected when any failure touched it; the
	// per-event counts live on the registry.
	res.Faulted = !res.Crashed && (res.Absorbed > 0 ||
		s.reg.CounterValue("supervise", "reaps_total") > 0 ||
		s.reg.CounterValue("pc3d", "compile_failures_total") > 0 ||
		s.reg.CounterValue("pc3d", "sensor_dropouts_total") > 0)
	s.f.serverProf[s.idx] = s.profSnapshot()
	if s.f.live != nil {
		// Final deposit so post-run scrapes see the completed server.
		s.f.live.publish(s.idx, s.reg.Clone(), s.profSnapshot())
	}
	return *res, nil
}
