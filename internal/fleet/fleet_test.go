package fleet

import (
	"reflect"
	"testing"

	"repro/internal/datacenter"
	"repro/internal/loadgen"
)

// testConfig is a deliberately small diurnal fleet: cheap enough for the
// race detector, rich enough to exercise calibration, contention-aware
// placement, phase-offset load gating and aggregation.
func testConfig(workers int) Config {
	return Config{
		Servers:            5,
		Instances:          3,
		Webservice:         "web-search",
		Mix:                datacenter.Mix{Name: "test", Apps: []string{"libquantum", "milc"}},
		System:             SystemNone,
		Policy:             ContentionAware{},
		Seed:               42,
		Workers:            workers,
		SoloSeconds:        0.5,
		SettleSeconds:      0.25,
		MeasureSeconds:     0.5,
		Trace:              loadgen.Diurnal{Period: 2, Low: 0.3, High: 0.9},
		PhaseSpreadSeconds: 1,
	}
}

// TestFleetDeterministicAcrossWorkerCounts is the core concurrency
// contract: a fixed seed must produce bit-identical cluster metrics no
// matter how many workers drive the simulations.
func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) Metrics {
		f, err := New(testConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial := run(1)
	concurrent := run(3)
	if !reflect.DeepEqual(serial, concurrent) {
		t.Fatalf("metrics diverge across worker counts:\nserial:     %+v\nconcurrent: %+v", serial, concurrent)
	}
}

func TestFleetMetricsSanity(t *testing.T) {
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Servers != 5 || m.Instances != 3 {
		t.Fatalf("sizes = %d servers / %d instances", m.Servers, m.Instances)
	}
	if len(m.PerServer) != 5 {
		t.Fatalf("want 5 per-server results, got %d", len(m.PerServer))
	}
	batch := 0
	for i, r := range m.PerServer {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.QoS <= 0 || r.QoS > 1.001 {
			t.Fatalf("server %d QoS = %v", i, r.QoS)
		}
		if r.App != "" {
			batch++
			if r.Utilization <= 0 {
				t.Fatalf("server %d (%s) utilization = %v", i, r.App, r.Utilization)
			}
		}
	}
	if batch != 3 {
		t.Fatalf("want 3 batch-hosting servers, got %d", batch)
	}
	if m.BatchUnits <= 0 || m.BatchUnits > 3 {
		t.Fatalf("BatchUnits = %v", m.BatchUnits)
	}
	if m.EnergyEfficiencyRatio <= 1 {
		// Consolidating batch work onto webservice machines must beat
		// powering dedicated batch servers under the linear power model.
		t.Fatalf("EnergyEfficiencyRatio = %v, want > 1", m.EnergyEfficiencyRatio)
	}
	if len(m.PerApp) != 2 {
		t.Fatalf("PerApp = %v, want both mix apps", m.PerApp)
	}
	// The diurnal gate keeps offered load well under capacity, so the
	// webservices should be serving nearly everything offered.
	if m.QoS.Min <= 0.5 {
		t.Fatalf("QoS.Min = %v, implausibly low for an ungated co-location at these loads", m.QoS.Min)
	}
}

// TestFleetPlacementRespectsPolicy checks the placement plumbing end to
// end: contention-aware must send the highest-pressure app to the server
// with the lowest phase-offset load.
func TestFleetPlacementRespectsPolicy(t *testing.T) {
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	placement := f.Placement()
	if len(placement) != 3 {
		t.Fatalf("placement = %v", placement)
	}
	instances := f.Instances()
	// Recompute the expected assignment from the published slots and
	// measured pressures.
	want := ContentionAware{}.Place(instances, f.slots)
	if !reflect.DeepEqual(placement, want) {
		t.Fatalf("placement %v does not match policy output %v", placement, want)
	}
}
