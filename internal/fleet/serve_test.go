package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestObservabilityExportsDeterministicAcrossWorkerCounts pins the new
// observability surfaces to the fleet's concurrency contract: the Chrome
// trace (spans + events) and the folded-stack deep profile must be
// byte-identical between a serial and an 8-worker run of the same seeded
// chaos fleet, exactly like the Prometheus and JSONL exports.
func TestObservabilityExportsDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (string, string) {
		f, err := New(chaosConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(); err != nil {
			t.Fatal(err)
		}
		var prof strings.Builder
		if err := f.WriteProfile(&prof); err != nil {
			t.Fatal(err)
		}
		return f.Telemetry().ChromeTraceJSON(), prof.String()
	}
	trace1, prof1 := run(1)
	trace8, prof8 := run(8)
	if trace1 != trace8 {
		t.Error("Chrome traces diverge across worker counts")
	}
	if prof1 != prof8 {
		t.Errorf("folded profiles diverge across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", prof1, prof8)
	}
	if !strings.Contains(trace1, `"ph":"X"`) {
		t.Error("chaos PC3D run recorded no spans")
	}
	if !strings.Contains(prof1, ";") {
		t.Errorf("profile carries no stacks:\n%s", prof1)
	}
	// The trace must parse as trace-event JSON (the Perfetto contract).
	var env struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace1), &env); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(env.TraceEvents) == 0 {
		t.Error("Chrome trace has no events")
	}
}

// TestLiveServeEndpoints drives the scrape surface against a running
// fleet: all four endpoints must answer mid-run, and the post-run scrape
// must carry the completed servers.
func TestLiveServeEndpoints(t *testing.T) {
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		_, err := f.Run()
		done <- err
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Wait until at least one server has published a snapshot, then hit
	// every endpoint while the run is still live (the run takes seconds;
	// publishing starts within the first few quanta).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code, body := get("/healthz"); code == 200 && !strings.Contains(body, `"published":0`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no server published a live snapshot in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, path := range []string{"/metrics", "/trace", "/profile", "/healthz"} {
		code, body := get(path)
		if code != 200 {
			t.Errorf("GET %s = %d, want 200", path, code)
		}
		if body == "" {
			t.Errorf("GET %s returned an empty body", path)
		}
	}
	if code, body := get("/trace"); code == 200 {
		var env struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Errorf("live /trace is not valid JSON: %v", err)
		}
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Post-run: every server has deposited its final snapshot.
	if _, body := get("/healthz"); !strings.Contains(body, `"published":5`) {
		t.Errorf("healthz after run = %s, want all 5 servers published", body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, "protean_") {
		t.Error("post-run /metrics carries no metrics")
	}
	if _, body := get("/profile"); !strings.Contains(body, ";") {
		t.Errorf("post-run /profile carries no stacks:\n%.300s", body)
	}
}
