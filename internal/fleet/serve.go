// Live scrape surface: an HTTP handler that exposes a running fleet's
// telemetry, causal trace and deep profile without perturbing the
// simulation. Each server simulation is single-goroutine; publishing works
// by having every server periodically deposit a deep-copied snapshot of
// its single-writer registry (and its samplers' deep profiles) into a
// mutex-guarded slot. Scrapes merge the deposited snapshots in
// server-index order — the same rollup discipline as the end-of-run merge
// — so a mid-run scrape is a coherent, if slightly stale, cluster view and
// the simulation itself never takes a lock.
package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"repro/internal/machine"
	"repro/internal/sampling"
	"repro/internal/telemetry"
)

// publishEveryQuanta is how often each server deposits a fresh snapshot.
const publishEveryQuanta = 64

// liveState holds the per-server snapshots behind the scrape surface.
type liveState struct {
	mu    sync.Mutex
	regs  []*telemetry.Registry
	profs []map[string]*sampling.DeepProfile
}

func (l *liveState) publish(idx int, reg *telemetry.Registry, prof map[string]*sampling.DeepProfile) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.regs[idx] = reg
	l.profs[idx] = prof
}

// livePublisher is the per-server machine agent that deposits snapshots.
// It only reads simulation state (Registry.Clone, DeepLifetime), so adding
// it never changes what the simulation computes.
type livePublisher struct {
	live *liveState
	idx  int
	reg  *telemetry.Registry
	prof func() map[string]*sampling.DeepProfile
	step uint64
	next uint64
}

func (p *livePublisher) Tick(m *machine.Machine) {
	if m.Now() < p.next {
		return
	}
	p.next = m.Now() + p.step
	p.live.publish(p.idx, p.reg.Clone(), p.prof())
}

// Snapshot merges the currently published per-server snapshots — in
// server-index order, like the end-of-run rollup — into a fresh registry
// and per-app deep-profile map. Before Handler is called (or before any
// server has published) both are empty. Safe to call from any goroutine.
func (f *Fleet) Snapshot() (*telemetry.Registry, map[string]*sampling.DeepProfile) {
	out := telemetry.New(telemetry.Config{})
	profs := make(map[string]*sampling.DeepProfile)
	if f.live == nil {
		return out, profs
	}
	f.live.mu.Lock()
	defer f.live.mu.Unlock()
	for i, r := range f.live.regs {
		if r != nil {
			out.MergeFrom(r, i)
		}
	}
	for _, pm := range f.live.profs {
		mergeProfiles(profs, pm)
	}
	return out, profs
}

// Handler enables live publishing and returns the scrape mux:
//
//	/metrics  — Prometheus text of the merged per-server registries
//	/trace    — Chrome trace-event JSON (spans + events; Perfetto-loadable)
//	/profile  — folded stacks (app;func;block N) for flamegraph tools
//	/contend  — JSON contention-detector state (per-server verdicts,
//	            window quantile thresholds, migration log); {"epoch": 0}
//	            until the migration loop publishes
//	/audit    — JSON conservation-auditor report (per-epoch instance
//	            census + invariant violations); {"epochs_checked": 0}
//	            until the migration loop publishes
//	/slo      — JSON SLO status (per-spec state, burn rate, since-epoch);
//	            {"epoch": 0} until the SLO engine publishes
//	/alerts   — JSON alert log (every lifecycle transition in epoch order);
//	            {"fired": 0} until the SLO engine publishes
//	/postmortem — JSON array of frozen flight-recorder bundles; [] until
//	            the first capture
//	/healthz  — JSON liveness: servers, how many have published; status
//	            flips to "degraded" while the migration circuit breaker is
//	            open or once the conservation auditor has recorded a
//	            violation
//
// plus the standard net/http/pprof handlers under /debug/pprof/ for the
// simulator process itself. Call before Run; scraping during the run
// returns the latest published snapshots.
func (f *Fleet) Handler() http.Handler {
	if f.live == nil {
		f.live = &liveState{
			regs:  make([]*telemetry.Registry, f.cfg.Servers),
			profs: make([]map[string]*sampling.DeepProfile, f.cfg.Servers),
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg, _ := f.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		reg, _ := f.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		reg.WriteChromeTrace(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		_, profs := f.Snapshot()
		w.Header().Set("Content-Type", "text/plain")
		writeFoldedProfiles(w, profs) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/contend", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := f.ContendStatus()
		if st == nil {
			// Migration off, or no decision epoch yet.
			io.WriteString(w, "{\"epoch\": 0}\n") //nolint:errcheck // client went away
			return
		}
		st.WriteJSON(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rep := f.AuditReport()
		if rep == nil {
			// Migration off, or no decision epoch yet.
			io.WriteString(w, "{\"epochs_checked\": 0}\n") //nolint:errcheck // client went away
			return
		}
		rep.WriteJSON(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s := f.SLOStatusJSON(); s != "" {
			io.WriteString(w, s) //nolint:errcheck // client went away
			return
		}
		// SLO off, or no barrier yet.
		io.WriteString(w, "{\"epoch\": 0}\n") //nolint:errcheck // client went away
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s := f.AlertLogJSON(); s != "" {
			io.WriteString(w, s) //nolint:errcheck // client went away
			return
		}
		io.WriteString(w, "{\"fired\": 0}\n") //nolint:errcheck // client went away
	})
	mux.HandleFunc("/postmortem", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		bundles := f.Postmortems()
		io.WriteString(w, "[") //nolint:errcheck // client went away
		for i, b := range bundles {
			if i > 0 {
				io.WriteString(w, ",") //nolint:errcheck // client went away
			}
			io.WriteString(w, "\n")     //nolint:errcheck // client went away
			io.WriteString(w, b.JSON()) //nolint:errcheck // client went away
		}
		if len(bundles) > 0 {
			io.WriteString(w, "\n") //nolint:errcheck // client went away
		}
		io.WriteString(w, "]\n") //nolint:errcheck // client went away
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		f.live.mu.Lock()
		published := 0
		for _, reg := range f.live.regs {
			if reg != nil {
				published++
			}
		}
		f.live.mu.Unlock()
		status, reason := f.health()
		w.Header().Set("Content-Type", "application/json")
		if reason != "" {
			fmt.Fprintf(w, "{\"status\":%q,\"reason\":%q,\"servers\":%d,\"published\":%d}\n",
				status, reason, f.cfg.Servers, published)
			return
		}
		fmt.Fprintf(w, "{\"status\":%q,\"servers\":%d,\"published\":%d}\n", status, f.cfg.Servers, published)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// health reads the published coordinator state and reports "degraded"
// (with a reason) when the migration circuit breaker is open or the
// conservation auditor has recorded any violation; "ok" otherwise.
func (f *Fleet) health() (status, reason string) {
	f.contendMu.Lock()
	defer f.contendMu.Unlock()
	if f.contendStat != nil && f.contendStat.BreakerState == "open" {
		return "degraded", "circuit breaker open"
	}
	if f.auditStat != nil && len(f.auditStat.Violations) > 0 {
		return "degraded", "audit violations"
	}
	return "ok", ""
}

// WriteProfile writes the end-of-run fleet deep profile as folded stacks,
// apps in name order, per-server profiles merged in server-index order —
// byte-identical at any worker count under a fixed seed. Valid after Run.
func (f *Fleet) WriteProfile(w io.Writer) error {
	profs := make(map[string]*sampling.DeepProfile)
	for _, pm := range f.serverProf {
		mergeProfiles(profs, pm)
	}
	return writeFoldedProfiles(w, profs)
}

// mergeProfiles folds src into dst app by app (cloning on first sight, so
// dst never aliases src's profiles).
func mergeProfiles(dst map[string]*sampling.DeepProfile, src map[string]*sampling.DeepProfile) {
	for app, d := range src {
		if p := dst[app]; p != nil {
			p.Merge(d)
		} else {
			dst[app] = d.Clone()
		}
	}
}

func writeFoldedProfiles(w io.Writer, profs map[string]*sampling.DeepProfile) error {
	apps := make([]string, 0, len(profs))
	for app := range profs {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		if err := profs[app].WriteFolded(w, app); err != nil {
			return err
		}
	}
	return nil
}
