package fleet

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// TestFleetIdenticalAcrossEngines extends the determinism contract to the
// execution-engine axis: the interp oracle and the superblock engine must
// produce identical cluster metrics for the same seed, the same way any
// worker count must.
func TestFleetIdenticalAcrossEngines(t *testing.T) {
	run := func(engine string) Metrics {
		cfg := testConfig(2)
		cfg.Engine = engine
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	interp := run(machine.EngineInterp)
	superblock := run(machine.EngineSuperblock)
	if !reflect.DeepEqual(interp, superblock) {
		t.Fatalf("metrics diverge across engines:\ninterp:     %+v\nsuperblock: %+v", interp, superblock)
	}
}
