package fleet

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/contend"
	"repro/internal/datacenter"
)

// migrateConfig is a small saturated fleet where contention detection has
// something to find: two er-naive aggressors among six servers, no
// mitigation, and a detector tuned to the short test timeline.
func migrateConfig(workers int, policy Policy) Config {
	return Config{
		Servers:        6,
		Instances:      2,
		Webservice:     "web-search",
		Mix:            datacenter.Mix{Name: "test", Apps: []string{"er-naive"}},
		System:         SystemNone,
		Policy:         policy,
		Seed:           42,
		Workers:        workers,
		SoloSeconds:    0.5,
		SettleSeconds:  0.25,
		MeasureSeconds: 0.5,
		Migration: &MigrationConfig{
			WindowSeconds:   0.1,
			BlackoutSeconds: 0.05,
			BudgetPerEpoch:  2,
			Detector: contend.Config{
				Window: 2, MinSamples: 2, Cooldown: 1,
				Quantile: 0.5, Enter: 1.15, Exit: 1.05,
			},
		},
	}
}

type migrateRun struct {
	m       Metrics
	status  *ContendStatus
	prom    string
	jsonl   string
	contend string
	// placed marks servers that hosted an instance at t=0.
	placed map[int]bool
}

func doMigrateRun(t *testing.T, cfg Config) migrateRun {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	placed := make(map[int]bool)
	for _, srv := range f.Placement() {
		placed[srv] = true
	}
	var cj strings.Builder
	st := f.ContendStatus()
	if st != nil {
		if err := st.WriteJSON(&cj); err != nil {
			t.Fatal(err)
		}
	}
	return migrateRun{
		m:       m,
		status:  st,
		prom:    f.Telemetry().PrometheusText(),
		jsonl:   f.Telemetry().JSONL(),
		contend: cj.String(),
		placed:  placed,
	}
}

// TestMigrationMovesAggressors is the end-to-end control loop check: the
// detector flags the co-located servers, the planner evicts their er-naive
// instances, and the accounting (counters, per-server results, status
// export) all agree on what happened.
func TestMigrationMovesAggressors(t *testing.T) {
	r := doMigrateRun(t, migrateConfig(2, RoundRobin{}))
	m := r.m
	if m.Migrations == 0 {
		t.Fatal("no migrations executed; the detector never fired")
	}
	// Blackout 0.05s at 10 MHz / 10k-cycle quanta = 50 quanta per move.
	if want := uint64(m.Migrations) * 50; m.MigrationQuantaLost != want {
		t.Fatalf("MigrationQuantaLost = %d, want %d (%d moves × 50 quanta)", m.MigrationQuantaLost, want, m.Migrations)
	}
	in, out := 0, 0
	for _, sr := range m.PerServer {
		in += sr.MigratedIn
		out += sr.MigratedOut
	}
	if out != m.Migrations || in != m.Migrations {
		t.Fatalf("per-server migration counts (in %d, out %d) disagree with Migrations %d", in, out, m.Migrations)
	}
	if r.status == nil {
		t.Fatal("ContendStatus is nil after a migration run")
	}
	if len(r.status.Servers) != 6 || r.status.Epoch < 2 {
		t.Fatalf("status = epoch %d, %d servers", r.status.Epoch, len(r.status.Servers))
	}
	if len(r.status.Moves) != m.Migrations {
		t.Fatalf("status logs %d moves, Metrics counted %d", len(r.status.Moves), m.Migrations)
	}
	for _, mv := range r.status.Moves {
		if mv.From == mv.To || mv.App == "" {
			t.Fatalf("malformed move record %+v", mv)
		}
	}
	if !strings.Contains(r.prom, "contend_migrations_total") {
		t.Fatal("rollup is missing contend_migrations_total")
	}
	if !strings.Contains(r.jsonl, `"kind":"migration"`) {
		t.Fatal("trace is missing migration events")
	}
	// Batch work survives the move: both instances still report
	// utilization somewhere, and the fleet total stays positive.
	if m.BatchUnits <= 0 {
		t.Fatalf("BatchUnits = %v after migration", m.BatchUnits)
	}
}

// TestMigrationDeterministicAcrossWorkerCounts is the contract the ISSUE
// pins: with migration enabled, metrics AND every export (Prometheus
// text, JSONL trace, /contend JSON) are byte-identical between 1 and 8
// workers — the epoch-barrier coordinator keeps live migration inside
// the determinism envelope.
func TestMigrationDeterministicAcrossWorkerCounts(t *testing.T) {
	r1 := doMigrateRun(t, migrateConfig(1, RoundRobin{}))
	r8 := doMigrateRun(t, migrateConfig(8, RoundRobin{}))
	if !reflect.DeepEqual(r1.m, r8.m) {
		t.Fatalf("metrics diverge across worker counts:\n1: %+v\n8: %+v", r1.m, r8.m)
	}
	if r1.prom != r8.prom {
		t.Fatal("Prometheus export differs between -workers 1 and 8")
	}
	if r1.jsonl != r8.jsonl {
		t.Fatal("JSONL trace differs between -workers 1 and 8")
	}
	if r1.contend == "" || r1.contend != r8.contend {
		t.Fatal("/contend JSON differs between -workers 1 and 8")
	}
}

// TestMigrationUnderPlacementPolicies exercises the re-placement paths the
// satellite names: migration churn on top of both the least-loaded and the
// contention-aware initial placements must stay well-formed (no double
// occupancy, instances conserved).
func TestMigrationUnderPlacementPolicies(t *testing.T) {
	for _, policy := range []Policy{LeastLoaded{}, ContentionAware{}} {
		cfg := migrateConfig(2, policy)
		r := doMigrateRun(t, cfg)
		hosting := 0
		for _, sr := range r.m.PerServer {
			if sr.Absorbed > 0 {
				t.Fatalf("%s: server %d absorbed a chaos re-placement with chaos off", policy.Name(), sr.Index)
			}
			h := sr.MigratedIn - sr.MigratedOut
			if r.placed[sr.Index] {
				h++
			}
			if h < 0 || h > 1 {
				t.Fatalf("%s: server %d occupancy %d (in %d, out %d, placed %v)",
					policy.Name(), sr.Index, h, sr.MigratedIn, sr.MigratedOut, r.placed[sr.Index])
			}
			hosting += h
		}
		// Every instance is still hosted somewhere (blackouts are over by
		// the horizon in this config, and no server crashes).
		if hosting != cfg.Instances {
			t.Fatalf("%s: %d instances hosted at end, want %d", policy.Name(), hosting, cfg.Instances)
		}
	}
}
