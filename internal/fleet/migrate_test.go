package fleet

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/contend"
	"repro/internal/datacenter"
	"repro/internal/faults"
)

// migrateConfig is a small saturated fleet where contention detection has
// something to find: two er-naive aggressors among six servers, no
// mitigation, and a detector tuned to the short test timeline.
func migrateConfig(workers int, policy Policy) Config {
	return Config{
		Servers:        6,
		Instances:      2,
		Webservice:     "web-search",
		Mix:            datacenter.Mix{Name: "test", Apps: []string{"er-naive"}},
		System:         SystemNone,
		Policy:         policy,
		Seed:           42,
		Workers:        workers,
		SoloSeconds:    0.5,
		SettleSeconds:  0.25,
		MeasureSeconds: 0.5,
		Migration: &MigrationConfig{
			WindowSeconds:   0.1,
			BlackoutSeconds: 0.05,
			BudgetPerEpoch:  2,
			Detector: contend.Config{
				Window: 2, MinSamples: 2, Cooldown: 1,
				Quantile: 0.5, Enter: 1.15, Exit: 1.05,
			},
		},
	}
}

type migrateRun struct {
	m       Metrics
	status  *ContendStatus
	report  *AuditReport
	prom    string
	jsonl   string
	contend string
	audit   string
	// placed marks servers that hosted an instance at t=0.
	placed map[int]bool
}

func doMigrateRun(t *testing.T, cfg Config) migrateRun {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	placed := make(map[int]bool)
	for _, srv := range f.Placement() {
		placed[srv] = true
	}
	var cj strings.Builder
	st := f.ContendStatus()
	if st != nil {
		if err := st.WriteJSON(&cj); err != nil {
			t.Fatal(err)
		}
	}
	var aj strings.Builder
	rep := f.AuditReport()
	if rep != nil {
		if err := rep.WriteJSON(&aj); err != nil {
			t.Fatal(err)
		}
	}
	return migrateRun{
		m:       m,
		status:  st,
		report:  rep,
		prom:    f.Telemetry().PrometheusText(),
		jsonl:   f.Telemetry().JSONL(),
		contend: cj.String(),
		audit:   aj.String(),
		placed:  placed,
	}
}

// TestMigrationMovesAggressors is the end-to-end control loop check: the
// detector flags the co-located servers, the planner evicts their er-naive
// instances, and the accounting (counters, per-server results, status
// export) all agree on what happened.
func TestMigrationMovesAggressors(t *testing.T) {
	r := doMigrateRun(t, migrateConfig(2, RoundRobin{}))
	m := r.m
	if m.Migrations == 0 {
		t.Fatal("no migrations executed; the detector never fired")
	}
	// Blackout 0.05s at 10 MHz / 10k-cycle quanta = 50 quanta per move.
	if want := uint64(m.Migrations) * 50; m.MigrationQuantaLost != want {
		t.Fatalf("MigrationQuantaLost = %d, want %d (%d moves × 50 quanta)", m.MigrationQuantaLost, want, m.Migrations)
	}
	in, out := 0, 0
	for _, sr := range m.PerServer {
		in += sr.MigratedIn
		out += sr.MigratedOut
	}
	if out != m.Migrations || in != m.Migrations {
		t.Fatalf("per-server migration counts (in %d, out %d) disagree with Migrations %d", in, out, m.Migrations)
	}
	if r.status == nil {
		t.Fatal("ContendStatus is nil after a migration run")
	}
	if len(r.status.Servers) != 6 || r.status.Epoch < 2 {
		t.Fatalf("status = epoch %d, %d servers", r.status.Epoch, len(r.status.Servers))
	}
	if len(r.status.Moves) != m.Migrations {
		t.Fatalf("status logs %d moves, Metrics counted %d", len(r.status.Moves), m.Migrations)
	}
	for _, mv := range r.status.Moves {
		if mv.From == mv.To || mv.App == "" {
			t.Fatalf("malformed move record %+v", mv)
		}
	}
	if !strings.Contains(r.prom, "contend_migrations_total") {
		t.Fatal("rollup is missing contend_migrations_total")
	}
	if !strings.Contains(r.jsonl, `"kind":"migration"`) {
		t.Fatal("trace is missing migration events")
	}
	// Batch work survives the move: both instances still report
	// utilization somewhere, and the fleet total stays positive.
	if m.BatchUnits <= 0 {
		t.Fatalf("BatchUnits = %v after migration", m.BatchUnits)
	}
}

// TestMigrationDeterministicAcrossWorkerCounts is the contract the ISSUE
// pins: with migration enabled, metrics AND every export (Prometheus
// text, JSONL trace, /contend JSON) are byte-identical between 1 and 8
// workers — the epoch-barrier coordinator keeps live migration inside
// the determinism envelope.
func TestMigrationDeterministicAcrossWorkerCounts(t *testing.T) {
	r1 := doMigrateRun(t, migrateConfig(1, RoundRobin{}))
	r8 := doMigrateRun(t, migrateConfig(8, RoundRobin{}))
	if !reflect.DeepEqual(r1.m, r8.m) {
		t.Fatalf("metrics diverge across worker counts:\n1: %+v\n8: %+v", r1.m, r8.m)
	}
	if r1.prom != r8.prom {
		t.Fatal("Prometheus export differs between -workers 1 and 8")
	}
	if r1.jsonl != r8.jsonl {
		t.Fatal("JSONL trace differs between -workers 1 and 8")
	}
	if r1.contend == "" || r1.contend != r8.contend {
		t.Fatal("/contend JSON differs between -workers 1 and 8")
	}
	if r1.audit == "" || r1.audit != r8.audit {
		t.Fatal("/audit JSON differs between -workers 1 and 8")
	}
}

// TestMigrationUnderPlacementPolicies exercises the re-placement paths the
// satellite names: migration churn on top of both the least-loaded and the
// contention-aware initial placements must stay well-formed (no double
// occupancy, instances conserved).
func TestMigrationUnderPlacementPolicies(t *testing.T) {
	for _, policy := range []Policy{LeastLoaded{}, ContentionAware{}} {
		cfg := migrateConfig(2, policy)
		r := doMigrateRun(t, cfg)
		hosting := 0
		for _, sr := range r.m.PerServer {
			if sr.Absorbed > 0 {
				t.Fatalf("%s: server %d absorbed a chaos re-placement with chaos off", policy.Name(), sr.Index)
			}
			h := sr.MigratedIn - sr.MigratedOut
			if r.placed[sr.Index] {
				h++
			}
			if h < 0 || h > 1 {
				t.Fatalf("%s: server %d occupancy %d (in %d, out %d, placed %v)",
					policy.Name(), sr.Index, h, sr.MigratedIn, sr.MigratedOut, r.placed[sr.Index])
			}
			hosting += h
		}
		// Every instance is still hosted somewhere (blackouts are over by
		// the horizon in this config, and no server crashes).
		if hosting != cfg.Instances {
			t.Fatalf("%s: %d instances hosted at end, want %d", policy.Name(), hosting, cfg.Instances)
		}
	}
}

// chaosMigrateConfig turns on the migration fault domain on top of the
// migrating test fleet: detach and landing faults, blackout stalls,
// corrupted and stale detector samples, plus server crashes — every
// failure path the transactional move protocol has to survive.
func chaosMigrateConfig(workers int) Config {
	cfg := migrateConfig(workers, RoundRobin{})
	cfg.Chaos = &faults.Chaos{
		ServerCrashProb:     0.3,
		RestartDelaySeconds: 0.1,
		MoveDetachFailProb:  0.15,
		MoveLandFailProb:    0.9,
		MoveStallMaxSeconds: 0.02,
		SampleCorruptProb:   0.01,
		SampleStaleProb:     0.05,
	}
	cfg.Migration.MaxLandAttempts = 2
	cfg.Migration.Breaker = contend.BreakerConfig{FailureThreshold: 3, CooldownEpochs: 2}
	return cfg
}

// TestChaosMigrateConserves is the tentpole invariant: under nonzero
// move-failure chaos (failed detaches, failed landings, stalls, sensor
// faults, crashing servers) the conservation auditor must observe zero
// violations — an instance is never lost and never runs twice, at every
// epoch barrier and at the horizon.
func TestChaosMigrateConserves(t *testing.T) {
	r := doMigrateRun(t, chaosMigrateConfig(2))
	if r.report == nil {
		t.Fatal("no audit report after a migrating chaos run")
	}
	if !r.report.Clean() || r.m.AuditViolations != 0 {
		t.Fatalf("audit found %d violations: %+v", len(r.report.Violations), r.report.Violations)
	}
	if len(r.report.Epochs) < 3 {
		t.Fatalf("auditor swept only %d epochs", len(r.report.Epochs))
	}
	// The run must actually exercise the failure path, or the invariant is
	// vacuous.
	if r.m.MovesFailed == 0 {
		t.Fatal("chaos produced no failed moves; the test proves nothing")
	}
	if r.m.Migrations == 0 {
		t.Fatal("no move ever landed under chaos")
	}
	// The status export and the metrics agree on the failure accounting.
	if r.status.MovesFailed != uint64(r.m.MovesFailed) || r.status.Rollbacks != uint64(r.m.MoveRollbacks) {
		t.Fatalf("status (failed %d, rollbacks %d) disagrees with metrics (failed %d, rollbacks %d)",
			r.status.MovesFailed, r.status.Rollbacks, r.m.MovesFailed, r.m.MoveRollbacks)
	}
	landed, failed := 0, 0
	for _, mv := range r.status.Moves {
		switch mv.Outcome {
		case MoveLanded:
			landed++
		case MoveRolledBack, MoveDetachFailed:
			failed++
		default:
			t.Fatalf("move record with unknown outcome %q", mv.Outcome)
		}
	}
	if landed != r.m.Migrations || failed != r.m.MovesFailed {
		t.Fatalf("move log (landed %d, failed %d) disagrees with counters (%d, %d)",
			landed, failed, r.m.Migrations, r.m.MovesFailed)
	}
}

// TestChaosMigrationDeterministicAcrossWorkerCounts pins the whole fault
// path inside the determinism envelope: with migration chaos on, metrics
// and every export — Prometheus, JSONL trace, /contend JSON, /audit JSON —
// are byte-identical between 1 and 8 workers.
func TestChaosMigrationDeterministicAcrossWorkerCounts(t *testing.T) {
	r1 := doMigrateRun(t, chaosMigrateConfig(1))
	r8 := doMigrateRun(t, chaosMigrateConfig(8))
	if !reflect.DeepEqual(r1.m, r8.m) {
		t.Fatalf("metrics diverge across worker counts:\n1: %+v\n8: %+v", r1.m, r8.m)
	}
	if r1.prom != r8.prom {
		t.Fatal("Prometheus export differs between -workers 1 and 8")
	}
	if r1.jsonl != r8.jsonl {
		t.Fatal("JSONL trace differs between -workers 1 and 8")
	}
	if r1.contend == "" || r1.contend != r8.contend {
		t.Fatal("/contend JSON differs between -workers 1 and 8")
	}
	if r1.audit == "" || r1.audit != r8.audit {
		t.Fatal("/audit JSON differs between -workers 1 and 8")
	}
}

// TestBreakerDegradesGracefully proves the circuit breaker's promise: when
// every landing fails, the breaker trips after K consecutive failed moves
// and the fleet finishes the run with migration suspended — no thrashing,
// no lost instances, batch work still delivered.
func TestBreakerDegradesGracefully(t *testing.T) {
	cfg := migrateConfig(2, RoundRobin{})
	cfg.Chaos = &faults.Chaos{MoveLandFailProb: 1}
	cfg.Migration.MaxLandAttempts = 2
	cfg.Migration.Breaker = contend.BreakerConfig{FailureThreshold: 2, CooldownEpochs: 50}
	r := doMigrateRun(t, cfg)
	if r.m.Migrations != 0 {
		t.Fatalf("%d moves landed with MoveLandFailProb=1", r.m.Migrations)
	}
	if r.m.BreakerTrips < 1 {
		t.Fatal("breaker never tripped under total landing failure")
	}
	if r.m.MovesFailed < 2 {
		t.Fatalf("only %d failed moves before the trip, threshold is 2", r.m.MovesFailed)
	}
	// The cooldown outlasts the run, so after the trip the breaker stays
	// open and no further moves are attempted.
	if r.status.BreakerState != contend.BreakerOpen.String() {
		t.Fatalf("final breaker state %q, want open", r.status.BreakerState)
	}
	if r.m.AuditViolations != 0 {
		t.Fatalf("audit found %d violations: %+v", r.m.AuditViolations, r.report.Violations)
	}
	// Degraded ≠ broken: the run completed, instances are conserved and
	// still doing work (rollbacks cost blackout quanta but never strand).
	hosting := 0
	for _, sr := range r.m.PerServer {
		h := sr.MigratedIn - sr.MigratedOut
		if r.placed[sr.Index] {
			h++
		}
		hosting += h
	}
	if hosting != cfg.Instances {
		t.Fatalf("%d instances hosted at end, want %d", hosting, cfg.Instances)
	}
	if r.m.BatchUnits <= 0 {
		t.Fatalf("BatchUnits = %v; fleet stopped delivering batch work", r.m.BatchUnits)
	}
}

// TestPlannerEdgeCases covers the decision-time corners the coordinator
// leans on: an exhausted budget and an empty destination set must both be
// deterministic no-ops, never panics.
func TestPlannerEdgeCases(t *testing.T) {
	cands := []contend.Candidate{{Server: 0, App: "er-naive", Score: 5}}
	targets := []contend.Target{
		{Server: 1, Load: 0.2, Eligible: true},
		{Server: 2, Load: 0.4, Eligible: true},
	}
	// Budget exhausted (breaker open, or spent): plans nothing.
	if moves := contend.PlanMoves(42, cands, targets, 0); moves != nil {
		t.Fatalf("budget 0 planned %d moves", len(moves))
	}
	// Zero eligible destinations: plans nothing.
	none := []contend.Target{
		{Server: 1, Load: 0.2, Eligible: false},
		{Server: 2, Load: 0.4, Eligible: false},
	}
	if moves := contend.PlanMoves(42, cands, none, 4); moves != nil {
		t.Fatalf("no eligible targets but planned %d moves", len(moves))
	}
	if ts := contend.OrderTargets(42, none); len(ts) != 0 {
		t.Fatalf("OrderTargets returned %d ineligible targets", len(ts))
	}
	// More candidates than targets: the plan stops at the targets.
	many := append(cands, contend.Candidate{Server: 3, App: "milc", Score: 4},
		contend.Candidate{Server: 4, App: "milc", Score: 3})
	if moves := contend.PlanMoves(42, many, targets, 10); len(moves) != 2 {
		t.Fatalf("planned %d moves for 2 targets", len(moves))
	}
}

// TestMoveSurvivesDestinationCrash drives migration against a fleet where
// servers crash mid-run: a move whose destination dies during the blackout
// must retry or roll back deterministically — never panic, never strand
// the instance. High crash probability makes the coordinator re-place
// victims dynamically in the same epochs moves are in flight.
func TestMoveSurvivesDestinationCrash(t *testing.T) {
	cfg := migrateConfig(2, RoundRobin{})
	cfg.Chaos = &faults.Chaos{ServerCrashProb: 0.5, RestartDelaySeconds: 0.1}
	r := doMigrateRun(t, cfg)
	if r.m.Crashes == 0 {
		t.Fatal("no server crashed; the test exercises nothing")
	}
	if r.m.AuditViolations != 0 {
		t.Fatalf("audit found %d violations: %+v", r.m.AuditViolations, r.report.Violations)
	}
	// Conservation at the horizon, from the audit's own census: the final
	// sweep accounts every placed instance as hosted or stranded-on-dead.
	last := r.report.Epochs[len(r.report.Epochs)-1]
	if got := last.Hosted + last.InFlight + last.Stranded; got != r.report.Instances {
		t.Fatalf("final census %d (hosted %d + in-flight %d + stranded %d), placed %d",
			got, last.Hosted, last.InFlight, last.Stranded, r.report.Instances)
	}
}
