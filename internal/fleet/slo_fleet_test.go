package fleet

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/slo"
	"repro/internal/tsdb"
)

// sloChaosConfig is a crash-heavy migration fleet with the SLO engine on:
// crashed servers burn the availability budget fast, so the run reliably
// fires at least one alert and freezes at least one postmortem bundle.
func sloChaosConfig(workers int) Config {
	cfg := migrateConfig(workers, RoundRobin{})
	cfg.Chaos = &faults.Chaos{
		ServerCrashProb:     0.5,
		RestartDelaySeconds: 0.25,
	}
	cfg.SLO = &SLOConfig{BoostBudget: 1}
	return cfg
}

type sloRun struct {
	m       Metrics
	status  string
	alerts  string
	tsdb    string
	bundles []string
}

func doSLORun(t *testing.T, cfg Config) sloRun {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	var db strings.Builder
	if err := f.WriteTSDB(&db); err != nil {
		t.Fatal(err)
	}
	var bundles []string
	for _, b := range f.Postmortems() {
		bundles = append(bundles, b.JSON())
	}
	return sloRun{
		m:       m,
		status:  f.SLOStatusJSON(),
		alerts:  f.AlertLogJSON(),
		tsdb:    db.String(),
		bundles: bundles,
	}
}

// TestSLODeterministicAcrossWorkerCounts extends the concurrency contract
// to the judgment layer: the alert log, the tsdb export, the SLO status and
// every frozen postmortem bundle must be byte-identical between a serial
// and an 8-worker run of the same seeded chaos fleet.
func TestSLODeterministicAcrossWorkerCounts(t *testing.T) {
	r1 := doSLORun(t, sloChaosConfig(1))
	r8 := doSLORun(t, sloChaosConfig(8))
	if !reflect.DeepEqual(r1.m, r8.m) {
		t.Error("metrics diverge across worker counts")
	}
	if r1.alerts != r8.alerts {
		t.Errorf("alert logs diverge across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", r1.alerts, r8.alerts)
	}
	if r1.tsdb != r8.tsdb {
		t.Error("tsdb exports diverge across worker counts")
	}
	if r1.status != r8.status {
		t.Errorf("SLO status diverges across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", r1.status, r8.status)
	}
	if !reflect.DeepEqual(r1.bundles, r8.bundles) {
		t.Error("postmortem bundles diverge across worker counts")
	}

	// The crash-heavy run must actually exercise the pipeline end to end.
	if r1.m.AlertsFired < 1 {
		t.Errorf("AlertsFired = %d, want >= 1 (crash chaos should burn the availability budget)", r1.m.AlertsFired)
	}
	if r1.m.Postmortems < 1 {
		t.Errorf("Postmortems = %d, want >= 1", r1.m.Postmortems)
	}
	if !strings.Contains(r1.alerts, `"to": "firing"`) {
		t.Errorf("alert log records no firing transition:\n%s", r1.alerts)
	}
	all := strings.Join(r1.bundles, "")
	for _, section := range []string{`"slo":`, `"tsdb_window":`, `"trace_tail":`, `"open_spans":`, `"contend":`, `"audit":`} {
		if !strings.Contains(all, section) {
			t.Errorf("postmortem bundles missing section %s", section)
		}
	}
	// Bundles must be valid JSON (sections embed pre-rendered sub-documents).
	var anyJSON any
	for i, b := range r1.bundles {
		if err := json.Unmarshal([]byte(b), &anyJSON); err != nil {
			t.Errorf("postmortem bundle %d is not valid JSON: %v\n%s", i, err, b)
		}
	}
	if err := json.Unmarshal([]byte(r1.tsdb), &anyJSON); err != nil {
		t.Errorf("tsdb export is not valid JSON: %v", err)
	}
}

// TestSLOObserverDoesNotPerturbSimulation: the observer only reads server
// state, so a run with the SLO engine on must measure exactly the same
// fleet as one with it off.
func TestSLOObserverDoesNotPerturbSimulation(t *testing.T) {
	base := testConfig(2)
	with := testConfig(2)
	with.SLO = &SLOConfig{WindowSeconds: 0.25}

	run := func(cfg Config) Metrics {
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m0, m1 := run(base), run(with)
	// Blank the SLO-only aggregates and compare everything else.
	m1.AlertsFired, m1.AlertsResolved, m1.Postmortems = 0, 0, 0
	if !reflect.DeepEqual(m0, m1) {
		t.Errorf("SLO observer perturbed the measured fleet:\noff: %+v\non:  %+v", m0, m1)
	}
}

// TestSLOWithoutMigration: the epoch loop must run on the SLO clock alone.
func TestSLOWithoutMigration(t *testing.T) {
	cfg := testConfig(2)
	cfg.SLO = &SLOConfig{WindowSeconds: 0.25}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	var db strings.Builder
	if err := f.WriteTSDB(&db); err != nil {
		t.Fatal(err)
	}
	// Horizon 0.75s on a 0.25s window → barriers at 0.25 and 0.5.
	if !strings.Contains(db.String(), `"last_epoch": 2`) {
		t.Errorf("tsdb export missing epochs:\n%.200s", db.String())
	}
	// The store sampled the fleet-wide registries, not just SLI series.
	if !strings.Contains(db.String(), `"protean_fleet_scrape_interval_quanta"`) {
		t.Error("tsdb export missing sampled registry gauge")
	}
	if !strings.Contains(f.SLOStatusJSON(), `"name": "qos-attainment"`) {
		t.Errorf("SLO status missing default specs:\n%s", f.SLOStatusJSON())
	}
}

// TestHealthDegraded pins the /healthz degradation conditions: an open
// migration circuit breaker or any recorded conservation violation.
func TestHealthDegraded(t *testing.T) {
	f := &Fleet{}
	if st, _ := f.health(); st != "ok" {
		t.Errorf("fresh fleet health = %s, want ok", st)
	}
	f.contendStat = &ContendStatus{BreakerState: "open"}
	if st, reason := f.health(); st != "degraded" || !strings.Contains(reason, "breaker") {
		t.Errorf("open breaker health = %s (%s), want degraded", st, reason)
	}
	f.contendStat.BreakerState = "closed"
	f.auditStat = &AuditReport{Violations: make([]AuditViolation, 1)}
	if st, reason := f.health(); st != "degraded" || !strings.Contains(reason, "audit") {
		t.Errorf("audit-violation health = %s (%s), want degraded", st, reason)
	}
	f.auditStat = &AuditReport{}
	if st, _ := f.health(); st != "ok" {
		t.Errorf("recovered health = %s, want ok", st)
	}
}

// TestBoostBudget pins the alert→migration feedback hook: extra budget is
// granted exactly while the boost spec fires.
func TestBoostBudget(t *testing.T) {
	f := &Fleet{}
	if f.boostBudget() != 0 {
		t.Error("boost without observer")
	}
	db := tsdb.New(tsdb.Config{})
	eng := slo.NewEngine(db, []slo.Spec{{
		Name: "qos-attainment", Good: "g", Total: "t", Objective: 0.9,
		Rules: []slo.BurnRule{{LongEpochs: 1, ShortEpochs: 1, Burn: 1}},
	}})
	f.sloObs = &sloObserver{
		sc:  SLOConfig{BoostBudget: 2, BoostSpec: "qos-attainment"},
		eng: eng,
	}
	if f.boostBudget() != 0 {
		t.Error("boost granted while inactive")
	}
	// Drive the spec to firing: 100% errors against a 10% budget.
	db.Observe("g", tsdb.Point{Epoch: 1, T: 1, V: 0})
	db.Observe("t", tsdb.Point{Epoch: 1, T: 1, V: 100})
	eng.Evaluate(1, 1)
	if !eng.Firing("qos-attainment") {
		t.Fatal("spec did not fire")
	}
	if f.boostBudget() != 2 {
		t.Errorf("boost = %d while firing, want 2", f.boostBudget())
	}
	f.sloObs.sc.BoostBudget = 0
	if f.boostBudget() != 0 {
		t.Error("boost granted with BoostBudget 0")
	}
}
