// Live batch migration: the online control loop that closes the gap
// between "placement happened once" and the paper's always-reacting
// warehouse. With Config.Migration set, the fleet timeline advances in
// decision epochs. At every epoch boundary all servers stop (the same
// worker pool advances them; segment boundaries change nothing about what
// each machine computes), and a single-threaded coordinator:
//
//  1. re-places instances off servers that crashed since the last epoch
//     (the cluster scheduler's reaction, computed against live occupancy
//     rather than the static t=0 assignment),
//  2. samples every server's counters since the previous epoch (CPI,
//     MPKI, LLC miss bandwidth, offered load), evicting dead servers from
//     the detector and applying any seeded sensor faults (corrupted or
//     stale samples),
//  3. feeds them to the internal/contend streaming detector, whose
//     quantile thresholds with hysteresis and cooldown flag contended
//     servers without flapping,
//  4. consults the migration circuit breaker — consecutive failed moves
//     or a corrupt-sample epoch trip it open, suspending migration for a
//     cooldown before a half-open probe move re-arms it — and
//  5. asks the planner for up to the admitted budget of moves, executing
//     each as a transaction: prepare → detach → blackout → land. A landing
//     that fails (seeded fault, or the destination crashed during the
//     blackout) deterministically retries the next eligible destination
//     under capped backoff; when every attempt fails the move rolls back
//     to its source with an extra blackout penalty. An instance is never
//     lost and never runs twice.
//
// Every decision is a pure function of (seed, epoch counters), so runs
// are bit-identical at any -workers, and every decision leaves a trail:
// contend.* counters, EvContended/EvMigration/EvMoveFailed/EvBreaker
// events, contend.decide / contend.migrate(.retry/.rollback) spans, the
// ContendStatus snapshot served at /contend, and the conservation
// auditor's per-epoch report served at /audit.
package fleet

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/contend"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// MigrationConfig tunes the migration control loop.
type MigrationConfig struct {
	// WindowSeconds is the decision-epoch length (default 0.5): one
	// detector sample per server per epoch.
	WindowSeconds float64
	// Detector tunes the streaming detector (zero fields take
	// contend.Config defaults; Seed defaults to the fleet seed).
	Detector contend.Config
	// BudgetPerEpoch caps migrations per decision epoch (default 1).
	BudgetPerEpoch int
	// BlackoutSeconds is the migration cost model: the evicted instance
	// runs nowhere for this long (default 0.25), and the lost quanta are
	// charged to contend_migration_quanta_lost_total.
	BlackoutSeconds float64
	// MaxLandAttempts caps landing attempts per move, the planned
	// destination included (default 3); after the last failure the move
	// rolls back to its source.
	MaxLandAttempts int
	// RetryBackoffSeconds is the extra blackout charged before each retry
	// landing, doubling per attempt up to RetryBackoffCapSeconds
	// (defaults BlackoutSeconds/2 and 2·BlackoutSeconds).
	RetryBackoffSeconds    float64
	RetryBackoffCapSeconds float64
	// RollbackPenaltySeconds is the extra blackout charged when a move
	// rolls back to its source (default BlackoutSeconds).
	RollbackPenaltySeconds float64
	// Breaker tunes the migration circuit breaker (zero fields take
	// contend.BreakerConfig defaults).
	Breaker contend.BreakerConfig
}

func (mc MigrationConfig) withDefaults(c Config) MigrationConfig {
	if mc.WindowSeconds <= 0 {
		mc.WindowSeconds = 0.5
	}
	if mc.BudgetPerEpoch <= 0 {
		mc.BudgetPerEpoch = 1
	}
	if mc.BlackoutSeconds <= 0 {
		mc.BlackoutSeconds = 0.25
	}
	if mc.MaxLandAttempts <= 0 {
		mc.MaxLandAttempts = 3
	}
	if mc.RetryBackoffSeconds <= 0 {
		mc.RetryBackoffSeconds = mc.BlackoutSeconds / 2
	}
	if mc.RetryBackoffCapSeconds <= 0 {
		mc.RetryBackoffCapSeconds = 2 * mc.BlackoutSeconds
	}
	if mc.RollbackPenaltySeconds <= 0 {
		mc.RollbackPenaltySeconds = mc.BlackoutSeconds
	}
	if mc.Detector.Seed == 0 {
		mc.Detector.Seed = c.Seed
	}
	mc.Detector = mc.Detector.WithDefaults()
	mc.Breaker = mc.Breaker.WithDefaults()
	return mc
}

// Move outcomes recorded in MoveRecord.Outcome.
const (
	// MoveLanded: the instance landed at a destination (possibly after
	// retries).
	MoveLanded = "landed"
	// MoveRolledBack: every landing attempt failed; the instance returned
	// to its source with an extra blackout penalty.
	MoveRolledBack = "rollback"
	// MoveDetachFailed: the move aborted before the source detached; the
	// instance never stopped running.
	MoveDetachFailed = "detach-fail"
)

// MoveRecord is one attempted migration, for the ContendStatus export.
type MoveRecord struct {
	// Epoch and AtSeconds locate the decision.
	Epoch     int
	AtSeconds float64
	App       string
	// From is the source; PlannedTo is the planner's chosen destination;
	// To is where the instance actually ended up (a retry destination on
	// landing faults, the source again on rollback or detach failure).
	From, To  int
	PlannedTo int
	// LandAtSeconds is when the instance resumed (0 for a detach failure,
	// where it never stopped).
	LandAtSeconds float64
	// Outcome is MoveLanded, MoveRolledBack or MoveDetachFailed.
	Outcome string
	// Attempts counts landing attempts (0 for a detach failure).
	Attempts int
	// QuantaLost is the batch quanta charged to this move's blackout,
	// stall jitter, retries and rollback penalty included.
	QuantaLost uint64
}

// ContendStatus is the migration control loop's published state: detector
// thresholds and per-server verdicts at the latest decision epoch, the
// failure/breaker tallies, plus the cumulative move log. Served live at
// /contend and exportable after the run for the determinism gate.
type ContendStatus struct {
	Epoch           int
	AtSeconds       float64
	WindowSeconds   float64
	BlackoutSeconds float64
	Budget          int
	EnterThreshold  float64
	ExitThreshold   float64
	Contended       int
	Migrations      uint64
	QuantaLost      uint64
	// Failure and breaker tallies (all zero on a healthy move path).
	MovesFailed    uint64
	Rollbacks      uint64
	Retries        uint64
	CorruptSamples uint64
	StaleSamples   uint64
	BreakerState   string
	BreakerTrips   uint64
	Servers        []contend.State
	Moves          []MoveRecord
}

func (st *ContendStatus) clone() *ContendStatus {
	c := *st
	c.Servers = append([]contend.State(nil), st.Servers...)
	c.Moves = append([]MoveRecord(nil), st.Moves...)
	return &c
}

// WriteJSON renders the status as deterministic JSON: fixed field order,
// canonical float formatting, no reflection — byte-identical at any
// worker count under a fixed seed.
func (st *ContendStatus) WriteJSON(w io.Writer) error {
	var b strings.Builder
	ff := telemetry.FormatFloat
	fmt.Fprintf(&b, "{\n  \"epoch\": %d,\n  \"at_seconds\": %s,\n", st.Epoch, ff(st.AtSeconds))
	fmt.Fprintf(&b, "  \"window_seconds\": %s,\n  \"blackout_seconds\": %s,\n  \"budget\": %d,\n",
		ff(st.WindowSeconds), ff(st.BlackoutSeconds), st.Budget)
	fmt.Fprintf(&b, "  \"enter_threshold\": %s,\n  \"exit_threshold\": %s,\n", ff(st.EnterThreshold), ff(st.ExitThreshold))
	fmt.Fprintf(&b, "  \"contended\": %d,\n  \"migrations\": %d,\n  \"quanta_lost\": %d,\n",
		st.Contended, st.Migrations, st.QuantaLost)
	fmt.Fprintf(&b, "  \"moves_failed\": %d,\n  \"rollbacks\": %d,\n  \"retries\": %d,\n",
		st.MovesFailed, st.Rollbacks, st.Retries)
	fmt.Fprintf(&b, "  \"corrupt_samples\": %d,\n  \"stale_samples\": %d,\n", st.CorruptSamples, st.StaleSamples)
	fmt.Fprintf(&b, "  \"breaker_state\": %q,\n  \"breaker_trips\": %d,\n", st.BreakerState, st.BreakerTrips)
	b.WriteString("  \"servers\": [")
	for i, sv := range st.Servers {
		if i > 0 {
			b.WriteString(",")
		}
		contended := "false"
		if sv.Contended {
			contended = "true"
		}
		fmt.Fprintf(&b, "\n    {\"server\": %d, \"score\": %s, \"mpki\": %s, \"miss_rate\": %s, \"util\": %s, \"samples\": %d, \"contended\": %s, \"cooldown\": %d, \"flipped_at\": %d}",
			sv.Server, ff(sv.Score), ff(sv.MPKI), ff(sv.MissRate), ff(sv.Util), sv.Samples, contended, sv.Cooldown, sv.FlippedAt)
	}
	b.WriteString("\n  ],\n  \"moves\": [")
	for i, mv := range st.Moves {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"epoch\": %d, \"at_seconds\": %s, \"app\": %q, \"from\": %d, \"to\": %d, \"planned_to\": %d, \"land_at\": %s, \"outcome\": %q, \"attempts\": %d, \"quanta\": %d}",
			mv.Epoch, ff(mv.AtSeconds), mv.App, mv.From, mv.To, mv.PlannedTo, ff(mv.LandAtSeconds), mv.Outcome, mv.Attempts, mv.QuantaLost)
	}
	b.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// publishContend deposits a snapshot for /contend and ContendStatus.
func (f *Fleet) publishContend(st *ContendStatus) {
	c := st.clone()
	f.contendMu.Lock()
	f.contendStat = c
	f.contendMu.Unlock()
}

// ContendStatus returns the migration control loop's latest published
// snapshot (nil before the first decision epoch, or when migration is
// off). Safe to call from any goroutine.
func (f *Fleet) ContendStatus() *ContendStatus {
	f.contendMu.Lock()
	defer f.contendMu.Unlock()
	if f.contendStat == nil {
		return nil
	}
	return f.contendStat.clone()
}

// migrator is the per-run state of the decision-epoch coordinator. All of
// it is touched only in the single-threaded coordinator sections between
// epochs, so every decision is a pure function of (seed, epoch counters).
type migrator struct {
	f       *Fleet
	mc      MigrationConfig
	ch      *faults.Chaos
	sims    []*serverSim
	det     *contend.Detector
	brk     *contend.Breaker
	aud     *auditor
	plan    *chaosPlan
	status  *ContendStatus
	horizon float64
	freq    float64
	quantum uint64

	cMig, cLost, cFail, cRoll, cRetry, cTrip, cCorrupt, cStale *telemetry.Counter
	gCont, gBreaker                                            *telemetry.Gauge

	moveSeq uint64
	// lastDelivered is what each server's sensor delivered last epoch —
	// the reading a stale sensor replays.
	lastDelivered []contend.Sample
	// handledDead marks crashed servers whose instance fate is settled.
	handledDead []bool
	// spares are this epoch's unused eligible destinations, in planner
	// preference order — the deterministic retry sequence.
	spares []contend.Target
}

// cyc converts simulated seconds to cycles.
func (g *migrator) cyc(sec float64) uint64 { return uint64(sec * g.freq) }

// quanta converts a blackout duration to lost batch quanta.
func (g *migrator) quanta(sec float64) uint64 { return uint64(sec*g.freq) / g.quantum }

// alive reports whether server i is up at barrier time t.
func (g *migrator) alive(i int, t float64) bool {
	s := g.sims[i]
	return !s.res.Crashed || t < s.stop
}

// emitBreaker records a breaker transition on the fleet-scope trace.
func (g *migrator) emitBreaker(t float64, cause string) {
	g.f.tel.Emit(telemetry.Event{
		At: g.cyc(t), Kind: telemetry.EvBreaker, Server: -1,
		Value: float64(g.brk.State()), Detail: cause,
	})
}

// newMigrator builds the decision-epoch coordinator described in the
// package comment above; runEpochs drives its barrier once per epoch. sims
// are already constructed and at t=0; plan receives the coordinator's
// dynamic re-placement counts.
func (f *Fleet) newMigrator(sims []*serverSim, horizon float64, plan *chaosPlan) *migrator {
	mc := *f.cfg.Migration
	n := len(sims)
	mcfg := sims[0].m.Config()
	g := &migrator{
		f: f, mc: mc, ch: f.cfg.Chaos, sims: sims,
		det: contend.New(n, mc.Detector), brk: contend.NewBreaker(mc.Breaker),
		plan: plan, horizon: horizon,
		freq: mcfg.FreqHz, quantum: mcfg.QuantumCycles,
		cMig:     f.tel.Counter("contend", "migrations_total", "live batch migrations landed"),
		cLost:    f.tel.Counter("contend", "migration_quanta_lost_total", "batch quanta lost to migration blackouts"),
		cFail:    f.tel.Counter("contend", "moves_failed_total", "live migrations that failed (detach faults + rollbacks)"),
		cRoll:    f.tel.Counter("contend", "move_rollbacks_total", "failed moves rolled back to their source"),
		cRetry:   f.tel.Counter("contend", "move_retries_total", "extra landing attempts after a failed landing"),
		cTrip:    f.tel.Counter("contend", "breaker_trips_total", "migration circuit-breaker trips"),
		cCorrupt: f.tel.Counter("contend", "corrupt_samples_total", "detector samples corrupted by chaos"),
		cStale:   f.tel.Counter("contend", "stale_samples_total", "detector samples replayed stale by chaos"),
		gCont:    f.tel.Gauge("contend", "contended_servers", "servers flagged contended at the latest decision epoch"),
		gBreaker: f.tel.Gauge("contend", "breaker_state", "migration breaker position (0 closed, 1 half-open, 2 open)"),
		status: &ContendStatus{
			WindowSeconds:   mc.WindowSeconds,
			BlackoutSeconds: mc.BlackoutSeconds,
			Budget:          mc.BudgetPerEpoch,
			BreakerState:    contend.BreakerClosed.String(),
		},
		lastDelivered: make([]contend.Sample, n),
		handledDead:   make([]bool, n),
	}
	g.aud = newAuditor(f, sims)
	f.audit = g.aud
	return g
}

// barrier is the coordinator's single-threaded epoch step; runEpochs calls
// it after every server has advanced to the barrier. Index order,
// deterministic.
func (g *migrator) barrier(e int, t float64) error {
	n := len(g.sims)
	{
		g.replaceDead(t)
		samples, corruptEpoch := g.sample(e, t)
		verdicts := g.det.Observe(samples)
		states := g.det.States()
		for i, st := range states {
			if st.FlippedAt == g.det.Epoch() {
				v := 0.0
				if st.Contended {
					v = 1
				}
				g.sims[i].reg.Emit(telemetry.Event{
					At: g.sims[i].m.Now(), Kind: telemetry.EvContended,
					Value: v, Detail: telemetry.FormatFloat(st.Score),
				})
			}
		}
		g.gCont.Set(float64(g.det.Contended()))

		// Breaker epoch advance: cooldown countdown, then the corrupt-epoch
		// trip — decisions made from corrupted counters can't be trusted.
		prevState := g.brk.State()
		g.brk.BeginEpoch()
		if g.brk.State() != prevState {
			g.emitBreaker(t, "cooldown")
		}
		if corruptEpoch {
			preTrips := g.brk.Trips()
			g.brk.TripCorrupt()
			if g.brk.Trips() != preTrips {
				g.cTrip.Inc()
				g.emitBreaker(t, "corrupt")
			}
		}
		g.gBreaker.Set(float64(g.brk.State()))

		// The breaker admits moves; a firing QoS burn alert (previous
		// epoch's evaluation — the SLO step runs after this one) raises
		// the admitted budget so the control loop reacts harder while the
		// fleet burns error budget. The breaker still gates everything: an
		// open breaker admits zero moves, boost or not.
		budget := g.brk.Budget(g.mc.BudgetPerEpoch)
		if budget > 0 {
			budget += g.f.boostBudget()
		}
		spDecide := g.f.tel.StartSpan("contend.decide", g.cyc(t), 0)
		g.f.tel.SpanAttrs(spDecide,
			telemetry.Num("epoch", float64(g.det.Epoch())),
			telemetry.Num("contended", float64(g.det.Contended())),
			telemetry.Num("budget", float64(budget)))
		var moves []contend.Move
		g.spares = nil
		if budget > 0 && t+g.mc.BlackoutSeconds < g.horizon {
			var cands []contend.Candidate
			targets := make([]contend.Target, 0, n)
			for i, s := range g.sims {
				alive := t < s.stop
				if verdicts[i] && alive && s.host != nil {
					cands = append(cands, contend.Candidate{
						Server: i, App: s.hostApp, Score: g.f.cal.pressure[s.hostApp],
					})
				}
				targets = append(targets, contend.Target{
					Server: i, Load: samples[i].Util,
					Eligible: alive && samples[i].Valid && !verdicts[i] &&
						s.host == nil && len(s.pending) == 0,
				})
			}
			moves = contend.PlanMoves(g.mc.Detector.Seed, cands, targets, budget)
			// The ordered eligible targets not consumed by the plan are the
			// retry fallbacks, in the same preference order.
			ordered := contend.OrderTargets(g.mc.Detector.Seed, targets)
			if len(moves) < len(ordered) {
				g.spares = ordered[len(moves):]
			}
		}
		for _, mv := range moves {
			outcome := g.executeMove(mv, e, t, spDecide)
			preState, preTrips := g.brk.State(), g.brk.Trips()
			switch {
			case outcome > 0:
				g.brk.RecordSuccess()
				if g.brk.State() != preState {
					g.emitBreaker(t, "probe-ok")
				}
			case outcome < 0:
				g.brk.RecordFailure()
				if g.brk.Trips() != preTrips {
					g.cTrip.Inc()
					cause := "failures"
					if preState == contend.BreakerHalfOpen {
						cause = "probe-fail"
					}
					g.emitBreaker(t, cause)
				}
			}
		}
		g.gBreaker.Set(float64(g.brk.State()))
		g.f.tel.EndSpan(spDecide, g.cyc(t))

		st := g.status
		st.Epoch = g.det.Epoch()
		st.AtSeconds = t
		st.EnterThreshold, st.ExitThreshold = g.det.Thresholds()
		st.Contended = g.det.Contended()
		st.Migrations = g.cMig.Value()
		st.QuantaLost = g.cLost.Value()
		st.MovesFailed = g.cFail.Value()
		st.Rollbacks = g.cRoll.Value()
		st.Retries = g.cRetry.Value()
		st.CorruptSamples = g.cCorrupt.Value()
		st.StaleSamples = g.cStale.Value()
		st.BreakerState = g.brk.State().String()
		st.BreakerTrips = uint64(g.brk.Trips())
		st.Servers = states
		g.f.publishContend(st)
		g.aud.check(g.det.Epoch(), t, g.cLost.Value(), g.cMig.Value(), g.cFail.Value())
		g.f.publishAudit(g.aud.rep.clone())
	}
	return nil
}

// replaceDead is the cluster scheduler's dynamic reaction: servers that
// crashed since the last epoch while hosting a batch instance get it
// re-placed, RestartDelaySeconds after the crash, onto the lowest-index
// surviving batch-free server — computed against live occupancy, because
// migration may have moved instances on or off the victim since t=0. An
// instance that cannot be re-placed (horizon too close, or no free
// survivor) stays attached to the corpse and is accounted as dead with it.
func (g *migrator) replaceDead(t float64) {
	if g.ch == nil || g.ch.ServerCrashProb <= 0 {
		return
	}
	// Victims in (crash time, index) order — the order a real scheduler
	// observes the failures. Barrier order equals crash order here because
	// each epoch sweeps the fleet in index order below.
	type victim struct {
		idx int
		at  float64
	}
	var victims []victim
	for i, s := range g.sims {
		if s.res.Crashed && t >= s.stop && !g.handledDead[i] {
			g.handledDead[i] = true
			if s.host != nil {
				victims = append(victims, victim{i, s.stop})
			}
		}
	}
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && (victims[j-1].at > victims[j].at ||
			(victims[j-1].at == victims[j].at && victims[j-1].idx > victims[j].idx)); j-- {
			victims[j-1], victims[j] = victims[j], victims[j-1]
		}
	}
	for _, v := range victims {
		land := v.at + g.ch.RestartDelaySeconds
		if land >= g.horizon {
			g.plan.unplaced++
			continue
		}
		target := -1
		for j, s := range g.sims {
			if j != v.idx && land < s.stop && s.host == nil && len(s.pending) == 0 {
				target = j
				break
			}
		}
		if target < 0 {
			g.plan.unplaced++
			continue
		}
		app := g.sims[v.idx].detachInstance()
		if app == "" {
			continue
		}
		g.sims[target].scheduleArrival(arrival{App: app, AtSeconds: land, from: v.idx})
		g.plan.replacements++
	}
}

// sample reads every server's contention signals for this epoch: dead
// servers are evicted from the detector (their stale windows must not pin
// the fleet quantile), and live servers' readings pass through the seeded
// sensor-fault schedule — corrupted samples arrive scaled by a garbage
// factor, stale samples replay what the sensor last delivered.
func (g *migrator) sample(e int, t float64) (samples []contend.Sample, corruptEpoch bool) {
	samples = make([]contend.Sample, len(g.sims))
	for i, s := range g.sims {
		raw := s.contendSample()
		if !g.alive(i, t) || t >= s.stop {
			g.det.Evict(i)
			samples[i] = contend.Sample{}
			g.lastDelivered[i] = contend.Sample{}
			continue
		}
		if g.ch != nil {
			switch g.ch.SampleFaultAt(i, uint64(e)) {
			case faults.SampleCorrupt:
				fct := g.ch.CorruptFactor(i, uint64(e))
				raw.CPI *= fct
				raw.MPKI *= fct
				raw.MissRate *= fct
				g.cCorrupt.Inc()
				corruptEpoch = true
			case faults.SampleStale:
				if g.lastDelivered[i].Valid {
					raw = g.lastDelivered[i]
					g.cStale.Inc()
				}
			}
		}
		samples[i] = raw
		g.lastDelivered[i] = raw
	}
	return samples, corruptEpoch
}

// takeSpare pops the next fallback destination still alive at the landing
// time and still free, in planner preference order. Freshness is
// re-checked at take time: an earlier move's rollback may have landed on a
// server that was spare at decision time.
func (g *migrator) takeSpare(land float64) (int, bool) {
	for len(g.spares) > 0 {
		tgt := g.spares[0]
		g.spares = g.spares[1:]
		s := g.sims[tgt.Server]
		if land < s.stop && s.host == nil && len(s.pending) == 0 {
			return tgt.Server, true
		}
	}
	return -1, false
}

// executeMove runs one planned move as a transaction. Because every fault
// decision and crash time is a pure function of the seed, the whole
// prepare → detach → blackout → land(+retries) → rollback chain resolves
// eagerly at decision time: exactly one arrival is scheduled per detached
// instance, so the instance is never lost and never runs twice. Returns
// +1 when the instance landed at a destination, -1 when the move failed
// (the breaker's signals), 0 for a no-op.
func (g *migrator) executeMove(mv contend.Move, epoch int, t float64, spDecide telemetry.SpanID) int {
	mc, ch := g.mc, g.ch
	src := g.sims[mv.From]
	seq := g.moveSeq
	g.moveSeq++
	sp := g.f.tel.StartSpan("contend.migrate", g.cyc(t), spDecide)
	g.f.tel.SpanAttrs(sp,
		telemetry.Str("app", mv.App),
		telemetry.Num("from", float64(mv.From)),
		telemetry.Num("to", float64(mv.To)))
	rec := MoveRecord{
		Epoch: epoch, AtSeconds: t, App: mv.App,
		From: mv.From, To: mv.To, PlannedTo: mv.To,
	}
	if ch != nil && ch.MoveDetachFails(mv.From, seq) {
		// Prepare failed: the instance never leaves the source.
		g.cFail.Inc()
		src.reg.Emit(telemetry.Event{
			At: src.m.Now(), Kind: telemetry.EvMoveFailed,
			Func: mv.App, Value: float64(mv.To), Detail: "detach",
		})
		rec.Outcome, rec.To = MoveDetachFailed, mv.From
		g.f.tel.EndSpan(sp, g.cyc(t))
		g.finishMove(rec)
		return -1
	}
	app := src.detachBatch()
	if app == "" {
		// Planner raced an empty source; nothing to do.
		g.f.tel.EndSpan(sp, g.cyc(t))
		return 0
	}
	src.reg.Counter("contend", "migrations_out_total", "batch instances evicted from this server by the migration planner").Inc()
	src.reg.Emit(telemetry.Event{
		At: src.m.Now(), Kind: telemetry.EvMigration,
		Func: app, Value: float64(mv.To), Detail: "out",
	})
	// dur accumulates the blackout as a sum of configured durations, and
	// quanta charges come from dur rather than landing-time differences —
	// float subtraction could round a clean blackout to one quantum short.
	dur := mc.BlackoutSeconds
	if ch != nil {
		dur += ch.MoveStallSeconds(mv.From, seq)
	}
	backoff := mc.RetryBackoffSeconds
	dst := mv.To
	for attempt := 1; ; attempt++ {
		rec.Attempts = attempt
		land := t + dur
		landFault := ch != nil && ch.MoveLandFails(dst, seq, attempt)
		if !landFault && land < g.sims[dst].stop {
			// Landed: the destination is alive at landing and accepted it.
			g.sims[dst].scheduleArrival(arrival{App: app, AtSeconds: land, migrated: true, from: mv.From})
			lost := g.quanta(dur)
			g.cMig.Inc()
			g.cLost.Add(lost)
			rec.Outcome, rec.To, rec.LandAtSeconds, rec.QuantaLost = MoveLanded, dst, land, lost
			g.f.tel.EndSpan(sp, g.cyc(land))
			g.finishMove(rec)
			return 1
		}
		// This attempt failed (landing fault, or the destination is dead
		// by landing time). Retry the next eligible destination under
		// capped backoff, or roll back once attempts run out.
		next, ok := -1, false
		if attempt < mc.MaxLandAttempts {
			next, ok = g.takeSpare(land + backoff)
		}
		if !ok {
			g.rollback(&rec, src, app, dur, sp)
			return -1
		}
		spR := g.f.tel.StartSpan("contend.migrate.retry", g.cyc(land), sp)
		g.f.tel.SpanAttrs(spR,
			telemetry.Num("attempt", float64(attempt)),
			telemetry.Num("to", float64(next)))
		dur += backoff
		g.f.tel.EndSpan(spR, g.cyc(t+dur))
		g.cRetry.Inc()
		if backoff *= 2; backoff > mc.RetryBackoffCapSeconds {
			backoff = mc.RetryBackoffCapSeconds
		}
		dst = next
	}
}

// rollback returns a detached instance to its source with an extra
// blackout penalty. If the source itself will be dead by then, the
// scheduler lands it on the lowest-index free survivor instead; with
// nowhere at all to go it still returns to the (dead) source, where the
// auditor accounts it as lost to the crash, not to the migration.
func (g *migrator) rollback(rec *MoveRecord, src *serverSim, app string, dur float64, sp telemetry.SpanID) {
	mc := g.mc
	rbDur := dur + mc.RollbackPenaltySeconds
	rbLand := rec.AtSeconds + rbDur
	target := src.idx
	if rbLand >= g.sims[target].stop {
		for j, s := range g.sims {
			if j != src.idx && rbLand < s.stop && s.host == nil && len(s.pending) == 0 {
				target = j
				break
			}
		}
	}
	g.sims[target].scheduleArrival(arrival{App: app, AtSeconds: rbLand, migrated: true, from: src.idx, rollback: true})
	lost := g.quanta(rbDur)
	g.cFail.Inc()
	g.cRoll.Inc()
	g.cLost.Add(lost)
	src.reg.Emit(telemetry.Event{
		At: src.m.Now(), Kind: telemetry.EvMoveFailed,
		Func: app, Value: float64(rec.PlannedTo), Detail: "rollback",
	})
	spRB := g.f.tel.StartSpan("contend.migrate.rollback", g.cyc(rec.AtSeconds+dur), sp)
	g.f.tel.SpanAttrs(spRB, telemetry.Num("to", float64(target)))
	g.f.tel.EndSpan(spRB, g.cyc(rbLand))
	rec.Outcome, rec.To, rec.LandAtSeconds, rec.QuantaLost = MoveRolledBack, target, rbLand, lost
	g.f.tel.EndSpan(sp, g.cyc(rbLand))
	g.finishMove(*rec)
}

// finishMove logs the move record and feeds the auditor's expectations.
func (g *migrator) finishMove(rec MoveRecord) {
	g.status.Moves = append(g.status.Moves, rec)
	g.aud.recordMove(rec)
}
