// Live batch migration: the online control loop that closes the gap
// between "placement happened once" and the paper's always-reacting
// warehouse. With Config.Migration set, the fleet timeline advances in
// decision epochs. At every epoch boundary all servers stop (the same
// worker pool advances them; segment boundaries change nothing about what
// each machine computes), and a single-threaded coordinator:
//
//  1. samples every server's counters since the previous epoch (CPI,
//     MPKI, LLC miss bandwidth, offered load),
//  2. feeds them to the internal/contend streaming detector, whose
//     quantile thresholds with hysteresis and cooldown flag contended
//     servers without flapping,
//  3. asks the planner for up to BudgetPerEpoch moves — evict the
//     highest-pressure batch instance from a contended server, land it on
//     the least-loaded eligible server — and
//  4. applies each move: the source detaches its instance (policy closed,
//     instance agents gated off, core freed), and the destination
//     attaches it BlackoutSeconds later; the blackout is the modeled
//     migration cost, charged as lost batch quanta.
//
// Every decision is a pure function of (seed, epoch counters), so runs
// are bit-identical at any -workers, and every decision leaves a trail:
// contend.* counters, EvContended/EvMigration events, contend.decide /
// contend.migrate spans, and the ContendStatus snapshot served at
// /contend.
package fleet

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/contend"
	"repro/internal/telemetry"
)

// MigrationConfig tunes the migration control loop.
type MigrationConfig struct {
	// WindowSeconds is the decision-epoch length (default 0.5): one
	// detector sample per server per epoch.
	WindowSeconds float64
	// Detector tunes the streaming detector (zero fields take
	// contend.Config defaults; Seed defaults to the fleet seed).
	Detector contend.Config
	// BudgetPerEpoch caps migrations per decision epoch (default 1).
	BudgetPerEpoch int
	// BlackoutSeconds is the migration cost model: the evicted instance
	// runs nowhere for this long (default 0.25), and the lost quanta are
	// charged to contend_migration_quanta_lost_total.
	BlackoutSeconds float64
}

func (mc MigrationConfig) withDefaults(c Config) MigrationConfig {
	if mc.WindowSeconds <= 0 {
		mc.WindowSeconds = 0.5
	}
	if mc.BudgetPerEpoch <= 0 {
		mc.BudgetPerEpoch = 1
	}
	if mc.BlackoutSeconds <= 0 {
		mc.BlackoutSeconds = 0.25
	}
	if mc.Detector.Seed == 0 {
		mc.Detector.Seed = c.Seed
	}
	mc.Detector = mc.Detector.WithDefaults()
	return mc
}

// MoveRecord is one executed migration, for the ContendStatus export.
type MoveRecord struct {
	// Epoch and AtSeconds locate the decision; the instance lands at
	// AtSeconds + BlackoutSeconds.
	Epoch     int
	AtSeconds float64
	App       string
	From, To  int
}

// ContendStatus is the migration control loop's published state: detector
// thresholds and per-server verdicts at the latest decision epoch, plus
// the cumulative move log. Served live at /contend and exportable after
// the run for the determinism gate.
type ContendStatus struct {
	Epoch           int
	AtSeconds       float64
	WindowSeconds   float64
	BlackoutSeconds float64
	Budget          int
	EnterThreshold  float64
	ExitThreshold   float64
	Contended       int
	Migrations      uint64
	QuantaLost      uint64
	Servers         []contend.State
	Moves           []MoveRecord
}

func (st *ContendStatus) clone() *ContendStatus {
	c := *st
	c.Servers = append([]contend.State(nil), st.Servers...)
	c.Moves = append([]MoveRecord(nil), st.Moves...)
	return &c
}

// WriteJSON renders the status as deterministic JSON: fixed field order,
// canonical float formatting, no reflection — byte-identical at any
// worker count under a fixed seed.
func (st *ContendStatus) WriteJSON(w io.Writer) error {
	var b strings.Builder
	ff := telemetry.FormatFloat
	fmt.Fprintf(&b, "{\n  \"epoch\": %d,\n  \"at_seconds\": %s,\n", st.Epoch, ff(st.AtSeconds))
	fmt.Fprintf(&b, "  \"window_seconds\": %s,\n  \"blackout_seconds\": %s,\n  \"budget\": %d,\n",
		ff(st.WindowSeconds), ff(st.BlackoutSeconds), st.Budget)
	fmt.Fprintf(&b, "  \"enter_threshold\": %s,\n  \"exit_threshold\": %s,\n", ff(st.EnterThreshold), ff(st.ExitThreshold))
	fmt.Fprintf(&b, "  \"contended\": %d,\n  \"migrations\": %d,\n  \"quanta_lost\": %d,\n",
		st.Contended, st.Migrations, st.QuantaLost)
	b.WriteString("  \"servers\": [")
	for i, sv := range st.Servers {
		if i > 0 {
			b.WriteString(",")
		}
		contended := "false"
		if sv.Contended {
			contended = "true"
		}
		fmt.Fprintf(&b, "\n    {\"server\": %d, \"score\": %s, \"mpki\": %s, \"miss_rate\": %s, \"util\": %s, \"samples\": %d, \"contended\": %s, \"cooldown\": %d, \"flipped_at\": %d}",
			sv.Server, ff(sv.Score), ff(sv.MPKI), ff(sv.MissRate), ff(sv.Util), sv.Samples, contended, sv.Cooldown, sv.FlippedAt)
	}
	b.WriteString("\n  ],\n  \"moves\": [")
	for i, mv := range st.Moves {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"epoch\": %d, \"at_seconds\": %s, \"app\": %q, \"from\": %d, \"to\": %d}",
			mv.Epoch, ff(mv.AtSeconds), mv.App, mv.From, mv.To)
	}
	b.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// publishContend deposits a snapshot for /contend and ContendStatus.
func (f *Fleet) publishContend(st *ContendStatus) {
	c := st.clone()
	f.contendMu.Lock()
	f.contendStat = c
	f.contendMu.Unlock()
}

// ContendStatus returns the migration control loop's latest published
// snapshot (nil before the first decision epoch, or when migration is
// off). Safe to call from any goroutine.
func (f *Fleet) ContendStatus() *ContendStatus {
	f.contendMu.Lock()
	defer f.contendMu.Unlock()
	if f.contendStat == nil {
		return nil
	}
	return f.contendStat.clone()
}

// runMigrated drives the decision-epoch loop described in the package
// comment above. sims are already constructed and at t=0.
func (f *Fleet) runMigrated(sims []*serverSim, horizon float64) error {
	mc := *f.cfg.Migration
	n := len(sims)
	det := contend.New(n, mc.Detector)
	cMig := f.tel.Counter("contend", "migrations_total", "live batch migrations executed")
	cLost := f.tel.Counter("contend", "migration_quanta_lost_total", "batch quanta lost to migration blackouts")
	gCont := f.tel.Gauge("contend", "contended_servers", "servers flagged contended at the latest decision epoch")
	mcfg := sims[0].m.Config()
	cyc := func(sec float64) uint64 { return uint64(sec * mcfg.FreqHz) }
	blackoutQuanta := uint64(mc.BlackoutSeconds*mcfg.FreqHz) / mcfg.QuantumCycles
	status := &ContendStatus{
		WindowSeconds:   mc.WindowSeconds,
		BlackoutSeconds: mc.BlackoutSeconds,
		Budget:          mc.BudgetPerEpoch,
	}
	for e := 1; ; e++ {
		t := float64(e) * mc.WindowSeconds
		if t >= horizon-1e-9 {
			// The final partial segment runs in finish(); no decision at
			// the horizon itself.
			break
		}
		if err := f.forEach(n, func(i int) error { return sims[i].advanceTo(t) }); err != nil {
			return err
		}
		// Coordinator section: single-threaded, index order, deterministic.
		samples := make([]contend.Sample, n)
		for i, s := range sims {
			samples[i] = s.contendSample()
		}
		verdicts := det.Observe(samples)
		states := det.States()
		for i, st := range states {
			if st.FlippedAt == det.Epoch() {
				v := 0.0
				if st.Contended {
					v = 1
				}
				sims[i].reg.Emit(telemetry.Event{
					At: sims[i].m.Now(), Kind: telemetry.EvContended,
					Value: v, Detail: telemetry.FormatFloat(st.Score),
				})
			}
		}
		gCont.Set(float64(det.Contended()))
		spDecide := f.tel.StartSpan("contend.decide", cyc(t), 0)
		f.tel.SpanAttrs(spDecide,
			telemetry.Num("epoch", float64(det.Epoch())),
			telemetry.Num("contended", float64(det.Contended())))
		var moves []contend.Move
		if t+mc.BlackoutSeconds < horizon {
			var cands []contend.Candidate
			targets := make([]contend.Target, 0, n)
			for i, s := range sims {
				alive := t < s.stop
				if verdicts[i] && alive && s.host != nil {
					cands = append(cands, contend.Candidate{
						Server: i, App: s.hostApp, Score: f.cal.pressure[s.hostApp],
					})
				}
				targets = append(targets, contend.Target{
					Server: i, Load: samples[i].Util,
					Eligible: alive && samples[i].Valid && !verdicts[i] &&
						s.host == nil && len(s.pending) == 0,
				})
			}
			moves = contend.PlanMoves(mc.Detector.Seed, cands, targets, mc.BudgetPerEpoch)
		}
		for _, mv := range moves {
			src, dst := sims[mv.From], sims[mv.To]
			app := src.detachBatch()
			if app == "" {
				continue
			}
			land := t + mc.BlackoutSeconds
			src.reg.Counter("contend", "migrations_out_total", "batch instances evicted from this server by the migration planner").Inc()
			src.reg.Emit(telemetry.Event{
				At: src.m.Now(), Kind: telemetry.EvMigration,
				Func: app, Value: float64(mv.To), Detail: "out",
			})
			dst.scheduleArrival(arrival{App: app, AtSeconds: land, migrated: true, from: mv.From})
			cMig.Inc()
			cLost.Add(blackoutQuanta)
			sp := f.tel.StartSpan("contend.migrate", cyc(t), spDecide)
			f.tel.SpanAttrs(sp,
				telemetry.Str("app", app),
				telemetry.Num("from", float64(mv.From)),
				telemetry.Num("to", float64(mv.To)))
			f.tel.EndSpan(sp, cyc(land))
			status.Moves = append(status.Moves, MoveRecord{
				Epoch: det.Epoch(), AtSeconds: t, App: app, From: mv.From, To: mv.To,
			})
		}
		f.tel.EndSpan(spDecide, cyc(t))
		status.Epoch = det.Epoch()
		status.AtSeconds = t
		status.EnterThreshold, status.ExitThreshold = det.Thresholds()
		status.Contended = det.Contended()
		status.Migrations = cMig.Value()
		status.QuantaLost = cLost.Value()
		status.Servers = states
		f.publishContend(status)
	}
	return nil
}
