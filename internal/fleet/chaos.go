package fleet

import (
	"math"
	"sort"
)

// arrival is a batch instance landing on a server mid-run: a chaos
// re-placement after its original server crashed, or a live migration
// landing after its blackout.
type arrival struct {
	App       string
	AtSeconds float64
	// migrated marks a live-migration landing (vs a crash re-placement);
	// from is then the source server index.
	migrated bool
	from     int
	// rollback marks a failed move returning to its source after every
	// landing attempt failed.
	rollback bool
}

// serverPlan is one server's precomputed fault schedule. Computing the
// whole plan up front — before any server simulates — keeps the chaos
// layer inside the determinism contract: every schedule is a pure function
// of (chaos seed, server index), and the cluster scheduler's re-placement
// decisions depend only on the placement and the plan, never on simulation
// results or worker interleaving.
type serverPlan struct {
	// crashAtSeconds is when the whole server fails (+Inf = never).
	crashAtSeconds float64
	// arrivals are re-placed batch instances landing on this server.
	arrivals []arrival
}

func (p serverPlan) crashes() bool { return !math.IsInf(p.crashAtSeconds, 1) }

// chaosPlan is the cluster-wide fault schedule plus scheduler reactions.
type chaosPlan struct {
	plans        []serverPlan
	crashes      int
	replacements int
	unplaced     int
}

// trivialPlan returns an all-healthy plan (chaos disabled).
func trivialPlan(n int) chaosPlan {
	cp := chaosPlan{plans: make([]serverPlan, n)}
	for i := range cp.plans {
		cp.plans[i].crashAtSeconds = math.Inf(1)
	}
	return cp
}

// buildChaosPlan draws server-crash schedules and simulates the cluster
// scheduler's reaction: each crashed server's batch instance is re-placed,
// RestartDelaySeconds after the crash, onto the lowest-index surviving
// batch-free server. Victims are processed in (crash time, index) order —
// the order a real scheduler would observe the failures.
func (f *Fleet) buildChaosPlan(assignment []string) chaosPlan {
	n := f.cfg.Servers
	cp := trivialPlan(n)
	if !f.cfg.Chaos.Enabled() {
		return cp
	}
	ch := *f.cfg.Chaos
	horizon := f.cfg.SettleSeconds + f.cfg.MeasureSeconds

	type victim struct {
		idx int
		at  float64
	}
	var victims []victim
	for i := 0; i < n; i++ {
		at, crashed := ch.ServerCrashAt(i, horizon)
		if !crashed {
			continue
		}
		cp.plans[i].crashAtSeconds = at
		cp.crashes++
		if assignment[i] != "" {
			victims = append(victims, victim{i, at})
		}
	}
	if f.cfg.Migration != nil {
		// Live migration invalidates the t=0 assignment this static
		// reaction is computed from (an instance may have moved off a
		// crashing server, or onto one with no replacement planned). The
		// migration coordinator re-places crash victims dynamically at the
		// decision-epoch barriers instead, against live occupancy; it
		// accumulates replacements/unplaced into this plan as it goes.
		return cp
	}
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].at != victims[b].at {
			return victims[a].at < victims[b].at
		}
		return victims[a].idx < victims[b].idx
	})

	taken := make([]bool, n)
	for _, v := range victims {
		at := v.at + ch.RestartDelaySeconds
		if at >= horizon {
			cp.unplaced++
			continue
		}
		target := -1
		for j := 0; j < n; j++ {
			if assignment[j] == "" && !taken[j] && !cp.plans[j].crashes() {
				target = j
				break
			}
		}
		if target < 0 {
			cp.unplaced++
			continue
		}
		taken[target] = true
		cp.plans[target].arrivals = append(cp.plans[target].arrivals, arrival{
			App: assignment[v.idx], AtSeconds: at,
		})
		cp.replacements++
	}
	return cp
}
