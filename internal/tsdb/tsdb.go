// Package tsdb is a bounded, deterministic time-series store for the fleet
// observability plane. At every fleet decision-epoch barrier the coordinator
// samples each registered counter, gauge, and histogram quantile into a
// per-series ring buffer stamped with (epoch, simulated seconds) — never
// wall clock. All iteration orders are name-sorted and all floats render via
// telemetry.FormatFloat, so exports are byte-identical at any worker count.
//
// The store is single-writer by construction: only the epoch coordinator
// (which runs the barrier single-threaded) samples or observes. Readers that
// race the run (the live scrape surface) must snapshot under the fleet's
// coordinator lock, same as the contend status.
package tsdb

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Point is one sample: the value of a series at a decision-epoch barrier.
type Point struct {
	Epoch int     // 1-based decision epoch
	T     float64 // simulated seconds at the barrier
	V     float64
}

// Config sizes the store.
type Config struct {
	// Capacity bounds each series' ring; the oldest points drop first.
	// Default 1024 epochs.
	Capacity int
	// Quantiles are sampled from every registered histogram as derived
	// series named "<hist>:p<q*100>". Default 0.5, 0.95, 0.99.
	Quantiles []float64
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Quantiles == nil {
		c.Quantiles = []float64{0.5, 0.95, 0.99}
	}
	return c
}

// series is a bounded ring of points, oldest dropped first.
type series struct {
	pts   []Point
	start int
	drops uint64
}

func (s *series) push(cap int, p Point) {
	if len(s.pts) < cap {
		s.pts = append(s.pts, p)
		return
	}
	s.pts[s.start] = p
	s.start = (s.start + 1) % cap
	s.drops++
}

// all returns the retained points oldest-first.
func (s *series) all() []Point {
	out := make([]Point, 0, len(s.pts))
	out = append(out, s.pts[s.start:]...)
	out = append(out, s.pts[:s.start]...)
	return out
}

// at returns the value at exactly the given epoch, searching newest-first
// (barrier sampling appends one point per epoch, so this is a short scan).
func (s *series) at(epoch int) (Point, bool) {
	pts := s.all()
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].Epoch == epoch {
			return pts[i], true
		}
		if pts[i].Epoch < epoch {
			break
		}
	}
	return Point{}, false
}

// Store holds every series. Not internally locked — see the package comment
// for the single-writer contract.
type Store struct {
	cfg       Config
	series    map[string]*series
	lastEpoch int
	lastT     float64
}

// New builds an empty store.
func New(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), series: make(map[string]*series)}
}

// Observe appends one point to a series, creating it on first use. Callers
// must observe in epoch order (the barrier does).
func (d *Store) Observe(name string, p Point) {
	if d == nil {
		return
	}
	s := d.series[name]
	if s == nil {
		s = &series{}
		d.series[name] = s
	}
	s.push(d.cfg.Capacity, p)
	if p.Epoch > d.lastEpoch {
		d.lastEpoch = p.Epoch
		d.lastT = p.T
	}
}

// quantLabel renders 0.95 as "p95", 0.999 as "p99.9".
func quantLabel(q float64) string {
	return "p" + telemetry.FormatFloat(math.Round(q*1000)/10)
}

// Sample captures every counter, gauge, and histogram quantile visible in
// regs at one epoch barrier. Values are summed (counters, gauges) or merged
// bucket-wise (histograms) across the registries in the order given — pass
// the fleet rollup first and the per-server registries in index order so
// the result is independent of worker interleaving. Histogram quantiles
// with no observations (NaN) are skipped, deterministically.
func (d *Store) Sample(epoch int, t float64, regs ...*telemetry.Registry) {
	if d == nil {
		return
	}
	counters := make(map[string]uint64)
	gauges := make(map[string]float64)
	hists := make(map[string]*telemetry.Histogram)
	for _, r := range regs {
		r.EachCounter(func(name string, v uint64) { counters[name] += v })
		r.EachGauge(func(name string, v float64) { gauges[name] += v })
		r.EachHistogram(func(name string, h *telemetry.Histogram) {
			if dst := hists[name]; dst != nil {
				dst.Merge(h)
			} else {
				hists[name] = h.Clone()
			}
		})
	}
	for _, name := range sortedKeys(counters) {
		d.Observe(name, Point{Epoch: epoch, T: t, V: float64(counters[name])})
	}
	for _, name := range sortedKeys(gauges) {
		d.Observe(name, Point{Epoch: epoch, T: t, V: gauges[name]})
	}
	for _, name := range sortedKeys(hists) {
		for _, q := range d.cfg.Quantiles {
			v := hists[name].Quantile(q)
			if math.IsNaN(v) {
				continue
			}
			d.Observe(name+":"+quantLabel(q), Point{Epoch: epoch, T: t, V: v})
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Names returns all series names, sorted.
func (d *Store) Names() []string {
	if d == nil {
		return nil
	}
	return sortedKeys(d.series)
}

// LastEpoch returns the newest epoch observed (0 before any sample).
func (d *Store) LastEpoch() int {
	if d == nil {
		return 0
	}
	return d.lastEpoch
}

// Range returns the retained points of a series with from <= Epoch <= to,
// oldest first.
func (d *Store) Range(name string, from, to int) []Point {
	if d == nil || d.series[name] == nil {
		return nil
	}
	var out []Point
	for _, p := range d.series[name].all() {
		if p.Epoch >= from && p.Epoch <= to {
			out = append(out, p)
		}
	}
	return out
}

// Last returns the newest point of a series.
func (d *Store) Last(name string) (Point, bool) {
	if d == nil || d.series[name] == nil {
		return Point{}, false
	}
	pts := d.series[name].all()
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Delta returns V(epoch) − V(epoch−window). A window start before the
// series' first retained sample uses an implicit zero origin — exact for
// cumulative counters sampled from the run's start (they begin at zero),
// approximate only if the ring has already dropped points. Returns false
// when the series has no point at the end epoch.
func (d *Store) Delta(name string, epoch, window int) (float64, bool) {
	if d == nil || d.series[name] == nil || window <= 0 {
		return 0, false
	}
	end, ok := d.series[name].at(epoch)
	if !ok {
		return 0, false
	}
	if start, ok := d.series[name].at(epoch - window); ok {
		return end.V - start.V, true
	}
	return end.V, true
}

// Rate returns Delta over the window divided by the simulated seconds it
// spans. The implicit-zero-origin case divides by the full time since t=0,
// which is the true average rate for a counter born at the run's start.
func (d *Store) Rate(name string, epoch, window int) (float64, bool) {
	if d == nil || d.series[name] == nil || window <= 0 {
		return 0, false
	}
	end, ok := d.series[name].at(epoch)
	if !ok {
		return 0, false
	}
	startV, startT := 0.0, 0.0
	if start, ok := d.series[name].at(epoch - window); ok {
		startV, startT = start.V, start.T
	}
	if end.T <= startT {
		return 0, false
	}
	return (end.V - startV) / (end.T - startT), true
}

// Downsample folds a series into epoch-aligned buckets of factor epochs
// (bucket k covers epochs k*factor+1 .. (k+1)*factor) and returns one point
// per bucket: the bucket's last epoch/time and the mean of its values.
// Alignment to absolute epoch numbers keeps the output independent of which
// prefix of the series the ring retained.
func (d *Store) Downsample(name string, factor int) []Point {
	if d == nil || d.series[name] == nil || factor <= 0 {
		return nil
	}
	var out []Point
	var bucket int
	var sum float64
	var n int
	var last Point
	flush := func() {
		if n > 0 {
			out = append(out, Point{Epoch: last.Epoch, T: last.T, V: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range d.series[name].all() {
		b := (p.Epoch - 1) / factor
		if n > 0 && b != bucket {
			flush()
		}
		bucket = b
		sum += p.V
		n++
		last = p
	}
	flush()
	return out
}

// writePoints renders one series' points as a JSON array with fixed field
// order.
func writePoints(b *strings.Builder, pts []Point) {
	b.WriteString("[")
	for i, p := range pts {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(b, `{"e":%d,"t":%s,"v":%s}`, p.Epoch,
			telemetry.FormatFloat(p.T), telemetry.FormatFloat(p.V))
	}
	b.WriteString("]")
}

// WriteJSON exports every series, names sorted, hand-built for byte
// determinism.
func (d *Store) WriteJSON(w io.Writer) error {
	return d.writeJSON(w, 0)
}

// WriteWindowJSON exports only each series' trailing lastN epochs (relative
// to the store's newest epoch) — the flight recorder's trailing window.
func (d *Store) WriteWindowJSON(w io.Writer, lastN int) error {
	if lastN <= 0 {
		return d.writeJSON(w, 0)
	}
	return d.writeJSON(w, d.LastEpoch()-lastN)
}

func (d *Store) writeJSON(w io.Writer, afterEpoch int) error {
	if d == nil {
		_, err := io.WriteString(w, "{\n  \"last_epoch\": 0,\n  \"last_t_seconds\": 0,\n  \"series\": {\n  }\n}\n")
		return err
	}
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, `  "last_epoch": %d,`+"\n", d.lastEpoch)
	fmt.Fprintf(&b, `  "last_t_seconds": %s,`+"\n", telemetry.FormatFloat(d.lastT))
	b.WriteString(`  "series": {`)
	first := true
	for _, name := range d.Names() {
		pts := d.series[name].all()
		if afterEpoch > 0 {
			kept := pts[:0:0]
			for _, p := range pts {
				if p.Epoch > afterEpoch {
					kept = append(kept, p)
				}
			}
			pts = kept
		}
		if len(pts) == 0 {
			continue
		}
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, "\n    %q: ", name)
		writePoints(&b, pts)
	}
	b.WriteString("\n  }\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON renders WriteJSON to a string.
func (d *Store) JSON() string {
	var b strings.Builder
	d.WriteJSON(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}
