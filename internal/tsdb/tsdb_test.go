package tsdb

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRingDropsOldest(t *testing.T) {
	d := New(Config{Capacity: 3})
	for e := 1; e <= 5; e++ {
		d.Observe("x", Point{Epoch: e, T: float64(e), V: float64(e * 10)})
	}
	pts := d.Range("x", 0, 99)
	if len(pts) != 3 || pts[0].Epoch != 3 || pts[2].Epoch != 5 {
		t.Fatalf("retained = %+v, want epochs 3..5", pts)
	}
	if last, ok := d.Last("x"); !ok || last.V != 50 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	if d.LastEpoch() != 5 {
		t.Errorf("LastEpoch = %d", d.LastEpoch())
	}
}

func TestSampleSumsAcrossRegistriesInOrder(t *testing.T) {
	mk := func(c uint64, g float64) *telemetry.Registry {
		r := telemetry.New(telemetry.Config{})
		r.Counter("fleet", "moves_total", "").Add(c)
		r.Gauge("fleet", "load", "").Set(g)
		h := r.Histogram("fleet", "qos", "", []float64{0.5, 0.9, 1})
		h.Observe(0.7)
		return r
	}
	d := New(Config{Quantiles: []float64{0.5}})
	d.Sample(1, 0.5, mk(3, 0.25), mk(4, 0.5))
	if v, ok := d.Delta("protean_fleet_moves_total", 1, 1); !ok || v != 7 {
		t.Errorf("counter sum = %v, %v (want 7)", v, ok)
	}
	if p, ok := d.Last("protean_fleet_load"); !ok || p.V != 0.75 {
		t.Errorf("gauge sum = %+v", p)
	}
	if _, ok := d.Last("protean_fleet_qos:p50"); !ok {
		t.Error("histogram quantile series missing")
	}
	names := d.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	// Empty histograms sample no quantile points.
	r := telemetry.New(telemetry.Config{})
	r.Histogram("fleet", "empty", "", []float64{1})
	d.Sample(2, 1.0, r)
	if _, ok := d.Last("protean_fleet_empty:p50"); ok {
		t.Error("empty histogram produced a quantile point")
	}
}

func TestDeltaAndRateZeroOrigin(t *testing.T) {
	d := New(Config{})
	for e := 1; e <= 4; e++ {
		d.Observe("c", Point{Epoch: e, T: 0.5 * float64(e), V: float64(e * 100)})
	}
	// In-window delta: V(4)-V(2).
	if v, ok := d.Delta("c", 4, 2); !ok || v != 200 {
		t.Errorf("Delta(4,2) = %v, %v, want 200", v, ok)
	}
	// Window reaching before the first point: implicit zero origin.
	if v, ok := d.Delta("c", 2, 10); !ok || v != 200 {
		t.Errorf("Delta(2,10) = %v, %v, want 200 (zero origin)", v, ok)
	}
	// No point at the end epoch.
	if _, ok := d.Delta("c", 9, 1); ok {
		t.Error("Delta at missing epoch should fail")
	}
	// Rate: (400-200)/(2.0-1.0) = 200/s.
	if v, ok := d.Rate("c", 4, 2); !ok || v != 200 {
		t.Errorf("Rate(4,2) = %v, %v, want 200", v, ok)
	}
	// Zero-origin rate divides by time since t=0: 200/1.0.
	if v, ok := d.Rate("c", 2, 10); !ok || v != 200 {
		t.Errorf("Rate(2,10) = %v, %v, want 200", v, ok)
	}
}

func TestDownsampleEpochAligned(t *testing.T) {
	d := New(Config{})
	for e := 1; e <= 7; e++ {
		d.Observe("x", Point{Epoch: e, T: float64(e), V: float64(e)})
	}
	pts := d.Downsample("x", 3)
	// Buckets: 1-3 (mean 2), 4-6 (mean 5), 7 (mean 7).
	if len(pts) != 3 || pts[0].V != 2 || pts[1].V != 5 || pts[2].V != 7 {
		t.Fatalf("downsample = %+v", pts)
	}
	if pts[0].Epoch != 3 || pts[2].Epoch != 7 {
		t.Errorf("bucket stamps = %d, %d", pts[0].Epoch, pts[2].Epoch)
	}
	// Alignment is absolute: dropping the first epochs must not shift
	// bucket boundaries.
	d2 := New(Config{Capacity: 5})
	for e := 1; e <= 7; e++ {
		d2.Observe("x", Point{Epoch: e, T: float64(e), V: float64(e)})
	}
	pts2 := d2.Downsample("x", 3) // retained 3..7 → buckets {3},{4,5,6},{7}
	if len(pts2) != 3 || pts2[0].V != 3 || pts2[1].V != 5 || pts2[2].V != 7 {
		t.Fatalf("aligned downsample = %+v", pts2)
	}
}

func TestWriteJSONDeterministicAndWindowed(t *testing.T) {
	build := func() *Store {
		d := New(Config{})
		r := telemetry.New(telemetry.Config{})
		r.Counter("a", "x_total", "").Add(1)
		r.Gauge("b", "g", "").Set(2.5)
		for e := 1; e <= 4; e++ {
			d.Sample(e, 0.5*float64(e), r)
		}
		return d
	}
	a, b := build().JSON(), build().JSON()
	if a != b {
		t.Fatal("identical stores exported different bytes")
	}
	if !strings.Contains(a, `"protean_a_x_total": [{"e":1,`) {
		t.Errorf("unexpected export shape:\n%s", a)
	}
	var w strings.Builder
	if err := build().WriteWindowJSON(&w, 2); err != nil {
		t.Fatal(err)
	}
	win := w.String()
	if strings.Contains(win, `{"e":1,`) || strings.Contains(win, `{"e":2,`) {
		t.Errorf("window kept points outside trailing 2 epochs:\n%s", win)
	}
	if !strings.Contains(win, `{"e":3,`) || !strings.Contains(win, `{"e":4,`) {
		t.Errorf("window dropped in-range points:\n%s", win)
	}
	var nilStore *Store
	var nb strings.Builder
	if err := nilStore.WriteJSON(&nb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nb.String(), `"last_epoch": 0`) {
		t.Errorf("nil store export:\n%s", nb.String())
	}
	nilStore.Observe("x", Point{})
	nilStore.Sample(1, 0.5, nil)
	if nilStore.Names() != nil || nilStore.LastEpoch() != 0 {
		t.Error("nil store not inert")
	}
}

func TestQuantLabel(t *testing.T) {
	for q, want := range map[float64]string{0.5: "p50", 0.95: "p95", 0.99: "p99", 0.999: "p99.9", 1: "p100"} {
		if got := quantLabel(q); got != want {
			t.Errorf("quantLabel(%v) = %q, want %q", q, got, want)
		}
	}
}
