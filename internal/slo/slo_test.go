package slo

import (
	"strings"
	"testing"

	"repro/internal/tsdb"
)

// feed drives cumulative good/total counters into a fresh store from
// per-epoch error ratios, 100 units of traffic per epoch.
func feed(errs []float64) *tsdb.Store {
	db := tsdb.New(tsdb.Config{})
	var good, total float64
	for i, e := range errs {
		total += 100
		good += 100 * (1 - e)
		ep := i + 1
		db.Observe("good", tsdb.Point{Epoch: ep, T: 0.5 * float64(ep), V: good})
		db.Observe("total", tsdb.Point{Epoch: ep, T: 0.5 * float64(ep), V: total})
	}
	return db
}

func run(db *tsdb.Store, spec Spec, epochs int) (*Engine, []Transition) {
	e := NewEngine(db, []Spec{spec})
	var all []Transition
	for ep := 1; ep <= epochs; ep++ {
		all = append(all, e.Evaluate(ep, 0.5*float64(ep))...)
	}
	return e, all
}

func TestBurnRateLifecycle(t *testing.T) {
	// Objective 0.9 → budget 0.1. Errors: quiet, then a sustained 50%
	// error episode (burn 5), then recovery.
	errs := []float64{0, 0, 0, 0.5, 0.5, 0.5, 0.5, 0, 0, 0, 0, 0}
	spec := Spec{Name: "qos", Good: "good", Total: "total", Objective: 0.9,
		Rules:         []BurnRule{{LongEpochs: 4, ShortEpochs: 2, Burn: 2, Severity: "page"}},
		PendingEpochs: 1, ResolveEpochs: 2}
	e, trs := run(feed(errs), spec, len(errs))
	var edges []string
	for _, tr := range trs {
		edges = append(edges, tr.To)
	}
	want := []string{"pending", "firing", "resolved"}
	if strings.Join(edges, ",") != strings.Join(want, ",") {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	// Long window (4 epochs) needs 2 error epochs for ΔG/ΔT = (200+50+50)/400
	// → ratio 0.25 → burn 2.5 ≥ 2; short window (2) is already at burn 5.
	if trs[0].Epoch != 5 {
		t.Errorf("pending at epoch %d, want 5", trs[0].Epoch)
	}
	if trs[1].To != "firing" || trs[1].Epoch != 5 || trs[1].Severity != "page" {
		t.Errorf("firing edge = %+v", trs[1])
	}
	if e.Fired() != 1 || e.Resolved() != 1 || e.AnyFiring() {
		t.Errorf("fired=%d resolved=%d firing=%v", e.Fired(), e.Resolved(), e.AnyFiring())
	}
}

// TestShortWindowResets: after the incident ends, the short window clears
// immediately even while the long window still reads hot — the alert
// resolves on short-window hysteresis instead of waiting out the long tail.
func TestShortWindowResets(t *testing.T) {
	errs := []float64{0, 0, 0.8, 0.8, 0.8, 0.8, 0, 0, 0, 0}
	spec := Spec{Name: "qos", Good: "good", Total: "total", Objective: 0.9,
		Rules:         []BurnRule{{LongEpochs: 6, ShortEpochs: 1, Burn: 3}},
		PendingEpochs: 1, ResolveEpochs: 2}
	_, trs := run(feed(errs), spec, len(errs))
	var resolved *Transition
	for i := range trs {
		if trs[i].To == "resolved" {
			resolved = &trs[i]
		}
	}
	if resolved == nil {
		t.Fatal("alert never resolved")
	}
	// Last error epoch is 6; short window clears at 7, hysteresis of 2
	// clear epochs resolves at 8 — even though the 6-epoch long window
	// still spans the episode until epoch 12.
	if resolved.Epoch != 8 {
		t.Errorf("resolved at epoch %d, want 8", resolved.Epoch)
	}
}

// TestBlipRejected: a single-epoch error blip must not fire a multi-window
// rule (long window absorbs it) but WOULD fire a naive 1-epoch static
// threshold with no pending damping — the asymmetry figslo measures.
func TestBlipRejected(t *testing.T) {
	errs := []float64{0, 0.6, 0, 0, 0, 0, 0, 0}
	burn := Spec{Name: "burn", Good: "good", Total: "total", Objective: 0.9,
		Rules:         []BurnRule{{LongEpochs: 4, ShortEpochs: 1, Burn: 2}},
		PendingEpochs: 1}
	_, trs := run(feed(errs), burn, len(errs))
	for _, tr := range trs {
		if tr.To == "firing" {
			t.Fatalf("multi-window rule fired on a blip: %+v", tr)
		}
	}
	static := Spec{Name: "static", Good: "good", Total: "total", Objective: 0.9,
		Rules:         []BurnRule{{LongEpochs: 1, ShortEpochs: 1, Burn: 2}},
		PendingEpochs: 1}
	_, strs := run(feed(errs), static, len(errs))
	fired := false
	for _, tr := range strs {
		fired = fired || tr.To == "firing"
	}
	if !fired {
		t.Fatal("1-epoch static rule should false-fire on the blip")
	}
}

func TestPendingHysteresisAndFlap(t *testing.T) {
	// Alternating trigger/clear epochs with PendingEpochs 3 must never fire.
	errs := []float64{0.9, 0, 0.9, 0, 0.9, 0, 0.9, 0}
	spec := Spec{Name: "s", Good: "good", Total: "total", Objective: 0.9,
		Rules:         []BurnRule{{LongEpochs: 1, ShortEpochs: 1, Burn: 2}},
		PendingEpochs: 3}
	e, trs := run(feed(errs), spec, len(errs))
	for _, tr := range trs {
		if tr.To == "firing" {
			t.Fatalf("flapping signal fired through pending hysteresis: %+v", tr)
		}
	}
	if e.Fired() != 0 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestNoTrafficNeverTriggers(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	spec := Spec{Name: "s", Good: "good", Total: "total", Objective: 0.99,
		Rules: []BurnRule{{LongEpochs: 2, Burn: 1}}}
	e := NewEngine(db, []Spec{spec})
	for ep := 1; ep <= 3; ep++ {
		if trs := e.Evaluate(ep, float64(ep)); len(trs) != 0 {
			t.Fatalf("empty store produced transitions: %+v", trs)
		}
	}
	// Traffic with zero errors against objective 1.0 is still clean...
	db.Observe("good", tsdb.Point{Epoch: 4, T: 4, V: 100})
	db.Observe("total", tsdb.Point{Epoch: 4, T: 4, V: 100})
	if trs := e.Evaluate(4, 4); len(trs) != 0 {
		t.Fatalf("clean traffic triggered: %+v", trs)
	}
}

func TestExportsDeterministic(t *testing.T) {
	mk := func() *Engine {
		errs := []float64{0, 0.5, 0.5, 0.5, 0, 0, 0}
		spec := Spec{Name: "qos", Good: "good", Total: "total", Objective: 0.9,
			Rules: []BurnRule{{LongEpochs: 2, ShortEpochs: 1, Burn: 2, Severity: "page"}}}
		e, _ := run(feed(errs), spec, len(errs))
		return e
	}
	a, b := mk(), mk()
	if a.Log().JSON() != b.Log().JSON() {
		t.Error("alert logs differ across identical runs")
	}
	if a.StatusJSON() != b.StatusJSON() {
		t.Error("status differs across identical runs")
	}
	logJSON := a.Log().JSON()
	for _, want := range []string{`"fired": 1`, `"to": "firing"`, `"severity": "page"`} {
		if !strings.Contains(logJSON, want) {
			t.Errorf("alert log missing %q:\n%s", want, logJSON)
		}
	}
	if !strings.Contains(a.StatusJSON(), `"name": "qos"`) {
		t.Errorf("status missing spec:\n%s", a.StatusJSON())
	}
	var nilEng *Engine
	if nilEng.Evaluate(1, 1) != nil || nilEng.AnyFiring() || nilEng.Fired() != 0 {
		t.Error("nil engine not inert")
	}
	if !strings.Contains(nilEng.StatusJSON(), `"specs": []`) {
		t.Error("nil engine status malformed")
	}
}

func TestRecorderBoundedDropNewest(t *testing.T) {
	rec := NewRecorder(2)
	for i := 1; i <= 4; i++ {
		rec.Capture("alert:qos", i, float64(i), []Section{{Name: "x", JSON: "{}"}})
	}
	bs := rec.Bundles()
	if len(bs) != 2 || bs[0].Seq != 1 || bs[1].Seq != 2 {
		t.Fatalf("bundles = %+v, want seqs 1,2", bs)
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
	out := bs[0].JSON()
	for _, want := range []string{`"seq": 1`, `"reason": "alert:qos"`, `"x": {}`} {
		if !strings.Contains(out, want) {
			t.Errorf("bundle missing %q:\n%s", want, out)
		}
	}
	var nilRec *Recorder
	if nilRec.Capture("r", 1, 1, nil) != nil || nilRec.Bundles() != nil || nilRec.Dropped() != 0 {
		t.Error("nil recorder not inert")
	}
	var nilB *Bundle
	if nilB.JSON() != "" {
		t.Error("nil bundle rendered")
	}
}
