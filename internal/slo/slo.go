// Package slo turns the raw telemetry plane into judgments: declarative
// service-level objectives evaluated as multi-window multi-burn-rate rules
// (the Google SRE workbook construction) over tsdb series, with a full
// alert lifecycle — inactive → pending → firing → resolved — and hysteresis
// so alerts never flap.
//
// A spec names two cumulative counter series, Good and Total. The error
// ratio over a trailing window of epochs is 1 − ΔGood/ΔTotal; the burn rate
// is that ratio divided by the error budget (1 − Objective). A rule
// triggers when BOTH its long and short windows burn faster than its
// threshold: the long window rejects transient blips, the short window
// makes the alert reset quickly once the incident ends. A naive static
// threshold is the degenerate spec with one 1-epoch window and a long
// pending period — the figslo artifact measures exactly how much detection
// latency that costs.
//
// Everything here is deterministic: evaluation happens at fleet epoch
// barriers on simulated time, specs evaluate in declaration order, and all
// exports are hand-built JSON with telemetry.FormatFloat.
package slo

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// BurnRule is one multi-window burn-rate condition.
type BurnRule struct {
	// LongEpochs and ShortEpochs are the two trailing windows, in decision
	// epochs. ShortEpochs defaults to max(1, LongEpochs/12) — the workbook's
	// 1/12 ratio.
	LongEpochs  int
	ShortEpochs int
	// Burn is the threshold burn-rate multiple (e.g. 14 on a 1h window in
	// the workbook; scaled-down fleets use smaller windows, same idea).
	Burn float64
	// Severity labels transitions this rule causes ("page", "ticket").
	Severity string
}

// Spec is one declarative SLO.
type Spec struct {
	Name string
	// Good and Total are tsdb series names of cumulative counters.
	Good  string
	Total string
	// Objective is the target good/total ratio (0,1); the error budget is
	// 1 − Objective.
	Objective float64
	Rules     []BurnRule
	// PendingEpochs is how many consecutive triggering epochs are required
	// before the alert fires (default 1: fire on the second consecutive
	// trigger — one epoch pending, then firing).
	PendingEpochs int
	// ResolveEpochs is how many consecutive clear epochs are required
	// before a firing alert resolves (default 2) — the flap hysteresis.
	ResolveEpochs int
}

func (s Spec) withDefaults() Spec {
	if s.PendingEpochs <= 0 {
		s.PendingEpochs = 1
	}
	if s.ResolveEpochs <= 0 {
		s.ResolveEpochs = 2
	}
	for i, r := range s.Rules {
		if r.ShortEpochs <= 0 {
			s.Rules[i].ShortEpochs = max(1, r.LongEpochs/12)
		}
	}
	return s
}

// State is the alert lifecycle state of one spec.
type State int

const (
	Inactive State = iota
	Pending
	Firing
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	default:
		return "inactive"
	}
}

// Transition is one alert lifecycle edge. To is "pending", "firing", or
// "resolved" (the resolved edge returns the state to inactive).
type Transition struct {
	Epoch    int
	T        float64
	Spec     string
	From, To string
	Severity string
	// Burn is the long-window burn rate of the triggering rule (last
	// observed burn for resolve edges).
	Burn float64
	// Rule is the index of the triggering rule (-1 for resolve edges).
	Rule int
}

type specState struct {
	state      State
	pendingFor int // consecutive triggering epochs
	clearFor   int // consecutive clear epochs while firing
	sinceEpoch int // epoch the current state was entered
	lastBurn   float64
	lastRule   int
	fired      int // lifetime count of pending→firing edges
}

// Engine evaluates a fixed set of specs against a tsdb store. Single-writer
// like the store: only the epoch coordinator calls Evaluate.
type Engine struct {
	db        *tsdb.Store
	specs     []Spec
	states    []specState
	log       []Transition
	lastEpoch int
	lastT     float64
	resolved  int
}

// NewEngine builds an engine; specs evaluate in the order given.
func NewEngine(db *tsdb.Store, specs []Spec) *Engine {
	e := &Engine{db: db, specs: make([]Spec, len(specs)), states: make([]specState, len(specs))}
	for i, s := range specs {
		e.specs[i] = s.withDefaults()
		e.states[i].lastRule = -1
	}
	return e
}

// burnRate returns the burn rate over a trailing window, and whether the
// window is evaluable. A window is evaluable only when fully covered: the
// series has a point at epoch−window, or the window starts exactly at the
// run's origin (epoch−window == 0, where tsdb's implicit zero origin is
// exact for cumulative counters). Until a long window has fully filled, its
// rule cannot trigger — otherwise a startup blip would see the long window
// truncated to a short one and fire through the noise guard.
func (e *Engine) burnRate(s Spec, epoch, window int) (float64, bool) {
	if epoch-window < 0 {
		return 0, false
	}
	if epoch-window > 0 && len(e.db.Range(s.Total, epoch-window, epoch-window)) == 0 {
		return 0, false
	}
	good, ok1 := e.db.Delta(s.Good, epoch, window)
	total, ok2 := e.db.Delta(s.Total, epoch, window)
	if !ok1 || !ok2 || total <= 0 {
		return 0, false
	}
	errRatio := 1 - good/total
	if errRatio < 0 {
		errRatio = 0
	}
	budget := 1 - s.Objective
	if budget <= 0 {
		budget = 1e-9 // objective 1.0: any error is an infinite burn
	}
	return errRatio / budget, true
}

// Evaluate advances every spec's state machine at one epoch barrier and
// returns the transitions that occurred, in spec order. Call once per
// epoch, in epoch order.
func (e *Engine) Evaluate(epoch int, t float64) []Transition {
	if e == nil {
		return nil
	}
	e.lastEpoch, e.lastT = epoch, t
	var out []Transition
	emit := func(i int, from, to, sev string, burn float64, rule int) {
		tr := Transition{Epoch: epoch, T: t, Spec: e.specs[i].Name,
			From: from, To: to, Severity: sev, Burn: burn, Rule: rule}
		e.log = append(e.log, tr)
		out = append(out, tr)
	}
	for i := range e.specs {
		s := e.specs[i]
		st := &e.states[i]
		trigRule, trigBurn := -1, 0.0
		maxBurn := 0.0
		for ri, r := range s.Rules {
			long, okL := e.burnRate(s, epoch, r.LongEpochs)
			short, okS := e.burnRate(s, epoch, r.ShortEpochs)
			if okL && long > maxBurn {
				maxBurn = long
			}
			if okL && okS && long >= r.Burn && short >= r.Burn && trigRule < 0 {
				trigRule, trigBurn = ri, long
			}
		}
		st.lastBurn = maxBurn
		sev := ""
		if trigRule >= 0 {
			sev = s.Rules[trigRule].Severity
			st.lastRule = trigRule
		}
		switch st.state {
		case Inactive:
			if trigRule >= 0 {
				st.state, st.sinceEpoch, st.pendingFor = Pending, epoch, 1
				emit(i, "inactive", "pending", sev, trigBurn, trigRule)
				if st.pendingFor >= s.PendingEpochs {
					st.state, st.sinceEpoch = Firing, epoch
					st.fired++
					emit(i, "pending", "firing", sev, trigBurn, trigRule)
				}
			}
		case Pending:
			if trigRule >= 0 {
				st.pendingFor++
				if st.pendingFor >= s.PendingEpochs {
					st.state, st.sinceEpoch = Firing, epoch
					st.fired++
					emit(i, "pending", "firing", sev, trigBurn, trigRule)
				}
			} else {
				st.state, st.sinceEpoch, st.pendingFor = Inactive, epoch, 0
				emit(i, "pending", "inactive", "", maxBurn, -1)
			}
		case Firing:
			if trigRule >= 0 {
				st.clearFor = 0
			} else {
				st.clearFor++
				if st.clearFor >= s.ResolveEpochs {
					st.state, st.sinceEpoch = Inactive, epoch
					st.pendingFor, st.clearFor = 0, 0
					e.resolved++
					emit(i, "firing", "resolved", "", maxBurn, -1)
				}
			}
		}
	}
	return out
}

// Firing reports whether the named spec is currently firing.
func (e *Engine) Firing(name string) bool {
	if e == nil {
		return false
	}
	for i, s := range e.specs {
		if s.Name == name {
			return e.states[i].state == Firing
		}
	}
	return false
}

// AnyFiring reports whether any spec is firing.
func (e *Engine) AnyFiring() bool {
	if e == nil {
		return false
	}
	for i := range e.states {
		if e.states[i].state == Firing {
			return true
		}
	}
	return false
}

// Fired returns the lifetime count of firing edges across all specs.
func (e *Engine) Fired() int {
	if e == nil {
		return 0
	}
	n := 0
	for i := range e.states {
		n += e.states[i].fired
	}
	return n
}

// Resolved returns the lifetime count of resolved edges.
func (e *Engine) Resolved() int {
	if e == nil {
		return 0
	}
	return e.resolved
}

// Log returns the full transition log in evaluation order.
func (e *Engine) Log() AlertLog {
	if e == nil {
		return AlertLog{}
	}
	return AlertLog{Transitions: append([]Transition(nil), e.log...),
		Fired: e.Fired(), Resolved: e.resolved}
}

// AlertLog is the exportable alert history.
type AlertLog struct {
	Transitions []Transition
	Fired       int
	Resolved    int
}

// WriteJSON exports the log deterministically: fixed field order, entries
// in evaluation order, floats via telemetry.FormatFloat.
func (l AlertLog) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, `  "fired": %d,`+"\n", l.Fired)
	fmt.Fprintf(&b, `  "resolved": %d,`+"\n", l.Resolved)
	b.WriteString(`  "transitions": [`)
	for i, tr := range l.Transitions {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"epoch\": %d, \"t_seconds\": %s, \"spec\": %q, \"from\": %q, \"to\": %q, \"severity\": %q, \"burn\": %s, \"rule\": %d}",
			tr.Epoch, telemetry.FormatFloat(tr.T), tr.Spec, tr.From, tr.To,
			tr.Severity, telemetry.FormatFloat(tr.Burn), tr.Rule)
	}
	b.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON renders WriteJSON to a string.
func (l AlertLog) JSON() string {
	var b strings.Builder
	l.WriteJSON(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}

// WriteStatusJSON exports the engine's current per-spec states — the /slo
// endpoint body. Specs render in declaration order.
func (e *Engine) WriteStatusJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n")
	if e == nil {
		b.WriteString("  \"epoch\": 0,\n  \"specs\": []\n}\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	fmt.Fprintf(&b, `  "epoch": %d,`+"\n", e.lastEpoch)
	fmt.Fprintf(&b, `  "t_seconds": %s,`+"\n", telemetry.FormatFloat(e.lastT))
	b.WriteString(`  "specs": [`)
	for i, s := range e.specs {
		st := e.states[i]
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    {\"name\": %q, \"objective\": %s, \"state\": %q, \"since_epoch\": %d, \"burn\": %s, \"fired\": %d}",
			s.Name, telemetry.FormatFloat(s.Objective), st.state.String(),
			st.sinceEpoch, telemetry.FormatFloat(st.lastBurn), st.fired)
	}
	b.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// StatusJSON renders WriteStatusJSON to a string.
func (e *Engine) StatusJSON() string {
	var b strings.Builder
	e.WriteStatusJSON(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}
