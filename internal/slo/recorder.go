package slo

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
)

// Section is one named snapshot inside a postmortem bundle. JSON holds the
// section body pre-rendered by its owning subsystem (tsdb window, trace
// tail, contend status, audit report...) so the bundle embeds it verbatim —
// determinism is inherited from the section writers.
type Section struct {
	Name string
	JSON string
}

// Bundle is one frozen postmortem: everything the fleet knew at the epoch
// barrier where an alert fired or the auditor flagged a violation.
type Bundle struct {
	Seq      int // 1-based capture order
	Reason   string
	Epoch    int
	T        float64
	Sections []Section
}

// WriteJSON renders the bundle as one deterministic JSON document. Section
// bodies are embedded raw, in capture order.
func (b *Bundle) WriteJSON(w io.Writer) error {
	if b == nil {
		return nil
	}
	var sb strings.Builder
	sb.WriteString("{\n")
	fmt.Fprintf(&sb, `  "seq": %d,`+"\n", b.Seq)
	fmt.Fprintf(&sb, `  "reason": %q,`+"\n", b.Reason)
	fmt.Fprintf(&sb, `  "epoch": %d,`+"\n", b.Epoch)
	fmt.Fprintf(&sb, `  "t_seconds": %s,`+"\n", telemetry.FormatFloat(b.T))
	sb.WriteString(`  "sections": {`)
	for i, s := range b.Sections {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "\n  %q: ", s.Name)
		sb.WriteString(strings.TrimRight(s.JSON, "\n"))
	}
	sb.WriteString("\n  }\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// JSON renders WriteJSON to a string.
func (b *Bundle) JSON() string {
	var sb strings.Builder
	b.WriteJSON(&sb) //nolint:errcheck // strings.Builder never errors
	return sb.String()
}

// DefaultRecorderCap bounds the recorder when the configured cap is 0.
const DefaultRecorderCap = 16

// Recorder is the flight recorder: a bounded store of postmortem bundles.
// Like the span store it drops the NEWEST captures when full — the first
// incidents of a run are the ones worth keeping, and drop-newest is
// trivially deterministic. Single-writer (the epoch coordinator).
type Recorder struct {
	cap     int
	bundles []*Bundle
	seq     int
	dropped int
}

// NewRecorder builds a recorder holding at most cap bundles (0 → default).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	return &Recorder{cap: cap}
}

// Capture freezes one bundle. Returns nil when the recorder is full (the
// drop is counted) or nil itself.
func (r *Recorder) Capture(reason string, epoch int, t float64, sections []Section) *Bundle {
	if r == nil {
		return nil
	}
	r.seq++
	if len(r.bundles) >= r.cap {
		r.dropped++
		return nil
	}
	b := &Bundle{Seq: r.seq, Reason: reason, Epoch: epoch, T: t, Sections: sections}
	r.bundles = append(r.bundles, b)
	return b
}

// Bundles returns the captured bundles in capture order.
func (r *Recorder) Bundles() []*Bundle {
	if r == nil {
		return nil
	}
	return append([]*Bundle(nil), r.bundles...)
}

// Dropped reports how many captures the bound discarded.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}
