// Package supervise implements runtime supervision: the recovery half of
// the paper's safety argument.
//
// Protean code's deployment story for warehouse-scale computers leans on a
// guarantee (Section III-B): the runtime is an *optional* process. If it
// crashes, the host binary keeps executing — at worst through previously
// dispatched variants, and after a single atomic EVT write per slot, through
// its original static code. Nothing about the host's correctness depends on
// the runtime staying alive.
//
// A Supervisor turns that guarantee into a self-healing loop. It owns a
// runtime/policy session (e.g. core.Runtime + pc3d.Controller), ticks them
// as one machine agent, and watches for the runtime dying (injected via a
// faults schedule, or observed via core.Runtime.Crashed). On a crash it:
//
//  1. shuts the policy down (safe mid-quantum: agentloop defers the drain
//     to the quantum boundary),
//  2. executes the safety guarantee — every EVT slot is pointed back at the
//     original static entry, without the runtime's help, because the EVT
//     and the static code both live in the host — and
//  3. re-attaches a fresh runtime/policy session after a capped
//     exponential backoff, so a crash-looping runtime cannot consume the
//     host in restart churn.
//
// The host process never stops across any of this.
package supervise

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Session is one runtime/policy incarnation under supervision.
type Session struct {
	// Runtime is the protean runtime; required.
	Runtime *core.Runtime
	// Policy is the decision agent driving the runtime (e.g.
	// *pc3d.Controller); optional.
	Policy machine.Agent
	// Close shuts the policy down; optional. It must be safe to call from
	// inside a machine tick (agentloop.Loop.Close is).
	Close func()
}

// Builder constructs a fresh session: it attaches a new runtime to the host
// and builds the policy around it. Called once at supervisor creation and
// again at every restart.
type Builder func() (*Session, error)

// Config tunes the supervisor (consumed by New).
type Config struct {
	// CrashFn, when non-nil, is the injected crash schedule: consulted once
	// per quantum with the current cycle, a true return kills the live
	// runtime (e.g. faults.Chaos.RuntimeCrashFn).
	CrashFn func(nowCycles uint64) bool
	// BackoffSeconds is the delay before the first re-attach after a crash
	// (default 0.05 simulated seconds).
	BackoffSeconds float64
	// BackoffMaxSeconds caps the exponential growth (default 1.0).
	BackoffMaxSeconds float64
	// BackoffResetSeconds: when a session survives this long, the backoff
	// resets to BackoffSeconds (default 2.0). Shorter-lived sessions keep
	// doubling it, so a crash loop converges to one restart per
	// BackoffMaxSeconds.
	BackoffResetSeconds float64
	// Trace, when non-nil, receives supervision events.
	Trace func(format string, args ...any)
	// Telemetry receives supervision counters (reaps, restarts, reverted
	// slots), the backoff/healthy gauges, and reap/re-attach trace events
	// under the "supervise" subsystem. Nil disables instrumentation.
	Telemetry *telemetry.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.BackoffSeconds == 0 {
		cfg.BackoffSeconds = 0.05
	}
	if cfg.BackoffMaxSeconds == 0 {
		cfg.BackoffMaxSeconds = 1.0
	}
	if cfg.BackoffResetSeconds == 0 {
		cfg.BackoffResetSeconds = 2.0
	}
	return cfg
}

// Stats expose supervision activity.
type Stats struct {
	// Crashes counts runtime deaths observed (injected or external).
	Crashes int
	// Restarts counts successful re-attaches.
	Restarts int
	// RestartFailures counts Builder errors (each extends the backoff).
	RestartFailures int
	// RevertedSlots counts EVT slots pointed back at static code during
	// recovery.
	RevertedSlots int
}

// Supervisor watches one host's runtime/policy session. It implements
// machine.Agent; register it with the machine INSTEAD of the runtime and
// policy — the supervisor ticks both, which is what lets it excise them
// atomically on a crash.
type Supervisor struct {
	m     *machine.Machine
	host  *machine.Process
	build Builder
	cfg   Config

	sess         *Session
	sessionStart uint64
	retryAt      uint64
	backoff      uint64 // cycles
	stats        Stats

	// spRecovery spans one reap→…→re-attach episode; spBackoff spans each
	// backoff wait inside it (one per failed builder attempt).
	spRecovery telemetry.SpanID
	spBackoff  telemetry.SpanID

	tel       *telemetry.Registry
	cReaps    *telemetry.Counter
	cRestarts *telemetry.Counter
	cFailures *telemetry.Counter
	cReverted *telemetry.Counter
	gBackoff  *telemetry.Gauge
	gHealthy  *telemetry.Gauge
}

// New builds a supervisor and its first session. A Builder error here is
// fatal (there is nothing to supervise yet).
func New(m *machine.Machine, host *machine.Process, build Builder, cfg Config) (*Supervisor, error) {
	sess, err := build()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		m:     m,
		host:  host,
		build: build,
		cfg:   cfg,
		sess:  sess,
	}
	s.backoff = m.Cycles(cfg.BackoffSeconds)
	s.tel = cfg.Telemetry
	s.cReaps = s.tel.Counter("supervise", "reaps_total", "dead runtimes reaped (EVT reverted)")
	s.cRestarts = s.tel.Counter("supervise", "restarts_total", "successful runtime re-attaches")
	s.cFailures = s.tel.Counter("supervise", "restart_failures_total", "session builder errors during recovery")
	s.cReverted = s.tel.Counter("supervise", "reverted_slots_total", "EVT slots pointed back at static code during recovery")
	s.gBackoff = s.tel.Gauge("supervise", "backoff_seconds", "next re-attach backoff delay")
	s.gHealthy = s.tel.Gauge("supervise", "healthy", "1 while a non-crashed session is live")
	s.gBackoff.Set(cfg.BackoffSeconds)
	s.gHealthy.Set(1)
	return s, nil
}

// Runtime returns the live session's runtime, or nil while recovering.
func (s *Supervisor) Runtime() *core.Runtime {
	if s.sess == nil {
		return nil
	}
	return s.sess.Runtime
}

// Healthy reports whether a non-crashed session is live.
func (s *Supervisor) Healthy() bool {
	return s.sess != nil && !s.sess.Runtime.Crashed()
}

// Stats returns a snapshot of supervision activity.
func (s *Supervisor) Stats() Stats { return s.stats }

// Tick implements machine.Agent.
func (s *Supervisor) Tick(m *machine.Machine) {
	if s.sess != nil {
		rt := s.sess.Runtime
		if s.cfg.CrashFn != nil && !rt.Crashed() && s.cfg.CrashFn(m.Now()) {
			rt.Crash()
		}
		if !rt.Crashed() {
			rt.Tick(m)
			if s.sess.Policy != nil {
				s.sess.Policy.Tick(m)
			}
			return
		}
		s.reap(m)
		return
	}
	if m.Now() >= s.retryAt {
		s.restart(m)
	}
}

// Close shuts the current session's policy down (end of run, not a crash).
func (s *Supervisor) Close() {
	if s.sess != nil && s.sess.Close != nil {
		s.sess.Close()
	}
}

// reap executes the safety guarantee after a crash: stop the policy, point
// every EVT slot back at static code, and schedule a re-attach.
func (s *Supervisor) reap(m *machine.Machine) {
	s.stats.Crashes++
	s.cReaps.Inc()
	if s.sess.Close != nil {
		s.sess.Close()
	}
	reverted := RevertToStatic(s.host)
	s.stats.RevertedSlots += reverted
	s.cReverted.Add(uint64(reverted))
	// A session that lived long enough proves the crash isn't a loop;
	// start the next backoff sequence fresh.
	if m.Now()-s.sessionStart >= m.Cycles(s.cfg.BackoffResetSeconds) {
		s.backoff = m.Cycles(s.cfg.BackoffSeconds)
	}
	s.sess = nil
	s.retryAt = m.Now() + s.backoff
	backoffSec := float64(s.backoff) / m.Config().FreqHz
	s.gHealthy.Set(0)
	s.spRecovery = s.tel.StartSpan("supervise.recovery", m.Now(), 0)
	s.tel.SpanAttrs(s.spRecovery, telemetry.Num("reverted_slots", float64(reverted)))
	s.spBackoff = s.tel.StartSpan("supervise.backoff", m.Now(), s.spRecovery)
	s.tel.SpanAttrs(s.spBackoff, telemetry.Num("backoff_s", backoffSec))
	s.tel.Emit(telemetry.Event{
		At: m.Now(), Kind: telemetry.EvReap,
		Value: float64(reverted), Detail: telemetry.FormatFloat(backoffSec),
	})
	s.trace("runtime crashed at %.3fs: %d slots reverted, re-attach in %.3fs",
		m.NowSeconds(), reverted, backoffSec)
	s.bumpBackoff(m)
}

func (s *Supervisor) restart(m *machine.Machine) {
	s.tel.EndSpan(s.spBackoff, m.Now())
	sess, err := s.build()
	if err != nil {
		s.stats.RestartFailures++
		s.cFailures.Inc()
		s.retryAt = m.Now() + s.backoff
		s.trace("re-attach failed at %.3fs: %v; retry in %.3fs",
			m.NowSeconds(), err, float64(s.backoff)/m.Config().FreqHz)
		sp := s.tel.StartSpan("supervise.restart", m.Now(), s.spRecovery)
		s.tel.SpanAttrs(sp, telemetry.Str("error", err.Error()))
		s.tel.EndSpan(sp, m.Now())
		s.spBackoff = s.tel.StartSpan("supervise.backoff", m.Now(), s.spRecovery)
		s.tel.SpanAttrs(s.spBackoff, telemetry.Num("backoff_s", float64(s.backoff)/m.Config().FreqHz))
		s.bumpBackoff(m)
		return
	}
	s.sess = sess
	s.sessionStart = m.Now()
	s.stats.Restarts++
	s.cRestarts.Inc()
	s.gHealthy.Set(1)
	s.tel.Emit(telemetry.Event{
		At: m.Now(), Kind: telemetry.EvReattach, Value: float64(s.stats.Restarts),
	})
	sp := s.tel.StartSpan("supervise.restart", m.Now(), s.spRecovery)
	s.tel.SpanAttrs(sp, telemetry.Num("restart", float64(s.stats.Restarts)))
	s.tel.EndSpan(sp, m.Now())
	s.tel.EndSpan(s.spRecovery, m.Now())
	s.spRecovery, s.spBackoff = 0, 0
	s.trace("runtime re-attached at %.3fs (restart %d)", m.NowSeconds(), s.stats.Restarts)
}

func (s *Supervisor) bumpBackoff(m *machine.Machine) {
	s.backoff *= 2
	if max := m.Cycles(s.cfg.BackoffMaxSeconds); s.backoff > max {
		s.backoff = max
	}
	s.gBackoff.Set(float64(s.backoff) / m.Config().FreqHz)
}

func (s *Supervisor) trace(format string, args ...any) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(format, args...)
	}
}

// RevertToStatic points every EVT slot of host at its original static
// entry, returning how many slots actually changed. This is the paper's
// safety guarantee made concrete: it needs no cooperation from the (dead)
// runtime, because both the EVT and the original code live in the host's
// address space.
func RevertToStatic(host *machine.Process) int {
	evt := host.EVT()
	prog := host.Binary().Program
	n := 0
	for slot := 0; slot < evt.Len(); slot++ {
		fi, ok := prog.FuncByName(evt.Callee(slot))
		if !ok {
			continue
		}
		if evt.Target(slot) != fi.Entry {
			evt.SetTarget(slot, fi.Entry)
			n++
		}
	}
	return n
}

// AllStatic reports whether every EVT slot points at original static code.
func AllStatic(host *machine.Process) bool {
	evt := host.EVT()
	prog := host.Binary().Program
	for slot := 0; slot < evt.Len(); slot++ {
		fi, ok := prog.FuncByName(evt.Callee(slot))
		if ok && evt.Target(slot) != fi.Entry {
			return false
		}
	}
	return true
}
