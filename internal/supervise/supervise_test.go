package supervise

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/agentloop"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/telemetry"
)

func hostModule(t testing.TB) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("host")
	mb.Global("buf", 4<<20)
	hot := mb.Function("hot")
	hot.Loop(1000, func() {
		hot.Load(ir.Access{Global: "buf", Pattern: ir.Seq, Stride: 64})
		hot.Work(2)
	})
	hot.Return()
	main := mb.Function("main")
	main.Loop(1<<40, func() { main.Call("hot") })
	main.Return()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func hostProc(t testing.TB) (*machine.Machine, *machine.Process) {
	t.Helper()
	bin, err := pcc.Compile(hostModule(t), pcc.Options{Protean: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 2})
	host, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return m, host
}

// dispatchPolicy compiles an all-hints variant of "hot", dispatches it, and
// idles. Each incarnation bumps *dispatches when its dispatch lands.
func dispatchPolicy(t *testing.T, rt *core.Runtime, dispatches *int) *Session {
	t.Helper()
	loop := agentloop.New(func(l *agentloop.Loop) {
		mask := map[int]bool{}
		for i := 0; i < rt.IR().NumLoads; i++ {
			mask[i] = true
		}
		var v *core.Variant
		done := false
		if err := rt.RequestVariant("hot", core.NTTransform(mask), nil, func(vv *core.Variant, err error) {
			v, done = vv, true
		}); err != nil {
			return // crashed before we got started
		}
		for !done {
			if l.Wait() == nil {
				return
			}
		}
		if v == nil {
			return
		}
		if err := rt.Dispatch(v); err != nil {
			return
		}
		*dispatches++
		for l.Wait() != nil {
		}
	})
	return &Session{
		Runtime: rt,
		Policy:  machine.AgentFunc(func(m *machine.Machine) { loop.Tick(m) }),
		Close:   loop.Close,
	}
}

func TestCrashRevertsAndRestarts(t *testing.T) {
	m, host := hostProc(t)
	dispatches := 0
	build := func() (*Session, error) {
		rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 1})
		if err != nil {
			return nil, err
		}
		return dispatchPolicy(t, rt, &dispatches), nil
	}
	crashAt := m.Cycles(0.05)
	sup, err := New(m, host, build, Config{
		CrashFn: func(now uint64) bool { return now == crashAt },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddAgent(sup)

	// Let the first session dispatch its variant.
	m.RunSeconds(0.03)
	if dispatches != 1 {
		t.Fatalf("dispatches = %d before crash, want 1", dispatches)
	}
	if AllStatic(host) {
		t.Fatal("EVT still static after dispatch")
	}

	// Cross the crash point. The supervisor must revert the EVT the same
	// quantum it observes the crash, and the host must keep running.
	before := host.Counters()
	m.RunSeconds(0.03) // now at 60 ms, past the 50 ms crash
	if sup.Stats().Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", sup.Stats().Crashes)
	}
	if !AllStatic(host) {
		t.Fatal("EVT not reverted to static code after crash")
	}
	if sup.Stats().RevertedSlots == 0 {
		t.Error("RevertedSlots = 0, want > 0")
	}
	if host.Counters().Sub(before).Insts == 0 {
		t.Error("host stalled across runtime crash")
	}
	if sup.Healthy() {
		t.Error("Healthy() true while recovering")
	}

	// The re-attach lands within the (first) backoff of 50 ms, and the new
	// session resumes optimizing: a second dispatch appears.
	m.RunSeconds(0.1)
	if sup.Stats().Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", sup.Stats().Restarts)
	}
	if !sup.Healthy() {
		t.Fatal("supervisor not healthy after restart")
	}
	m.RunSeconds(0.05)
	if dispatches != 2 {
		t.Errorf("dispatches = %d after restart, want 2", dispatches)
	}
	sup.Close()
}

func TestCrashLoopBacksOff(t *testing.T) {
	m, host := hostProc(t)
	build := func() (*Session, error) {
		rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 1})
		if err != nil {
			return nil, err
		}
		return &Session{Runtime: rt}, nil
	}
	// Every session dies on its first tick: a pathological crash loop.
	sup, err := New(m, host, build, Config{
		CrashFn: func(uint64) bool { return true },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddAgent(sup)
	before := host.Counters()
	m.RunSeconds(10)
	st := sup.Stats()
	// Backoff doubles 50ms -> 1s cap: ~13 restarts in 10s, not thousands.
	if st.Restarts < 5 || st.Restarts > 25 {
		t.Errorf("Restarts = %d over 10s crash loop, want backoff-bounded (5..25)", st.Restarts)
	}
	if st.Crashes < st.Restarts {
		t.Errorf("Crashes = %d < Restarts = %d", st.Crashes, st.Restarts)
	}
	if !AllStatic(host) {
		t.Error("EVT not static during crash loop")
	}
	if host.Counters().Sub(before).Insts == 0 {
		t.Error("host starved by crash loop")
	}
}

// TestTelemetryEventOrderAndCappedBackoff drives a crash loop with a live
// registry and checks the telemetry plane's view of it: reap and re-attach
// events strictly alternate in simulated-time order, the backoff gauge
// grows to the configured cap and no further, and the counters agree with
// the supervisor's own stats.
func TestTelemetryEventOrderAndCappedBackoff(t *testing.T) {
	reg := telemetry.New(telemetry.Config{})
	m, host := hostProc(t)
	build := func() (*Session, error) {
		rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 1, Telemetry: reg})
		if err != nil {
			return nil, err
		}
		return &Session{Runtime: rt}, nil
	}
	const backoffMax = 0.4
	sup, err := New(m, host, build, Config{
		CrashFn:           func(uint64) bool { return true },
		BackoffMaxSeconds: backoffMax,
		Telemetry:         reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddAgent(sup)
	m.RunSeconds(5)
	st := sup.Stats()
	if st.Crashes < 3 {
		t.Fatalf("Crashes = %d over 5s crash loop, want several", st.Crashes)
	}

	if got := reg.CounterValue("supervise", "reaps_total"); got != uint64(st.Crashes) {
		t.Errorf("reaps_total = %d, stats.Crashes = %d", got, st.Crashes)
	}
	if got := reg.CounterValue("supervise", "restarts_total"); got != uint64(st.Restarts) {
		t.Errorf("restarts_total = %d, stats.Restarts = %d", got, st.Restarts)
	}
	if got := reg.GaugeValue("supervise", "backoff_seconds"); got != backoffMax {
		t.Errorf("backoff_seconds gauge = %v after a sustained crash loop, want capped at %v", got, backoffMax)
	}

	// Events alternate reap, reattach, reap, ... in non-decreasing
	// simulated time, and every reap's recorded backoff never exceeds the
	// cap.
	var seen []telemetry.Event
	for _, ev := range reg.Events() {
		if ev.Kind == telemetry.EvReap || ev.Kind == telemetry.EvReattach {
			seen = append(seen, ev)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("only %d supervision events traced", len(seen))
	}
	var prevAt uint64
	for i, ev := range seen {
		want := telemetry.EvReap
		if i%2 == 1 {
			want = telemetry.EvReattach
		}
		if ev.Kind != want {
			t.Fatalf("event %d = %s, want %s (reap/re-attach must alternate)", i, ev.Kind, want)
		}
		if ev.At < prevAt {
			t.Fatalf("event %d at cycle %d precedes event %d at %d", i, ev.At, i-1, prevAt)
		}
		prevAt = ev.At
		if ev.Kind == telemetry.EvReap {
			backoff, err := strconv.ParseFloat(ev.Detail, 64)
			if err != nil {
				t.Fatalf("reap detail %q: %v", ev.Detail, err)
			}
			if backoff > backoffMax {
				t.Errorf("reap %d scheduled backoff %v beyond cap %v", i, backoff, backoffMax)
			}
		}
	}
}

func TestBuilderFailureExtendsBackoff(t *testing.T) {
	m, host := hostProc(t)
	calls := 0
	build := func() (*Session, error) {
		calls++
		if calls == 2 {
			return nil, errors.New("attach refused")
		}
		rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 1})
		if err != nil {
			return nil, err
		}
		return &Session{Runtime: rt}, nil
	}
	crashAt := m.Cycles(0.01)
	sup, err := New(m, host, build, Config{
		CrashFn: func(now uint64) bool { return now == crashAt },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddAgent(sup)
	m.RunSeconds(1)
	st := sup.Stats()
	if st.RestartFailures != 1 {
		t.Errorf("RestartFailures = %d, want 1", st.RestartFailures)
	}
	if st.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1 (second attempt succeeds)", st.Restarts)
	}
	if !sup.Healthy() {
		t.Error("supervisor not healthy after eventual restart")
	}
}
