package supervise

import (
	"errors"
	"testing"

	"repro/internal/agentloop"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
)

func hostModule(t testing.TB) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("host")
	mb.Global("buf", 4<<20)
	hot := mb.Function("hot")
	hot.Loop(1000, func() {
		hot.Load(ir.Access{Global: "buf", Pattern: ir.Seq, Stride: 64})
		hot.Work(2)
	})
	hot.Return()
	main := mb.Function("main")
	main.Loop(1<<40, func() { main.Call("hot") })
	main.Return()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func hostProc(t testing.TB) (*machine.Machine, *machine.Process) {
	t.Helper()
	bin, err := pcc.Compile(hostModule(t), pcc.Options{Protean: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 2})
	host, err := m.Attach(0, bin, machine.ProcessOptions{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return m, host
}

// dispatchPolicy compiles an all-hints variant of "hot", dispatches it, and
// idles. Each incarnation bumps *dispatches when its dispatch lands.
func dispatchPolicy(t *testing.T, rt *core.Runtime, dispatches *int) *Session {
	t.Helper()
	loop := agentloop.New(func(l *agentloop.Loop) {
		mask := map[int]bool{}
		for i := 0; i < rt.IR().NumLoads; i++ {
			mask[i] = true
		}
		var v *core.Variant
		done := false
		if err := rt.RequestVariant("hot", core.NTTransform(mask), nil, func(vv *core.Variant, err error) {
			v, done = vv, true
		}); err != nil {
			return // crashed before we got started
		}
		for !done {
			if l.Wait() == nil {
				return
			}
		}
		if v == nil {
			return
		}
		if err := rt.Dispatch(v); err != nil {
			return
		}
		*dispatches++
		for l.Wait() != nil {
		}
	})
	return &Session{
		Runtime: rt,
		Policy:  machine.AgentFunc(func(m *machine.Machine) { loop.Tick(m) }),
		Close:   loop.Close,
	}
}

func TestCrashRevertsAndRestarts(t *testing.T) {
	m, host := hostProc(t)
	dispatches := 0
	build := func() (*Session, error) {
		rt, err := core.Attach(m, host, core.Options{RuntimeCore: 1})
		if err != nil {
			return nil, err
		}
		return dispatchPolicy(t, rt, &dispatches), nil
	}
	crashAt := m.Cycles(0.05)
	sup, err := New(m, host, build, Options{
		CrashFn: func(now uint64) bool { return now == crashAt },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddAgent(sup)

	// Let the first session dispatch its variant.
	m.RunSeconds(0.03)
	if dispatches != 1 {
		t.Fatalf("dispatches = %d before crash, want 1", dispatches)
	}
	if AllStatic(host) {
		t.Fatal("EVT still static after dispatch")
	}

	// Cross the crash point. The supervisor must revert the EVT the same
	// quantum it observes the crash, and the host must keep running.
	before := host.Counters()
	m.RunSeconds(0.03) // now at 60 ms, past the 50 ms crash
	if sup.Stats().Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", sup.Stats().Crashes)
	}
	if !AllStatic(host) {
		t.Fatal("EVT not reverted to static code after crash")
	}
	if sup.Stats().RevertedSlots == 0 {
		t.Error("RevertedSlots = 0, want > 0")
	}
	if host.Counters().Sub(before).Insts == 0 {
		t.Error("host stalled across runtime crash")
	}
	if sup.Healthy() {
		t.Error("Healthy() true while recovering")
	}

	// The re-attach lands within the (first) backoff of 50 ms, and the new
	// session resumes optimizing: a second dispatch appears.
	m.RunSeconds(0.1)
	if sup.Stats().Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", sup.Stats().Restarts)
	}
	if !sup.Healthy() {
		t.Fatal("supervisor not healthy after restart")
	}
	m.RunSeconds(0.05)
	if dispatches != 2 {
		t.Errorf("dispatches = %d after restart, want 2", dispatches)
	}
	sup.Close()
}

func TestCrashLoopBacksOff(t *testing.T) {
	m, host := hostProc(t)
	build := func() (*Session, error) {
		rt, err := core.Attach(m, host, core.Options{RuntimeCore: 1})
		if err != nil {
			return nil, err
		}
		return &Session{Runtime: rt}, nil
	}
	// Every session dies on its first tick: a pathological crash loop.
	sup, err := New(m, host, build, Options{
		CrashFn: func(uint64) bool { return true },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddAgent(sup)
	before := host.Counters()
	m.RunSeconds(10)
	st := sup.Stats()
	// Backoff doubles 50ms -> 1s cap: ~13 restarts in 10s, not thousands.
	if st.Restarts < 5 || st.Restarts > 25 {
		t.Errorf("Restarts = %d over 10s crash loop, want backoff-bounded (5..25)", st.Restarts)
	}
	if st.Crashes < st.Restarts {
		t.Errorf("Crashes = %d < Restarts = %d", st.Crashes, st.Restarts)
	}
	if !AllStatic(host) {
		t.Error("EVT not static during crash loop")
	}
	if host.Counters().Sub(before).Insts == 0 {
		t.Error("host starved by crash loop")
	}
}

func TestBuilderFailureExtendsBackoff(t *testing.T) {
	m, host := hostProc(t)
	calls := 0
	build := func() (*Session, error) {
		calls++
		if calls == 2 {
			return nil, errors.New("attach refused")
		}
		rt, err := core.Attach(m, host, core.Options{RuntimeCore: 1})
		if err != nil {
			return nil, err
		}
		return &Session{Runtime: rt}, nil
	}
	crashAt := m.Cycles(0.01)
	sup, err := New(m, host, build, Options{
		CrashFn: func(now uint64) bool { return now == crashAt },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.AddAgent(sup)
	m.RunSeconds(1)
	st := sup.Stats()
	if st.RestartFailures != 1 {
		t.Errorf("RestartFailures = %d, want 1", st.RestartFailures)
	}
	if st.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1 (second attempt succeeds)", st.Restarts)
	}
	if !sup.Healthy() {
		t.Error("supervisor not healthy after eventual restart")
	}
}
