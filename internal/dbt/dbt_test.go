package dbt

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/workload"
)

// slowdown runs app natively and under the DBT overlay and returns
// native_insts / dbt_insts over the same simulated time.
func slowdown(t *testing.T, app string, cfg *machine.DBTConfig) float64 {
	t.Helper()
	run := func(d *machine.DBTConfig) uint64 {
		spec := workload.MustByName(app)
		bin, err := pcc.Compile(spec.Module(), pcc.Options{})
		if err != nil {
			t.Fatalf("compile %s: %v", app, err)
		}
		m := machine.New(machine.Config{Cores: 1})
		p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true, DBT: d})
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		m.RunSeconds(1.5)
		return p.Counters().Insts
	}
	return float64(run(nil)) / float64(run(cfg))
}

func TestDynamoRIOOverheadShape(t *testing.T) {
	dr := DynamoRIO()
	// Call/branch-dense programs suffer; memory-bound streamers hide it.
	branchy := slowdown(t, "gobmk", dr)
	streamy := slowdown(t, "lbm", dr)
	if branchy < 1.10 {
		t.Errorf("gobmk slowdown %.3fx; translation should hurt call-dense code", branchy)
	}
	if streamy > branchy {
		t.Errorf("lbm slowdown %.3fx exceeds gobmk's %.3fx; should be hidden by stalls", streamy, branchy)
	}
	if streamy < 1.0 {
		t.Errorf("lbm slowdown %.3fx < 1: overlay sped things up", streamy)
	}
}

func TestDynamoRIOMeanOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps the 18-app roster")
	}
	dr := DynamoRIO()
	sum := 0.0
	apps := workload.SPECFig4Apps()
	for _, app := range apps {
		sum += slowdown(t, app, dr)
	}
	mean := sum / float64(len(apps))
	// Figure 4 reports ~18% mean overhead; accept a generous band.
	if mean < 1.08 || mean > 1.35 {
		t.Errorf("mean DynamoRIO slowdown %.3fx, want ~1.18x", mean)
	}
}

func TestInterpreterWorseThanDynamoRIO(t *testing.T) {
	interp := slowdown(t, "gobmk", Interpreter())
	dr := slowdown(t, "gobmk", DynamoRIO())
	if interp <= dr {
		t.Errorf("interpreter %.3fx should exceed DynamoRIO %.3fx", interp, dr)
	}
}
