// Package dbt provides the dynamic-binary-translation baseline used by
// Figure 4: running an unmodified program under a DynamoRIO-class
// translator while making no code modifications.
//
// Translation-based virtualization keeps every instruction inside a code
// cache: control transfers exit to a dispatcher (cheap when the target is
// linked, expensive for indirect branches, which need a runtime lookup),
// and first-touch targets pay translation. Protean code avoids all of this
// by letting the original binary run natively and virtualizing only
// selected edges — the contrast measured in Figure 4 (protean <1% mean
// overhead vs ~18% for DynamoRIO).
package dbt

import "repro/internal/machine"

// DynamoRIO returns the cost model calibrated to the published behaviour
// of a mature trace-building translator on SPEC-class programs: per-app
// overheads from a few percent (memory-bound streamers whose stalls hide
// dispatch) to tens of percent (call- and branch-dense programs), with a
// mean near 18%.
func DynamoRIO() *machine.DBTConfig {
	return &machine.DBTConfig{
		// Linked direct transfers inside the code cache are nearly free.
		DirectTransferCycles: 1,
		// Indirect transfers (returns, indirect calls) hash into the
		// target lookup table.
		IndirectTransferCycles: 35,
		// First visit to a target pays trace building.
		TranslateCyclesPerSite: 400,
	}
}

// Interpreter returns a cost model for a pure interpreter (no code cache):
// every transfer is expensive. Included for the overhead spectrum in
// ablation benches; not a paper baseline.
func Interpreter() *machine.DBTConfig {
	return &machine.DBTConfig{
		DirectTransferCycles:   15,
		IndirectTransferCycles: 60,
		TranslateCyclesPerSite: 0,
	}
}
