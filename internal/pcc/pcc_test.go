package pcc

import (
	"testing"

	"repro/internal/ir"
)

func buildModule(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("app")
	mb.Global("g", 1<<16)

	multi := mb.Function("multi")
	multi.Loop(50, func() {
		multi.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64})
	})
	multi.Return()

	single := mb.Function("single")
	single.Load(ir.Access{Global: "g", Pattern: ir.Rand})
	single.Return()

	uncalled := mb.Function("uncalled")
	uncalled.Loop(10, func() { uncalled.Work(1) })
	uncalled.Return()

	main := mb.Function("main")
	main.Loop(10, func() {
		main.Call("multi")
		main.Call("single")
	})
	main.Return()
	mb.SetEntry("main")

	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestCompilePlain(t *testing.T) {
	b, err := Compile(buildModule(t), Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if b.Protean || b.HasIR() {
		t.Error("plain compile produced protean metadata")
	}
	s := StatsOf(b)
	if s.VirtualizedCalls != 0 || s.EVTSlots != 0 {
		t.Errorf("plain compile virtualized edges: %+v", s)
	}
	if s.DirectCalls != 2 {
		t.Errorf("DirectCalls = %d, want 2", s.DirectCalls)
	}
}

func TestCompileProteanDefaultPolicy(t *testing.T) {
	b, err := Compile(buildModule(t), Options{Protean: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !b.Protean || !b.HasIR() {
		t.Fatal("protean compile lacks metadata")
	}
	s := StatsOf(b)
	// Only "multi" qualifies: multi-block AND called. "single" is one
	// block; "uncalled" is multi-block but never called; "main" is the
	// entry and never called.
	if s.EVTSlots != 1 {
		t.Errorf("EVTSlots = %d, want 1", s.EVTSlots)
	}
	if b.Program.EVTSlotFor("multi") < 0 {
		t.Error("multi not virtualized")
	}
	if s.VirtualizedCalls != 1 || s.DirectCalls != 1 {
		t.Errorf("calls virtualized=%d direct=%d, want 1/1", s.VirtualizedCalls, s.DirectCalls)
	}
	if s.IRBlobBytes == 0 {
		t.Error("IR blob empty")
	}
}

func TestCompileAllCallsPolicy(t *testing.T) {
	b, err := Compile(buildModule(t), Options{Protean: true, Policy: AllCalls})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s := StatsOf(b)
	if s.VirtualizedCalls != 2 || s.DirectCalls != 0 {
		t.Errorf("AllCalls: virtualized=%d direct=%d, want 2/0", s.VirtualizedCalls, s.DirectCalls)
	}
	if b.Program.EVTSlotFor("single") < 0 {
		t.Error("AllCalls should virtualize single-block callees too")
	}
}

func TestCompileNoEdgesPolicy(t *testing.T) {
	b, err := Compile(buildModule(t), Options{Protean: true, Policy: NoEdges})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s := StatsOf(b)
	if s.VirtualizedCalls != 0 {
		t.Errorf("NoEdges virtualized %d calls", s.VirtualizedCalls)
	}
	if !b.HasIR() {
		t.Error("NoEdges should still embed IR")
	}
}

func TestEmbeddedIRRoundTrips(t *testing.T) {
	m := buildModule(t)
	b, err := Compile(m, Options{Protean: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	got, err := b.DecodeIR()
	if err != nil {
		t.Fatalf("DecodeIR: %v", err)
	}
	if got.NumLoads != m.NumLoads {
		t.Errorf("embedded IR NumLoads = %d, want %d", got.NumLoads, m.NumLoads)
	}
	if got.Func("multi") == nil || got.Func("main") == nil {
		t.Error("embedded IR missing functions")
	}
}

func TestProteanAndPlainSameCodeShape(t *testing.T) {
	// The protean binary differs from the plain one only in call lowering:
	// same instruction count, same loads, same branches. This is the static
	// basis of the "<1% overhead" property.
	m := buildModule(t)
	plain, err := Compile(m, Options{})
	if err != nil {
		t.Fatalf("Compile plain: %v", err)
	}
	prot, err := Compile(m, Options{Protean: true})
	if err != nil {
		t.Fatalf("Compile protean: %v", err)
	}
	if len(plain.Program.Code) != len(prot.Program.Code) {
		t.Errorf("code sizes differ: plain %d vs protean %d",
			len(plain.Program.Code), len(prot.Program.Code))
	}
	if plain.Program.NumLoads != prot.Program.NumLoads {
		t.Error("load counts differ")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []EdgePolicy{MultiBlockCallees, AllCalls, NoEdges} {
		if p.String() == "" {
			t.Errorf("empty String for policy %d", int(p))
		}
	}
}

func TestCompileOptimize(t *testing.T) {
	mb := ir.NewModuleBuilder("keep")
	mb.Global("g", 64)
	fb := mb.Function("main")
	fb.Work(5)
	fb.Load(ir.Access{Global: "g", Pattern: ir.Rand})
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()
	nInstrs := len(m.Func("main").Blocks[0].Instrs)

	binO, err := Compile(m, Options{Optimize: true})
	if err != nil {
		t.Fatalf("compile -O: %v", err)
	}
	bin, err := Compile(m, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(m.Func("main").Blocks[0].Instrs) != nInstrs {
		t.Error("Compile(Optimize) mutated the caller's module")
	}
	if len(binO.Program.Code) >= len(bin.Program.Code) {
		t.Errorf("optimized code %d words, unoptimized %d: expected shrink",
			len(binO.Program.Code), len(bin.Program.Code))
	}
}
