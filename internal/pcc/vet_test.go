package pcc_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/ir/irtext"
	"repro/internal/ir/opt"
	"repro/internal/pcc"
	"repro/internal/workload"
)

const ubdSrc = `
module ubd
entry main
global buf 4096
func main {
  entry:
    r1 = const 1
    br r1 gt 0, %then, %join
  then:
    r2 = const 7
    jump %join
  join:
    r3 = add r2, 1
    store r3, buf[seq stride=64]
    ret
}
`

func TestVetGateBlocksErrors(t *testing.T) {
	m, err := irtext.ParseString(ubdSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pcc.Compile(m, pcc.Options{Protean: true})
	if err == nil {
		t.Fatal("Compile accepted a use-before-def module")
	}
	if !strings.Contains(err.Error(), "use-before-def") {
		t.Fatalf("error does not name the rule: %v", err)
	}

	// NoVet bypasses the gate: the module is structurally valid and lowers.
	if _, err := pcc.Compile(m, pcc.Options{Protean: true, NoVet: true}); err != nil {
		t.Fatalf("NoVet compile failed: %v", err)
	}
}

func TestVetDiagsCallback(t *testing.T) {
	m, err := irtext.ParseString(`
module warns
entry main
global buf 4096
func main {
  entry:
    r1 = load buf[seq stride=64]
    r2 = add r1, 5
    store r1, buf[seq stride=64]
    ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	var got ir.Diags
	if _, err := pcc.Compile(m, pcc.Options{Protean: true, VetDiags: func(ds ir.Diags) { got = ds }}); err != nil {
		t.Fatalf("warnings must not block the compile: %v", err)
	}
	if got.Warnings() != 1 || got.Errors() != 0 {
		t.Fatalf("VetDiags = %v, want exactly the dead-store warning", got)
	}
}

// oldDeadCount reimplements the pre-liveness DCE criterion: a pure
// definition (Const/BinOp) whose destination register is read nowhere in
// the function. The liveness-based pass must remove at least these.
func oldDeadCount(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		read := make(map[ir.Reg]bool)
		note := func(o ir.Operand) {
			if o.IsReg {
				read[o.Reg] = true
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *ir.BinOp:
					note(in.X)
					note(in.Y)
				case *ir.Store:
					note(in.Val)
				}
			}
			if br, ok := b.Term.(*ir.Branch); ok {
				read[br.X] = true
				note(br.Y)
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *ir.Const:
					if !read[in.Dst] {
						n++
					}
				case *ir.BinOp:
					if !read[in.Dst] {
						n++
					}
				}
			}
		}
	}
	return n
}

// TestLivenessDCECoversOldPass: on every catalog app the liveness-based
// dead-code elimination removes at least as many instructions as the old
// "never read anywhere" scan would have.
func TestLivenessDCECoversOldPass(t *testing.T) {
	for _, spec := range workload.Catalog() {
		m := spec.Module()
		old := oldDeadCount(m)
		clone := m.Clone()
		stats := opt.Optimize(clone)
		if stats.RemovedInstrs < old {
			t.Errorf("%s: liveness DCE removed %d instrs, old pass would remove %d",
				spec.Name, stats.RemovedInstrs, old)
		}
		if err := clone.Finalize(); err != nil {
			t.Errorf("%s: optimized module invalid: %v", spec.Name, err)
		}
	}
}
