// Package pcc implements the protean code compiler: the static half of the
// co-designed system in Section III-A.
//
// pcc readies a program for runtime compilation by making two classes of
// changes: it virtualizes a subset of the edges in the control flow and
// call graphs (lowering those calls through the Edge Virtualization Table),
// and it embeds program metadata — the EVT image and the serialized,
// compressed IR — into the binary. Programs compiled without the protean
// pass are plain binaries that run identically but cannot be transformed
// online.
package pcc

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/ir/dataflow"
	"repro/internal/ir/opt"
	"repro/internal/isa"
	"repro/internal/progbin"
)

// EdgePolicy selects which edges the virtualization pass converts from
// direct to indirect operations.
type EdgePolicy int

// Edge virtualization policies.
const (
	// MultiBlockCallees virtualizes calls whose callee has more than one
	// basic block — the paper's production policy (Section III-A-1):
	// frequent enough that new variants are picked up promptly, selective
	// enough that indirect-call overhead stays negligible.
	MultiBlockCallees EdgePolicy = iota
	// AllCalls virtualizes every call edge (ablation: more dispatch
	// points, more overhead).
	AllCalls
	// NoEdges virtualizes nothing; the binary still embeds IR but the
	// runtime has no hooks (ablation/testing).
	NoEdges
)

func (p EdgePolicy) String() string {
	switch p {
	case MultiBlockCallees:
		return "multi-block-callees"
	case AllCalls:
		return "all-calls"
	case NoEdges:
		return "no-edges"
	}
	return fmt.Sprintf("edgepolicy(%d)", int(p))
}

// Options configures a compile.
type Options struct {
	// Protean enables the protean pass (edge virtualization + metadata
	// embedding). False produces a plain binary.
	Protean bool
	// Policy selects the virtualization policy; the zero value is the
	// paper's MultiBlockCallees.
	Policy EdgePolicy
	// PageSize forwards to the code generator (0 = default).
	PageSize uint64
	// Optimize runs the static optimization pipeline (constant folding,
	// jump threading, unreachable-code and dead-code elimination) before
	// lowering and before the IR is embedded, so runtime-compiled variants
	// start from the optimized program exactly as the paper's -O2 binaries
	// do. The module is cloned first; the caller's copy is untouched.
	Optimize bool
	// NoVet skips the semantic vet gate. By default Compile refuses
	// modules with error-severity lint findings (e.g. use-before-def) —
	// shipping them would burn online search iterations on a live host,
	// the exact overhead the system exists to avoid. Tests exercising
	// deliberately malformed inputs set NoVet.
	NoVet bool
	// VetDiags, when non-nil, receives every lint finding (all
	// severities) from the vet gate, so callers can surface warnings.
	VetDiags func(ir.Diags)
}

// Compile lowers the module to a loadable binary. The module must have been
// finalized (Module.Finalize).
//
// Unless opts.NoVet is set, the module first passes through the semantic
// vet gate: error-severity findings (use-before-def) abort the compile;
// warnings (dead stores, redundant prefetches) and infos are forwarded to
// opts.VetDiags when set.
func Compile(m *ir.Module, opts Options) (*progbin.Binary, error) {
	if !opts.NoVet {
		diags := dataflow.Lint(m)
		if opts.VetDiags != nil {
			opts.VetDiags(diags)
		}
		if n := diags.Errors(); n > 0 {
			first, _ := diags.FirstError()
			return nil, fmt.Errorf("pcc: vet: %d error finding(s), first: %s", n, first)
		}
	}
	if opts.Optimize {
		m = m.Clone()
		opt.Optimize(m)
		if err := m.Finalize(); err != nil {
			return nil, fmt.Errorf("pcc: optimized module invalid: %w", err)
		}
	}
	cfg := isa.Config{PageSize: opts.PageSize}
	if opts.Protean {
		cfg.Virtualize = virtualizer(opts.Policy)
	}
	prog, err := isa.Lower(m, cfg)
	if err != nil {
		return nil, fmt.Errorf("pcc: %w", err)
	}
	if err := isa.VerifyProgram(prog); err != nil {
		return nil, fmt.Errorf("pcc: generated code failed verification: %w", err)
	}
	bin := &progbin.Binary{Program: prog, Protean: opts.Protean}
	if opts.Protean {
		blob, err := ir.EncodeBytes(m)
		if err != nil {
			return nil, fmt.Errorf("pcc: embed IR: %w", err)
		}
		bin.IRBlob = blob
	}
	return bin, nil
}

func virtualizer(p EdgePolicy) func(*ir.Module, *ir.Function) bool {
	switch p {
	case MultiBlockCallees:
		return func(m *ir.Module, f *ir.Function) bool {
			return len(f.Blocks) > 1 && isCalled(m, f.Name)
		}
	case AllCalls:
		return func(m *ir.Module, f *ir.Function) bool {
			return isCalled(m, f.Name)
		}
	case NoEdges:
		return nil
	}
	return nil
}

// isCalled reports whether any call site targets name; functions that are
// never called need no EVT slot.
func isCalled(m *ir.Module, name string) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if c, ok := in.(*ir.Call); ok && c.Callee == name {
					return true
				}
			}
		}
	}
	return false
}

// Stats summarizes what the protean pass did to a binary; Figure 4's
// "edge virtualization overhead" experiments report against these counts.
type Stats struct {
	VirtualizedCalls int
	DirectCalls      int
	EVTSlots         int
	IRBlobBytes      int
	CodeWords        int
}

// StatsOf inspects a compiled binary.
func StatsOf(b *progbin.Binary) Stats {
	v, d := b.Program.CountVirtualizedCalls()
	return Stats{
		VirtualizedCalls: v,
		DirectCalls:      d,
		EVTSlots:         len(b.Program.EVT),
		IRBlobBytes:      len(b.IRBlob),
		CodeWords:        len(b.Program.Code),
	}
}
