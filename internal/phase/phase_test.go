package phase

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDistanceIdentical(t *testing.T) {
	s := Signature{Hot: map[string]float64{"f": 0.7, "g": 0.3}, Rate: 1.5}
	if d := Distance(s, s); d != 0 {
		t.Errorf("Distance(s,s) = %v, want 0", d)
	}
}

func TestDistanceDisjointHot(t *testing.T) {
	a := Signature{Hot: map[string]float64{"f": 1}, Rate: 1}
	b := Signature{Hot: map[string]float64{"g": 1}, Rate: 1}
	if d := Distance(a, b); math.Abs(d-1) > 1e-9 {
		t.Errorf("disjoint hot distance = %v, want 1", d)
	}
}

func TestDistanceRateOnly(t *testing.T) {
	a := Signature{Hot: map[string]float64{"f": 1}, Rate: 1}
	b := Signature{Hot: map[string]float64{"f": 1}, Rate: 2}
	if d := Distance(a, b); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("rate distance = %v, want 0.5", d)
	}
	// Rate term is capped at 1.
	c := Signature{Hot: map[string]float64{"f": 1}, Rate: 1000}
	if d := Distance(a, c); d > 1+1e-9 {
		t.Errorf("capped rate distance = %v, want <= 1", d)
	}
}

// Property: Distance is symmetric and non-negative.
func TestDistanceProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Signature {
			s := Signature{Hot: map[string]float64{}, Rate: rng.Float64() * 10}
			for i := 0; i < rng.Intn(5); i++ {
				s.Hot[string(rune('a'+rng.Intn(6)))] = rng.Float64()
			}
			return s
		}
		a, b := mk(), mk()
		d1, d2 := Distance(a, b), Distance(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorFirstObservationIsPhase(t *testing.T) {
	d := NewDetector(0)
	if !d.Observe(Signature{Hot: map[string]float64{"f": 1}, Rate: 1}) {
		t.Error("first observation should start a phase")
	}
	if d.Changes() != 1 {
		t.Errorf("Changes = %d, want 1", d.Changes())
	}
}

func TestDetectorStablePhase(t *testing.T) {
	d := NewDetector(0)
	base := Signature{Hot: map[string]float64{"f": 0.9, "g": 0.1}, Rate: 1.0}
	d.Observe(base)
	for i := 0; i < 50; i++ {
		// Small sampling noise must not trip the detector.
		noisy := Signature{
			Hot:  map[string]float64{"f": 0.9 - 0.02*float64(i%3), "g": 0.1 + 0.02*float64(i%3)},
			Rate: 1.0 + 0.05*float64(i%2),
		}
		if d.Observe(noisy) {
			t.Fatalf("noise tripped the detector at step %d", i)
		}
	}
}

func TestDetectorCatchesHotShift(t *testing.T) {
	d := NewDetector(0)
	d.Observe(Signature{Hot: map[string]float64{"f": 1}, Rate: 1})
	if !d.Observe(Signature{Hot: map[string]float64{"g": 1}, Rate: 1}) {
		t.Error("complete hot-region shift not detected")
	}
}

func TestDetectorCatchesLoadSwing(t *testing.T) {
	d := NewDetector(0)
	d.Observe(Signature{Hot: map[string]float64{"serve": 1}, Rate: 0.2})
	if !d.Observe(Signature{Hot: map[string]float64{"serve": 1}, Rate: 0.9}) {
		t.Error("large rate swing not detected")
	}
}

func TestDetectorDriftTracksSlowTrend(t *testing.T) {
	d := NewDetector(0)
	rate := 1.0
	d.Observe(Signature{Hot: map[string]float64{"f": 1}, Rate: rate})
	// Rate creeps up 1% per observation; drift should absorb it.
	for i := 0; i < 100; i++ {
		rate *= 1.01
		if d.Observe(Signature{Hot: map[string]float64{"f": 1}, Rate: rate}) {
			t.Fatalf("slow trend tripped detector at step %d (rate %.2f)", i, rate)
		}
	}
}

func TestDetectorReset(t *testing.T) {
	d := NewDetector(0)
	d.Observe(Signature{Hot: map[string]float64{"f": 1}, Rate: 1})
	d.Reset()
	if _, ok := d.Current(); ok {
		t.Error("Current after Reset")
	}
	if !d.Observe(Signature{Hot: map[string]float64{"f": 1}, Rate: 1}) {
		t.Error("observation after Reset should start a phase")
	}
}

func TestCoPhase(t *testing.T) {
	c := NewCoPhase()
	host := Signature{Hot: map[string]float64{"f": 1}, Rate: 1}
	ext := Signature{Hot: map[string]float64{"serve": 1}, Rate: 0.5}
	if !c.Observe("host", host, 0) {
		t.Error("first host observation should change co-phase")
	}
	if !c.Observe("ext", ext, 0) {
		t.Error("first external observation should change co-phase")
	}
	if c.Observe("host", host, 0) || c.Observe("ext", ext, 0) {
		t.Error("stable signatures changed co-phase")
	}
	// External load swing changes the co-phase even with host stable.
	ext2 := ext
	ext2.Rate = 2.0
	if !c.Observe("ext", ext2, 0) {
		t.Error("external swing did not change co-phase")
	}
	if c.Changes() != 3 {
		t.Errorf("Changes = %d, want 3", c.Changes())
	}
	c.Forget("ext")
	if !c.Observe("ext", ext2, 0) {
		t.Error("observation after Forget should change co-phase")
	}
}

func TestSignatureString(t *testing.T) {
	s := Signature{Hot: map[string]float64{"a": 0.5, "b": 0.3, "c": 0.15, "d": 0.05}, Rate: 1.25}
	str := s.String()
	if !strings.Contains(str, "a:50%") || !strings.Contains(str, "rate=1.25") {
		t.Errorf("String = %q", str)
	}
	if !strings.Contains(str, "…") {
		t.Errorf("String should elide beyond top 3: %q", str)
	}
}
