// Package phase identifies execution phases and phase changes from the
// monitoring signals (Section III-B-3): hot-code vectors from PC samples
// plus progress rates from hardware performance monitors.
//
// A phase is summarized by a Signature. A Detector compares successive
// signatures and reports a phase change when they diverge past a threshold.
// Co-phases — "the combination of the currently running phases among a
// program and its co-runners" — are tracked by keeping one Detector per
// program and combining change events.
package phase

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Signature summarizes one observation window of one program.
type Signature struct {
	// Hot is the normalized PC-sample distribution over functions.
	Hot map[string]float64
	// Rate is a progress metric (IPC or BPC, or normalized load for an
	// external service).
	Rate float64
}

// Distance returns a dissimilarity in [0, ~2]: half the L1 distance of the
// hot vectors (in [0,1]) plus the relative rate difference (capped at 1).
func Distance(a, b Signature) float64 {
	var l1 float64
	seen := make(map[string]bool, len(a.Hot)+len(b.Hot))
	for f := range a.Hot {
		seen[f] = true
	}
	for f := range b.Hot {
		seen[f] = true
	}
	for f := range seen {
		l1 += math.Abs(a.Hot[f] - b.Hot[f])
	}
	hotDist := l1 / 2

	var rateDist float64
	hi := math.Max(math.Abs(a.Rate), math.Abs(b.Rate))
	if hi > 0 {
		rateDist = math.Abs(a.Rate-b.Rate) / hi
		if rateDist > 1 {
			rateDist = 1
		}
	}
	return hotDist + rateDist
}

// String renders the signature's top functions for logs.
func (s Signature) String() string {
	type kv struct {
		k string
		v float64
	}
	var fns []kv
	for k, v := range s.Hot {
		fns = append(fns, kv{k, v})
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].v != fns[j].v {
			return fns[i].v > fns[j].v
		}
		return fns[i].k < fns[j].k
	})
	var b strings.Builder
	fmt.Fprintf(&b, "rate=%.3g hot=[", s.Rate)
	for i, f := range fns {
		if i >= 3 {
			b.WriteString("…")
			break
		}
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s:%.0f%%", f.k, f.v*100)
	}
	b.WriteString("]")
	return b.String()
}

// Detector reports phase changes over a stream of signatures.
type Detector struct {
	// Threshold is the Distance above which a new signature is a new
	// phase. The default (0.35) tolerates sampling noise while catching
	// hot-region shifts and large load swings.
	Threshold float64

	current  Signature
	hasPhase bool
	changes  int
}

// NewDetector builds a detector; threshold <= 0 selects the default.
func NewDetector(threshold float64) *Detector {
	if threshold <= 0 {
		threshold = 0.35
	}
	return &Detector{Threshold: threshold}
}

// Observe feeds one signature and reports whether it starts a new phase.
// The first observation always starts a phase.
func (d *Detector) Observe(sig Signature) bool {
	if !d.hasPhase {
		d.current = sig
		d.hasPhase = true
		d.changes++
		return true
	}
	if Distance(d.current, sig) > d.Threshold {
		d.current = sig
		d.changes++
		return true
	}
	// Drift the current signature toward the observation so slow trends
	// do not eventually trip the detector spuriously.
	d.current = blend(d.current, sig, 0.3)
	return false
}

// Current returns the representative signature of the current phase.
func (d *Detector) Current() (Signature, bool) { return d.current, d.hasPhase }

// Changes counts phase starts observed so far (including the first).
func (d *Detector) Changes() int { return d.changes }

// Reset forgets the current phase.
func (d *Detector) Reset() {
	d.current = Signature{}
	d.hasPhase = false
}

func blend(a, b Signature, w float64) Signature {
	out := Signature{Hot: make(map[string]float64, len(a.Hot)), Rate: a.Rate*(1-w) + b.Rate*w}
	for f, v := range a.Hot {
		out.Hot[f] = v * (1 - w)
	}
	for f, v := range b.Hot {
		out.Hot[f] += v * w
	}
	return out
}

// CoPhase aggregates per-program detectors into the co-phase abstraction:
// a change in any member is a co-phase change.
type CoPhase struct {
	detectors map[string]*Detector
	changes   int
}

// NewCoPhase builds an empty co-phase tracker.
func NewCoPhase() *CoPhase {
	return &CoPhase{detectors: make(map[string]*Detector)}
}

// Observe feeds program name's signature; it reports whether the co-phase
// changed. Unknown names get a fresh detector (first observation = change).
func (c *CoPhase) Observe(name string, sig Signature, threshold float64) bool {
	d := c.detectors[name]
	if d == nil {
		d = NewDetector(threshold)
		c.detectors[name] = d
	}
	if d.Observe(sig) {
		c.changes++
		return true
	}
	return false
}

// Changes counts co-phase changes.
func (c *CoPhase) Changes() int { return c.changes }

// Forget drops a program (it stopped) — the next observation under the
// same name is a co-phase change again.
func (c *CoPhase) Forget(name string) { delete(c.detectors, name) }
