// Package loadgen drives request-gated latency-sensitive services with an
// offered-load trace, standing in for the client populations that load
// CloudSuite services in the paper (e.g. Figure 16's fluctuating
// web-search queries-per-second curve).
package loadgen

import (
	"math"

	"repro/internal/machine"
)

// Trace maps simulated time (seconds since experiment start) to offered
// load as a fraction of peak QPS, in [0,1].
type Trace interface {
	Load(t float64) float64
}

// Constant is a fixed offered load.
type Constant float64

// Load returns the constant level.
func (c Constant) Load(float64) float64 { return float64(c) }

// Step is one segment of a piecewise-constant trace.
type Step struct {
	// Until is the segment's end time in seconds.
	Until float64
	// Load is the offered fraction during the segment.
	Load float64
}

// Steps is a piecewise-constant trace; time past the last step repeats the
// last level.
type Steps []Step

// Load returns the level of the segment containing t.
func (s Steps) Load(t float64) float64 {
	for _, st := range s {
		if t < st.Until {
			return st.Load
		}
	}
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Load
}

// Figure16 reproduces the shape of the paper's Figure 16(a) web-search
// load over the given total duration: high load for the first third,
// low load for the middle third, high load again for the final third.
func Figure16(duration float64) Steps {
	return Steps{
		{Until: duration / 3, Load: 0.93},
		{Until: 2 * duration / 3, Load: 0.25},
		{Until: duration, Load: 0.93},
	}
}

// Diurnal is a sinusoidal day/night load curve: the load swings between
// Low (trough) and High (crest) with the given Period, starting at the
// trough at t=0. It models the datacenter-wide daily pattern that makes a
// fleet's servers heterogeneous once per-server phase offsets are applied.
type Diurnal struct {
	// Period is one full day in simulated seconds.
	Period float64
	// Low and High bound the offered load, both in [0,1].
	Low, High float64
}

// Load returns the diurnal level at t.
func (d Diurnal) Load(t float64) float64 {
	if d.Period <= 0 {
		return d.Low
	}
	mid := (d.High + d.Low) / 2
	amp := (d.High - d.Low) / 2
	return mid - amp*math.Cos(2*math.Pi*t/d.Period)
}

// Offset shifts an underlying trace earlier by By seconds: at time t it
// reports the underlying level at t+By. Fleets give each server a distinct
// offset so the cluster sweeps the whole diurnal phase space at any
// instant, the standard trick for modeling geographically spread or
// staggered request populations.
type Offset struct {
	Trace Trace
	By    float64
}

// Load returns the shifted level.
func (o Offset) Load(t float64) float64 { return o.Trace.Load(t + o.By) }

// MeanLoad averages a trace over [0, duration] by sampling, for placement
// policies that need each server's expected offered load before any
// measurement exists.
func MeanLoad(tr Trace, duration float64) float64 {
	if tr == nil || duration <= 0 {
		return 0
	}
	const samples = 64
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += tr.Load(duration * (float64(i) + 0.5) / samples)
	}
	return sum / samples
}

// Generator grants request budget to a gated process according to a trace.
// It implements machine.Agent.
type Generator struct {
	proc    *machine.Process
	trace   Trace
	peakQPS float64
	start   uint64
	started bool
	lastAt  uint64
	carry   float64
	offered uint64
}

// NewGenerator drives proc with the trace, where load 1.0 corresponds to
// peakQPS requests per simulated second. peakQPS should be the service's
// measured solo capacity.
func NewGenerator(proc *machine.Process, trace Trace, peakQPS float64) *Generator {
	return &Generator{proc: proc, trace: trace, peakQPS: peakQPS}
}

// Tick grants the budget accrued since the previous tick.
func (g *Generator) Tick(m *machine.Machine) {
	now := m.Now()
	if !g.started {
		g.started = true
		g.start = now
		g.lastAt = now
		return
	}
	freq := m.Config().FreqHz
	t := float64(now-g.start) / freq
	dt := float64(now-g.lastAt) / freq
	g.lastAt = now
	g.carry += g.trace.Load(t) * g.peakQPS * dt
	n := uint64(g.carry)
	if n > 0 {
		g.carry -= float64(n)
		g.proc.GrantWork(n)
		g.offered += n
	}
}

// Offered counts requests granted so far.
func (g *Generator) Offered() uint64 { return g.offered }

// CurrentLoad returns the trace level at machine time (for reporting).
func (g *Generator) CurrentLoad(m *machine.Machine) float64 {
	if !g.started {
		return g.trace.Load(0)
	}
	return g.trace.Load(float64(m.Now()-g.start) / m.Config().FreqHz)
}

// MeasureCapacity runs a gated process with an effectively infinite budget
// for the given number of quanta and returns its completion rate per
// simulated second. Run it on an otherwise idle machine to get solo peak
// QPS.
func MeasureCapacity(m *machine.Machine, proc *machine.Process, quanta int) float64 {
	proc.GrantWork(1 << 40)
	before := proc.Counters().Completions
	start := m.Now()
	m.RunQuanta(quanta)
	served := proc.Counters().Completions - before
	secs := float64(m.Now()-start) / m.Config().FreqHz
	return float64(served) / secs
}
