package loadgen

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func TestTraces(t *testing.T) {
	if Constant(0.5).Load(123) != 0.5 {
		t.Error("Constant broken")
	}
	s := Steps{{Until: 10, Load: 0.2}, {Until: 20, Load: 0.8}}
	cases := []struct {
		t    float64
		want float64
	}{{0, 0.2}, {9.9, 0.2}, {10, 0.8}, {19, 0.8}, {25, 0.8}}
	for _, c := range cases {
		if got := s.Load(c.t); got != c.want {
			t.Errorf("Load(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if (Steps{}).Load(5) != 0 {
		t.Error("empty Steps should yield 0")
	}
	f := Figure16(900)
	if f.Load(100) != 0.93 || f.Load(450) != 0.25 || f.Load(700) != 0.93 {
		t.Errorf("Figure16 shape wrong: %v %v %v", f.Load(100), f.Load(450), f.Load(700))
	}
}

func TestDiurnal(t *testing.T) {
	d := Diurnal{Period: 100, Low: 0.2, High: 0.8}
	if got := d.Load(0); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("trough Load(0) = %v, want 0.2", got)
	}
	if got := d.Load(50); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("crest Load(50) = %v, want 0.8", got)
	}
	if got := d.Load(25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("midpoint Load(25) = %v, want 0.5", got)
	}
	if got := d.Load(100); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("period wrap Load(100) = %v, want 0.2", got)
	}
	if got := (Diurnal{Low: 0.3}).Load(10); got != 0.3 {
		t.Errorf("zero-period Diurnal = %v, want Low", got)
	}
}

func TestOffsetShiftsPhase(t *testing.T) {
	d := Diurnal{Period: 100, Low: 0, High: 1}
	o := Offset{Trace: d, By: 50}
	for _, tt := range []float64{0, 10, 33, 75} {
		if got, want := o.Load(tt), d.Load(tt+50); math.Abs(got-want) > 1e-12 {
			t.Errorf("Offset.Load(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestMeanLoad(t *testing.T) {
	if got := MeanLoad(Constant(0.4), 100); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("MeanLoad(const) = %v", got)
	}
	// A full diurnal period averages to the midpoint.
	d := Diurnal{Period: 100, Low: 0.2, High: 0.8}
	if got := MeanLoad(d, 100); math.Abs(got-0.5) > 0.01 {
		t.Errorf("MeanLoad(diurnal, full period) = %v, want ~0.5", got)
	}
	// Offset servers at opposite phases see different partial-window means.
	a := MeanLoad(Offset{Trace: d, By: 0}, 25)
	b := MeanLoad(Offset{Trace: d, By: 50}, 25)
	if a >= b {
		t.Errorf("trough-phase mean %v should be below crest-phase mean %v", a, b)
	}
	if got := MeanLoad(nil, 10); got != 0 {
		t.Errorf("MeanLoad(nil) = %v", got)
	}
}

func TestGeneratorGrantsProportionally(t *testing.T) {
	spec := workload.MustByName("web-search")
	bin, err := spec.CompilePlain()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, bin, spec.ProcessConfig())
	gen := NewGenerator(p, Constant(0.5), 1000) // 500 req/s offered
	m.AddAgent(gen)
	m.RunSeconds(2)
	offered := gen.Offered()
	if offered < 900 || offered > 1100 {
		t.Errorf("offered %d requests over 2s at 500 QPS, want ~1000", offered)
	}
	// Low offered load on an idle machine: everything is served.
	served := p.Counters().Completions
	if float64(served) < float64(offered)*0.95 {
		t.Errorf("served %d of %d at low load", served, offered)
	}
}

func TestGeneratorFollowsTrace(t *testing.T) {
	spec := workload.MustByName("web-search")
	bin, _ := spec.CompilePlain()
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, bin, spec.ProcessConfig())
	trace := Steps{{Until: 1, Load: 1.0}, {Until: 2, Load: 0.1}}
	gen := NewGenerator(p, trace, 1000)
	m.AddAgent(gen)
	m.RunSeconds(1)
	high := gen.Offered()
	m.RunSeconds(1)
	low := gen.Offered() - high
	if math.Abs(float64(high)-1000) > 100 {
		t.Errorf("high segment offered %d, want ~1000", high)
	}
	if math.Abs(float64(low)-100) > 30 {
		t.Errorf("low segment offered %d, want ~100", low)
	}
	if gen.CurrentLoad(m) != 0.1 {
		t.Errorf("CurrentLoad = %v, want 0.1", gen.CurrentLoad(m))
	}
}

func TestMeasureCapacity(t *testing.T) {
	spec := workload.MustByName("web-search")
	bin, _ := spec.CompilePlain()
	m := machine.New(machine.Config{Cores: 1})
	p, _ := m.Attach(0, bin, spec.ProcessConfig())
	qps := MeasureCapacity(m, p, 1000)
	if qps <= 0 {
		t.Fatalf("capacity = %v", qps)
	}
	// Capacity should be stable across a second measurement within noise.
	qps2 := MeasureCapacity(m, p, 1000)
	if qps2 < qps*0.8 || qps2 > qps*1.2 {
		t.Errorf("capacity unstable: %v then %v", qps, qps2)
	}
}
