// Package agentloop adapts sequential policy code to the machine's
// quantum-tick agent model.
//
// Policies like PC3D's greedy variant search (Algorithm 1) are naturally
// sequential programs that interleave decisions with stretches of simulated
// time ("dispatch variant, run 10 ms, measure, decide"). A Loop runs such a
// policy on its own goroutine and hands control back and forth with the
// machine's Tick callback synchronously, so the simulation stays fully
// deterministic: exactly one of {machine, policy} runs at any moment.
package agentloop

import "repro/internal/machine"

// Loop runs a sequential policy function as a machine.Agent.
type Loop struct {
	fn       func(*Loop)
	tick     chan *machine.Machine
	done     chan struct{}
	finished chan struct{}
	m        *machine.Machine // machine seen at the last Tick
	started  bool
	closed   bool
	drained  bool
	holding  bool
}

// New wraps a policy. The policy receives the Loop and must call Wait (or
// a Wait* helper) to receive quantum ticks; when Wait returns nil the loop
// is closing and the policy must return promptly.
func New(fn func(*Loop)) *Loop {
	return &Loop{
		fn:       fn,
		tick:     make(chan *machine.Machine),
		done:     make(chan struct{}),
		finished: make(chan struct{}),
	}
}

// Tick delivers one quantum to the policy and blocks until the policy
// yields. Implements machine.Agent.
func (l *Loop) Tick(m *machine.Machine) {
	l.m = m
	if l.closed {
		// A Close deferred to the quantum boundary may not have drained yet;
		// finishing it here keeps post-Close ticks no-ops either way.
		l.drain()
		return
	}
	if !l.started {
		l.started = true
		go l.run()
	}
	l.tick <- m
	<-l.done
}

// Close shuts the policy down and, when it can do so safely, waits for the
// policy goroutine to exit. Safe to call from anywhere on the machine's
// goroutine — including from inside an agent Tick for the same machine
// (e.g. a supervisor reaping a crashed runtime's policy): closing there
// would wake the policy goroutine concurrently with the in-flight agent
// iteration, so the actual shutdown is deferred to the quantum boundary
// via machine.Defer. Idempotent.
func (l *Loop) Close() {
	if l.closed {
		return
	}
	l.closed = true
	if !l.started {
		return
	}
	if l.m != nil && l.m.InTick() {
		l.m.Defer(l.drain)
		return
	}
	l.drain()
}

// drain closes the tick channel and waits for the policy goroutine to
// finish, so no policy code ever runs concurrently with the caller. Must
// not be called from the policy goroutine itself (Close never does: policy
// code only runs while the machine is mid-tick, which takes the Defer
// path).
func (l *Loop) drain() {
	if l.drained || !l.started {
		return
	}
	l.drained = true
	close(l.tick)
	<-l.finished
}

func (l *Loop) run() {
	defer close(l.finished)
	l.fn(l)
	l.release()
	// The policy returned; keep absorbing ticks until Close.
	for range l.tick {
		l.done <- struct{}{}
	}
}

func (l *Loop) release() {
	if l.holding {
		l.holding = false
		l.done <- struct{}{}
	}
}

// Wait yields until the next quantum and returns the machine, or nil when
// the loop is closing.
func (l *Loop) Wait() *machine.Machine {
	l.release()
	m, ok := <-l.tick
	if !ok {
		return nil
	}
	l.holding = true
	return m
}

// WaitQuanta waits n quanta (n >= 1).
func (l *Loop) WaitQuanta(n int) *machine.Machine {
	var m *machine.Machine
	for i := 0; i < n; i++ {
		m = l.Wait()
		if m == nil {
			return nil
		}
	}
	return m
}

// WaitCycles waits until at least n cycles of simulated time have passed
// from the next observed tick.
func (l *Loop) WaitCycles(n uint64) *machine.Machine {
	m := l.Wait()
	if m == nil {
		return nil
	}
	target := m.Now() + n
	for m.Now() < target {
		m = l.Wait()
		if m == nil {
			return nil
		}
	}
	return m
}
