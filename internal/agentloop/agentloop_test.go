package agentloop

import (
	"testing"

	"repro/internal/machine"
)

func TestPolicySeesEveryQuantum(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	var seen []uint64
	l := New(func(l *Loop) {
		for {
			mm := l.Wait()
			if mm == nil {
				return
			}
			seen = append(seen, mm.Now())
		}
	})
	m.AddAgent(l)
	m.RunQuanta(5)
	l.Close()
	if len(seen) != 5 {
		t.Fatalf("policy saw %d ticks, want 5", len(seen))
	}
	q := m.Config().QuantumCycles
	for i, now := range seen {
		if now != uint64(i+1)*q {
			t.Errorf("tick %d at %d, want %d", i, now, uint64(i+1)*q)
		}
	}
}

func TestPolicyInterleavesWithMachine(t *testing.T) {
	// The policy mutates state between quanta; the interleaving must be
	// strictly synchronous (no data race, deterministic order).
	m := machine.New(machine.Config{Cores: 1})
	counter := 0
	order := []int{}
	l := New(func(l *Loop) {
		for {
			if l.Wait() == nil {
				return
			}
			counter++
			order = append(order, counter)
		}
	})
	m.AddAgent(l)
	m.AddAgent(machine.AgentFunc(func(*machine.Machine) {
		order = append(order, -counter)
	}))
	m.RunQuanta(3)
	l.Close()
	want := []int{1, -1, 2, -2, 3, -3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWaitQuantaAndCycles(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	q := m.Config().QuantumCycles
	var atQuanta, atCycles uint64
	l := New(func(l *Loop) {
		mm := l.WaitQuanta(3)
		if mm == nil {
			return
		}
		atQuanta = mm.Now()
		mm = l.WaitCycles(5 * q)
		if mm == nil {
			return
		}
		atCycles = mm.Now()
		for l.Wait() != nil {
		}
	})
	m.AddAgent(l)
	m.RunQuanta(20)
	l.Close()
	if atQuanta != 3*q {
		t.Errorf("WaitQuanta(3) returned at %d, want %d", atQuanta, 3*q)
	}
	if atCycles < 9*q || atCycles > 10*q {
		t.Errorf("WaitCycles returned at %d, want ~%d", atCycles, 9*q)
	}
}

func TestPolicyReturnEarly(t *testing.T) {
	m := machine.New(machine.Config{Cores: 1})
	l := New(func(l *Loop) {
		l.Wait() // take one tick and return
	})
	m.AddAgent(l)
	m.RunQuanta(10) // must not deadlock
	l.Close()
}

func TestCloseBeforeStartAndIdempotent(t *testing.T) {
	l := New(func(l *Loop) {
		for l.Wait() != nil {
		}
	})
	l.Close()
	l.Close()
	// Tick after close is a no-op.
	l.Tick(machine.New(machine.Config{Cores: 1}))
}

func TestCloseFromAnotherAgentsTick(t *testing.T) {
	// A supervisor agent reaping a policy mid-quantum must not wake the
	// policy goroutine while the machine is still delivering ticks: the
	// close is deferred to the quantum boundary and drained synchronously.
	m := machine.New(machine.Config{Cores: 1})
	ticks := 0
	var loopDone bool
	l := New(func(l *Loop) {
		for l.Wait() != nil {
			ticks++
		}
		loopDone = true
	})
	m.AddAgent(l)
	closeAt, closedOnce := 3, false
	m.AddAgent(machine.AgentFunc(func(mm *machine.Machine) {
		if ticks == closeAt && !closedOnce {
			closedOnce = true
			l.Close()
			if loopDone {
				t.Error("policy exited mid-tick; close was not deferred")
			}
		}
	}))
	m.RunQuanta(10)
	if ticks != closeAt {
		t.Errorf("policy saw %d ticks, want %d", ticks, closeAt)
	}
	if !loopDone {
		t.Error("policy goroutine never drained after deferred close")
	}
	// Further ticks and closes are no-ops.
	l.Tick(m)
	l.Close()
}

func TestCloseFromOwnPolicy(t *testing.T) {
	// A policy closing its own loop must not deadlock: the close happens
	// mid-tick, so it defers; the boundary drain then waits for the policy
	// goroutine, which has already returned.
	m := machine.New(machine.Config{Cores: 1})
	var l *Loop
	l = New(func(inner *Loop) {
		inner.Wait()
		inner.Wait()
		l.Close()
	})
	m.AddAgent(l)
	m.RunQuanta(5) // must not deadlock
	l.Close()
}
