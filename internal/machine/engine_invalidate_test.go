package machine

import (
	"testing"

	"repro/internal/isa"
)

// installNTVariant builds and installs the runtime-compiler NT variant of
// "hot", exactly as TestVariantInstallAndEVTDispatch does.
func installNTVariant(t *testing.T, p *Process) *isa.VariantResult {
	t.Helper()
	emb, err := p.Binary().DecodeIR()
	if err != nil {
		t.Fatalf("DecodeIR: %v", err)
	}
	for _, ld := range emb.Loads() {
		ld.NT = true
	}
	vr, err := isa.LowerVariant(p.Binary().Program, emb, "hot", 1, p.CodeCursor())
	if err != nil {
		t.Fatalf("LowerVariant: %v", err)
	}
	if err := p.InstallVariant(vr); err != nil {
		t.Fatalf("InstallVariant: %v", err)
	}
	return vr
}

// TestSuperblockInstallInvalidation checks the superblock decode cache is
// rebuilt when InstallVariant grows the code image: the decoded tables
// must cover the appended variant before any dispatch reaches it.
func TestSuperblockInstallInvalidation(t *testing.T) {
	m := New(Config{Cores: 1, Engine: EngineSuperblock})
	bin := compile(t, streamModule(t, "app", 1<<20), true)
	p, err := m.Attach(0, bin, ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	m.RunQuanta(5)
	eng, ok := p.eng.(*sbEngine)
	if !ok {
		t.Fatalf("engine is %T, want *sbEngine", p.eng)
	}
	if len(eng.ops) != len(p.code) {
		t.Fatalf("decoded %d ops for %d-inst image before install", len(eng.ops), len(p.code))
	}
	vr := installNTVariant(t, p)
	if len(eng.ops) != len(p.code) {
		t.Fatalf("stale decode after install: %d ops for %d-inst image", len(eng.ops), len(p.code))
	}
	// The variant's superblocks must be immediately runnable: redirect and
	// confirm fused execution retires its prefetches.
	slot := p.EVT().SlotFor("hot")
	p.EVT().SetTarget(slot, vr.Info.Entry)
	before := p.Counters()
	m.RunQuanta(30)
	if p.Counters().Sub(before).Prefetches == 0 {
		t.Fatal("installed variant never executed under superblock")
	}
}

// TestEngineDifferentialInstallAndRevert replays the full runtime episode
// — install mid-run, EVT redirect into the variant, then a supervisor-
// style revert to the original entry — under both engines in lockstep,
// requiring identical counters and PCs at every quantum boundary. The EVT
// redirect deliberately lands between quanta while the process is
// mid-loop, the case superblock chaining could get wrong if dispatch
// didn't read the live table.
func TestEngineDifferentialInstallAndRevert(t *testing.T) {
	type run struct {
		m *Machine
		p *Process
	}
	var runs [2]run
	for i, eng := range []string{EngineInterp, EngineSuperblock} {
		m := New(Config{Cores: 1, Engine: eng})
		bin := compile(t, streamModule(t, "app", 1<<20), true)
		p, err := m.Attach(0, bin, ProcessConfig{Restart: true})
		if err != nil {
			t.Fatalf("Attach under %s: %v", eng, err)
		}
		runs[i] = run{m: m, p: p}
	}
	check := func(q int) {
		t.Helper()
		a, b := runs[0].p, runs[1].p
		if ca, cb := a.Counters(), b.Counters(); ca != cb {
			t.Fatalf("counters diverged at quantum %d:\n  interp:     %+v\n  superblock: %+v", q, ca, cb)
		}
		if a.CurrentPC() != b.CurrentPC() {
			t.Fatalf("PC diverged at quantum %d: interp %d, superblock %d", q, a.CurrentPC(), b.CurrentPC())
		}
	}
	for q := 0; q < 90; q++ {
		for _, r := range runs {
			switch q {
			case 20:
				vr := installNTVariant(t, r.p)
				r.p.EVT().SetTarget(r.p.EVT().SlotFor("hot"), vr.Info.Entry)
			case 60:
				fi, ok := r.p.Binary().Program.FuncByName("hot")
				if !ok {
					t.Fatal("hot not found")
				}
				r.p.EVT().SetTarget(r.p.EVT().SlotFor("hot"), fi.Entry)
			}
			r.m.RunQuanta(1)
		}
		check(q)
	}
	if runs[0].p.Counters().Prefetches == 0 {
		t.Fatal("episode never executed the NT variant")
	}
}
