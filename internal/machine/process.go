package machine

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/progbin"
	"repro/internal/telemetry"
)

// Instruction issue costs in cycles. Loads and stores add memory time on
// top. The EVT-indirect call is one cycle dearer than a direct call — the
// "indirect branches are generally slightly slower" premise behind the
// paper's choice to virtualize selectively.
const (
	costALU      = 1
	costConst    = 1
	costBr       = 1
	costJmp      = 1
	costCall     = 2
	costCallEVT  = 3
	costRet      = 2
	costPrefetch = 1
	costLoadBase = 1
	costStore    = 1
)

// DBTConfig overlays a dynamic-binary-translation cost model on a process,
// standing in for running the program under DynamoRIO (Figure 4's
// baseline). Translation-based systems keep all execution inside a code
// cache: every control transfer pays a dispatch cost (heavier for indirect
// transfers, which need a hash lookup), and the first visit to a target
// pays a one-time translation cost.
type DBTConfig struct {
	DirectTransferCycles   int
	IndirectTransferCycles int
	TranslateCyclesPerSite int
}

// ProcessConfig configures one attached process, following the repo-wide
// Config-struct convention (core/pc3d/supervise migrated in PR 3).
type ProcessConfig struct {
	// Restart re-enters the program's entry function when it returns,
	// modelling a batch job immediately rescheduled (throughput workloads).
	Restart bool
	// Gated turns the process into a request-driven server: each entry-
	// function completion consumes one unit of work budget, and the process
	// idles when the budget is empty. Load generators grant budget via
	// GrantWork; a latency-sensitive service at 30% load gets 30% of its
	// peak request rate. Gated implies restart-on-completion while budget
	// remains.
	Gated bool
	// DBT, when non-nil, applies the binary-translation overhead model.
	DBT *DBTConfig
	// TraceDepth, when positive, keeps a ring buffer of the last N executed
	// instructions (cycle, PC) for post-mortem inspection. Tracing slows
	// the interpreter; leave zero in experiments.
	TraceDepth int
	// Label overrides the reported process name (defaults to module name).
	Label string
}

// ProcessOptions is the former name of ProcessConfig.
//
// Deprecated: use ProcessConfig. This alias is kept for one release,
// mirroring the core/pc3d/supervise Options→Config migrations.
type ProcessOptions = ProcessConfig

// TraceEntry is one executed instruction in a process's trace ring.
type TraceEntry struct {
	Cycle uint64
	PC    int
}

// Counters are the per-process hardware counters the runtime samples.
type Counters struct {
	// Cycles is the process's local clock: everything below plus run time.
	Cycles uint64
	// NapCycles were spent napping under the duty-cycle controller.
	NapCycles uint64
	// SleepCycles were spent in forced sleeps (flux probes).
	SleepCycles uint64
	// StolenCycles were consumed by a same-core runtime compiler.
	StolenCycles uint64
	// IdleCycles were spent waiting for work (gated server with an empty
	// request budget).
	IdleCycles uint64
	// DBTCycles were consumed by the binary-translation overlay.
	DBTCycles uint64

	Insts      uint64
	Branches   uint64
	Loads      uint64
	Stores     uint64
	Prefetches uint64
	// Completions counts entry-function returns (restart events).
	Completions uint64
}

// Sub returns the delta c - prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Cycles:       c.Cycles - prev.Cycles,
		NapCycles:    c.NapCycles - prev.NapCycles,
		SleepCycles:  c.SleepCycles - prev.SleepCycles,
		StolenCycles: c.StolenCycles - prev.StolenCycles,
		IdleCycles:   c.IdleCycles - prev.IdleCycles,
		DBTCycles:    c.DBTCycles - prev.DBTCycles,
		Insts:        c.Insts - prev.Insts,
		Branches:     c.Branches - prev.Branches,
		Loads:        c.Loads - prev.Loads,
		Stores:       c.Stores - prev.Stores,
		Prefetches:   c.Prefetches - prev.Prefetches,
		Completions:  c.Completions - prev.Completions,
	}
}

type frame struct {
	retPC int
	regs  []int64
}

type siteState struct {
	cursor uint64
}

// Process is one program executing on one core.
type Process struct {
	m    *Machine
	core int
	bin  *progbin.Binary
	opts ProcessConfig
	eng  Engine

	code  []isa.Inst
	funcs []isa.FuncInfo // sorted by Entry; includes installed variants
	evt   *progbin.LiveEVT

	// base offsets this process's data addresses so co-runners have
	// disjoint working sets that still contend for shared cache capacity.
	base uint64

	pc      int
	frames  []frame
	regs    []int64
	regPool [][]int64
	maxReg  int
	sites   []siteState
	rng     uint64

	halted bool
	ctr    Counters

	trace    []TraceEntry
	tracePos int
	traceLen int

	napIntensity float64
	sleepUntil   uint64
	stealPending uint64
	workBudget   uint64

	dbtSeen []bool
}

func newProcess(m *Machine, core int, bin *progbin.Binary, opts ProcessConfig) (*Process, error) {
	p := &Process{
		m:     m,
		core:  core,
		bin:   bin,
		opts:  opts,
		code:  append([]isa.Inst(nil), bin.Program.Code...),
		funcs: append([]isa.FuncInfo(nil), bin.Program.Funcs...),
		evt:   progbin.NewLiveEVT(bin.Program.EVT),
		base:  uint64(core+1) << 40,
		sites: make([]siteState, bin.Program.NumSites),
		rng:   uint64(m.cfg.Seed)*2654435769 + uint64(core)*0x9e3779b97f4a7c15 + 1,
	}
	sort.Slice(p.funcs, func(i, j int) bool { return p.funcs[i].Entry < p.funcs[j].Entry })
	for _, f := range p.funcs {
		if f.MaxReg > p.maxReg {
			p.maxReg = f.MaxReg
		}
	}
	if opts.DBT != nil {
		p.dbtSeen = make([]bool, len(p.code))
	}
	if opts.TraceDepth > 0 {
		p.trace = make([]TraceEntry, opts.TraceDepth)
	}
	p.ctr.Cycles = m.now
	p.reset()
	eng, err := newEngine(m.cfg.Engine, p)
	if err != nil {
		return nil, err
	}
	p.eng = eng
	return p, nil
}

func (p *Process) reset() {
	p.pc = p.bin.Program.EntryPC
	p.frames = p.frames[:0]
	p.regs = p.newRegs()
}

func (p *Process) newRegs() []int64 {
	if n := len(p.regPool); n > 0 {
		r := p.regPool[n-1]
		p.regPool = p.regPool[:n-1]
		for i := range r {
			r[i] = 0
		}
		return r
	}
	return make([]int64, p.maxReg)
}

// Name returns the process label.
func (p *Process) Name() string {
	if p.opts.Label != "" {
		return p.opts.Label
	}
	return p.bin.Program.Name
}

// Core returns the core index the process runs on.
func (p *Process) Core() int { return p.core }

// Binary returns the loaded binary.
func (p *Process) Binary() *progbin.Binary { return p.bin }

// EVT returns the process's live Edge Virtualization Table.
func (p *Process) EVT() *progbin.LiveEVT { return p.evt }

// Counters returns a snapshot of the process's counters.
func (p *Process) Counters() Counters { return p.ctr }

// Engine returns the name of the execution engine driving this process.
func (p *Process) Engine() string { return p.eng.Name() }

// Halted reports whether the program exited (only when Restart is false).
func (p *Process) Halted() bool { return p.halted }

// CurrentPC returns the program counter (the ptrace sampling hook).
func (p *Process) CurrentPC() int { return p.pc }

// FuncAt attributes a PC to a function (original or variant), using binary
// search over entry-sorted ranges.
func (p *Process) FuncAt(pc int) (isa.FuncInfo, bool) {
	i := sort.Search(len(p.funcs), func(i int) bool { return p.funcs[i].Entry > pc })
	if i == 0 {
		return isa.FuncInfo{}, false
	}
	f := p.funcs[i-1]
	if pc >= f.Entry && pc < f.End {
		return f, true
	}
	return isa.FuncInfo{}, false
}

// CurrentFunc returns the name of the function the PC is in, or "".
func (p *Process) CurrentFunc() string {
	if f, ok := p.FuncAt(p.pc); ok {
		return f.Name
	}
	return ""
}

// Sample attributes one sampled PC: the function (original or variant),
// the basic block inside it, and — when the PC is a load — the static IR
// load site. This is the ptrace-sampler analog of symbolizing a PC against
// the binary's line table.
type Sample struct {
	Func    string
	Variant int
	// Block is the IR block name, or "" for binaries without block tables.
	Block string
	// LoadID is the static load site when the sampled instruction is a
	// load, -1 otherwise.
	LoadID int
}

// SampleAt attributes pc to (function, block, load site); ok is false when
// pc is outside any function.
func (p *Process) SampleAt(pc int) (Sample, bool) {
	f, ok := p.FuncAt(pc)
	if !ok {
		return Sample{}, false
	}
	s := Sample{Func: f.Name, Variant: f.Variant, LoadID: -1}
	if bi := f.BlockAt(pc); bi >= 0 {
		s.Block = f.Blocks[bi].Name
	}
	if pc >= 0 && pc < len(p.code) && p.code[pc].Op == isa.OpLoad {
		s.LoadID = p.code[pc].LoadID
	}
	return s, true
}

// CurrentSample attributes the current PC (see SampleAt).
func (p *Process) CurrentSample() (Sample, bool) { return p.SampleAt(p.pc) }

// SetNapIntensity sets the napping duty cycle in [0,1]: the fraction of
// each nap window the process sleeps. This is the authoritative nap-state
// transition point — every policy funnels through it, so the telemetry
// trace records exactly one event per actual change.
func (p *Process) SetNapIntensity(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	if f != p.napIntensity && p.m.tel.TraceEnabled() {
		p.m.tel.Emit(telemetry.Event{
			At: p.m.now, Kind: telemetry.EvNap, Core: p.core,
			Value: f, Detail: telemetry.FormatFloat(p.napIntensity),
		})
	}
	p.napIntensity = f
}

// NapIntensity returns the current duty cycle.
func (p *Process) NapIntensity() float64 { return p.napIntensity }

// ForceSleep puts the process to sleep for n cycles starting now — the
// flux probe mechanism (Section IV-F).
func (p *Process) ForceSleep(n uint64) {
	if p.ctr.Cycles+n > p.sleepUntil {
		p.sleepUntil = p.ctr.Cycles + n
	}
}

// StealCycles consumes n upcoming cycles of the process's core for another
// activity (a same-core runtime compiler). The process makes no progress
// while stolen cycles drain.
func (p *Process) StealCycles(n uint64) { p.stealPending += n }

// GrantWork adds n requests to a gated server's budget. No-op semantics for
// ungated processes (the budget is simply never consumed).
func (p *Process) GrantWork(n uint64) { p.workBudget += n }

// WorkBudget returns the outstanding request budget of a gated server.
func (p *Process) WorkBudget() uint64 { return p.workBudget }

// CodeCursor returns the PC where the next installed variant will land.
func (p *Process) CodeCursor() int { return len(p.code) }

// InstallVariant appends a lowered variant fragment to the process's code
// cache and registers its function range. The fragment must have been
// lowered with basePC = CodeCursor(). Installing does not redirect
// execution; the EVT manager does that separately. Variant memory sites
// alias the original program's cursor state by stable MemID, so switching
// variants never rewinds an access stream.
func (p *Process) InstallVariant(vr *isa.VariantResult) error {
	if vr.Info.Entry != len(p.code) {
		return fmt.Errorf("machine: variant lowered for basePC %d but code cursor is %d", vr.Info.Entry, len(p.code))
	}
	p.code = append(p.code, vr.Code...)
	p.funcs = append(p.funcs, vr.Info) // still entry-sorted: code grows upward
	if vr.NumSites > len(p.sites) {
		p.sites = append(p.sites, make([]siteState, vr.NumSites-len(p.sites))...)
	}
	if vr.Info.MaxReg > p.maxReg {
		p.maxReg = vr.Info.MaxReg
		// Live register files may be smaller than the new maximum; they
		// belong to functions with smaller MaxReg, so they stay valid. New
		// frames allocate at the new size. Drop the pool of small slices.
		p.regPool = nil
	}
	if p.dbtSeen != nil {
		grown := make([]bool, len(p.code))
		copy(grown, p.dbtSeen)
		p.dbtSeen = grown
	}
	// The engine may hold decoded state derived from the old image; let it
	// extend or invalidate (the old tail instruction's decoding can change
	// now that it has a successor).
	p.eng.CodeInstalled(len(p.code) - len(vr.Code))
	return nil
}

// step executes one instruction.
func (p *Process) step(hier hierAccessor, mlp uint64) {
	in := &p.code[p.pc]
	if p.trace != nil {
		p.trace[p.tracePos] = TraceEntry{Cycle: p.ctr.Cycles, PC: p.pc}
		p.tracePos++
		if p.tracePos == len(p.trace) {
			p.tracePos = 0
		}
		if p.traceLen < len(p.trace) {
			p.traceLen++
		}
	}
	p.ctr.Insts++
	switch in.Op {
	case isa.OpALU:
		x := p.regs[in.X]
		var y int64
		if in.YIsReg {
			y = p.regs[in.YReg]
		} else {
			y = in.YImm
		}
		p.regs[in.Dst] = alu(in.Bin, x, y)
		p.ctr.Cycles += costALU
		p.pc++
	case isa.OpConst:
		p.regs[in.Dst] = in.YImm
		p.ctr.Cycles += costConst
		p.pc++
	case isa.OpLoad:
		addr := p.address(&in.Gen)
		lat := hier.Load(p.core, addr, in.NT)
		stall := uint64(lat) / mlp
		p.ctr.Cycles += costLoadBase + stall
		p.ctr.Loads++
		p.regs[in.Dst] = int64(addr)
		p.pc++
	case isa.OpStore:
		addr := p.address(&in.Gen)
		hier.Store(p.core, addr, in.NT)
		p.ctr.Cycles += costStore
		p.ctr.Stores++
		p.pc++
	case isa.OpPrefetch:
		switch {
		case in.Lead != 0:
			// Lead prefetch: warm the address Lead bytes ahead of the
			// shared stream cursor without advancing it, so the load that
			// reaches that position a few iterations later hits.
			addr := p.addressPeek(&in.Gen, uint64(in.Lead))
			hier.Prefetch(p.core, addr, in.NT)
		case in.NT && p.pairedWithNextLoad(in):
			// A hint prefetch paired with the following load (same site)
			// is issue-cost only: its sole architectural effect is tagging
			// the load's fill non-temporal, which the load itself carries.
		default:
			addr := p.address(&in.Gen)
			hier.Prefetch(p.core, addr, in.NT)
		}
		p.ctr.Cycles += costPrefetch
		p.ctr.Prefetches++
		p.pc++
	case isa.OpBr:
		x := p.regs[in.X]
		var y int64
		if in.YIsReg {
			y = p.regs[in.YReg]
		} else {
			y = in.YImm
		}
		p.ctr.Cycles += costBr
		p.ctr.Branches++
		if cmp(in.Cmp, x, y) {
			p.transfer(in.Target, false)
		} else {
			p.pc++
		}
	case isa.OpJmp:
		p.ctr.Cycles += costJmp
		p.ctr.Branches++
		p.transfer(in.Target, false)
	case isa.OpCall:
		p.ctr.Cycles += costCall
		p.ctr.Branches++
		p.pushFrame(p.pc + 1)
		p.transfer(in.Target, false)
	case isa.OpCallEVT:
		p.ctr.Cycles += costCallEVT
		p.ctr.Branches++
		p.pushFrame(p.pc + 1)
		p.transfer(p.evt.Target(in.EVTSlot), true)
	case isa.OpRet:
		p.ctr.Cycles += costRet
		p.ctr.Branches++
		if len(p.frames) == 0 {
			p.ctr.Completions++
			if p.opts.Gated {
				if p.workBudget > 0 {
					p.workBudget--
				}
				p.reset()
			} else if p.opts.Restart {
				p.reset()
			} else {
				p.halted = true
			}
			return
		}
		f := p.frames[len(p.frames)-1]
		p.frames = p.frames[:len(p.frames)-1]
		p.regPool = append(p.regPool, p.regs)
		p.regs = f.regs
		p.transfer(f.retPC, true)
	case isa.OpHalt:
		p.halted = true
	default:
		panic(fmt.Sprintf("machine: unknown opcode %d at pc %d", in.Op, p.pc))
	}
}

// pairedWithNextLoad reports whether the prefetch at p.pc shares a site
// with the immediately following load (the codegen's NT-hint pairing).
func (p *Process) pairedWithNextLoad(in *isa.Inst) bool {
	if p.pc+1 >= len(p.code) {
		return false
	}
	next := &p.code[p.pc+1]
	return next.Op == isa.OpLoad && next.Gen.Site == in.Gen.Site
}

func (p *Process) pushFrame(retPC int) {
	p.frames = append(p.frames, frame{retPC: retPC, regs: p.regs})
	p.regs = p.newRegs()
}

// transfer moves the PC, applying the DBT overlay when present.
func (p *Process) transfer(target int, indirect bool) {
	if p.dbtSeen != nil {
		cfg := p.opts.DBT
		var extra uint64
		if indirect {
			extra += uint64(cfg.IndirectTransferCycles)
		} else {
			extra += uint64(cfg.DirectTransferCycles)
		}
		if target < len(p.dbtSeen) && !p.dbtSeen[target] {
			p.dbtSeen[target] = true
			extra += uint64(cfg.TranslateCyclesPerSite)
		}
		p.ctr.Cycles += extra
		p.ctr.DBTCycles += extra
	}
	p.pc = target
}

// hierAccessor is the slice of the cache hierarchy the interpreter needs;
// taking it as an interface keeps step testable in isolation.
type hierAccessor interface {
	Load(core int, addr uint64, nt bool) int
	Store(core int, addr uint64, nt bool) int
	Prefetch(core int, addr uint64, nt bool)
}

func alu(op ir.BinKind, x, y int64) int64 {
	switch op {
	case ir.Add:
		return x + y
	case ir.Sub:
		return x - y
	case ir.Mul:
		return x * y
	case ir.Div:
		if y == 0 {
			return 0
		}
		return x / y
	case ir.And:
		return x & y
	case ir.Or:
		return x | y
	case ir.Xor:
		return x ^ y
	case ir.Shl:
		return x << (uint64(y) & 63)
	case ir.Shr:
		return int64(uint64(x) >> (uint64(y) & 63))
	}
	return 0
}

func cmp(op ir.CmpKind, x, y int64) bool {
	switch op {
	case ir.Eq:
		return x == y
	case ir.Ne:
		return x != y
	case ir.Lt:
		return x < y
	case ir.Le:
		return x <= y
	case ir.Gt:
		return x > y
	case ir.Ge:
		return x >= y
	}
	return false
}

// Trace returns the traced instructions, oldest first. Empty unless the
// process was attached with a positive TraceDepth.
func (p *Process) Trace() []TraceEntry {
	if p.trace == nil || p.traceLen == 0 {
		return nil
	}
	out := make([]TraceEntry, 0, p.traceLen)
	start := p.tracePos - p.traceLen
	if start < 0 {
		start += len(p.trace)
	}
	for i := 0; i < p.traceLen; i++ {
		out = append(out, p.trace[(start+i)%len(p.trace)])
	}
	return out
}

// nextRand steps the process-local xorshift64 generator.
func (p *Process) nextRand() uint64 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return x
}

// address generates the next address of a memory site.
func (p *Process) address(g *isa.AddrGen) uint64 {
	st := &p.sites[g.Site]
	var off uint64
	switch g.Pattern {
	case ir.Seq:
		off = st.cursor
		st.cursor += g.Stride
		if st.cursor >= g.Size {
			st.cursor = 0
		}
	case ir.Rand:
		off = (p.nextRand() % g.Size) &^ 7
	case ir.Chase:
		st.cursor = splitmix64(st.cursor+0x9e3779b97f4a7c15) % g.Size
		off = st.cursor &^ 7
	case ir.Hot:
		r := p.nextRand()
		if r%8 != 0 { // 7/8 of accesses stay in the hot set
			off = (r >> 8) % g.HotBytes &^ 7
		} else {
			off = (r >> 8) % g.Size &^ 7
		}
	case ir.Pin:
		// Loop-invariant address: every execution re-touches the region
		// base. No cursor state to advance.
		off = 0
	}
	return p.base + g.Base + off
}

// addressPeek returns the address lead bytes ahead of the site's stream
// position without mutating cursor state. Only sequential streams have a
// meaningful "ahead"; other patterns peek at cursor+lead too, which is
// harmless (the prefetch warms a plausible region address).
func (p *Process) addressPeek(g *isa.AddrGen, lead uint64) uint64 {
	st := p.sites[g.Site]
	off := st.cursor + lead
	for off >= g.Size {
		off -= g.Size
	}
	return p.base + g.Base + off
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
