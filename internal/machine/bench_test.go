package machine

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/telemetry"
)

// BenchmarkInterpreter measures raw interpreter throughput (simulated
// instructions per wall second) on a compute-heavy kernel.
func BenchmarkInterpreter(b *testing.B) {
	mb := ir.NewModuleBuilder("alu")
	mb.Global("g", 1<<16)
	f := mb.Function("main")
	f.Loop(1<<40, func() { f.Work(16) })
	f.Return()
	mb.SetEntry("main")
	bin := compile(b, mb.MustBuild(), false)

	m := New(Config{Cores: 1})
	p, err := m.Attach(0, bin, ProcessConfig{Restart: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunQuanta(1)
	}
	b.StopTimer()
	b.ReportMetric(float64(p.Counters().Insts)/float64(b.N), "insts/quantum")
}

// BenchmarkInterpreterMemory measures throughput on a load-heavy streaming
// kernel that exercises the cache hierarchy on every iteration.
func BenchmarkInterpreterMemory(b *testing.B) {
	bin := compile(b, streamModule(b, "stream", 8<<20), false)
	m := New(Config{Cores: 1})
	p, err := m.Attach(0, bin, ProcessConfig{Restart: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunQuanta(1)
	}
	b.StopTimer()
	b.ReportMetric(float64(p.Counters().Loads)/float64(b.N), "loads/quantum")
}

// BenchmarkQuadCoreContention measures a fully loaded machine: four
// processes sharing the LLC.
func BenchmarkQuadCoreContention(b *testing.B) {
	m := New(Config{Cores: 4})
	for c := 0; c < 4; c++ {
		bin := compile(b, streamModule(b, "s", 4<<20), false)
		if _, err := m.Attach(c, bin, ProcessConfig{Restart: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunQuanta(1)
	}
}

// BenchmarkMachine compares simulation throughput with telemetry disabled
// (nil registry: every instrument call is a nil-receiver no-op) against a
// live per-machine registry. The telemetry plane's contract is that a live
// registry costs less than 5% on this hot path.
func BenchmarkMachine(b *testing.B) {
	for _, tc := range []struct {
		name string
		reg  *telemetry.Registry
	}{
		{"telemetry=off", nil},
		{"telemetry=on", telemetry.New(telemetry.Config{})},
	} {
		b.Run(tc.name, func(b *testing.B) {
			bin := compile(b, streamModule(b, "stream", 4<<20), false)
			m := New(Config{Cores: 2, Telemetry: tc.reg})
			if _, err := m.Attach(0, bin, ProcessConfig{Restart: true}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RunQuanta(1)
			}
		})
	}
}

// BenchmarkEVTDispatch measures the cost of an EVT retarget plus the next
// quantum of redirected execution.
func BenchmarkEVTDispatch(b *testing.B) {
	bin := compile(b, streamModule(b, "app", 1<<20), true)
	m := New(Config{Cores: 1})
	p, err := m.Attach(0, bin, ProcessConfig{Restart: true})
	if err != nil {
		b.Fatal(err)
	}
	slot := p.EVT().SlotFor("hot")
	fi, _ := bin.Program.FuncByName("hot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EVT().SetTarget(slot, fi.Entry)
		m.RunQuanta(1)
	}
}
