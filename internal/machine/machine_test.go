package machine

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/pcc"
	"repro/internal/progbin"
)

// streamModule builds main calling a hot loop that streams through ws bytes.
func streamModule(t testing.TB, name string, ws int64) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder(name)
	mb.Global("buf", ws)
	hot := mb.Function("hot")
	hot.Loop(2000, func() {
		hot.Load(ir.Access{Global: "buf", Pattern: ir.Seq, Stride: 64})
		hot.Work(2)
	})
	hot.Return()
	main := mb.Function("main")
	main.Loop(1<<40, func() {
		main.Call("hot")
	})
	main.Return()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func compile(t testing.TB, m *ir.Module, protean bool) *progbin.Binary {
	t.Helper()
	b, err := pcc.Compile(m, pcc.Options{Protean: protean})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return b
}

func TestAttachAndRun(t *testing.T) {
	m := New(Config{Cores: 2})
	bin := compile(t, streamModule(t, "app", 1<<20), true)
	p, err := m.Attach(0, bin, ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	m.RunQuanta(10)
	c := p.Counters()
	if c.Insts == 0 || c.Branches == 0 || c.Loads == 0 {
		t.Fatalf("no progress: %+v", c)
	}
	// The local clock may overshoot the quantum boundary by at most one
	// instruction's cost.
	if c.Cycles < m.Now() || c.Cycles > m.Now()+1000 {
		t.Errorf("process clock %d not within one instruction of machine clock %d", c.Cycles, m.Now())
	}
	if p.Halted() {
		t.Error("restarting process reported halted")
	}
}

func TestAttachErrors(t *testing.T) {
	m := New(Config{Cores: 1})
	bin := compile(t, streamModule(t, "app", 1<<16), false)
	if _, err := m.Attach(5, bin, ProcessConfig{}); err == nil {
		t.Error("attach to out-of-range core succeeded")
	}
	if _, err := m.Attach(0, bin, ProcessConfig{}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := m.Attach(0, bin, ProcessConfig{}); err == nil {
		t.Error("double attach succeeded")
	}
	m.Detach(0)
	if _, err := m.Attach(0, bin, ProcessConfig{}); err != nil {
		t.Errorf("attach after detach: %v", err)
	}
}

func TestHaltWithoutRestart(t *testing.T) {
	mb := ir.NewModuleBuilder("finite")
	mb.Global("g", 4096)
	f := mb.Function("main")
	f.Loop(100, func() { f.Work(1) })
	f.Return()
	mb.SetEntry("main")
	bin := compile(t, mb.MustBuild(), false)

	m := New(Config{Cores: 1})
	p, err := m.Attach(0, bin, ProcessConfig{})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	m.RunQuanta(5)
	if !p.Halted() {
		t.Fatal("finite program did not halt")
	}
	if p.Counters().Completions != 1 {
		t.Errorf("Completions = %d, want 1", p.Counters().Completions)
	}
	insts := p.Counters().Insts
	m.RunQuanta(5)
	if p.Counters().Insts != insts {
		t.Error("halted process kept executing")
	}
}

func TestRestartCountsCompletions(t *testing.T) {
	mb := ir.NewModuleBuilder("finite")
	mb.Global("g", 4096)
	f := mb.Function("main")
	f.Loop(10, func() { f.Work(1) })
	f.Return()
	mb.SetEntry("main")
	bin := compile(t, mb.MustBuild(), false)

	m := New(Config{Cores: 1})
	p, _ := m.Attach(0, bin, ProcessConfig{Restart: true})
	m.RunQuanta(3)
	if p.Counters().Completions < 2 {
		t.Errorf("Completions = %d, want >= 2 with restart", p.Counters().Completions)
	}
}

func TestLoopSemanticsExact(t *testing.T) {
	// A counted loop must execute its body exactly `trip` times:
	// completions-per-quantum depend on honest control flow.
	mb := ir.NewModuleBuilder("count")
	mb.Global("g", 1<<16)
	f := mb.Function("main")
	f.Loop(7, func() {
		f.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64})
	})
	f.Return()
	mb.SetEntry("main")
	bin := compile(t, mb.MustBuild(), false)

	m := New(Config{Cores: 1})
	p, _ := m.Attach(0, bin, ProcessConfig{})
	m.RunQuanta(1)
	if got := p.Counters().Loads; got != 7 {
		t.Errorf("loads = %d, want exactly 7", got)
	}
}

func TestNapIntensityThrottles(t *testing.T) {
	run := func(nap float64) uint64 {
		m := New(Config{Cores: 1})
		bin := compile(t, streamModule(t, "app", 1<<16), false)
		p, _ := m.Attach(0, bin, ProcessConfig{Restart: true})
		p.SetNapIntensity(nap)
		m.RunQuanta(200)
		return p.Counters().Insts
	}
	full := run(0)
	half := run(0.5)
	ninety := run(0.9)
	if half >= full*6/10 || half <= full*4/10 {
		t.Errorf("nap 0.5: insts %d vs full %d, want roughly half", half, full)
	}
	if ninety >= full*2/10 {
		t.Errorf("nap 0.9: insts %d vs full %d, want <20%%", ninety, full)
	}
}

func TestNapIntensityClamped(t *testing.T) {
	m := New(Config{Cores: 1})
	bin := compile(t, streamModule(t, "app", 1<<16), false)
	p, _ := m.Attach(0, bin, ProcessConfig{Restart: true})
	p.SetNapIntensity(-1)
	if p.NapIntensity() != 0 {
		t.Error("negative intensity not clamped to 0")
	}
	p.SetNapIntensity(2)
	if p.NapIntensity() != 1 {
		t.Error("intensity > 1 not clamped")
	}
}

func TestForceSleepStopsProgress(t *testing.T) {
	m := New(Config{Cores: 1})
	bin := compile(t, streamModule(t, "app", 1<<16), false)
	p, _ := m.Attach(0, bin, ProcessConfig{Restart: true})
	m.RunQuanta(10)
	before := p.Counters()
	p.ForceSleep(m.Config().QuantumCycles * 5)
	m.RunQuanta(5)
	d := p.Counters().Sub(before)
	if d.Insts != 0 {
		t.Errorf("slept process executed %d insts", d.Insts)
	}
	// Overshoot from the instruction in flight at the sleep boundary may
	// shave a few cycles off the counted sleep.
	want := m.Config().QuantumCycles * 5
	if d.SleepCycles > want || d.SleepCycles < want-1000 {
		t.Errorf("SleepCycles = %d, want ~%d", d.SleepCycles, want)
	}
	m.RunQuanta(5)
	if p.Counters().Sub(before).Insts == 0 {
		t.Error("process did not wake after sleep")
	}
}

func TestStealCyclesSlowsProcess(t *testing.T) {
	m := New(Config{Cores: 1})
	bin := compile(t, streamModule(t, "app", 1<<16), false)
	p, _ := m.Attach(0, bin, ProcessConfig{Restart: true})
	m.RunQuanta(10)
	before := p.Counters()
	p.StealCycles(m.Config().QuantumCycles * 3)
	m.RunQuanta(10)
	d := p.Counters().Sub(before)
	if d.StolenCycles != m.Config().QuantumCycles*3 {
		t.Errorf("StolenCycles = %d, want %d", d.StolenCycles, m.Config().QuantumCycles*3)
	}
	if d.Insts == 0 {
		t.Error("process starved entirely")
	}
}

func TestCacheContentionDegradesCoRunner(t *testing.T) {
	// A cache-sensitive app (working set ~ LLC) must slow down measurably
	// when a streaming app co-runs. This is the core phenomenon of the
	// paper; everything else builds on it.
	sensitive := func() *ir.Module {
		mb := ir.NewModuleBuilder("sensitive")
		mb.Global("ws", 7<<18) // 1.75 MiB: nearly fills the 2 MiB LLC alone
		f := mb.Function("hot")
		f.Loop(4000, func() {
			f.Load(ir.Access{Global: "ws", Pattern: ir.Rand})
			f.Work(1)
		})
		f.Return()
		main := mb.Function("main")
		main.Loop(1<<40, func() { main.Call("hot") })
		main.Return()
		mb.SetEntry("main")
		return mb.MustBuild()
	}

	solo := New(Config{Cores: 2})
	ps, _ := solo.Attach(0, compile(t, sensitive(), false), ProcessConfig{Restart: true})
	solo.RunQuanta(2000)
	soloIPS := float64(ps.Counters().Insts)

	co := New(Config{Cores: 2})
	pc, _ := co.Attach(0, compile(t, sensitive(), false), ProcessConfig{Restart: true})
	_, err := co.Attach(1, compile(t, streamModule(t, "stream", 8<<20), false), ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	co.RunQuanta(2000)
	coIPS := float64(pc.Counters().Insts)

	qos := coIPS / soloIPS
	if qos > 0.95 {
		t.Errorf("co-location QoS = %.3f; expected measurable degradation (<0.95)", qos)
	}
	if qos < 0.05 {
		t.Errorf("co-location QoS = %.3f; implausibly catastrophic", qos)
	}
}

func TestNTHintsReduceCoRunnerPressure(t *testing.T) {
	// The streaming aggressor with NT hints must hurt the sensitive
	// co-runner less than the plain aggressor — the PC3D premise.
	sensitive := func() *ir.Module {
		mb := ir.NewModuleBuilder("sensitive")
		mb.Global("ws", 7<<18)
		f := mb.Function("hot")
		f.Loop(4000, func() {
			f.Load(ir.Access{Global: "ws", Pattern: ir.Rand})
			f.Work(1)
		})
		f.Return()
		main := mb.Function("main")
		main.Loop(1<<40, func() { main.Call("hot") })
		main.Return()
		mb.SetEntry("main")
		return mb.MustBuild()
	}
	aggressor := func(nt bool) *progbin.Binary {
		m := streamModule(t, "stream", 8<<20)
		if nt {
			for _, ld := range m.Loads() {
				ld.NT = true
			}
		}
		return compile(t, m, false)
	}
	runQoS := func(nt bool) float64 {
		mm := New(Config{Cores: 2})
		ps, _ := mm.Attach(0, compile(t, sensitive(), false), ProcessConfig{Restart: true})
		if _, err := mm.Attach(1, aggressor(nt), ProcessConfig{Restart: true}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
		mm.RunQuanta(2000)
		return float64(ps.Counters().Insts)
	}
	plain := runQoS(false)
	hinted := runQoS(true)
	if hinted <= plain*1.05 {
		t.Errorf("NT hints did not relieve pressure: sensitive insts %f (plain) vs %f (NT)", plain, hinted)
	}
}

func TestVariantInstallAndEVTDispatch(t *testing.T) {
	m := New(Config{Cores: 1})
	irm := streamModule(t, "app", 1<<20)
	bin := compile(t, irm, true)
	p, err := m.Attach(0, bin, ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	m.RunQuanta(5)

	// Build an NT variant of "hot" from the embedded IR, as the runtime
	// compiler would.
	emb, err := bin.DecodeIR()
	if err != nil {
		t.Fatalf("DecodeIR: %v", err)
	}
	for _, ld := range emb.Loads() {
		ld.NT = true
	}
	vr, err := isa.LowerVariant(bin.Program, emb, "hot", 1, p.CodeCursor())
	if err != nil {
		t.Fatalf("LowerVariant: %v", err)
	}
	if err := p.InstallVariant(vr); err != nil {
		t.Fatalf("InstallVariant: %v", err)
	}

	slot := p.EVT().SlotFor("hot")
	if slot < 0 {
		t.Fatal("hot not in EVT")
	}
	before := p.Counters()
	p.EVT().SetTarget(slot, vr.Info.Entry)
	m.RunQuanta(50)
	d := p.Counters().Sub(before)
	if d.Prefetches == 0 {
		t.Fatal("variant never executed: no prefetch instructions retired")
	}

	// Redirect back to the original: prefetches stop accumulating.
	fi, _ := bin.Program.FuncByName("hot")
	p.EVT().SetTarget(slot, fi.Entry)
	m.RunQuanta(50) // drain the in-flight variant invocation
	mid := p.Counters()
	m.RunQuanta(50)
	if p.Counters().Sub(mid).Prefetches != 0 {
		t.Error("original code still issuing prefetches after EVT revert")
	}
}

func TestInstallVariantWrongBase(t *testing.T) {
	m := New(Config{Cores: 1})
	bin := compile(t, streamModule(t, "app", 1<<20), true)
	p, _ := m.Attach(0, bin, ProcessConfig{})
	emb, _ := bin.DecodeIR()
	vr, err := isa.LowerVariant(bin.Program, emb, "hot", 1, p.CodeCursor()+10)
	if err != nil {
		t.Fatalf("LowerVariant: %v", err)
	}
	if err := p.InstallVariant(vr); err == nil {
		t.Fatal("InstallVariant accepted mismatched base PC")
	}
}

func TestFuncAtAttribution(t *testing.T) {
	m := New(Config{Cores: 1})
	bin := compile(t, streamModule(t, "app", 1<<20), true)
	p, _ := m.Attach(0, bin, ProcessConfig{Restart: true})
	m.RunQuanta(20)
	name := p.CurrentFunc()
	if name != "hot" && name != "main" {
		t.Errorf("CurrentFunc = %q, want hot or main", name)
	}
	if _, ok := p.FuncAt(-1); ok {
		t.Error("FuncAt(-1) resolved")
	}
	if _, ok := p.FuncAt(1 << 30); ok {
		t.Error("FuncAt(huge) resolved")
	}
}

func TestDBTOverlayAddsOverhead(t *testing.T) {
	bin := func() *progbin.Binary { return compile(t, streamModule(t, "app", 1<<18), false) }
	run := func(dbt *DBTConfig) (insts, cycles uint64) {
		m := New(Config{Cores: 1})
		p, _ := m.Attach(0, bin(), ProcessConfig{Restart: true, DBT: dbt})
		m.RunQuanta(500)
		return p.Counters().Insts, p.Counters().Cycles
	}
	nativeInsts, _ := run(nil)
	dbtInsts, _ := run(&DBTConfig{DirectTransferCycles: 1, IndirectTransferCycles: 30, TranslateCyclesPerSite: 200})
	if dbtInsts >= nativeInsts {
		t.Errorf("DBT overlay did not slow execution: %d vs native %d", dbtInsts, nativeInsts)
	}
	slowdown := float64(nativeInsts) / float64(dbtInsts)
	if slowdown < 1.02 || slowdown > 3 {
		t.Errorf("DBT slowdown %.2fx outside plausible range", slowdown)
	}
}

func TestClockHelpers(t *testing.T) {
	m := New(Config{Cores: 1, FreqHz: 1e6, QuantumCycles: 1000})
	m.RunQuanta(500)
	if got := m.NowSeconds(); got < 0.49 || got > 0.51 {
		t.Errorf("NowSeconds = %v, want 0.5", got)
	}
	if m.Cycles(2.0) != 2e6 {
		t.Errorf("Cycles(2.0) = %d", m.Cycles(2.0))
	}
	// RunSeconds advances at least one quantum.
	m2 := New(Config{Cores: 1})
	m2.RunSeconds(0)
	if m2.Now() == 0 {
		t.Error("RunSeconds(0) advanced nothing")
	}
}

func TestAgentTicks(t *testing.T) {
	m := New(Config{Cores: 1})
	n := 0
	m.AddAgent(AgentFunc(func(mm *Machine) { n++ }))
	m.RunQuanta(7)
	if n != 7 {
		t.Errorf("agent ticked %d times, want 7", n)
	}
}

func TestAddressStreamsDiffer(t *testing.T) {
	// Two cores running the same binary must generate disjoint address
	// streams (per-process base offset).
	m := New(Config{Cores: 2})
	b1 := compile(t, streamModule(t, "a", 1<<16), false)
	b2 := compile(t, streamModule(t, "a", 1<<16), false)
	p1, _ := m.Attach(0, b1, ProcessConfig{Restart: true})
	p2, _ := m.Attach(1, b2, ProcessConfig{Restart: true})
	m.RunQuanta(10)
	// Indirect check: both processes stream a 64 KiB buffer which fits in
	// L2; with disjoint address spaces neither sees the other's lines, so
	// both should settle to near-perfect locality.
	c1, c2 := p1.Counters(), p2.Counters()
	if c1.Loads == 0 || c2.Loads == 0 {
		t.Fatal("processes made no loads")
	}
	s1 := m.Hierarchy().CoreStats(0)
	s2 := m.Hierarchy().CoreStats(1)
	// After warmup, LLC misses should be a tiny fraction of loads.
	if s1.LLCMisses > c1.Loads/4 || s2.LLCMisses > c2.Loads/4 {
		t.Errorf("unexpected LLC traffic for L2-resident streams: %+v %+v", s1, s2)
	}
}

func TestGatedServerIdlesWithoutWork(t *testing.T) {
	mb := ir.NewModuleBuilder("server")
	mb.Global("idx", 1<<16)
	f := mb.Function("main")
	f.Loop(50, func() {
		f.Load(ir.Access{Global: "idx", Pattern: ir.Rand})
	})
	f.Return()
	mb.SetEntry("main")
	bin := compile(t, mb.MustBuild(), false)

	m := New(Config{Cores: 1})
	p, _ := m.Attach(0, bin, ProcessConfig{Gated: true})
	m.RunQuanta(10)
	if p.Counters().Completions != 0 {
		t.Fatalf("server served %d requests with no budget", p.Counters().Completions)
	}
	if p.Counters().IdleCycles == 0 {
		t.Error("idle cycles not accounted")
	}
	p.GrantWork(5)
	m.RunQuanta(10)
	if got := p.Counters().Completions; got != 5 {
		t.Errorf("served %d requests, want exactly 5", got)
	}
	if p.WorkBudget() != 0 {
		t.Errorf("budget = %d after serving, want 0", p.WorkBudget())
	}
	if p.Halted() {
		t.Error("gated server halted")
	}
	// More work arrives later: serving resumes.
	p.GrantWork(3)
	m.RunQuanta(10)
	if got := p.Counters().Completions; got != 8 {
		t.Errorf("served %d requests total, want 8", got)
	}
}

func TestGatedServerThroughputTracksGrants(t *testing.T) {
	mb := ir.NewModuleBuilder("server")
	mb.Global("idx", 1<<16)
	f := mb.Function("main")
	f.Loop(20, func() {
		f.Load(ir.Access{Global: "idx", Pattern: ir.Rand})
		f.Work(2)
	})
	f.Return()
	mb.SetEntry("main")

	m := New(Config{Cores: 1})
	p, _ := m.Attach(0, compile(t, mb.MustBuild(), false), ProcessConfig{Gated: true})
	// Grant 10 requests per quantum: far below capacity, so all are served.
	total := uint64(0)
	for i := 0; i < 100; i++ {
		p.GrantWork(10)
		total += 10
		m.RunQuanta(1)
	}
	served := p.Counters().Completions
	if served < total-10 {
		t.Errorf("served %d of %d offered requests at low load", served, total)
	}
}

func TestDeferRunsAtQuantumBoundary(t *testing.T) {
	m := New(Config{Cores: 1})
	var order []string
	m.AddAgent(AgentFunc(func(mm *Machine) {
		if !mm.InTick() {
			t.Error("InTick false during agent callback")
		}
		order = append(order, "agent1")
		mm.Defer(func() {
			order = append(order, "deferred")
			// Nested defers still run this boundary.
			mm.Defer(func() { order = append(order, "nested") })
		})
	}))
	m.AddAgent(AgentFunc(func(*Machine) { order = append(order, "agent2") }))
	m.RunQuanta(1)
	if m.InTick() {
		t.Error("InTick true between quanta")
	}
	want := []string{"agent1", "agent2", "deferred", "nested"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Outside a tick, Defer runs immediately.
	ran := false
	m.Defer(func() { ran = true })
	if !ran {
		t.Error("Defer outside a tick did not run immediately")
	}
}
