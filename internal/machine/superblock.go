package machine

import (
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/isa"
)

// The superblock engine is the fast execution path behind the pluggable
// Engine interface. It exploits three structural facts about the simulated
// ISA:
//
//  1. Decode is static. Every isa.Inst is decoded exactly once into a
//     dense, pre-resolved sbOp (operand shape, specialization of prefetch
//     pairing, EVT slot), so the hot loop never re-inspects the wide Inst
//     encoding.
//
//  2. Straight-line runs are superblocks. For every PC the decoder
//     precomputes the aggregate shape of the run from that PC to its
//     terminating control transfer: instruction/branch/load/store counts,
//     summed issue cycles, and a worst-case cycle bound. Keying superblocks
//     by *every* PC (each PC starts the suffix of its run) means a quantum
//     boundary, a branch target, or a return can land mid-run and still
//     enter fused execution immediately — and PC sampling attributes
//     mid-superblock PCs with no extra machinery, because the process PC
//     is always a real instruction address at every observation point.
//
//  3. Memory addresses are register-independent. Address generators draw
//     from per-site cursor state and the process RNG, never from register
//     values, so a superblock's accesses can be generated in one pass and
//     replayed through the cache hierarchy in one batched walk
//     (cache.Hierarchy.Replay) instead of interleaving a virtual-dispatch
//     hierarchy call into every instruction step.
//
// Bit-identity with the interp oracle is preserved by construction: a
// superblock executes fused only when its precomputed worst-case cost fits
// the remaining budget to the quantum boundary (and, while napping, to the
// next nap-window edge, which the oracle re-checks before every
// instruction). Otherwise the engine falls back to the oracle's
// single-step path until the boundary passes. Whole nap / sleep / idle /
// stolen spans are fast-forwarded in O(1) arithmetic instead of looping.
//
// Invalidation rules:
//
//   - InstallVariant grows the code image; CodeInstalled re-decodes it.
//     (Appending can also change the decoding of the previous tail
//     instruction — a trailing NT prefetch gains a successor load — so the
//     re-decode covers the whole image, which is cheap at simulated-program
//     sizes.)
//   - EVT redirects need no invalidation by design: sbCallEVT dispatches
//     through the live table on every call, exactly like the oracle, so a
//     runtime retarget or a supervisor revert takes effect at the next
//     virtualized call even when it lands mid-loop.

// sbOp is one decoded instruction: a compact, pre-resolved form of
// isa.Inst. Sequential-stream loads carry their address-generator
// parameters inline (the wide isa.Inst is ~128 bytes, so reading Gen
// through the code image would cost the exec loop a host cache line per
// instruction; here the generator shares the op's own line). The record is
// 64 bytes — one host cache line per op.
type sbOp struct {
	kind   uint8
	bin    uint8 // ir.BinKind for ALU, ir.CmpKind for Br
	nt     bool
	yIsReg bool // Br only; ALU is specialized by kind
	dst    uint16
	x      uint16
	y      uint16
	imm    int64 // immediate operand, or prefetch lead bytes
	target int32 // branch/jump/call destination PC
	aux    int32 // EVT slot for sbCallEVT
	// Seq-load generator parameters (sbLoadSeq only).
	stride uint64
	size   uint64
	gbase  uint64
	site   uint32
	_      uint32
}

// Decoded op kinds.
const (
	sbConst uint8 = iota
	sbALUImm
	sbALUReg
	sbLoad
	sbLoadSeq // sequential-stream load: cursor advance inlined
	sbStore
	sbPrefetch       // address() + hierarchy touch
	sbPrefetchLead   // addressPeek(lead) + hierarchy touch
	sbPrefetchPaired // NT hint paired with the next load: issue cost only
	sbBr
	sbJmp
	sbCall
	sbCallEVT
	sbRet
	sbHalt
)

// sbRun is the precomputed superblock starting at one PC: the aggregate
// shape of the straight-line run from that PC through its terminating
// control transfer.
type sbRun struct {
	// term is the terminator's PC, or -1 when no fused run starts here
	// (the run falls off the end of the code image, or the op is unknown).
	term int32
	// fixed is the summed issue cost of the whole run, terminator
	// included — everything except load stalls and DBT transfer overhead.
	fixed uint32
	// worst bounds the run's total cost: fixed plus every load missing to
	// memory plus the worst DBT transfer. A run executes fused only when
	// worst fits the remaining cycle budget.
	worst      uint32
	insts      uint32
	branches   uint32
	loads      uint32
	stores     uint32
	prefetches uint32
	// plain marks a run whose memory traffic is ordinary demand loads only
	// (no stores, no prefetches, nothing non-temporal): its batch replays
	// through the lean ReplayLoads walk instead of the general one.
	plain bool
}

// sbEngine executes a process by superblock. Per-process: it owns decoded
// state for exactly one code image.
type sbEngine struct {
	p      *Process
	oracle interpEngine
	ops    []sbOp
	runs   []sbRun
	gptr   []*isa.AddrGen // generic generator pointers, indexed by PC
	accs   []cache.Access // reusable batch buffer (mixed-kind runs)
	addrs  []uint64       // reusable batch buffer (plain-load runs)
	mlp    uint64
	// maxStall is the worst per-load stall (slowest hierarchy level / MLP).
	maxStall uint64
}

func newSuperblockEngine(p *Process) Engine {
	e := &sbEngine{p: p, oracle: interpEngine{p: p}, mlp: uint64(p.m.cfg.MLP)}
	e.maxStall = uint64(p.m.hier.MaxLatency()) / e.mlp
	e.decode()
	return e
}

func (e *sbEngine) Name() string { return EngineSuperblock }

// CodeInstalled re-decodes the grown image. Superblocks are keyed by PC
// and code only ever grows upward, but the old tail instruction's decoding
// can change once it has a successor (prefetch/load pairing), so the
// re-decode covers everything rather than splicing.
func (e *sbEngine) CodeInstalled(int) { e.decode() }

// decode builds the dense op array and the per-PC run aggregates in one
// backward pass: a run's aggregate is its first op plus the aggregate at
// the next PC.
func (e *sbEngine) decode() {
	p := e.p
	code := p.code
	n := len(code)
	e.ops = make([]sbOp, n)
	e.runs = make([]sbRun, n)
	// gptr holds pointers into the current code image; decode re-runs after
	// every InstallVariant, so a grown (reallocated) image never leaves
	// stale pointers behind.
	e.gptr = make([]*isa.AddrGen, n)
	var dbtWorst uint32
	if p.dbtSeen != nil {
		c := p.opts.DBT
		t := c.DirectTransferCycles
		if c.IndirectTransferCycles > t {
			t = c.IndirectTransferCycles
		}
		dbtWorst = uint32(t + c.TranslateCyclesPerSite)
	}
	for i := n - 1; i >= 0; i-- {
		in := &code[i]
		op := &e.ops[i]
		r := &e.runs[i]
		var cost, branch, loads, stores, prefetches, worstExtra uint32
		control := false
		switch in.Op {
		case isa.OpALU:
			op.dst, op.x = in.Dst, in.X
			op.bin = uint8(in.Bin)
			if in.YIsReg {
				op.kind, op.y = sbALUReg, in.YReg
			} else {
				op.kind, op.imm = sbALUImm, in.YImm
			}
			cost = costALU
		case isa.OpConst:
			op.kind, op.dst, op.imm = sbConst, in.Dst, in.YImm
			cost = costConst
		case isa.OpLoad:
			op.kind, op.dst, op.nt = sbLoad, in.Dst, in.NT
			e.gptr[i] = &in.Gen
			if in.Gen.Pattern == ir.Seq {
				// The dominant pattern gets its cursor advance inlined in
				// the exec loop instead of a call into address(), reading
				// the generator parameters pre-copied into the op itself.
				op.kind = sbLoadSeq
				op.stride = in.Gen.Stride
				op.size = in.Gen.Size
				op.gbase = in.Gen.Base
				op.site = uint32(in.Gen.Site)
			}
			cost, loads = costLoadBase, 1
			worstExtra = uint32(e.maxStall)
		case isa.OpStore:
			op.kind, op.nt = sbStore, in.NT
			e.gptr[i] = &in.Gen
			cost, stores = costStore, 1
		case isa.OpPrefetch:
			// Mirrors the oracle's case order: lead prefetches first, then
			// the NT hint paired with its following same-site load (issue
			// cost only — the load itself carries the NT fill).
			switch {
			case in.Lead != 0:
				op.kind, op.imm = sbPrefetchLead, in.Lead
			case in.NT && i+1 < n && code[i+1].Op == isa.OpLoad && code[i+1].Gen.Site == in.Gen.Site:
				op.kind = sbPrefetchPaired
			default:
				op.kind = sbPrefetch
			}
			op.nt = in.NT
			e.gptr[i] = &in.Gen
			cost, prefetches = costPrefetch, 1
		case isa.OpBr:
			op.kind, op.x, op.bin, op.target = sbBr, in.X, uint8(in.Cmp), int32(in.Target)
			if in.YIsReg {
				op.yIsReg, op.y = true, in.YReg
			} else {
				op.imm = in.YImm
			}
			cost, branch, control = costBr, 1, true
		case isa.OpJmp:
			op.kind, op.target = sbJmp, int32(in.Target)
			cost, branch, control = costJmp, 1, true
		case isa.OpCall:
			op.kind, op.target = sbCall, int32(in.Target)
			cost, branch, control = costCall, 1, true
		case isa.OpCallEVT:
			op.kind, op.aux = sbCallEVT, int32(in.EVTSlot)
			cost, branch, control = costCallEVT, 1, true
		case isa.OpRet:
			op.kind = sbRet
			cost, branch, control = costRet, 1, true
		case isa.OpHalt:
			op.kind = sbHalt
			control = true // issue-free: the oracle charges no cycles
			// A zero-cost terminator would let a run end exactly on the
			// budget limit, executing the halt one step earlier than the
			// oracle's pre-instruction boundary check allows. Pad its
			// worst-case by one so every prefix stays strictly inside.
			worstExtra = 1
		default:
			// Unknown opcode: never fuse, so the step path reports it with
			// the oracle's panic.
			r.term = -1
			continue
		}
		if control {
			r.term = int32(i)
			r.fixed = cost
			r.worst = cost + worstExtra + dbtWorst
			r.insts = 1
			r.branches = branch
			r.plain = true // a bare terminator has no memory traffic
			continue
		}
		if i+1 >= n || e.runs[i+1].term < 0 {
			// The run falls off the end of the image; executing past it
			// would be the oracle's out-of-range panic. Never fuse.
			r.term = -1
			continue
		}
		next := &e.runs[i+1]
		r.term = next.term
		r.fixed = next.fixed + cost
		r.worst = next.worst + cost + worstExtra
		r.insts = next.insts + 1
		r.branches = next.branches + branch
		r.loads = next.loads + loads
		r.stores = next.stores + stores
		r.prefetches = next.prefetches + prefetches
		switch op.kind {
		case sbConst, sbALUImm, sbALUReg:
			r.plain = next.plain
		case sbLoad, sbLoadSeq:
			r.plain = next.plain && !op.nt
		default: // stores, prefetches: general replay
			r.plain = false
		}
	}
}

// RunUntil advances the process to the quantum boundary: O(1) span
// fast-forwards for non-executing states, fused superblocks while the
// worst-case budget holds, oracle single-steps across the boundary zone.
func (e *sbEngine) RunUntil(until uint64) {
	p := e.p
	if p.trace != nil {
		// Per-instruction tracing observes every (cycle, PC) pair — the
		// exact thing fusion elides. Trace runs use the oracle loop.
		e.oracle.RunUntil(until)
		return
	}
	napWindow := p.m.cfg.NapWindowCycles
	for p.ctr.Cycles < until {
		if p.halted {
			p.ctr.Cycles = until
			return
		}
		// Forced sleep (flux probe): one arithmetic step per span.
		if p.sleepUntil > p.ctr.Cycles {
			end := min64(p.sleepUntil, until)
			p.ctr.SleepCycles += end - p.ctr.Cycles
			p.ctr.Cycles = end
			continue
		}
		// Stolen cycles (same-core runtime compiler): one step per span.
		if p.stealPending > 0 {
			take := min64(p.stealPending, until-p.ctr.Cycles)
			p.stealPending -= take
			p.ctr.StolenCycles += take
			p.ctr.Cycles += take
			continue
		}
		// Gated server with an empty budget: idle to the boundary.
		if p.opts.Gated && p.workBudget == 0 {
			p.ctr.IdleCycles += until - p.ctr.Cycles
			p.ctr.Cycles = until
			continue
		}
		limit := until
		if p.napIntensity > 0 {
			if p.napIntensity >= 1 {
				// Fully napped: the entire remaining span is nap. One step
				// instead of one iteration per nap window.
				p.ctr.NapCycles += until - p.ctr.Cycles
				p.ctr.Cycles = until
				continue
			}
			wStart := p.ctr.Cycles / napWindow * napWindow
			napEnd := wStart + uint64(p.napIntensity*float64(napWindow))
			if p.ctr.Cycles < napEnd {
				end := min64(napEnd, until)
				p.ctr.NapCycles += end - p.ctr.Cycles
				p.ctr.Cycles = end
				continue
			}
			// The oracle re-checks the duty cycle before every instruction,
			// so a fused run must not cross into the next window's nap
			// region: cap the fused budget at the window edge and
			// single-step across it.
			limit = min64(until, wStart+napWindow)
		}
		pc := p.pc
		if uint(pc) < uint(len(e.runs)) {
			if r := &e.runs[pc]; r.term >= 0 && p.ctr.Cycles+uint64(r.worst) <= limit {
				e.runChain(pc, r, limit)
				continue
			}
		}
		p.step(p.m.hier, e.mlp)
	}
}

// runChain executes superblocks back to back while the worst-case budget
// holds, deferring plain-run cache replay across blocks: register effects
// and address generation settle block by block (addresses are register-
// independent, so no later op ever needs an earlier stall resolved), while
// the batched hierarchy walk for queued loads happens once per chain
// instead of once per block. The budget check charges every queued load at
// the worst per-load stall — the same bound decode folded into r.worst —
// so each fused block still provably finishes at or before the cycle the
// oracle's per-instruction boundary check allows, and the flushed total is
// the same sum the per-block replay would have produced. Only a completion
// or a halt can change the caller's scheduling state (halted flag, gated
// work budget) — runTerm reports those — so transfers re-check nothing but
// the budget.
func (e *sbEngine) runChain(pc int, r *sbRun, limit uint64) {
	p := e.p
	hier := p.m.hier
	addrs := e.addrs[:0]
	var pending uint64 // worst-case stall bound for queued, unreplayed loads
	for {
		var cont bool
		if r.plain {
			term := int(r.term)
			addrs = e.plainBody(pc, term, addrs)
			pending += uint64(r.loads) * e.maxStall
			// A plain run carries only ordinary loads (stores, prefetches
			// and NT traffic all force the mixed path), so the remaining
			// counters settle straight from the aggregates; the deferred
			// load stall lands on Cycles at the flush below.
			p.ctr.Cycles += uint64(r.fixed)
			p.ctr.Insts += uint64(r.insts)
			p.ctr.Branches += uint64(r.branches)
			p.ctr.Loads += uint64(r.loads)
			cont = e.runTerm(term)
		} else {
			// Mixed runs interleave stores and prefetches with loads, so
			// ordering matters: flush the queued loads first, then let the
			// block replay its own traffic in program order.
			if len(addrs) > 0 {
				p.ctr.Cycles += hier.ReplayLoads(p.core, addrs, e.mlp)
				addrs = addrs[:0]
				pending = 0
			}
			cont = e.runBlock(pc, r)
		}
		if !cont {
			break
		}
		pc = p.pc
		if uint(pc) >= uint(len(e.runs)) {
			break
		}
		r = &e.runs[pc]
		if r.term < 0 || p.ctr.Cycles+pending+uint64(r.worst) > limit {
			break
		}
	}
	e.addrs = addrs[:0] // keep the grown buffer
	if len(addrs) > 0 {
		p.ctr.Cycles += hier.ReplayLoads(p.core, addrs, e.mlp)
	}
}

// plainBody executes the straight-line body of a plain-load run: register
// effects and address generation in one pass, each load's address appended
// to addrs for a batched replay the caller schedules.
func (e *sbEngine) plainBody(pc, term int, addrs []uint64) []uint64 {
	p := e.p
	regs := p.regs
	sites := p.sites
	base := p.base
	// Slice the decoded ops to exactly the run body: the compiler then
	// drops the per-op bounds checks.
	body := e.ops[pc:term:term]
	for j := range body {
		op := &body[j]
		switch op.kind {
		case sbALUImm:
			regs[op.dst] = alu(ir.BinKind(op.bin), regs[op.x], op.imm)
		case sbALUReg:
			regs[op.dst] = alu(ir.BinKind(op.bin), regs[op.x], regs[op.y])
		case sbConst:
			regs[op.dst] = op.imm
		case sbLoadSeq:
			// address()'s ir.Seq case, inlined: advance the site
			// cursor by the stride, wrapping at the region size.
			st := &sites[op.site]
			off := st.cursor
			st.cursor += op.stride
			if st.cursor >= op.size {
				st.cursor = 0
			}
			addr := base + op.gbase + off
			addrs = append(addrs, addr)
			regs[op.dst] = int64(addr)
		case sbLoad:
			addr := p.address(e.gptr[pc+j])
			addrs = append(addrs, addr)
			regs[op.dst] = int64(addr)
		}
	}
	return addrs
}

// runBlock executes a whole mixed-traffic superblock fused: register
// effects and address generation in one pass, cache accesses replayed in
// program order through one batched hierarchy walk, counters settled from
// the precomputed aggregates, then the terminator. The return value is
// runTerm's: false after a completion or a halt.
func (e *sbEngine) runBlock(pc int, r *sbRun) bool {
	p := e.p
	regs := p.regs
	sites := p.sites
	base := p.base
	term := int(r.term)
	body := e.ops[pc:term:term]
	var stall uint64
	{
		accs := e.accs[:0]
		for j := range body {
			op := &body[j]
			switch op.kind {
			case sbALUImm:
				regs[op.dst] = alu(ir.BinKind(op.bin), regs[op.x], op.imm)
			case sbALUReg:
				regs[op.dst] = alu(ir.BinKind(op.bin), regs[op.x], regs[op.y])
			case sbConst:
				regs[op.dst] = op.imm
			case sbLoadSeq:
				st := &sites[op.site]
				off := st.cursor
				st.cursor += op.stride
				if st.cursor >= op.size {
					st.cursor = 0
				}
				addr := base + op.gbase + off
				accs = append(accs, cache.Access{Addr: addr, Kind: cache.AccessLoad, NT: op.nt})
				regs[op.dst] = int64(addr)
			case sbLoad:
				addr := p.address(e.gptr[pc+j])
				accs = append(accs, cache.Access{Addr: addr, Kind: cache.AccessLoad, NT: op.nt})
				regs[op.dst] = int64(addr)
			case sbStore:
				accs = append(accs, cache.Access{Addr: p.address(e.gptr[pc+j]), Kind: cache.AccessStore, NT: op.nt})
			case sbPrefetch:
				accs = append(accs, cache.Access{Addr: p.address(e.gptr[pc+j]), Kind: cache.AccessPrefetch, NT: op.nt})
			case sbPrefetchLead:
				accs = append(accs, cache.Access{Addr: p.addressPeek(e.gptr[pc+j], uint64(op.imm)), Kind: cache.AccessPrefetch, NT: op.nt})
			case sbPrefetchPaired:
				// Issue cost only; already in the aggregate.
			}
		}
		e.accs = accs // keep the grown buffer
		if len(accs) > 0 {
			stall = p.m.hier.Replay(p.core, accs, e.mlp)
		}
	}
	p.ctr.Cycles += uint64(r.fixed) + stall
	p.ctr.Insts += uint64(r.insts)
	p.ctr.Branches += uint64(r.branches)
	p.ctr.Loads += uint64(r.loads)
	p.ctr.Stores += uint64(r.stores)
	p.ctr.Prefetches += uint64(r.prefetches)
	return e.runTerm(term)
}

// runTerm executes the terminator at term. Mirror the oracle's PC
// discipline: by the time the terminator executes, the PC has advanced to
// it (a halt or a final-return leaves the PC parked there). Returns false
// after a completion or a halt — the only outcomes that can change the
// caller's scheduling state (halted flag, gated work budget).
func (e *sbEngine) runTerm(term int) bool {
	p := e.p
	regs := p.regs
	p.pc = term
	op := &e.ops[term]
	switch op.kind {
	case sbBr:
		y := op.imm
		if op.yIsReg {
			y = regs[op.y]
		}
		if cmp(ir.CmpKind(op.bin), regs[op.x], y) {
			p.transfer(int(op.target), false)
		} else {
			p.pc = term + 1
		}
	case sbJmp:
		p.transfer(int(op.target), false)
	case sbCall:
		p.pushFrame(term + 1)
		p.transfer(int(op.target), false)
	case sbCallEVT:
		// Dispatch reads the live EVT on every call — redirects and
		// reverts take effect at the very next virtualized call, with
		// nothing to invalidate.
		p.pushFrame(term + 1)
		p.transfer(p.evt.Target(int(op.aux)), true)
	case sbRet:
		if len(p.frames) == 0 {
			p.ctr.Completions++
			switch {
			case p.opts.Gated:
				if p.workBudget > 0 {
					p.workBudget--
				}
				p.reset()
			case p.opts.Restart:
				p.reset()
			default:
				p.halted = true
			}
			// A completion may have halted the process or drained the
			// gated budget: the caller must re-run its scheduling checks.
			return false
		}
		f := p.frames[len(p.frames)-1]
		p.frames = p.frames[:len(p.frames)-1]
		p.regPool = append(p.regPool, p.regs)
		p.regs = f.regs
		p.transfer(f.retPC, true)
	case sbHalt:
		p.halted = true
		return false
	}
	return true
}
