package machine_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// lockstep runs one binary under both engines on separate machines and
// compares the full architectural surface at every quantum boundary:
// counters, the sampled PC, and the halt flag. drive, when non-nil, is
// applied to both processes before each quantum (load grants, nap levels,
// sleeps, steals), so scenario tests exercise every scheduling state.
func lockstep(t *testing.T, name string, cfg machine.ProcessConfig, quanta int, drive func(q int, p *machine.Process)) {
	t.Helper()
	type run struct {
		m *machine.Machine
		p *machine.Process
	}
	var runs [2]run
	for i, eng := range []string{machine.EngineInterp, machine.EngineSuperblock} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown app %q", name)
		}
		bin, err := spec.CompilePlain()
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		m := machine.New(machine.Config{Cores: 1, Engine: eng})
		p, err := m.Attach(0, bin, cfg)
		if err != nil {
			t.Fatalf("attach %s under %s: %v", name, eng, err)
		}
		runs[i] = run{m: m, p: p}
	}
	for q := 0; q < quanta; q++ {
		for _, r := range runs {
			if drive != nil {
				drive(q, r.p)
			}
			r.m.RunQuanta(1)
		}
		a, b := runs[0].p, runs[1].p
		if ca, cb := a.Counters(), b.Counters(); ca != cb {
			t.Fatalf("%s: counters diverged at quantum %d:\n  interp:     %+v\n  superblock: %+v", name, q, cb, ca)
		}
		if a.CurrentPC() != b.CurrentPC() {
			t.Fatalf("%s: PC diverged at quantum %d: interp %d, superblock %d", name, q, a.CurrentPC(), b.CurrentPC())
		}
		if a.Halted() != b.Halted() {
			t.Fatalf("%s: halt state diverged at quantum %d", name, q)
		}
	}
}

// TestEngineDifferentialCatalog holds the superblock engine to the interp
// oracle across the entire application catalog: equal counters and equal
// sampled PCs at every quantum boundary. This is the tentpole's
// bit-identity contract.
func TestEngineDifferentialCatalog(t *testing.T) {
	for _, spec := range workload.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg := spec.ProcessConfig()
			var drive func(int, *machine.Process)
			if cfg.Gated {
				// Same deterministic request schedule on both sides.
				drive = func(q int, p *machine.Process) {
					if q%4 == 0 {
						p.GrantWork(3)
					}
				}
			}
			lockstep(t, spec.Name, cfg, 120, drive)
		})
	}
}

// TestEngineDifferentialScheduling drives the scheduling states the fused
// path fast-forwards — partial and full napping, forced sleep, stolen
// cycles, gated idling — through both engines in lockstep.
func TestEngineDifferentialScheduling(t *testing.T) {
	lockstep(t, "libquantum", machine.ProcessConfig{Restart: true}, 140, func(q int, p *machine.Process) {
		switch q {
		case 10:
			p.SetNapIntensity(0.3)
		case 40:
			p.SetNapIntensity(1)
		case 60:
			p.SetNapIntensity(0)
		case 70:
			p.ForceSleep(2500)
		case 90:
			p.StealCycles(1500)
		case 100:
			p.SetNapIntensity(0.65)
		case 120:
			p.SetNapIntensity(0)
		}
	})
}

// TestEngineDifferentialDBT overlays the binary-translation cost model:
// per-transfer dispatch costs and first-visit translation costs must land
// on the same cycles under both engines.
func TestEngineDifferentialDBT(t *testing.T) {
	lockstep(t, "libquantum", machine.ProcessConfig{
		Restart: true,
		DBT: &machine.DBTConfig{
			DirectTransferCycles:   2,
			IndirectTransferCycles: 14,
			TranslateCyclesPerSite: 150,
		},
	}, 100, nil)
}
