// Package machine simulates the multicore server protean binaries run on.
//
// It plays the role of the paper's quad-core AMD testbed: each core executes
// one attached program's simulated instructions against a shared cache
// hierarchy, with cycle-level accounting. The machine provides everything
// the protean runtime observes and manipulates on a real system:
//
//   - per-core hardware performance counters (instructions, branches,
//     cycles, shared-LLC misses) for introspection and extrospection,
//   - the current program counter for ptrace-style PC sampling,
//   - a live Edge Virtualization Table per process plus a code cache into
//     which runtime-generated variants are installed,
//   - napping duty cycles and forced sleeps (the flux QoS probe),
//   - a cycle-stealing hook that models a runtime compiler sharing the
//     host's core.
//
// Time advances in fixed quanta. Within a quantum each core runs until its
// local cycle clock reaches the quantum boundary; cross-core cache
// contention is therefore interleaved at quantum granularity. Agents
// (runtimes, monitors, load generators) are invoked at every quantum
// boundary, in simulated time — the paper's "asynchronous" runtime maps to
// agents whose work consumes simulated cycles while the host keeps running.
//
// The simulation clock is deliberately slow (default 10 MHz): all of the
// paper's metrics are ratios (normalized IPS, normalized BPS, fractions of
// server cycles), which are frequency-invariant, and a slow clock keeps
// multi-"second" experiments cheap to simulate.
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/progbin"
	"repro/internal/telemetry"
)

// Config sizes the machine.
type Config struct {
	// Cores is the number of cores (default 4, as in the paper's testbed).
	Cores int
	// FreqHz is the simulation clock (default 10e6).
	FreqHz float64
	// QuantumCycles is the scheduling/contention granularity (default 1 ms
	// of simulated time).
	QuantumCycles uint64
	// Hierarchy configures the caches; zero value uses
	// cache.DefaultHierarchy(Cores).
	Hierarchy cache.HierarchyConfig
	// MLP divides memory stall cycles, modelling overlapping misses
	// (default 4).
	MLP int
	// NapWindowCycles is the napping duty-cycle window (default 5 ms of
	// simulated time).
	NapWindowCycles uint64
	// Seed perturbs per-process address-stream randomness.
	Seed int64
	// Engine selects the execution engine for every attached process:
	// EngineSuperblock (the default — decoded superblocks, batched cache
	// walks, O(1) idle fast-forwarding) or EngineInterp (the
	// one-instruction-at-a-time semantics oracle). Both are bit-identical;
	// Attach rejects unknown names.
	Engine string
	// Telemetry receives machine-level instrumentation (quanta counter,
	// nap-state transition events under the "machine" subsystem). Nil
	// disables it at no cost. The registry must be owned by this machine:
	// it is written from the simulation goroutine without locks.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.FreqHz == 0 {
		c.FreqHz = 10e6
	}
	if c.QuantumCycles == 0 {
		c.QuantumCycles = uint64(c.FreqHz / 1000) // 1 ms
	}
	if c.Hierarchy.Cores == 0 {
		c.Hierarchy = cache.DefaultHierarchy(c.Cores)
	}
	if c.MLP == 0 {
		c.MLP = 4
	}
	if c.NapWindowCycles == 0 {
		c.NapWindowCycles = 5 * uint64(c.FreqHz/1000) // 5 ms
	}
	if c.Engine == "" {
		c.Engine = DefaultEngine
	}
	return c
}

// Agent is invoked at every quantum boundary. The protean runtime, QoS
// monitors, and load generators are agents.
type Agent interface {
	Tick(m *Machine)
}

// AgentFunc adapts a function to Agent.
type AgentFunc func(m *Machine)

// Tick calls f.
func (f AgentFunc) Tick(m *Machine) { f(m) }

// Machine is the simulated server. Not safe for concurrent use: agents run
// interleaved with execution on the caller's goroutine, which is what makes
// cycle accounting deterministic.
type Machine struct {
	cfg      Config
	hier     *cache.Hierarchy
	procs    []*Process // indexed by core; nil = idle core
	agents   []Agent
	now      uint64 // global cycles
	inTick   bool
	deferred []func()

	tel     *telemetry.Registry
	cQuanta *telemetry.Counter
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:   cfg,
		hier:  cache.NewHierarchy(cfg.Hierarchy),
		procs: make([]*Process, cfg.Cores),
		tel:   cfg.Telemetry,
	}
	m.cQuanta = m.tel.Counter("machine", "quanta_total", "scheduling quanta executed")
	return m
}

// Telemetry returns the registry this machine reports into (nil when
// uninstrumented). Subsystems attached to the machine share it.
func (m *Machine) Telemetry() *telemetry.Registry { return m.tel }

// Config returns the effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// Hierarchy exposes the cache model.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Now returns the global simulated cycle count.
func (m *Machine) Now() uint64 { return m.now }

// NowSeconds returns the global simulated time in seconds.
func (m *Machine) NowSeconds() float64 { return float64(m.now) / m.cfg.FreqHz }

// Cycles converts a simulated duration in seconds to cycles.
func (m *Machine) Cycles(seconds float64) uint64 {
	return uint64(seconds * m.cfg.FreqHz)
}

// Attach loads a binary onto a core and returns the process. ProcessConfig
// holds per-process knobs (restart-on-exit, request gating, DBT overlay).
// Attach fails on an out-of-range or occupied core and on an unknown
// Config.Engine.
func (m *Machine) Attach(core int, bin *progbin.Binary, cfg ProcessConfig) (*Process, error) {
	if core < 0 || core >= m.cfg.Cores {
		return nil, fmt.Errorf("machine: core %d out of range [0,%d)", core, m.cfg.Cores)
	}
	if m.procs[core] != nil {
		return nil, fmt.Errorf("machine: core %d already running %q", core, m.procs[core].Name())
	}
	p, err := newProcess(m, core, bin, cfg)
	if err != nil {
		return nil, err
	}
	m.procs[core] = p
	return p, nil
}

// Detach removes the process on core (between quanta only) and flushes the
// core's private caches. Out-of-range cores are a no-op, mirroring
// Attach's bounds check (detaching an already-empty core is likewise a
// no-op).
func (m *Machine) Detach(core int) {
	if core < 0 || core >= m.cfg.Cores {
		return
	}
	m.procs[core] = nil
	m.hier.FlushCore(core)
}

// Process returns the process on core, or nil.
func (m *Machine) Process(core int) *Process { return m.procs[core] }

// AddAgent registers an agent invoked at each quantum boundary, in
// registration order.
func (m *Machine) AddAgent(a Agent) { m.agents = append(m.agents, a) }

// InTick reports whether the machine is currently delivering quantum-
// boundary agent callbacks. Code that must not run concurrently with agents
// (e.g. shutting down an agentloop policy) checks this and uses Defer.
func (m *Machine) InTick() bool { return m.inTick }

// Defer schedules fn to run on the machine's goroutine after the current
// quantum's agent callbacks complete. Called outside a tick, fn runs
// immediately.
func (m *Machine) Defer(fn func()) {
	if !m.inTick {
		fn()
		return
	}
	m.deferred = append(m.deferred, fn)
}

// RunQuanta advances the machine n quanta.
func (m *Machine) RunQuanta(n int) {
	m.cQuanta.Add(uint64(n))
	for i := 0; i < n; i++ {
		m.now += m.cfg.QuantumCycles
		for _, p := range m.procs {
			if p != nil {
				p.eng.RunUntil(m.now)
			}
		}
		m.inTick = true
		for _, a := range m.agents {
			a.Tick(m)
		}
		m.inTick = false
		// Deferred functions may defer more work (still this boundary).
		for len(m.deferred) > 0 {
			d := m.deferred
			m.deferred = nil
			for _, fn := range d {
				fn()
			}
		}
	}
}

// RunSeconds advances the machine by a simulated duration. Time advances
// in whole scheduling quanta (QuantumCycles, default 1 ms of simulated
// time): the duration is rounded to the nearest quantum, with a minimum of
// one. It previously truncated, so a float artifact like 0.35 s × 1000
// quanta/s = 349.999… silently dropped a quantum.
func (m *Machine) RunSeconds(seconds float64) {
	quanta := int(seconds*m.cfg.FreqHz/float64(m.cfg.QuantumCycles) + 0.5)
	if quanta < 1 {
		quanta = 1
	}
	m.RunQuanta(quanta)
}
