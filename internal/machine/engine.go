package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Engine is one execution strategy for an attached process. The machine
// constructs an engine per process (engines may hold per-process decoded
// state) and drives it once per scheduling quantum.
//
// Every engine must be a bit-identical drop-in for the semantics oracle
// (EngineInterp): counters, the PC observed at quantum boundaries, cache
// hierarchy state and telemetry must match instruction for instruction.
// The interp-vs-superblock differential tests enforce this over the whole
// workload catalog.
//
// Engines must never cache an EVT dispatch target across calls: the live
// Edge Virtualization Table is redirected by the protean runtime between
// (and, by the paper's contract, even during) quanta, and a redirect must
// take effect at the very next virtualized call.
type Engine interface {
	// Name identifies the engine (one of EngineNames).
	Name() string
	// RunUntil advances the process's local cycle clock to the global
	// quantum boundary, executing instructions, naps, forced sleeps,
	// stolen cycles and gated idling exactly as the interpreter does.
	RunUntil(until uint64)
	// CodeInstalled notifies the engine that the process's code image
	// grew from oldLen instructions (InstallVariant appended a variant).
	// Engines with decoded state must invalidate or extend anything
	// derived from the old image — including state at the old tail, whose
	// decoding may change once it gains a successor instruction.
	CodeInstalled(oldLen int)
}

// Engine names accepted by Config.Engine.
const (
	// EngineInterp is the one-instruction-at-a-time reference interpreter,
	// the semantics oracle every other engine is differentially tested
	// against.
	EngineInterp = "interp"
	// EngineSuperblock is the fast engine: it decodes the instruction
	// stream once into dense pre-resolved ops, fuses straight-line runs
	// into superblocks with precomputed instruction/branch/memory counts
	// and aggregate issue cycles, replays each superblock's cache accesses
	// through the hierarchy in one batched walk, and fast-forwards whole
	// nap/sleep/idle/stolen spans in O(1).
	EngineSuperblock = "superblock"
)

// DefaultEngine is used when Config.Engine is empty. The superblock engine
// is the default: the differential gates pin it bit-identical to interp.
const DefaultEngine = EngineSuperblock

// engineFactories maps engine names to per-process constructors.
var engineFactories = map[string]func(p *Process) Engine{
	EngineInterp:     func(p *Process) Engine { return &interpEngine{p: p} },
	EngineSuperblock: func(p *Process) Engine { return newSuperblockEngine(p) },
}

// EngineNames lists the selectable engines, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineFactories))
	for n := range engineFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newEngine instantiates the named engine for p ("" = DefaultEngine).
func newEngine(name string, p *Process) (Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	f, ok := engineFactories[name]
	if !ok {
		return nil, fmt.Errorf("machine: unknown engine %q (have %s)", name, strings.Join(EngineNames(), ", "))
	}
	return f(p), nil
}
