package machine

// interpEngine is the reference execution engine: the original
// one-instruction-at-a-time interpreter. It is the semantics oracle —
// every other engine is differentially tested against it — and stays
// deliberately simple: no decoded state, no batching, nothing to
// invalidate.
type interpEngine struct{ p *Process }

func (e *interpEngine) Name() string { return EngineInterp }

// CodeInstalled is a no-op: the interpreter reads the live code image on
// every step, so a grown image needs no invalidation.
func (e *interpEngine) CodeInstalled(int) {}

// RunUntil advances the process's local clock to the global quantum
// boundary, executing instructions, naps, sleeps and stolen cycles.
func (e *interpEngine) RunUntil(until uint64) {
	p := e.p
	napWindow := p.m.cfg.NapWindowCycles
	mlp := uint64(p.m.cfg.MLP)
	hier := p.m.hier
	for p.ctr.Cycles < until {
		if p.halted {
			p.ctr.Cycles = until
			return
		}
		// Forced sleep has priority (the flux probe stops even napping
		// processes fully).
		if p.sleepUntil > p.ctr.Cycles {
			end := min64(p.sleepUntil, until)
			p.ctr.SleepCycles += end - p.ctr.Cycles
			p.ctr.Cycles = end
			continue
		}
		// Stolen cycles (same-core runtime compiler).
		if p.stealPending > 0 {
			take := min64(p.stealPending, until-p.ctr.Cycles)
			p.stealPending -= take
			p.ctr.StolenCycles += take
			p.ctr.Cycles += take
			continue
		}
		// A gated server with no pending requests idles until work arrives.
		if p.opts.Gated && p.workBudget == 0 {
			p.ctr.IdleCycles += until - p.ctr.Cycles
			p.ctr.Cycles = until
			continue
		}
		// Napping duty cycle: sleep the first napIntensity fraction of
		// each window.
		if p.napIntensity > 0 {
			wStart := p.ctr.Cycles / napWindow * napWindow
			napEnd := wStart + uint64(p.napIntensity*float64(napWindow))
			if p.ctr.Cycles < napEnd {
				end := min64(napEnd, until)
				p.ctr.NapCycles += end - p.ctr.Cycles
				p.ctr.Cycles = end
				continue
			}
		}
		p.step(hier, mlp)
	}
}
