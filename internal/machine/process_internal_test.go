package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/isa"
)

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		op   ir.BinKind
		x, y int64
		want int64
	}{
		{ir.Add, 3, 4, 7},
		{ir.Sub, 3, 4, -1},
		{ir.Mul, 3, 4, 12},
		{ir.Div, 12, 4, 3},
		{ir.Div, 12, 0, 0}, // division by zero yields 0, never traps
		{ir.And, 0b1100, 0b1010, 0b1000},
		{ir.Or, 0b1100, 0b1010, 0b1110},
		{ir.Xor, 0b1100, 0b1010, 0b0110},
		{ir.Shl, 1, 4, 16},
		{ir.Shr, 16, 4, 1},
		{ir.Shr, -1, 1, int64(^uint64(0) >> 1)}, // logical shift
		{ir.Shl, 1, 64, 1},                      // shift amount masked to 6 bits
	}
	for _, tc := range cases {
		if got := alu(tc.op, tc.x, tc.y); got != tc.want {
			t.Errorf("alu(%v, %d, %d) = %d, want %d", tc.op, tc.x, tc.y, got, tc.want)
		}
	}
	if got := alu(ir.BinKind(99), 1, 2); got != 0 {
		t.Errorf("unknown op = %d, want 0", got)
	}
}

func TestCmpSemantics(t *testing.T) {
	cases := []struct {
		op   ir.CmpKind
		x, y int64
		want bool
	}{
		{ir.Eq, 3, 3, true}, {ir.Eq, 3, 4, false},
		{ir.Ne, 3, 4, true}, {ir.Ne, 3, 3, false},
		{ir.Lt, 3, 4, true}, {ir.Lt, 4, 4, false},
		{ir.Le, 4, 4, true}, {ir.Le, 5, 4, false},
		{ir.Gt, 5, 4, true}, {ir.Gt, 4, 4, false},
		{ir.Ge, 4, 4, true}, {ir.Ge, 3, 4, false},
	}
	for _, tc := range cases {
		if got := cmp(tc.op, tc.x, tc.y); got != tc.want {
			t.Errorf("cmp(%v, %d, %d) = %v, want %v", tc.op, tc.x, tc.y, got, tc.want)
		}
	}
	if cmp(ir.CmpKind(99), 1, 2) {
		t.Error("unknown comparison should be false")
	}
}

// Property: cmp pairs are complementary (Lt ↔ Ge, Le ↔ Gt, Eq ↔ Ne).
func TestCmpComplements(t *testing.T) {
	prop := func(x, y int64) bool {
		return cmp(ir.Lt, x, y) != cmp(ir.Ge, x, y) &&
			cmp(ir.Le, x, y) != cmp(ir.Gt, x, y) &&
			cmp(ir.Eq, x, y) != cmp(ir.Ne, x, y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitmix64(t *testing.T) {
	// Deterministic, non-trivially distributed.
	a, b := splitmix64(1), splitmix64(2)
	if a == b {
		t.Error("splitmix64 collides on adjacent inputs")
	}
	if splitmix64(1) != a {
		t.Error("splitmix64 not deterministic")
	}
	// Bit spread: the outputs of 0..999 should cover both halves of the
	// word in every byte position.
	var orAll, andAll uint64 = 0, ^uint64(0)
	for i := uint64(0); i < 1000; i++ {
		v := splitmix64(i)
		orAll |= v
		andAll &= v
	}
	if orAll != ^uint64(0) {
		t.Errorf("some bit never set: or=%x", orAll)
	}
	if andAll != 0 {
		t.Errorf("some bit always set: and=%x", andAll)
	}
}

// addrProc builds a process whose address streams can be inspected.
func addrProc(t *testing.T) *Process {
	t.Helper()
	mb := ir.NewModuleBuilder("addr")
	mb.Global("g", 1<<20)
	f := mb.Function("main")
	f.Return()
	mb.SetEntry("main")
	bin := compile(t, mb.MustBuild(), false)
	m := New(Config{Cores: 1})
	p, err := m.Attach(0, bin, ProcessConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAddressPatterns(t *testing.T) {
	p := addrProc(t)
	p.sites = make([]siteState, 4)
	size := uint64(1 << 16)

	seq := isa.AddrGen{Base: 0x1000, Size: size, Pattern: ir.Seq, Stride: 64, Site: 0}
	a1 := p.address(&seq)
	a2 := p.address(&seq)
	if a2 != a1+64 {
		t.Errorf("Seq: %x then %x, want +64", a1, a2)
	}
	// Wrap-around.
	p.sites[0].cursor = size - 64
	aw := p.address(&seq)
	if aw != p.base+0x1000+size-64 {
		t.Errorf("Seq at end: %x", aw)
	}
	if p.sites[0].cursor != 0 {
		t.Errorf("Seq cursor did not wrap: %d", p.sites[0].cursor)
	}

	rnd := isa.AddrGen{Base: 0x1000, Size: size, Pattern: ir.Rand, Site: 1}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		a := p.address(&rnd)
		if a < p.base+0x1000 || a >= p.base+0x1000+size {
			t.Fatalf("Rand out of region: %x", a)
		}
		if a%8 != 0 {
			t.Fatalf("Rand not 8-aligned: %x", a)
		}
		seen[a] = true
	}
	if len(seen) < 50 {
		t.Errorf("Rand produced only %d distinct addresses in 100 draws", len(seen))
	}

	chase := isa.AddrGen{Base: 0x1000, Size: size, Pattern: ir.Chase, Site: 2}
	c1 := p.address(&chase)
	c2 := p.address(&chase)
	if c1 == c2 {
		t.Error("Chase did not advance")
	}
	// Chase is deterministic given cursor state.
	p.sites[2].cursor = 0
	d1 := p.address(&chase)
	p.sites[2].cursor = 0
	d2 := p.address(&chase)
	if d1 != d2 {
		t.Error("Chase not deterministic from equal state")
	}

	hot := isa.AddrGen{Base: 0x1000, Size: size, Pattern: ir.Hot, HotBytes: 4096, Site: 3}
	inHot := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		a := p.address(&hot) - p.base - 0x1000
		if a < 4096 {
			inHot++
		}
	}
	frac := float64(inHot) / draws
	if frac < 0.8 || frac > 0.95 {
		t.Errorf("Hot: %.2f of draws in hot set, want ~7/8", frac)
	}
}

func TestPinPattern(t *testing.T) {
	p := addrProc(t)
	p.sites = make([]siteState, 1)
	pin := isa.AddrGen{Base: 0x1000, Size: 1 << 16, Pattern: ir.Pin, Site: 0}
	want := p.base + 0x1000
	for i := 0; i < 10; i++ {
		if a := p.address(&pin); a != want {
			t.Fatalf("Pin draw %d: %x, want the region base %x every time", i, a, want)
		}
	}
	if p.sites[0].cursor != 0 {
		t.Errorf("Pin mutated cursor state: %d", p.sites[0].cursor)
	}
}

func TestProcessAccessors(t *testing.T) {
	bin := compile(t, streamModule(t, "acc", 1<<16), true)
	m := New(Config{Cores: 2})
	p, err := m.Attach(1, bin, ProcessConfig{Restart: true, Label: "relabeled"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Core() != 1 {
		t.Errorf("Core = %d", p.Core())
	}
	if p.Name() != "relabeled" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Binary() != bin {
		t.Error("Binary mismatch")
	}
	m.RunQuanta(1)
	if pc := p.CurrentPC(); pc < 0 || pc >= len(p.code) {
		t.Errorf("CurrentPC = %d out of range", pc)
	}
	if m.Process(1) != p || m.Process(0) != nil {
		t.Error("Machine.Process lookup wrong")
	}
}

func TestInstallVariantGrowsRegisterFrames(t *testing.T) {
	// A variant with a larger register demand than any original function
	// must invalidate the frame pool so new frames fit.
	bin := compile(t, streamModule(t, "app", 1<<16), true)
	m := New(Config{Cores: 1})
	p, _ := m.Attach(0, bin, ProcessConfig{Restart: true})
	m.RunQuanta(5)

	emb, err := bin.DecodeIR()
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the clone's register count artificially.
	emb.Func("hot").MaxReg = p.maxReg + 32
	vr, err := isa.LowerVariant(bin.Program, emb, "hot", 1, p.CodeCursor())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InstallVariant(vr); err != nil {
		t.Fatal(err)
	}
	if p.maxReg < vr.Info.MaxReg {
		t.Errorf("maxReg %d not grown to %d", p.maxReg, vr.Info.MaxReg)
	}
	p.EVT().SetTarget(p.EVT().SlotFor("hot"), vr.Info.Entry)
	m.RunQuanta(50) // must not panic on register access
	if p.Counters().Insts == 0 {
		t.Error("no progress after variant with larger frames")
	}
}

func TestExecutionTrace(t *testing.T) {
	bin := compile(t, streamModule(t, "traced", 1<<16), false)
	m := New(Config{Cores: 1})
	p, err := m.Attach(0, bin, ProcessConfig{Restart: true, TraceDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	m.RunQuanta(3)
	tr := p.Trace()
	if len(tr) != 64 {
		t.Fatalf("trace length = %d, want full ring of 64", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Cycle < tr[i-1].Cycle {
			t.Fatalf("trace not in cycle order at %d: %d < %d", i, tr[i].Cycle, tr[i-1].Cycle)
		}
	}
	for _, e := range tr {
		if e.PC < 0 || e.PC >= len(p.code) {
			t.Fatalf("traced PC %d out of range", e.PC)
		}
	}
	// Untracked process returns nil.
	m2 := New(Config{Cores: 1})
	p2, _ := m2.Attach(0, compile(t, streamModule(t, "x", 1<<16), false), ProcessConfig{Restart: true})
	m2.RunQuanta(1)
	if p2.Trace() != nil {
		t.Error("untraced process returned a trace")
	}
}

func TestTracePartialRing(t *testing.T) {
	mb := ir.NewModuleBuilder("short")
	mb.Global("g", 4096)
	f := mb.Function("main")
	f.Work(5)
	f.Return()
	mb.SetEntry("main")
	bin := compile(t, mb.MustBuild(), false)
	m := New(Config{Cores: 1})
	p, _ := m.Attach(0, bin, ProcessConfig{TraceDepth: 1024})
	m.RunQuanta(1)
	tr := p.Trace()
	// 5 work instrs + ret = 6 executed.
	if len(tr) != 6 {
		t.Fatalf("trace length = %d, want 6", len(tr))
	}
	if tr[0].PC != p.bin.Program.EntryPC {
		t.Errorf("first traced PC = %d, want entry %d", tr[0].PC, p.bin.Program.EntryPC)
	}
}
