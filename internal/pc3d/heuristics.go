package pc3d

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/ir/dataflow"
	"repro/internal/sampling"
)

// SearchSpace is the outcome of the variant-search-space reduction of
// Section IV-C: from all static loads, down to loads in covered code
// regions, down to loads at maximum loop depth, ordered by expected impact.
type SearchSpace struct {
	// TotalLoads counts every static load in the program ("Full Program"
	// in Figure 8).
	TotalLoads int
	// Covered lists load IDs in functions that appear in PC samples
	// ("Active Regions").
	Covered []int
	// Sites lists the load IDs PC3D actually searches ("Max Depth"):
	// covered loads at the maximum loop nesting depth of their function,
	// ordered by the heat of their own basic block (descending), with
	// function hotness as tiebreak, then load ID. Profiles without block
	// attribution degrade gracefully to function-hotness order.
	Sites []int
	// Invariant lists the max-depth load IDs pruned because dataflow
	// analysis proved their address operand loop-invariant: the load
	// re-touches the same line every iteration, so a prefetch can never
	// add locality and an NT hint can only evict a reused line. Pruning
	// them shrinks the online search the same way the loop-depth
	// heuristic does, with facts instead of samples.
	Invariant []int
	// FuncOf maps each search-site load ID to its enclosing function, so
	// the controller recompiles only the function a flipped bit lives in.
	FuncOf map[int]string
}

// BuildSearchSpace applies the reduction heuristics to a program's IR
// given a hierarchical PC-sample profile:
//
//   - Exclude Uncovered Code: drop loads in functions with zero samples.
//   - Prioritize Hotter Code: order surviving loads by the sample count of
//     their own basic block, breaking ties by function sample count — two
//     loads in one hot function rank by the heat of the blocks they
//     actually sit in.
//   - Only Innermost Loops: drop loads not at the function's maximum loop
//     nesting depth.
//   - Exclude Invariant Addresses: drop loads whose address operand is
//     loop-invariant (dataflow.InvariantAddressLoads); they land in
//     SearchSpace.Invariant instead of Sites.
//
// Flat function-only profiles (sampling.Profile.Deep) carry zero block
// heat, so the ordering degrades to the original function-hotness rank.
func BuildSearchSpace(mod *ir.Module, prof *sampling.DeepProfile) SearchSpace {
	ss := SearchSpace{TotalLoads: mod.NumLoads, FuncOf: make(map[int]string)}
	flat := prof.Flat()
	type cand struct {
		id        int
		blockHeat uint64
		funcHeat  uint64
	}
	var cands []cand
	for _, fn := range flat.Hottest() {
		f := mod.Func(fn)
		if f == nil || !flat.Covered(fn) {
			continue
		}
		lf := ir.BuildLoopForest(f)
		inv := dataflow.InvariantAddressLoads(f, lf)
		for _, b := range f.Blocks {
			atMax := lf.AtMaxDepth(b.Index)
			for _, in := range b.Instrs {
				ld, ok := in.(*ir.Load)
				if !ok {
					continue
				}
				ss.Covered = append(ss.Covered, ld.ID)
				if !atMax {
					continue
				}
				if inv[ld.ID] {
					ss.Invariant = append(ss.Invariant, ld.ID)
					continue
				}
				cands = append(cands, cand{
					id:        ld.ID,
					blockHeat: prof.BlockSamples(fn, b.Name),
					funcHeat:  flat[fn],
				})
				ss.FuncOf[ld.ID] = fn
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].blockHeat != cands[j].blockHeat {
			return cands[i].blockHeat > cands[j].blockHeat
		}
		if cands[i].funcHeat != cands[j].funcHeat {
			return cands[i].funcHeat > cands[j].funcHeat
		}
		return cands[i].id < cands[j].id
	})
	ss.Sites = make([]int, len(cands))
	for i, c := range cands {
		ss.Sites[i] = c.id
	}
	if len(ss.Sites) == 0 {
		ss.Sites = nil
	}
	return ss
}

// Funcs returns the distinct functions containing search sites, hottest
// first.
func (ss SearchSpace) Funcs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range ss.Sites {
		fn := ss.FuncOf[id]
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	return out
}

// ReductionFactors reports the Figure 8 ratios: total/covered and
// total/maxdepth (0 when a stage is empty). The max-depth stage counts
// invariant-pruned loads as removed, so pruning is visible in the ratio.
func (ss SearchSpace) ReductionFactors() (coveredX, maxDepthX float64) {
	if len(ss.Covered) > 0 {
		coveredX = float64(ss.TotalLoads) / float64(len(ss.Covered))
	}
	if len(ss.Sites) > 0 {
		maxDepthX = float64(ss.TotalLoads) / float64(len(ss.Sites))
	}
	return
}
