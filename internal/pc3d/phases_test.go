package pc3d

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pcc"
	"repro/internal/qos"
	"repro/internal/workload"
)

// phasedModule alternates between a contentious streaming phase and a
// gentle compute phase within each work unit; each phase runs long enough
// (hundreds of ms) for the PC sampler's hot vector to flip.
func phasedModule() *ir.Module {
	mb := ir.NewModuleBuilder("phased")
	mb.Global("buf", 6<<20)

	stream := mb.Function("stream_phase")
	stream.Loop(400, func() {
		for i := 0; i < 8; i++ {
			stream.Load(ir.Access{Global: "buf", Pattern: ir.Seq, Stride: 64})
		}
	})
	stream.Return()

	compute := mb.Function("compute_phase")
	compute.Loop(400, func() {
		compute.Work(12)
		compute.Load(ir.Access{Global: "buf", Pattern: ir.Hot, HotBytes: 32 << 10})
	})
	compute.Return()

	main := mb.Function("main")
	// Long segments (several simulated seconds each): the paper's phases
	// dwarf the ~1 s variant search, and PC3D's design assumes that.
	main.Loop(2000, func() { main.Call("stream_phase") })
	main.Loop(6400, func() { main.Call("compute_phase") })
	main.Return()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestPC3DReactsToHostPhases drives the introspective path: the host
// alternates phases, and the controller must detect the changes (reverting
// to original code at each boundary) while keeping the co-runner at its
// target through the contentious phases.
func TestPC3DReactsToHostPhases(t *testing.T) {
	extSpec := workload.MustByName("er-naive")

	// Solo reference for the external app.
	solo := machine.New(machine.Config{Cores: 2})
	sb, _ := extSpec.CompilePlain()
	sp, _ := solo.Attach(0, sb, machine.ProcessConfig{Restart: true})
	solo.RunSeconds(0.5)
	c0 := sp.Counters()
	solo.RunSeconds(1.5)
	extSolo := float64(sp.Counters().Sub(c0).Insts) / 1.5

	m := machine.New(machine.Config{Cores: 4})
	eb, _ := extSpec.CompilePlain()
	ext, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := pcc.Compile(phasedModule(), pcc.Options{Protean: true})
	if err != nil {
		t.Fatal(err)
	}
	host, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.AddAgent(rt)
	flux := qos.NewFluxMonitor(m, host, ext, 0, 0)
	flux.ReferenceIPS = extSolo
	m.AddAgent(flux)
	ctrl := New(Config{Runtime: rt, Steady: flux, Window: &qos.FluxWindow{Flux: flux, Ext: ext}, ExtSig: extSigFromFlux(flux), Target: 0.95})
	defer ctrl.Close()
	m.AddAgent(ctrl)

	m.RunSeconds(30) // a few long phase alternations

	st := ctrl.Stats()
	if st.PhaseChanges < 3 {
		t.Errorf("PhaseChanges = %d, want >= 3 (host alternates phases)", st.PhaseChanges)
	}
	if st.Searches < 1 {
		t.Errorf("Searches = %d, want >= 1", st.Searches)
	}
	// Long-run external QoS must stay healthy: contentious phases are
	// mitigated, gentle phases run free. The window spans full phase
	// cycles so boundary transients (detection lag, re-warm) amortize as
	// they do over the paper's 300 s phases.
	e0 := ext.Counters()
	m.RunSeconds(12)
	q := float64(ext.Counters().Sub(e0).Insts) / 12 / extSolo
	if q < 0.82 {
		t.Errorf("long-run external QoS = %.3f", q)
	}
	// The host must not be stuck fully napped.
	h := host.Counters()
	if h.NapCycles > h.Cycles*8/10 {
		t.Errorf("host napped %.0f%% of its life", 100*float64(h.NapCycles)/float64(h.Cycles))
	}
}
