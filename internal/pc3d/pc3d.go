// Package pc3d implements Protean Code for Cache Contention in Datacenters
// (Section IV): a protean runtime policy that dynamically inserts and
// removes non-temporal memory access hints in a batch host, mixing cache
// pressure reduction with napping so that a high-priority co-runner meets
// its QoS target while the host's throughput is maximized.
//
// PC3D is implemented entirely against the protean runtime's public
// surface (core.Runtime), "requiring no changes to the basic protean code
// compiler setup": it reads PC samples and the embedded IR to reduce the
// variant search space (Section IV-C), walks the space with the greedy
// search of Algorithm 1, evaluates each variant online with the nap-
// intensity binary search of Algorithm 2, and reacts to host-phase and
// co-phase changes by reverting and re-searching.
package pc3d

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/agentloop"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/phase"
	"repro/internal/qos"
	"repro/internal/sampling"
	"repro/internal/telemetry"
)

// Config configures a controller (consumed by New, mirroring the machine
// and fleet constructor surfaces).
type Config struct {
	// Runtime is the attached protean runtime driving the host. Required.
	Runtime *core.Runtime
	// Steady provides continuous QoS estimates (e.g. *qos.FluxMonitor).
	Steady qos.Source
	// Window scores evaluation windows during variant probes.
	Window qos.WindowScorer
	// ExtSig produces the external app's phase signature each check
	// (progress rate and, when available, hot-code vector). Optional.
	ExtSig func(m *machine.Machine) phase.Signature
	// Target is the co-runner QoS target (e.g. 0.95).
	Target float64
	// WarmupCycles precede the first decision (profile + solo estimates
	// must exist). Default 200 ms.
	WarmupCycles uint64
	// SettleCycles follow every dispatch or nap change before measuring,
	// covering the co-runner's cache re-warm transient. Default 150 ms.
	SettleCycles uint64
	// WindowCycles is the measurement window of one nap-intensity probe in
	// Algorithm 2. It must dominate the co-runner's re-warm time (the
	// scaled simulation re-warms a multi-MiB set in ~10^6 cycles).
	// Default 150 ms.
	WindowCycles uint64
	// NapTolerance ends the binary search when the nap bracket is this
	// tight. Default 0.1.
	NapTolerance float64
	// CheckCycles is the steady-state monitoring period. Default 200 ms.
	CheckCycles uint64
	// AdjustStep is the nap feedback step outside searches. Default 0.05.
	AdjustStep float64
	// PhaseThreshold feeds the co-phase detectors (0 = default).
	PhaseThreshold float64
	// MaxSites caps the number of load sites searched (0 = all). The paper
	// searches all surviving sites; the cap exists for scaled-down bench
	// runs.
	MaxSites int
	// NoBoundsReuse disables Algorithm 1's nap-bound shrinking: every
	// variant evaluation binary-searches the full [0,1] nap range and the
	// greedy pass never terminates early on a collapsed bracket. Ablation
	// only; the paper's search always reuses bounds.
	NoBoundsReuse bool
	// CompileRetries is how many times a failed compile of one variant is
	// retried (with exponential backoff) before the function is skipped for
	// that mask. Default 3.
	CompileRetries int
	// CompileBackoffCycles is the wait before the first compile retry,
	// doubling per attempt. Default 8 ms.
	CompileBackoffCycles uint64
	// Trace, when non-nil, receives search-decision log lines.
	Trace func(format string, args ...any)
	// Telemetry receives the controller's counters (searches, probes,
	// dropouts, violations) and QoS/dropout trace events under the "pc3d"
	// subsystem. Nil disables instrumentation at no cost.
	Telemetry *telemetry.Registry
}

func (cfg Config) withDefaults(m *machine.Machine) Config {
	ms := uint64(m.Config().FreqHz / 1000)
	if cfg.Target == 0 {
		cfg.Target = 0.95
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 200 * ms
	}
	if cfg.SettleCycles == 0 {
		cfg.SettleCycles = 150 * ms
	}
	if cfg.WindowCycles == 0 {
		cfg.WindowCycles = 150 * ms
	}
	if cfg.NapTolerance == 0 {
		cfg.NapTolerance = 0.1
	}
	if cfg.CheckCycles == 0 {
		cfg.CheckCycles = 200 * ms
	}
	if cfg.AdjustStep == 0 {
		cfg.AdjustStep = 0.05
	}
	if cfg.CompileRetries == 0 {
		cfg.CompileRetries = 3
	}
	if cfg.CompileBackoffCycles == 0 {
		cfg.CompileBackoffCycles = 8 * ms
	}
	return cfg
}

// Stats expose controller activity for the evaluation harness.
type Stats struct {
	Searches     int
	VariantEvals int
	NapProbes    int
	Compiles     int
	PhaseChanges int
	// SearchAborts counts searches abandoned because the co-phase changed
	// mid-search (the measurements would mix phases).
	SearchAborts int
	// BestMaskSize is the hint count of the currently dispatched best
	// variant (0 when running the original).
	BestMaskSize int
	// CurrentNap is the nap intensity currently applied.
	CurrentNap float64
	// CompileFailures counts compile jobs that failed even after retries.
	CompileFailures int
	// CompileRetries counts individual retry attempts after failed compiles.
	CompileRetries int
	// SensorDropouts counts QoS readings discarded as missing or invalid
	// (NaN/Inf): the controller holds its last safe setting through them.
	SensorDropouts int
}

// Controller is the PC3D decision engine for one host/co-runner pair. It
// implements machine.Agent.
type Controller struct {
	rt     *core.Runtime
	host   *machine.Process
	steady qos.Source
	win    qos.WindowScorer
	cfg    Config

	loop    *agentloop.Loop
	space   SearchSpace
	cophase *phase.CoPhase
	extSig  func(m *machine.Machine) phase.Signature

	// mask is the live hint vector (load ID → hinted).
	mask map[int]bool
	// cache maps per-function mask keys to compiled variants.
	cache map[string]*core.Variant

	hostMeter  *sampling.Meter
	stats      Stats
	searched   bool    // a search ran in the current co-phase
	napFloor   float64 // the search's converged nap; steady relax stops here
	violations int     // consecutive sub-target steady readings

	tel         *telemetry.Registry
	cSearches   *telemetry.Counter
	cEvals      *telemetry.Counter
	cProbes     *telemetry.Counter
	cPhases     *telemetry.Counter
	cAborts     *telemetry.Counter
	cRetries    *telemetry.Counter
	cFails      *telemetry.Counter
	cDropouts   *telemetry.Counter
	cViolations *telemetry.Counter
}

// New builds a controller from cfg. cfg.Runtime must already be attached
// to the host and registered on the machine.
func New(cfg Config) *Controller {
	c := &Controller{
		rt:        cfg.Runtime,
		host:      cfg.Runtime.Host(),
		steady:    cfg.Steady,
		win:       cfg.Window,
		cfg:       cfg,
		cophase:   phase.NewCoPhase(),
		extSig:    cfg.ExtSig,
		mask:      make(map[int]bool),
		cache:     make(map[string]*core.Variant),
		hostMeter: sampling.NewMeter(cfg.Runtime.Host()),
	}
	c.tel = cfg.Telemetry
	c.cSearches = c.tel.Counter("pc3d", "searches_total", "Algorithm 1 greedy searches started")
	c.cEvals = c.tel.Counter("pc3d", "variant_evals_total", "variant evaluations (Algorithm 2 invocations)")
	c.cProbes = c.tel.Counter("pc3d", "nap_probes_total", "nap-intensity measurement windows")
	c.cPhases = c.tel.Counter("pc3d", "phase_changes_total", "co-phase changes observed")
	c.cAborts = c.tel.Counter("pc3d", "search_aborts_total", "searches abandoned on mid-search phase change")
	c.cRetries = c.tel.Counter("pc3d", "compile_retries_total", "compile retry attempts after failures")
	c.cFails = c.tel.Counter("pc3d", "compile_failures_total", "compiles abandoned after all retries")
	c.cDropouts = c.tel.Counter("pc3d", "sensor_dropouts_total", "QoS readings discarded as missing or invalid")
	c.cViolations = c.tel.Counter("pc3d", "qos_violations_total", "steady-state QoS readings below target")
	c.loop = agentloop.New(c.policy)
	return c
}

// Tick implements machine.Agent.
func (c *Controller) Tick(m *machine.Machine) { c.loop.Tick(m) }

// Close stops the controller's policy goroutine.
func (c *Controller) Close() { c.loop.Close() }

// Stats returns a snapshot of controller activity.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Compiles = int(c.rt.Compiles())
	s.BestMaskSize = len(c.maskSet())
	s.CurrentNap = c.host.NapIntensity()
	return s
}

// Space returns the search space of the current phase (valid after the
// first search).
func (c *Controller) Space() SearchSpace { return c.space }

func (c *Controller) maskSet() []int {
	var ids []int
	for id, on := range c.mask {
		if on {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// policy is the sequential decision loop (runs on the agentloop goroutine).
func (c *Controller) policy(l *agentloop.Loop) {
	m := l.Wait()
	if m == nil {
		return
	}
	opts := c.cfg.withDefaults(m)
	c.cfg = opts
	if m = l.WaitCycles(opts.WarmupCycles); m == nil {
		return
	}
	c.hostMeter.Read(m) // baseline

	for {
		if c.observePhases(m) {
			// Co-phase change: revert to original code at full speed and
			// re-evaluate from scratch (Section V-D's dynamic behaviour).
			// The extra settle lets the co-runner's cache state and the
			// flux windows flush the boundary transient before the next
			// reading is trusted.
			c.stats.PhaseChanges++
			c.cPhases.Inc()
			c.searched = false
			c.violations = 0
			c.setMaskOriginal()
			c.setNap(0)
			if m = l.WaitCycles(2 * opts.CheckCycles); m == nil {
				return
			}
		}
		q, ok := c.steady.QoS()
		if ok && (math.IsNaN(q) || math.IsInf(q, 0)) {
			// Corrupted sensor reading claimed as valid: treat it like a
			// dropout rather than propagating NaN into nap arithmetic.
			c.stats.SensorDropouts++
			c.cDropouts.Inc()
			c.tel.Emit(telemetry.Event{At: m.Now(), Kind: telemetry.EvSensorDropout})
			ok = false
		}
		if ok && q >= opts.Target {
			c.violations = 0
		}
		if ok && q < opts.Target {
			c.cViolations.Inc()
			c.tel.Emit(telemetry.Event{At: m.Now(), Kind: telemetry.EvQoSViolation, Value: q})
		}
		switch {
		case !ok:
			// No estimate (warming up, or the sensor went dark): hold the
			// last safe nap and mask; decisions resume on fresh data.
		case q >= opts.Target && c.host.NapIntensity() > 0 && !c.searched:
			// Headroom before any search: relax the nap.
			c.setNap(c.host.NapIntensity() - opts.AdjustStep)
		case q >= opts.Target+0.04 && c.host.NapIntensity() > c.napFloor:
			// Clear headroom after a search: relax gently toward the
			// search's converged nap, never below it.
			next := c.host.NapIntensity() - opts.AdjustStep/2
			if next < c.napFloor {
				next = c.napFloor
			}
			c.setNap(next)
		case q >= opts.Target:
			// Target met: hold.
		case !c.searched:
			// QoS violated in this co-phase. Isolated sub-target readings
			// follow cold starts and phase boundaries (the co-runner's
			// working set re-warms over a few hundred ms); three
			// consecutive readings commit to the (expensive) search.
			c.violations++
			if c.violations >= 3 {
				if m = c.runSearch(l, m); m == nil {
					return
				}
			}
		default:
			// QoS violated after a search settled: feedback the nap up —
			// capped below 1 so the host always trickles progress and its
			// phase signature stays observable.
			next := c.host.NapIntensity() + opts.AdjustStep
			if next > 0.98 {
				next = 0.98
			}
			c.setNap(next)
		}
		if m = l.WaitCycles(opts.CheckCycles); m == nil {
			return
		}
	}
}

// observePhases feeds host and external signatures to the co-phase
// detector.
func (c *Controller) observePhases(m *machine.Machine) bool {
	changed := false
	hostProf := c.rt.Sampler().Window()
	c.rt.Sampler().ResetWindow()
	if hostProf.Total() > 0 {
		sig := phase.Signature{Hot: hostProf.Normalized()}
		if c.cophase.Observe("host", sig, c.cfg.PhaseThreshold) {
			changed = true
		}
	}
	if c.extSig != nil {
		if c.cophase.Observe("ext", c.extSig(m), c.cfg.PhaseThreshold) {
			changed = true
		}
	}
	return changed
}

// runSearch executes Algorithm 1 over the current phase's search space.
// A co-phase change mid-search aborts it: measurements from different
// phases are not comparable, so the controller reverts to original code
// and lets the monitoring loop re-decide in the new phase.
func (c *Controller) runSearch(l *agentloop.Loop, m *machine.Machine) *machine.Machine {
	c.stats.Searches++
	c.cSearches.Inc()
	c.searched = true

	// The search span roots one causal tree: every variant_eval (and the
	// probes and compiles underneath) parents into it via the registry's
	// ambient parent. Left open if the machine shuts down mid-search.
	sp := c.tel.StartSpan("pc3d.search", m.Now(), 0)
	prevParent := c.tel.SetSpanParent(sp)
	defer func() {
		c.tel.SetSpanParent(prevParent)
		if m != nil {
			c.tel.EndSpan(sp, m.Now())
		}
	}()

	aborted := func(m *machine.Machine) bool {
		if !c.observePhases(m) {
			return false
		}
		c.stats.PhaseChanges++
		c.cPhases.Inc()
		c.stats.SearchAborts++
		c.cAborts.Inc()
		c.tel.SpanAttrs(sp, telemetry.Str("status", "aborted"))
		c.trace("search aborted: co-phase changed")
		c.searched = false
		c.violations = 0
		c.setMaskOriginal()
		c.setNap(0)
		return true
	}

	prof := c.rt.Sampler().DeepLifetime()
	c.space = BuildSearchSpace(c.rt.IR(), prof)
	sites := c.space.Sites
	if c.cfg.MaxSites > 0 && len(sites) > c.cfg.MaxSites {
		sites = sites[:c.cfg.MaxSites]
	}
	c.tel.SpanAttrs(sp, telemetry.Num("sites", float64(len(sites))))
	if len(sites) == 0 {
		// Nothing to transform: pure napping fallback.
		nap, _, mm := c.variantEvalMask(l, m, nil, 0, 1)
		if mm == nil {
			m = nil
			return nil
		}
		m = mm
		c.setNap(nap)
		c.napFloor = nap
		return m
	}

	// Evaluate variant 0 (no hints) and variant 1 (all hints) to bound the
	// nap range.
	mask0 := map[int]bool{}
	mask1 := make(map[int]bool, len(sites))
	for _, id := range sites {
		mask1[id] = true
	}
	nap0, r0, m2 := c.variantEvalMask(l, m, mask0, 0, 1)
	if m2 == nil {
		m = nil
		return nil
	}
	m = m2
	if aborted(m) {
		return m
	}
	nap1, r1, m3 := c.variantEvalMask(l, m, mask1, 0, 1)
	if m3 == nil {
		m = nil
		return nil
	}
	m = m3
	if aborted(m) {
		return m
	}
	c.trace("search: %d sites, nap0=%.3f r0=%.0f nap1=%.3f r1=%.0f", len(sites), nap0, r0, nap1, r1)
	napUB, napLB := nap0, nap1
	cur := cloneMask(mask1)
	best := cloneMask(mask1)
	bestNap, bestR := nap1, r1
	// Variant 0 stays a candidate: when hints cost the host more than they
	// relieve pressure (reuse-heavy hosts like bst), the original code at
	// its measured nap is the right answer and the greedy pass — which can
	// terminate immediately on a collapsed nap bracket — must not shadow it.
	if r0 > bestR {
		best = cloneMask(mask0)
		bestNap, bestR = nap0, r0
	}

	// Greedy pass: revoke hints in decreasing-importance order, keeping
	// revocations that improve host performance at QoS-satisfying nap.
	for _, id := range sites {
		if !c.cfg.NoBoundsReuse && napLB >= napUB-1e-9 {
			break
		}
		lb, ub := napLB, napUB
		if c.cfg.NoBoundsReuse {
			lb, ub = 0, 1
		}
		cur[id] = false
		napM, rM, mm := c.variantEvalMask(l, m, cur, lb, ub)
		if mm == nil {
			m = nil
			return nil
		}
		m = mm
		if aborted(m) {
			return m
		}
		if bestR < rM {
			c.trace("  flip %d: ACCEPT nap=%.3f bps=%.0f (best was %.0f)", id, napM, rM, bestR)
			bestR, bestNap = rM, napM
			best = cloneMask(cur)
			napUB = napM
		} else {
			c.trace("  flip %d: reject nap=%.3f bps=%.0f (best %.0f)", id, napM, rM, bestR)
			cur[id] = true // reject the revocation
		}
	}

	c.trace("search done: mask=%d nap=%.3f bps=%.0f", len(maskIDs(best)), bestNap, bestR)
	// Dispatch the winner and settle at its nap intensity.
	if mm := c.applyMask(l, m, best); mm == nil {
		m = nil
		return nil
	} else {
		m = mm
	}
	c.tel.SpanAttrs(sp, telemetry.Num("best_mask", float64(len(maskIDs(best)))), telemetry.Num("best_nap", bestNap))
	c.setNap(bestNap)
	c.napFloor = bestNap
	return m
}

// variantEvalMask is Algorithm 2: dispatch the variant for mask, then
// binary-search the nap intensity within [napLB, napUB] for the lowest
// value satisfying the QoS target, returning that nap and the host's BPS
// there.
func (c *Controller) variantEvalMask(l *agentloop.Loop, m *machine.Machine, mask map[int]bool, napLB, napUB float64) (nap, bps float64, out *machine.Machine) {
	c.stats.VariantEvals++
	c.cEvals.Inc()
	// The eval span nests under the search span (ambient parent) and in
	// turn becomes the ambient parent of the compiles applyMask triggers.
	sp := c.tel.StartSpan("pc3d.variant_eval", m.Now(), c.tel.SpanParent())
	c.tel.SpanAttrs(sp, telemetry.Num("mask_size", float64(len(maskIDs(mask)))))
	prevParent := c.tel.SetSpanParent(sp)
	defer func() {
		c.tel.SetSpanParent(prevParent)
		if out != nil {
			c.tel.SpanAttrs(sp, telemetry.Num("nap", nap), telemetry.Num("bps", bps))
			c.tel.EndSpan(sp, out.Now())
		}
	}()
	if m = c.applyMask(l, m, mask); m == nil {
		return 0, 0, nil
	}
	lo, hi := napLB, napUB
	bps = 0
	measure := func(at float64) (float64, float64, bool) {
		psp := c.tel.StartSpan("pc3d.probe", m.Now(), sp)
		c.tel.SpanAttrs(psp, telemetry.Num("nap", at))
		c.setNap(at)
		ssp := c.tel.StartSpan("pc3d.settle", m.Now(), psp)
		if m = l.WaitCycles(c.cfg.SettleCycles); m == nil {
			return 0, 0, false
		}
		c.tel.EndSpan(ssp, m.Now())
		// A dark or corrupted QoS sensor invalidates the window; re-measure
		// up to three times before giving up on this probe.
		for attempt := 0; ; attempt++ {
			c.win.Mark(m)
			c.hostMeter.Read(m)
			wsp := c.tel.StartSpan("pc3d.window", m.Now(), psp)
			if m = l.WaitCycles(c.cfg.WindowCycles); m == nil {
				return 0, 0, false
			}
			c.tel.EndSpan(wsp, m.Now())
			q, qok := c.win.Score(m)
			r := c.hostMeter.Read(m)
			c.stats.NapProbes++
			c.cProbes.Inc()
			if qok && !math.IsNaN(q) && !math.IsInf(q, 0) {
				c.tel.EndSpan(psp, m.Now())
				return q, r.BPS, true
			}
			c.stats.SensorDropouts++
			c.cDropouts.Inc()
			c.tel.Emit(telemetry.Event{At: m.Now(), Kind: telemetry.EvSensorDropout})
			if attempt >= 2 {
				// Still no signal: fail the probe conservatively. A probe
				// that "misses QoS" drives the binary search toward more
				// napping, which can never hurt the co-runner.
				c.tel.EndSpan(psp, m.Now())
				return -1, r.BPS, true
			}
		}
	}
	loRaised := false
	for hi-lo > c.cfg.NapTolerance {
		cur := (lo + hi) / 2
		q, r, ok := measure(cur)
		if !ok {
			return 0, 0, nil
		}
		if q >= c.cfg.Target {
			hi = cur
			bps = r
		} else {
			lo = cur
			loRaised = true
		}
	}
	if !loRaised && hi > lo {
		// Every probe satisfied QoS, so the requirement may be the bracket
		// floor itself (possibly zero nap). One extra probe resolves it —
		// otherwise the tolerance would leave residual throttling on
		// variants that need none.
		q, r, ok := measure(lo)
		if !ok {
			return 0, 0, nil
		}
		if q >= c.cfg.Target {
			return lo, r, m
		}
	}
	if bps == 0 {
		// Bracket collapsed without a satisfying measurement (or the
		// window never met QoS): measure once at the upper bound.
		q, r, ok := measure(hi)
		if !ok {
			return 0, 0, nil
		}
		if q >= c.cfg.Target {
			bps = r
		}
	}
	return hi, bps, m
}

// applyMask makes the host execute the variant described by mask:
// functions whose bits are all clear revert to original code; others get a
// (cached or freshly compiled) variant dispatched.
func (c *Controller) applyMask(l *agentloop.Loop, m *machine.Machine, mask map[int]bool) *machine.Machine {
	for _, fn := range c.space.Funcs() {
		ids := c.funcSiteIDs(fn)
		key := maskKey(fn, ids, mask)
		anySet := false
		for _, id := range ids {
			if mask[id] {
				anySet = true
				break
			}
		}
		if !anySet {
			if c.rt.Dispatched(fn) != nil {
				if err := c.rt.Revert(fn); err != nil {
					// ErrCrashed: the supervisor owns recovery; skip.
					c.trace("revert %s: %v", fn, err)
				}
			}
			continue
		}
		if v := c.cache[key]; v != nil {
			if c.rt.Dispatched(fn) != v {
				if err := c.rt.Dispatch(v); err != nil {
					c.trace("dispatch %s: %v", fn, err)
				}
			}
			continue
		}
		// Compile asynchronously and wait for the runtime to deliver it.
		// Transient failures retry with exponential backoff; a function
		// that still fails keeps its current code for this mask — the
		// search just measures the variant without that flip.
		var got *core.Variant
		backoff := c.cfg.CompileBackoffCycles
		for attempt := 0; ; attempt++ {
			v, cerr, mm := c.compileOnce(l, m, fn, mask, key)
			if mm == nil {
				return nil
			}
			m = mm
			if cerr == nil {
				got = v
				break
			}
			if attempt >= c.cfg.CompileRetries {
				c.stats.CompileFailures++
				c.cFails.Inc()
				c.trace("compile %s: giving up after %d attempts: %v", fn, attempt+1, cerr)
				break
			}
			c.stats.CompileRetries++
			c.cRetries.Inc()
			c.trace("compile %s failed (attempt %d): %v; retrying", fn, attempt+1, cerr)
			if m = l.WaitCycles(backoff); m == nil {
				return nil
			}
			backoff *= 2
		}
		if got == nil {
			continue
		}
		c.cache[key] = got
		if err := c.rt.Dispatch(got); err != nil {
			c.trace("dispatch %s: %v", fn, err)
		}
	}
	c.mask = cloneMask(mask)
	return m
}

// compileOnce requests one variant compile and waits for its callback.
// Returns a nil machine when the loop is closing.
func (c *Controller) compileOnce(l *agentloop.Loop, m *machine.Machine, fn string, mask map[int]bool, key string) (*core.Variant, error, *machine.Machine) {
	var got *core.Variant
	var cerr error
	done := false
	err := c.rt.RequestVariant(fn, core.NTTransform(cloneMask(mask)), key, func(v *core.Variant, err error) {
		got, cerr, done = v, err, true
	})
	if err != nil {
		return nil, err, m
	}
	for !done {
		if m = l.Wait(); m == nil {
			return nil, nil, nil
		}
	}
	return got, cerr, m
}

func (c *Controller) funcSiteIDs(fn string) []int {
	var ids []int
	for _, id := range c.space.Sites {
		if c.space.FuncOf[id] == fn {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

func (c *Controller) setMaskOriginal() {
	if err := c.rt.RevertAll(); err != nil {
		// A crashed runtime cannot touch the EVT; the supervisor owns
		// recovery. Nothing useful to do here but note it.
		c.trace("revert-all: %v", err)
	}
	c.mask = make(map[int]bool)
}

func (c *Controller) setNap(f float64) {
	c.host.SetNapIntensity(f)
}

func (c *Controller) trace(format string, args ...any) {
	if c.cfg.Trace != nil {
		c.cfg.Trace(format, args...)
	}
}

func maskIDs(m map[int]bool) []int {
	var ids []int
	for id, on := range m {
		if on {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

func cloneMask(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

// maskKey identifies a function variant by the hinted subset of its sites.
func maskKey(fn string, ids []int, mask map[int]bool) string {
	var b strings.Builder
	b.WriteString(fn)
	b.WriteByte(':')
	for _, id := range ids {
		if mask[id] {
			fmt.Fprintf(&b, "%d,", id)
		}
	}
	return b.String()
}
