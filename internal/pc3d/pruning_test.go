package pc3d

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// TestSearchSpacePrunesInvariantLoads: blockie's smash loop carries one
// pinned (loop-invariant address) load among its streaming loads. The
// search space must route it to Invariant — pruned by dataflow fact, not
// sampled cost — and keep it out of Sites/FuncOf.
func TestSearchSpacePrunesInvariantLoads(t *testing.T) {
	mod := workload.MustByName("blockie").Module()

	// Full coverage so no load is dropped for sampling reasons.
	prof := sampling.Profile{}
	for _, f := range mod.Funcs {
		prof[f.Name] = 100
	}
	ss := BuildSearchSpace(mod, prof.Deep())

	// Find the pinned loads at max depth straight from the IR.
	wantInv := map[int]bool{}
	for _, f := range mod.Funcs {
		lf := ir.BuildLoopForest(f)
		for _, b := range f.Blocks {
			if !lf.AtMaxDepth(b.Index) {
				continue
			}
			for _, in := range b.Instrs {
				if ld, ok := in.(*ir.Load); ok && ld.Acc.Pattern == ir.Pin {
					wantInv[ld.ID] = true
				}
			}
		}
	}
	if len(wantInv) == 0 {
		t.Fatal("blockie has no pinned max-depth load; catalog fixture changed?")
	}
	if len(ss.Invariant) != len(wantInv) {
		t.Fatalf("Invariant = %v, want the %d pinned load(s) %v", ss.Invariant, len(wantInv), wantInv)
	}
	for _, id := range ss.Invariant {
		if !wantInv[id] {
			t.Errorf("load %d pruned but not pinned", id)
		}
		if _, ok := ss.FuncOf[id]; ok {
			t.Errorf("pruned load %d still has a FuncOf entry", id)
		}
	}
	for _, id := range ss.Sites {
		if wantInv[id] {
			t.Errorf("pinned load %d still in Sites", id)
		}
	}

	// Pruning must be visible in the reduction ratio: with the invariant
	// load excluded, total/maxdepth strictly exceeds total/(maxdepth+inv).
	_, maxDepthX := ss.ReductionFactors()
	unpruned := float64(ss.TotalLoads) / float64(len(ss.Sites)+len(ss.Invariant))
	if maxDepthX <= unpruned {
		t.Errorf("maxDepthX = %.3f, want > %.3f (pruning must shrink the search space)", maxDepthX, unpruned)
	}
}

// TestSearchSpaceNoPinNoPrune: an app with no pinned loads must have an
// empty Invariant list — the analysis proves facts, it does not guess.
func TestSearchSpaceNoPinNoPrune(t *testing.T) {
	mod := workload.MustByName("bst").Module()
	prof := sampling.Profile{}
	for _, f := range mod.Funcs {
		prof[f.Name] = 100
	}
	if ss := BuildSearchSpace(mod, prof.Deep()); len(ss.Invariant) != 0 {
		t.Fatalf("bst has no pinned loads but Invariant = %v", ss.Invariant)
	}
}
