package pc3d

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/phase"
	"repro/internal/qos"
	"repro/internal/reqos"
	"repro/internal/sampling"
	"repro/internal/workload"
)

func TestBuildSearchSpace(t *testing.T) {
	mod := workload.MustByName("libquantum").Module()
	prof := sampling.Profile{"toffoli": 700, "sigma_x": 250, "main": 50}
	ss := BuildSearchSpace(mod, prof.Deep())
	if ss.TotalLoads != 636 {
		t.Errorf("TotalLoads = %d, want 636", ss.TotalLoads)
	}
	// Covered: toffoli (8 deep + 20 shallow), sigma_x (6 + 19), main (0).
	if len(ss.Covered) != 53 {
		t.Errorf("Covered = %d, want 53", len(ss.Covered))
	}
	if len(ss.Sites) != 14 {
		t.Errorf("Sites = %d, want 14", len(ss.Sites))
	}
	// Hotter function's loads come first.
	for i, id := range ss.Sites {
		fn := ss.FuncOf[id]
		if i < 8 && fn != "toffoli" {
			t.Fatalf("site %d from %s, want toffoli first (hotter)", i, fn)
		}
		if i >= 8 && fn != "sigma_x" {
			t.Fatalf("site %d from %s, want sigma_x after toffoli", i, fn)
		}
	}
	funcs := ss.Funcs()
	if len(funcs) != 2 || funcs[0] != "toffoli" || funcs[1] != "sigma_x" {
		t.Errorf("Funcs = %v", funcs)
	}
	covX, maxX := ss.ReductionFactors()
	if covX < 10 || covX > 14 {
		t.Errorf("covered reduction %.1fx, want ~12x", covX)
	}
	if maxX < 40 || maxX > 50 {
		t.Errorf("max-depth reduction %.1fx, want ~45x", maxX)
	}
}

// TestSearchSpaceBlockHeatOrdersSitesWithinFunction: two loads in one hot
// function, sitting in different innermost loops, must rank by the heat of
// their own blocks — the block-granular refinement of "Prioritize Hotter
// Code". With equal block heat the order falls back to load ID.
func TestSearchSpaceBlockHeatOrdersSitesWithinFunction(t *testing.T) {
	mb := ir.NewModuleBuilder("blockheat")
	mb.Global("g", 1<<20)
	fb := mb.Function("f")
	fb.Loop(64, func() { fb.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64}) })
	fb.Loop(64, func() { fb.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64}) })
	fb.Return()
	main := mb.Function("main")
	main.Call("f")
	main.Return()
	mb.SetEntry("main")
	mod := mb.MustBuild()

	// Locate each load's enclosing block straight from the IR.
	blockOf := map[int]string{}
	var ids []int
	for _, b := range mod.Func("f").Blocks {
		for _, in := range b.Instrs {
			if ld, ok := in.(*ir.Load); ok {
				blockOf[ld.ID] = b.Name
				ids = append(ids, ld.ID)
			}
		}
	}
	if len(ids) != 2 || blockOf[ids[0]] == blockOf[ids[1]] {
		t.Fatalf("fixture: want 2 loads in distinct blocks, got ids=%v blocks=%v", ids, blockOf)
	}

	// The layout-later load's block is far hotter: it must rank first.
	prof := sampling.NewDeepProfile()
	prof.Add("f", blockOf[ids[0]], -1, 10)
	prof.Add("f", blockOf[ids[1]], -1, 900)
	ss := BuildSearchSpace(mod, prof)
	if len(ss.Sites) != 2 || ss.Sites[0] != ids[1] || ss.Sites[1] != ids[0] {
		t.Errorf("Sites = %v, want [%d %d] (block heat ordering)", ss.Sites, ids[1], ids[0])
	}

	// Function-granularity profile (no block heat): load-ID order.
	flat := BuildSearchSpace(mod, sampling.Profile{"f": 910}.Deep())
	if len(flat.Sites) != 2 || flat.Sites[0] != ids[0] || flat.Sites[1] != ids[1] {
		t.Errorf("flat Sites = %v, want [%d %d] (ID fallback)", flat.Sites, ids[0], ids[1])
	}
}

func TestSearchSpaceUncoveredExcluded(t *testing.T) {
	mod := workload.MustByName("libquantum").Module()
	// Only toffoli sampled: sigma_x and all cold functions excluded.
	ss := BuildSearchSpace(mod, sampling.Profile{"toffoli": 100}.Deep())
	if len(ss.Sites) != 8 {
		t.Errorf("Sites = %d, want 8 (toffoli only)", len(ss.Sites))
	}
	if len(ss.Covered) != 28 {
		t.Errorf("Covered = %d, want 28", len(ss.Covered))
	}
	// Empty profile: nothing searchable.
	ss0 := BuildSearchSpace(mod, sampling.Profile{}.Deep())
	if len(ss0.Sites) != 0 || len(ss0.Covered) != 0 {
		t.Error("empty profile produced a non-empty space")
	}
	if _, maxX := ss0.ReductionFactors(); maxX != 0 {
		t.Error("empty space should report 0 reduction")
	}
}

// rig is a co-location experiment: ext (high priority) on core 0, protean
// host on core 1, runtime on core 2.
type rig struct {
	m       *machine.Machine
	host    *machine.Process
	ext     *machine.Process
	rt      *core.Runtime
	flux    *qos.FluxMonitor
	extSolo float64
	hostBPS float64 // host solo plain BPS
}

func soloRates(t testing.TB, ext, host string) (extIPS, hostBPS float64) {
	t.Helper()
	run := func(name string) (float64, float64) {
		spec := workload.MustByName(name)
		bin, err := spec.CompilePlain()
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		m := machine.New(machine.Config{Cores: 4})
		p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true})
		if err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		m.RunSeconds(0.5) // warm
		c0 := p.Counters()
		m.RunSeconds(1.5)
		d := p.Counters().Sub(c0)
		return float64(d.Insts) / 1.5, float64(d.Branches) / 1.5
	}
	extIPS, _ = run(ext)
	_, hostBPS = run(host)
	return
}

func buildRig(t testing.TB, extName, hostName string, target float64) *rig {
	t.Helper()
	extIPS, hostBPS := soloRates(t, extName, hostName)

	m := machine.New(machine.Config{Cores: 4})
	eb, err := workload.MustByName(extName).CompilePlain()
	if err != nil {
		t.Fatalf("compile ext: %v", err)
	}
	ext, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach ext: %v", err)
	}
	hb, err := workload.MustByName(hostName).CompileProtean()
	if err != nil {
		t.Fatalf("compile host: %v", err)
	}
	host, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach host: %v", err)
	}
	rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 2})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	m.AddAgent(rt)
	flux := qos.NewFluxMonitor(m, host, ext, 0, 0)
	flux.ReferenceIPS = extIPS
	m.AddAgent(flux)
	return &rig{m: m, host: host, ext: ext, rt: rt, flux: flux, extSolo: extIPS, hostBPS: hostBPS}
}

// steadyState measures true QoS and utilization over a trailing window.
func (r *rig) steadyState(t testing.TB, seconds float64) (qosTrue, util float64) {
	t.Helper()
	e0, h0 := r.ext.Counters(), r.host.Counters()
	r.m.RunSeconds(seconds)
	ed := r.ext.Counters().Sub(e0)
	hd := r.host.Counters().Sub(h0)
	qosTrue = float64(ed.Insts) / seconds / r.extSolo
	util = float64(hd.Branches) / seconds / r.hostBPS
	return
}

func extSigFromFlux(f *qos.FluxMonitor) func(*machine.Machine) phase.Signature {
	return func(*machine.Machine) phase.Signature {
		solo, _ := f.SoloIPS()
		return phase.Signature{Rate: solo}
	}
}

func TestPC3DProtectsQoSWithStreamingHost(t *testing.T) {
	r := buildRig(t, "er-naive", "libquantum", 0.95)
	ctrl := New(Config{Runtime: r.rt, Steady: r.flux, Window: &qos.FluxWindow{Flux: r.flux, Ext: r.ext}, ExtSig: extSigFromFlux(r.flux), Target: 0.95})
	defer ctrl.Close()
	r.m.AddAgent(ctrl)

	// Let the search run and settle.
	r.m.RunSeconds(8)
	st := ctrl.Stats()
	if st.Searches < 1 {
		t.Fatalf("no search ran: %+v", st)
	}
	if st.BestMaskSize == 0 {
		t.Errorf("streaming host should keep some hints: %+v", st)
	}

	q, util := r.steadyState(t, 1.5)
	if q < 0.88 {
		t.Errorf("true co-runner QoS = %.3f, target 0.95", q)
	}
	if util < 0.5 {
		t.Errorf("host utilization = %.3f; hints should allow high throughput", util)
	}
	// The runtime must stay cheap (Figure 7: < 1% of server cycles,
	// excluding the initial search burst; allow slack here).
	if frac := r.rt.ServerCycleFraction(); frac > 0.05 {
		t.Errorf("runtime consumed %.3f of server cycles", frac)
	}
}

func TestPC3DBeatsReQoSOnStreamingHost(t *testing.T) {
	target := 0.95

	// PC3D.
	r1 := buildRig(t, "er-naive", "libquantum", target)
	ctrl := New(Config{Runtime: r1.rt, Steady: r1.flux, Window: &qos.FluxWindow{Flux: r1.flux, Ext: r1.ext}, ExtSig: extSigFromFlux(r1.flux), Target: target})
	defer ctrl.Close()
	r1.m.AddAgent(ctrl)
	r1.m.RunSeconds(8)
	q1, u1 := r1.steadyState(t, 2)

	// ReQoS.
	r2 := buildRig(t, "er-naive", "libquantum", target)
	rq := reqos.New(r2.host, r2.flux, reqos.Options{Target: target})
	r2.m.AddAgent(rq)
	r2.m.RunSeconds(8)
	q2, u2 := r2.steadyState(t, 2)

	if q1 < 0.85 || q2 < 0.85 {
		t.Errorf("QoS not protected: pc3d=%.3f reqos=%.3f", q1, q2)
	}
	if u1 < u2*1.3 {
		t.Errorf("PC3D utilization %.3f vs ReQoS %.3f: want >= 1.3x on a streaming host", u1, u2)
	}
}

func TestPC3DNoInterventionWhenQoSMet(t *testing.T) {
	// bzip2 is gentle: QoS stays above target, so PC3D should neither nap
	// nor transform.
	r := buildRig(t, "er-naive", "bzip2", 0.6)
	ctrl := New(Config{Runtime: r.rt, Steady: r.flux, Window: &qos.FluxWindow{Flux: r.flux, Ext: r.ext}, ExtSig: extSigFromFlux(r.flux), Target: 0.6})
	defer ctrl.Close()
	r.m.AddAgent(ctrl)
	r.m.RunSeconds(4)
	st := ctrl.Stats()
	if st.Searches != 0 {
		t.Errorf("search ran despite QoS being met: %+v", st)
	}
	if st.CurrentNap > 0.01 {
		t.Errorf("nap %.2f applied despite QoS being met", st.CurrentNap)
	}
	_, util := r.steadyState(t, 1)
	if util < 0.9 {
		t.Errorf("host utilization %.3f; should run at full speed", util)
	}
}

func TestPC3DFallsBackToNapping(t *testing.T) {
	// er-naive as host: its pressure comes from reused random accesses, so
	// hints cost it its own hits; PC3D should end up relying substantially
	// on napping (possibly with an empty or tiny mask) while protecting
	// QoS.
	r := buildRig(t, "er-naive", "er-naive", 0.95)
	ctrl := New(Config{Runtime: r.rt, Steady: r.flux, Window: &qos.FluxWindow{Flux: r.flux, Ext: r.ext}, ExtSig: extSigFromFlux(r.flux), Target: 0.95})
	defer ctrl.Close()
	r.m.AddAgent(ctrl)
	r.m.RunSeconds(8)
	q, _ := r.steadyState(t, 2)
	if q < 0.85 {
		t.Errorf("QoS %.3f not protected by fallback", q)
	}
	st := ctrl.Stats()
	if st.Searches == 0 {
		t.Error("no search ran")
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := buildRig(t, "er-naive", "libquantum", 0.95)
	ctrl := New(Config{Runtime: r.rt, Steady: r.flux, Window: &qos.FluxWindow{Flux: r.flux, Ext: r.ext}, ExtSig: extSigFromFlux(r.flux), Target: 0.95})
	defer ctrl.Close()
	r.m.AddAgent(ctrl)
	r.m.RunSeconds(6)
	st := ctrl.Stats()
	if st.VariantEvals == 0 || st.NapProbes == 0 || st.Compiles == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if ctrl.Space().TotalLoads != 636 {
		t.Errorf("space TotalLoads = %d", ctrl.Space().TotalLoads)
	}
}
