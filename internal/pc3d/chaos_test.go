package pc3d

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/qos"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// buildBareRig is buildRig without attaching a runtime: supervision tests
// create the runtime (and controller) through a supervise.Builder instead.
func buildBareRig(t testing.TB, extName, hostName string) *rig {
	t.Helper()
	extIPS, hostBPS := soloRates(t, extName, hostName)
	m := machine.New(machine.Config{Cores: 4})
	eb, err := workload.MustByName(extName).CompilePlain()
	if err != nil {
		t.Fatalf("compile ext: %v", err)
	}
	ext, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach ext: %v", err)
	}
	hb, err := workload.MustByName(hostName).CompileProtean()
	if err != nil {
		t.Fatalf("compile host: %v", err)
	}
	host, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach host: %v", err)
	}
	flux := qos.NewFluxMonitor(m, host, ext, 0, 0)
	flux.ReferenceIPS = extIPS
	m.AddAgent(flux)
	return &rig{m: m, host: host, ext: ext, flux: flux, extSolo: extIPS, hostBPS: hostBPS}
}

// TestSupervisedCrashMidSearch is the headline safety property (Section
// III-B): kill the runtime the moment its search has variants dispatched,
// and the host must end the quantum on original static code with the
// supervisor re-attaching and resuming the search — the co-runner's QoS
// never endangered by the recovery itself.
func TestSupervisedCrashMidSearch(t *testing.T) {
	r := buildBareRig(t, "er-naive", "libquantum")
	var ctrls []*Controller
	build := func() (*supervise.Session, error) {
		rt, err := core.New(core.Config{Machine: r.m, Host: r.host, RuntimeCore: 2})
		if err != nil {
			return nil, err
		}
		ctrl := New(Config{Runtime: rt, Steady: r.flux, Window: &qos.FluxWindow{Flux: r.flux, Ext: r.ext}, ExtSig: extSigFromFlux(r.flux), Target: 0.95})
		ctrls = append(ctrls, ctrl)
		return &supervise.Session{Runtime: rt, Policy: ctrl, Close: ctrl.Close}, nil
	}
	// Crash exactly once: on the first quantum where the search has a
	// variant dispatched (EVT rewritten away from static code).
	crashed := false
	sup, err := supervise.New(r.m, r.host, build, supervise.Config{
		CrashFn: func(uint64) bool {
			if !crashed && !supervise.AllStatic(r.host) {
				crashed = true
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatalf("supervise.New: %v", err)
	}
	r.m.AddAgent(sup)
	defer sup.Close()

	// Run until the crash fires (the first search dispatches within a few
	// seconds), then one more quantum for the supervisor to reap.
	for i := 0; i < 8000 && sup.Stats().Crashes == 0; i++ {
		r.m.RunQuanta(1)
	}
	if sup.Stats().Crashes != 1 {
		t.Fatal("crash never fired: search dispatched nothing in 8s")
	}
	if len(ctrls) != 1 || ctrls[0].Stats().Searches != 1 {
		t.Fatalf("crash did not land mid-search: %d sessions, stats %+v", len(ctrls), ctrls[0].Stats())
	}
	// The same quantum that observed the crash reverted every EVT slot.
	if !supervise.AllStatic(r.host) {
		t.Fatal("EVT slots not all static immediately after crash recovery")
	}
	if sup.Stats().RevertedSlots == 0 {
		t.Error("recovery reverted no slots despite a dispatched variant")
	}

	// The host keeps executing, and the recovery window itself must not
	// tank the co-runner: original code plus the held nap is no more
	// aggressive than what the search was already measuring.
	crashAt := r.m.Now()
	napAtCrash := r.host.NapIntensity()
	e0, h0 := r.ext.Counters(), r.host.Counters()
	r.m.RunSeconds(0.05) // the backoff window, before re-attach
	if r.host.Counters().Sub(h0).Insts == 0 {
		t.Error("host stalled during recovery window")
	}
	qRecovery := float64(r.ext.Counters().Sub(e0).Insts) / 0.05 / r.extSolo
	if qRecovery < 0.70 {
		t.Errorf("co-runner QoS %.3f during recovery window; recovery itself violated QoS", qRecovery)
	}
	if got := r.host.NapIntensity(); got != napAtCrash {
		t.Errorf("recovery changed nap %.3f -> %.3f; it must hold the last safe setting", napAtCrash, got)
	}

	// Re-attach lands within the first backoff (50 ms), and the fresh
	// session resumes searching.
	r.m.RunSeconds(0.1)
	if sup.Stats().Restarts != 1 {
		t.Fatalf("Restarts = %d shortly after crash, want 1 (capped backoff)", sup.Stats().Restarts)
	}
	if !sup.Healthy() {
		t.Fatal("supervisor unhealthy after re-attach")
	}
	restartLag := float64(r.m.Now()-crashAt) / r.m.Config().FreqHz
	if restartLag > 0.2 {
		t.Errorf("re-attach took %.3fs, want within backoff", restartLag)
	}
	r.m.RunSeconds(8)
	if len(ctrls) != 2 {
		t.Fatalf("no second controller built: %d sessions", len(ctrls))
	}
	if ctrls[1].Stats().Searches == 0 {
		t.Error("restarted controller never resumed the search")
	}
	if q, _ := r.steadyState(t, 1.5); q < 0.85 {
		t.Errorf("steady QoS %.3f after recovery, want protected", q)
	}
}

func TestPC3DSurvivesCompileFaults(t *testing.T) {
	chaos := faults.Chaos{Seed: 11, CompileFailProb: 0.3}
	extIPS, _ := soloRates(t, "er-naive", "libquantum")
	m := machine.New(machine.Config{Cores: 4})
	eb, _ := workload.MustByName("er-naive").CompilePlain()
	ext, err := m.Attach(0, eb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach ext: %v", err)
	}
	hb, _ := workload.MustByName("libquantum").CompileProtean()
	host, err := m.Attach(1, hb, machine.ProcessConfig{Restart: true})
	if err != nil {
		t.Fatalf("attach host: %v", err)
	}
	rt, err := core.New(core.Config{Machine: m, Host: host, RuntimeCore: 2, CompileFault: chaos.CompileFault(0)})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	m.AddAgent(rt)
	flux := qos.NewFluxMonitor(m, host, ext, 0, 0)
	flux.ReferenceIPS = extIPS
	m.AddAgent(flux)
	ctrl := New(Config{Runtime: rt, Steady: flux, Window: &qos.FluxWindow{Flux: flux, Ext: ext}, ExtSig: extSigFromFlux(flux), Target: 0.95})
	defer ctrl.Close()
	m.AddAgent(ctrl)

	m.RunSeconds(10)
	st := ctrl.Stats()
	if st.Searches == 0 {
		t.Fatalf("search never ran under compile faults: %+v", st)
	}
	if st.CompileRetries == 0 {
		t.Errorf("no retries recorded at 30%% compile failure rate: %+v", st)
	}
	e0 := ext.Counters()
	m.RunSeconds(1.5)
	q := float64(ext.Counters().Sub(e0).Insts) / 1.5 / extIPS
	if q < 0.82 {
		t.Errorf("QoS %.3f under compile faults, want protected", q)
	}
}

func TestPC3DSurvivesSensorDropouts(t *testing.T) {
	for _, nan := range []bool{false, true} {
		name := "dead"
		if nan {
			name = "nan"
		}
		t.Run(name, func(t *testing.T) {
			chaos := faults.Chaos{Seed: 5, QoSDropoutProb: 0.3, QoSDropoutNaN: nan}.WithDefaults()
			r := buildRig(t, "er-naive", "libquantum", 0.95)
			drop := chaos.DropoutFn(0, r.m.Config().FreqHz)
			steady := &faults.FlakySource{Src: r.flux, M: r.m, Drop: drop, NaN: nan}
			win := &faults.FlakyWindow{Win: &qos.FluxWindow{Flux: r.flux, Ext: r.ext}, Drop: drop, NaN: nan}
			ctrl := New(Config{Runtime: r.rt, Steady: steady, Window: win, ExtSig: extSigFromFlux(r.flux), Target: 0.95})
			defer ctrl.Close()
			r.m.AddAgent(ctrl)

			r.m.RunSeconds(10)
			st := ctrl.Stats()
			if st.Searches == 0 {
				t.Fatalf("search never ran under sensor dropouts: %+v", st)
			}
			if st.SensorDropouts == 0 {
				t.Errorf("no dropouts recorded at 30%% window loss: %+v", st)
			}
			if math.IsNaN(st.CurrentNap) {
				t.Fatal("NaN reached the nap setting")
			}
			if q, _ := r.steadyState(t, 1.5); q < 0.80 {
				t.Errorf("QoS %.3f under dropouts, want protected", q)
			}
		})
	}
}
