package ir

// CFG holds the control-flow graph of one function in dense index form.
// Build it with BuildCFG after Module.Finalize has assigned block indices.
type CFG struct {
	Fn *Function
	// Succs[i] lists successor block indices of block i.
	Succs [][]int
	// Preds[i] lists predecessor block indices of block i.
	Preds [][]int
	// RPO is a reverse postorder of reachable block indices starting at the
	// entry block.
	RPO []int
	// RPONum[i] is the position of block i in RPO, or -1 if unreachable.
	RPONum []int
}

// BuildCFG computes successor/predecessor lists and a reverse postorder.
func BuildCFG(f *Function) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		Fn:     f,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		RPONum: make([]int, n),
	}
	for i, b := range f.Blocks {
		for _, s := range b.Term.Successors() {
			c.Succs[i] = append(c.Succs[i], s.Index)
			c.Preds[s.Index] = append(c.Preds[s.Index], i)
		}
	}
	// Iterative postorder DFS from the entry block.
	seen := make([]bool, n)
	var post []int
	type frame struct {
		b    int
		next int
	}
	if n > 0 {
		stack := []frame{{b: 0}}
		seen[0] = true
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.next < len(c.Succs[top.b]) {
				s := c.Succs[top.b][top.next]
				top.next++
				if !seen[s] {
					seen[s] = true
					stack = append(stack, frame{b: s})
				}
				continue
			}
			post = append(post, top.b)
			stack = stack[:len(stack)-1]
		}
	}
	c.RPO = make([]int, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.RPONum {
		c.RPONum[i] = -1
	}
	for pos, b := range c.RPO {
		c.RPONum[b] = pos
	}
	return c
}

// Reachable reports whether block index b is reachable from the entry.
func (c *CFG) Reachable(b int) bool { return c.RPONum[b] >= 0 }

// DomTree holds immediate dominators for a function's reachable blocks.
type DomTree struct {
	CFG *CFG
	// IDom[i] is the immediate dominator block index of block i, or -1 for
	// the entry block and unreachable blocks.
	IDom []int
}

// BuildDomTree computes immediate dominators with the Cooper–Harvey–Kennedy
// iterative algorithm over the reverse postorder.
func BuildDomTree(c *CFG) *DomTree {
	n := len(c.Fn.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return &DomTree{CFG: c, IDom: idom}
	}
	idom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range c.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if idom[p] < 0 {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = c.intersect(idom, p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[0] = -1
	return &DomTree{CFG: c, IDom: idom}
}

func (c *CFG) intersect(idom []int, a, b int) int {
	for a != b {
		for c.RPONum[a] > c.RPONum[b] {
			a = idom[a]
		}
		for c.RPONum[b] > c.RPONum[a] {
			b = idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexive).
func (d *DomTree) Dominates(a, b int) bool {
	if !d.CFG.Reachable(a) || !d.CFG.Reachable(b) {
		return false
	}
	for b != a {
		b = d.IDom[b]
		if b < 0 {
			return false
		}
	}
	return true
}
