// Package ir defines the intermediate representation embedded into protean
// binaries and consumed by the protean runtime compiler.
//
// The IR plays the role LLVM bitcode plays in the paper: a structured,
// semantically rich program form that the runtime can analyze (loop nesting,
// load sites, call structure) and transform (non-temporal hint insertion)
// without disassembling machine code. It is a register-based, CFG-structured
// IR: a Module holds Globals (data regions) and Functions; a Function holds
// Blocks; a Block holds straight-line Instrs and one Terminator.
//
// Every memory instruction carries an Access descriptor instead of raw
// address arithmetic. The descriptor states which Global the instruction
// touches and with what pattern (streaming, striding, pointer-chasing,
// uniform random, hot-set). This is the simulation substitute for the
// pointer arithmetic a real program would perform: it preserves exactly the
// locality information the cache hierarchy reacts to, which is the property
// the paper's transformations manipulate.
package ir

import (
	"fmt"
	"sort"
)

// Reg names a virtual register local to a function. Registers hold signed
// 64-bit integers. Register 0 is valid and carries no special meaning.
type Reg int

// Operand is either a register or an immediate constant.
type Operand struct {
	// IsReg selects between Reg (true) and Imm (false).
	IsReg bool
	Reg   Reg
	Imm   int64
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{IsReg: true, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Imm: v} }

func (o Operand) String() string {
	if o.IsReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	return fmt.Sprintf("%d", o.Imm)
}

// BinKind enumerates binary ALU operations.
type BinKind int

// Binary ALU operations.
const (
	Add BinKind = iota
	Sub
	Mul
	Div
	And
	Or
	Xor
	Shl
	Shr
)

var binNames = [...]string{"add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr"}

func (k BinKind) String() string {
	if int(k) < len(binNames) {
		return binNames[k]
	}
	return fmt.Sprintf("bin(%d)", int(k))
}

// CmpKind enumerates comparison predicates for conditional branches.
type CmpKind int

// Comparison predicates.
const (
	Eq CmpKind = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (k CmpKind) String() string {
	if int(k) < len(cmpNames) {
		return cmpNames[k]
	}
	return fmt.Sprintf("cmp(%d)", int(k))
}

// Pattern describes how a memory instruction walks its Global across dynamic
// executions. The interpreter in internal/machine turns a Pattern into a
// concrete address stream.
type Pattern int

// Address stream patterns.
const (
	// Seq streams sequentially through the region with the given Stride,
	// wrapping at the region end. High spatial locality, no temporal reuse
	// beyond the line: the classic non-temporal candidate.
	Seq Pattern = iota
	// Rand draws addresses uniformly from the region. Temporal locality is
	// proportional to how much of the region fits in cache.
	Rand
	// Chase emulates pointer chasing: the next address is a pseudo-random
	// function of the previous one, serializing accesses within the region.
	Chase
	// Hot draws most accesses from a small hot subset of the region and the
	// rest uniformly; good temporal locality on the hot set.
	Hot
	// Pin reads the same fixed address (the region base) on every dynamic
	// execution — the address-stream form of a loop-invariant address
	// operand, e.g. a scalar flag or descriptor re-read each iteration.
	// Perfect temporal locality: the line is hot after the first touch, so
	// prefetching it is useless and a non-temporal hint is actively harmful.
	Pin
)

var patNames = [...]string{"seq", "rand", "chase", "hot", "pin"}

func (p Pattern) String() string {
	if int(p) < len(patNames) {
		return patNames[p]
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Access describes the address stream of one static memory instruction.
type Access struct {
	// Global names the data region the instruction touches.
	Global string
	// Pattern selects the address stream shape.
	Pattern Pattern
	// Stride is the per-execution address increment for Seq (bytes).
	// Ignored for other patterns; 0 defaults to 8.
	Stride int64
	// HotBytes is the hot subset size for Hot (bytes). 0 defaults to 4096.
	HotBytes int64
}

// Invariant reports whether the access stream touches a single fixed
// address, i.e. the address operand is invariant across dynamic executions.
func (a Access) Invariant() bool { return a.Pattern == Pin }

func (a Access) String() string {
	s := fmt.Sprintf("%s[%s", a.Global, a.Pattern)
	if a.Stride != 0 {
		s += fmt.Sprintf(" stride=%d", a.Stride)
	}
	if a.HotBytes != 0 {
		s += fmt.Sprintf(" hot=%d", a.HotBytes)
	}
	return s + "]"
}

// Instr is a non-terminator instruction. Concrete types: *BinOp, *Const,
// *Load, *Store, *Prefetch, *Call.
type Instr interface {
	fmt.Stringer
	instr()
}

// BinOp computes Dst = X <op> Y.
type BinOp struct {
	Dst Reg
	Op  BinKind
	X   Operand
	Y   Operand
}

// Const sets Dst = Value.
type Const struct {
	Dst   Reg
	Value int64
}

// Load reads memory described by Acc into Dst.
//
// ID is the module-unique static load site identifier, assigned by
// Module.Finalize. PC3D's variant bit vectors index loads by ID. NT marks
// the load as carrying a non-temporal hint; pcc emits no NT loads — the
// runtime compiler toggles NT when materializing variants.
//
// MemID is the module-unique memory-site identifier shared by loads,
// stores and prefetches, assigned by Finalize. MemIDs are 1-based; 0 means
// "not yet assigned". The machine keys address-generator cursor state by
// MemID, so a runtime-generated variant resumes each access stream exactly
// where the original code left off — the position a real program would
// carry in registers and memory across a code-variant switch. Finalize
// preserves already-assigned MemIDs and gives fresh instructions new IDs
// past the existing maximum, so MemIDs are stable under Clone, attribute
// transforms (hint toggling), and instruction insertion (runtime-inserted
// prefetches).
type Load struct {
	Dst   Reg
	Acc   Access
	ID    int
	MemID int
	NT    bool
}

// Store writes Val to memory described by Acc. MemID: see Load.
type Store struct {
	Val   Operand
	Acc   Access
	MemID int
}

// Prefetch issues a software prefetch for the stream described by Acc.
// NT marks it non-temporal (the prefetchnta analog). MemID: see Load.
//
// Lead, when non-zero, makes this a lead prefetch: it warms the address
// Lead bytes ahead of the site's current stream position without advancing
// the stream. Runtime-inserted software prefetching (the pcsp policy) sets
// MemID to the target load's MemID so prefetch and load share one cursor.
type Prefetch struct {
	Acc   Access
	NT    bool
	MemID int
	Lead  int64
}

// Call transfers control to Callee and returns. Calls carry no arguments;
// workload programs communicate through Globals, which is sufficient for
// the timing and locality behaviour the simulation models.
type Call struct {
	Callee string
}

func (*BinOp) instr()    {}
func (*Const) instr()    {}
func (*Load) instr()     {}
func (*Store) instr()    {}
func (*Prefetch) instr() {}
func (*Call) instr()     {}

func (i *BinOp) String() string { return fmt.Sprintf("r%d = %s %s, %s", i.Dst, i.Op, i.X, i.Y) }
func (i *Const) String() string { return fmt.Sprintf("r%d = const %d", i.Dst, i.Value) }
func (i *Load) String() string {
	nt := ""
	if i.NT {
		nt = " !nt"
	}
	return fmt.Sprintf("r%d = load #%d %s%s", i.Dst, i.ID, i.Acc, nt)
}
func (i *Store) String() string { return fmt.Sprintf("store %s, %s", i.Val, i.Acc) }
func (i *Prefetch) String() string {
	nt := ""
	if i.NT {
		nt = " !nt"
	}
	return fmt.Sprintf("prefetch %s%s", i.Acc, nt)
}
func (i *Call) String() string { return fmt.Sprintf("call @%s", i.Callee) }

// Terminator ends a block. Concrete types: *Jump, *Branch, *Return.
type Terminator interface {
	fmt.Stringer
	term()
	// Successors returns the blocks control may flow to.
	Successors() []*Block
}

// Jump unconditionally transfers to Target.
type Jump struct {
	Target *Block
}

// Branch compares X <cmp> Y and transfers to True or False.
type Branch struct {
	X     Reg
	Cmp   CmpKind
	Y     Operand
	True  *Block
	False *Block
}

// Return exits the function.
type Return struct{}

func (*Jump) term()   {}
func (*Branch) term() {}
func (*Return) term() {}

// Successors returns the single jump target.
func (t *Jump) Successors() []*Block { return []*Block{t.Target} }

// Successors returns the taken and fall-through targets.
func (t *Branch) Successors() []*Block { return []*Block{t.True, t.False} }

// Successors returns nil: return leaves the function.
func (t *Return) Successors() []*Block { return nil }

func (t *Jump) String() string { return fmt.Sprintf("jump %%%s", t.Target.Name) }
func (t *Branch) String() string {
	return fmt.Sprintf("br r%d %s %s, %%%s, %%%s", t.X, t.Cmp, t.Y, t.True.Name, t.False.Name)
}
func (t *Return) String() string { return "ret" }

// Block is a basic block: straight-line Instrs followed by one Terminator.
type Block struct {
	Name   string
	Instrs []Instr
	Term   Terminator

	// Index is the block's position within its function, assigned by
	// Module.Finalize. Analyses use it for dense indexing.
	Index int
}

// Function is a named procedure. Blocks[0] is the entry block.
type Function struct {
	Name   string
	Blocks []*Block

	// MaxReg is one past the highest register mentioned in the function,
	// assigned by Module.Finalize. The interpreter sizes register files
	// from it.
	MaxReg int
}

// Entry returns the entry block, or nil for an empty function.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Global is a named data region of Size bytes.
type Global struct {
	Name string
	Size int64
}

// Module is a whole program: globals, functions, and an entry function name.
type Module struct {
	Name    string
	EntryFn string
	Globals []*Global
	Funcs   []*Function

	// NumLoads is the number of static load sites, assigned by Finalize.
	// Load IDs are dense in [0, NumLoads).
	NumLoads int
	// NumMemSites counts all static memory sites (loads, stores,
	// prefetches); MemIDs are dense in [1, NumMemSites].
	NumMemSites int
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Finalize assigns block indices, dense load-site IDs and memory-site IDs
// (in a deterministic function-then-block-then-instruction order), and
// per-function MaxReg, then verifies the module. It must be called after
// construction or mutation and before codegen, serialization, or analysis.
//
// Memory-site IDs already assigned by a previous Finalize are preserved;
// only unassigned instructions (MemID 0, e.g. prefetches inserted by a
// runtime transform) receive fresh IDs past the existing maximum. Load IDs
// are always reassigned densely by position — loads are never inserted or
// removed by supported transforms, so their order (and therefore their
// IDs) is stable.
func (m *Module) Finalize() error {
	id := 0
	memID := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *Load:
					if in.MemID > memID {
						memID = in.MemID
					}
				case *Store:
					if in.MemID > memID {
						memID = in.MemID
					}
				case *Prefetch:
					if in.MemID > memID {
						memID = in.MemID
					}
				}
			}
		}
	}
	for _, f := range m.Funcs {
		maxReg := 0
		note := func(r Reg) {
			if int(r)+1 > maxReg {
				maxReg = int(r) + 1
			}
		}
		noteOp := func(o Operand) {
			if o.IsReg {
				note(o.Reg)
			}
		}
		for bi, b := range f.Blocks {
			b.Index = bi
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *BinOp:
					note(in.Dst)
					noteOp(in.X)
					noteOp(in.Y)
				case *Const:
					note(in.Dst)
				case *Load:
					note(in.Dst)
					in.ID = id
					id++
					if in.MemID == 0 {
						memID++
						in.MemID = memID
					}
				case *Store:
					noteOp(in.Val)
					if in.MemID == 0 {
						memID++
						in.MemID = memID
					}
				case *Prefetch:
					if in.MemID == 0 {
						memID++
						in.MemID = memID
					}
				}
			}
			if br, ok := b.Term.(*Branch); ok {
				note(br.X)
				noteOp(br.Y)
			}
		}
		f.MaxReg = maxReg
	}
	m.NumLoads = id
	m.NumMemSites = memID
	return m.Verify()
}

// Loads returns all static load sites in ID order. Finalize must have run.
func (m *Module) Loads() []*Load {
	out := make([]*Load, m.NumLoads)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ld, ok := in.(*Load); ok {
					out[ld.ID] = ld
				}
			}
		}
	}
	return out
}

// LoadSite pairs a static load with its enclosing function and block.
type LoadSite struct {
	Load  *Load
	Func  *Function
	Block *Block
}

// LoadSites returns every load site with location context, in ID order.
func (m *Module) LoadSites() []LoadSite {
	out := make([]LoadSite, m.NumLoads)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ld, ok := in.(*Load); ok {
					out[ld.ID] = LoadSite{Load: ld, Func: f, Block: b}
				}
			}
		}
	}
	return out
}

// SortedFuncNames returns function names in lexical order (stable reporting).
func (m *Module) SortedFuncNames() []string {
	names := make([]string, len(m.Funcs))
	for i, f := range m.Funcs {
		names[i] = f.Name
	}
	sort.Strings(names)
	return names
}
