package ir

import "sort"

// CallEdge is one static call site.
type CallEdge struct {
	Caller string
	Callee string
	// Block is the index of the block containing the call in the caller.
	Block int
	// Pos is the instruction index of the call within the block.
	Pos int
}

// CallGraph holds the static call graph of a module.
type CallGraph struct {
	Module *Module
	Edges  []CallEdge
	// Callees[f] lists distinct callee names of function f, sorted.
	Callees map[string][]string
	// Callers[f] lists distinct caller names of function f, sorted.
	Callers map[string][]string
}

// BuildCallGraph scans every block for call instructions.
func BuildCallGraph(m *Module) *CallGraph {
	cg := &CallGraph{
		Module:  m,
		Callees: make(map[string][]string),
		Callers: make(map[string][]string),
	}
	calleeSet := make(map[string]map[string]bool)
	callerSet := make(map[string]map[string]bool)
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			for pi, in := range b.Instrs {
				call, ok := in.(*Call)
				if !ok {
					continue
				}
				cg.Edges = append(cg.Edges, CallEdge{Caller: f.Name, Callee: call.Callee, Block: bi, Pos: pi})
				if calleeSet[f.Name] == nil {
					calleeSet[f.Name] = make(map[string]bool)
				}
				calleeSet[f.Name][call.Callee] = true
				if callerSet[call.Callee] == nil {
					callerSet[call.Callee] = make(map[string]bool)
				}
				callerSet[call.Callee][f.Name] = true
			}
		}
	}
	for f, set := range calleeSet {
		cg.Callees[f] = sortedKeys(set)
	}
	for f, set := range callerSet {
		cg.Callers[f] = sortedKeys(set)
	}
	return cg
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReachableFrom returns the set of function names reachable from root
// (including root) following static call edges.
func (cg *CallGraph) ReachableFrom(root string) map[string]bool {
	seen := map[string]bool{root: true}
	stack := []string{root}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range cg.Callees[f] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}
