package ir

import "sort"

// Loop is one natural loop discovered in a function's CFG.
type Loop struct {
	// Header is the block index of the loop header.
	Header int
	// Blocks lists the indices of all blocks in the loop body, including
	// the header, in ascending order.
	Blocks []int
	// Depth is the nesting depth: 1 for an outermost loop, 2 for a loop
	// nested inside one loop, and so on.
	Depth int
	// Parent is the enclosing loop, or nil for outermost loops.
	Parent *Loop
	// Children are the loops immediately nested inside this one.
	Children []*Loop
}

// LoopForest holds all natural loops of one function.
//
// PC3D consumes exactly the information this analysis produces: which loads
// live at the maximum nesting depth within each function (Section IV-C,
// "Only Innermost Loops").
type LoopForest struct {
	Fn *Function
	// Roots are the outermost loops.
	Roots []*Loop
	// BlockDepth[i] is the loop nesting depth of block i (0 = not in a loop).
	BlockDepth []int
	// MaxDepth is the maximum nesting depth in the function.
	MaxDepth int
}

// BuildLoopForest finds natural loops via back edges (edge u->h where h
// dominates u), merges loops sharing a header, and nests loops by body
// containment.
func BuildLoopForest(f *Function) *LoopForest {
	cfg := BuildCFG(f)
	dom := BuildDomTree(cfg)
	n := len(f.Blocks)

	// Collect loop bodies per header.
	bodies := make(map[int]map[int]bool)
	for u := 0; u < n; u++ {
		if !cfg.Reachable(u) {
			continue
		}
		for _, h := range cfg.Succs[u] {
			if !dom.Dominates(h, u) {
				continue
			}
			body := bodies[h]
			if body == nil {
				body = map[int]bool{h: true}
				bodies[h] = body
			}
			// Walk backwards from u adding predecessors until the header.
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[b] {
					continue
				}
				body[b] = true
				for _, p := range cfg.Preds[b] {
					if cfg.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	loops := make([]*Loop, 0, len(bodies))
	for h, body := range bodies {
		blocks := make([]int, 0, len(body))
		for b := range body {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		loops = append(loops, &Loop{Header: h, Blocks: blocks})
	}
	// Sort by body size ascending so that nesting assignment sees inner
	// loops before outer ones; ties broken by header for determinism.
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) < len(loops[j].Blocks)
		}
		return loops[i].Header < loops[j].Header
	})

	// Nest: the parent of loop L is the smallest strictly-larger loop whose
	// body contains L's header.
	sets := make([]map[int]bool, len(loops))
	for i, l := range loops {
		s := make(map[int]bool, len(l.Blocks))
		for _, b := range l.Blocks {
			s[b] = true
		}
		sets[i] = s
	}
	forest := &LoopForest{Fn: f, BlockDepth: make([]int, n)}
	for i, l := range loops {
		for j := i + 1; j < len(loops); j++ {
			if loops[j].Header != l.Header && sets[j][l.Header] {
				l.Parent = loops[j]
				loops[j].Children = append(loops[j].Children, l)
				break
			}
		}
		if l.Parent == nil {
			forest.Roots = append(forest.Roots, l)
		}
	}
	sort.Slice(forest.Roots, func(i, j int) bool { return forest.Roots[i].Header < forest.Roots[j].Header })

	// Assign depths top-down.
	var assign func(l *Loop, d int)
	assign = func(l *Loop, d int) {
		l.Depth = d
		if d > forest.MaxDepth {
			forest.MaxDepth = d
		}
		sort.Slice(l.Children, func(i, j int) bool { return l.Children[i].Header < l.Children[j].Header })
		for _, c := range l.Children {
			assign(c, d+1)
		}
	}
	for _, r := range forest.Roots {
		assign(r, 1)
	}

	// Block depth = depth of the innermost loop containing the block.
	// Iterating small-to-large and keeping the max works because inner
	// loops are subsets of outer ones.
	for _, l := range loops {
		for _, b := range l.Blocks {
			if l.Depth > forest.BlockDepth[b] {
				forest.BlockDepth[b] = l.Depth
			}
		}
	}
	return forest
}

// Depth returns the nesting depth of the block index (0 = not in a loop).
func (lf *LoopForest) Depth(block int) int { return lf.BlockDepth[block] }

// AtMaxDepth reports whether the block sits at the function's maximum loop
// nesting depth. For a function with no loops every block trivially
// qualifies (MaxDepth 0 == depth 0), which matches the paper's heuristic:
// the filter only prunes loads that provably sit outside the deepest loops.
func (lf *LoopForest) AtMaxDepth(block int) bool {
	return lf.BlockDepth[block] == lf.MaxDepth
}

// NumLoops counts all loops in the forest.
func (lf *LoopForest) NumLoops() int {
	n := 0
	var walk func(l *Loop)
	walk = func(l *Loop) {
		n++
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, r := range lf.Roots {
		walk(r)
	}
	return n
}
