package ir

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := buildDiamond(t)
	data, err := EncodeBytes(m)
	if err != nil {
		t.Fatalf("EncodeBytes: %v", err)
	}
	got, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	assertModulesEqual(t, m, got)
}

func TestEncodeIsCompressed(t *testing.T) {
	// A module with many similar blocks must compress well below its
	// uncompressed gob size; check it at least starts with the zlib header.
	mb := NewModuleBuilder("big")
	mb.Global("g", 1<<20)
	fb := mb.Function("main")
	for i := 0; i < 50; i++ {
		fb.Loop(1000, func() {
			fb.Load(Access{Global: "g", Pattern: Seq, Stride: 64})
			fb.Work(5)
		})
	}
	fb.Return()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	data, err := EncodeBytes(m)
	if err != nil {
		t.Fatalf("EncodeBytes: %v", err)
	}
	if len(data) < 2 || data[0] != 0x78 {
		t.Errorf("encoded form does not look zlib-compressed (first byte %#x)", data[0])
	}
	// Round trip for good measure.
	got, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	if got.NumLoads != m.NumLoads {
		t.Errorf("NumLoads = %d, want %d", got.NumLoads, m.NumLoads)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBytes([]byte("not a module")); err == nil {
		t.Fatal("DecodeBytes accepted garbage")
	}
	if _, err := DecodeBytes(nil); err == nil {
		t.Fatal("DecodeBytes accepted empty input")
	}
}

func TestDecodePreservesNTBits(t *testing.T) {
	m := buildDiamond(t)
	m.Loads()[1].NT = true
	data, err := EncodeBytes(m)
	if err != nil {
		t.Fatalf("EncodeBytes: %v", err)
	}
	got, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	if got.Loads()[0].NT || !got.Loads()[1].NT {
		t.Errorf("NT bits not preserved: %v %v", got.Loads()[0].NT, got.Loads()[1].NT)
	}
}

// randomModule builds a random but valid module for property testing.
func randomModule(rng *rand.Rand) *Module {
	mb := NewModuleBuilder("prop")
	mb.Global("a", 1+int64(rng.Intn(1<<16)))
	mb.Global("b", 1+int64(rng.Intn(1<<16)))
	globals := []string{"a", "b"}
	nf := 1 + rng.Intn(4)
	names := make([]string, nf)
	for i := range names {
		names[i] = "f" + string(rune('0'+i))
	}
	for i, name := range names {
		fb := mb.Function(name)
		depth := rng.Intn(3)
		var emit func(d int)
		emit = func(d int) {
			nin := rng.Intn(4)
			for j := 0; j < nin; j++ {
				switch rng.Intn(4) {
				case 0:
					fb.Load(Access{
						Global:  globals[rng.Intn(2)],
						Pattern: Pattern(rng.Intn(4)),
						Stride:  int64(rng.Intn(256)),
					})
				case 1:
					fb.Store(Imm(int64(rng.Intn(100))), Access{Global: globals[rng.Intn(2)], Pattern: Rand})
				case 2:
					fb.Work(1 + rng.Intn(3))
				default:
					// Call a later-defined function to keep the graph acyclic.
					if i+1 < nf {
						fb.Call(names[i+1+rng.Intn(nf-i-1)])
					} else {
						fb.Work(1)
					}
				}
			}
			if d > 0 {
				fb.Loop(int64(1+rng.Intn(10)), func() { emit(d - 1) })
			}
		}
		emit(depth)
		fb.Return()
	}
	mb.SetEntry(names[0])
	return mb.MustBuild()
}

// Property: encode → decode is the identity on the wire-visible structure.
func TestEncodeDecodeRandomModules(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModule(rng)
		data, err := EncodeBytes(m)
		if err != nil {
			return false
		}
		got, err := DecodeBytes(data)
		if err != nil {
			return false
		}
		return modulesEqual(m, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is deterministic.
func TestEncodeDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModule(rng)
		d1, err1 := EncodeBytes(m)
		d2, err2 := EncodeBytes(m)
		return err1 == nil && err2 == nil && bytes.Equal(d1, d2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func assertModulesEqual(t *testing.T, want, got *Module) {
	t.Helper()
	if !modulesEqual(want, got) {
		t.Fatalf("modules differ after round trip:\nwant %+v\ngot  %+v", want, got)
	}
}

func modulesEqual(a, b *Module) bool {
	if a.Name != b.Name || a.EntryFn != b.EntryFn || a.NumLoads != b.NumLoads {
		return false
	}
	if len(a.Globals) != len(b.Globals) || len(a.Funcs) != len(b.Funcs) {
		return false
	}
	for i := range a.Globals {
		if *a.Globals[i] != *b.Globals[i] {
			return false
		}
	}
	for i := range a.Funcs {
		fa, fb := a.Funcs[i], b.Funcs[i]
		if fa.Name != fb.Name || fa.MaxReg != fb.MaxReg || len(fa.Blocks) != len(fb.Blocks) {
			return false
		}
		for j := range fa.Blocks {
			ba, bb := fa.Blocks[j], fb.Blocks[j]
			if ba.Name != bb.Name || len(ba.Instrs) != len(bb.Instrs) {
				return false
			}
			for k := range ba.Instrs {
				if !reflect.DeepEqual(ba.Instrs[k], bb.Instrs[k]) {
					return false
				}
			}
			if !termEqual(ba.Term, bb.Term) {
				return false
			}
		}
	}
	return true
}

func termEqual(a, b Terminator) bool {
	switch ta := a.(type) {
	case *Jump:
		tb, ok := b.(*Jump)
		return ok && ta.Target.Name == tb.Target.Name
	case *Branch:
		tb, ok := b.(*Branch)
		return ok && ta.X == tb.X && ta.Cmp == tb.Cmp && ta.Y == tb.Y &&
			ta.True.Name == tb.True.Name && ta.False.Name == tb.False.Name
	case *Return:
		_, ok := b.(*Return)
		return ok
	}
	return false
}
