package ir

import (
	"errors"
	"strings"
	"testing"
)

// buildDiamond constructs a function with an if/else diamond inside a loop:
//
//	entry -> header -> {left,right} -> join -> header (back edge) -> exit
func buildDiamond(t *testing.T) *Module {
	t.Helper()
	mb := NewModuleBuilder("diamond")
	mb.Global("g", 4096)
	fb := mb.Function("main")
	i := fb.Const(0)
	header := fb.Block("header")
	left := fb.Block("left")
	right := fb.Block("right")
	join := fb.Block("join")
	exit := fb.Block("exit")
	fb.Jump(header)

	fb.SetBlock(header)
	fb.Branch(i, Lt, Imm(10), left, exit)

	fb.SetBlock(left)
	fb.Load(Access{Global: "g", Pattern: Seq})
	fb.Jump(join)

	fb.SetBlock(right)
	fb.Load(Access{Global: "g", Pattern: Rand})
	fb.Jump(join)

	fb.SetBlock(join)
	fb.cur.Instrs = append(fb.cur.Instrs, &BinOp{Dst: i, Op: Add, X: R(i), Y: Imm(1)})
	fb.Branch(i, Lt, Imm(5), header, right)

	fb.SetBlock(exit)
	fb.Return()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestFinalizeAssignsLoadIDs(t *testing.T) {
	m := buildDiamond(t)
	if m.NumLoads != 2 {
		t.Fatalf("NumLoads = %d, want 2", m.NumLoads)
	}
	loads := m.Loads()
	for i, ld := range loads {
		if ld == nil {
			t.Fatalf("load %d missing", i)
		}
		if ld.ID != i {
			t.Errorf("load %d has ID %d", i, ld.ID)
		}
	}
	if loads[0].Acc.Pattern != Seq || loads[1].Acc.Pattern != Rand {
		t.Errorf("load order not deterministic: %v then %v", loads[0].Acc.Pattern, loads[1].Acc.Pattern)
	}
}

func TestFinalizeMaxReg(t *testing.T) {
	m := buildDiamond(t)
	f := m.Func("main")
	if f.MaxReg < 3 {
		t.Errorf("MaxReg = %d, want >= 3 (counter + two load dests)", f.MaxReg)
	}
}

func TestLoadSites(t *testing.T) {
	m := buildDiamond(t)
	sites := m.LoadSites()
	if len(sites) != 2 {
		t.Fatalf("got %d sites, want 2", len(sites))
	}
	if sites[0].Func.Name != "main" || sites[0].Block.Name != "left" {
		t.Errorf("site 0 at %s.%s, want main.left", sites[0].Func.Name, sites[0].Block.Name)
	}
	if sites[1].Block.Name != "right" {
		t.Errorf("site 1 in block %s, want right", sites[1].Block.Name)
	}
}

func TestVerifyCatchesBadModules(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Module
	}{
		{"no entry function", func() *Module {
			m := &Module{Name: "x", Funcs: []*Function{{Name: "f", Blocks: []*Block{{Name: "e", Term: &Return{}}}}}}
			return m
		}},
		{"entry undefined", func() *Module {
			m := &Module{Name: "x", EntryFn: "missing",
				Funcs: []*Function{{Name: "f", Blocks: []*Block{{Name: "e", Term: &Return{}}}}}}
			return m
		}},
		{"missing terminator", func() *Module {
			return &Module{Name: "x", EntryFn: "f",
				Funcs: []*Function{{Name: "f", Blocks: []*Block{{Name: "e"}}}}}
		}},
		{"undeclared global", func() *Module {
			b := &Block{Name: "e", Instrs: []Instr{&Load{Acc: Access{Global: "nope"}}}, Term: &Return{}}
			return &Module{Name: "x", EntryFn: "f", Funcs: []*Function{{Name: "f", Blocks: []*Block{b}}}}
		}},
		{"call to undefined function", func() *Module {
			b := &Block{Name: "e", Instrs: []Instr{&Call{Callee: "ghost"}}, Term: &Return{}}
			return &Module{Name: "x", EntryFn: "f", Funcs: []*Function{{Name: "f", Blocks: []*Block{b}}}}
		}},
		{"duplicate function", func() *Module {
			f1 := &Function{Name: "f", Blocks: []*Block{{Name: "e", Term: &Return{}}}}
			f2 := &Function{Name: "f", Blocks: []*Block{{Name: "e", Term: &Return{}}}}
			return &Module{Name: "x", EntryFn: "f", Funcs: []*Function{f1, f2}}
		}},
		{"duplicate global", func() *Module {
			return &Module{Name: "x", EntryFn: "f",
				Globals: []*Global{{Name: "g", Size: 8}, {Name: "g", Size: 8}},
				Funcs:   []*Function{{Name: "f", Blocks: []*Block{{Name: "e", Term: &Return{}}}}}}
		}},
		{"non-positive global size", func() *Module {
			return &Module{Name: "x", EntryFn: "f",
				Globals: []*Global{{Name: "g", Size: 0}},
				Funcs:   []*Function{{Name: "f", Blocks: []*Block{{Name: "e", Term: &Return{}}}}}}
		}},
		{"cross-function branch target", func() *Module {
			other := &Block{Name: "o", Term: &Return{}}
			b := &Block{Name: "e", Term: &Jump{Target: other}}
			return &Module{Name: "x", EntryFn: "f", Funcs: []*Function{
				{Name: "f", Blocks: []*Block{b}},
				{Name: "g", Blocks: []*Block{other}},
			}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Verify()
			if err == nil {
				t.Fatal("Verify accepted an invalid module")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("error %v does not wrap ErrInvalid", err)
			}
		})
	}
}

func TestVerifyAcceptsValidModule(t *testing.T) {
	if err := buildDiamond(t).Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{&BinOp{Dst: 1, Op: Add, X: R(2), Y: Imm(3)}, "r1 = add r2, 3"},
		{&Const{Dst: 0, Value: 42}, "r0 = const 42"},
		{&Load{Dst: 4, ID: 7, Acc: Access{Global: "g", Pattern: Seq}}, "r4 = load #7 g[seq]"},
		{&Load{Dst: 4, ID: 7, NT: true, Acc: Access{Global: "g", Pattern: Seq}}, "r4 = load #7 g[seq] !nt"},
		{&Store{Val: Imm(1), Acc: Access{Global: "g", Pattern: Rand}}, "store 1, g[rand]"},
		{&Prefetch{Acc: Access{Global: "g", Pattern: Chase}, NT: true}, "prefetch g[chase] !nt"},
		{&Call{Callee: "f"}, "call @f"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestBuilderLoopShape(t *testing.T) {
	mb := NewModuleBuilder("loops")
	mb.Global("g", 1<<16)
	fb := mb.Function("main")
	fb.Loop(100, func() {
		fb.Load(Access{Global: "g", Pattern: Seq})
	})
	fb.Return()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	lf := BuildLoopForest(m.Func("main"))
	if lf.MaxDepth != 1 {
		t.Fatalf("MaxDepth = %d, want 1", lf.MaxDepth)
	}
	if lf.NumLoops() != 1 {
		t.Fatalf("NumLoops = %d, want 1", lf.NumLoops())
	}
}

func TestBuilderNestedLoops(t *testing.T) {
	mb := NewModuleBuilder("nest")
	mb.Global("g", 1<<16)
	fb := mb.Function("main")
	var innerLoad, outerLoad Reg
	fb.Loop(10, func() {
		outerLoad = fb.Load(Access{Global: "g", Pattern: Rand})
		fb.Loop(10, func() {
			fb.Loop(10, func() {
				innerLoad = fb.Load(Access{Global: "g", Pattern: Seq})
			})
		})
	})
	fb.Return()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	_ = innerLoad
	_ = outerLoad
	lf := BuildLoopForest(m.Func("main"))
	if lf.MaxDepth != 3 {
		t.Fatalf("MaxDepth = %d, want 3", lf.MaxDepth)
	}
	if got := lf.NumLoops(); got != 3 {
		t.Fatalf("NumLoops = %d, want 3", got)
	}
	// The sequential load must be at depth 3, the random one at depth 1.
	for _, site := range m.LoadSites() {
		depth := lf.Depth(site.Block.Index)
		switch site.Load.Acc.Pattern {
		case Seq:
			if depth != 3 {
				t.Errorf("inner load at depth %d, want 3", depth)
			}
		case Rand:
			if depth != 1 {
				t.Errorf("outer load at depth %d, want 1", depth)
			}
		}
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	m := buildDiamond(t)
	c := m.Clone()
	if err := c.Verify(); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	// Mutating the clone's load must not affect the original.
	c.Loads()[0].NT = true
	if m.Loads()[0].NT {
		t.Error("mutating clone affected original")
	}
	// Clone block pointers must be distinct objects.
	if m.Funcs[0].Blocks[0] == c.Funcs[0].Blocks[0] {
		t.Error("clone shares block pointers with original")
	}
	// Terminator targets must point into the clone, not the original.
	orig := map[*Block]bool{}
	for _, b := range m.Funcs[0].Blocks {
		orig[b] = true
	}
	for _, b := range c.Funcs[0].Blocks {
		for _, s := range b.Term.Successors() {
			if orig[s] {
				t.Fatalf("clone terminator in %s targets a block of the original", b.Name)
			}
		}
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid module")
		}
	}()
	mb := NewModuleBuilder("bad")
	fb := mb.Function("f")
	fb.Call("missing")
	fb.Return()
	mb.SetEntry("f")
	mb.MustBuild()
}

func TestAccessString(t *testing.T) {
	a := Access{Global: "buf", Pattern: Seq, Stride: 64}
	if got := a.String(); !strings.Contains(got, "stride=64") || !strings.Contains(got, "buf[seq") {
		t.Errorf("Access.String() = %q", got)
	}
}
