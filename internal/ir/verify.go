package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid is wrapped by all verification failures.
var ErrInvalid = errors.New("ir: invalid module")

func verifyErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Verify checks structural well-formedness:
//   - the entry function exists,
//   - function and global names are unique and non-empty,
//   - every function has at least one block, every block a terminator,
//   - branch/jump targets belong to the same function,
//   - calls name functions that exist in the module,
//   - memory instructions reference declared globals,
//   - globals have positive sizes.
func (m *Module) Verify() error {
	if m.Name == "" {
		return verifyErr("module has no name")
	}
	globals := make(map[string]bool, len(m.Globals))
	for _, g := range m.Globals {
		if g.Name == "" {
			return verifyErr("global with empty name")
		}
		if globals[g.Name] {
			return verifyErr("duplicate global %q", g.Name)
		}
		if g.Size <= 0 {
			return verifyErr("global %q has non-positive size %d", g.Name, g.Size)
		}
		globals[g.Name] = true
	}
	funcs := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		if f.Name == "" {
			return verifyErr("function with empty name")
		}
		if funcs[f.Name] {
			return verifyErr("duplicate function %q", f.Name)
		}
		funcs[f.Name] = true
	}
	if m.EntryFn == "" {
		return verifyErr("module has no entry function")
	}
	if !funcs[m.EntryFn] {
		return verifyErr("entry function %q not defined", m.EntryFn)
	}
	for _, f := range m.Funcs {
		if err := m.verifyFunc(f, globals, funcs); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) verifyFunc(f *Function, globals, funcs map[string]bool) error {
	if len(f.Blocks) == 0 {
		return verifyErr("function %q has no blocks", f.Name)
	}
	own := make(map[*Block]bool, len(f.Blocks))
	names := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if b.Name == "" {
			return verifyErr("function %q has a block with empty name", f.Name)
		}
		if names[b.Name] {
			return verifyErr("function %q has duplicate block %q", f.Name, b.Name)
		}
		names[b.Name] = true
		own[b] = true
	}
	checkAcc := func(where string, a Access) error {
		if !globals[a.Global] {
			return verifyErr("function %q: %s references undeclared global %q", f.Name, where, a.Global)
		}
		if a.Stride < 0 {
			return verifyErr("function %q: %s has negative stride", f.Name, where)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *Load:
				if err := checkAcc("load", in.Acc); err != nil {
					return err
				}
			case *Store:
				if err := checkAcc("store", in.Acc); err != nil {
					return err
				}
			case *Prefetch:
				if err := checkAcc("prefetch", in.Acc); err != nil {
					return err
				}
			case *Call:
				if !funcs[in.Callee] {
					return verifyErr("function %q calls undefined function %q", f.Name, in.Callee)
				}
			case *BinOp, *Const:
			default:
				return verifyErr("function %q block %q: unknown instruction %T", f.Name, b.Name, in)
			}
		}
		if b.Term == nil {
			return verifyErr("function %q block %q has no terminator", f.Name, b.Name)
		}
		for _, s := range b.Term.Successors() {
			if s == nil {
				return verifyErr("function %q block %q has nil successor", f.Name, b.Name)
			}
			if !own[s] {
				return verifyErr("function %q block %q targets block %q outside the function", f.Name, b.Name, s.Name)
			}
		}
	}
	return nil
}
