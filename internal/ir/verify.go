package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid is wrapped by all verification failures.
var ErrInvalid = errors.New("ir: invalid module")

func verifyErr(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrInvalid, pos, fmt.Sprintf(format, args...))
}

// Verify checks structural well-formedness:
//   - the entry function exists,
//   - function and global names are unique and non-empty,
//   - every function has at least one block, every block a terminator,
//   - branch/jump targets belong to the same function,
//   - calls name functions that exist in the module,
//   - memory instructions reference declared globals,
//   - access descriptors have non-negative stride and hot-set sizes,
//   - globals have positive sizes.
//
// Failures carry full location context (module → function → block →
// instruction index) so a pcc -input error points at the offending line of
// textual IR.
func (m *Module) Verify() error {
	mpos := Pos{Module: m.Name, Instr: NoInstr}
	if m.Name == "" {
		return verifyErr(Pos{Instr: NoInstr}, "module has no name")
	}
	globals := make(map[string]bool, len(m.Globals))
	for _, g := range m.Globals {
		if g.Name == "" {
			return verifyErr(mpos, "global with empty name")
		}
		if globals[g.Name] {
			return verifyErr(mpos, "duplicate global %q", g.Name)
		}
		if g.Size <= 0 {
			return verifyErr(mpos, "global %q has non-positive size %d", g.Name, g.Size)
		}
		globals[g.Name] = true
	}
	funcs := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		if f.Name == "" {
			return verifyErr(mpos, "function with empty name")
		}
		if funcs[f.Name] {
			return verifyErr(mpos, "duplicate function %q", f.Name)
		}
		funcs[f.Name] = true
	}
	if m.EntryFn == "" {
		return verifyErr(mpos, "module has no entry function")
	}
	if !funcs[m.EntryFn] {
		return verifyErr(mpos, "entry function %q not defined", m.EntryFn)
	}
	for _, f := range m.Funcs {
		if err := m.verifyFunc(f, globals, funcs); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) verifyFunc(f *Function, globals, funcs map[string]bool) error {
	fpos := Pos{Module: m.Name, Func: f.Name, Instr: NoInstr}
	if len(f.Blocks) == 0 {
		return verifyErr(fpos, "function has no blocks")
	}
	own := make(map[*Block]bool, len(f.Blocks))
	names := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if b.Name == "" {
			return verifyErr(fpos, "block with empty name")
		}
		if names[b.Name] {
			return verifyErr(fpos, "duplicate block %q", b.Name)
		}
		names[b.Name] = true
		own[b] = true
	}
	checkAcc := func(pos Pos, what string, a Access) error {
		if !globals[a.Global] {
			return verifyErr(pos, "%s references undeclared global %q", what, a.Global)
		}
		if a.Stride < 0 {
			return verifyErr(pos, "%s has negative stride %d", what, a.Stride)
		}
		if a.HotBytes < 0 {
			return verifyErr(pos, "%s has negative hot-set size %d", what, a.HotBytes)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos := Pos{Module: m.Name, Func: f.Name, Block: b.Name, Instr: i}
			switch in := in.(type) {
			case *Load:
				if err := checkAcc(pos, "load", in.Acc); err != nil {
					return err
				}
			case *Store:
				if err := checkAcc(pos, "store", in.Acc); err != nil {
					return err
				}
			case *Prefetch:
				if err := checkAcc(pos, "prefetch", in.Acc); err != nil {
					return err
				}
			case *Call:
				if !funcs[in.Callee] {
					return verifyErr(pos, "call to undefined function %q", in.Callee)
				}
			case *BinOp, *Const:
			default:
				return verifyErr(pos, "unknown instruction %T", in)
			}
		}
		tpos := Pos{Module: m.Name, Func: f.Name, Block: b.Name, Instr: NoInstr, Term: true}
		if b.Term == nil {
			return verifyErr(tpos, "block has no terminator")
		}
		for _, s := range b.Term.Successors() {
			if s == nil {
				return verifyErr(tpos, "nil successor")
			}
			if !own[s] {
				return verifyErr(tpos, "targets block %q outside the function", s.Name)
			}
		}
	}
	return nil
}
