package ir

import (
	"fmt"
	"strings"
)

// Severity ranks a diagnostic. Error-severity findings make a module unfit
// for compilation (pcc refuses them); warnings flag likely-unintended code
// that still executes correctly; infos surface facts useful to a human or
// to a policy (e.g. a prefetch candidate the search will never try).
type Severity int

// Diagnostic severities, ordered from least to most severe.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Pos locates a diagnostic inside a module: module → function → block →
// instruction. Finer-grained fields may be empty/negative when the finding
// applies to a coarser scope.
type Pos struct {
	// Module is the module name; empty for positions built before the
	// module is known.
	Module string
	// Func is the function name, or empty for module-level findings.
	Func string
	// Block is the block name, or empty for function-level findings. When
	// Block is empty but Instr is set, Instr is an absolute instruction
	// index (the lowered-program PC).
	Block string
	// Instr is the instruction index within Block (or the absolute PC when
	// Block is empty); -1 means the finding is not instruction-scoped.
	Instr int
	// Term marks the finding as being on the block's terminator rather
	// than an instruction.
	Term bool
}

// NoInstr is the Instr value for findings that are not instruction-scoped.
const NoInstr = -1

func (p Pos) String() string {
	var parts []string
	if p.Module != "" {
		parts = append(parts, "module "+p.Module)
	}
	if p.Func != "" {
		parts = append(parts, "func "+p.Func)
	}
	if p.Block != "" {
		parts = append(parts, "block %"+p.Block)
	}
	switch {
	case p.Term:
		parts = append(parts, "terminator")
	case p.Instr >= 0 && p.Block != "":
		parts = append(parts, fmt.Sprintf("instr #%d", p.Instr))
	case p.Instr >= 0:
		parts = append(parts, fmt.Sprintf("pc #%d", p.Instr))
	}
	if len(parts) == 0 {
		return "<unknown>"
	}
	return strings.Join(parts, ", ")
}

// Diag is one located, severity-tagged finding.
type Diag struct {
	Sev Severity
	// Rule is the stable kebab-case identifier of the check that fired
	// (e.g. "use-before-def"). Tools filter and golden tests key on it.
	Rule string
	Pos  Pos
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s[%s] %s: %s", d.Sev, d.Rule, d.Pos, d.Msg)
}

// Diags is a list of findings in deterministic report order.
type Diags []Diag

// Errors counts error-severity findings.
func (ds Diags) Errors() int { return ds.count(SevError) }

// Warnings counts warning-severity findings.
func (ds Diags) Warnings() int { return ds.count(SevWarn) }

// Infos counts info-severity findings.
func (ds Diags) Infos() int { return ds.count(SevInfo) }

func (ds Diags) count(sev Severity) int {
	n := 0
	for _, d := range ds {
		if d.Sev == sev {
			n++
		}
	}
	return n
}

// MinSeverity returns the findings at or above the given severity, in the
// original order.
func (ds Diags) MinSeverity(sev Severity) Diags {
	var out Diags
	for _, d := range ds {
		if d.Sev >= sev {
			out = append(out, d)
		}
	}
	return out
}

// FirstError returns the first error-severity finding, or a zero Diag and
// false if there is none.
func (ds Diags) FirstError() (Diag, bool) {
	for _, d := range ds {
		if d.Sev == SevError {
			return d, true
		}
	}
	return Diag{}, false
}
