package ir

import "fmt"

// ModuleBuilder incrementally constructs a Module. The workload catalog uses
// it to express synthetic applications compactly.
type ModuleBuilder struct {
	m *Module
}

// NewModuleBuilder starts a module with the given name.
func NewModuleBuilder(name string) *ModuleBuilder {
	return &ModuleBuilder{m: &Module{Name: name}}
}

// Global declares a data region of size bytes.
func (mb *ModuleBuilder) Global(name string, size int64) *ModuleBuilder {
	mb.m.Globals = append(mb.m.Globals, &Global{Name: name, Size: size})
	return mb
}

// Function starts a new function and returns its builder. The first block
// ("entry") is created and selected.
func (mb *ModuleBuilder) Function(name string) *FunctionBuilder {
	f := &Function{Name: name}
	mb.m.Funcs = append(mb.m.Funcs, f)
	fb := &FunctionBuilder{mb: mb, f: f}
	fb.cur = fb.Block("entry")
	return fb
}

// SetEntry selects the module entry function.
func (mb *ModuleBuilder) SetEntry(name string) *ModuleBuilder {
	mb.m.EntryFn = name
	return mb
}

// Build finalizes and verifies the module.
func (mb *ModuleBuilder) Build() (*Module, error) {
	if err := mb.m.Finalize(); err != nil {
		return nil, err
	}
	return mb.m, nil
}

// MustBuild is Build that panics on error; for use in tests and the static
// workload catalog where malformed programs are programming errors.
func (mb *ModuleBuilder) MustBuild() *Module {
	m, err := mb.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// FunctionBuilder appends instructions to the current block of one function.
type FunctionBuilder struct {
	mb      *ModuleBuilder
	f       *Function
	cur     *Block
	nextReg Reg
	nameSeq int
}

// NewReg allocates a fresh virtual register.
func (fb *FunctionBuilder) NewReg() Reg {
	r := fb.nextReg
	fb.nextReg++
	return r
}

// Block creates a new block without selecting it. An empty name is replaced
// by a generated one.
func (fb *FunctionBuilder) Block(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("b%d", fb.nameSeq)
		fb.nameSeq++
	}
	b := &Block{Name: name}
	fb.f.Blocks = append(fb.f.Blocks, b)
	return b
}

// SetBlock selects the block new instructions append to.
func (fb *FunctionBuilder) SetBlock(b *Block) { fb.cur = b }

// Current returns the currently selected block.
func (fb *FunctionBuilder) Current() *Block { return fb.cur }

// Const emits r = const v and returns r.
func (fb *FunctionBuilder) Const(v int64) Reg {
	r := fb.NewReg()
	fb.cur.Instrs = append(fb.cur.Instrs, &Const{Dst: r, Value: v})
	return r
}

// Bin emits r = x <op> y and returns r.
func (fb *FunctionBuilder) Bin(op BinKind, x, y Operand) Reg {
	r := fb.NewReg()
	fb.cur.Instrs = append(fb.cur.Instrs, &BinOp{Dst: r, Op: op, X: x, Y: y})
	return r
}

// Load emits r = load acc and returns r.
func (fb *FunctionBuilder) Load(acc Access) Reg {
	r := fb.NewReg()
	fb.cur.Instrs = append(fb.cur.Instrs, &Load{Dst: r, Acc: acc})
	return r
}

// Store emits store val, acc.
func (fb *FunctionBuilder) Store(val Operand, acc Access) {
	fb.cur.Instrs = append(fb.cur.Instrs, &Store{Val: val, Acc: acc})
}

// Prefetch emits a prefetch for acc.
func (fb *FunctionBuilder) Prefetch(acc Access, nt bool) {
	fb.cur.Instrs = append(fb.cur.Instrs, &Prefetch{Acc: acc, NT: nt})
}

// Call emits call @callee.
func (fb *FunctionBuilder) Call(callee string) {
	fb.cur.Instrs = append(fb.cur.Instrs, &Call{Callee: callee})
}

// Work emits n dependent ALU instructions (compute padding that consumes
// issue slots without touching memory).
func (fb *FunctionBuilder) Work(n int) {
	if n <= 0 {
		return
	}
	r := fb.Const(1)
	for i := 1; i < n; i++ {
		r = fb.Bin(Add, R(r), Imm(int64(i)))
	}
}

// Jump terminates the current block with an unconditional jump.
func (fb *FunctionBuilder) Jump(target *Block) {
	fb.cur.Term = &Jump{Target: target}
}

// Branch terminates the current block with a conditional branch.
func (fb *FunctionBuilder) Branch(x Reg, cmp CmpKind, y Operand, t, f *Block) {
	fb.cur.Term = &Branch{X: x, Cmp: cmp, Y: y, True: t, False: f}
}

// Return terminates the current block with a return.
func (fb *FunctionBuilder) Return() {
	fb.cur.Term = &Return{}
}

// Loop builds a counted loop executing body trip times. On return the
// builder is positioned in the loop exit block. The body callback may itself
// build nested loops. The generated shape is:
//
//	pre:    i = 0; jump header
//	header: br i < trip ? body : exit
//	body:   <body()>; i = i + 1; jump header
//	exit:
func (fb *FunctionBuilder) Loop(trip int64, body func()) {
	i := fb.Const(0)
	header := fb.Block("")
	bodyBlk := fb.Block("")
	exit := fb.Block("")
	fb.Jump(header)

	fb.SetBlock(header)
	fb.Branch(i, Lt, Imm(trip), bodyBlk, exit)

	fb.SetBlock(bodyBlk)
	body()
	// The body may have moved the current block; the increment goes at the
	// end of whatever block is current when the body finishes.
	fb.cur.Instrs = append(fb.cur.Instrs, &BinOp{Dst: i, Op: Add, X: R(i), Y: Imm(1)})
	fb.Jump(header)

	fb.SetBlock(exit)
}

// InfiniteLoop builds a loop with no exit; the machine's run-duration limit
// terminates execution. Used for server-style workloads that run until the
// experiment ends.
func (fb *FunctionBuilder) InfiniteLoop(body func()) {
	header := fb.Block("")
	fb.Jump(header)
	fb.SetBlock(header)
	body()
	fb.Jump(header)
	// Unreachable exit block so the function still verifies if the caller
	// appends a terminator-requiring return afterwards.
	exit := fb.Block("")
	fb.SetBlock(exit)
}
