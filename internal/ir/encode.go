package ir

import (
	"bytes"
	"compress/zlib"
	"encoding/gob"
	"fmt"
	"io"
)

// The wire form flattens the in-memory pointer graph: blocks are referenced
// by index, instructions by a tagged union. This mirrors what pcc does in
// the paper — "serializes, compresses and places the intermediate
// representation of the program into its data region" (Section III-A-2).

type wireModule struct {
	Name        string
	EntryFn     string
	NumLoads    int
	NumMemSites int
	Globals     []wireGlobal
	Funcs       []wireFunc
}

type wireGlobal struct {
	Name string
	Size int64
}

type wireFunc struct {
	Name   string
	MaxReg int
	Blocks []wireBlock
}

type wireBlock struct {
	Name   string
	Instrs []wireInstr
	Term   wireTerm
}

// Instruction opcodes in the wire form.
const (
	wBin = iota
	wConst
	wLoad
	wStore
	wPrefetch
	wCall
)

type wireInstr struct {
	Op     int
	Dst    Reg
	BinOp  BinKind
	X, Y   Operand
	Value  int64
	Acc    Access
	LoadID int
	MemID  int
	Lead   int64
	NT     bool
	Callee string
}

// Terminator opcodes in the wire form.
const (
	wJump = iota
	wBranch
	wReturn
)

type wireTerm struct {
	Op    int
	X     Reg
	Cmp   CmpKind
	Y     Operand
	True  int
	False int
}

// Encode writes the module in serialized, zlib-compressed form.
func Encode(w io.Writer, m *Module) error {
	zw := zlib.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(toWire(m)); err != nil {
		zw.Close()
		return fmt.Errorf("ir: encode %q: %w", m.Name, err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("ir: encode %q: compress: %w", m.Name, err)
	}
	return nil
}

// EncodeBytes serializes and compresses the module to a byte slice.
func EncodeBytes(m *Module) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads a module encoded by Encode and rebuilds the pointer graph.
func Decode(r io.Reader) (*Module, error) {
	zr, err := zlib.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("ir: decode: decompress: %w", err)
	}
	defer zr.Close()
	var wm wireModule
	if err := gob.NewDecoder(zr).Decode(&wm); err != nil {
		return nil, fmt.Errorf("ir: decode: %w", err)
	}
	return fromWire(&wm)
}

// DecodeBytes rebuilds a module from EncodeBytes output.
func DecodeBytes(data []byte) (*Module, error) {
	return Decode(bytes.NewReader(data))
}

func toWire(m *Module) *wireModule {
	wm := &wireModule{Name: m.Name, EntryFn: m.EntryFn, NumLoads: m.NumLoads, NumMemSites: m.NumMemSites}
	for _, g := range m.Globals {
		wm.Globals = append(wm.Globals, wireGlobal{Name: g.Name, Size: g.Size})
	}
	for _, f := range m.Funcs {
		wf := wireFunc{Name: f.Name, MaxReg: f.MaxReg}
		index := make(map[*Block]int, len(f.Blocks))
		for i, b := range f.Blocks {
			index[b] = i
		}
		for _, b := range f.Blocks {
			wb := wireBlock{Name: b.Name}
			for _, in := range b.Instrs {
				wb.Instrs = append(wb.Instrs, toWireInstr(in))
			}
			wb.Term = toWireTerm(b.Term, index)
			wf.Blocks = append(wf.Blocks, wb)
		}
		wm.Funcs = append(wm.Funcs, wf)
	}
	return wm
}

func toWireInstr(in Instr) wireInstr {
	switch in := in.(type) {
	case *BinOp:
		return wireInstr{Op: wBin, Dst: in.Dst, BinOp: in.Op, X: in.X, Y: in.Y}
	case *Const:
		return wireInstr{Op: wConst, Dst: in.Dst, Value: in.Value}
	case *Load:
		return wireInstr{Op: wLoad, Dst: in.Dst, Acc: in.Acc, LoadID: in.ID, MemID: in.MemID, NT: in.NT}
	case *Store:
		return wireInstr{Op: wStore, X: in.Val, Acc: in.Acc, MemID: in.MemID}
	case *Prefetch:
		return wireInstr{Op: wPrefetch, Acc: in.Acc, NT: in.NT, MemID: in.MemID, Lead: in.Lead}
	case *Call:
		return wireInstr{Op: wCall, Callee: in.Callee}
	default:
		panic("ir: unknown instruction type in encode")
	}
}

func toWireTerm(t Terminator, index map[*Block]int) wireTerm {
	switch t := t.(type) {
	case *Jump:
		return wireTerm{Op: wJump, True: index[t.Target]}
	case *Branch:
		return wireTerm{Op: wBranch, X: t.X, Cmp: t.Cmp, Y: t.Y, True: index[t.True], False: index[t.False]}
	case *Return:
		return wireTerm{Op: wReturn}
	default:
		panic("ir: unknown terminator type in encode")
	}
}

func fromWire(wm *wireModule) (*Module, error) {
	m := &Module{Name: wm.Name, EntryFn: wm.EntryFn, NumLoads: wm.NumLoads, NumMemSites: wm.NumMemSites}
	for _, g := range wm.Globals {
		m.Globals = append(m.Globals, &Global{Name: g.Name, Size: g.Size})
	}
	for _, wf := range wm.Funcs {
		f := &Function{Name: wf.Name, MaxReg: wf.MaxReg, Blocks: make([]*Block, len(wf.Blocks))}
		for i := range wf.Blocks {
			f.Blocks[i] = &Block{Name: wf.Blocks[i].Name, Index: i}
		}
		for i, wb := range wf.Blocks {
			b := f.Blocks[i]
			for _, wi := range wb.Instrs {
				in, err := fromWireInstr(wi)
				if err != nil {
					return nil, fmt.Errorf("ir: decode %s.%s: %w", wf.Name, wb.Name, err)
				}
				b.Instrs = append(b.Instrs, in)
			}
			t, err := fromWireTerm(wb.Term, f.Blocks)
			if err != nil {
				return nil, fmt.Errorf("ir: decode %s.%s: %w", wf.Name, wb.Name, err)
			}
			b.Term = t
		}
		m.Funcs = append(m.Funcs, f)
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}

func fromWireInstr(wi wireInstr) (Instr, error) {
	switch wi.Op {
	case wBin:
		return &BinOp{Dst: wi.Dst, Op: wi.BinOp, X: wi.X, Y: wi.Y}, nil
	case wConst:
		return &Const{Dst: wi.Dst, Value: wi.Value}, nil
	case wLoad:
		return &Load{Dst: wi.Dst, Acc: wi.Acc, ID: wi.LoadID, MemID: wi.MemID, NT: wi.NT}, nil
	case wStore:
		return &Store{Val: wi.X, Acc: wi.Acc, MemID: wi.MemID}, nil
	case wPrefetch:
		return &Prefetch{Acc: wi.Acc, NT: wi.NT, MemID: wi.MemID, Lead: wi.Lead}, nil
	case wCall:
		return &Call{Callee: wi.Callee}, nil
	default:
		return nil, fmt.Errorf("unknown instruction opcode %d", wi.Op)
	}
}

func fromWireTerm(wt wireTerm, blocks []*Block) (Terminator, error) {
	get := func(i int) (*Block, error) {
		if i < 0 || i >= len(blocks) {
			return nil, fmt.Errorf("terminator target %d out of range", i)
		}
		return blocks[i], nil
	}
	switch wt.Op {
	case wJump:
		t, err := get(wt.True)
		if err != nil {
			return nil, err
		}
		return &Jump{Target: t}, nil
	case wBranch:
		tt, err := get(wt.True)
		if err != nil {
			return nil, err
		}
		ft, err := get(wt.False)
		if err != nil {
			return nil, err
		}
		return &Branch{X: wt.X, Cmp: wt.Cmp, Y: wt.Y, True: tt, False: ft}, nil
	case wReturn:
		return &Return{}, nil
	default:
		return nil, fmt.Errorf("unknown terminator opcode %d", wt.Op)
	}
}
