package ir

import "testing"

func benchModule() *Module {
	mb := NewModuleBuilder("bench")
	mb.Global("g", 1<<20)
	for f := 0; f < 20; f++ {
		fb := mb.Function("f" + string(rune('a'+f)))
		fb.Loop(100, func() {
			fb.Loop(50, func() {
				for i := 0; i < 8; i++ {
					fb.Load(Access{Global: "g", Pattern: Seq, Stride: 64})
				}
				fb.Work(4)
			})
		})
		fb.Return()
	}
	main := mb.Function("main")
	for f := 0; f < 20; f++ {
		main.Call("f" + string(rune('a'+f)))
	}
	main.Return()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// BenchmarkEncode measures IR serialization+compression (what pcc does
// when embedding the IR).
func BenchmarkEncode(b *testing.B) {
	m := benchModule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBytes(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures what the runtime pays at attach time.
func BenchmarkDecode(b *testing.B) {
	data, err := EncodeBytes(benchModule())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClone measures the per-variant IR copy the runtime compiler
// makes before each transform.
func BenchmarkClone(b *testing.B) {
	m := benchModule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

// BenchmarkLoopForest measures the loop analysis PC3D runs per function.
func BenchmarkLoopForest(b *testing.B) {
	m := benchModule()
	f := m.Funcs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildLoopForest(f)
	}
}
