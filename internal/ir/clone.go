package ir

// Clone deep-copies the module. The runtime compiler clones the embedded IR
// before applying a transformation so concurrent variant generations never
// alias each other's instructions.
func (m *Module) Clone() *Module {
	out := &Module{
		Name:        m.Name,
		EntryFn:     m.EntryFn,
		NumLoads:    m.NumLoads,
		NumMemSites: m.NumMemSites,
		Globals:     make([]*Global, len(m.Globals)),
		Funcs:       make([]*Function, len(m.Funcs)),
	}
	for i, g := range m.Globals {
		cp := *g
		out.Globals[i] = &cp
	}
	for i, f := range m.Funcs {
		out.Funcs[i] = f.Clone()
	}
	return out
}

// Clone deep-copies the function, remapping intra-function block references.
func (f *Function) Clone() *Function {
	out := &Function{Name: f.Name, MaxReg: f.MaxReg, Blocks: make([]*Block, len(f.Blocks))}
	remap := make(map[*Block]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{Name: b.Name, Index: b.Index, Instrs: make([]Instr, len(b.Instrs))}
		out.Blocks[i] = nb
		remap[b] = nb
	}
	for i, b := range f.Blocks {
		nb := out.Blocks[i]
		for j, in := range b.Instrs {
			nb.Instrs[j] = cloneInstr(in)
		}
		nb.Term = cloneTerm(b.Term, remap)
	}
	return out
}

func cloneInstr(in Instr) Instr {
	switch in := in.(type) {
	case *BinOp:
		cp := *in
		return &cp
	case *Const:
		cp := *in
		return &cp
	case *Load:
		cp := *in
		return &cp
	case *Store:
		cp := *in
		return &cp
	case *Prefetch:
		cp := *in
		return &cp
	case *Call:
		cp := *in
		return &cp
	default:
		panic("ir: unknown instruction type in clone")
	}
}

func cloneTerm(t Terminator, remap map[*Block]*Block) Terminator {
	switch t := t.(type) {
	case *Jump:
		return &Jump{Target: remap[t.Target]}
	case *Branch:
		return &Branch{X: t.X, Cmp: t.Cmp, Y: t.Y, True: remap[t.True], False: remap[t.False]}
	case *Return:
		return &Return{}
	case nil:
		return nil
	default:
		panic("ir: unknown terminator type in clone")
	}
}
