package opt

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/ir/irtext"
)

// TestCrossBlockDCE: r2 is defined in the entry but overwritten on every
// path before any read, so the entry definition is dead even though r2 IS
// read later. The old "read anywhere in the function" scan kept it; the
// liveness-based pass must not.
func TestCrossBlockDCE(t *testing.T) {
	m, err := irtext.ParseString(`
module xblock
entry main
global buf 4096
func main {
  entry:
    r1 = load buf[seq stride=64]
    r2 = mul r1, 100
    br r1 gt 0, %then, %else
  then:
    r2 = const 7
    jump %join
  else:
    r2 = const 8
    jump %join
  join:
    r3 = add r2, 1
    store r3, buf[seq stride=64]
    ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	before := dynCounts(t, m)
	stats := Optimize(m)
	if stats.RemovedInstrs < 1 {
		t.Fatalf("shadowed cross-block def survived: %+v", stats)
	}
	entry := m.Func("main").Blocks[0]
	for _, in := range entry.Instrs {
		if b, ok := in.(*ir.BinOp); ok && b.Dst == 2 {
			t.Fatalf("entry still defines r2: %s", b)
		}
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	after := dynCounts(t, m)
	if before.Completions != after.Completions || before.Stores != after.Stores {
		t.Fatalf("semantics changed: before %+v after %+v", before, after)
	}
}

// TestPartiallyLiveDefSurvives: a def read on only one of two paths is
// still live at its definition and must be kept.
func TestPartiallyLiveDefSurvives(t *testing.T) {
	m, err := irtext.ParseString(`
module partial
entry main
global buf 4096
func main {
  entry:
    r1 = load buf[seq stride=64]
    r2 = mul r1, 3
    br r1 gt 0, %uses, %skips
  uses:
    store r2, buf[seq stride=64]
    ret
  skips:
    store r1, buf[seq stride=64]
    ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(m)
	entry := m.Func("main").Blocks[0]
	found := false
	for _, in := range entry.Instrs {
		if b, ok := in.(*ir.BinOp); ok && b.Dst == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("partially live def of r2 was removed")
	}
}
