package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/progbin"
)

// dynCounts compiles and runs a module to completion (no restart) and
// returns the memory-operation and completion counters — the observable
// semantics optimization must preserve.
func dynCounts(t *testing.T, m *ir.Module) machine.Counters {
	t.Helper()
	prog, err := isa.Lower(m, isa.Config{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	bin := &progbin.Binary{Program: prog}
	mm := machine.New(machine.Config{Cores: 1})
	p, err := mm.Attach(0, bin, machine.ProcessConfig{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	for i := 0; i < 10000 && !p.Halted(); i++ {
		mm.RunQuanta(10)
	}
	if !p.Halted() {
		t.Fatal("program did not halt")
	}
	return p.Counters()
}

func TestFoldConstantChain(t *testing.T) {
	mb := ir.NewModuleBuilder("fold")
	mb.Global("g", 64)
	fb := mb.Function("main")
	// Work emits r=1; r=r+1; r=r+2; ... — a pure constant chain whose
	// result feeds a store (so folding applies but DCE must keep the tail).
	r := fb.Const(1)
	r = fb.Bin(ir.Add, ir.R(r), ir.Imm(2))
	r = fb.Bin(ir.Mul, ir.R(r), ir.Imm(10))
	fb.Store(ir.R(r), ir.Access{Global: "g", Pattern: ir.Rand})
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()

	s := Optimize(m)
	if err := m.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if s.FoldedOps != 2 {
		t.Errorf("FoldedOps = %d, want 2", s.FoldedOps)
	}
	// The chain collapses to a single const feeding the store.
	instrs := m.Func("main").Blocks[0].Instrs
	if len(instrs) != 2 {
		t.Fatalf("instrs = %d, want 2 (const + store): %v", len(instrs), instrs)
	}
	c, ok := instrs[0].(*ir.Const)
	if !ok || c.Value != 30 {
		t.Errorf("folded const = %v, want 30", instrs[0])
	}
}

func TestFoldDeadGuardAndRemoveUnreachable(t *testing.T) {
	// The workload generator's dead guard: br on a constant-zero register.
	mb := ir.NewModuleBuilder("guard")
	mb.Global("g", 4096)
	cold := mb.Function("cold")
	cold.Load(ir.Access{Global: "g", Pattern: ir.Rand})
	cold.Return()
	fb := mb.Function("main")
	zero := fb.Const(0)
	dead := fb.Block("dead")
	cont := fb.Block("cont")
	fb.Branch(zero, ir.Ne, ir.Imm(0), dead, cont)
	fb.SetBlock(dead)
	fb.Call("cold")
	fb.Jump(cont)
	fb.SetBlock(cont)
	fb.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64})
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()

	s := Optimize(m)
	if err := m.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if s.FoldedBranches != 1 {
		t.Errorf("FoldedBranches = %d, want 1", s.FoldedBranches)
	}
	if s.RemovedBlocks == 0 {
		t.Error("dead-guard block survived")
	}
	main := m.Func("main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Callee == "cold" {
				t.Error("call to cold code survived optimization")
			}
		}
	}
	if m.NumLoads != 2 {
		// cold's load remains (the function itself is kept; only the call
		// site died), main's load remains.
		t.Errorf("NumLoads = %d, want 2", m.NumLoads)
	}
}

func TestThreadJumps(t *testing.T) {
	mb := ir.NewModuleBuilder("thread")
	mb.Global("g", 64)
	fb := mb.Function("main")
	hop1 := fb.Block("hop1")
	hop2 := fb.Block("hop2")
	final := fb.Block("final")
	fb.Jump(hop1)
	fb.SetBlock(hop1)
	fb.Jump(hop2)
	fb.SetBlock(hop2)
	fb.Jump(final)
	fb.SetBlock(final)
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()

	s := Optimize(m)
	if err := m.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if s.ThreadedJumps == 0 || s.RemovedBlocks != 2 {
		t.Errorf("stats = %+v, want threaded jumps and 2 removed hops", s)
	}
	main := m.Func("main")
	j, ok := main.Blocks[0].Term.(*ir.Jump)
	if !ok || j.Target.Name != "final" {
		t.Errorf("entry terminator = %v, want jump %%final", main.Blocks[0].Term)
	}
}

func TestEliminateDeadChains(t *testing.T) {
	mb := ir.NewModuleBuilder("dce")
	mb.Global("g", 64)
	fb := mb.Function("main")
	fb.Work(10) // pure dead ALU chain
	fb.Load(ir.Access{Global: "g", Pattern: ir.Rand})
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()

	s := Optimize(m)
	if err := m.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if s.RemovedInstrs != 10 {
		t.Errorf("RemovedInstrs = %d, want 10", s.RemovedInstrs)
	}
	instrs := m.Func("main").Blocks[0].Instrs
	if len(instrs) != 1 {
		t.Errorf("instrs = %d, want just the load", len(instrs))
	}
}

func TestLoopCountersSurvive(t *testing.T) {
	mb := ir.NewModuleBuilder("loop")
	mb.Global("g", 1<<16)
	fb := mb.Function("main")
	fb.Loop(7, func() {
		fb.Load(ir.Access{Global: "g", Pattern: ir.Seq, Stride: 64})
	})
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()
	before := dynCounts(t, m.Clone())

	Optimize(m)
	if err := m.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	after := dynCounts(t, m)
	if after.Loads != before.Loads || after.Loads != 7 {
		t.Errorf("loads %d -> %d, want 7 preserved", before.Loads, after.Loads)
	}
	if after.Completions != 1 {
		t.Errorf("completions = %d", after.Completions)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	mb := ir.NewModuleBuilder("idem")
	mb.Global("g", 4096)
	fb := mb.Function("main")
	fb.Work(5)
	fb.Loop(3, func() {
		fb.Load(ir.Access{Global: "g", Pattern: ir.Rand})
	})
	fb.Return()
	mb.SetEntry("main")
	m := mb.MustBuild()

	Optimize(m)
	if err := m.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	s2 := Optimize(m)
	if s2.changed() {
		t.Errorf("second Optimize changed things: %+v", s2)
	}
}

// Property: optimization preserves dynamic memory-operation counts and
// completion semantics on random builder-generated programs.
func TestOptimizePreservesSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mb := ir.NewModuleBuilder("prop")
		mb.Global("g", 1+int64(rng.Intn(1<<16)))
		fb := mb.Function("main")
		var emit func(depth int)
		emit = func(depth int) {
			for i := 0; i < 1+rng.Intn(3); i++ {
				switch rng.Intn(3) {
				case 0:
					fb.Load(ir.Access{Global: "g", Pattern: ir.Pattern(rng.Intn(4))})
				case 1:
					fb.Store(ir.Imm(int64(rng.Intn(50))), ir.Access{Global: "g", Pattern: ir.Rand})
				default:
					fb.Work(1 + rng.Intn(4))
				}
			}
			if depth > 0 && rng.Intn(2) == 0 {
				fb.Loop(int64(1+rng.Intn(6)), func() { emit(depth - 1) })
			}
		}
		emit(2)
		fb.Return()
		mb.SetEntry("main")
		m, err := mb.Build()
		if err != nil {
			return false
		}
		before := dynCounts(t, m.Clone())
		Optimize(m)
		if err := m.Finalize(); err != nil {
			return false
		}
		after := dynCounts(t, m)
		return before.Loads == after.Loads &&
			before.Stores == after.Stores &&
			before.Completions == after.Completions &&
			after.Insts <= before.Insts
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
