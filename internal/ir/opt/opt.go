// Package opt implements the static optimization passes pcc can apply
// before lowering — the stand-in for the "-O2" compilation the paper uses
// for all binaries.
//
// The pipeline is deliberately conservative: memory operations and calls
// are never moved or removed (the workload catalog's timing behaviour
// depends on them), and registers are only eliminated when provably dead
// across the whole function. Passes run to a fixpoint:
//
//   - constant folding: block-local constant propagation through ALU ops,
//     folding decidable conditional branches into jumps,
//   - jump threading: empty forwarding blocks are bypassed,
//   - unreachable-block elimination,
//   - dead-code elimination on backward liveness (internal/ir/dataflow):
//     pure instructions whose results are dead on every path are removed,
//     including cross-block dead code the old whole-function read-set scan
//     could not see.
//
// Optimization is opt-in at the pcc level: the synthetic workload catalog
// encodes compute padding as dead ALU chains, which these passes would
// rightly delete.
package opt

import (
	"repro/internal/ir"
	"repro/internal/ir/dataflow"
)

// Stats counts what the pipeline did.
type Stats struct {
	FoldedOps      int
	FoldedBranches int
	ThreadedJumps  int
	RemovedBlocks  int
	RemovedInstrs  int
	// Rounds is how many pipeline iterations ran before fixpoint.
	Rounds int
}

func (s *Stats) add(o Stats) {
	s.FoldedOps += o.FoldedOps
	s.FoldedBranches += o.FoldedBranches
	s.ThreadedJumps += o.ThreadedJumps
	s.RemovedBlocks += o.RemovedBlocks
	s.RemovedInstrs += o.RemovedInstrs
}

func (s Stats) changed() bool {
	return s.FoldedOps+s.FoldedBranches+s.ThreadedJumps+s.RemovedBlocks+s.RemovedInstrs > 0
}

// Optimize runs the pipeline over every function to a fixpoint. The module
// is mutated; the caller must re-run Module.Finalize afterwards. Block
// indices are refreshed internally between passes.
func Optimize(m *ir.Module) Stats {
	var total Stats
	for {
		var round Stats
		for _, f := range m.Funcs {
			round.add(optimizeFunc(f))
		}
		total.Rounds++
		if !round.changed() {
			break
		}
		total.add(round)
	}
	return total
}

func optimizeFunc(f *ir.Function) Stats {
	var s Stats
	s.add(foldConstants(f))
	s.add(threadJumps(f))
	s.add(removeUnreachable(f))
	s.add(eliminateDead(f))
	return s
}

// foldConstants propagates constants within each block and folds ALU ops
// and decidable branches. Propagation is block-local: a register's value
// is only trusted between its definition and the block end.
func foldConstants(f *ir.Function) Stats {
	var s Stats
	for _, b := range f.Blocks {
		known := make(map[ir.Reg]int64)
		lookup := func(o ir.Operand) (int64, bool) {
			if !o.IsReg {
				return o.Imm, true
			}
			v, ok := known[o.Reg]
			return v, ok
		}
		for i, in := range b.Instrs {
			switch in := in.(type) {
			case *ir.Const:
				known[in.Dst] = in.Value
			case *ir.BinOp:
				x, okx := lookup(in.X)
				y, oky := lookup(in.Y)
				if okx && oky {
					v := evalBin(in.Op, x, y)
					b.Instrs[i] = &ir.Const{Dst: in.Dst, Value: v}
					known[in.Dst] = v
					s.FoldedOps++
				} else {
					delete(known, in.Dst)
				}
			case *ir.Load:
				delete(known, in.Dst)
			}
		}
		if br, ok := b.Term.(*ir.Branch); ok {
			if x, okx := known[br.X]; okx {
				if y, oky := lookup(br.Y); oky {
					target := br.False
					if evalCmp(br.Cmp, x, y) {
						target = br.True
					}
					b.Term = &ir.Jump{Target: target}
					s.FoldedBranches++
				}
			}
		}
	}
	return s
}

// threadJumps redirects edges that pass through empty forwarding blocks
// (no instructions, unconditional jump) straight to their targets.
func threadJumps(f *ir.Function) Stats {
	var s Stats
	// forward returns the final destination of a chain of empty jumps.
	forward := func(b *ir.Block) *ir.Block {
		seen := map[*ir.Block]bool{}
		for {
			if seen[b] {
				return b // jump cycle; leave it alone
			}
			seen[b] = true
			if len(b.Instrs) != 0 {
				return b
			}
			j, ok := b.Term.(*ir.Jump)
			if !ok || j.Target == b {
				return b
			}
			b = j.Target
		}
	}
	for _, b := range f.Blocks {
		switch t := b.Term.(type) {
		case *ir.Jump:
			if fwd := forward(t.Target); fwd != t.Target {
				t.Target = fwd
				s.ThreadedJumps++
			}
		case *ir.Branch:
			if fwd := forward(t.True); fwd != t.True {
				t.True = fwd
				s.ThreadedJumps++
			}
			if fwd := forward(t.False); fwd != t.False {
				t.False = fwd
				s.ThreadedJumps++
			}
		}
	}
	return s
}

// removeUnreachable drops blocks not reachable from the entry.
func removeUnreachable(f *ir.Function) Stats {
	var s Stats
	if len(f.Blocks) == 0 {
		return s
	}
	reach := map[*ir.Block]bool{}
	stack := []*ir.Block{f.Blocks[0]}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[b] {
			continue
		}
		reach[b] = true
		stack = append(stack, b.Term.Successors()...)
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			s.RemovedBlocks++
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.Index = i
	}
	return s
}

// eliminateDead removes pure instructions (Const, BinOp) whose destination
// register is dead immediately after the definition, using backward
// liveness from internal/ir/dataflow. Unlike the old whole-function
// read-set scan this catches cross-block dead code: a value overwritten on
// every path before any read is dead even though the register is read
// somewhere else in the function. Everything the old pass removed is still
// removed — never-read registers are live nowhere — so removal counts only
// go up. The pipeline's fixpoint loop picks up cascades the single
// liveness pass leaves behind.
func eliminateDead(f *ir.Function) Stats {
	var s Stats
	for i, b := range f.Blocks {
		b.Index = i // earlier passes may have removed blocks
	}
	lv := dataflow.ComputeLiveness(f)
	// Collect per-block dead instruction indices, then rebuild.
	deadAt := make(map[int]map[int]bool)
	for _, d := range lv.DeadDefs() {
		set := deadAt[d.Block]
		if set == nil {
			set = make(map[int]bool)
			deadAt[d.Block] = set
		}
		set[d.Instr] = true
	}
	for bi, b := range f.Blocks {
		set := deadAt[bi]
		if len(set) == 0 {
			continue
		}
		kept := b.Instrs[:0]
		for ii, in := range b.Instrs {
			if set[ii] {
				s.RemovedInstrs++
			} else {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	return s
}

func evalBin(op ir.BinKind, x, y int64) int64 {
	switch op {
	case ir.Add:
		return x + y
	case ir.Sub:
		return x - y
	case ir.Mul:
		return x * y
	case ir.Div:
		if y == 0 {
			return 0
		}
		return x / y
	case ir.And:
		return x & y
	case ir.Or:
		return x | y
	case ir.Xor:
		return x ^ y
	case ir.Shl:
		return x << (uint64(y) & 63)
	case ir.Shr:
		return int64(uint64(x) >> (uint64(y) & 63))
	}
	return 0
}

func evalCmp(op ir.CmpKind, x, y int64) bool {
	switch op {
	case ir.Eq:
		return x == y
	case ir.Ne:
		return x != y
	case ir.Lt:
		return x < y
	case ir.Le:
		return x <= y
	case ir.Gt:
		return x > y
	case ir.Ge:
		return x >= y
	}
	return false
}
