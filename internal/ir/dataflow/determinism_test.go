package dataflow_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/ir/dataflow"
	"repro/internal/workload"
)

// factFingerprint renders every analysis result for a function keyed by
// block NAME (not index), so functions that differ only in block layout
// can be compared fact-for-fact.
func factFingerprint(f *ir.Function) string {
	var lines []string
	lv := dataflow.ComputeLiveness(f)
	for bi, b := range f.Blocks {
		var in, out []int
		lv.In[bi].ForEach(func(r int) { in = append(in, r) })
		lv.Out[bi].ForEach(func(r int) { out = append(out, r) })
		lines = append(lines, fmt.Sprintf("live %s in=%v out=%v", b.Name, in, out))
	}
	for _, d := range lv.DeadDefs() {
		lines = append(lines, fmt.Sprintf("dead %s #%d", f.Blocks[d.Block].Name, d.Instr))
	}
	rd := dataflow.ComputeReachingDefs(f)
	for bi, b := range f.Blocks {
		var in []string
		rd.In[bi].ForEach(func(i int) {
			d := rd.Defs[i]
			in = append(in, fmt.Sprintf("%s#%d:r%d", f.Blocks[d.Block].Name, d.Instr, d.Reg))
		})
		sort.Strings(in)
		lines = append(lines, fmt.Sprintf("reach %s in=%v", b.Name, in))
	}
	for _, u := range dataflow.UseBeforeDef(f) {
		lines = append(lines, fmt.Sprintf("ubd %s #%d r%d", f.Blocks[u.Block].Name, u.Instr, u.Reg))
	}
	lf := ir.BuildLoopForest(f)
	for _, u := range dataflow.LoopInvariantUses(f, ir.BuildLoopForest(f), rd) {
		lines = append(lines, fmt.Sprintf("inv %s #%d r%d", f.Blocks[u.Block].Name, u.Instr, u.Reg))
	}
	var invLoads []int
	for id := range dataflow.InvariantAddressLoads(f, lf) {
		invLoads = append(invLoads, id)
	}
	sort.Ints(invLoads)
	lines = append(lines, fmt.Sprintf("invloads %v", invLoads))
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestRepeatedRunsIdentical re-runs every analysis many times over real
// catalog modules: the facts must be bit-identical run to run.
func TestRepeatedRunsIdentical(t *testing.T) {
	for _, name := range []string{"blockie", "bst", "soplex"} {
		m := workload.MustByName(name).Module()
		for _, f := range m.Funcs {
			first := factFingerprint(f)
			for i := 1; i < 25; i++ {
				if got := factFingerprint(f); got != first {
					t.Fatalf("%s/%s: run %d differs:\n%s\n---\n%s", name, f.Name, i, got, first)
				}
			}
		}
	}
}

// TestBlockOrderIndependence solves the same program under permuted block
// layouts. Facts are keyed by block name, so every permutation must
// produce the same fingerprint: the worklist order may change, the
// fixpoint may not.
func TestBlockOrderIndependence(t *testing.T) {
	m := parse(t, `
module perm
entry main
global buf 1048576
func main {
  entry:
    r1 = const 16
    r9 = const 5
    jump %head
  head:
    r2 = load buf[seq stride=64]
    br r2 gt 0, %body, %exit
  body:
    r3 = add r2, r9
    r5 = mul r3, 3
    store r3, buf[seq stride=64]
    r1 = sub r1, 1
    br r1 gt 0, %head, %exit
  exit:
    r4 = add r2, 1
    store r4, buf[seq stride=64]
    ret
}
`)
	f := fn(t, m, "main")
	base := factFingerprint(f)

	// Permute every ordering of the non-entry blocks (entry stays first:
	// Blocks[0] is the function entry by definition).
	rest := f.Blocks[1:]
	perms := permutations(len(rest))
	if len(perms) != 6 {
		t.Fatalf("expected 3! = 6 permutations, got %d", len(perms))
	}
	orig := append([]*ir.Block(nil), rest...)
	for _, p := range perms {
		for i, j := range p {
			rest[i] = orig[j]
		}
		for i, b := range f.Blocks {
			b.Index = i
		}
		if got := factFingerprint(f); got != base {
			t.Errorf("permutation %v changed the facts:\n%s\n--- base ---\n%s", p, got, base)
		}
	}
}

func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}
