package dataflow

import (
	"repro/internal/ir"
)

// instrReads visits the registers an instruction reads, in operand order.
func instrReads(in ir.Instr, fn func(ir.Reg)) {
	op := func(o ir.Operand) {
		if o.IsReg {
			fn(o.Reg)
		}
	}
	switch in := in.(type) {
	case *ir.BinOp:
		op(in.X)
		op(in.Y)
	case *ir.Store:
		op(in.Val)
	}
}

// instrDef returns the register an instruction writes, or (0, false).
func instrDef(in ir.Instr) (ir.Reg, bool) {
	switch in := in.(type) {
	case *ir.BinOp:
		return in.Dst, true
	case *ir.Const:
		return in.Dst, true
	case *ir.Load:
		return in.Dst, true
	}
	return 0, false
}

// termReads visits the registers a terminator reads.
func termReads(t ir.Terminator, fn func(ir.Reg)) {
	if br, ok := t.(*ir.Branch); ok {
		fn(br.X)
		if br.Y.IsReg {
			fn(br.Y.Reg)
		}
	}
}

// Liveness holds per-block register liveness for one function. Facts are
// register numbers in [0, NumRegs).
type Liveness struct {
	Fn      *ir.Function
	CFG     *ir.CFG
	NumRegs int
	// In[b] is the set of registers live at entry to block b; Out[b] at
	// exit (before the terminator's own reads have been consumed — the
	// terminator's reads are included in Out via the use sets).
	In, Out []BitSet
}

// numRegs computes one past the highest register mentioned, without
// relying on Finalize's MaxReg (the function may be mid-transform).
func numRegs(f *ir.Function) int {
	max := 0
	note := func(r ir.Reg) {
		if int(r)+1 > max {
			max = int(r) + 1
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			instrReads(in, note)
			if d, ok := instrDef(in); ok {
				note(d)
			}
		}
		termReads(b.Term, note)
	}
	return max
}

// ComputeLiveness runs classic backward may-liveness over the function.
// Block indices must be current (as after Module.Finalize or a manual
// reindex).
func ComputeLiveness(f *ir.Function) *Liveness {
	cfg := ir.BuildCFG(f)
	nr := numRegs(f)
	n := len(f.Blocks)

	// use[b]: registers read before any write in b (terminator included);
	// def[b]: registers written in b.
	use := make([]BitSet, n)
	def := make([]BitSet, n)
	for i, b := range f.Blocks {
		u, d := NewBitSet(nr), NewBitSet(nr)
		upRead := func(r ir.Reg) {
			if !d.Has(int(r)) {
				u.Set(int(r))
			}
		}
		for _, in := range b.Instrs {
			instrReads(in, upRead)
			if dst, ok := instrDef(in); ok {
				d.Set(int(dst))
			}
		}
		termReads(b.Term, upRead)
		use[i], def[i] = u, d
	}

	res := Solve(Problem{
		CFG:      cfg,
		Dir:      Backward,
		Meet:     Union,
		NumFacts: nr,
		Transfer: func(b int, in, out BitSet) {
			// Backward: in = live-out of b, out = live-in of b.
			out.CopyFrom(in)
			out.AndNotWith(def[b])
			out.UnionWith(use[b])
		},
	})
	return &Liveness{Fn: f, CFG: cfg, NumRegs: nr, In: res.In, Out: res.Out}
}

// InstrRef names one instruction by block and instruction index.
type InstrRef struct {
	Block, Instr int
}

// DeadDefs returns the pure definitions (Const, BinOp) whose destination
// register is dead immediately after the definition — cross-block dead
// stores. Within a block the scan cascades: a definition feeding only
// dead definitions is itself dead. Results are ordered by block then
// instruction index.
func (lv *Liveness) DeadDefs() []InstrRef {
	var out []InstrRef
	live := NewBitSet(lv.NumRegs)
	for bi, b := range lv.Fn.Blocks {
		if !lv.CFG.Reachable(bi) {
			continue
		}
		live.CopyFrom(lv.Out[bi])
		termReads(b.Term, func(r ir.Reg) { live.Set(int(r)) })
		deadHere := make([]int, 0, 4)
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if dst, ok := instrDef(in); ok {
				pure := false
				switch in.(type) {
				case *ir.Const, *ir.BinOp:
					pure = true
				}
				if pure && !live.Has(int(dst)) {
					// Dead: contributes no defs or uses downstream.
					deadHere = append(deadHere, i)
					continue
				}
				live.Clear(int(dst))
			}
			instrReads(in, func(r ir.Reg) { live.Set(int(r)) })
		}
		for i := len(deadHere) - 1; i >= 0; i-- {
			out = append(out, InstrRef{Block: bi, Instr: deadHere[i]})
		}
	}
	return out
}

// DefSite is one static register definition.
type DefSite struct {
	Block, Instr int
	Reg          ir.Reg
}

// ReachingDefs holds the reaching-definitions facts for one function.
// Facts are indices into Defs.
type ReachingDefs struct {
	Fn  *ir.Function
	CFG *ir.CFG
	// Defs lists every definition in block-then-instruction order; fact i
	// means "Defs[i] reaches this point".
	Defs []DefSite
	// DefsOf maps a register to its fact indices, ascending.
	DefsOf map[ir.Reg][]int
	// BlockDefStart[b] is the fact index of block b's first definition.
	BlockDefStart []int
	// In[b]/Out[b] are the definitions reaching block b's entry/exit.
	In, Out []BitSet
}

// ComputeReachingDefs runs classic forward may reaching-definitions.
func ComputeReachingDefs(f *ir.Function) *ReachingDefs {
	cfg := ir.BuildCFG(f)
	n := len(f.Blocks)

	var defs []DefSite
	defsOf := make(map[ir.Reg][]int) // reg -> fact indices, ascending
	blockStart := make([]int, n+1)
	for bi, b := range f.Blocks {
		blockStart[bi] = len(defs)
		for ii, in := range b.Instrs {
			if dst, ok := instrDef(in); ok {
				defsOf[dst] = append(defsOf[dst], len(defs))
				defs = append(defs, DefSite{Block: bi, Instr: ii, Reg: dst})
			}
		}
	}
	blockStart[n] = len(defs)
	nd := len(defs)

	gen := make([]BitSet, n)
	kill := make([]BitSet, n)
	for bi := range f.Blocks {
		g, k := NewBitSet(nd), NewBitSet(nd)
		// Walk this block's defs in order: each def kills every other def
		// of its register; the last def of each register is downward
		// exposed (gen), overriding earlier local kills of itself.
		for d := blockStart[bi]; d < blockStart[bi+1]; d++ {
			for _, other := range defsOf[defs[d].Reg] {
				k.Set(other)
			}
			g.Clear(d) // an earlier pass may have genned an earlier def
		}
		for d := blockStart[bi]; d < blockStart[bi+1]; d++ {
			// Downward exposed iff no later def of the same reg in bi.
			last := true
			for o := d + 1; o < blockStart[bi+1]; o++ {
				if defs[o].Reg == defs[d].Reg {
					last = false
					break
				}
			}
			if last {
				g.Set(d)
				k.Clear(d)
			}
		}
		gen[bi], kill[bi] = g, k
	}

	res := Solve(Problem{
		CFG:      cfg,
		Dir:      Forward,
		Meet:     Union,
		NumFacts: nd,
		Transfer: GenKill(gen, kill),
	})
	return &ReachingDefs{
		Fn: f, CFG: cfg, Defs: defs, DefsOf: defsOf,
		BlockDefStart: blockStart, In: res.In, Out: res.Out,
	}
}

// UninitUse is a register read not preceded by a definition on every path
// from the function entry.
type UninitUse struct {
	Block, Instr int
	Reg          ir.Reg
	// Term marks a terminator read; Instr is then len(Block.Instrs).
	Term bool
}

// UseBeforeDef returns the register reads in reachable blocks that are not
// dominated by an assignment — reads that may observe the register's
// initial value on some path. The analysis is definitely-assigned: forward,
// intersection meet, empty boundary. Results are ordered by block then
// instruction index.
func UseBeforeDef(f *ir.Function) []UninitUse {
	cfg := ir.BuildCFG(f)
	nr := numRegs(f)
	n := len(f.Blocks)

	gen := make([]BitSet, n)
	for i, b := range f.Blocks {
		g := NewBitSet(nr)
		for _, in := range b.Instrs {
			if dst, ok := instrDef(in); ok {
				g.Set(int(dst))
			}
		}
		gen[i] = g
	}
	kill := make([]BitSet, n)
	for i := range kill {
		kill[i] = NewBitSet(nr)
	}

	res := Solve(Problem{
		CFG:      cfg,
		Dir:      Forward,
		Meet:     Intersect,
		NumFacts: nr,
		Transfer: GenKill(gen, kill),
	})

	var out []UninitUse
	assigned := NewBitSet(nr)
	for bi, b := range f.Blocks {
		if !cfg.Reachable(bi) {
			continue
		}
		assigned.CopyFrom(res.In[bi])
		for ii, in := range b.Instrs {
			instrReads(in, func(r ir.Reg) {
				if !assigned.Has(int(r)) {
					out = append(out, UninitUse{Block: bi, Instr: ii, Reg: r})
				}
			})
			if dst, ok := instrDef(in); ok {
				assigned.Set(int(dst))
			}
		}
		termReads(b.Term, func(r ir.Reg) {
			if !assigned.Has(int(r)) {
				out = append(out, UninitUse{Block: bi, Instr: len(b.Instrs), Reg: r, Term: true})
			}
		})
	}
	return out
}

// blockLoops maps each block index to the innermost loop containing it.
func blockLoops(lf *ir.LoopForest, n int) []*ir.Loop {
	inner := make([]*ir.Loop, n)
	var walk func(l *ir.Loop)
	walk = func(l *ir.Loop) {
		for _, b := range l.Blocks {
			if inner[b] == nil || l.Depth > inner[b].Depth {
				inner[b] = l
			}
		}
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, r := range lf.Roots {
		walk(r)
	}
	return inner
}

// OperandUse is one register operand read inside a loop whose value is
// loop-invariant.
type OperandUse struct {
	Block, Instr int
	Reg          ir.Reg
	// LoopHeader is the header block index of the innermost enclosing loop.
	LoopHeader int
	// Term marks a terminator read; Instr is then len(Block.Instrs).
	Term bool
}

// LoopInvariantUses returns register reads inside loops whose value cannot
// change across iterations of the innermost enclosing loop: every
// definition reaching the use lies outside that loop. Results are ordered
// by block then instruction index.
func LoopInvariantUses(f *ir.Function, lf *ir.LoopForest, rd *ReachingDefs) []OperandUse {
	n := len(f.Blocks)
	inner := blockLoops(lf, n)

	inLoop := make([]map[int]bool, n)
	for b := 0; b < n; b++ {
		if l := inner[b]; l != nil {
			set := make(map[int]bool, len(l.Blocks))
			for _, lb := range l.Blocks {
				set[lb] = true
			}
			inLoop[b] = set
		}
	}

	var out []OperandUse
	reach := NewBitSet(len(rd.Defs))
	for bi, b := range f.Blocks {
		loop := inner[bi]
		if loop == nil || !rd.CFG.Reachable(bi) {
			continue
		}
		body := inLoop[bi]
		reach.CopyFrom(rd.In[bi])
		check := func(r ir.Reg, ii int, term bool) {
			invariant := true
			any := false
			reach.ForEach(func(d int) {
				if rd.Defs[d].Reg != r {
					return
				}
				any = true
				if body[rd.Defs[d].Block] {
					invariant = false
				}
			})
			if any && invariant {
				out = append(out, OperandUse{Block: bi, Instr: ii, Reg: r, LoopHeader: loop.Header, Term: term})
			}
		}
		di := rd.BlockDefStart[bi]
		for ii, in := range b.Instrs {
			instrReads(in, func(r ir.Reg) { check(r, ii, false) })
			if dst, ok := instrDef(in); ok {
				// Kill all other defs of dst, gen this one.
				for _, d := range rd.DefsOf[dst] {
					reach.Clear(d)
				}
				reach.Set(di)
				di++
			}
		}
		termReads(b.Term, func(r ir.Reg) { check(r, len(b.Instrs), true) })
	}
	return out
}

// InvariantAddressLoads returns the load IDs of loads that sit inside a
// loop and whose address stream is loop-invariant (a pinned access
// pattern). Such loads touch the same cache line every iteration: after
// the first touch the line is resident, so they are useless prefetch
// candidates and actively bad non-temporal candidates. PC3D prunes them
// from the search space. Finalize must have assigned load IDs.
func InvariantAddressLoads(f *ir.Function, lf *ir.LoopForest) map[int]bool {
	out := make(map[int]bool)
	for bi, b := range f.Blocks {
		if lf.Depth(bi) == 0 {
			continue
		}
		for _, in := range b.Instrs {
			if ld, ok := in.(*ir.Load); ok && ld.Acc.Invariant() {
				out[ld.ID] = true
			}
		}
	}
	return out
}
