package dataflow

import (
	"fmt"

	"repro/internal/ir"
)

// Lint runs the semantic checks over a finalized module and returns the
// findings in deterministic order (function declaration order, then rule,
// then block/instruction position). Lint assumes the module passes
// ir.Verify; run it after Module.Finalize.
//
// Rules and severities:
//
//	use-before-def         error  a register read may observe its initial
//	                              value on some path (forward must-analysis)
//	dead-store             warn   a pure definition whose result is dead on
//	                              every path (backward liveness)
//	unreachable-block      warn   a block no path from the entry reaches
//	redundant-prefetch     warn   a prefetch that cannot add locality: its
//	                              address is loop-invariant, or it repeats
//	                              the previous touch of the same site
//	nt-hint-invariant      warn   a non-temporal hint on a loop-invariant
//	                              address: evicts the one line that is reused
//	invariant-address-load info   an in-loop load with a loop-invariant
//	                              address (PC3D prunes these candidates)
//	uncalled-function      info   a function that is neither the entry nor
//	                              called anywhere
//	never-returns          info   no return is reachable from the function
//	                              entry (expected for service loops)
//
// The severity split mirrors pcc's gate: errors make the module unfit to
// compile, warnings survive compilation but deserve a look, infos are facts
// a policy or human can act on.
func Lint(m *ir.Module) ir.Diags {
	var ds ir.Diags

	called := make(map[string]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if c, ok := in.(*ir.Call); ok {
					called[c.Callee] = true
				}
			}
		}
	}

	for _, f := range m.Funcs {
		ds = append(ds, lintFunc(m, f)...)
		if f.Name != m.EntryFn && !called[f.Name] {
			ds = append(ds, ir.Diag{
				Sev:  ir.SevInfo,
				Rule: "uncalled-function",
				Pos:  ir.Pos{Module: m.Name, Func: f.Name, Instr: ir.NoInstr},
				Msg:  "function is neither the entry point nor called",
			})
		}
	}
	return ds
}

func lintFunc(m *ir.Module, f *ir.Function) ir.Diags {
	var ds ir.Diags
	pos := func(b *ir.Block, instr int) ir.Pos {
		return ir.Pos{Module: m.Name, Func: f.Name, Block: b.Name, Instr: instr}
	}

	cfg := ir.BuildCFG(f)
	lf := ir.BuildLoopForest(f)

	// use-before-def: may-uninitialized reads (error).
	for _, u := range UseBeforeDef(f) {
		b := f.Blocks[u.Block]
		p := pos(b, u.Instr)
		if u.Term {
			p.Instr = ir.NoInstr
			p.Term = true
		}
		ds = append(ds, ir.Diag{
			Sev: ir.SevError, Rule: "use-before-def", Pos: p,
			Msg: fmt.Sprintf("r%d may be read before assignment", u.Reg),
		})
	}

	// dead-store: pure defs whose result is never used (warn).
	lv := ComputeLiveness(f)
	for _, d := range lv.DeadDefs() {
		b := f.Blocks[d.Block]
		in := b.Instrs[d.Instr]
		dst, _ := instrDef(in)
		ds = append(ds, ir.Diag{
			Sev: ir.SevWarn, Rule: "dead-store", Pos: pos(b, d.Instr),
			Msg: fmt.Sprintf("value of r%d is never used (%s)", dst, in),
		})
	}

	// unreachable-block (warn).
	for bi, b := range f.Blocks {
		if !cfg.Reachable(bi) {
			ds = append(ds, ir.Diag{
				Sev: ir.SevWarn, Rule: "unreachable-block",
				Pos: ir.Pos{Module: m.Name, Func: f.Name, Block: b.Name, Instr: ir.NoInstr},
				Msg: "no path from the entry reaches this block",
			})
		}
	}

	// Memory-hint rules over the access descriptors.
	for bi, b := range f.Blocks {
		if !cfg.Reachable(bi) {
			continue
		}
		inLoop := lf.Depth(bi) > 0
		// prevMem is the MemID touched by the previous instruction, for
		// back-to-back redundancy.
		prevMem := 0
		for ii, in := range b.Instrs {
			mem := 0
			switch in := in.(type) {
			case *ir.Load:
				mem = in.MemID
				if in.Acc.Invariant() && inLoop {
					if in.NT {
						ds = append(ds, ir.Diag{
							Sev: ir.SevWarn, Rule: "nt-hint-invariant", Pos: pos(b, ii),
							Msg: fmt.Sprintf("non-temporal hint on loop-invariant address %s: the hinted line is reused every iteration", in.Acc),
						})
					} else {
						ds = append(ds, ir.Diag{
							Sev: ir.SevInfo, Rule: "invariant-address-load", Pos: pos(b, ii),
							Msg: fmt.Sprintf("load #%d address %s is loop-invariant: useless prefetch candidate", in.ID, in.Acc),
						})
					}
				}
			case *ir.Store:
				mem = in.MemID
			case *ir.Prefetch:
				mem = in.MemID
				switch {
				case in.Acc.Invariant() && inLoop:
					ds = append(ds, ir.Diag{
						Sev: ir.SevWarn, Rule: "redundant-prefetch", Pos: pos(b, ii),
						Msg: fmt.Sprintf("prefetch of loop-invariant address %s re-touches a resident line every iteration", in.Acc),
					})
				case mem != 0 && mem == prevMem && in.Lead == 0:
					ds = append(ds, ir.Diag{
						Sev: ir.SevWarn, Rule: "redundant-prefetch", Pos: pos(b, ii),
						Msg: fmt.Sprintf("prefetch repeats the previous touch of %s with no lead distance", in.Acc),
					})
				}
			}
			prevMem = mem
		}
	}

	// never-returns: no reachable return (info).
	returns := false
	for bi, b := range f.Blocks {
		if cfg.Reachable(bi) {
			if _, ok := b.Term.(*ir.Return); ok {
				returns = true
				break
			}
		}
	}
	if !returns {
		ds = append(ds, ir.Diag{
			Sev: ir.SevInfo, Rule: "never-returns",
			Pos: ir.Pos{Module: m.Name, Func: f.Name, Instr: ir.NoInstr},
			Msg: "no return is reachable from the entry (service loop?)",
		})
	}
	return ds
}
