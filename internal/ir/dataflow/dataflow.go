// Package dataflow implements a deterministic iterative worklist fixpoint
// engine over ir.BuildCFG, plus the concrete analyses the toolchain builds
// on it: liveness, reaching definitions, use-before-def, dead stores, and
// loop-invariant address operands.
//
// The engine is the classic round-robin worklist algorithm specialized for
// reproducibility: blocks are always processed in reverse postorder (or its
// reverse, for backward problems), pending work is tracked in a bitset
// rather than a queue, and facts live in fixed-width bit vectors. Nothing
// depends on map iteration order or allocation addresses, so the computed
// facts are bit-identical run to run — the same contract the rest of the
// simulator holds itself to (fleet runs are byte-identical at any worker
// count), extended to static analysis.
//
// Results for blocks unreachable from the entry are left at the
// initialization value (top for intersection problems, empty for union
// problems); callers that care should consult ir.CFG.Reachable.
package dataflow

import (
	"math/bits"

	"repro/internal/ir"
)

// Direction selects forward (facts flow entry→exit) or backward analysis.
type Direction int

// Analysis directions.
const (
	Forward Direction = iota
	Backward
)

// MeetOp combines facts where control-flow paths join.
type MeetOp int

// Meet operators: Union for may-analyses, Intersect for must-analyses.
const (
	Union MeetOp = iota
	Intersect
)

// BitSet is a fixed-capacity bit vector over facts [0, Len).
type BitSet struct {
	n     int
	words []uint64
}

// NewBitSet returns an empty bitset with capacity for n facts.
func NewBitSet(n int) BitSet {
	return BitSet{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the fact capacity.
func (s BitSet) Len() int { return s.n }

// Has reports whether fact i is set.
func (s BitSet) Has(i int) bool { return s.words[i/64]&(1<<(uint(i)%64)) != 0 }

// Set adds fact i.
func (s BitSet) Set(i int) { s.words[i/64] |= 1 << (uint(i) % 64) }

// Clear removes fact i.
func (s BitSet) Clear(i int) { s.words[i/64] &^= 1 << (uint(i) % 64) }

// Reset clears all facts.
func (s BitSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all n facts (top for intersection problems).
func (s BitSet) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits past Len in the last word.
func (s BitSet) trim() {
	if rem := uint(s.n) % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// CopyFrom overwrites s with o. The sets must have equal capacity.
func (s BitSet) CopyFrom(o BitSet) { copy(s.words, o.words) }

// Clone returns an independent copy.
func (s BitSet) Clone() BitSet {
	c := NewBitSet(s.n)
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and o hold the same facts.
func (s BitSet) Equal(o BitSet) bool {
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// UnionWith adds every fact in o to s.
func (s BitSet) UnionWith(o BitSet) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes facts not in o from s.
func (s BitSet) IntersectWith(o BitSet) {
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndNotWith removes every fact in o from s.
func (s BitSet) AndNotWith(o BitSet) {
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Count returns the number of set facts.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach visits set facts in ascending order.
func (s BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Problem is one dataflow problem instance over a function's CFG.
//
// The Transfer function maps a block's input facts to its output facts:
// for Forward problems the input is the block-entry set and the output the
// block-exit set; for Backward problems the input is the block-exit set and
// the output the block-entry set. Transfer must be a pure function of
// (block, in) — it is re-invoked until fixpoint — and must write its result
// into out (which arrives holding the previous value).
type Problem struct {
	CFG      *ir.CFG
	Dir      Direction
	Meet     MeetOp
	NumFacts int
	// Boundary seeds the entry block's input (Forward) or every
	// exit block's input (Backward). A zero BitSet means the empty set.
	Boundary BitSet
	// Transfer computes out from in for one block.
	Transfer func(block int, in, out BitSet)
}

// Result holds the fixpoint facts, indexed by block. In is always the
// block-entry set and Out the block-exit set, regardless of direction.
type Result struct {
	In, Out []BitSet
}

// Solve runs the problem to fixpoint. Blocks are processed in reverse
// postorder (Forward) or reverse reverse-postorder (Backward), with a
// pending-set worklist, so iteration order — and therefore the exact
// fixpoint trajectory — is deterministic.
func Solve(p Problem) Result {
	n := len(p.CFG.Fn.Blocks)
	res := Result{In: make([]BitSet, n), Out: make([]BitSet, n)}
	for i := 0; i < n; i++ {
		res.In[i] = NewBitSet(p.NumFacts)
		res.Out[i] = NewBitSet(p.NumFacts)
		if p.Meet == Intersect {
			res.In[i].Fill()
			res.Out[i].Fill()
		}
	}
	if n == 0 {
		return res
	}

	boundary := p.Boundary
	if boundary.n == 0 && p.NumFacts > 0 {
		boundary = NewBitSet(p.NumFacts)
	} else if p.NumFacts == 0 {
		boundary = NewBitSet(0)
	}

	// order: the per-sweep visit sequence; input/output/edges: the
	// direction-agnostic view of the dataflow graph.
	order := p.CFG.RPO
	input, output := res.In, res.Out
	edgesIn, edgesOut := p.CFG.Preds, p.CFG.Succs
	if p.Dir == Backward {
		order = make([]int, len(p.CFG.RPO))
		for i, b := range p.CFG.RPO {
			order[len(p.CFG.RPO)-1-i] = b
		}
		input, output = res.Out, res.In
		edgesIn, edgesOut = p.CFG.Succs, p.CFG.Preds
	}

	pending := NewBitSet(n)
	for _, b := range order {
		pending.Set(b)
	}
	scratch := NewBitSet(p.NumFacts)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if !pending.Has(b) {
				continue
			}
			pending.Clear(b)
			// Meet the inputs. Boundary blocks (the entry for forward
			// problems; that every exit block has no successors makes the
			// backward case fall out of the edge loop) fold the boundary
			// value into the meet, so an entry block that is also a loop
			// header still sees the function-entry facts.
			seeded := false
			if p.Dir == Forward && b == 0 {
				input[b].CopyFrom(boundary)
				seeded = true
			}
			for _, u := range edgesIn[b] {
				if !seeded {
					input[b].CopyFrom(output[u])
					seeded = true
					continue
				}
				if p.Meet == Union {
					input[b].UnionWith(output[u])
				} else {
					input[b].IntersectWith(output[u])
				}
			}
			if !seeded {
				input[b].CopyFrom(boundary)
			}
			scratch.CopyFrom(output[b])
			p.Transfer(b, input[b], output[b])
			if !scratch.Equal(output[b]) {
				changed = true
				for _, d := range edgesOut[b] {
					pending.Set(d)
				}
			}
		}
	}
	return res
}

// GenKill returns a Transfer implementing the classic form
// out = gen[b] ∪ (in − kill[b]). gen and kill are indexed by block.
func GenKill(gen, kill []BitSet) func(block int, in, out BitSet) {
	return func(b int, in, out BitSet) {
		out.CopyFrom(in)
		out.AndNotWith(kill[b])
		out.UnionWith(gen[b])
	}
}
