package dataflow_test

import (
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/ir/dataflow"
	"repro/internal/ir/irtext"
)

// parse builds a finalized module from textual IR; test fixtures read much
// better as programs than as block-constructor soup.
func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := irtext.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func fn(t *testing.T, m *ir.Module, name string) *ir.Function {
	t.Helper()
	f := m.Func(name)
	if f == nil {
		t.Fatalf("no func %q", name)
	}
	return f
}

// diamond is a CFG with a split and a join: r1 feeds the branch, r2 is
// defined on both arms, r3 only on one.
const diamond = `
module diamond
entry main
global buf 4096
func main {
  entry:
    r1 = const 3
    br r1 gt 0, %then, %else
  then:
    r2 = const 7
    r3 = const 9
    jump %join
  else:
    r2 = const 8
    jump %join
  join:
    r4 = add r2, 1
    store r4, buf[seq stride=64]
    ret
}
`

func TestLivenessDiamond(t *testing.T) {
	m := parse(t, diamond)
	f := fn(t, m, "main")
	lv := dataflow.ComputeLiveness(f)

	idx := blockIndex(f)
	// r2 (reg 2) is live into the join and therefore out of both arms.
	for _, b := range []string{"then", "else"} {
		if !lv.Out[idx[b]].Has(2) {
			t.Errorf("r2 not live out of %%%s", b)
		}
	}
	if !lv.In[idx["join"]].Has(2) {
		t.Error("r2 not live into %join")
	}
	// r3 (reg 3) is never read: live nowhere.
	for bi := range f.Blocks {
		if lv.In[bi].Has(3) || lv.Out[bi].Has(3) {
			t.Errorf("r3 live around block %d", bi)
		}
	}
	// Nothing is live into the entry.
	if got := lv.In[idx["entry"]].Count(); got != 0 {
		t.Errorf("entry live-in count = %d, want 0", got)
	}
}

func TestDeadDefsCascade(t *testing.T) {
	m := parse(t, `
module chain
entry main
global buf 4096
func main {
  entry:
    r1 = load buf[seq stride=64]
    r2 = add r1, 5
    r3 = mul r2, 2
    r4 = add r3, 3
    store r1, buf[seq stride=64]
    ret
}
`)
	f := fn(t, m, "main")
	dead := dataflow.ComputeLiveness(f).DeadDefs()
	// r4 is dead, so r3 feeds only a dead def, so r2 does too. The load
	// (r1) is not pure and must survive.
	want := []dataflow.InstrRef{{Block: 0, Instr: 1}, {Block: 0, Instr: 2}, {Block: 0, Instr: 3}}
	if fmt.Sprint(dead) != fmt.Sprint(want) {
		t.Fatalf("DeadDefs = %v, want %v", dead, want)
	}
}

func TestReachingDefsJoin(t *testing.T) {
	m := parse(t, diamond)
	f := fn(t, m, "main")
	rd := dataflow.ComputeReachingDefs(f)
	idx := blockIndex(f)

	// Both definitions of r2 reach the join's entry.
	var reach []dataflow.DefSite
	rd.In[idx["join"]].ForEach(func(i int) {
		if rd.Defs[i].Reg == 2 {
			reach = append(reach, rd.Defs[i])
		}
	})
	if len(reach) != 2 {
		t.Fatalf("defs of r2 reaching join = %v, want 2", reach)
	}
	// The entry's def of r1 reaches everywhere (never killed).
	for bi := range f.Blocks {
		found := false
		rd.Out[bi].ForEach(func(i int) {
			if rd.Defs[i].Reg == 1 {
				found = true
			}
		})
		if !found {
			t.Errorf("def of r1 does not reach out of block %d", bi)
		}
	}
}

func TestUseBeforeDef(t *testing.T) {
	m := parse(t, `
module ubd
entry main
global buf 4096
func main {
  entry:
    r1 = const 1
    br r1 gt 0, %then, %join
  then:
    r2 = const 7
    jump %join
  join:
    r3 = add r2, r1
    store r3, buf[seq stride=64]
    ret
}
`)
	f := fn(t, m, "main")
	uses := dataflow.UseBeforeDef(f)
	idx := blockIndex(f)
	want := []dataflow.UninitUse{{Block: idx["join"], Instr: 0, Reg: 2}}
	if fmt.Sprint(uses) != fmt.Sprint(want) {
		t.Fatalf("UseBeforeDef = %v, want %v (r1 dominates, only r2 is path-dependent)", uses, want)
	}

	// The diamond assigns r2 on both arms: definitely-assigned, no findings.
	if got := dataflow.UseBeforeDef(fn(t, parse(t, diamond), "main")); len(got) != 0 {
		t.Fatalf("diamond UseBeforeDef = %v, want none", got)
	}
}

// loopSrc: r1 is defined before the loop and only read inside it; r2 is
// recomputed every iteration.
const loopSrc = `
module loopy
entry main
global buf 1048576
func main {
  entry:
    r1 = const 42
    r2 = const 8
    jump %loop
  loop:
    r3 = load buf[seq stride=64]
    r4 = add r3, r1
    r2 = sub r2, 1
    store r4, buf[seq stride=64]
    br r2 gt 0, %loop, %done
  done:
    ret
}
`

func TestLoopInvariantUses(t *testing.T) {
	m := parse(t, loopSrc)
	f := fn(t, m, "main")
	lf := ir.BuildLoopForest(f)
	rd := dataflow.ComputeReachingDefs(f)
	idx := blockIndex(f)

	invariant := map[ir.Reg]bool{}
	for _, u := range dataflow.LoopInvariantUses(f, lf, rd) {
		if u.Block == idx["loop"] {
			invariant[u.Reg] = true
		}
	}
	if !invariant[1] {
		t.Error("r1 (defined before the loop) not reported invariant")
	}
	if invariant[2] {
		t.Error("r2 (redefined every iteration) reported invariant")
	}
	if invariant[3] {
		t.Error("r3 (loaded every iteration) reported invariant")
	}
}

func TestInvariantAddressLoads(t *testing.T) {
	m := parse(t, `
module pins
entry main
global buf 1048576
func main {
  entry:
    r0 = load buf[pin]
    r1 = const 8
    jump %loop
  loop:
    r2 = load buf[pin]
    r3 = load buf[seq stride=64]
    r4 = add r2, r3
    r1 = sub r1, 1
    store r4, buf[seq stride=64]
    br r1 gt 0, %loop, %done
  done:
    store r0, buf[seq stride=64]
    ret
}
`)
	f := fn(t, m, "main")
	lf := ir.BuildLoopForest(f)
	inv := dataflow.InvariantAddressLoads(f, lf)

	// Collect load IDs by block for the assertion.
	var pinInLoop, seqInLoop, pinOutside int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ld, ok := in.(*ir.Load)
			if !ok {
				continue
			}
			switch {
			case ld.Acc.Pattern == ir.Pin && b.Name == "loop":
				pinInLoop = ld.ID
			case ld.Acc.Pattern == ir.Pin:
				pinOutside = ld.ID
			case b.Name == "loop":
				seqInLoop = ld.ID
			}
		}
	}
	if !inv[pinInLoop] {
		t.Error("pin load inside loop not reported invariant")
	}
	if inv[seqInLoop] {
		t.Error("seq load inside loop reported invariant")
	}
	if inv[pinOutside] {
		t.Error("pin load outside any loop reported invariant (depth 0 has no iterations)")
	}
}

// TestGenKillEngine exercises Solve directly with a tiny forward gen/kill
// problem over a two-block CFG, independent of any concrete analysis.
func TestGenKillEngine(t *testing.T) {
	m := parse(t, `
module tiny
entry main
global buf 4096
func main {
  a:
    r1 = const 1
    jump %b
  b:
    r1 = add r1, 1
    store r1, buf[seq stride=64]
    ret
}
`)
	f := fn(t, m, "main")
	cfg := ir.BuildCFG(f)
	// Fact 0: "block a's def of r1 is current"; fact 1: "block b's".
	gen := []dataflow.BitSet{dataflow.NewBitSet(2), dataflow.NewBitSet(2)}
	kill := []dataflow.BitSet{dataflow.NewBitSet(2), dataflow.NewBitSet(2)}
	gen[0].Set(0)
	kill[0].Set(1)
	gen[1].Set(1)
	kill[1].Set(0)
	res := dataflow.Solve(dataflow.Problem{
		CFG: cfg, Dir: dataflow.Forward, Meet: dataflow.Union,
		NumFacts: 2, Boundary: dataflow.NewBitSet(2),
		Transfer: dataflow.GenKill(gen, kill),
	})
	if !res.In[1].Has(0) || res.In[1].Has(1) {
		t.Errorf("In[b] = %v/%v, want fact 0 only", res.In[1].Has(0), res.In[1].Has(1))
	}
	if !res.Out[1].Has(1) || res.Out[1].Has(0) {
		t.Errorf("Out[b] wrong: has0=%v has1=%v, want fact 1 only", res.Out[1].Has(0), res.Out[1].Has(1))
	}
	if !res.Out[0].Has(0) {
		t.Error("Out[a] missing its own gen")
	}
}

func blockIndex(f *ir.Function) map[string]int {
	idx := make(map[string]int)
	for i, b := range f.Blocks {
		idx[b.Name] = i
	}
	return idx
}
