package dataflow_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/ir/dataflow"
)

// rules collects the rule names present in a diagnostic list.
func rules(ds ir.Diags) map[string]int {
	out := make(map[string]int)
	for _, d := range ds {
		out[d.Rule]++
	}
	return out
}

func findRule(ds ir.Diags, rule string) (ir.Diag, bool) {
	for _, d := range ds {
		if d.Rule == rule {
			return d, true
		}
	}
	return ir.Diag{}, false
}

func TestLintRuleCoverage(t *testing.T) {
	m := parse(t, `
module covered
entry main
global buf 1048576
func main {
  entry:
    r1 = const 2
    br r1 gt 0, %then, %join
  then:
    r2 = const 7
    jump %join
  join:
    r3 = add r2, 1
    r9 = mul r3, 4
    call @spin
    store r3, buf[seq stride=64]
    ret
  orphan:
    ret
}
func spin {
  entry:
    r1 = const 1
    jump %loop
  loop:
    prefetch buf[pin]
    r2 = load buf[pin] !nt
    r3 = add r2, r1
    store r3, buf[seq stride=64]
    jump %loop
}
func ghost {
  entry:
    r1 = load buf[pin]
    store r1, buf[seq stride=64]
    ret
}
`)
	ds := dataflow.Lint(m)
	got := rules(ds)
	want := map[string]int{
		"use-before-def":     1, // r2 in main's join
		"dead-store":         1, // r9 in main
		"unreachable-block":  1, // main's orphan
		"redundant-prefetch": 1, // spin's pin prefetch in loop
		"nt-hint-invariant":  1, // spin's NT pin load in loop
		"uncalled-function":  1, // ghost
		"never-returns":      1, // spin
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: got %d findings, want %d\nall: %v", rule, got[rule], n, ds)
		}
	}
	// ghost's pin load is NOT in a loop: no invariant-address-load info.
	if got["invariant-address-load"] != 0 {
		t.Errorf("invariant-address-load fired outside a loop: %v", ds)
	}

	// Severity assignments.
	if d, ok := findRule(ds, "use-before-def"); !ok || d.Sev != ir.SevError {
		t.Errorf("use-before-def severity = %v, want error", d.Sev)
	}
	if d, ok := findRule(ds, "dead-store"); !ok || d.Sev != ir.SevWarn {
		t.Errorf("dead-store severity = %v, want warning", d.Sev)
	}
	if d, ok := findRule(ds, "uncalled-function"); !ok || d.Sev != ir.SevInfo {
		t.Errorf("uncalled-function severity = %v, want info", d.Sev)
	}

	// Positions carry the full module → function → block → instr chain.
	d, _ := findRule(ds, "use-before-def")
	s := d.String()
	for _, part := range []string{"module covered", "func main", "block %join", "instr #0"} {
		if !strings.Contains(s, part) {
			t.Errorf("diag %q missing %q", s, part)
		}
	}
}

func TestLintInvariantLoadInfo(t *testing.T) {
	m := parse(t, `
module pins
entry main
global buf 1048576
func main {
  entry:
    r1 = const 8
    jump %loop
  loop:
    r2 = load buf[pin]
    r1 = sub r1, r2
    br r1 gt 0, %loop, %done
  done:
    ret
}
`)
	ds := dataflow.Lint(m)
	d, ok := findRule(ds, "invariant-address-load")
	if !ok {
		t.Fatalf("no invariant-address-load finding: %v", ds)
	}
	if d.Sev != ir.SevInfo {
		t.Errorf("severity = %v, want info", d.Sev)
	}
	if ds.Errors() != 0 {
		t.Errorf("unexpected errors: %v", ds)
	}
}

// TestLintSameSiteRedundancy exercises the back-to-back same-site branch,
// which needs two memory instructions sharing a MemID — something only
// transform passes produce (textual modules get fresh MemIDs), so the
// fixture patches the IDs after parsing.
func TestLintSameSiteRedundancy(t *testing.T) {
	m := parse(t, `
module dup
entry main
global buf 1048576
func main {
  entry:
    prefetch buf[seq stride=64]
    prefetch buf[seq stride=64]
    r1 = load buf[seq stride=64]
    store r1, buf[seq stride=64]
    ret
}
`)
	b := m.Func("main").Blocks[0]
	p1 := b.Instrs[0].(*ir.Prefetch)
	p2 := b.Instrs[1].(*ir.Prefetch)
	p2.MemID = p1.MemID
	ds := dataflow.Lint(m)
	d, ok := findRule(ds, "redundant-prefetch")
	if !ok {
		t.Fatalf("no redundant-prefetch finding: %v", ds)
	}
	if !strings.Contains(d.Msg, "no lead distance") {
		t.Errorf("wrong branch fired: %s", d)
	}

	// A lead distance disambiguates the two touches: no finding.
	p2.Lead = 8
	if _, ok := findRule(dataflow.Lint(m), "redundant-prefetch"); ok {
		t.Error("redundant-prefetch fired despite a lead distance")
	}
}

func TestLintCleanModule(t *testing.T) {
	m := parse(t, `
module ok
entry main
global buf 1048576
func main {
  entry:
    r1 = const 64
    jump %loop
  loop:
    r2 = load buf[seq stride=64]
    r3 = add r2, 1
    store r3, buf[seq stride=64]
    r1 = sub r1, 1
    br r1 gt 0, %loop, %done
  done:
    ret
}
`)
	if ds := dataflow.Lint(m); len(ds) != 0 {
		t.Fatalf("clean module produced findings: %v", ds)
	}
}
