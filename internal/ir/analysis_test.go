package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// linearChain builds entry -> b1 -> b2 -> ... -> ret.
func linearChain(n int) *Function {
	f := &Function{Name: "chain"}
	for i := 0; i < n; i++ {
		f.Blocks = append(f.Blocks, &Block{Name: "b" + string(rune('a'+i)), Index: i})
	}
	for i := 0; i < n-1; i++ {
		f.Blocks[i].Term = &Jump{Target: f.Blocks[i+1]}
	}
	f.Blocks[n-1].Term = &Return{}
	return f
}

func TestCFGLinearChain(t *testing.T) {
	f := linearChain(5)
	c := BuildCFG(f)
	if len(c.RPO) != 5 {
		t.Fatalf("RPO length = %d, want 5", len(c.RPO))
	}
	for i, b := range c.RPO {
		if b != i {
			t.Errorf("RPO[%d] = %d, want %d", i, b, i)
		}
	}
	for i := 1; i < 5; i++ {
		if len(c.Preds[i]) != 1 || c.Preds[i][0] != i-1 {
			t.Errorf("Preds[%d] = %v", i, c.Preds[i])
		}
	}
}

func TestDomTreeLinearChain(t *testing.T) {
	f := linearChain(5)
	d := BuildDomTree(BuildCFG(f))
	if d.IDom[0] != -1 {
		t.Errorf("entry idom = %d, want -1", d.IDom[0])
	}
	for i := 1; i < 5; i++ {
		if d.IDom[i] != i-1 {
			t.Errorf("IDom[%d] = %d, want %d", i, d.IDom[i], i-1)
		}
	}
	for i := 0; i < 5; i++ {
		for j := i; j < 5; j++ {
			if !d.Dominates(i, j) {
				t.Errorf("block %d should dominate %d in a chain", i, j)
			}
		}
		for j := 0; j < i; j++ {
			if d.Dominates(i, j) {
				t.Errorf("block %d should not dominate %d", i, j)
			}
		}
	}
}

// diamondFn builds entry(0) -> {1,2} -> 3(ret).
func diamondFn() *Function {
	f := &Function{Name: "dia"}
	for i := 0; i < 4; i++ {
		f.Blocks = append(f.Blocks, &Block{Name: []string{"e", "l", "r", "j"}[i], Index: i})
	}
	f.Blocks[0].Term = &Branch{X: 0, Cmp: Lt, Y: Imm(1), True: f.Blocks[1], False: f.Blocks[2]}
	f.Blocks[1].Term = &Jump{Target: f.Blocks[3]}
	f.Blocks[2].Term = &Jump{Target: f.Blocks[3]}
	f.Blocks[3].Term = &Return{}
	return f
}

func TestDomTreeDiamond(t *testing.T) {
	d := BuildDomTree(BuildCFG(diamondFn()))
	if d.IDom[1] != 0 || d.IDom[2] != 0 {
		t.Errorf("branch arms should be dominated by entry: idoms %d %d", d.IDom[1], d.IDom[2])
	}
	if d.IDom[3] != 0 {
		t.Errorf("join idom = %d, want 0 (neither arm dominates it)", d.IDom[3])
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("an arm of the diamond must not dominate the join")
	}
}

func TestUnreachableBlocks(t *testing.T) {
	f := linearChain(3)
	// Add an unreachable block.
	dead := &Block{Name: "dead", Index: 3, Term: &Return{}}
	f.Blocks = append(f.Blocks, dead)
	c := BuildCFG(f)
	if c.Reachable(3) {
		t.Error("dead block reported reachable")
	}
	d := BuildDomTree(c)
	if d.IDom[3] != -1 {
		t.Errorf("dead block idom = %d, want -1", d.IDom[3])
	}
	if d.Dominates(0, 3) {
		t.Error("nothing dominates an unreachable block")
	}
	lf := BuildLoopForest(f)
	if lf.NumLoops() != 0 {
		t.Errorf("chain has %d loops, want 0", lf.NumLoops())
	}
}

// selfLoop builds a single block branching to itself.
func TestLoopSelf(t *testing.T) {
	f := &Function{Name: "self"}
	b0 := &Block{Name: "e", Index: 0}
	b1 := &Block{Name: "l", Index: 1}
	b2 := &Block{Name: "x", Index: 2}
	f.Blocks = []*Block{b0, b1, b2}
	b0.Term = &Jump{Target: b1}
	b1.Term = &Branch{X: 0, Cmp: Lt, Y: Imm(10), True: b1, False: b2}
	b2.Term = &Return{}
	lf := BuildLoopForest(f)
	if lf.NumLoops() != 1 {
		t.Fatalf("NumLoops = %d, want 1", lf.NumLoops())
	}
	if lf.Depth(1) != 1 {
		t.Errorf("self-loop block depth = %d, want 1", lf.Depth(1))
	}
	if lf.Depth(0) != 0 || lf.Depth(2) != 0 {
		t.Errorf("blocks outside loop have depths %d,%d, want 0,0", lf.Depth(0), lf.Depth(2))
	}
	if !lf.AtMaxDepth(1) || lf.AtMaxDepth(0) {
		t.Error("AtMaxDepth wrong for self loop")
	}
}

func TestLoopSharedHeaderMerges(t *testing.T) {
	// Two back edges into the same header must form one loop.
	//   0 -> 1(h) -> 2 -> 1, 1 -> 3 -> 1, exits to 4
	f := &Function{Name: "shared"}
	for i := 0; i < 5; i++ {
		f.Blocks = append(f.Blocks, &Block{Name: string(rune('a' + i)), Index: i})
	}
	f.Blocks[0].Term = &Jump{Target: f.Blocks[1]}
	f.Blocks[1].Term = &Branch{X: 0, Cmp: Lt, Y: Imm(1), True: f.Blocks[2], False: f.Blocks[3]}
	f.Blocks[2].Term = &Branch{X: 0, Cmp: Lt, Y: Imm(2), True: f.Blocks[1], False: f.Blocks[4]}
	f.Blocks[3].Term = &Jump{Target: f.Blocks[1]}
	f.Blocks[4].Term = &Return{}
	lf := BuildLoopForest(f)
	if lf.NumLoops() != 1 {
		t.Fatalf("NumLoops = %d, want 1 (shared header merges)", lf.NumLoops())
	}
	for _, b := range []int{1, 2, 3} {
		if lf.Depth(b) != 1 {
			t.Errorf("block %d depth = %d, want 1", b, lf.Depth(b))
		}
	}
}

func TestCallGraph(t *testing.T) {
	mb := NewModuleBuilder("cg")
	mb.Global("g", 64)
	fa := mb.Function("a")
	fa.Call("b")
	fa.Call("c")
	fa.Return()
	fbd := mb.Function("b")
	fbd.Call("c")
	fbd.Return()
	fc := mb.Function("c")
	fc.Return()
	fd := mb.Function("d")
	fd.Call("d")
	fd.Return()
	mb.SetEntry("a")
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cg := BuildCallGraph(m)
	if len(cg.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(cg.Edges))
	}
	if got := cg.Callees["a"]; len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Callees[a] = %v", got)
	}
	if got := cg.Callers["c"]; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Callers[c] = %v", got)
	}
	reach := cg.ReachableFrom("a")
	if !reach["a"] || !reach["b"] || !reach["c"] {
		t.Errorf("ReachableFrom(a) = %v", reach)
	}
	if reach["d"] {
		t.Error("d should be unreachable from a")
	}
	if !cg.ReachableFrom("d")["d"] {
		t.Error("d reaches itself")
	}
}

// randomCFG builds a random function with n blocks where every block is
// given a terminator targeting random blocks. Used for property tests.
func randomCFG(rng *rand.Rand, n int) *Function {
	f := &Function{Name: "rand"}
	for i := 0; i < n; i++ {
		f.Blocks = append(f.Blocks, &Block{Name: "b" + string(rune('0'+i%10)) + string(rune('a'+i/10)), Index: i})
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			f.Blocks[i].Term = &Return{}
		case 1:
			f.Blocks[i].Term = &Jump{Target: f.Blocks[rng.Intn(n)]}
		default:
			f.Blocks[i].Term = &Branch{X: 0, Cmp: Lt, Y: Imm(1),
				True: f.Blocks[rng.Intn(n)], False: f.Blocks[rng.Intn(n)]}
		}
	}
	return f
}

// Property: for random CFGs, the entry dominates every reachable block, a
// block never dominates its own dominator (unless equal), and loop headers
// dominate every block in their loop body.
func TestDominatorPropertiesRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		f := randomCFG(rng, n)
		c := BuildCFG(f)
		d := BuildDomTree(c)
		for b := 0; b < n; b++ {
			if !c.Reachable(b) {
				continue
			}
			if !d.Dominates(0, b) {
				return false
			}
			if b != 0 && d.IDom[b] >= 0 && d.Dominates(b, d.IDom[b]) && b != d.IDom[b] {
				return false
			}
		}
		lf := BuildLoopForest(f)
		var check func(l *Loop) bool
		check = func(l *Loop) bool {
			for _, b := range l.Blocks {
				if !d.Dominates(l.Header, b) {
					return false
				}
			}
			for _, ch := range l.Children {
				if ch.Depth != l.Depth+1 {
					return false
				}
				if !check(ch) {
					return false
				}
			}
			return true
		}
		for _, r := range lf.Roots {
			if r.Depth != 1 || !check(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested child loop bodies are subsets of their parents.
func TestLoopNestingSubsetRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomCFG(rng, 2+rng.Intn(14))
		lf := BuildLoopForest(f)
		var check func(l *Loop) bool
		check = func(l *Loop) bool {
			body := make(map[int]bool, len(l.Blocks))
			for _, b := range l.Blocks {
				body[b] = true
			}
			for _, ch := range l.Children {
				for _, b := range ch.Blocks {
					if !body[b] {
						return false
					}
				}
				if !check(ch) {
					return false
				}
			}
			return true
		}
		for _, r := range lf.Roots {
			if !check(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
