// Package irtext provides a human-readable textual form of the IR, with a
// printer and a parser that round-trip modules exactly. It is the
// equivalent of LLVM's .ll assembly next to its bitcode: the gob form
// (ir.Encode) travels inside binaries, while this form is for inspection,
// tooling, and writing programs by hand.
//
// Grammar sketch (one construct per line; '#' starts a comment):
//
//	module <name>
//	entry <function>
//	global <name> <size-bytes>
//	func <name> {
//	  <block>:
//	    r<N> = const <imm>
//	    r<N> = <binop> <operand>, <operand>
//	    r<N> = load <access> [!nt]
//	    store <operand>, <access>
//	    prefetch <access> [!nt]
//	    call @<function>
//	    jump %<block>
//	    br r<N> <cmp> <operand>, %<block>, %<block>
//	    ret
//	}
//
// where <access> is <global>[<pattern> key=value ...] with patterns
// seq|rand|chase|hot|pin and optional stride=<n> / hot=<n> parameters, and
// <operand> is r<N> or an integer literal.
package irtext

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ir"
)

// Print writes the module in textual form.
func Print(w io.Writer, m *ir.Module) error {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	fmt.Fprintf(&b, "entry %s\n", m.EntryFn)
	if len(m.Globals) > 0 {
		b.WriteString("\n")
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global %s %d\n", g.Name, g.Size)
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&b, "\nfunc %s {\n", f.Name)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "  %s:\n", blk.Name)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "    %s\n", formatInstr(in))
			}
			fmt.Fprintf(&b, "    %s\n", formatTerm(blk.Term))
		}
		b.WriteString("}\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the module to a string.
func String(m *ir.Module) string {
	var b strings.Builder
	if err := Print(&b, m); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

func formatOperand(o ir.Operand) string {
	if o.IsReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	return fmt.Sprintf("%d", o.Imm)
}

func formatAccess(a ir.Access) string {
	var parts []string
	parts = append(parts, a.Pattern.String())
	if a.Stride != 0 {
		parts = append(parts, fmt.Sprintf("stride=%d", a.Stride))
	}
	if a.HotBytes != 0 {
		parts = append(parts, fmt.Sprintf("hot=%d", a.HotBytes))
	}
	return fmt.Sprintf("%s[%s]", a.Global, strings.Join(parts, " "))
}

func formatInstr(in ir.Instr) string {
	switch in := in.(type) {
	case *ir.Const:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Value)
	case *ir.BinOp:
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, formatOperand(in.X), formatOperand(in.Y))
	case *ir.Load:
		nt := ""
		if in.NT {
			nt = " !nt"
		}
		return fmt.Sprintf("r%d = load %s%s", in.Dst, formatAccess(in.Acc), nt)
	case *ir.Store:
		return fmt.Sprintf("store %s, %s", formatOperand(in.Val), formatAccess(in.Acc))
	case *ir.Prefetch:
		nt := ""
		if in.NT {
			nt = " !nt"
		}
		lead := ""
		if in.Lead != 0 {
			lead = fmt.Sprintf(" lead=%d", in.Lead)
		}
		return fmt.Sprintf("prefetch %s%s%s", formatAccess(in.Acc), lead, nt)
	case *ir.Call:
		return fmt.Sprintf("call @%s", in.Callee)
	default:
		panic(fmt.Sprintf("irtext: unknown instruction %T", in))
	}
}

func formatTerm(t ir.Terminator) string {
	switch t := t.(type) {
	case *ir.Jump:
		return fmt.Sprintf("jump %%%s", t.Target.Name)
	case *ir.Branch:
		return fmt.Sprintf("br r%d %s %s, %%%s, %%%s",
			t.X, t.Cmp, formatOperand(t.Y), t.True.Name, t.False.Name)
	case *ir.Return:
		return "ret"
	default:
		panic(fmt.Sprintf("irtext: unknown terminator %T", t))
	}
}
