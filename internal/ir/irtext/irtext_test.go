package irtext

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/workload"
)

const sample = `
# A small demo program.
module demo
entry main

global buf 65536
global tab 4096

func hot {
  entry:
    r0 = const 0
    jump %loop
  loop:
    br r0 lt 100, %body, %done
  body:
    r1 = load buf[seq stride=64]
    r2 = add r1, 5
    store r2, tab[rand]
    prefetch buf[seq stride=64] !nt
    r0 = add r0, 1
    jump %loop
  done:
    ret
}

func main {
  entry:
    call @hot
    ret
}
`

func TestParseSample(t *testing.T) {
	m, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "demo" || m.EntryFn != "main" {
		t.Errorf("header wrong: %q %q", m.Name, m.EntryFn)
	}
	if len(m.Globals) != 2 || m.Globals[0].Size != 65536 {
		t.Errorf("globals wrong: %+v", m.Globals)
	}
	hot := m.Func("hot")
	if hot == nil || len(hot.Blocks) != 4 {
		t.Fatalf("hot: %+v", hot)
	}
	if m.NumLoads != 1 {
		t.Errorf("NumLoads = %d, want 1", m.NumLoads)
	}
	ld := m.Loads()[0]
	if ld.Acc.Global != "buf" || ld.Acc.Pattern != ir.Seq || ld.Acc.Stride != 64 {
		t.Errorf("load access = %+v", ld.Acc)
	}
	// The branch targets resolve within the function.
	br, ok := hot.Blocks[1].Term.(*ir.Branch)
	if !ok {
		t.Fatalf("loop terminator = %T", hot.Blocks[1].Term)
	}
	if br.True.Name != "body" || br.False.Name != "done" {
		t.Errorf("branch targets %q/%q", br.True.Name, br.False.Name)
	}
	// NT prefetch parsed.
	foundNT := false
	for _, in := range hot.Blocks[2].Instrs {
		if pf, ok := in.(*ir.Prefetch); ok && pf.NT {
			foundNT = true
		}
	}
	if !foundNT {
		t.Error("!nt prefetch lost")
	}
}

func TestPrintParsePrintFixpoint(t *testing.T) {
	m, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text1 := String(m)
	m2, err := ParseString(text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	text2 := String(m2)
	if text1 != text2 {
		t.Errorf("print/parse not a fixpoint:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
}

func TestCatalogAppsRoundTrip(t *testing.T) {
	// Every catalog app must survive print → parse → print.
	for _, name := range []string{"libquantum", "soplex", "web-search", "gobmk"} {
		m := workload.MustByName(name).Module()
		text := String(m)
		m2, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if m2.NumLoads != m.NumLoads || len(m2.Funcs) != len(m.Funcs) {
			t.Errorf("%s: structure changed: loads %d->%d funcs %d->%d",
				name, m.NumLoads, m2.NumLoads, len(m.Funcs), len(m2.Funcs))
		}
		if String(m2) != text {
			t.Errorf("%s: not a fixpoint", name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"garbage", "module x\nentry f\nfunc f {\n e:\n   blah blah\n ret\n}\n", "cannot parse"},
		{"nested func", "module x\nfunc a {\nfunc b {", "nested"},
		{"instr outside block", "module x\nfunc f {\nret\n}", "outside a block"},
		{"missing terminator", "module x\nentry f\nfunc f {\n a:\n  r0 = const 1\n b:\n  ret\n}", "no terminator"},
		{"undefined block", "module x\nentry f\nfunc f {\n a:\n  jump %nope\n}", "undefined block"},
		{"bad global", "module x\nglobal g big", "bad global size"},
		{"bad register", "module x\nentry f\nfunc f {\n a:\n  rX = const 1\n  ret\n}", "bad register"},
		{"unknown pattern", "module x\nentry f\nglobal g 8\nfunc f {\n a:\n  r0 = load g[zigzag]\n  ret\n}", "unknown pattern"},
		{"unterminated func", "module x\nentry f\nfunc f {\n a:\n  ret\n", "unterminated"},
		{"after terminator", "module x\nentry f\nfunc f {\n a:\n  ret\n  r0 = const 1\n}", "after terminator"},
		{"call syntax", "module x\nentry f\nfunc f {\n a:\n  call f\n  ret\n}", "call wants"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil {
				t.Fatal("parse accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseString("module x\nentry f\nfunc f {\n a:\n  wat\n  ret\n}")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 5 {
		t.Errorf("Line = %d, want 5", pe.Line)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# leading comment\n\nmodule x # trailing\nentry f\n\nfunc f {\n a:\n  ret # done\n}\n"
	m, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "x" {
		t.Errorf("name %q", m.Name)
	}
}

// Property: random builder-generated modules round-trip through text.
func TestRandomModulesRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mb := ir.NewModuleBuilder("prop")
		mb.Global("g", 1+int64(rng.Intn(1<<20)))
		fb := mb.Function("f")
		var emit func(depth int)
		emit = func(depth int) {
			for i := 0; i < 1+rng.Intn(3); i++ {
				switch rng.Intn(4) {
				case 0:
					fb.Load(ir.Access{Global: "g", Pattern: ir.Pattern(rng.Intn(4)),
						Stride: int64(rng.Intn(128)), HotBytes: int64(rng.Intn(8192))})
				case 1:
					fb.Store(ir.Imm(int64(rng.Intn(100))), ir.Access{Global: "g", Pattern: ir.Rand})
				case 2:
					fb.Work(1 + rng.Intn(3))
				default:
					fb.Prefetch(ir.Access{Global: "g", Pattern: ir.Seq}, rng.Intn(2) == 0)
				}
			}
			if depth > 0 && rng.Intn(2) == 0 {
				fb.Loop(int64(1+rng.Intn(8)), func() { emit(depth - 1) })
			}
		}
		emit(2)
		fb.Return()
		mb.SetEntry("f")
		m, err := mb.Build()
		if err != nil {
			return false
		}
		text := String(m)
		m2, err := ParseString(text)
		if err != nil {
			return false
		}
		return String(m2) == text && m2.NumLoads == m.NumLoads && m2.NumMemSites == m.NumMemSites
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
