package irtext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("irtext: line %d: %s", e.Line, e.Msg)
}

// Parse reads a module in the textual form produced by Print and finalizes
// it (verifying structure and assigning IDs).
func Parse(r io.Reader) (*ir.Module, error) {
	p := &parser{m: &ir.Module{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		p.line++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.handle(line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("irtext: read: %w", err)
	}
	if p.fn != nil {
		return nil, p.errf("unterminated function %q", p.fn.Name)
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	if err := p.m.Finalize(); err != nil {
		return nil, fmt.Errorf("irtext: %w", err)
	}
	return p.m, nil
}

// ParseString parses a module from a string.
func ParseString(s string) (*ir.Module, error) {
	return Parse(strings.NewReader(s))
}

type blockRef struct {
	fn   *ir.Function
	name string
	line int
	set  func(*ir.Block)
}

type parser struct {
	m    *ir.Module
	fn   *ir.Function
	blk  *ir.Block
	line int
	refs []blockRef
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// tokenize splits on whitespace but keeps bracketed access expressions
// ("buf[seq stride=64]") as single tokens; a trailing comma after a
// bracket group stays attached, matching the other operand tokens.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '[':
			depth++
			cur.WriteRune(r)
		case r == ']':
			if depth > 0 {
				depth--
			}
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func (p *parser) handle(line string) error {
	fields := tokenize(line)
	switch {
	case fields[0] == "module":
		if len(fields) != 2 {
			return p.errf("module wants one name")
		}
		p.m.Name = fields[1]
	case fields[0] == "entry":
		if len(fields) != 2 {
			return p.errf("entry wants one function name")
		}
		p.m.EntryFn = fields[1]
	case fields[0] == "global":
		if len(fields) != 3 {
			return p.errf("global wants a name and a size")
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return p.errf("bad global size %q", fields[2])
		}
		p.m.Globals = append(p.m.Globals, &ir.Global{Name: fields[1], Size: size})
	case fields[0] == "func":
		if p.fn != nil {
			return p.errf("nested func")
		}
		if len(fields) != 3 || fields[2] != "{" {
			return p.errf(`func wants "func <name> {"`)
		}
		p.fn = &ir.Function{Name: fields[1]}
		p.m.Funcs = append(p.m.Funcs, p.fn)
	case fields[0] == "}":
		if p.fn == nil {
			return p.errf("} outside a function")
		}
		if p.blk != nil && p.blk.Term == nil {
			return p.errf("block %q has no terminator", p.blk.Name)
		}
		p.fn, p.blk = nil, nil
	case strings.HasSuffix(fields[0], ":") && len(fields) == 1:
		if p.fn == nil {
			return p.errf("block label outside a function")
		}
		if p.blk != nil && p.blk.Term == nil {
			return p.errf("block %q has no terminator", p.blk.Name)
		}
		p.blk = &ir.Block{Name: strings.TrimSuffix(fields[0], ":")}
		p.fn.Blocks = append(p.fn.Blocks, p.blk)
	default:
		if p.blk == nil {
			return p.errf("instruction outside a block")
		}
		if p.blk.Term != nil {
			return p.errf("instruction after terminator in block %q", p.blk.Name)
		}
		return p.instr(fields)
	}
	return nil
}

func (p *parser) instr(fields []string) error {
	join := strings.Join(fields, " ")
	switch fields[0] {
	case "jump":
		if len(fields) != 2 {
			return p.errf("jump wants one target")
		}
		name, err := p.blockName(fields[1])
		if err != nil {
			return err
		}
		t := &ir.Jump{}
		p.defer2(name, func(b *ir.Block) { t.Target = b })
		p.blk.Term = t
	case "br":
		// br rX cmp Y, %t, %f
		if len(fields) != 6 {
			return p.errf("br wants: br rX <cmp> <op>, %%t, %%f")
		}
		x, err := p.reg(fields[1])
		if err != nil {
			return err
		}
		cmp, err := parseCmp(fields[2])
		if err != nil {
			return p.errf("%v", err)
		}
		y, err := p.operand(strings.TrimSuffix(fields[3], ","))
		if err != nil {
			return err
		}
		tn, err := p.blockName(strings.TrimSuffix(fields[4], ","))
		if err != nil {
			return err
		}
		fn, err := p.blockName(fields[5])
		if err != nil {
			return err
		}
		t := &ir.Branch{X: x, Cmp: cmp, Y: y}
		p.defer2(tn, func(b *ir.Block) { t.True = b })
		p.defer2(fn, func(b *ir.Block) { t.False = b })
		p.blk.Term = t
	case "ret":
		p.blk.Term = &ir.Return{}
	case "store":
		// store <op>, <access>
		if len(fields) != 3 {
			return p.errf("store wants: store <op>, <access>")
		}
		val, err := p.operand(strings.TrimSuffix(fields[1], ","))
		if err != nil {
			return err
		}
		acc, err := p.access(fields[2])
		if err != nil {
			return err
		}
		p.blk.Instrs = append(p.blk.Instrs, &ir.Store{Val: val, Acc: acc})
	case "prefetch":
		nt := false
		var lead int64
		rest := fields[1:]
		for len(rest) > 1 {
			last := rest[len(rest)-1]
			switch {
			case last == "!nt":
				nt = true
			case strings.HasPrefix(last, "lead="):
				v, err := strconv.ParseInt(strings.TrimPrefix(last, "lead="), 10, 64)
				if err != nil {
					return p.errf("bad lead %q", last)
				}
				lead = v
			default:
				return p.errf("prefetch wants: prefetch <access> [lead=N] [!nt]")
			}
			rest = rest[:len(rest)-1]
		}
		if len(rest) != 1 {
			return p.errf("prefetch wants: prefetch <access> [lead=N] [!nt]")
		}
		acc, err := p.access(rest[0])
		if err != nil {
			return err
		}
		p.blk.Instrs = append(p.blk.Instrs, &ir.Prefetch{Acc: acc, NT: nt, Lead: lead})
	case "call":
		if len(fields) != 2 || !strings.HasPrefix(fields[1], "@") {
			return p.errf("call wants: call @<function>")
		}
		p.blk.Instrs = append(p.blk.Instrs, &ir.Call{Callee: fields[1][1:]})
	default:
		// rN = ...
		if len(fields) < 3 || fields[1] != "=" {
			return p.errf("cannot parse %q", join)
		}
		dst, err := p.reg(fields[0])
		if err != nil {
			return err
		}
		return p.assign(dst, fields[2:])
	}
	return nil
}

// access parses "<global>[pattern k=v ...]"; the bracket expression must
// not contain spaces other than between parameters, so the caller passes
// the whole bracketed token rejoined.
func (p *parser) access(tok string) (ir.Access, error) {
	open := strings.IndexByte(tok, '[')
	if open < 0 || !strings.HasSuffix(tok, "]") {
		return ir.Access{}, p.errf("bad access %q", tok)
	}
	a := ir.Access{Global: tok[:open]}
	inner := strings.Fields(strings.ReplaceAll(tok[open+1:len(tok)-1], ",", " "))
	if len(inner) == 0 {
		return ir.Access{}, p.errf("access %q has no pattern", tok)
	}
	switch inner[0] {
	case "seq":
		a.Pattern = ir.Seq
	case "rand":
		a.Pattern = ir.Rand
	case "chase":
		a.Pattern = ir.Chase
	case "hot":
		a.Pattern = ir.Hot
	case "pin":
		a.Pattern = ir.Pin
	default:
		return ir.Access{}, p.errf("unknown pattern %q", inner[0])
	}
	for _, kv := range inner[1:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return ir.Access{}, p.errf("bad access parameter %q", kv)
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return ir.Access{}, p.errf("bad access parameter value %q", kv)
		}
		switch parts[0] {
		case "stride":
			a.Stride = v
		case "hot":
			a.HotBytes = v
		default:
			return ir.Access{}, p.errf("unknown access parameter %q", parts[0])
		}
	}
	return a, nil
}

func (p *parser) assign(dst ir.Reg, rhs []string) error {
	switch rhs[0] {
	case "const":
		if len(rhs) != 2 {
			return p.errf("const wants one immediate")
		}
		v, err := strconv.ParseInt(rhs[1], 10, 64)
		if err != nil {
			return p.errf("bad immediate %q", rhs[1])
		}
		p.blk.Instrs = append(p.blk.Instrs, &ir.Const{Dst: dst, Value: v})
	case "load":
		nt := false
		rest := rhs[1:]
		if len(rest) > 0 && rest[len(rest)-1] == "!nt" {
			nt = true
			rest = rest[:len(rest)-1]
		}
		if len(rest) != 1 {
			return p.errf("load wants: rN = load <access> [!nt]")
		}
		acc, err := p.access(rest[0])
		if err != nil {
			return err
		}
		p.blk.Instrs = append(p.blk.Instrs, &ir.Load{Dst: dst, Acc: acc, NT: nt})
	default:
		op, err := parseBin(rhs[0])
		if err != nil {
			return p.errf("%v", err)
		}
		if len(rhs) != 3 {
			return p.errf("binop wants: rN = <op> <x>, <y>")
		}
		x, err := p.operand(strings.TrimSuffix(rhs[1], ","))
		if err != nil {
			return err
		}
		y, err := p.operand(rhs[2])
		if err != nil {
			return err
		}
		p.blk.Instrs = append(p.blk.Instrs, &ir.BinOp{Dst: dst, Op: op, X: x, Y: y})
	}
	return nil
}

func (p *parser) reg(tok string) (ir.Reg, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, p.errf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return 0, p.errf("bad register %q", tok)
	}
	return ir.Reg(n), nil
}

func (p *parser) operand(tok string) (ir.Operand, error) {
	if strings.HasPrefix(tok, "r") {
		r, err := p.reg(tok)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.R(r), nil
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return ir.Operand{}, p.errf("bad operand %q", tok)
	}
	return ir.Imm(v), nil
}

func (p *parser) blockName(tok string) (string, error) {
	if !strings.HasPrefix(tok, "%") {
		return "", p.errf("expected %%block, got %q", tok)
	}
	return tok[1:], nil
}

func (p *parser) defer2(name string, set func(*ir.Block)) {
	p.refs = append(p.refs, blockRef{fn: p.fn, name: name, line: p.line, set: set})
}

// resolve patches block references once all blocks exist.
func (p *parser) resolve() error {
	index := make(map[*ir.Function]map[string]*ir.Block, len(p.m.Funcs))
	for _, f := range p.m.Funcs {
		byName := make(map[string]*ir.Block, len(f.Blocks))
		for _, b := range f.Blocks {
			byName[b.Name] = b
		}
		index[f] = byName
	}
	for _, ref := range p.refs {
		b := index[ref.fn][ref.name]
		if b == nil {
			return &ParseError{Line: ref.line, Msg: fmt.Sprintf("undefined block %%%s in function %q", ref.name, ref.fn.Name)}
		}
		ref.set(b)
	}
	return nil
}

func parseCmp(s string) (ir.CmpKind, error) {
	for _, k := range []ir.CmpKind{ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}

func parseBin(s string) (ir.BinKind, error) {
	for _, k := range []ir.BinKind{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown operation %q", s)
}
