package irtext

import (
	"strings"
	"testing"

	"repro/internal/ir/dataflow"
)

// FuzzRoundTrip feeds arbitrary text through the parser. Inputs the
// parser accepts must round-trip (print → parse → print is a fixpoint),
// and the resulting module — already finalized and verified by Parse —
// must survive the dataflow analyses without panicking.
func FuzzRoundTrip(f *testing.F) {
	f.Add(sample)
	f.Add(`
module pinfuzz
entry main
global buf 65536
func main {
  entry:
    r1 = const 4
    jump %loop
  loop:
    prefetch buf[pin]
    r2 = load buf[pin] !nt
    r1 = sub r1, r2
    br r1 gt 0, %loop, %done
  done:
    ret
}
`)
	f.Add("module x\nentry f\n\nfunc f {\n  e:\n    ret\n}\n")
	f.Add("module x\nentry f\nglobal g 64\nfunc f {\n  e:\n    r1 = load g[hot hot=32]\n    store r1, g[rand]\n    ret\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseString(src)
		if err != nil {
			return // rejected input: nothing to check
		}
		text1 := String(m)
		m2, err := ParseString(text1)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\n--- input ---\n%s\n--- printed ---\n%s", err, src, text1)
		}
		if text2 := String(m2); text1 != text2 {
			t.Fatalf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
		}
		// Survivors are verified modules; the analyses must accept them and
		// agree with themselves across the reparse.
		d1 := dataflow.Lint(m)
		d2 := dataflow.Lint(m2)
		if len(d1) != len(d2) {
			t.Fatalf("lint disagrees across round trip: %d vs %d findings\n%v\n%v", len(d1), len(d2), d1, d2)
		}
		for i := range d1 {
			if d1[i].String() != d2[i].String() {
				t.Fatalf("finding %d differs across round trip:\n%s\n%s", i, d1[i], d2[i])
			}
		}
	})
}

// TestPinRoundTrip pins down the new pattern's textual form.
func TestPinRoundTrip(t *testing.T) {
	src := `module p
entry main

global buf 65536

func main {
  entry:
    r1 = load buf[pin]
    prefetch buf[pin] !nt
    store r1, buf[pin]
    ret
}
`
	m, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := String(m)
	if !strings.Contains(text, "load buf[pin]") {
		t.Errorf("pin pattern lost in printing:\n%s", text)
	}
	m2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if String(m2) != text {
		t.Errorf("pin module not a print/parse fixpoint")
	}
}
