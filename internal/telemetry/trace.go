package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// EventKind names one entry of the event taxonomy (DESIGN.md §7). Kinds are
// stable strings so JSONL traces are self-describing.
type EventKind string

// The event taxonomy. Every observable state transition of the system maps
// to exactly one kind; emitters stamp events with simulated cycles.
const (
	// EvCompileStart: a compile job was queued (core.RequestVariant).
	// Func = function, Value = job sequence number.
	EvCompileStart EventKind = "compile_start"
	// EvCompileFinish: a compile job produced an installed variant.
	// Func = function, Value = variant ID.
	EvCompileFinish EventKind = "compile_finish"
	// EvCompileFail: a compile job failed. Func = function, Detail = error.
	EvCompileFail EventKind = "compile_fail"
	// EvDispatch: an EVT slot was rewritten to a variant. Func = function,
	// Value = variant ID.
	EvDispatch EventKind = "dispatch"
	// EvRevert: an EVT slot was pointed back at original static code.
	// Func = function.
	EvRevert EventKind = "revert"
	// EvRuntimeCrash: the protean runtime process died (core.Crash).
	EvRuntimeCrash EventKind = "runtime_crash"
	// EvNap: a nap-state transition. Core = napping core, Value = new
	// intensity, Detail carries the old intensity.
	EvNap EventKind = "nap"
	// EvQoSViolation: a steady-state QoS reading fell below target.
	// Value = the reading.
	EvQoSViolation EventKind = "qos_violation"
	// EvSensorDropout: a QoS reading was discarded as missing or corrupted.
	EvSensorDropout EventKind = "sensor_dropout"
	// EvReap: the supervisor observed a dead runtime and reverted the EVT.
	// Value = slots reverted, Detail = next backoff seconds.
	EvReap EventKind = "supervisor_reap"
	// EvReattach: the supervisor re-attached a fresh runtime session.
	// Value = restart count.
	EvReattach EventKind = "supervisor_reattach"
	// EvServerCrash: a whole simulated server failed (fleet chaos).
	EvServerCrash EventKind = "server_crash"
	// EvReplacement: a re-placed batch instance arrived on this server.
	// Func = app name.
	EvReplacement EventKind = "replacement"
	// EvContended: the contention detector flipped this server's verdict.
	// Value = 1 entering the contended set, 0 leaving it.
	EvContended EventKind = "contended"
	// EvMigration: a live batch migration touched this server. Func = app
	// name, Value = the peer server index, Detail = "out" (instance
	// evicted from here) or "in" (instance landed here after blackout).
	EvMigration EventKind = "migration"
	// EvMoveFailed: a live migration failed. Func = app name, Value = the
	// peer server index, Detail = stage ("detach" for a move that aborted
	// before leaving the source, "rollback" for one whose landing attempts
	// all failed and returned to the source).
	EvMoveFailed EventKind = "move_failed"
	// EvBreaker: the migration circuit breaker changed state. Value = the
	// new state (0 closed, 1 half-open, 2 open), Detail = the cause
	// ("failures", "corrupt", "probe-ok", "probe-fail", "cooldown").
	EvBreaker EventKind = "breaker"
)

// Event is one structured trace entry. At is simulated cycles on the
// emitting machine's clock; Server is stamped during fleet rollup
// (MergeFrom) and 0 for standalone machines.
type Event struct {
	At     uint64
	Kind   EventKind
	Server int
	Core   int
	Func   string
	Value  float64
	Detail string

	// seq orders events emitted at the same cycle on the same machine.
	seq uint64
}

// traceBuf is a bounded append-only ring: when full, the oldest events are
// dropped (deterministically — drops depend only on emit order).
type traceBuf struct {
	cap     int
	events_ []Event
	start   int // ring head when wrapped
	seq     uint64
	dropped uint64
}

func newTraceBuf(cap int) *traceBuf {
	return &traceBuf{cap: cap}
}

func (t *traceBuf) emit(e Event) {
	e.seq = t.seq
	t.seq++
	if len(t.events_) < t.cap {
		t.events_ = append(t.events_, e)
		return
	}
	t.events_[t.start] = e
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// events returns the buffered events oldest-first.
func (t *traceBuf) events() []Event {
	out := make([]Event, 0, len(t.events_))
	out = append(out, t.events_[t.start:]...)
	out = append(out, t.events_[:t.start]...)
	return out
}

// Emit records one event. No-op on a nil registry or when tracing is
// disabled (TraceCap < 0). The caller stamps At with simulated time.
func (r *Registry) Emit(e Event) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.emit(e)
}

// TraceEnabled reports whether Emit records anything — lets emitters skip
// building expensive Detail strings.
func (r *Registry) TraceEnabled() bool {
	return r != nil && r.trace != nil
}

// Events returns the trace sorted by (At, Server, emit order) — the
// canonical deterministic order for rendering and export. Returns nil on a
// nil registry or when tracing is disabled.
func (r *Registry) Events() []Event {
	if r == nil || r.trace == nil {
		return nil
	}
	ev := r.trace.events()
	sort.SliceStable(ev, func(i, j int) bool {
		if ev[i].At != ev[j].At {
			return ev[i].At < ev[j].At
		}
		if ev[i].Server != ev[j].Server {
			return ev[i].Server < ev[j].Server
		}
		return ev[i].seq < ev[j].seq
	})
	return ev
}

// EventsTail returns the last n events in canonical order (all of them when
// n exceeds the buffer). The flight recorder uses this to freeze the trace
// tail into postmortem bundles without copying the whole ring.
func (r *Registry) EventsTail(n int) []Event {
	ev := r.Events()
	if n <= 0 || len(ev) <= n {
		return ev
	}
	return ev[len(ev)-n:]
}

// DroppedEvents reports how many events the bounded buffer discarded.
func (r *Registry) DroppedEvents() uint64 {
	if r == nil || r.trace == nil {
		return 0
	}
	return r.trace.dropped
}

// jsonEscape covers the characters that can appear in function names,
// app names, and error strings (no reflection, deterministic output).
func jsonEscape(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if c < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, c)
			} else {
				b.WriteRune(c)
			}
		}
	}
	return b.String()
}

// WriteJSONL writes the trace as one JSON object per line, in canonical
// order. Fields are emitted in a fixed order with empty strings omitted, so
// identical traces produce identical bytes.
func (r *Registry) WriteJSONL(w io.Writer) error {
	for _, e := range r.Events() {
		var b strings.Builder
		fmt.Fprintf(&b, `{"at":%d,"kind":%q,"server":%d,"core":%d`, e.At, string(e.Kind), e.Server, e.Core)
		if e.Func != "" {
			fmt.Fprintf(&b, `,"func":"%s"`, jsonEscape(e.Func))
		}
		if e.Value != 0 {
			fmt.Fprintf(&b, `,"value":%s`, fmtFloat(e.Value))
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, `,"detail":"%s"`, jsonEscape(e.Detail))
		}
		b.WriteString("}\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// JSONL renders WriteJSONL to a string ("" on nil).
func (r *Registry) JSONL() string {
	var b strings.Builder
	r.WriteJSONL(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}
