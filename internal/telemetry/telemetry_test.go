package telemetry

import (
	"strings"
	"testing"
)

// TestNilRegistryIsNoOp: a nil registry hands out nil instruments and every
// operation no-ops — instrumented code never branches on telemetry being on.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("core", "compiles_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("pc3d", "nap_intensity", "")
	g.Set(0.5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("fleet", "server_qos", "", []float64{0.5, 1})
	h.Observe(0.7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	r.Emit(Event{At: 1, Kind: EvDispatch})
	if r.Events() != nil || r.PrometheusText() != "" || r.JSONL() != "" {
		t.Error("nil registry produced output")
	}
	if r.CounterValue("core", "compiles_total") != 0 || r.GaugeValue("pc3d", "nap_intensity") != 0 {
		t.Error("nil registry read nonzero")
	}
	r.MergeFrom(New(Config{}), 0) // must not panic
}

func TestInstrumentsIdempotentByName(t *testing.T) {
	r := New(Config{})
	a := r.Counter("core", "compiles_total", "compiles")
	b := r.Counter("core", "compiles_total", "ignored second help")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if r.CounterValue("core", "compiles_total") != 3 {
		t.Errorf("CounterValue = %d, want 3", r.CounterValue("core", "compiles_total"))
	}
	if g1, g2 := r.Gauge("x", "g", ""), r.Gauge("x", "g", ""); g1 != g2 {
		t.Fatal("same name returned distinct gauges")
	}
}

func TestPrometheusExportSortedAndStable(t *testing.T) {
	build := func() *Registry {
		r := New(Config{})
		r.Counter("core", "compiles_total", "completed compiles").Add(7)
		r.Gauge("pc3d", "nap_intensity", "live nap duty cycle").Set(0.25)
		h := r.Histogram("fleet", "server_qos", "per-server QoS", []float64{0.5, 0.9, 0.95, 1})
		h.Observe(0.93)
		h.Observe(0.99)
		h.Observe(1.0)
		return r
	}
	a, b := build().PrometheusText(), build().PrometheusText()
	if a != b {
		t.Fatal("identical registries exported different bytes")
	}
	for _, want := range []string{
		"# TYPE protean_core_compiles_total counter",
		"protean_core_compiles_total 7",
		"protean_pc3d_nap_intensity 0.25",
		`protean_fleet_server_qos_bucket{le="0.95"} 1`,
		`protean_fleet_server_qos_bucket{le="+Inf"} 3`,
		"protean_fleet_server_qos_count 3",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("export missing %q:\n%s", want, a)
		}
	}
	// Metric blocks sorted by name: core < fleet < pc3d.
	core := strings.Index(a, "protean_core_")
	fl := strings.Index(a, "protean_fleet_")
	pc := strings.Index(a, "protean_pc3d_")
	if !(core < fl && fl < pc) {
		t.Errorf("metrics not sorted: core@%d fleet@%d pc3d@%d", core, fl, pc)
	}
}

func TestMergeSumsAndStampsServer(t *testing.T) {
	mk := func(n uint64, at uint64) *Registry {
		r := New(Config{})
		r.Counter("supervise", "restarts_total", "").Add(n)
		r.Gauge("fleet", "availability", "").Set(0.5)
		r.Histogram("fleet", "server_qos", "", []float64{0.5, 1}).Observe(0.8)
		r.Emit(Event{At: at, Kind: EvReattach, Value: float64(n)})
		return r
	}
	agg := New(Config{})
	agg.MergeFrom(mk(2, 100), 0)
	agg.MergeFrom(mk(3, 50), 1)
	if v := agg.CounterValue("supervise", "restarts_total"); v != 5 {
		t.Errorf("merged counter = %d, want 5", v)
	}
	if v := agg.GaugeValue("fleet", "availability"); v != 1.0 {
		t.Errorf("merged gauge = %v, want 1 (additive rollup)", v)
	}
	ev := agg.Events()
	if len(ev) != 2 {
		t.Fatalf("merged events = %d, want 2", len(ev))
	}
	// Canonical order: by At first, so server 1's earlier event leads.
	if ev[0].Server != 1 || ev[0].At != 50 || ev[1].Server != 0 || ev[1].At != 100 {
		t.Errorf("events out of canonical order: %+v", ev)
	}
}

func TestTraceBoundedDropsOldest(t *testing.T) {
	r := New(Config{TraceCap: 4})
	for i := uint64(0); i < 10; i++ {
		r.Emit(Event{At: i, Kind: EvNap})
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want 4", len(ev))
	}
	if ev[0].At != 6 || ev[3].At != 9 {
		t.Errorf("ring kept wrong window: %+v", ev)
	}
	if r.DroppedEvents() != 6 {
		t.Errorf("DroppedEvents = %d, want 6", r.DroppedEvents())
	}
	if !strings.Contains(r.PrometheusText(), "protean_telemetry_trace_dropped_total 6") {
		t.Error("dropped counter not exported")
	}
}

func TestTraceDisabled(t *testing.T) {
	r := New(Config{TraceCap: -1})
	if r.TraceEnabled() {
		t.Fatal("TraceCap<0 should disable tracing")
	}
	r.Emit(Event{At: 1, Kind: EvDispatch})
	if r.Events() != nil {
		t.Error("disabled trace recorded events")
	}
}

func TestJSONLDeterministicAndEscaped(t *testing.T) {
	mk := func() *Registry {
		r := New(Config{})
		r.Emit(Event{At: 10, Kind: EvCompileFail, Func: `f"n`, Detail: "line1\nline2", Value: 1.5})
		r.Emit(Event{At: 10, Kind: EvDispatch, Core: 2, Func: "hot"})
		return r
	}
	a, b := mk().JSONL(), mk().JSONL()
	if a != b {
		t.Fatal("identical traces produced different JSONL")
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if want := `{"at":10,"kind":"compile_fail","server":0,"core":0,"func":"f\"n","value":1.5,"detail":"line1\nline2"}`; lines[0] != want {
		t.Errorf("line 0 = %s\nwant     %s", lines[0], want)
	}
	// Same-cycle events keep emit order.
	if !strings.Contains(lines[1], `"kind":"dispatch"`) {
		t.Errorf("line 1 = %s", lines[1])
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := New(Config{})
	h := r.Histogram("x", "h", "", []float64{1, 2})
	h.Observe(1) // lands in le="1" (upper bounds are inclusive)
	h.Observe(1.5)
	h.Observe(99)
	out := r.PrometheusText()
	for _, want := range []string{
		`protean_x_h_bucket{le="1"} 1`,
		`protean_x_h_bucket{le="2"} 2`,
		`protean_x_h_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestEnumerationSortedByName: EachCounter/EachGauge/EachHistogram visit
// instruments in metric-name order — the tsdb samples through these, so the
// order is part of the determinism contract.
func TestEnumerationSortedByName(t *testing.T) {
	r := New(Config{})
	r.Counter("z", "last_total", "").Add(1)
	r.Counter("a", "first_total", "").Add(2)
	r.Gauge("m", "mid", "").Set(3)
	r.Histogram("b", "h", "", []float64{1}).Observe(0.5)
	var cs, gs, hs []string
	r.EachCounter(func(name string, v uint64) { cs = append(cs, name) })
	r.EachGauge(func(name string, v float64) { gs = append(gs, name) })
	r.EachHistogram(func(name string, h *Histogram) { hs = append(hs, name) })
	if len(cs) != 2 || cs[0] != "protean_a_first_total" || cs[1] != "protean_z_last_total" {
		t.Errorf("counters out of order: %v", cs)
	}
	if len(gs) != 1 || gs[0] != "protean_m_mid" {
		t.Errorf("gauges = %v", gs)
	}
	if len(hs) != 1 || hs[0] != "protean_b_h" {
		t.Errorf("histograms = %v", hs)
	}
	var nilr *Registry
	nilr.EachCounter(func(string, uint64) { t.Error("nil registry enumerated") })
	nilr.EachGauge(func(string, float64) { t.Error("nil registry enumerated") })
	nilr.EachHistogram(func(string, *Histogram) { t.Error("nil registry enumerated") })
}

// TestHistogramMergeClone: Clone is deep, Merge adds bucket-wise when bound
// sets match and folds into +Inf when they don't.
func TestHistogramMergeClone(t *testing.T) {
	r := New(Config{})
	a := r.Histogram("x", "a", "", []float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	cl := a.Clone()
	a.Observe(0.5)
	if cl.Count() != 2 {
		t.Errorf("clone count = %d, want 2 (deep copy)", cl.Count())
	}
	b := r.Histogram("x", "b", "", []float64{1, 2})
	b.Observe(1.8)
	cl.Merge(b)
	if cl.Count() != 3 || cl.Sum() != 0.5+1.5+1.8 {
		t.Errorf("merged count=%d sum=%v", cl.Count(), cl.Sum())
	}
	// Mismatched bounds fold into +Inf: the quantile collapses to the top
	// finite bound once most mass sits in the overflow bucket.
	c := r.Histogram("x", "c", "", []float64{10, 20, 30})
	c.Observe(5)
	c.Observe(15)
	c.Observe(25)
	cl.Merge(c)
	if cl.Count() != 6 {
		t.Errorf("fold-merged count = %d, want 6", cl.Count())
	}
	if got := cl.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) after fold = %v, want 2 (overflow clamps to top bound)", got)
	}
	var hnil *Histogram
	hnil.Merge(a) // must not panic
	a.Merge(nil)
	if hnil.Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

// TestQuantileSingleBucketAndExtremes: the edge cases the SLO quantile
// series lean on — a one-bucket histogram interpolates within [0, bound],
// and q=0 / q=1 return the distribution's extremes.
func TestQuantileSingleBucketAndExtremes(t *testing.T) {
	r := New(Config{})
	h := r.Histogram("x", "single", "", []float64{4})
	h.Observe(1)
	h.Observe(3)
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0 (lower edge of only bucket)", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4 (upper edge of only bucket)", got)
	}
	if got := h.Quantile(0.5); got <= 0 || got > 4 {
		t.Errorf("Quantile(0.5) = %v, want within (0,4]", got)
	}
	// q outside [0,1] clamps rather than extrapolating.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(5) != h.Quantile(1) {
		t.Error("out-of-range q should clamp to [0,1]")
	}
}

// TestEventsTail: the flight recorder's trace-tail snapshot returns the last
// n events in canonical order.
func TestEventsTail(t *testing.T) {
	r := New(Config{})
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: uint64(10 + i), Kind: EvDispatch, Func: "f"})
	}
	tail := r.EventsTail(2)
	if len(tail) != 2 || tail[0].At != 13 || tail[1].At != 14 {
		t.Errorf("tail = %+v, want events at 13,14", tail)
	}
	if got := r.EventsTail(0); len(got) != 5 {
		t.Errorf("EventsTail(0) = %d events, want all 5", len(got))
	}
	if got := r.EventsTail(99); len(got) != 5 {
		t.Errorf("EventsTail(99) = %d events, want all 5", len(got))
	}
	var nilr *Registry
	if nilr.EventsTail(3) != nil {
		t.Error("nil registry produced a tail")
	}
}
