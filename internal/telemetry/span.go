package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SpanID identifies a span within a registry; 0 means "no span" and is the
// parent of every root. IDs are assigned sequentially by StartSpan and
// remapped to (server+1)<<32|local during fleet rollup, so merged IDs are
// a pure function of (server, local sequence) — never of wall clock or
// worker interleaving.
type SpanID uint64

// Attr is one typed span attribute (string or number).
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Str: v} }

// Num builds a numeric attribute.
func Num(k string, v float64) Attr { return Attr{Key: k, Num: v, IsNum: true} }

// Span is one node of a causal span tree: a named interval of simulated
// time with a parent link. Subsystems record multi-stage operations
// (compile→dispatch→settle→measure, reap→backoff→re-attach) as span trees
// layered on the point-event trace.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Name is "subsystem.operation" (e.g. "pc3d.search"); the part before
	// the first dot becomes the Chrome trace category.
	Name string
	// Server is stamped during fleet rollup (MergeFrom); 0 standalone.
	Server int
	// Start and End are simulated cycles; End == 0 marks a span still open
	// when the registry was exported.
	Start uint64
	End   uint64
	Attrs []Attr
}

// Duration returns End-Start (0 for open spans).
func (s Span) Duration() uint64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// spanBuf is a bounded span store. Unlike the event ring it drops the
// newest spans when full (a dropped parent would orphan retained
// children); drops are deterministic and counted.
type spanBuf struct {
	cap     int
	spans   []Span
	byID    map[SpanID]int
	dropped uint64
	ambient SpanID // see SetSpanParent
}

func newSpanBuf(cap int) *spanBuf {
	return &spanBuf{cap: cap, byID: make(map[SpanID]int)}
}

func (b *spanBuf) insert(s Span) bool {
	if len(b.spans) >= b.cap {
		b.dropped++
		return false
	}
	b.byID[s.ID] = len(b.spans)
	b.spans = append(b.spans, s)
	return true
}

// DefaultSpanCap is the span-store bound used when Config.SpanCap is 0.
const DefaultSpanCap = 8192

// SpanEnabled reports whether StartSpan records anything.
func (r *Registry) SpanEnabled() bool {
	return r != nil && r.spans != nil
}

// StartSpan opens a span at simulated cycle at under parent (0 for a
// root). Returns 0 (a safe no-op ID) on a nil registry, when spans are
// disabled, or when the bounded store is full.
func (r *Registry) StartSpan(name string, at uint64, parent SpanID) SpanID {
	if r == nil || r.spans == nil {
		return 0
	}
	id := SpanID(len(r.spans.spans) + 1)
	if !r.spans.insert(Span{ID: id, Parent: parent, Name: name, Start: at}) {
		return 0
	}
	return id
}

// EndSpan closes a span at simulated cycle at. No-op for id 0 or unknown.
func (r *Registry) EndSpan(id SpanID, at uint64) {
	if r == nil || r.spans == nil || id == 0 {
		return
	}
	if i, ok := r.spans.byID[id]; ok {
		r.spans.spans[i].End = at
	}
}

// SpanAttrs appends typed attributes to a span. No-op for id 0 or unknown.
func (r *Registry) SpanAttrs(id SpanID, attrs ...Attr) {
	if r == nil || r.spans == nil || id == 0 {
		return
	}
	if i, ok := r.spans.byID[id]; ok {
		r.spans.spans[i].Attrs = append(r.spans.spans[i].Attrs, attrs...)
	}
}

// SetSpanParent sets the registry's ambient parent span and returns the
// previous one. Subsystems that start spans without a caller-supplied
// parent (core's compile spans) parent under the ambient span, so pc3d can
// nest the compiles it triggers under its own eval span without threading
// IDs through every API. Callers must restore the previous value.
func (r *Registry) SetSpanParent(id SpanID) SpanID {
	if r == nil || r.spans == nil {
		return 0
	}
	prev := r.spans.ambient
	r.spans.ambient = id
	return prev
}

// SpanParent returns the current ambient parent span (0 when unset).
func (r *Registry) SpanParent() SpanID {
	if r == nil || r.spans == nil {
		return 0
	}
	return r.spans.ambient
}

// Spans returns all recorded spans sorted by (Start, Server, ID) — the
// canonical deterministic order. Nil when spans are disabled.
func (r *Registry) Spans() []Span {
	if r == nil || r.spans == nil || len(r.spans.spans) == 0 {
		return nil
	}
	out := append([]Span(nil), r.spans.spans...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// OpenSpans returns the spans still open (End == 0) in canonical order —
// the in-flight operation tree at export time. The flight recorder snapshots
// this to show what the system was in the middle of when an alert fired.
func (r *Registry) OpenSpans() []Span {
	var out []Span
	for _, s := range r.Spans() {
		if s.End == 0 {
			out = append(out, s)
		}
	}
	return out
}

// Span returns the span with the given ID.
func (r *Registry) Span(id SpanID) (Span, bool) {
	if r == nil || r.spans == nil {
		return Span{}, false
	}
	if i, ok := r.spans.byID[id]; ok {
		return r.spans.spans[i], true
	}
	return Span{}, false
}

// DroppedSpans reports how many spans the bounded store discarded.
func (r *Registry) DroppedSpans() uint64 {
	if r == nil || r.spans == nil {
		return 0
	}
	return r.spans.dropped
}

// CriticalPath walks the span tree from root, selecting at each level the
// child with the longest duration (ties by smallest ID), and returns the
// chain root-first. It answers "which stage dominates this operation's
// end-to-end latency" — e.g. whether a transformation's wall time went to
// compiling, settling, or measuring.
func (r *Registry) CriticalPath(root SpanID) []Span {
	if r == nil || r.spans == nil {
		return nil
	}
	rs, ok := r.Span(root)
	if !ok {
		return nil
	}
	children := make(map[SpanID][]Span)
	for _, s := range r.spans.spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	path := []Span{rs}
	cur := root
	for {
		kids := children[cur]
		if len(kids) == 0 {
			return path
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if k.Duration() > best.Duration() || (k.Duration() == best.Duration() && k.ID < best.ID) {
				best = k
			}
		}
		path = append(path, best)
		cur = best.ID
	}
}

// mergeSpans folds src's spans into r with IDs remapped to
// (server+1)<<32|local — a pure function of (server, local ID), so the
// merged ID space is identical at any worker count.
func (r *Registry) mergeSpans(src *Registry, server int) {
	if r.spans == nil || src.spans == nil {
		return
	}
	remap := func(id SpanID) SpanID {
		if id == 0 {
			return 0
		}
		return SpanID(uint64(server+1)<<32 | uint64(id))
	}
	for _, s := range src.spans.spans {
		s.ID = remap(s.ID)
		s.Parent = remap(s.Parent)
		s.Server = server
		r.spans.insert(s)
	}
	r.spans.dropped += src.spans.dropped
}

// spanCat is the Chrome trace category: the name up to the first dot.
func spanCat(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// WriteChromeTrace writes spans (complete "X" events) and trace events
// (instant "i" events) as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing. Timestamps are simulated cycles (the viewer displays
// them as microseconds; only ratios matter). pid is the server index; tid
// is the root span of each tree, so every causal tree renders on its own
// track. Output is deterministic: spans in canonical order, fixed field
// order, hand-built JSON.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Resolve each span's root for track assignment.
	parent := make(map[SpanID]SpanID)
	if r.spans != nil {
		for _, s := range r.spans.spans {
			parent[s.ID] = s.Parent
		}
	}
	rootOf := func(id SpanID) SpanID {
		for {
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, "\n"+line)
		return err
	}
	for _, s := range r.Spans() {
		var b strings.Builder
		fmt.Fprintf(&b, `{"name":"%s","cat":"%s","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"id":%d,"parent":%d`,
			jsonEscape(s.Name), jsonEscape(spanCat(s.Name)), s.Start, s.Duration(), s.Server, rootOf(s.ID), s.ID, s.Parent)
		if s.End == 0 {
			b.WriteString(`,"open":1`)
		}
		for _, a := range s.Attrs {
			if a.IsNum {
				fmt.Fprintf(&b, `,"%s":%s`, jsonEscape(a.Key), fmtFloat(a.Num))
			} else {
				fmt.Fprintf(&b, `,"%s":"%s"`, jsonEscape(a.Key), jsonEscape(a.Str))
			}
		}
		b.WriteString("}}")
		if err := emit(b.String()); err != nil {
			return err
		}
	}
	for _, e := range r.Events() {
		var b strings.Builder
		fmt.Fprintf(&b, `{"name":"%s","cat":"event","ph":"i","s":"p","ts":%d,"pid":%d,"tid":0,"args":{"core":%d`,
			jsonEscape(string(e.Kind)), e.At, e.Server, e.Core)
		if e.Func != "" {
			fmt.Fprintf(&b, `,"func":"%s"`, jsonEscape(e.Func))
		}
		if e.Value != 0 {
			fmt.Fprintf(&b, `,"value":%s`, fmtFloat(e.Value))
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, `,"detail":"%s"`, jsonEscape(e.Detail))
		}
		b.WriteString("}}")
		if err := emit(b.String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// ChromeTraceJSON renders WriteChromeTrace to a string ("" on nil).
func (r *Registry) ChromeTraceJSON() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	r.WriteChromeTrace(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}
